// SessionEngine behavior: admission cap, session isolation, correctness vs
// the plain reference ranking, determinism under load (bit-identical outputs
// at load 1 vs 16, cache on vs off), exact cold/warm cache hit accounting,
// and the golden rollup export (tests/golden/engine_small.json) byte-stable
// across parallelism 1 / 2 / hardware concurrency.
//
// Regenerate the golden after a deliberate format change with:
//   PPGR_UPDATE_GOLDEN=1 ./build/tests/engine_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"

#ifndef PPGR_GOLDEN_DIR
#define PPGR_GOLDEN_DIR "tests/golden"
#endif

namespace ppgr::engine {
namespace {

using core::AttrVec;
using core::ProblemSpec;
using mpz::ChaChaRng;

// Small but non-trivial instance; inputs are a pure function of
// (session_id, input_seed) so independent engines can be handed the exact
// same request set.
RankingRequest make_request(std::uint64_t sid, std::size_t n, std::size_t k,
                            FrameworkKind kind = FrameworkKind::kHe,
                            std::uint64_t input_seed = 99) {
  RankingRequest req;
  req.session_id = sid;
  req.framework = kind;
  req.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  req.k = k;
  ChaChaRng rng{input_seed + sid};
  req.v0.resize(req.spec.m);
  req.w.resize(req.spec.m);
  for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
  for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
  for (std::size_t j = 0; j < n; ++j) {
    AttrVec v(req.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    req.infos.push_back(std::move(v));
  }
  return req;
}

std::vector<RankingRequest> small_batch(std::size_t count, std::size_t n) {
  std::vector<RankingRequest> reqs;
  for (std::uint64_t sid = 1; sid <= count; ++sid)
    reqs.push_back(make_request(sid, n, /*k=*/2));
  return reqs;
}

void expect_bit_identical(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.id, b.id);
  ASSERT_EQ(a.framework, b.framework);
  EXPECT_EQ(a.ranks(), b.ranks());
  EXPECT_EQ(a.submitted_ids(), b.submitted_ids());
  if (a.framework == FrameworkKind::kHe) {
    EXPECT_EQ(a.he.betas, b.he.betas);
  }
  // Transfer-for-transfer identical communication trace.
  const auto& ta = a.trace().transfers();
  const auto& tb = b.trace().transfers();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].round, tb[i].round) << "transfer " << i;
    EXPECT_EQ(ta[i].src, tb[i].src) << "transfer " << i;
    EXPECT_EQ(ta[i].dst, tb[i].dst) << "transfer " << i;
    EXPECT_EQ(ta[i].bytes, tb[i].bytes) << "transfer " << i;
  }
  ASSERT_NE(a.metrics(), nullptr);
  ASSERT_NE(b.metrics(), nullptr);
  EXPECT_EQ(a.metrics()->to_json(/*include_timing=*/false),
            b.metrics()->to_json(/*include_timing=*/false));
}

TEST(SessionEngine, RanksMatchReferenceForHeAndSs) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 41;
  cfg.max_in_flight = 2;
  cfg.cache = &cache;
  SessionEngine engine{cfg};

  std::vector<RankingRequest> reqs;
  reqs.push_back(make_request(1, /*n=*/5, /*k=*/2));
  reqs.push_back(make_request(2, /*n=*/4, /*k=*/1));
  reqs.push_back(make_request(3, /*n=*/5, /*k=*/2, FrameworkKind::kSs));
  const std::vector<std::size_t> ks{2, 1, 2};
  const auto expected = [&] {
    std::vector<std::vector<std::size_t>> e;
    for (const auto& r : reqs)
      e.push_back(core::reference_ranks(r.spec, r.v0, r.w, r.infos));
    return e;
  }();

  const auto results = engine.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    // make_request draws random 6-bit attributes: gains are distinct for
    // these fixed seeds (verified against the insecure reference).
    EXPECT_EQ(results[i].ranks(), expected[i]) << "session " << i + 1;
    for (std::size_t j = 0; j < results[i].ranks().size(); ++j) {
      const auto& ids = results[i].submitted_ids();
      const bool submitted =
          std::find(ids.begin(), ids.end(), j + 1) != ids.end();
      EXPECT_EQ(submitted, results[i].ranks()[j] <= ks[i]);
    }
  }
  EXPECT_EQ(results[2].framework, FrameworkKind::kSs);
  EXPECT_GT(results[2].ss.parallel_rounds, 0u);
}

TEST(SessionEngine, AdmissionCapBoundsConcurrency) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 7;
  cfg.max_in_flight = 2;
  cfg.parallelism = 2;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  for (auto& req : small_batch(/*count=*/6, /*n=*/4))
    engine.submit(std::move(req));
  engine.drain();
  EXPECT_GE(engine.peak_in_flight(), 1u);
  EXPECT_LE(engine.peak_in_flight(), 2u);
  EXPECT_EQ(engine.precompute_stats().zero_pool.hits +
                engine.precompute_stats().zero_pool.misses,
            6u);
}

// The tentpole invariant: one fixed request set produces bit-identical
// per-session outputs whether sessions run one-at-a-time or 16-wide, on a
// serial or multi-threaded pool, with the shared cache on or off.
TEST(SessionEngine, BitIdenticalAcrossLoadParallelismAndCache) {
  constexpr std::size_t kSessions = 16;
  const auto run = [&](std::size_t in_flight, std::size_t parallelism,
                       bool share) {
    PrecomputeCache cache;
    EngineConfig cfg;
    cfg.seed = 1234;
    cfg.max_in_flight = in_flight;
    cfg.parallelism = parallelism;
    cfg.share_precompute = share;
    cfg.cache = share ? &cache : nullptr;
    SessionEngine engine{cfg};
    return engine.run_batch(small_batch(kSessions, /*n=*/4));
  };

  const auto serial = run(1, 1, true);
  const auto loaded = run(16, 2, true);
  const auto uncached = run(16, 2, false);
  ASSERT_EQ(serial.size(), kSessions);
  ASSERT_EQ(loaded.size(), kSessions);
  ASSERT_EQ(uncached.size(), kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    expect_bit_identical(serial[i], loaded[i]);
    expect_bit_identical(serial[i], uncached[i]);
  }
}

TEST(SessionEngine, ColdWarmCacheAccountingIsExact) {
  constexpr std::size_t kSessions = 5;
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 55;
  cfg.max_in_flight = 4;
  cfg.cache = &cache;

  {
    SessionEngine cold{cfg};
    (void)cold.run_batch(small_batch(kSessions, /*n=*/4));
    const PrecomputeStats s = cold.precompute_stats();
    // One group in play: the generator table is built once and shared.
    EXPECT_EQ(s.generator_table.misses, 1u);
    EXPECT_EQ(s.generator_table.hits, kSessions - 1);
    // Joint keys and pool keys are session-specific: all misses when cold.
    EXPECT_EQ(s.key_table.misses, kSessions);
    EXPECT_EQ(s.key_table.hits, 0u);
    EXPECT_EQ(s.zero_pool.misses, kSessions);
    EXPECT_EQ(s.zero_pool.hits, 0u);
    const auto totals = cold.metrics().totals();
    EXPECT_EQ(totals[runtime::CryptoOp::kPrecomputeHit], kSessions - 1);
    EXPECT_EQ(totals[runtime::CryptoOp::kPrecomputeMiss], 2 * kSessions + 1);
  }

  // Same seed + same requests against the same cache = a bit-for-bit replay:
  // every artifact (including each session's zero pool) is already resident.
  SessionEngine warm{cfg};
  (void)warm.run_batch(small_batch(kSessions, /*n=*/4));
  const PrecomputeStats w = warm.precompute_stats();
  EXPECT_EQ(w.generator_table.hits, kSessions);
  EXPECT_EQ(w.key_table.hits, kSessions);
  EXPECT_EQ(w.zero_pool.hits, kSessions);
  EXPECT_EQ(w.total().misses, 0u);
  const auto totals = warm.metrics().totals();
  EXPECT_EQ(totals[runtime::CryptoOp::kPrecomputeHit], 3 * kSessions);
  EXPECT_EQ(totals[runtime::CryptoOp::kPrecomputeMiss], 0u);
}

std::string rollup_at(std::size_t in_flight, std::size_t parallelism) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 2025;
  cfg.max_in_flight = in_flight;
  cfg.parallelism = parallelism;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  std::vector<RankingRequest> reqs;
  reqs.push_back(make_request(1, /*n=*/5, /*k=*/2));
  reqs.push_back(make_request(2, /*n=*/4, /*k=*/1));
  reqs.push_back(make_request(3, /*n=*/5, /*k=*/2, FrameworkKind::kSs));
  (void)engine.run_batch(std::move(reqs));
  return engine.rollup_json();
}

void check_golden(const char* name, const std::string& produced) {
  const std::string path = std::string{PPGR_GOLDEN_DIR} + "/" + name;
  if (std::getenv("PPGR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << produced;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with PPGR_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(produced, expected.str())
      << name << " drifted from its golden; if the change is deliberate, "
      << "regenerate with PPGR_UPDATE_GOLDEN=1";
}

TEST(SessionEngine, RollupMatchesGoldenAtEveryParallelism) {
  const std::string serial = rollup_at(1, 1);
  EXPECT_EQ(serial, rollup_at(3, 2));
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  EXPECT_EQ(serial, rollup_at(3, hw));
  check_golden("engine_small.json", serial);
}

// TSan target (scripts/ci.sh engine leg): many sessions racing through the
// shared pool, the shared cache and the engine's bookkeeping at once.
TEST(SessionEngineStress, ConcurrentSessionsUnderSharedCache) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 90210;
  cfg.max_in_flight = 8;
  cfg.parallelism = 2;
  cfg.cache = &cache;
  SessionEngine engine{cfg};

  std::vector<std::uint64_t> ids;
  for (auto& req : small_batch(/*count=*/12, /*n=*/4))
    ids.push_back(engine.submit(std::move(req)));
  // take() from several consumer threads while drivers are still producing.
  std::vector<std::thread> consumers;
  std::mutex mu;
  std::size_t ok = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    consumers.emplace_back([&, c] {
      for (std::size_t i = c; i < ids.size(); i += 3) {
        const SessionResult res = engine.take(ids[i]);
        const std::lock_guard<std::mutex> lock(mu);
        ok += res.ranks().size() == 4 ? 1 : 0;
      }
    });
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(ok, ids.size());
  EXPECT_LE(engine.peak_in_flight(), 8u);
}

}  // namespace
}  // namespace ppgr::engine

// The acceptance-criterion integration test: a full n=4 ranking run as 5
// real OS processes over localhost TCP (scripts/run_local.sh driving the
// ppgr_party binary) must print the exact ranking a same-seed
// single-process ppgr_cli run prints. Also pins the launcher/party CLI
// contracts: --help exits 0, usage errors exit 2, a session-mismatched
// mesh exits 4 with a typed transport fault.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef PPGR_PARTY_BIN
#error "PPGR_PARTY_BIN must be defined to the ppgr_party binary path"
#endif
#ifndef PPGR_CLI_BIN
#error "PPGR_CLI_BIN must be defined to the ppgr_cli binary path"
#endif
#ifndef PPGR_SCRIPTS_DIR
#error "PPGR_SCRIPTS_DIR must be defined to the repo's scripts/ directory"
#endif

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path};
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

RunResult run_cmd(const std::string& cmd) {
  const std::string out_path = temp_path("launcher.out");
  const std::string err_path = temp_path("launcher.err");
  const int status =
      std::system((cmd + " > " + out_path + " 2> " + err_path).c_str());
  RunResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  return r;
}

const char kInstance[] =
    "spec 4 2 8 4 8\n"
    "group dl-test-256\n"
    "k 2\n"
    "criterion 35 120 0 0\n"
    "weights 10 5 2 1\n"
    "participant 34 118 90 55\n"
    "participant 52 160 20 90\n"
    "participant 35 121 40 40\n"
    "participant 29 130 70 35\n";

// The "participant j: rank r" block — the part of the output that must be
// byte-identical between the socket deployment and the simulator.
std::string ranking_block(const std::string& out) {
  std::istringstream in{out};
  std::string line;
  std::string block;
  while (std::getline(in, line))
    if (line.rfind("participant", 0) == 0) block += line + "\n";
  return block;
}

std::string launcher() {
  return std::string(PPGR_SCRIPTS_DIR) + "/run_local.sh";
}

TEST(PartyLauncher, SocketRanksByteIdenticalToSimulator) {
  const std::string inst = temp_path("inst.ppgr");
  write_file(inst, kInstance);

  const RunResult sim = run_cmd(std::string(PPGR_CLI_BIN) + " " + inst +
                                " --seed 42");
  ASSERT_EQ(sim.exit_code, 0) << sim.err;

  const RunResult sock = run_cmd(launcher() + " " + inst +
                                 " --seed 42 --bin " PPGR_PARTY_BIN);
  ASSERT_EQ(sock.exit_code, 0) << sock.err << sock.out;

  const std::string expected = ranking_block(sim.out);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(ranking_block(sock.out), expected);
}

TEST(PartyLauncher, SsModeRanksMatchReference) {
  const std::string inst = temp_path("inst_ss.ppgr");
  write_file(inst, kInstance);

  // Gains are distinct, so the SS baseline must produce the same ranking
  // the HE protocol does — compare against the simulator's HE run.
  const RunResult sim = run_cmd(std::string(PPGR_CLI_BIN) + " " + inst +
                                " --seed 7");
  ASSERT_EQ(sim.exit_code, 0) << sim.err;

  const RunResult sock = run_cmd(launcher() + " " + inst +
                                 " --seed 7 --framework ss --threshold 1"
                                 " --bin " PPGR_PARTY_BIN);
  ASSERT_EQ(sock.exit_code, 0) << sock.err << sock.out;
  EXPECT_EQ(ranking_block(sock.out), ranking_block(sim.out));
}

TEST(PartyLauncher, HelpExitsZero) {
  EXPECT_EQ(run_cmd(launcher() + " --help").exit_code, 0);
  EXPECT_EQ(run_cmd(std::string(PPGR_PARTY_BIN) + " --help").exit_code, 0);
}

TEST(PartyLauncher, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(launcher()).exit_code, 2);             // no instance
  EXPECT_EQ(run_cmd(launcher() + " --bogus").exit_code, 2);
  EXPECT_EQ(run_cmd(std::string(PPGR_PARTY_BIN)).exit_code, 2);
  EXPECT_EQ(
      run_cmd(std::string(PPGR_PARTY_BIN) + " --party-id x").exit_code, 2);
}

TEST(PartyLauncher, SessionMismatchIsTypedFault) {
  // Two parties from *different* instance agreements: the handshake must
  // refuse the session and both processes exit 4 (typed transport fault)
  // within their timeouts — no hang, no crash.
  const std::string spec_a = temp_path("spec_a.txt");
  const std::string spec_b = temp_path("spec_b.txt");
  write_file(spec_a, "spec 4 2 8 4 8\ngroup dl-test-256\nk 1\nparties 2\n");
  write_file(spec_b, "spec 4 2 8 4 8\ngroup dl-test-256\nk 2\nparties 2\n");
  const std::string in0 = temp_path("mism_in0.txt");
  const std::string in1 = temp_path("mism_in1.txt");
  const std::string in2 = temp_path("mism_in2.txt");
  write_file(in0, "criterion 35 120 0 0\nweights 10 5 2 1\n");
  write_file(in1, "participant 34 118 90 55\n");
  write_file(in2, "participant 52 160 20 90\n");

  const std::string peers =
      "0=127.0.0.1:23470,1=127.0.0.1:23471,2=127.0.0.1:23472";
  const std::string common =
      " --peers " + peers +
      " --retries 3 --connect-timeout 2 --read-timeout 2 --quiet";
  const auto party = [&](int id, const std::string& spec,
                         const std::string& input) {
    return std::string(PPGR_PARTY_BIN) + " --party-id " +
           std::to_string(id) + " --listen 127.0.0.1:2347" +
           std::to_string(id) + " --spec " + spec + " --input " + input +
           common;
  };
  // Parties 0 and 1 agree on instance A; party 2 shows up with instance B.
  // Its hellos are refused, it must exit 4 within its timeouts — and the
  // honest parties, left with a hole in their mesh, fail typed too.
  const RunResult r = run_cmd(party(0, spec_a, in0) + " & p0=$!; " +
                              party(1, spec_a, in1) + " & p1=$!; " +
                              party(2, spec_b, in2) +
                              "; s=$?; wait $p0 $p1; exit $s");
  EXPECT_EQ(r.exit_code, 4) << r.err << r.out;
}

}  // namespace

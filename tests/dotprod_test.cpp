// Tests for the secure two-party dot-product protocol.
#include <gtest/gtest.h>

#include "dotprod/dot_product.h"
#include "mpz/prime.h"

namespace ppgr::dotprod {
namespace {

using mpz::ChaChaRng;
using mpz::FpCtx;
using mpz::Int;

const FpCtx& test_field() {
  // 2^255 - 19: large enough that all test integers behave exactly.
  static const FpCtx f{mpz::Nat::from_dec(
      "578960446186580977117854925043439539266349923328202820197287920039565648"
      "19949")};
  return f;
}

FVec to_field(const FpCtx& f, const std::vector<std::int64_t>& xs) {
  FVec out;
  out.reserve(xs.size());
  for (auto x : xs) out.push_back(f.to_signed(Int{x}));
  return out;
}

TEST(DotProduct, MatchesPlainDotSmall) {
  const FpCtx& f = test_field();
  ChaChaRng rng{30};
  const FVec w = to_field(f, {1, 2, 3, 4});
  const FVec v = to_field(f, {5, 6, 7, 8});
  const DotProductBob bob{f, w, /*s=*/4, rng};
  const AliceRound2 reply = dot_product_alice(f, bob.round1(), v);
  const Nat result = bob.finish(reply);
  EXPECT_EQ(f.from_centered(result).to_i64(), 5 + 12 + 21 + 32);
}

TEST(DotProduct, NegativeEntriesAndResults) {
  const FpCtx& f = test_field();
  ChaChaRng rng{31};
  const FVec w = to_field(f, {-3, 2, -1});
  const FVec v = to_field(f, {4, -5, 6});
  const DotProductBob bob{f, w, 4, rng};
  const Nat result = bob.finish(dot_product_alice(f, bob.round1(), v));
  EXPECT_EQ(f.from_centered(result).to_i64(), -12 - 10 - 6);
}

class DotProductRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DotProductRandom, AgreesWithPlainDot) {
  const FpCtx& f = test_field();
  const std::size_t d = GetParam();
  ChaChaRng rng{32 + d};
  for (int iter = 0; iter < 10; ++iter) {
    FVec w(d), v(d);
    for (auto& x : w) x = f.random(rng);
    for (auto& x : v) x = f.random(rng);
    const std::size_t s = 2 + rng.below_u64(7);
    const DotProductBob bob{f, w, s, rng};
    const Nat result = bob.finish(dot_product_alice(f, bob.round1(), v));
    EXPECT_EQ(result, plain_dot(f, w, v)) << "d=" << d << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DotProductRandom,
                         ::testing::Values(1, 2, 3, 10, 33, 100));

TEST(DotProduct, ZeroVectors) {
  const FpCtx& f = test_field();
  ChaChaRng rng{33};
  const FVec w(5, f.zero());
  FVec v(5);
  for (auto& x : v) x = f.random(rng);
  const DotProductBob bob{f, w, 3, rng};
  EXPECT_TRUE(f.is_zero(bob.finish(dot_product_alice(f, bob.round1(), v))));
}

TEST(DotProduct, RejectsBadParameters) {
  const FpCtx& f = test_field();
  ChaChaRng rng{34};
  EXPECT_THROW((DotProductBob{f, FVec{}, 4, rng}), std::invalid_argument);
  EXPECT_THROW((DotProductBob{f, FVec{f.one()}, 1, rng}), std::invalid_argument);
  const DotProductBob bob{f, FVec{f.one(), f.one()}, 3, rng};
  const FVec wrong_dim{f.one()};
  EXPECT_THROW((void)dot_product_alice(f, bob.round1(), wrong_dim),
               std::invalid_argument);
}

TEST(DotProduct, MessagesLookRandomAcrossRuns) {
  // The same input vector must produce different disguised messages each run
  // (otherwise Alice could fingerprint Bob's input).
  const FpCtx& f = test_field();
  ChaChaRng rng{35};
  const FVec w = to_field(f, {42, 7});
  const DotProductBob bob1{f, w, 3, rng};
  const DotProductBob bob2{f, w, 3, rng};
  EXPECT_NE(bob1.round1().qx, bob2.round1().qx);
  EXPECT_NE(bob1.round1().cprime, bob2.round1().cprime);
  EXPECT_NE(bob1.round1().gvec, bob2.round1().gvec);
}

TEST(DotProduct, AliceMessageCountsUnknownsExceedEquations) {
  // Sanity check on the security argument's accounting: Bob sends
  // s·d + 2d field values derived from s·s + s·d + d + 3 unknowns
  // (Q, X's random rows count d·(s-1)... at minimum the unknowns Alice
  // faces exceed her equations for every s >= 2, d >= 1.
  for (std::size_t s : {2u, 4u, 8u}) {
    for (std::size_t d : {1u, 5u, 50u}) {
      const std::size_t equations = s * d + 2 * d;
      const std::size_t unknowns = s * s + (s - 1) * d + d + 3 + d;  // Q, X rows, f, R's, w
      EXPECT_GT(unknowns, equations - d)  // w itself is what she wants
          << "s=" << s << " d=" << d;
    }
  }
}

TEST(DotProduct, MessageSizeAccounting) {
  const FpCtx& f = test_field();
  const std::size_t fe = (f.bits() + 7) / 8;
  // Field elements plus the two varint dimension prefixes (s=4, d=10 both
  // encode in one byte).
  EXPECT_EQ(bob_message_bytes(f, 4, 10), fe * (4 * 10 + 20) + 2);
  EXPECT_EQ(alice_message_bytes(f), 2 * fe);
}

}  // namespace
}  // namespace ppgr::dotprod

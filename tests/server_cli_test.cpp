// Integration test for the ppgr_server exit-code contract, driven against
// the real binary (PPGR_SERVER_BIN, injected by CMake):
//   0 clean | 2 usage / unwritable output | 3 batch degraded (malformed,
//   rejected or faulted) | 4 conformance drift only.
// Also pins the per-line error reports on stderr, the wide-event session
// log, and the post-mortem bundle landing for faulting sessions.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef PPGR_SERVER_BIN
#error "PPGR_SERVER_BIN must be defined to the ppgr_server binary path"
#endif

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path};
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

// Runs the server via the shell, capturing exit code, stdout and stderr.
RunResult run_server(const std::string& args) {
  const std::string out_path = temp_path("cli.out");
  const std::string err_path = temp_path("cli.err");
  const std::string cmd = std::string(PPGR_SERVER_BIN) + " " + args + " > " +
                          out_path + " 2> " + err_path;
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  return r;
}

// One small valid HE session; `extra` lines are appended verbatim.
std::string valid_session(std::uint64_t sid, const std::string& extra = "") {
  std::ostringstream ss;
  ss << "session " << sid << "\n"
     << "spec 4 2 8 4 8\n"
     << "k 1\n"
     << "criterion 35 120 0 0\n"
     << "weights 10 5 2 1\n"
     << "participant 34 118 90 55\n"
     << "participant 52 160 20 90\n"
     << "participant 35 121 40 40\n"
     << extra;
  return ss.str();
}

TEST(ServerCli, CleanBatchExitsZero) {
  const std::string req = temp_path("clean.req");
  write_file(req, valid_session(1) + valid_session(2));
  const RunResult r = run_server(req);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("session 1 (he)"), std::string::npos);
  EXPECT_NE(r.out.find("session 2 (he)"), std::string::npos);
}

TEST(ServerCli, UsageErrorExitsTwo) {
  const RunResult r = run_server("--no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST(ServerCli, MissingRequestFileExitsOne) {
  const RunResult r = run_server(temp_path("does-not-exist.req"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(ServerCli, MalformedLinesAreReportedAndExitThree) {
  const std::string req = temp_path("malformed.req");
  // Session 1 is fine; session 2 has a bad spec line; a stray directive
  // before any session is also reported.
  write_file(req, valid_session(1) +
                      "session 2\n"
                      "spec 4 2\n"  // truncated
                      "k 1\n");
  const RunResult r = run_server(req);
  EXPECT_EQ(r.exit_code, 3);
  // Per-line error report: file:line plus the dropped-session notice.
  EXPECT_NE(r.err.find("malformed.req:10"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("session 2 dropped"), std::string::npos);
  EXPECT_NE(r.err.find("batch degraded"), std::string::npos);
  // The good session still ran.
  EXPECT_NE(r.out.find("session 1 (he)"), std::string::npos);
}

TEST(ServerCli, UnwritableOutputPathExitsTwoBeforeRunning) {
  const std::string req = temp_path("unwritable.req");
  write_file(req, valid_session(1));
  const RunResult r =
      run_server(req + " --rollup-out x --metrics-out /nonexistent-dir/m.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
  // Fail-fast: no session output was produced.
  EXPECT_EQ(r.out.find("session 1"), std::string::npos);
}

TEST(ServerCli, UnwritablePostmortemDirExitsTwo) {
  const std::string req = temp_path("pmdir.req");
  write_file(req, valid_session(1));
  const RunResult r =
      run_server(req + " --postmortem-dir /nonexistent-ppgr-dir");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(ServerCli, FaultingSessionExitsThreeAndWritesPostmortem) {
  const std::string req = temp_path("faulting.req");
  write_file(req, valid_session(1, "fault-plan seed=7,crash=2@1\n") +
                      valid_session(2));
  const std::string pm_dir = ::testing::TempDir();
  const std::string slog = temp_path("faulting.slog.jsonl");
  const RunResult r =
      run_server(req + " --audit --flight-events 256 --postmortem-dir " +
                 pm_dir + " --session-log-out " + slog);
  EXPECT_EQ(r.exit_code, 3) << r.err;
  EXPECT_NE(r.err.find("session fault"), std::string::npos);
  // The bundle landed, with the flight recording inside.
  const std::string bundle = slurp(pm_dir + "/session-1.postmortem.json");
  EXPECT_NE(bundle.find("\"schema\": \"ppgr.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"ppgr.flight.v1\""), std::string::npos);
  // The wide-event log has one line per session, fault coordinates on the
  // faulted one.
  const std::string log = slurp(slog);
  EXPECT_NE(log.find("\"outcome\": \"fault\""), std::string::npos);
  EXPECT_NE(log.find("\"outcome\": \"ok\""), std::string::npos);
  std::remove((pm_dir + "/session-1.postmortem.json").c_str());
}

TEST(ServerCli, AuditDriftAloneExitsFour) {
  // A degrade-on-dropout continuation completes (outcome ok, nothing
  // malformed or faulted) but the audit records the incompleteness — the
  // drift-only exit path.
  const std::string req = temp_path("drift.req");
  write_file(req, valid_session(
                      1, "fault-plan seed=7,crash=2@1\ndegrade-on-dropout\n"));
  const RunResult r = run_server(req + " --audit");
  EXPECT_EQ(r.exit_code, 4) << r.err;
  EXPECT_NE(r.err.find("audit drift"), std::string::npos);
  EXPECT_NE(r.err.find("conformance drift"), std::string::npos);
}

TEST(ServerCli, SessionLogHasOneLinePerSession) {
  const std::string req = temp_path("slog.req");
  write_file(req, valid_session(1) + valid_session(2));
  const std::string slog = temp_path("slog.jsonl");
  const RunResult r = run_server(req + " --session-log-out " + slog);
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::ifstream in{slog};
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"schema\": \"ppgr.session.v1\""),
              std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
}

}  // namespace

// Tests for the Batcher network generator and the multiparty rank sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sss/mpc_sort.h"
#include "sss/sort_network.h"

namespace ppgr::sss {
namespace {

using mpz::ChaChaRng;
using mpz::FpCtx;

const FpCtx& small_field() {
  static const FpCtx f{mpz::Nat{131071}};  // 2^17 - 1
  return f;
}

class BatcherSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatcherSizes, SortsEveryRandomInput) {
  const std::size_t n = GetParam();
  const auto net = batcher_network(n);
  ChaChaRng rng{70 + n};
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.below_u64(50);  // duplicates likely
    std::vector<std::uint64_t> expect = v;
    std::sort(expect.begin(), expect.end());
    apply_network_plain(net, v);
    EXPECT_EQ(v, expect) << "n=" << n;
  }
}

TEST_P(BatcherSizes, LayersTouchDisjointWires) {
  const auto net = batcher_network(GetParam());
  for (const Layer& layer : net) {
    std::vector<std::size_t> wires;
    for (const Comparator& c : layer) {
      EXPECT_LT(c.lo, c.hi);
      wires.push_back(c.lo);
      wires.push_back(c.hi);
    }
    std::sort(wires.begin(), wires.end());
    EXPECT_TRUE(std::adjacent_find(wires.begin(), wires.end()) == wires.end())
        << "duplicate wire in a parallel layer";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatcherSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 25, 31,
                                           64));

TEST(Batcher, AsymptoticsMatchPaper) {
  // O(n (log n)^2) comparators and O((log n)^2) depth.
  for (std::size_t n : {16u, 64u, 256u}) {
    const auto net = batcher_network(n);
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(comparator_count(net)),
              0.5 * n * logn * (logn + 1) + n);
    EXPECT_LE(static_cast<double>(net.size()), logn * (logn + 1) / 2 + 1);
  }
}

// ---- MPC rank sort ----

std::vector<std::size_t> plain_ranks(const std::vector<std::uint64_t>& vals) {
  // rank 1 = largest; ties broken arbitrarily but consistently with a stable
  // descending sort by (value, index).
  std::vector<std::size_t> idx(vals.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return vals[a] > vals[b]; });
  std::vector<std::size_t> ranks(vals.size());
  for (std::size_t pos = 0; pos < idx.size(); ++pos) ranks[idx[pos]] = pos + 1;
  return ranks;
}

TEST(MpcRankSort, DistinctValuesExactRanks) {
  ChaChaRng rng{80};
  MpcEngine engine{small_field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{500}, Nat{100}, Nat{900}, Nat{300},
                                Nat{700}};
  const auto result = mpc_rank_sort(engine, values);
  EXPECT_EQ(result.ranks, (std::vector<std::size_t>{3, 5, 1, 4, 2}));
  EXPECT_EQ(result.comparators, comparator_count(batcher_network(5)));
  EXPECT_GT(result.costs.mults, 0u);
  EXPECT_GT(result.parallel_rounds, 0u);
  EXPECT_LT(result.parallel_rounds, result.costs.rounds);
}

TEST(MpcRankSort, RandomInputsMatchPlainRanking) {
  ChaChaRng rng{81};
  for (std::size_t n : {2u, 3u, 6u}) {
    MpcEngine engine{small_field(), 5, 2, rng};
    std::vector<std::uint64_t> raw(n);
    for (auto& x : raw) x = rng.below_u64(60000);
    std::vector<Nat> values;
    for (auto x : raw) values.emplace_back(x);
    const auto result = mpc_rank_sort(engine, values);
    // With distinct values the rank vector must match the plain ranking; with
    // duplicates the positions of equal values may swap, so compare sorted
    // multisets of (value, rank) consistency: rank order must respect values.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (raw[i] > raw[j]) {
          EXPECT_LT(result.ranks[i], result.ranks[j]);
        }
      }
    }
    // Ranks are a permutation of 1..n.
    auto sorted = result.ranks;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i + 1);
  }
}

TEST(MpcRankSort, DuplicateValues) {
  ChaChaRng rng{82};
  MpcEngine engine{small_field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{5}, Nat{5}, Nat{9}, Nat{1}};
  const auto result = mpc_rank_sort(engine, values);
  EXPECT_EQ(result.ranks[2], 1u);
  EXPECT_EQ(result.ranks[3], 4u);
  // The two fives occupy ranks {2, 3} in some order.
  EXPECT_EQ(std::min(result.ranks[0], result.ranks[1]), 2u);
  EXPECT_EQ(std::max(result.ranks[0], result.ranks[1]), 3u);
}

TEST(MpcRankSort, RejectsOutOfRangeValues) {
  ChaChaRng rng{83};
  MpcEngine engine{small_field(), 5, 2, rng};
  const std::vector<Nat> values{small_field().p().shr(1), Nat{1}};
  EXPECT_THROW((void)mpc_rank_sort(engine, values), std::invalid_argument);
  EXPECT_THROW((void)mpc_rank_sort(engine, std::vector<Nat>{}),
               std::invalid_argument);
}

TEST(MpcRankSort, CountOnlyModeCharges) {
  ChaChaRng rng{84};
  MpcEngine engine{small_field(), 7, 3, rng, MpcEngine::Mode::kCountOnly};
  const std::vector<Nat> values(10, Nat{});
  const auto result = mpc_rank_sort(engine, values);
  EXPECT_TRUE(result.ranks.empty());
  EXPECT_EQ(result.comparators, comparator_count(batcher_network(10)));
  // ~O(l) mults per comparator.
  EXPECT_GT(result.costs.mults, result.comparators * small_field().bits());
  EXPECT_GT(result.parallel_rounds, 0u);
}

TEST(MpcRankSort, PlainRankHelperAgreesOnDistinct) {
  // Guard the test helper itself.
  EXPECT_EQ(plain_ranks({10, 30, 20}), (std::vector<std::size_t>{3, 1, 2}));
}

}  // namespace
}  // namespace ppgr::sss

// Tests for the probabilistic top-k extension (Burkhart–Dimitropoulos
// style, reference [4] of the paper).
#include <gtest/gtest.h>

#include <algorithm>

#include "sss/sort_network.h"
#include "sss/topk.h"

namespace ppgr::sss {
namespace {

using mpz::ChaChaRng;
using mpz::FpCtx;

const FpCtx& field() {
  static const FpCtx f{mpz::Nat{131071}};  // 2^17 - 1
  return f;
}

TEST(TopK, DistinctValuesExactSelection) {
  ChaChaRng rng{300};
  MpcEngine engine{field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{50}, Nat{900}, Nat{10}, Nat{700},
                                Nat{300}};
  const auto result = probabilistic_topk(engine, values, 2, 10);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.selected, 2u);
  EXPECT_EQ(result.in_topk,
            (std::vector<bool>{false, true, false, true, false}));
  EXPECT_LE(result.iterations, 10u);
  EXPECT_GT(result.costs.comparisons, 0u);
}

TEST(TopK, RandomizedAgainstPlainSelection) {
  ChaChaRng rng{301};
  for (int iter = 0; iter < 6; ++iter) {
    MpcEngine engine{field(), 5, 2, rng};
    const std::size_t n = 4 + rng.below_u64(4);
    const std::size_t k = 1 + rng.below_u64(n);
    std::vector<std::uint64_t> raw(n);
    for (auto& x : raw) x = rng.below_u64(1 << 12);
    std::vector<Nat> values;
    for (auto x : raw) values.emplace_back(x);
    const auto result = probabilistic_topk(engine, values, k, 12);

    // Determine the plain k-th largest; with distinct values the selection
    // must match exactly, otherwise it must be a superset covering ties.
    auto sorted = raw;
    std::sort(sorted.rbegin(), sorted.rend());
    const std::uint64_t kth = sorted[k - 1];
    for (std::size_t i = 0; i < n; ++i) {
      if (raw[i] > kth) {
        EXPECT_TRUE(result.in_topk[i]) << "value above kth must be selected";
      }
      if (raw[i] < kth) {
        EXPECT_FALSE(result.in_topk[i]) << "value below kth must be excluded";
      }
    }
    EXPECT_GE(result.selected, k);
  }
}

TEST(TopK, TiesYieldSuperset) {
  ChaChaRng rng{302};
  MpcEngine engine{field(), 5, 2, rng};
  // Three-way tie at the cut for k=2.
  const std::vector<Nat> values{Nat{100}, Nat{100}, Nat{100}, Nat{5}};
  const auto result = probabilistic_topk(engine, values, 2, 8);
  EXPECT_EQ(result.selected, 3u);  // all tied values included
  EXPECT_FALSE(result.exact);
  EXPECT_FALSE(result.in_topk[3]);
}

TEST(TopK, KEqualsNSelectsEverything) {
  ChaChaRng rng{303};
  MpcEngine engine{field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{4}, Nat{4}, Nat{9}};
  const auto result = probabilistic_topk(engine, values, 3, 6);
  EXPECT_EQ(result.selected, 3u);
  EXPECT_TRUE(result.exact);
}

TEST(TopK, KEqualsOne) {
  ChaChaRng rng{304};
  MpcEngine engine{field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{7}, Nat{63}, Nat{12}};
  const auto result = probabilistic_topk(engine, values, 1, 6);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.in_topk, (std::vector<bool>{false, true, false}));
}

TEST(TopK, RejectsBadArguments) {
  ChaChaRng rng{305};
  MpcEngine engine{field(), 5, 2, rng};
  const std::vector<Nat> values{Nat{1}, Nat{2}};
  EXPECT_THROW((void)probabilistic_topk(engine, values, 0, 8),
               std::invalid_argument);
  EXPECT_THROW((void)probabilistic_topk(engine, values, 3, 8),
               std::invalid_argument);
  EXPECT_THROW((void)probabilistic_topk(engine, {}, 1, 8),
               std::invalid_argument);
  // Value outside the declared bit range.
  const std::vector<Nat> wide{Nat{300}};
  EXPECT_THROW((void)probabilistic_topk(engine, wide, 1, 8),
               std::invalid_argument);
  // Field too small for the declared range.
  EXPECT_THROW((void)probabilistic_topk(engine, values, 1, 16),
               std::invalid_argument);
}

TEST(TopK, CountOnlyModeWorstCase) {
  ChaChaRng rng{306};
  MpcEngine engine{field(), 7, 3, rng, MpcEngine::Mode::kCountOnly};
  const std::vector<Nat> values(10);
  const auto result = probabilistic_topk(engine, values, 3, 12);
  EXPECT_EQ(result.iterations, 12u);
  // O(l·n) comparisons, far below a full sort's for moderate n.
  EXPECT_EQ(result.costs.comparisons, 12u * 10u);
}

TEST(TopK, ComparisonCountTradeoffVsFullSort) {
  // Threshold search costs l·n comparisons (worst case) vs the sort's
  // ~n(log n)^2/4 comparators: the sort wins on comparisons while
  // (log n)^2/4 < l, and top-k wins beyond that crossover. Verify both
  // regimes of the trade-off with the exact counts.
  ChaChaRng rng{307};
  const std::size_t l = 10;
  // Small n: sort cheaper.
  {
    const std::size_t n = 64;
    MpcEngine engine{field(), 7, 3, rng, MpcEngine::Mode::kCountOnly};
    const auto topk = probabilistic_topk(engine, std::vector<Nat>(n), 3, l);
    EXPECT_EQ(topk.costs.comparisons, l * n);
    EXPECT_LT(comparator_count(batcher_network(n)), topk.costs.comparisons);
  }
  // Large n: top-k cheaper ((log n)^2 outgrows 4l).
  {
    const std::size_t n = 8192;
    EXPECT_GT(comparator_count(batcher_network(n)), l * n);
  }
}

}  // namespace
}  // namespace ppgr::sss

// Unit tests for the crypto-op metrics layer (runtime/metrics.h): counter
// and histogram correctness, the disabled-mode no-op contract of the
// thread-local sink funnel, and merge determinism when per-task buffers are
// filled concurrently under the thread pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/span.h"
#include "runtime/thread_pool.h"

namespace ppgr::runtime {
namespace {

TEST(OpTally, AccumulatesAndReportsEmpty) {
  OpTally a;
  EXPECT_TRUE(a.empty());
  a.v[static_cast<std::size_t>(CryptoOp::kGroupExp)] = 3;
  EXPECT_FALSE(a.empty());
  OpTally b;
  b.v[static_cast<std::size_t>(CryptoOp::kGroupExp)] = 4;
  b.v[static_cast<std::size_t>(CryptoOp::kGroupMul)] = 1;
  a += b;
  EXPECT_EQ(a[CryptoOp::kGroupExp], 7u);
  EXPECT_EQ(a[CryptoOp::kGroupMul], 1u);
}

TEST(LatencyHistogram, PowerOfTwoBinning) {
  LatencyHistogram h;
  h.add_seconds(1e-9);   // 1 ns -> bin 0
  h.add_seconds(3e-9);   // 3 ns -> bin 1 ([2, 4))
  h.add_seconds(5e-9);   // 5 ns -> bin 2 ([4, 8))
  h.add_seconds(0.0);    // sub-ns clamps into bin 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[2], 1u);
  EXPECT_NEAR(h.total_seconds(), 9e-9, 1e-15);
  EXPECT_EQ(LatencyHistogram::bin_floor_ns(10), 1024u);

  // Out-of-range samples clamp into the last bin instead of overflowing.
  LatencyHistogram big;
  big.add_seconds(1e6);  // ~11.5 days
  EXPECT_EQ(big.bins()[LatencyHistogram::kBins - 1], 1u);

  h.merge(big);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bins()[LatencyHistogram::kBins - 1], 1u);
}

TEST(MetricsBuffer, RoutesByContext) {
  MetricsBuffer buf;
  EXPECT_TRUE(buf.empty());
  // No context yet: counts land in the (setup, orchestrator) slot.
  buf.add(CryptoOp::kGroupMul);
  buf.set_context(Phase::kPhase2, 3);
  buf.add(CryptoOp::kGroupExp, 5);
  // Switching back to an existing context reuses its slot.
  buf.set_context(Phase::kSetup, kOrchestratorParty);
  buf.add(CryptoOp::kGroupMul);
  ASSERT_EQ(buf.slots().size(), 2u);
  EXPECT_EQ(buf.slots()[0].phase, Phase::kSetup);
  EXPECT_EQ(buf.slots()[0].party, kOrchestratorParty);
  EXPECT_EQ(buf.slots()[0].tally[CryptoOp::kGroupMul], 2u);
  EXPECT_EQ(buf.slots()[1].phase, Phase::kPhase2);
  EXPECT_EQ(buf.slots()[1].party, 3);
  EXPECT_EQ(buf.slots()[1].tally[CryptoOp::kGroupExp], 5u);
}

TEST(CountOp, NoSinkIsANoOp) {
  // The default state: no MetricsScope installed anywhere on this thread.
  ASSERT_EQ(current_metrics_sink(), nullptr);
  count_op(CryptoOp::kGroupExp);  // must not crash or allocate a sink
  EXPECT_EQ(current_metrics_sink(), nullptr);
  { const ScopedOpTimer t{CryptoOp::kElGamalEncrypt}; }
  EXPECT_EQ(current_metrics_sink(), nullptr);
}

TEST(MetricsScope, InstallsAndRestoresSink) {
  MetricsBuffer outer, inner;
  {
    const MetricsScope a{&outer, Phase::kPhase1, 1};
    EXPECT_EQ(current_metrics_sink(), &outer);
    count_op(CryptoOp::kGroupMul);
    {
      const MetricsScope b{&inner, Phase::kPhase2, 2};
      EXPECT_EQ(current_metrics_sink(), &inner);
      count_op(CryptoOp::kGroupMul);
      // A null buffer keeps the previous sink installed (no-op scope).
      const MetricsScope c{nullptr, Phase::kPhase3, 3};
      EXPECT_EQ(current_metrics_sink(), &inner);
    }
    EXPECT_EQ(current_metrics_sink(), &outer);
  }
  EXPECT_EQ(current_metrics_sink(), nullptr);
  EXPECT_EQ(outer.slots().size(), 1u);
  EXPECT_EQ(outer.slots()[0].tally[CryptoOp::kGroupMul], 1u);
  EXPECT_EQ(inner.slots()[0].tally[CryptoOp::kGroupMul], 1u);
}

TEST(ScopedOpTimer, CountsAndRecordsLatency) {
  MetricsBuffer buf;
  {
    const MetricsScope scope{&buf, Phase::kPhase2, 1};
    const ScopedOpTimer t{CryptoOp::kCompareCircuit};
  }
  EXPECT_EQ(buf.slots()[0].tally[CryptoOp::kCompareCircuit], 1u);
  const auto& h =
      buf.histograms()[static_cast<std::size_t>(CryptoOp::kCompareCircuit)];
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.total_seconds(), 0.0);
}

TEST(MetricsRegistry, AbsorbMergesByPhaseAndParty) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  MetricsBuffer a, b;
  a.set_context(Phase::kPhase2, 1);
  a.add(CryptoOp::kGroupExp, 10);
  b.set_context(Phase::kPhase2, 1);
  b.add(CryptoOp::kGroupExp, 5);
  b.set_context(Phase::kPhase3, 2);
  b.add(CryptoOp::kGroupMul, 7);
  reg.absorb(a);
  reg.absorb(b);
  EXPECT_TRUE(a.empty());  // absorb clears the buffer
  EXPECT_TRUE(b.empty());

  EXPECT_EQ(reg.total(CryptoOp::kGroupExp), 15u);
  EXPECT_EQ(reg.phase_totals(Phase::kPhase2)[CryptoOp::kGroupExp], 15u);
  EXPECT_EQ(reg.phase_totals(Phase::kPhase3)[CryptoOp::kGroupMul], 7u);
  const auto slots = reg.slots();
  ASSERT_EQ(slots.size(), 2u);  // merged, not appended
  EXPECT_EQ(slots[0].phase, Phase::kPhase2);
  EXPECT_EQ(slots[1].phase, Phase::kPhase3);

  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, JsonModes) {
  MetricsRegistry reg;
  reg.add(Phase::kPhase2, 1, CryptoOp::kGroupExp, 3);
  MetricsBuffer buf;
  {
    const MetricsScope scope{&buf, Phase::kPhase2, 1};
    const ScopedOpTimer t{CryptoOp::kGroupExp};
  }
  reg.absorb(buf);

  const std::string det = reg.to_json(/*include_timing=*/false);
  EXPECT_NE(det.find("\"schema\": \"ppgr.metrics.v1\""), std::string::npos);
  EXPECT_NE(det.find("\"deterministic\": true"), std::string::npos);
  EXPECT_NE(det.find("\"group_exp\": 4"), std::string::npos);
  // Timing fields only appear in the nondeterministic mode.
  EXPECT_EQ(det.find("total_seconds"), std::string::npos);
  const std::string timed = reg.to_json(/*include_timing=*/true);
  EXPECT_NE(timed.find("\"deterministic\": false"), std::string::npos);
  EXPECT_NE(timed.find("total_seconds"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentPerTaskBuffersMergeDeterministically) {
  // The engine's pattern: one MetricsBuffer per task, tasks run on the
  // pool, buffers absorbed in task-index order after the barrier. The
  // deterministic JSON must be byte-identical for any thread count.
  constexpr std::size_t kTasks = 64;
  const auto run_at = [](std::size_t threads) {
    ThreadPool pool{threads};
    std::vector<MetricsBuffer> bufs(kTasks);
    pool.parallel_for(kTasks, [&](std::size_t i) {
      const MetricsScope scope{&bufs[i], Phase::kPhase2,
                               static_cast<std::int32_t>(i % 4)};
      for (std::size_t r = 0; r <= i; ++r) count_op(CryptoOp::kGroupMul);
      count_op(CryptoOp::kGroupExp, i);
    });
    MetricsRegistry reg;
    for (auto& buf : bufs) reg.absorb(buf);
    return reg.to_json(/*include_timing=*/false);
  };
  const std::string serial = run_at(1);
  EXPECT_EQ(serial, run_at(4));
  EXPECT_EQ(serial, run_at(0));  // hardware concurrency

  // And the totals are the closed-form sums, i.e. nothing was lost or
  // double-counted across threads.
  ThreadPool pool{4};
  std::vector<MetricsBuffer> bufs(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    const MetricsScope scope{&bufs[i], Phase::kPhase2, 0};
    for (std::size_t r = 0; r <= i; ++r) count_op(CryptoOp::kGroupMul);
  });
  MetricsRegistry reg;
  for (auto& buf : bufs) reg.absorb(buf);
  EXPECT_EQ(reg.total(CryptoOp::kGroupMul), kTasks * (kTasks + 1) / 2);
}

TEST(PhaseReport, ListsPhasesAndTotals) {
  MetricsRegistry reg;
  reg.add(Phase::kPhase2, 1, CryptoOp::kGroupExp, 42);
  const std::string report = phase_report(reg, nullptr);
  EXPECT_NE(report.find("phase2"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

}  // namespace
}  // namespace ppgr::runtime

// Engine-level fault isolation: sessions killed by injected faults must
// surface as typed SessionResult failures while the engine keeps serving
// everything else. The load-bearing claims:
//
//   * a batch with crash-killed sessions completes every surviving session
//     BIT-IDENTICALLY to an engine that never saw the doomed sessions;
//   * the shared PrecomputeCache is not poisoned by faulted sessions — a
//     cache warmed under fault load produces the same results as a cold one
//     (multi-wave soak);
//   * the rollup reports per-outcome counts and the typed fault coordinates
//     for exactly the killed sessions — and a fault-free engine's rollup
//     stays byte-free of any fault vocabulary (golden compatibility).
//
// Runs under TSan via `scripts/ci.sh engine` / `scripts/ci.sh chaos`.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/introspect.h"

namespace ppgr::engine {
namespace {

using core::AttrVec;
using core::ProblemSpec;
using mpz::ChaChaRng;

RankingRequest make_request(std::uint64_t sid, std::size_t n, std::size_t k,
                            FrameworkKind kind = FrameworkKind::kHe,
                            std::uint64_t input_seed = 77) {
  RankingRequest req;
  req.session_id = sid;
  req.framework = kind;
  req.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  req.k = k;
  ChaChaRng rng{input_seed + sid};
  req.v0.resize(req.spec.m);
  req.w.resize(req.spec.m);
  for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
  for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
  for (std::size_t j = 0; j < n; ++j) {
    AttrVec v(req.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    req.infos.push_back(std::move(v));
  }
  return req;
}

bool is_doomed(std::uint64_t sid, const std::vector<std::uint64_t>& doomed) {
  return std::find(doomed.begin(), doomed.end(), sid) != doomed.end();
}

void expect_bit_identical(const SessionResult& a, const SessionResult& b) {
  ASSERT_EQ(a.id, b.id);
  ASSERT_EQ(a.framework, b.framework);
  EXPECT_EQ(a.outcome, SessionOutcome::kOk);
  EXPECT_EQ(b.outcome, SessionOutcome::kOk);
  EXPECT_EQ(a.ranks(), b.ranks());
  EXPECT_EQ(a.submitted_ids(), b.submitted_ids());
  if (a.framework == FrameworkKind::kHe) {
    EXPECT_EQ(a.he.betas, b.he.betas);
  }
  const auto& ta = a.trace().transfers();
  const auto& tb = b.trace().transfers();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].round, tb[i].round) << "transfer " << i;
    EXPECT_EQ(ta[i].src, tb[i].src) << "transfer " << i;
    EXPECT_EQ(ta[i].dst, tb[i].dst) << "transfer " << i;
    EXPECT_EQ(ta[i].bytes, tb[i].bytes) << "transfer " << i;
  }
}

// 16 sessions, 4 of them killed by a scheduled participant crash in phase 2
// (past the degrade point, so each is unconditionally fatal). The other 12
// must come out bit-identical to a run that never contained the doomed four.
TEST(EngineFault, CrashedSessionsDoNotPerturbSurvivors) {
  const std::vector<std::uint64_t> doomed{3, 7, 11, 16};
  const std::size_t kSessions = 16;

  std::vector<RankingRequest> mixed, clean;
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    const FrameworkKind kind =
        sid % 4 == 0 ? FrameworkKind::kSs : FrameworkKind::kHe;
    RankingRequest req = make_request(sid, /*n=*/5, /*k=*/2, kind);
    if (is_doomed(sid, doomed)) {
      req.fault_plan = net::parse_fault_plan("crash=2@2");
      req.fault_plan.seed = 100 + sid;
    } else {
      clean.push_back(req);
    }
    mixed.push_back(std::move(req));
  }

  PrecomputeCache cache_a, cache_b;
  EngineConfig cfg;
  cfg.seed = 41;
  cfg.max_in_flight = 4;

  cfg.cache = &cache_a;
  SessionEngine engine_a{cfg};
  const auto with_faults = engine_a.run_batch(std::move(mixed));

  cfg.cache = &cache_b;
  SessionEngine engine_b{cfg};
  const auto reference = engine_b.run_batch(std::move(clean));

  ASSERT_EQ(with_faults.size(), kSessions);
  ASSERT_EQ(reference.size(), kSessions - doomed.size());

  std::size_t ref_i = 0, faults_seen = 0;
  for (const SessionResult& res : with_faults) {
    if (is_doomed(res.id, doomed)) {
      ++faults_seen;
      EXPECT_EQ(res.outcome, SessionOutcome::kFault) << "session " << res.id;
      ASSERT_TRUE(res.fault.has_value()) << "session " << res.id;
      EXPECT_EQ(res.fault->phase, runtime::Phase::kPhase2)
          << "session " << res.id;
      // Satellite contract: every engine-level failure message names its
      // session.
      EXPECT_NE(res.fault_what.find("session " + std::to_string(res.id)),
                std::string::npos)
          << res.fault_what;
      EXPECT_TRUE(res.ranks().empty()) << "session " << res.id;
    } else {
      ASSERT_LT(ref_i, reference.size());
      expect_bit_identical(res, reference[ref_i]);
      ++ref_i;
    }
  }
  EXPECT_EQ(faults_seen, doomed.size());
  EXPECT_EQ(ref_i, reference.size());

  // Rollup: the fault-aware engine reports per-outcome counts and the
  // typed coordinates; the fault-free engine's rollup must not contain any
  // fault vocabulary at all (its export stays golden-compatible).
  const std::string rollup_a = engine_a.rollup_json();
  EXPECT_NE(rollup_a.find("\"outcomes\": {\"ok\": 12, \"fault\": 4}"),
            std::string::npos)
      << rollup_a;
  EXPECT_NE(rollup_a.find("\"outcome\": \"fault\""), std::string::npos);
  EXPECT_NE(rollup_a.find("\"phase\": \"phase2\""), std::string::npos);
  const std::string rollup_b = engine_b.rollup_json();
  EXPECT_EQ(rollup_b.find("\"outcomes\""), std::string::npos) << rollup_b;
  EXPECT_EQ(rollup_b.find("\"outcome\""), std::string::npos) << rollup_b;
  EXPECT_EQ(rollup_b.find("\"fault\""), std::string::npos) << rollup_b;
}

// Multi-wave soak on ONE shared cache: waves alternate fault-heavy and
// clean batches. Every clean wave must be bit-identical to the same batch
// run by a fresh engine on a fresh cache — i.e. fault-killed sessions never
// leave poisoned entries behind the shared precompute.
TEST(EngineFault, SharedCacheSurvivesFaultWavesUnpoisoned) {
  PrecomputeCache shared;
  EngineConfig cfg;
  cfg.seed = 17;
  cfg.max_in_flight = 3;

  for (int wave = 0; wave < 3; ++wave) {
    // Fault-heavy wave: half the sessions crash (phase 1, no degrade —
    // fatal), half complete and warm the shared cache.
    std::vector<RankingRequest> storm;
    for (std::uint64_t s = 1; s <= 6; ++s) {
      RankingRequest req =
          make_request(1000 * (wave + 1) + s, /*n=*/4, /*k=*/1);
      if (s % 2 == 0) {
        req.fault_plan = net::parse_fault_plan(
            "crash=1@1,drop=0.2,corrupt=0.1");
        req.fault_plan.seed = 7 * static_cast<std::uint64_t>(wave) + s;
      }
      storm.push_back(std::move(req));
    }
    cfg.cache = &shared;
    SessionEngine stormy{cfg};
    const auto storm_results = stormy.run_batch(std::move(storm));
    std::size_t storm_faults = 0;
    for (const auto& r : storm_results)
      storm_faults += r.outcome == SessionOutcome::kFault ? 1 : 0;
    EXPECT_EQ(storm_faults, 3u) << "wave " << wave;

    // Clean wave over the warmed shared cache vs a cold fresh cache.
    auto clean_batch = [&] {
      std::vector<RankingRequest> reqs;
      for (std::uint64_t s = 1; s <= 4; ++s)
        reqs.push_back(make_request(2000 * (wave + 1) + s, /*n=*/4, /*k=*/1,
                                    s == 4 ? FrameworkKind::kSs
                                           : FrameworkKind::kHe));
      return reqs;
    };
    cfg.cache = &shared;
    SessionEngine warm{cfg};
    const auto warm_results = warm.run_batch(clean_batch());

    PrecomputeCache cold_cache;
    cfg.cache = &cold_cache;
    SessionEngine cold{cfg};
    const auto cold_results = cold.run_batch(clean_batch());

    ASSERT_EQ(warm_results.size(), cold_results.size());
    for (std::size_t i = 0; i < warm_results.size(); ++i)
      expect_bit_identical(warm_results[i], cold_results[i]);
  }
}

// Satellite 2: typed EngineError messages name the offending session and
// the doomed field, so multi-session operators can attribute rejections.
TEST(EngineFault, RejectionMessagesNameTheSession) {
  EngineConfig cfg;
  cfg.seed = 5;
  SessionEngine engine{cfg};

  RankingRequest bad = make_request(31, /*n=*/4, /*k=*/1);
  bad.k = 99;  // k > n: invalid spec
  try {
    engine.submit(std::move(bad));
    FAIL() << "invalid request accepted";
  } catch (const EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("session 31"), std::string::npos)
        << e.what();
  }

  RankingRequest dup1 = make_request(32, /*n=*/4, /*k=*/1);
  RankingRequest dup2 = make_request(32, /*n=*/4, /*k=*/1);
  engine.submit(std::move(dup1));
  try {
    engine.submit(std::move(dup2));
    FAIL() << "duplicate session accepted";
  } catch (const EngineError& e) {
    EXPECT_NE(std::string(e.what()).find("session 32"), std::string::npos)
        << e.what();
  }
  engine.drain();
}

// Watchdog end-to-end on a doomed session: while the crash-planned session
// is in flight, a zero-deadline snapshot must report it stalled (health
// kStalled, sticky stall counter bumped); once it dies, the engine reports
// the typed fault and the post-mortem snapshot degrades to kDegraded with
// the stall history preserved. Injected fault delays are *virtual* time, so
// the test uses the `stall_deadline_s <= 0` hook (flags any in-flight
// session) instead of waiting out a wall-clock deadline.
TEST(EngineFault, WatchdogReportsCrashSessionStalledThenFault) {
  EngineConfig cfg;
  cfg.seed = 59;
  cfg.max_in_flight = 1;
  SessionEngine engine{cfg};

  // A doomed session is only a few milliseconds of real work before its
  // phase-2 crash, so on a busy/single-core host the scheduler can run it
  // to completion between two snapshots of the observer thread. Each
  // attempt observes with high probability; fresh doomed sessions are
  // submitted until one is caught in flight.
  bool saw_stalled = false;
  std::uint64_t sticky_stalls = 0;
  std::size_t attempts = 0;
  for (; attempts < 20 && !saw_stalled; ++attempts) {
    const std::uint64_t sid = 21 + attempts;
    RankingRequest doomed = make_request(sid, /*n=*/12, /*k=*/2);
    doomed.fault_plan = net::parse_fault_plan("crash=2@2");
    doomed.fault_plan.seed = 121 + attempts;
    engine.submit(std::move(doomed));

    for (;;) {
      const EngineSnapshot s = snapshot(engine, /*stall_deadline_s=*/0.0);
      if (!s.sessions.empty()) {
        const SessionTelemetry& t = s.sessions.front();
        EXPECT_EQ(t.id, sid);
        EXPECT_TRUE(t.stalled);  // zero deadline flags any live session
        saw_stalled = true;
        sticky_stalls = t.stalls;
        EXPECT_EQ(s.health, runtime::HealthState::kStalled);
        EXPECT_GE(s.stalls_total, 1u);
        EXPECT_NE(s.to_jsonl().find("\"stalled\": true"), std::string::npos);
        EXPECT_NE(s.health_json().find("\"stalled_sessions\": [" +
                                       std::to_string(sid) + "]"),
                  std::string::npos);
        break;
      }
      if (s.queued == 0 && s.in_flight == 0) break;  // finished unobserved
    }

    // Observed or not, the doomed session must surface as a typed fault.
    const SessionResult res = engine.take(sid);
    EXPECT_EQ(res.outcome, SessionOutcome::kFault);
    ASSERT_TRUE(res.fault.has_value());
    EXPECT_EQ(res.fault->phase, runtime::Phase::kPhase2);
  }
  EXPECT_TRUE(saw_stalled)
      << "watchdog never observed a doomed session in " << attempts
      << " attempts";
  EXPECT_GE(sticky_stalls, 1u);

  // Post-mortem: nothing live, so no stall verdict — but the faults keep
  // health degraded and the stall total is preserved.
  const EngineSnapshot after = snapshot(engine, /*stall_deadline_s=*/5.0);
  EXPECT_EQ(after.in_flight, 0u);
  EXPECT_EQ(after.completed, attempts);
  EXPECT_EQ(after.faulted, attempts);
  EXPECT_EQ(after.health, runtime::HealthState::kDegraded);
  EXPECT_GE(after.stalls_total, 1u);
}

}  // namespace
}  // namespace ppgr::engine

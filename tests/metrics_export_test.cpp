// Golden-file tests for the observability exporters: a fixed-seed framework
// run must produce byte-identical deterministic metrics JSON and Chrome
// trace JSON at parallelism 1, 2 and hardware concurrency, and those bytes
// must match the checked-in goldens (tests/golden/). A diff here means the
// exporter format, the instrumentation coverage or the protocol's operation
// sequence changed — all of which should be deliberate, reviewed changes.
//
// Regenerate the goldens after a deliberate change with:
//   PPGR_UPDATE_GOLDEN=1 ./build/tests/metrics_export_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/framework.h"

#ifndef PPGR_GOLDEN_DIR
#define PPGR_GOLDEN_DIR "tests/golden"
#endif

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

FrameworkResult run_at(std::size_t parallelism) {
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  cfg.n = 5;
  cfg.k = 2;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  cfg.parallelism = parallelism;
  cfg.metrics = true;

  ChaChaRng rng{2024};
  AttrVec v0(cfg.spec.m), w(cfg.spec.m);
  for (auto& x : v0) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
  for (auto& x : w) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d2);
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < cfg.n; ++j) {
    AttrVec v(cfg.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
    infos.push_back(std::move(v));
  }
  return run_framework(cfg, v0, w, infos, rng);
}

std::string golden_path(const char* name) {
  return std::string{PPGR_GOLDEN_DIR} + "/" + name;
}

void check_golden(const char* name, const std::string& produced) {
  const std::string path = golden_path(name);
  if (std::getenv("PPGR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << produced;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with PPGR_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(produced, expected.str())
      << name << " drifted from its golden; if the change is deliberate, "
      << "regenerate with PPGR_UPDATE_GOLDEN=1";
}

TEST(MetricsExport, DeterministicJsonBitIdenticalAcrossParallelism) {
  const auto serial = run_at(1);
  ASSERT_NE(serial.metrics, nullptr);
  ASSERT_NE(serial.spans, nullptr);
  ASSERT_NE(serial.comm, nullptr);
  const std::string metrics_json =
      serial.metrics->to_json(/*include_timing=*/false);
  const std::string trace_json =
      serial.spans->chrome_trace_json(/*deterministic=*/true);
  const std::string comm_json = serial.comm->to_json();
  const std::string comm_trace_json = serial.comm->chrome_trace_json();

  const auto two = run_at(2);
  EXPECT_EQ(metrics_json, two.metrics->to_json(false));
  EXPECT_EQ(trace_json, two.spans->chrome_trace_json(true));
  EXPECT_EQ(comm_json, two.comm->to_json());
  EXPECT_EQ(comm_trace_json, two.comm->chrome_trace_json());

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  const auto many = run_at(hw);
  EXPECT_EQ(metrics_json, many.metrics->to_json(false));
  EXPECT_EQ(trace_json, many.spans->chrome_trace_json(true));
  EXPECT_EQ(comm_json, many.comm->to_json());
  EXPECT_EQ(comm_trace_json, many.comm->chrome_trace_json());
}

TEST(MetricsExport, MetricsJsonMatchesGolden) {
  const auto result = run_at(1);
  check_golden("metrics_small.json",
               result.metrics->to_json(/*include_timing=*/false));
}

TEST(MetricsExport, ChromeTraceMatchesGolden) {
  const auto result = run_at(1);
  check_golden("trace_small.json",
               result.spans->chrome_trace_json(/*deterministic=*/true));
}

TEST(MetricsExport, CommJsonMatchesGolden) {
  const auto result = run_at(1);
  check_golden("comm_small.json", result.comm->to_json());
}

TEST(MetricsExport, CommChromeTraceMatchesGolden) {
  const auto result = run_at(1);
  check_golden("comm_trace_small.json", result.comm->chrome_trace_json());
}

TEST(MetricsExport, DisabledByDefault) {
  // cfg.metrics defaults to false: no registries allocated, no counts.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  ChaChaRng rng{7};
  const std::vector<AttrVec> infos{{1, 2, 3}, {9, 4, 2}, {5, 6, 1}};
  const auto result = run_framework(cfg, {0, 0, 0}, {1, 1, 1}, infos, rng);
  EXPECT_EQ(result.metrics, nullptr);
  EXPECT_EQ(result.spans, nullptr);
  EXPECT_EQ(result.comm, nullptr);
  // The replayable byte-trace pillar stays on regardless.
  EXPECT_GT(result.trace.total_bytes(), 0u);
}

}  // namespace
}  // namespace ppgr::core

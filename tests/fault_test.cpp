// Fault-injection layer tests: the deterministic FaultPlan schedule, the
// plan-spec parser, the CRC32 frame codec, and the Router's channel-recovery
// semantics (retransmit/backoff, dedup, reorder healing, crash points,
// typed ChannelErrors) — plus the strict no-op guarantee when no plan is
// installed.
#include <gtest/gtest.h>

#include <cstring>

#include "net/channel.h"
#include "net/fault.h"
#include "runtime/comm.h"
#include "runtime/trace.h"

namespace ppgr::net {
namespace {

using runtime::Phase;

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (const int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// ---- Plan spec parser ----

TEST(FaultPlanSpec, ParsesFullSpec) {
  const FaultPlanConfig cfg = parse_fault_plan(
      "seed=9,drop=0.25,dup=0.5,reorder=0.1,corrupt=0.01,tamper=0.02,"
      "delay=0.3,delay_s=1.5,phase=2,retries=5,backoff=0.01,deadline=9.5,"
      "crash=3@1,crash=1@3");
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.drop, 0.25);
  EXPECT_DOUBLE_EQ(cfg.duplicate, 0.5);
  EXPECT_DOUBLE_EQ(cfg.reorder, 0.1);
  EXPECT_DOUBLE_EQ(cfg.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(cfg.tamper, 0.02);
  EXPECT_DOUBLE_EQ(cfg.delay, 0.3);
  EXPECT_DOUBLE_EQ(cfg.delay_spike_s, 1.5);
  EXPECT_EQ(cfg.only_phase, 2);
  EXPECT_EQ(cfg.max_retries, 5u);
  EXPECT_DOUBLE_EQ(cfg.backoff_base_s, 0.01);
  EXPECT_DOUBLE_EQ(cfg.deadline_s, 9.5);
  ASSERT_EQ(cfg.crashes.size(), 2u);
  EXPECT_EQ(cfg.crashes[0].party, 3u);
  EXPECT_EQ(cfg.crashes[0].phase, Phase::kPhase1);
  EXPECT_EQ(cfg.crashes[1].party, 1u);
  EXPECT_EQ(cfg.crashes[1].phase, Phase::kPhase3);
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_plan("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash=1@9"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("phase=7"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("seed=abc"), std::invalid_argument);
}

TEST(FaultPlanSpec, DisabledWithoutAnyFault) {
  const FaultPlanConfig cfg = parse_fault_plan("seed=4,retries=7");
  EXPECT_FALSE(cfg.enabled());
}

// ---- Schedule determinism ----

TEST(FaultPlan, DecisionsArePureFunctionsOfCoordinates) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.drop = 0.3;
  cfg.duplicate = 0.2;
  cfg.corrupt = 0.1;
  cfg.delay = 0.25;
  const FaultPlan a{cfg};
  const FaultPlan b{cfg};

  // Same coordinates -> same decision, across instances and across query
  // order (b queried in reverse).
  struct Key {
    std::size_t round, src, dst, msg, attempt;
  };
  std::vector<Key> keys;
  for (std::size_t round = 0; round < 6; ++round)
    for (std::size_t src = 0; src < 3; ++src)
      for (std::size_t dst = 0; dst < 3; ++dst)
        for (std::size_t msg = 0; msg < 4; ++msg)
          keys.push_back(Key{round, src, dst, msg, msg % 2});
  std::vector<FaultDecision> da;
  for (const Key& k : keys)
    da.push_back(a.decide(Phase::kPhase1, k.round, k.src, k.dst, k.msg,
                          k.attempt));
  std::vector<FaultDecision> db(keys.size());
  for (std::size_t i = keys.size(); i-- > 0;)
    db[i] = b.decide(Phase::kPhase1, keys[i].round, keys[i].src, keys[i].dst,
                     keys[i].msg, keys[i].attempt);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(da[i].drop, db[i].drop);
    EXPECT_EQ(da[i].duplicate, db[i].duplicate);
    EXPECT_EQ(da[i].reorder, db[i].reorder);
    EXPECT_EQ(da[i].corrupt, db[i].corrupt);
    EXPECT_EQ(da[i].tamper, db[i].tamper);
    EXPECT_EQ(da[i].delay, db[i].delay);
    EXPECT_EQ(da[i].flip_bit, db[i].flip_bit);
    fired += (da[i].drop || da[i].duplicate || da[i].corrupt || da[i].delay)
                 ? 1
                 : 0;
  }
  EXPECT_GT(fired, 0u);             // the probabilities actually fire
  EXPECT_LT(fired, keys.size());    // ...but not everywhere
}

TEST(FaultPlan, SeedChangesTheSchedule) {
  FaultPlanConfig cfg;
  cfg.drop = 0.5;
  cfg.seed = 1;
  const FaultPlan a{cfg};
  cfg.seed = 2;
  const FaultPlan b{cfg};
  std::size_t diffs = 0;
  for (std::size_t msg = 0; msg < 64; ++msg)
    diffs += a.decide(Phase::kPhase1, 0, 0, 1, msg, 0).drop !=
                     b.decide(Phase::kPhase1, 0, 0, 1, msg, 0).drop
                 ? 1
                 : 0;
  EXPECT_GT(diffs, 0u);
}

TEST(FaultPlan, PhaseRestrictionGatesInjection) {
  FaultPlanConfig cfg;
  cfg.drop = 1.0;
  cfg.only_phase = 2;
  const FaultPlan plan{cfg};
  EXPECT_FALSE(plan.active_in(Phase::kPhase1));
  EXPECT_TRUE(plan.active_in(Phase::kPhase2));
  EXPECT_FALSE(plan.decide(Phase::kPhase1, 0, 0, 1, 0, 0).drop);
  EXPECT_TRUE(plan.decide(Phase::kPhase2, 0, 0, 1, 0, 0).drop);
}

TEST(FaultPlan, CrashPointsActivateByPhase) {
  FaultPlanConfig cfg;
  cfg.crashes.push_back(CrashPoint{2, Phase::kPhase1});
  cfg.crashes.push_back(CrashPoint{1, Phase::kPhase3});
  const FaultPlan plan{cfg};
  EXPECT_EQ(plan.crashes_at(Phase::kPhase1), std::vector<std::size_t>{2});
  EXPECT_TRUE(plan.crashes_at(Phase::kPhase2).empty());
  EXPECT_EQ(plan.crashes_at(Phase::kPhase3), std::vector<std::size_t>{1});
}

// ---- CRC32 + frame codec ----

TEST(Frame, Crc32KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  std::vector<std::uint8_t> data(s, s + std::strlen(s));
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Frame, RoundTripsAndDetectsCorruption) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  std::vector<std::uint8_t> framed = encode_frame(77, payload);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + payload.size());
  const Frame f = decode_frame(framed);
  EXPECT_EQ(f.seq, 77u);
  EXPECT_TRUE(f.crc_ok);
  EXPECT_EQ(f.payload, payload);

  // Any single payload bit flip is detected (crc_ok false, no exception).
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    std::vector<std::uint8_t> bad = framed;
    bad[kFrameHeaderBytes + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    const Frame g = decode_frame(bad);
    EXPECT_FALSE(g.crc_ok) << "bit " << bit;
  }
}

TEST(Frame, EveryTruncationPointIsATypedError) {
  const auto payload = bytes_of({9, 8, 7, 6, 5, 4, 3});
  const std::vector<std::uint8_t> framed = encode_frame(3, payload);
  for (std::size_t len = 0; len < framed.size(); ++len) {
    std::vector<std::uint8_t> cut(framed.begin(),
                                  framed.begin() + static_cast<long>(len));
    try {
      (void)decode_frame(cut);
      FAIL() << "truncation to " << len << " bytes not rejected";
    } catch (const ChannelError& e) {
      EXPECT_EQ(e.kind(), ChannelErrorKind::kBadFrame);
    }
  }
}

TEST(Frame, OverLongBufferIsATypedError) {
  std::vector<std::uint8_t> framed = encode_frame(0, bytes_of({1, 2}));
  framed.push_back(0xFF);  // trailing garbage disagrees with the length field
  try {
    (void)decode_frame(framed);
    FAIL() << "over-long frame not rejected";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kBadFrame);
  }
}

// ---- Router recovery semantics ----

FaultPlanConfig plan_base(std::uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(RouterFaults, DisabledPlanIsAStrictNoOp) {
  FaultPlanConfig cfg = plan_base(5);  // nothing enabled
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  EXPECT_FALSE(router.fault_active());
  router.send(0, 1, bytes_of({1, 2, 3}));
  EXPECT_EQ(trace.total_bytes(), 3u);  // no 12-byte framing added
  EXPECT_EQ((*router.receive(0, 1)), bytes_of({1, 2, 3}));
}

TEST(RouterFaults, FramingIsTransparentWhenNothingFires) {
  FaultPlanConfig cfg = plan_base(5);
  cfg.drop = 1.0;
  cfg.only_phase = 2;  // plan enabled, but inert in phase 1
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({1, 2, 3}));
  // Frames are on the wire (accounted)...
  EXPECT_EQ(trace.total_bytes(), 3u + kFrameHeaderBytes);
  // ...but the receiver sees the exact payload.
  EXPECT_EQ((*router.receive(0, 1)), bytes_of({1, 2, 3}));
  EXPECT_EQ(router.pending(), 0u);
}

TEST(RouterFaults, CertainDropExhaustsRetriesIntoTypedGiveUp) {
  FaultPlanConfig cfg = plan_base(7);
  cfg.drop = 1.0;
  cfg.max_retries = 2;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({42}));
  try {
    (void)router.receive(0, 1);
    FAIL() << "lost message not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kGiveUp);
    EXPECT_EQ(e.src(), 0u);
    EXPECT_EQ(e.dst(), 1u);
  }
  const FaultReport report = router.fault_report();
  EXPECT_EQ(report.stats.injected[static_cast<std::size_t>(FaultKind::kDrop)],
            3u);  // initial attempt + 2 retries
  EXPECT_EQ(report.stats.retransmits, 2u);
  EXPECT_EQ(report.stats.giveups, 1u);
  EXPECT_EQ(report.stats.timeouts, 0u);
  // The next message on the link still has a coherent sequence slot.
  router.send(0, 1, bytes_of({43}));
  EXPECT_THROW((void)router.receive(0, 1), ChannelError);  // also dropped
}

TEST(RouterFaults, ExplicitDeadlineTurnsLossIntoTimeout) {
  FaultPlanConfig cfg = plan_base(7);
  cfg.drop = 1.0;
  cfg.max_retries = 10;
  cfg.backoff_base_s = 0.05;
  cfg.deadline_s = 0.11;  // one round trip (0.1s) + backoff exceeds this
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({1}));
  try {
    (void)router.receive(0, 1);
    FAIL() << "lost message not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
  }
  EXPECT_EQ(router.fault_report().stats.timeouts, 1u);
}

TEST(RouterFaults, ModerateLossHealsByRetransmission) {
  FaultPlanConfig cfg = plan_base(11);
  cfg.drop = 0.4;
  cfg.max_retries = 8;  // enough budget that no message is truly lost here
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  const std::size_t kMessages = 32;
  for (std::size_t i = 0; i < kMessages; ++i)
    router.send(0, 1, bytes_of({static_cast<int>(i)}));
  for (std::size_t i = 0; i < kMessages; ++i) {
    const auto payload = router.receive(0, 1);
    ASSERT_EQ(payload->size(), 1u);
    EXPECT_EQ((*payload)[0], static_cast<std::uint8_t>(i));  // FIFO preserved
  }
  EXPECT_EQ(router.pending(), 0u);
  const FaultReport report = router.fault_report();
  EXPECT_GT(report.stats.retransmits, 0u);
  EXPECT_EQ(report.stats.giveups, 0u);
}

TEST(RouterFaults, CorruptionIsDetectedAndRetransmitted) {
  FaultPlanConfig cfg = plan_base(13);
  cfg.corrupt = 0.4;
  cfg.max_retries = 8;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  const std::size_t kMessages = 32;
  for (std::size_t i = 0; i < kMessages; ++i)
    router.send(0, 1, bytes_of({static_cast<int>(i), 0x5A}));
  for (std::size_t i = 0; i < kMessages; ++i) {
    const auto payload = router.receive(0, 1);
    EXPECT_EQ((*payload), bytes_of({static_cast<int>(i), 0x5A}))
        << "corruption leaked through at message " << i;
  }
  EXPECT_EQ(router.pending(), 0u);
  const FaultReport report = router.fault_report();
  EXPECT_GT(report.stats.crc_detected, 0u);
  EXPECT_GT(report.stats.retransmits, 0u);
}

TEST(RouterFaults, DuplicatesAreDroppedOnReceive) {
  FaultPlanConfig cfg = plan_base(17);
  cfg.duplicate = 1.0;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({8}));
  EXPECT_EQ(router.pending(), 2u);  // original + duplicate on the wire
  EXPECT_EQ((*router.receive(0, 1)), bytes_of({8}));
  EXPECT_EQ(router.pending(), 0u);  // dedup purged the copy
  EXPECT_EQ(router.fault_report().stats.duplicates_dropped, 1u);
}

TEST(RouterFaults, ReordersAreHealedBySequence) {
  FaultPlanConfig cfg = plan_base(19);
  cfg.reorder = 1.0;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({1}));
  router.send(0, 1, bytes_of({2}));  // swapped behind message #0 in the box
  EXPECT_EQ((*router.receive(0, 1)), bytes_of({1}));
  EXPECT_EQ((*router.receive(0, 1)), bytes_of({2}));
  EXPECT_EQ(router.pending(), 0u);
  EXPECT_EQ(router.fault_report().stats.reorders_healed, 1u);
}

TEST(RouterFaults, TamperPassesTheChannelUndetected) {
  FaultPlanConfig cfg = plan_base(23);
  cfg.tamper = 1.0;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  const auto original = bytes_of({0x11, 0x22, 0x33, 0x44});
  router.send(0, 1, original);
  const auto payload = router.receive(0, 1);  // no ChannelError: CRC matches
  ASSERT_EQ(payload->size(), original.size());
  std::size_t flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = (*payload)[i] ^ original[i];
    while (diff != 0) {
      flipped_bits += diff & 1u;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1u);  // exactly one adversarial bit flip
  EXPECT_EQ(router.fault_report().stats.crc_detected, 0u);
}

TEST(RouterFaults, CrashMutesSenderAndSurfacesAsPeerDead) {
  FaultPlanConfig cfg = plan_base(29);
  cfg.crashes.push_back(CrashPoint{1, Phase::kPhase2});
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{3, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  EXPECT_FALSE(router.party_dead(1));
  router.send(1, 0, bytes_of({1}));  // still alive in phase 1
  EXPECT_EQ((*router.receive(1, 0)), bytes_of({1}));

  router.set_phase(Phase::kPhase2);
  EXPECT_TRUE(router.party_dead(1));
  EXPECT_EQ(router.dead_parties(), std::vector<std::size_t>{1});
  // Its sends vanish...
  router.send(1, 0, bytes_of({2}));
  try {
    (void)router.receive(1, 0);
    FAIL() << "dead peer not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kPeerDead);
  }
  // ...and sends TO it fail typed as well.
  router.send(0, 1, bytes_of({3}));
  try {
    (void)router.receive(0, 1);
    FAIL() << "send to dead peer not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kPeerDead);
  }
  EXPECT_EQ(
      router.fault_report().stats.injected[static_cast<std::size_t>(
          FaultKind::kCrash)],
      1u);
}

TEST(RouterFaults, DelaySpikeStretchesTheVirtualTimeline) {
  FaultPlanConfig cfg = plan_base(31);
  cfg.delay = 1.0;
  cfg.delay_spike_s = 2.5;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  runtime::CommRegistry comm;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, &comm, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({1, 2, 3}));
  router.next_round();
  (void)router.receive(0, 1);
  ASSERT_EQ(comm.flows().size(), 1u);
  const runtime::FlowRecord f = comm.flows()[0];
  EXPECT_GE(f.t.deliver_s - f.t.send_s, 2.5);
  EXPECT_NEAR(f.t.deliver_s - f.t.send_s, f.t.tx_s + f.t.prop_s + f.t.queue_s,
              1e-12);
  EXPECT_GE(comm.virtual_seconds(), 2.5);
  // The counters are mirrored into the comm registry for export.
  ASSERT_TRUE(comm.has_fault_counters());
  EXPECT_EQ(comm.fault_counters().injected_delay, 1u);
}

TEST(RouterFaults, IdenticalPlansProduceIdenticalReports) {
  FaultPlanConfig cfg = plan_base(37);
  cfg.drop = 0.3;
  cfg.duplicate = 0.2;
  cfg.delay = 0.2;
  const FaultPlan plan_a{cfg};
  const FaultPlan plan_b{cfg};
  auto run = [](const FaultPlan& plan) {
    runtime::TraceRecorder trace;
    Router::Config rcfg;
    rcfg.faults = &plan;
    Router router{3, trace, nullptr, rcfg};
    router.set_phase(Phase::kPhase1);
    for (std::size_t i = 0; i < 16; ++i) {
      router.send(0, 1, bytes_of({static_cast<int>(i)}));
      router.send(2, 1, bytes_of({static_cast<int>(i + 100)}));
    }
    for (std::size_t i = 0; i < 16; ++i) {
      try { (void)router.receive(0, 1); } catch (const ChannelError&) {}
      try { (void)router.receive(2, 1); } catch (const ChannelError&) {}
    }
    return router.fault_report().to_json();
  };
  EXPECT_EQ(run(plan_a), run(plan_b));
}

TEST(FaultReportJson, CarriesSchemaAndCounters) {
  FaultPlanConfig cfg = plan_base(41);
  cfg.drop = 1.0;
  cfg.max_retries = 1;
  const FaultPlan plan{cfg};
  runtime::TraceRecorder trace;
  Router::Config rcfg;
  rcfg.faults = &plan;
  Router router{2, trace, nullptr, rcfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, bytes_of({1}));
  EXPECT_THROW((void)router.receive(0, 1), ChannelError);
  const std::string json = router.fault_report().to_json();
  EXPECT_NE(json.find("\"schema\": \"ppgr.fault.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"injected_drop\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"giveups\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}

}  // namespace
}  // namespace ppgr::net

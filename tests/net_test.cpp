// Tests for the topology generator, routing, the packet simulator, the
// metered router/channel transport, and the runtime trace recorder.
#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/simulator.h"
#include "net/topology.h"
#include "runtime/comm.h"
#include "runtime/trace.h"

namespace ppgr::net {
namespace {

using mpz::ChaChaRng;
using runtime::TraceRecorder;
using runtime::Transfer;

TEST(Topology, RejectsBadInput) {
  EXPECT_THROW((Topology{3, {Edge{0, 3}}}), std::invalid_argument);
  EXPECT_THROW((Topology{3, {Edge{1, 1}}}), std::invalid_argument);
  // Disconnected: 4 nodes, one edge.
  EXPECT_THROW((Topology{4, {Edge{0, 1}}}), std::invalid_argument);
}

TEST(Topology, LineGraphPaths) {
  const Topology t{4, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}}};
  EXPECT_EQ(t.distance(0, 3), 3u);
  EXPECT_EQ(t.distance(1, 2), 1u);
  EXPECT_EQ(t.path(0, 3), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(t.path(3, 0), (std::vector<std::size_t>{2, 1, 0}));
  // A node reaches itself over the empty path (co-located parties exchange
  // messages without touching any link).
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_TRUE(t.path(0, 0).empty());
}

TEST(Topology, RandomConnectedHasExactEdgeCountAndIsConnected) {
  ChaChaRng rng{90};
  // The paper's instance: 80 nodes, 320 edges.
  const Topology t = Topology::random_connected(80, 320, rng);
  EXPECT_EQ(t.nodes(), 80u);
  EXPECT_EQ(t.edges().size(), 320u);
  // Connectivity is implied by construction; verify every pair has a path.
  for (std::size_t a = 0; a < 80; a += 13) {
    for (std::size_t b = a + 1; b < 80; b += 7) {
      EXPECT_GE(t.distance(a, b), 1u);
    }
  }
}

TEST(Topology, RandomConnectedSpanningTreeEdgeCase) {
  ChaChaRng rng{91};
  const Topology t = Topology::random_connected(10, 9, rng);  // tree
  EXPECT_EQ(t.edges().size(), 9u);
}

TEST(Topology, RandomConnectedRejectsInfeasible) {
  ChaChaRng rng{92};
  EXPECT_THROW((void)Topology::random_connected(10, 8, rng),
               std::invalid_argument);  // below spanning tree
  EXPECT_THROW((void)Topology::random_connected(10, 46, rng),
               std::invalid_argument);  // above complete graph
}

TEST(Simulator, SingleHopTimingIsExact) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.05,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 40}};
  // 1000 payload bytes -> one packet of 1040 bytes on the wire:
  // tx = 1040*8/1e6 = 8.32 ms, + 50 ms latency.
  const double d = sim.send_once(0, 1, 1000);
  EXPECT_NEAR(d, 0.05 + 1040 * 8.0 / 1e6, 1e-9);
}

TEST(Simulator, MultiPacketSerializesOnLink) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.0,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 0}};
  // 15000 bytes = 10 packets of 1500: serialized tx = 15000*8/1e6 = 120 ms.
  const double d = sim.send_once(0, 1, 15000);
  EXPECT_NEAR(d, 0.12, 1e-9);
}

TEST(Simulator, LatencyPerHopAccumulates) {
  const Topology line{4, {Edge{0, 1}, Edge{1, 2}, Edge{2, 3}}};
  Simulator sim{line, SimulatorConfig{.bandwidth_bps = 1e9,
                                      .latency_s = 0.05,
                                      .mtu_bytes = 1500,
                                      .header_bytes = 0}};
  // Tiny message, 3 hops: ~3 * 50 ms dominates.
  const double d = sim.send_once(0, 3, 10);
  EXPECT_GT(d, 0.15);
  EXPECT_LT(d, 0.1501);
}

TEST(Simulator, ContentionOnSharedLink) {
  // Two flows share the middle link of a dumbbell: total time is about twice
  // a single flow's.
  const Topology t{4, {Edge{0, 2}, Edge{1, 2}, Edge{2, 3}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.0,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 0}};
  const std::size_t kBytes = 150000;  // 100 packets
  const Transfer one[] = {{0, 0, 2, kBytes}};
  const Transfer two[] = {{0, 0, 2, kBytes}, {0, 1, 2, kBytes}};
  const std::size_t nodes[] = {0, 1, 3};
  const double t1 = sim.replay(std::span{one, 1}, nodes).total_seconds;
  const double t2 = sim.replay(std::span{two, 2}, nodes).total_seconds;
  EXPECT_GT(t2, 1.8 * t1);
  EXPECT_LT(t2, 2.2 * t1);
}

TEST(Simulator, DuplexLinkDoesNotContend) {
  // Opposite directions of the same link are independent (duplex).
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.0,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 0}};
  const std::size_t kBytes = 150000;
  const Transfer both[] = {{0, 0, 1, kBytes}, {0, 1, 0, kBytes}};
  const std::size_t nodes[] = {0, 1};
  const double d = sim.replay(std::span{both, 2}, nodes).total_seconds;
  EXPECT_NEAR(d, 1.2, 1e-6);  // same as a single flow
}

TEST(Simulator, RoundsAreBarriers) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.01,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 0}};
  // Two rounds of one packet each: durations add up.
  const Transfer seq[] = {{0, 0, 1, 100}, {1, 1, 0, 100}};
  const std::size_t nodes[] = {0, 1};
  const auto result = sim.replay(std::span{seq, 2}, nodes);
  ASSERT_EQ(result.round_seconds.size(), 2u);
  EXPECT_NEAR(result.total_seconds,
              result.round_seconds[0] + result.round_seconds[1], 1e-12);
  EXPECT_GT(result.round_seconds[0], 0.01);
  EXPECT_GT(result.round_seconds[1], 0.01);
}

TEST(Simulator, EmptyRoundsArePreserved) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{}};
  const Transfer sparse[] = {{0, 0, 1, 10}, {3, 1, 0, 10}};
  const std::size_t nodes[] = {0, 1};
  const auto result = sim.replay(std::span{sparse, 2}, nodes);
  EXPECT_EQ(result.round_seconds.size(), 4u);
  EXPECT_EQ(result.round_seconds[1], 0.0);
  EXPECT_EQ(result.round_seconds[2], 0.0);
}

TEST(Simulator, CoLocatedPartiesAreFree) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{}};
  const Transfer msg[] = {{0, 0, 1, 1000000}};
  const std::size_t nodes[] = {0, 0};  // both parties on node 0
  EXPECT_EQ(sim.replay(std::span{msg, 1}, nodes).total_seconds, 0.0);
}

TEST(Simulator, ZeroByteMessageIsOneHeaderOnlyPacket) {
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.05,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 40}};
  // A zero-byte payload still occupies the wire: exactly one packet of just
  // the 40-byte header, plus one hop of latency.
  const Transfer msg[] = {{0, 0, 1, 0}};
  const std::size_t nodes[] = {0, 1};
  const auto result = sim.replay(std::span{msg, 1}, nodes);
  EXPECT_EQ(result.packets, 1u);
  EXPECT_NEAR(result.total_seconds, 0.05 + 40 * 8.0 / 1e6, 1e-12);
}

TEST(Simulator, SaturatedLinkDeliversInFifoOrder) {
  // Many same-round messages down one direction of one link: submission
  // order is delivery order (the event queue breaks time ties by sequence
  // number), and later messages absorb the backlog as queueing time.
  const Topology t{2, {Edge{0, 1}}};
  Simulator sim{t, SimulatorConfig{.bandwidth_bps = 1e6,
                                   .latency_s = 0.0,
                                   .mtu_bytes = 1500,
                                   .header_bytes = 0}};
  std::vector<Transfer> round;
  for (std::size_t i = 0; i < 8; ++i) round.push_back({0, 0, 1, 1500});
  const std::size_t nodes[] = {0, 1};
  const auto result = sim.replay_detailed(round, nodes);
  ASSERT_EQ(result.timings.size(), 8u);
  const double per_packet = 1500 * 8.0 / 1e6;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& f = result.timings[i];
    // i-th submitted message departs after i earlier packets.
    EXPECT_NEAR(f.deliver_s, static_cast<double>(i + 1) * per_packet, 1e-12);
    EXPECT_NEAR(f.queue_s, static_cast<double>(i) * per_packet, 1e-12);
    if (i > 0) {
      EXPECT_GT(f.deliver_s, result.timings[i - 1].deliver_s);
    }
  }
}

TEST(Simulator, TimingSegmentsAddUp) {
  // deliver - send == tx + prop + queue on a contended multi-hop path.
  const Topology line{3, {Edge{0, 1}, Edge{1, 2}}};
  Simulator sim{line, SimulatorConfig{.bandwidth_bps = 1e6,
                                      .latency_s = 0.01,
                                      .mtu_bytes = 1500,
                                      .header_bytes = 40}};
  const Transfer round[] = {{0, 0, 2, 4000}, {0, 1, 2, 4000}};
  const std::size_t nodes[] = {0, 1, 2};
  const auto result = sim.replay_detailed(round, nodes);
  for (const auto& f : result.timings) {
    EXPECT_GE(f.queue_s, 0.0);
    EXPECT_NEAR(f.deliver_s - f.send_s, f.tx_s + f.prop_s + f.queue_s, 1e-12);
  }
}

// ---- Router / Channel ----

TEST(Router, SendReceiveIsFifoPerLink) {
  TraceRecorder trace;
  runtime::CommRegistry comm;
  Router router{3, trace, &comm};
  router.send(0, 1, std::vector<std::uint8_t>{1});
  router.send(0, 1, std::vector<std::uint8_t>{2});
  router.send(2, 1, std::vector<std::uint8_t>{3});
  EXPECT_EQ(router.pending(), 3u);
  EXPECT_EQ((*router.receive(0, 1))[0], 1);  // oldest first
  EXPECT_EQ((*router.receive(0, 1))[0], 2);
  EXPECT_EQ((*router.receive(2, 1))[0], 3);
  EXPECT_EQ(router.pending(), 0u);
  EXPECT_THROW((void)router.receive(0, 1), std::logic_error);
}

TEST(Router, SelfSendIsRejected) {
  // Distinct in-process parties on one host are modeled by mapping them to
  // the same *node* (see CoLocatedPartiesAreFree); a party messaging itself
  // is a protocol bug and is rejected at the accounting layer.
  TraceRecorder trace;
  Router router{2, trace, nullptr};
  EXPECT_THROW(router.send(1, 1, std::vector<std::uint8_t>{1}),
               std::invalid_argument);
  EXPECT_THROW(router.transmit(0, 0, 16), std::invalid_argument);
}

TEST(Router, TransmitAccountsWithoutDelivery) {
  TraceRecorder trace;
  runtime::CommRegistry comm;
  Router router{2, trace, &comm};
  router.transmit(0, 1, 128);
  EXPECT_EQ(router.pending(), 0u);  // nothing to receive...
  EXPECT_EQ(trace.total_bytes(), 128u);  // ...but the bytes are accounted
  EXPECT_EQ(comm.total_bytes(), 128u);
  EXPECT_THROW((void)router.receive(0, 1), std::logic_error);
}

TEST(Router, ZeroByteSendRoundTripsAndCostsAPacket) {
  TraceRecorder trace;
  runtime::CommRegistry comm;
  Router router{2, trace, &comm};
  router.send(0, 1, std::vector<std::uint8_t>{});
  router.next_round();
  EXPECT_TRUE(router.receive(0, 1)->empty());
  const auto flows = comm.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].bytes, 0u);
  // The stock config still charges one header-only packet.
  EXPECT_GT(flows[0].t.deliver_s, flows[0].t.send_s);
}

TEST(Router, AbsorbKeepsStagedOrderAndDeliversPayloads) {
  TraceRecorder trace;
  runtime::CommRegistry comm;
  Router router{3, trace, &comm};
  runtime::CommBuffer task_a;
  runtime::CommBuffer task_b;
  task_a.send(0, 1,
              std::make_shared<const std::vector<std::uint8_t>>(
                  std::vector<std::uint8_t>{10}));
  task_a.record(0, 2, 64);  // accounting-only
  task_b.send(0, 1,
              std::make_shared<const std::vector<std::uint8_t>>(
                  std::vector<std::uint8_t>{11}));
  router.absorb(task_a);
  router.absorb(task_b);
  EXPECT_TRUE(task_a.empty());
  EXPECT_EQ(router.pending(), 2u);
  router.next_round();
  EXPECT_EQ((*router.receive(0, 1))[0], 10);  // task-index order
  EXPECT_EQ((*router.receive(0, 1))[0], 11);
  const auto flows = comm.flows();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[1].dst, 2u);
  EXPECT_EQ(flows[1].bytes, 64u);
}

TEST(Router, NextRoundStampsFlowTimingInvariant) {
  TraceRecorder trace;
  runtime::CommRegistry comm;
  Router router{3, trace, &comm};
  comm.set_phase(runtime::Phase::kPhase1);
  router.send(0, 1, std::vector<std::uint8_t>(2000, 0xAB));
  router.send(2, 1, std::vector<std::uint8_t>(100, 0xCD));
  router.next_round();
  (void)router.receive(0, 1);
  (void)router.receive(2, 1);
  ASSERT_EQ(comm.rounds(), 1u);
  EXPECT_GT(comm.virtual_seconds(), 0.0);
  EXPECT_EQ(comm.phase_virtual_seconds(runtime::Phase::kPhase1),
            comm.virtual_seconds());
  for (const auto& f : comm.flows()) {
    EXPECT_EQ(f.phase, runtime::Phase::kPhase1);
    EXPECT_GE(f.t.queue_s, 0.0);
    EXPECT_NEAR(f.t.deliver_s - f.t.send_s,
                f.t.tx_s + f.t.prop_s + f.t.queue_s, 1e-12);
  }
}

// ---- TraceRecorder ----

TEST(TraceRecorder, RecordsAndAggregates) {
  TraceRecorder rec;
  rec.record(0, 1, 100);
  rec.record(1, 0, 50);
  rec.next_round();
  rec.record(2, 1, 25);
  EXPECT_EQ(rec.message_count(), 3u);
  EXPECT_EQ(rec.rounds(), 2u);
  EXPECT_EQ(rec.total_bytes(), 175u);
  EXPECT_EQ(rec.bytes_sent_by(0), 100u);
  EXPECT_EQ(rec.bytes_received_by(1), 125u);
  EXPECT_EQ(rec.transfers()[2].round, 1u);
  rec.clear();
  EXPECT_EQ(rec.message_count(), 0u);
}

TEST(TraceRecorder, RejectsSelfMessages) {
  TraceRecorder rec;
  EXPECT_THROW(rec.record(1, 1, 10), std::invalid_argument);
}

TEST(PartyTimer, AccumulatesPerParty) {
  runtime::PartyTimer timer{3};
  timer.add(1, 0.5);
  timer.add(2, 0.25);
  timer.add(1, 0.5);
  timer.add(0, 9.0);  // initiator excluded from participant stats
  EXPECT_DOUBLE_EQ(timer.seconds(1), 1.0);
  EXPECT_DOUBLE_EQ(timer.max_participant_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(timer.mean_participant_seconds(), 0.625);
  {
    auto scope = timer.time(2);
  }
  EXPECT_GE(timer.seconds(2), 0.25);
}

}  // namespace
}  // namespace ppgr::net

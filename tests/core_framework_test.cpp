// End-to-end tests of the privacy preserving group ranking framework and the
// SS baseline: rank correctness against the plain reference, the comparison
// circuit, the shuffle chain, trace accounting and submission verification.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/framework.h"
#include "core/ss_framework.h"

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

ProblemSpec tiny_spec() {
  return ProblemSpec{.m = 4, .t = 2, .d1 = 6, .d2 = 4, .h = 5};
}

FrameworkConfig make_config(const group::Group& g, std::size_t n,
                            std::size_t k) {
  FrameworkConfig cfg;
  cfg.spec = tiny_spec();
  cfg.n = n;
  cfg.k = k;
  cfg.group = &g;
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  return cfg;
}

AttrVec random_attrs(const ProblemSpec& s, mpz::Rng& rng, std::size_t bits) {
  AttrVec v(s.m);
  for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
  return v;
}

class FrameworkOverGroups : public ::testing::TestWithParam<GroupId> {};

TEST_P(FrameworkOverGroups, EndToEndRanksMatchReference) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{110};
  const std::size_t n = 5;
  const FrameworkConfig cfg = make_config(*g, n, 2);
  for (int iter = 0; iter < 3; ++iter) {
    const AttrVec v0 = random_attrs(cfg.spec, rng, cfg.spec.d1);
    const AttrVec w = random_attrs(cfg.spec, rng, cfg.spec.d2);
    std::vector<AttrVec> infos;
    for (std::size_t j = 0; j < n; ++j)
      infos.push_back(random_attrs(cfg.spec, rng, cfg.spec.d1));

    const auto result = run_framework(cfg, v0, w, infos, rng);
    const auto expect = reference_ranks(cfg.spec, v0, w, infos);
    // With random d1-bit attributes, distinct gains are overwhelmingly
    // likely; when they are distinct, ranks must match the reference.
    std::vector<Int> gains;
    for (const auto& v : infos) gains.push_back(gain(cfg.spec, v0, w, v));
    std::sort(gains.begin(), gains.end());
    const bool distinct =
        std::adjacent_find(gains.begin(), gains.end()) == gains.end();
    if (distinct) {
      EXPECT_EQ(result.ranks, expect) << "iter " << iter;
    }
    // Submitted = exactly those with rank <= k.
    for (std::size_t j = 0; j < n; ++j) {
      const bool submitted =
          std::find(result.submitted_ids.begin(), result.submitted_ids.end(),
                    j + 1) != result.submitted_ids.end();
      EXPECT_EQ(submitted, result.ranks[j] <= cfg.k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, FrameworkOverGroups,
                         ::testing::Values(GroupId::kDlTest256,
                                           GroupId::kEcP192),
                         [](const auto& info) {
                           std::string n = group::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Framework, TwoParticipantsMinimum) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{111};
  const FrameworkConfig cfg = make_config(*g, 2, 1);
  const AttrVec v0{0, 0, 0, 0}, w{1, 1, 1, 1};
  // Participant 2 clearly wins (greater-than attributes higher, equal-to
  // attributes exactly on target).
  const std::vector<AttrVec> infos{{5, 5, 1, 1}, {0, 0, 30, 30}};
  const auto result = run_framework(cfg, v0, w, infos, rng);
  EXPECT_EQ(result.ranks, (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(result.submitted_ids, (std::vector<std::size_t>{2}));
}

TEST(Framework, PhaseOneBetaMatchesAlgebra) {
  // The protocol's β must equal the directly computed ρ·p + ρ_j in masked
  // order; we can't see ρ from outside, but order must match and β must be
  // l bits.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{112};
  const FrameworkConfig cfg = make_config(*g, 3, 1);
  Initiator initiator{cfg, {1, 2, 3, 4}, {2, 2, 2, 2}, rng};
  std::vector<Participant> parts;
  const std::vector<AttrVec> infos{{1, 2, 10, 10}, {1, 2, 3, 3}, {9, 9, 0, 0}};
  for (std::size_t j = 1; j <= 3; ++j)
    parts.emplace_back(cfg, j, infos[j - 1], rng);
  std::vector<Nat> betas;
  for (std::size_t j = 0; j < 3; ++j) {
    const auto& q = parts[j].gain_query();
    parts[j].receive_gain_answer(initiator.answer_gain_query(j + 1, q));
    betas.push_back(parts[j].beta());
    EXPECT_LE(betas.back().bit_length(), cfg.spec.beta_bits());
  }
  // Gains: p0 > p1 > p2 by construction; masked order must agree.
  const auto gains = std::vector<Int>{
      partial_gain(cfg.spec, {1, 2, 3, 4}, {2, 2, 2, 2}, infos[0]),
      partial_gain(cfg.spec, {1, 2, 3, 4}, {2, 2, 2, 2}, infos[1]),
      partial_gain(cfg.spec, {1, 2, 3, 4}, {2, 2, 2, 2}, infos[2])};
  ASSERT_GT(gains[0], gains[1]);
  ASSERT_GT(gains[1], gains[2]);
  EXPECT_GT(betas[0], betas[1]);
  EXPECT_GT(betas[1], betas[2]);
}

TEST(Framework, ComparisonCircuitTruthTable) {
  // Directly exercise compare_against: exactly one zero iff peer > own.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{113};
  FrameworkConfig cfg = make_config(*g, 2, 1);
  Initiator initiator{cfg, {0, 0, 0, 0}, {1, 1, 1, 1}, rng};

  auto run_phase1 = [&](const AttrVec& a, const AttrVec& b) {
    std::vector<Participant> parts;
    parts.emplace_back(cfg, 1, a, rng);
    parts.emplace_back(cfg, 2, b, rng);
    Initiator init{cfg, {0, 0, 0, 0}, {1, 1, 1, 1}, rng};
    for (std::size_t j = 0; j < 2; ++j) {
      const auto& q = parts[j].gain_query();
      parts[j].receive_gain_answer(init.answer_gain_query(j + 1, q));
    }
    return parts;
  };

  // b's greater-than attributes dominate -> beta_b > beta_a.
  auto parts = run_phase1({0, 0, 1, 1}, {0, 0, 50, 50});
  auto& pa = parts[0];
  auto& pb = parts[1];
  const auto key_a = crypto::keygen(*g, rng);
  // Single-party "joint" key so the test can decrypt: give both parties the
  // same key pair.
  pa.set_joint_key(key_a.y);
  pb.set_joint_key(key_a.y);

  const auto bits_b = pb.encrypt_beta_bits();
  const auto tau_ab = pa.compare_against(bits_b);  // a vs larger b
  std::size_t zeros = 0;
  for (const auto& ct : tau_ab)
    zeros += crypto::decrypts_to_zero(*g, key_a.x, ct) ? 1 : 0;
  EXPECT_EQ(zeros, 1u) << "exactly one zero when peer is larger";

  const auto bits_a = pa.encrypt_beta_bits();
  const auto tau_ba = pb.compare_against(bits_a);  // b vs smaller a
  zeros = 0;
  for (const auto& ct : tau_ba)
    zeros += crypto::decrypts_to_zero(*g, key_a.x, ct) ? 1 : 0;
  EXPECT_EQ(zeros, 0u) << "no zero when peer is smaller";

  // Self-comparison (equal β): no zero either.
  const auto tau_aa = pa.compare_against(bits_a);
  zeros = 0;
  for (const auto& ct : tau_aa)
    zeros += crypto::decrypts_to_zero(*g, key_a.x, ct) ? 1 : 0;
  EXPECT_EQ(zeros, 0u) << "equal values produce no zero";
}

TEST(Framework, TraceShape) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{114};
  const std::size_t n = 4;
  const FrameworkConfig cfg = make_config(*g, n, 1);
  const AttrVec v0{0, 0, 0, 0}, w{1, 1, 1, 1};
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < n; ++j)
    infos.push_back(random_attrs(cfg.spec, rng, cfg.spec.d1));
  const auto result = run_framework(cfg, v0, w, infos, rng);

  // O(n) rounds: phase1 (2) + keys/zkp (2) + enc broadcast (1) + sets to P1
  // (1) + chain (n-1) + return (1) + submissions (1), plus slack.
  EXPECT_LE(result.trace.rounds(), n + 10);
  EXPECT_GE(result.trace.rounds(), n);
  // The chain dominates: each forward message carries n*(n-1)*l ciphertexts.
  const std::size_t l = cfg.spec.beta_bits();
  const std::size_t chain_msg = n * (n - 1) * l * crypto::ciphertext_bytes(*g);
  std::size_t max_msg = 0;
  for (const auto& t : result.trace.transfers())
    max_msg = std::max(max_msg, t.bytes);
  EXPECT_EQ(max_msg, chain_msg);
  // Every party computed something.
  for (std::size_t p = 0; p <= n; ++p)
    EXPECT_GT(result.compute_seconds[p], 0.0) << "party " << p;
}

TEST(Framework, ValidationErrors) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{115};
  FrameworkConfig cfg = make_config(*g, 1, 1);  // n too small
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = make_config(*g, 3, 4);  // k > n
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = make_config(*g, 3, 1);
  cfg.group = nullptr;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = make_config(*g, 3, 1);
  const AttrVec v0{0, 0, 0, 0}, w{1, 1, 1, 1};
  EXPECT_THROW((void)run_framework(cfg, v0, w, {}, rng),
               std::invalid_argument);
}

TEST(Framework, SubmissionOverClaimDetected) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{116};
  const FrameworkConfig cfg = make_config(*g, 2, 2);
  Initiator init{cfg, {0, 0, 0, 0}, {1, 1, 1, 1}, rng};
  // Participant 2's vector has clearly higher gain, but participant 1
  // over-claims rank 1.
  init.receive_submission({.participant = 1, .claimed_rank = 1,
                           .info = {0, 0, 1, 1}});
  init.receive_submission({.participant = 2, .claimed_rank = 2,
                           .info = {0, 0, 40, 40}});
  const auto bad = init.inconsistent_submissions();
  // Both are flagged (their relative order is impossible), which pinpoints
  // the conflict for the initiator to resolve out of band.
  EXPECT_EQ(bad.size(), 2u);
  EXPECT_THROW(init.receive_submission({.participant = 3, .claimed_rank = 1,
                                        .info = {1, 2, 3}}),
               std::invalid_argument);
}

// ---- SS baseline ----

TEST(SsFramework, EndToEndMatchesReference) {
  ChaChaRng rng{117};
  const std::size_t n = 5;
  SsFrameworkConfig cfg;
  cfg.base = make_config(*make_group(GroupId::kDlTest256), n, 2);
  cfg.threshold = 2;
  const AttrVec v0{1, 1, 0, 0}, w{3, 3, 3, 3};
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < n; ++j)
    infos.push_back(random_attrs(cfg.base.spec, rng, cfg.base.spec.d1));
  const auto result = run_ss_framework(cfg, v0, w, infos, rng);
  std::vector<Int> gains;
  for (const auto& v : infos) gains.push_back(gain(cfg.base.spec, v0, w, v));
  auto sorted_gains = gains;
  std::sort(sorted_gains.begin(), sorted_gains.end());
  if (std::adjacent_find(sorted_gains.begin(), sorted_gains.end()) ==
      sorted_gains.end()) {
    EXPECT_EQ(result.ranks, reference_ranks(cfg.base.spec, v0, w, infos));
  }
  EXPECT_GT(result.sort_costs.mults, 0u);
  EXPECT_GT(result.parallel_rounds, 0u);
  EXPECT_GT(result.trace.total_bytes(), 0u);
  // The SS framework uses many more rounds than the HE framework's O(n).
  EXPECT_GT(result.parallel_rounds, n);
}

TEST(SsFramework, CountOnlyMode) {
  ChaChaRng rng{118};
  SsFrameworkConfig cfg;
  cfg.base = make_config(*make_group(GroupId::kDlTest256), 9, 2);
  cfg.threshold = 4;
  cfg.mode = sss::MpcEngine::Mode::kCountOnly;
  const AttrVec v0{0, 0, 0, 0}, w{1, 1, 1, 1};
  std::vector<AttrVec> infos(9, AttrVec{1, 2, 3, 4});
  const auto result = run_ss_framework(cfg, v0, w, infos, rng);
  EXPECT_TRUE(result.ranks.empty());
  EXPECT_GT(result.sort_costs.mults, 0u);
  EXPECT_EQ(result.comparators,
            sss::comparator_count(sss::batcher_network(9)));
}

TEST(SsFramework, FieldSizingPerBetaBits) {
  const auto& f1 = ss_field_for_beta_bits(40);
  EXPECT_GE(f1.bits(), 42u);
  // Cached: same object back.
  EXPECT_EQ(&f1, &ss_field_for_beta_bits(40));
}

}  // namespace
}  // namespace ppgr::core

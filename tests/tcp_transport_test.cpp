// net::tcp subsystem tests (DESIGN.md §5f), three layers deep:
//
//  1. Stream frame codec over a flaky socketpair: roundtrips, short-read
//     reassembly, mid-frame peer close, garbage length fields, payload
//     corruption and read-timeout bounds must all surface as the typed
//     ChannelError taxonomy (or a crc_ok=false frame) — never a hang.
//  2. TcpTransport meshes on loopback (kernel-assigned ports): hello
//     handshake, FIFO delivery both directions, typed receive timeout,
//     peer-shutdown surfacing, and session-mismatch refusal.
//  3. The full protocol over sockets: n+1 in-process TcpTransport parties
//     (one thread each, real loopback TCP between them) driven by
//     core::run_party must reproduce a same-seed run_framework /
//     run_ss_framework run — ranks, submissions and β bit-identical for
//     HE; ranks identical for SS.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "core/party_driver.h"
#include "core/ss_framework.h"
#include "net/tcp/transport.h"

namespace ppgr::net::tcp {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (const int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// A connected AF_UNIX stream pair: [0] wrapped as a TcpSocket with short
// timeouts (the reader under test), [1] kept raw for byte-level abuse.
struct FlakyPair {
  TcpSocket reader;
  int raw = -1;

  explicit FlakyPair(double timeout_s = 2.0) {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw std::runtime_error("socketpair failed");
    SocketConfig cfg;
    cfg.read_timeout_s = timeout_s;
    cfg.write_timeout_s = timeout_s;
    reader = TcpSocket{fds[0], cfg};
    raw = fds[1];
  }
  ~FlakyPair() {
    if (raw >= 0) ::close(raw);
  }
  void send_raw(const std::vector<std::uint8_t>& data) {
    ASSERT_EQ(::send(raw, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  }
  void close_raw() {
    ::close(raw);
    raw = -1;
  }
};

// ---- Layer 1: frame codec over the flaky pair ----

TEST(TcpFrames, RoundtripOverSocketpair) {
  FlakyPair pair;
  TcpSocket writer{pair.raw, SocketConfig{}};
  pair.raw = -1;  // ownership moved
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  write_frame(writer, 7, payload);
  const Frame f = read_frame(pair.reader);
  EXPECT_TRUE(f.crc_ok);
  EXPECT_EQ(f.seq, 7u);
  EXPECT_EQ(f.payload, payload);
}

TEST(TcpFrames, ShortReadsReassemble) {
  FlakyPair pair;
  const auto payload = bytes_of({9, 8, 7, 6, 5, 4, 3, 2, 1});
  const auto wire = encode_frame(21, payload);
  // Dribble the frame one byte at a time from another thread: recv_exact
  // must reassemble across arbitrarily short reads.
  std::thread dribbler{[&] {
    for (const std::uint8_t b : wire) {
      (void)::send(pair.raw, &b, 1, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }};
  const Frame f = read_frame(pair.reader);
  dribbler.join();
  EXPECT_TRUE(f.crc_ok);
  EXPECT_EQ(f.seq, 21u);
  EXPECT_EQ(f.payload, payload);
}

TEST(TcpFrames, GarbageLengthIsBadFrame) {
  {
    FlakyPair pair;
    pair.send_raw(bytes_of({0xff, 0xff, 0xff, 0xff}));  // 4 GiB "frame"
    try {
      (void)read_frame(pair.reader);
      FAIL() << "oversized length accepted";
    } catch (const ChannelError& e) {
      EXPECT_EQ(e.kind(), ChannelErrorKind::kBadFrame);
    }
  }
  {
    FlakyPair pair;
    pair.send_raw(bytes_of({4, 0, 0, 0}));  // shorter than the header
    try {
      (void)read_frame(pair.reader);
      FAIL() << "undersized length accepted";
    } catch (const ChannelError& e) {
      EXPECT_EQ(e.kind(), ChannelErrorKind::kBadFrame);
    }
  }
}

TEST(TcpFrames, MidFrameCloseIsPeerDead) {
  FlakyPair pair;
  const auto wire = encode_frame(3, bytes_of({1, 2, 3, 4, 5, 6, 7, 8}));
  pair.send_raw({wire.begin(), wire.begin() + 7});  // header + 3 bytes only
  pair.close_raw();
  try {
    (void)read_frame(pair.reader);
    FAIL() << "mid-frame close not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kPeerDead);
  }
}

TEST(TcpFrames, CorruptPayloadReportsCrcMismatch) {
  FlakyPair pair;
  auto wire = encode_frame(5, bytes_of({10, 20, 30, 40}));
  wire.back() ^= 0x01;  // flip one payload bit in flight
  pair.send_raw(wire);
  const Frame f = read_frame(pair.reader);
  EXPECT_FALSE(f.crc_ok);
  EXPECT_EQ(f.seq, 5u);
}

TEST(TcpFrames, ReadTimeoutIsBoundedAndTyped) {
  FlakyPair pair{0.2};
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)read_frame(pair.reader);
    FAIL() << "read on a silent link did not time out";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0) << "timeout not bounded by the configured 0.2s";
}

// ---- Layer 2: TcpTransport meshes on loopback ----

// Builds a fully-connected mesh of `parties` transports on kernel-assigned
// loopback ports and connects them concurrently.
std::vector<std::unique_ptr<TcpTransport>> make_mesh(
    std::size_t parties, std::uint64_t session, double read_timeout_s = 30.0) {
  std::vector<std::unique_ptr<TcpTransport>> mesh;
  for (std::size_t p = 0; p < parties; ++p) {
    TcpTransportConfig cfg;
    cfg.party = p;
    cfg.parties = parties;
    cfg.listen = Endpoint{"127.0.0.1", 0};
    cfg.peers.resize(parties);
    cfg.session = session;
    cfg.socket.read_timeout_s = read_timeout_s;
    mesh.push_back(std::make_unique<TcpTransport>(std::move(cfg)));
  }
  for (std::size_t p = 0; p < parties; ++p)
    for (std::size_t q = 0; q < parties; ++q)
      if (q != p)
        mesh[p]->set_peer(q, Endpoint{"127.0.0.1", mesh[q]->listen_port()});
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(parties);
  for (std::size_t p = 0; p < parties; ++p)
    threads.emplace_back([&, p] {
      try {
        mesh[p]->connect();
      } catch (...) {
        errors[p] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return mesh;
}

TEST(TcpTransportMesh, FifoDeliveryBothDirections) {
  auto mesh = make_mesh(2, 0xABCD);
  mesh[0]->send(0, 1, bytes_of({1, 1, 1}));
  mesh[0]->send(0, 1, bytes_of({2, 2}));
  mesh[1]->send(1, 0, bytes_of({3}));
  EXPECT_EQ(mesh[1]->receive(0, 1), bytes_of({1, 1, 1}));
  EXPECT_EQ(mesh[1]->receive(0, 1), bytes_of({2, 2}));
  EXPECT_EQ(mesh[0]->receive(1, 0), bytes_of({3}));
  const FaultStats s = mesh[1]->stats();
  EXPECT_EQ(s.crc_detected, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.giveups, 0u);
}

TEST(TcpTransportMesh, ReceiveTimeoutIsTyped) {
  auto mesh = make_mesh(2, 0xABCE, 0.2);
  try {
    (void)mesh[1]->receive(0, 1);
    FAIL() << "receive on a silent link did not time out";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
    EXPECT_EQ(e.src(), 0u);
    EXPECT_EQ(e.dst(), 1u);
  }
  EXPECT_GE(mesh[1]->stats().timeouts, 1u);
}

TEST(TcpTransportMesh, PeerShutdownSurfacesPeerDead) {
  auto mesh = make_mesh(2, 0xABCF, 5.0);
  mesh[0]->send(0, 1, bytes_of({42}));
  mesh[0]->shutdown();
  // The already-delivered frame drains first; then the closed link is a
  // typed kPeerDead, not a hang.
  EXPECT_EQ(mesh[1]->receive(0, 1), bytes_of({42}));
  try {
    (void)mesh[1]->receive(0, 1);
    FAIL() << "closed link not surfaced";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kPeerDead);
  }
}

TEST(TcpTransportMesh, SessionMismatchRefused) {
  // Two processes launched from different instance agreements must refuse
  // each other at the handshake.
  std::vector<std::unique_ptr<TcpTransport>> mesh;
  for (std::size_t p = 0; p < 2; ++p) {
    TcpTransportConfig cfg;
    cfg.party = p;
    cfg.parties = 2;
    cfg.listen = Endpoint{"127.0.0.1", 0};
    cfg.peers.resize(2);
    cfg.session = 100 + p;  // disagree
    cfg.socket.read_timeout_s = 2.0;
    mesh.push_back(std::make_unique<TcpTransport>(std::move(cfg)));
  }
  mesh[0]->set_peer(1, Endpoint{"127.0.0.1", mesh[1]->listen_port()});
  mesh[1]->set_peer(0, Endpoint{"127.0.0.1", mesh[0]->listen_port()});
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < 2; ++p)
    threads.emplace_back([&, p] {
      try {
        mesh[p]->connect();
      } catch (...) {
        errors[p] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  std::size_t typed = 0;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const ChannelError&) {
      ++typed;
    }
  }
  EXPECT_GE(typed, 1u) << "session mismatch accepted";
}

// ---- Layer 3: the full protocol over sockets ----

struct Instance {
  core::AttrVec v0{35, 120, 0, 0};
  core::AttrVec w{10, 5, 2, 1};
  std::vector<core::AttrVec> infos{{34, 118, 90, 55},
                                   {52, 160, 20, 90},
                                   {35, 121, 40, 40},
                                   {29, 130, 70, 35}};
};

core::FrameworkConfig make_fw(const group::Group* g) {
  core::FrameworkConfig fw;
  fw.spec.m = 4;
  fw.spec.t = 2;
  fw.spec.d1 = 8;
  fw.spec.d2 = 4;
  fw.spec.h = 8;
  fw.n = 4;
  fw.k = 2;
  fw.group = g;
  fw.dot_field = &core::default_dot_field();
  return fw;
}

// Runs all n+1 parties of `cfg` as one thread + TcpTransport each (real
// loopback TCP between them), every party seeded with `seed`.
std::vector<core::PartyResult> run_socket_mesh(const core::PartyConfig& base,
                                               const Instance& inst,
                                               std::uint64_t seed) {
  const std::size_t parties = base.fw.n + 1;
  auto mesh = make_mesh(parties, 0xD00D ^ seed);
  std::vector<core::PartyResult> results(parties);
  std::vector<std::exception_ptr> errors(parties);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < parties; ++p)
    threads.emplace_back([&, p] {
      try {
        core::PartyConfig cfg = base;
        cfg.party = p;
        core::PartyInput input;
        if (p == 0) {
          input.v0 = inst.v0;
          input.w = inst.w;
        } else {
          input.info = inst.infos[p - 1];
        }
        mpz::ChaChaRng rng{seed};
        results[p] = core::run_party(cfg, input, *mesh[p], rng);
      } catch (...) {
        errors[p] = std::current_exception();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

TEST(TcpPartyE2E, HeSocketRunBitIdenticalToSimulator) {
  const Instance inst;
  const auto group = group::make_group(group::GroupId::kDlTest256);
  const core::FrameworkConfig fw = make_fw(group.get());

  mpz::ChaChaRng ref_rng{42};
  const core::FrameworkResult ref =
      core::run_framework(fw, inst.v0, inst.w, inst.infos, ref_rng);

  core::PartyConfig base;
  base.fw = fw;
  const auto results = run_socket_mesh(base, inst, 42);

  // The initiator's view: complete ranking + submissions, identical.
  EXPECT_EQ(results[0].ranks, ref.ranks);
  EXPECT_EQ(results[0].submitted_ids, ref.submitted_ids);
  // Every participant's own view: rank AND masked gain β bit-identical —
  // the whole phase-2 pipeline (keys, encryptions, comparisons, shuffles)
  // ran on the same substreams over real sockets.
  for (std::size_t j = 1; j <= fw.n; ++j) {
    EXPECT_EQ(results[j].rank, ref.ranks[j - 1]) << "party " << j;
    EXPECT_EQ(results[j].beta, ref.betas[j - 1]) << "party " << j;
  }
}

TEST(TcpPartyE2E, SsSocketRanksMatchSimulator) {
  const Instance inst;
  const auto group = group::make_group(group::GroupId::kDlTest256);
  const core::FrameworkConfig fw = make_fw(group.get());

  core::SsFrameworkConfig scfg;
  scfg.base = fw;
  scfg.threshold = 1;
  mpz::ChaChaRng ref_rng{7};
  const core::SsFrameworkResult ref =
      core::run_ss_framework(scfg, inst.v0, inst.w, inst.infos, ref_rng);

  core::PartyConfig base;
  base.fw = fw;
  base.ss = true;
  base.ss_threshold = 1;
  const auto results = run_socket_mesh(base, inst, 7);

  // β masking is order-preserving, so with distinct gains the distributed
  // sort reproduces the simulator's ranks (β values themselves differ —
  // each party draws its own mask stream).
  EXPECT_EQ(results[0].ranks, ref.ranks);
  EXPECT_EQ(results[0].submitted_ids, ref.submitted_ids);
  for (std::size_t j = 1; j <= fw.n; ++j)
    EXPECT_EQ(results[j].rank, ref.ranks[j - 1]) << "party " << j;
}

}  // namespace
}  // namespace ppgr::net::tcp

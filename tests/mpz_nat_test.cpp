// Unit + property tests for the arbitrary-precision Nat/Int types.
// GMP (mpz_class) serves as the oracle for randomized cross-checks.
#include <gmpxx.h>
#include <gtest/gtest.h>

#include <utility>

#include "mpz/nat.h"
#include "mpz/rng.h"
#include "mpz/sint.h"

namespace ppgr::mpz {
namespace {

mpz_class to_gmp(const Nat& n) { return mpz_class{n.to_hex(), 16}; }

Nat random_nat(Rng& rng, std::size_t max_bits) {
  return rng.bits(1 + rng.below_u64(max_bits));
}

TEST(Nat, ZeroBasics) {
  const Nat z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.limb_count(), 0u);
  EXPECT_TRUE(z.is_even());
}

TEST(Nat, SingleLimbArithmetic) {
  const Nat a{7}, b{5};
  EXPECT_EQ((a + b).to_limb(), 12u);
  EXPECT_EQ((a - b).to_limb(), 2u);
  EXPECT_EQ((a * b).to_limb(), 35u);
  EXPECT_EQ((a / b).to_limb(), 1u);
  EXPECT_EQ((a % b).to_limb(), 2u);
}

TEST(Nat, AddCarryPropagation) {
  const Nat max64{UINT64_MAX};
  const Nat sum = max64 + Nat{1};
  EXPECT_EQ(sum.bit_length(), 65u);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(Nat, SubBorrowPropagation) {
  const Nat a = Nat::pow2(128);
  const Nat b{1};
  const Nat d = a - b;
  EXPECT_EQ(d.bit_length(), 128u);
  EXPECT_EQ(d.to_hex(), std::string(32, 'f'));
}

TEST(Nat, SubUnderflowThrows) {
  EXPECT_THROW((void)(Nat{3} - Nat{5}), std::domain_error);
}

TEST(Nat, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Nat{3} / Nat{}), std::domain_error);
}

TEST(Nat, HexRoundTrip) {
  const char* cases[] = {"0", "1", "f", "10", "deadbeef",
                         "123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(Nat::from_hex(c).to_hex(), c);
  }
}

TEST(Nat, HexRejectsBadInput) {
  EXPECT_THROW((void)Nat::from_hex(""), std::invalid_argument);
  EXPECT_THROW((void)Nat::from_hex("xyz"), std::invalid_argument);
}

TEST(Nat, DecRoundTrip) {
  const char* cases[] = {"0", "1", "10", "18446744073709551616",
                         "340282366920938463463374607431768211455"};
  for (const char* c : cases) {
    EXPECT_EQ(Nat::from_dec(c).to_dec(), c);
  }
}

TEST(Nat, BytesRoundTrip) {
  ChaChaRng rng{42};
  for (int i = 0; i < 50; ++i) {
    const Nat a = random_nat(rng, 600);
    const auto bytes = a.to_bytes_be();
    EXPECT_EQ(Nat::from_bytes_be(bytes), a);
  }
}

TEST(Nat, BytesFixedWidthPadding) {
  const Nat a{0xABCD};
  const auto bytes = a.to_bytes_be(8);
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0u);
  EXPECT_EQ(bytes[6], 0xAB);
  EXPECT_EQ(bytes[7], 0xCD);
  EXPECT_THROW((void)Nat::pow2(64).to_bytes_be(8), std::length_error);
}

TEST(Nat, BitAccess) {
  Nat a;
  a.set_bit(100, true);
  EXPECT_TRUE(a.bit(100));
  EXPECT_FALSE(a.bit(99));
  EXPECT_EQ(a, Nat::pow2(100));
  a.set_bit(100, false);
  EXPECT_TRUE(a.is_zero());
}

TEST(Nat, ShiftIdentities) {
  ChaChaRng rng{7};
  for (int i = 0; i < 40; ++i) {
    const Nat a = random_nat(rng, 500);
    const std::size_t k = rng.below_u64(300);
    EXPECT_EQ(a.shl(k).shr(k), a);
    EXPECT_EQ(a.shl(k), a * Nat::pow2(k));
    EXPECT_EQ(a.shr(k), a / Nat::pow2(k));
  }
}

// ---- randomized cross-checks against GMP ----

class NatVsGmp : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NatVsGmp, AddSubMulDiv) {
  const std::size_t bits = GetParam();
  ChaChaRng rng{bits};
  for (int i = 0; i < 30; ++i) {
    const Nat a = random_nat(rng, bits);
    const Nat b = random_nat(rng, bits);
    const mpz_class ga = to_gmp(a), gb = to_gmp(b);
    EXPECT_EQ(to_gmp(a + b), ga + gb);
    EXPECT_EQ(to_gmp(a * b), ga * gb);
    if (a >= b) {
      EXPECT_EQ(to_gmp(a - b), ga - gb);
    }
    if (!b.is_zero()) {
      const auto [q, r] = Nat::divrem(a, b);
      EXPECT_EQ(to_gmp(q), ga / gb);
      EXPECT_EQ(to_gmp(r), ga % gb);
      EXPECT_EQ(q * b + r, a);  // division identity
      EXPECT_LT(r, b);
    }
  }
}

TEST_P(NatVsGmp, BitwiseOps) {
  const std::size_t bits = GetParam();
  ChaChaRng rng{bits + 1};
  for (int i = 0; i < 20; ++i) {
    const Nat a = random_nat(rng, bits);
    const Nat b = random_nat(rng, bits);
    const mpz_class ga = to_gmp(a), gb = to_gmp(b);
    EXPECT_EQ(to_gmp(Nat::bit_and(a, b)), ga & gb);
    EXPECT_EQ(to_gmp(Nat::bit_or(a, b)), ga | gb);
    EXPECT_EQ(to_gmp(Nat::bit_xor(a, b)), ga ^ gb);
  }
}

TEST_P(NatVsGmp, DecimalAgrees) {
  const std::size_t bits = GetParam();
  ChaChaRng rng{bits + 2};
  for (int i = 0; i < 10; ++i) {
    const Nat a = random_nat(rng, bits);
    EXPECT_EQ(a.to_dec(), to_gmp(a).get_str(10));
    EXPECT_EQ(Nat::from_dec(a.to_dec()), a);
  }
}

// Cover the schoolbook regime, the Karatsuba cutover and deep Karatsuba.
INSTANTIATE_TEST_SUITE_P(Widths, NatVsGmp,
                         ::testing::Values(8, 64, 200, 1024, 1536, 2048, 4096,
                                           8192));

TEST(Nat, KaratsubaMatchesSchoolbookAtBoundary) {
  ChaChaRng rng{99};
  // Straddle the threshold: sizes around kKaratsubaThreshold limbs.
  for (int i = 0; i < 20; ++i) {
    const std::size_t bits_a = 64 * (Nat::kKaratsubaThreshold - 2 + rng.below_u64(8));
    const std::size_t bits_b = 64 * (Nat::kKaratsubaThreshold - 2 + rng.below_u64(8));
    const Nat a = rng.bits(bits_a), b = rng.bits(bits_b);
    EXPECT_EQ(to_gmp(a * b), to_gmp(a) * to_gmp(b));
  }
}

TEST(Nat, UnbalancedMultiplication) {
  ChaChaRng rng{123};
  const Nat big = rng.bits(64 * 100);
  const Nat small = rng.bits(40);
  EXPECT_EQ(to_gmp(big * small), to_gmp(big) * to_gmp(small));
  EXPECT_EQ(big * Nat{}, Nat{});
  EXPECT_EQ(big * Nat{1}, big);
}

TEST(Nat, DivisionAddBackEdgeCase) {
  // Crafted so Algorithm D's trial quotient needs correction: dividend with
  // pattern B-1 limbs against divisor with high limb just above B/2.
  const Nat u = Nat::from_hex(
      "7fffffffffffffff800000000000000000000000000000000000000000000000");
  const Nat v = Nat::from_hex("800000000000000000000000000000000001");
  const auto [q, r] = Nat::divrem(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(Nat, SmallBufferSpillBoundary) {
  // Nat's limbs live inline up to LimbVec::kInline limbs and spill to the
  // heap beyond; exercise arithmetic that crosses the boundary in both
  // directions so the grow-preserving-contents path and the shrink-back
  // (heap buffer retained, size reduced) path both run.
  const std::size_t edge = LimbVec::kInline * 64;  // bits
  const Nat below = Nat::sub(Nat::pow2(edge), Nat{1});     // kInline limbs
  const Nat above = Nat::add(below, Nat{1});               // kInline + 1
  EXPECT_EQ(below.limb_count(), LimbVec::kInline);
  EXPECT_EQ(above.limb_count(), LimbVec::kInline + 1);
  EXPECT_EQ(to_gmp(Nat::mul(below, below)),
            to_gmp(below) * to_gmp(below));
  // Shrink across the boundary: (2^edge) - 1 drops back to inline size.
  EXPECT_EQ(Nat::sub(above, Nat{1}), below);
  // A heap-sized value reassigned from an inline-sized one.
  Nat v = above;
  v = below;
  EXPECT_EQ(v, below);
  EXPECT_EQ(to_gmp(Nat::add(v, above)), to_gmp(below) + to_gmp(above));
}

TEST(Nat, SmallBufferCopyAndMoveSemantics) {
  const Nat small{42};                         // inline
  const Nat big = Nat::pow2(LimbVec::kInline * 64 + 7);  // heap
  // Copy both ways; source must be unchanged.
  Nat a = big;
  const Nat b = a;
  EXPECT_EQ(a, big);
  EXPECT_EQ(b, big);
  // Move a heap value: the source is reusable (assign a new value).
  Nat c = std::move(a);
  EXPECT_EQ(c, big);
  a = small;  // NOLINT(bugprone-use-after-move): reassignment is the test
  EXPECT_EQ(a, small);
  // Move an inline value.
  Nat d = small;
  Nat e = std::move(d);
  EXPECT_EQ(e, small);
  // Self-assignment through a reference must be a no-op.
  Nat& ref = c;
  c = ref;
  EXPECT_EQ(c, big);
}

// ---- signed Int ----

TEST(Int, ConstructionAndSign) {
  EXPECT_TRUE(Int{}.is_zero());
  EXPECT_FALSE(Int{}.is_negative());
  EXPECT_TRUE(Int{-5}.is_negative());
  EXPECT_FALSE(Int{5}.is_negative());
  const Int neg_zero{Nat{}, true};
  EXPECT_FALSE(neg_zero.is_negative());  // -0 normalizes to +0
  EXPECT_EQ(Int{INT64_MIN}.to_i64(), INT64_MIN);
  EXPECT_EQ(Int{INT64_MIN}.to_dec(), "-9223372036854775808");
}

TEST(Int, Arithmetic) {
  EXPECT_EQ((Int{7} + Int{-10}).to_i64(), -3);
  EXPECT_EQ((Int{-7} + Int{10}).to_i64(), 3);
  EXPECT_EQ((Int{-7} - Int{-10}).to_i64(), 3);
  EXPECT_EQ((Int{-7} * Int{-10}).to_i64(), 70);
  EXPECT_EQ((Int{-7} * Int{10}).to_i64(), -70);
}

TEST(Int, TruncatedDivision) {
  // C semantics: -7 / 2 == -3 rem -1.
  const auto [q, r] = Int::divrem(Int{-7}, Int{2});
  EXPECT_EQ(q.to_i64(), -3);
  EXPECT_EQ(r.to_i64(), -1);
}

TEST(Int, EuclideanMod) {
  EXPECT_EQ(Int{-7}.mod(Nat{5}).to_limb(), 3u);
  EXPECT_EQ(Int{7}.mod(Nat{5}).to_limb(), 2u);
  EXPECT_EQ(Int{-10}.mod(Nat{5}).to_limb(), 0u);
}

TEST(Int, Ordering) {
  EXPECT_LT(Int{-5}, Int{-4});
  EXPECT_LT(Int{-1}, Int{0});
  EXPECT_LT(Int{0}, Int{1});
  EXPECT_GT(Int{100}, Int{-100});
}

TEST(Int, RandomizedVsGmp) {
  ChaChaRng rng{2024};
  auto to_gmp_int = [](const Int& v) {
    mpz_class g = to_gmp(v.magnitude());
    return v.is_negative() ? mpz_class{-g} : g;
  };
  for (int i = 0; i < 60; ++i) {
    const Int a{random_nat(rng, 300), rng.coin()};
    const Int b{random_nat(rng, 300), rng.coin()};
    EXPECT_EQ(to_gmp_int(a + b), to_gmp_int(a) + to_gmp_int(b));
    EXPECT_EQ(to_gmp_int(a - b), to_gmp_int(a) - to_gmp_int(b));
    EXPECT_EQ(to_gmp_int(a * b), to_gmp_int(a) * to_gmp_int(b));
    EXPECT_EQ(Int::cmp(a, b), ::cmp(to_gmp_int(a), to_gmp_int(b)) < 0   ? -1
                              : ::cmp(to_gmp_int(a), to_gmp_int(b)) > 0 ? 1
                                                                        : 0);
  }
}

TEST(Int, FromDec) {
  EXPECT_EQ(Int::from_dec("-123").to_i64(), -123);
  EXPECT_EQ(Int::from_dec("+123").to_i64(), 123);
  EXPECT_EQ(Int::from_dec("0").to_i64(), 0);
}

// ---- RNG sanity ----

TEST(Rng, Deterministic) {
  ChaChaRng a{1}, b{1}, c{2};
  EXPECT_EQ(a.next_u64(), b.next_u64());
  ChaChaRng a2{1};
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, BelowRespectsBound) {
  ChaChaRng rng{3};
  const Nat bound = Nat::from_hex("10000000000000001");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.below(bound), bound);
  }
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.below_u64(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(Rng, BitsWidth) {
  ChaChaRng rng{4};
  for (std::size_t w : {1u, 7u, 64u, 65u, 300u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_LE(rng.bits(w).bit_length(), w);
    }
  }
}

TEST(Rng, NonzeroBelow) {
  ChaChaRng rng{5};
  for (int i = 0; i < 100; ++i) {
    const Nat v = rng.nonzero_below(Nat{2});
    EXPECT_EQ(v, Nat{1});
  }
}

TEST(Rng, ChaChaKnownAnswer) {
  // All-zero key, nonce and counter: the ChaCha20 keystream begins
  // 76 b8 e0 ad a0 f1 3d 90 ... (well-known vector, identical in the djb and
  // RFC 8439 variants because the whole input state below the constants is
  // zero). Little-endian u64 of those first 8 bytes:
  ChaChaRng rng{std::array<std::uint8_t, 32>{}};
  EXPECT_EQ(rng.next_u64(), 0x903df1a0ade0b876ULL);
}

}  // namespace
}  // namespace ppgr::mpz

// Exhaustive elliptic-curve validation on a tiny curve.
//
// The production curves (P-192/224/256) are validated against group laws and
// their standardized parameters, but subtle formula bugs (wrong Jacobian
// doubling branch, bad mixed-representation handling) can hide in random
// testing. Here we take a curve small enough to enumerate completely —
// y^2 = x^3 + 2x + 3 over F_97 (order 100 = 2^2 * 5^2, subgroup of prime
// order 5 for the Group wrapper) — compute the full group table by brute
// force from the curve equation, and check EVERY addition against the
// implementation.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "group/ec_group.h"

namespace ppgr::group {
namespace {

using mpz::Nat;

// Brute-force affine point list of y^2 = x^3 + ax + b over F_p (small p).
struct AffinePt {
  std::uint64_t x, y;
  bool inf = false;
  bool operator<(const AffinePt& o) const {
    return std::tie(inf, x, y) < std::tie(o.inf, o.x, o.y);
  }
  bool operator==(const AffinePt& o) const {
    return inf == o.inf && (inf || (x == o.x && y == o.y));
  }
};

constexpr std::uint64_t kP = 97, kA = 2, kB = 3;

std::uint64_t addm(std::uint64_t a, std::uint64_t b) { return (a + b) % kP; }
std::uint64_t subm(std::uint64_t a, std::uint64_t b) {
  return (a + kP - b) % kP;
}
std::uint64_t mulm(std::uint64_t a, std::uint64_t b) { return a * b % kP; }
std::uint64_t powm(std::uint64_t a, std::uint64_t e) {
  std::uint64_t r = 1;
  while (e) {
    if (e & 1) r = mulm(r, a);
    a = mulm(a, a);
    e >>= 1;
  }
  return r;
}
std::uint64_t invm(std::uint64_t a) { return powm(a, kP - 2); }

// Textbook affine addition (the independent reference).
AffinePt ref_add(const AffinePt& p, const AffinePt& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  if (p.x == q.x && addm(p.y, q.y) == 0) return AffinePt{.inf = true};
  std::uint64_t lambda;
  if (p == q) {
    lambda = mulm(addm(mulm(3, mulm(p.x, p.x)), kA), invm(mulm(2, p.y)));
  } else {
    lambda = mulm(subm(q.y, p.y), invm(subm(q.x, p.x)));
  }
  const std::uint64_t x3 = subm(subm(mulm(lambda, lambda), p.x), q.x);
  const std::uint64_t y3 = subm(mulm(lambda, subm(p.x, x3)), p.y);
  return AffinePt{.x = x3, .y = y3};
}

std::vector<AffinePt> enumerate_curve() {
  std::vector<AffinePt> pts{AffinePt{.inf = true}};
  for (std::uint64_t x = 0; x < kP; ++x) {
    const std::uint64_t rhs = addm(addm(powm(x, 3), mulm(kA, x)), kB);
    for (std::uint64_t y = 0; y < kP; ++y) {
      if (mulm(y, y) == rhs) pts.push_back(AffinePt{.x = x, .y = y});
    }
  }
  return pts;
}

// Find a point of prime order 5 to anchor the Group wrapper. (Curve order
// is enumerated, not assumed.)
class TinyCurve : public ::testing::Test {
 protected:
  static EcGroup make(const AffinePt& gen, std::uint64_t order) {
    return EcGroup{CurveParams{.name = "tiny-f97",
                               .p = Nat{kP},
                               .a = Nat{kA},
                               .b = Nat{kB},
                               .gx = Nat{gen.x},
                               .gy = Nat{gen.y},
                               .order = Nat{order}}};
  }
};

TEST_F(TinyCurve, EveryPairwiseAdditionMatchesReference) {
  const auto pts = enumerate_curve();
  ASSERT_GT(pts.size(), 10u);

  // Use any non-identity point as formal generator; we only exercise mul.
  // Order passed is the full enumerated group order's largest prime factor
  // path is irrelevant here — use a point of small prime order found below.
  // For the addition table we can construct elements directly.
  AffinePt gen{};
  std::uint64_t gen_order = 0;
  for (const auto& p : pts) {
    if (p.inf) continue;
    // Compute the order of p by repeated reference addition.
    AffinePt acc = p;
    std::uint64_t ord = 1;
    while (!acc.inf) {
      acc = ref_add(acc, p);
      ++ord;
    }
    if (ord == 5) {  // prime-order subgroup generator for the wrapper
      gen = p;
      gen_order = ord;
      break;
    }
  }
  if (gen_order == 0) GTEST_SKIP() << "no order-5 point on this curve";
  const EcGroup curve = make(gen, gen_order);

  auto lift = [&](const AffinePt& p) {
    return p.inf ? curve.identity() : curve.from_affine(Nat{p.x}, Nat{p.y});
  };
  auto drop = [&](const Elem& e) {
    if (curve.is_identity(e)) return AffinePt{.inf = true};
    const auto [x, y] = curve.to_affine(e);
    return AffinePt{.x = x.to_limb(), .y = y.to_limb()};
  };

  // The full Cayley table: |E|^2 additions (~10^4), every special case hit
  // (doubling, inverse pairs, identity, mixed Z-coordinates).
  for (const auto& p : pts) {
    for (const auto& q : pts) {
      const AffinePt expect = ref_add(p, q);
      const AffinePt got = drop(curve.mul(lift(p), lift(q)));
      ASSERT_EQ(got, expect)
          << "(" << p.x << "," << p.y << ") + (" << q.x << "," << q.y << ")";
    }
  }
}

TEST_F(TinyCurve, ScalarMultiplicationMatchesRepeatedAddition) {
  const auto pts = enumerate_curve();
  // Pick several points; check exp(p, k) against k-fold reference addition
  // for every k up to beyond the point's order (wraparound included).
  int tested = 0;
  for (const auto& p : pts) {
    if (p.inf) continue;
    AffinePt acc = p;
    std::uint64_t ord = 1;
    while (!acc.inf) {
      acc = ref_add(acc, p);
      ++ord;
    }
    if (ord != 5) continue;
    const EcGroup curve = make(p, ord);
    const Elem base = curve.generator();
    AffinePt ref{.inf = true};
    for (std::uint64_t k = 0; k <= 2 * ord + 1; ++k) {
      const Elem got = curve.exp(base, Nat{k});
      if (ref.inf) {
        EXPECT_TRUE(curve.is_identity(got)) << "k=" << k;
      } else {
        const auto [x, y] = curve.to_affine(got);
        EXPECT_EQ(x.to_limb(), ref.x) << "k=" << k;
        EXPECT_EQ(y.to_limb(), ref.y) << "k=" << k;
      }
      ref = ref_add(ref, p);
    }
    if (++tested >= 3) break;
  }
  EXPECT_GT(tested, 0);
}

}  // namespace
}  // namespace ppgr::group

// Tests for Shamir sharing and the MPC engine primitives.
#include <gtest/gtest.h>

#include "mpz/prime.h"
#include "sss/mpc_engine.h"
#include "sss/shamir.h"

namespace ppgr::sss {
namespace {

using mpz::ChaChaRng;
using mpz::FpCtx;

const FpCtx& small_field() {
  // 17-bit prime: big enough for the protocols, small enough to keep the
  // bitwise machinery (which is O(field bits)) fast in tests.
  static const FpCtx f{mpz::Nat{131071}};  // 2^17 - 1, a Mersenne prime
  return f;
}

TEST(Shamir, ShareReconstructRoundTrip) {
  const FpCtx& f = small_field();
  ChaChaRng rng{40};
  for (int i = 0; i < 20; ++i) {
    const Nat secret = f.random(rng);
    const ShareVec shares = share_secret(f, secret, 2, 5, rng);
    EXPECT_EQ(reconstruct(f, shares, 2), secret);
  }
}

class ShamirParams
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirParams, AnySubsetOfTPlus1Reconstructs) {
  const auto [t, n] = GetParam();
  const FpCtx& f = small_field();
  ChaChaRng rng{41};
  const Nat secret = f.random(rng);
  const ShareVec shares = share_secret(f, secret, t, n, rng);
  // Try several random subsets of size t+1.
  for (int iter = 0; iter < 5; ++iter) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = n; i-- > 1;)
      std::swap(idx[i], idx[rng.below_u64(i + 1)]);
    std::vector<std::pair<std::size_t, Nat>> pts;
    for (std::size_t i = 0; i <= t; ++i)
      pts.emplace_back(idx[i] + 1, shares[idx[i]]);
    EXPECT_EQ(reconstruct_subset(f, pts), secret);
  }
}

INSTANTIATE_TEST_SUITE_P(ThresholdGrid, ShamirParams,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 3},
                                           std::pair<std::size_t, std::size_t>{2, 5},
                                           std::pair<std::size_t, std::size_t>{3, 7},
                                           std::pair<std::size_t, std::size_t>{5, 11}));

TEST(Shamir, TSharesLookUniform) {
  // With only t shares the secret is information-theoretically hidden: for a
  // degree-t polynomial, any t points are consistent with *every* secret.
  // Sanity-check the mechanism: two different secrets can produce the same
  // first t shares under suitable randomness; here we verify shares of fixed
  // secret vary across dealings (randomized polynomials).
  const FpCtx& f = small_field();
  ChaChaRng rng{42};
  const Nat secret = f.to(Nat{7});
  const ShareVec s1 = share_secret(f, secret, 2, 5, rng);
  const ShareVec s2 = share_secret(f, secret, 2, 5, rng);
  EXPECT_NE(s1, s2);
}

TEST(Shamir, RejectsBadParameters) {
  const FpCtx& f = small_field();
  ChaChaRng rng{43};
  EXPECT_THROW((void)share_secret(f, f.zero(), 3, 3, rng),
               std::invalid_argument);
  EXPECT_THROW((void)share_secret(f, f.zero(), 0, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)reconstruct(f, ShareVec{f.zero()}, 2),
               std::invalid_argument);
}

// ---- engine ----

struct EngineFixture : public ::testing::Test {
  EngineFixture() : rng(50), engine(small_field(), 5, 2, rng) {}
  ChaChaRng rng;
  MpcEngine engine;
  const FpCtx& f = small_field();

  Nat open_std(const ShareVec& x) { return f.from(engine.open(x)); }
};

TEST_F(EngineFixture, LinearOps) {
  const ShareVec a = engine.input(f.to(Nat{20}));
  const ShareVec b = engine.input(f.to(Nat{22}));
  EXPECT_EQ(open_std(engine.add(a, b)), Nat{42});
  EXPECT_EQ(open_std(engine.sub(b, a)), Nat{2});
  EXPECT_EQ(open_std(engine.add_const(a, f.to(Nat{5}))), Nat{25});
  EXPECT_EQ(open_std(engine.mul_const(a, f.to(Nat{3}))), Nat{60});
  EXPECT_EQ(engine.open(engine.add(a, engine.neg(a))), f.zero());
  EXPECT_EQ(open_std(engine.constant(f.to(Nat{9}))), Nat{9});
}

TEST_F(EngineFixture, Multiplication) {
  for (int i = 0; i < 10; ++i) {
    const Nat x = f.random(rng), y = f.random(rng);
    const ShareVec a = engine.input(x);
    const ShareVec b = engine.input(y);
    EXPECT_EQ(engine.open(engine.mul(a, b)), f.mul(x, y));
  }
}

TEST_F(EngineFixture, MulManyBatch) {
  const ShareVec a = engine.input(f.to(Nat{6}));
  const ShareVec b = engine.input(f.to(Nat{7}));
  const ShareVec c = engine.input(f.to(Nat{3}));
  const std::uint64_t rounds_before = engine.costs().rounds;
  const std::pair<ShareVec, ShareVec> pairs[] = {{a, b}, {b, c}, {a, c}};
  const auto prods = engine.mul_many(pairs);
  EXPECT_EQ(engine.costs().rounds - rounds_before, 1u);  // one parallel round
  EXPECT_EQ(open_std(prods[0]), Nat{42});
  EXPECT_EQ(open_std(prods[1]), Nat{21});
  EXPECT_EQ(open_std(prods[2]), Nat{18});
}

TEST_F(EngineFixture, RandBitIsBinary) {
  for (int i = 0; i < 20; ++i) {
    const Nat b = open_std(engine.rand_bit());
    EXPECT_TRUE(b == Nat{} || b == Nat{1}) << b.to_dec();
  }
}

TEST_F(EngineFixture, RandBitsAreNotConstant) {
  const auto bits = engine.rand_bits_many(40);
  int ones = 0;
  for (const auto& b : bits) ones += open_std(b) == Nat{1} ? 1 : 0;
  // 40 fair coins: P(all same) = 2^-39.
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, 40);
}

TEST_F(EngineFixture, RandBitwiseComposes) {
  for (int i = 0; i < 3; ++i) {
    const auto r = engine.rand_bitwise();
    // Composed value equals Σ 2^i b_i and is < p.
    Nat composed;
    for (std::size_t b = 0; b < r.bits.size(); ++b) {
      if (open_std(r.bits[b]) == Nat{1}) composed = Nat::add(composed, Nat::pow2(b));
    }
    EXPECT_EQ(open_std(r.value), composed);
    EXPECT_LT(composed, f.p());
  }
}

TEST_F(EngineFixture, BitLtPublic) {
  for (int i = 0; i < 5; ++i) {
    const auto r = engine.rand_bitwise();
    const Nat r_val = open_std(r.value);
    const Nat c = rng.below(f.p());
    const Nat lt = open_std(engine.bit_lt_public(c, r.bits));
    EXPECT_EQ(lt == Nat{1}, c < r_val) << "c=" << c.to_dec()
                                       << " r=" << r_val.to_dec();
  }
  // Edge: c == r must give 0.
  const auto r = engine.rand_bitwise();
  const Nat r_val = open_std(r.value);
  EXPECT_EQ(open_std(engine.bit_lt_public(r_val, r.bits)), Nat{});
}

TEST_F(EngineFixture, Lsb) {
  for (const mpz::Limb v : {0ULL, 1ULL, 2ULL, 17ULL, 100000ULL, 131070ULL}) {
    const ShareVec x = engine.input(f.to(Nat{v}));
    EXPECT_EQ(open_std(engine.lsb(x)), Nat{v & 1}) << v;
  }
}

TEST_F(EngineFixture, HalfTest) {
  const Nat half = f.p().shr(1);
  for (const Nat& v : {Nat{}, Nat{1}, Nat::sub(half, Nat{1}), half,
                      Nat::add(half, Nat{1}), Nat::sub(f.p(), Nat{1})}) {
    const ShareVec x = engine.input(f.to(v));
    const bool expect = v < Nat::add(half, Nat{1});  // v <= floor(p/2) i.e. v < p/2 as rationals
    EXPECT_EQ(open_std(engine.half_test(x)) == Nat{1}, expect) << v.to_dec();
  }
}

TEST_F(EngineFixture, LessThan) {
  // Values restricted to < p/2 as the Nishide–Ohta condition requires.
  const Nat bound = f.p().shr(1);
  for (int i = 0; i < 8; ++i) {
    const Nat a = rng.below(bound), b = rng.below(bound);
    const ShareVec sa = engine.input(f.to(a));
    const ShareVec sb = engine.input(f.to(b));
    EXPECT_EQ(open_std(engine.less_than(sa, sb)) == Nat{1}, a < b)
        << a.to_dec() << " vs " << b.to_dec();
  }
  // Equal values: strictly-less is false.
  const ShareVec s = engine.input(f.to(Nat{777}));
  EXPECT_EQ(open_std(engine.less_than(s, s)), Nat{});
}

TEST(MpcEngine, RejectsBadThreshold) {
  ChaChaRng rng{60};
  EXPECT_THROW((MpcEngine{small_field(), 4, 2, rng}), std::invalid_argument);
  EXPECT_THROW((MpcEngine{small_field(), 3, 0, rng}), std::invalid_argument);
  // n = 2t+1 exactly is fine.
  MpcEngine ok{small_field(), 5, 2, rng};
  EXPECT_EQ(ok.parties(), 5u);
}

TEST(MpcEngine, CountOnlyMatchesRealCounts) {
  // Counting mode must charge the same costs as a real run, modulo
  // randomized retries (rand_bitwise rejection). Compare on a comparison.
  ChaChaRng rng1{61}, rng2{62};
  const FpCtx& f = small_field();
  MpcEngine real{f, 5, 2, rng1, MpcEngine::Mode::kReal};
  MpcEngine count{f, 5, 2, rng2, MpcEngine::Mode::kCountOnly};

  const ShareVec a = real.input(f.to(Nat{100}));
  const ShareVec b = real.input(f.to(Nat{200}));
  (void)count.input(f.zero());
  (void)count.input(f.zero());
  real.reset_costs();
  count.reset_costs();
  (void)real.less_than(a, b);
  (void)count.less_than({}, {});
  // Real may retry the bitwise-random rejection; counted assumes first-try.
  EXPECT_GE(real.costs().mults, count.costs().mults);
  EXPECT_EQ(count.costs().comparisons, 1u);
  // Under ~35% per-bitwise-random rejection odds (p = 2^17-1 is nearly 2^17,
  // so acceptance is ~1), counts usually match exactly; allow 2x slack.
  EXPECT_LE(real.costs().mults, 2 * count.costs().mults);
  EXPECT_GT(count.costs().mults, 0u);
  EXPECT_GT(count.costs().rounds, 0u);
  EXPECT_GT(count.costs().bytes, 0u);
}

TEST(MpcEngine, MultiplicationCountScalesLinearlyInFieldBits) {
  // The Nishide–Ohta comparison is O(l) multiplications in the field bit
  // length — the scaling the paper's 279l+5 figure expresses.
  ChaChaRng rng{63};
  const FpCtx f17{mpz::Nat{131071}};                  // 17 bits
  const FpCtx f34{mpz::Nat::from_hex("3ffffffd7")};   // 34-bit prime 2^34-41
  MpcEngine e17{f17, 5, 2, rng, MpcEngine::Mode::kCountOnly};
  MpcEngine e34{f34, 5, 2, rng, MpcEngine::Mode::kCountOnly};
  (void)e17.less_than({}, {});
  (void)e34.less_than({}, {});
  const double ratio = static_cast<double>(e34.costs().mults) /
                       static_cast<double>(e17.costs().mults);
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

}  // namespace
}  // namespace ppgr::sss

// Determinism of the parallel execution engine: run_framework must produce
// bit-identical outputs — ranks, submitted ids, β values and the full
// communication trace — for every cfg.parallelism value under the same
// seed, and ranks must stay correct (vs the plain reference) when the
// engine actually runs multi-threaded. This test is also the TSan workload
// proving the engine race-free (scripts/ci.sh runs it under the tsan
// preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <string>
#include <thread>

#include "core/framework.h"

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

FrameworkConfig small_config(const group::Group& g, std::size_t parallelism) {
  FrameworkConfig cfg;
  cfg.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  cfg.n = 5;
  cfg.k = 2;
  cfg.group = &g;
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  cfg.parallelism = parallelism;
  return cfg;
}

std::vector<AttrVec> random_infos(const ProblemSpec& spec, std::size_t n,
                                  mpz::Rng& rng) {
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < n; ++j) {
    AttrVec v(spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << spec.d1);
    infos.push_back(std::move(v));
  }
  return infos;
}

FrameworkResult run_at(std::size_t parallelism, std::uint64_t seed) {
  const auto g = make_group(GroupId::kDlTest256);
  const FrameworkConfig cfg = small_config(*g, parallelism);
  ChaChaRng rng{seed};
  AttrVec v0(cfg.spec.m), w(cfg.spec.m);
  for (auto& x : v0) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
  for (auto& x : w) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d2);
  const auto infos = random_infos(cfg.spec, cfg.n, rng);
  return run_framework(cfg, v0, w, infos, rng);
}

void expect_identical(const FrameworkResult& a, const FrameworkResult& b,
                      const char* what) {
  EXPECT_EQ(a.ranks, b.ranks) << what;
  EXPECT_EQ(a.submitted_ids, b.submitted_ids) << what;
  ASSERT_EQ(a.betas.size(), b.betas.size()) << what;
  for (std::size_t j = 0; j < a.betas.size(); ++j)
    EXPECT_EQ(a.betas[j], b.betas[j]) << what << ": beta " << j;
  EXPECT_EQ(a.trace.total_bytes(), b.trace.total_bytes()) << what;
  ASSERT_EQ(a.trace.transfers().size(), b.trace.transfers().size()) << what;
  for (std::size_t i = 0; i < a.trace.transfers().size(); ++i) {
    const auto& ta = a.trace.transfers()[i];
    const auto& tb = b.trace.transfers()[i];
    EXPECT_EQ(ta.round, tb.round) << what << ": transfer " << i;
    EXPECT_EQ(ta.src, tb.src) << what << ": transfer " << i;
    EXPECT_EQ(ta.dst, tb.dst) << what << ": transfer " << i;
    EXPECT_EQ(ta.bytes, tb.bytes) << what << ": transfer " << i;
  }
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeOutputs) {
  const auto serial = run_at(1, 2024);
  const auto two = run_at(2, 2024);
  expect_identical(serial, two, "threads=1 vs threads=2");

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  const auto many = run_at(hw, 2024);
  expect_identical(serial, many, "threads=1 vs threads=hw");

  // parallelism = 0 resolves to hardware concurrency — still identical.
  const auto autod = run_at(0, 2024);
  expect_identical(serial, autod, "threads=1 vs threads=auto");
}

TEST(ParallelDeterminism, DifferentSeedsDiffer) {
  // Sanity: the determinism above is not the degenerate "everything
  // constant" case — a different root seed must change the β values.
  const auto a = run_at(2, 7);
  const auto b = run_at(2, 8);
  ASSERT_EQ(a.betas.size(), b.betas.size());
  bool any_diff = false;
  for (std::size_t j = 0; j < a.betas.size(); ++j)
    if (!(a.betas[j] == b.betas[j])) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(ParallelDeterminism, RanksCorrectUnderThreading) {
  // Rank correctness vs the plain reference while the engine is actually
  // multi-threaded (and under TSan: the race detector workload).
  const auto g = make_group(GroupId::kDlTest256);
  const FrameworkConfig cfg = small_config(*g, 4);
  ChaChaRng rng{99};
  AttrVec v0(cfg.spec.m, 0), w(cfg.spec.m);
  for (auto& x : w) x = 1 + rng.below_u64(std::uint64_t{1} << (cfg.spec.d2 - 1));
  const auto infos = random_infos(cfg.spec, cfg.n, rng);
  const auto result = run_framework(cfg, v0, w, infos, rng);

  std::vector<Int> gains;
  for (const auto& v : infos) gains.push_back(gain(cfg.spec, v0, w, v));
  auto sorted = gains;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) {
    EXPECT_EQ(result.ranks, reference_ranks(cfg.spec, v0, w, infos));
  } else {
    // Ties can resolve either way; ranks must still be a valid assignment.
    for (const auto r : result.ranks) {
      EXPECT_GE(r, 1u);
      EXPECT_LE(r, cfg.n);
    }
  }
  // Submissions = exactly the rank <= k set, threading or not.
  for (std::size_t j = 0; j < cfg.n; ++j) {
    const bool submitted =
        std::find(result.submitted_ids.begin(), result.submitted_ids.end(),
                  j + 1) != result.submitted_ids.end();
    EXPECT_EQ(submitted, result.ranks[j] <= cfg.k);
  }
}

FrameworkResult run_accel(std::size_t parallelism, bool accel,
                          group::GroupId gid) {
  const auto g = make_group(gid);
  FrameworkConfig cfg = small_config(*g, parallelism);
  cfg.metrics = true;
  cfg.accel = accel;
  ChaChaRng rng{909};
  AttrVec v0(cfg.spec.m), w(cfg.spec.m);
  for (auto& x : v0) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
  for (auto& x : w) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d2);
  const auto infos = random_infos(cfg.spec, cfg.n, rng);
  return run_framework(cfg, v0, w, infos, rng);
}

/// Drops the accel_* counters — the only metrics keys the multi-exp engine
/// is allowed to add — so the remaining JSON must be byte-identical between
/// accelerated and naive runs.
std::string strip_accel_keys(const std::string& metrics_json) {
  static const std::regex kAccel{R"(, "accel_[a-z_]+": [0-9]+)"};
  return std::regex_replace(metrics_json, kAccel, "");
}

TEST(ParallelDeterminism, AccelOnOffBitIdentical) {
  // The PR 6 invariant: the multi-exp engine is mathematically invisible.
  // With acceleration on vs off — at serial and multi-threaded parallelism
  // on the unique-representation Schnorr group and the Jacobian EC group —
  // ranks, β values, the byte trace, the measured comm flows, the span
  // stream and every logical metrics counter must be bit-identical; only
  // the accel_* diagnostic counters may differ.
  for (const auto gid : {GroupId::kDlTest256, GroupId::kEcP192}) {
    const auto off = run_accel(1, false, gid);
    for (const std::size_t par : {std::size_t{1}, std::size_t{4}}) {
      const auto on = run_accel(par, true, gid);
      expect_identical(off, on, "accel off vs on");
      EXPECT_EQ(off.comm->to_json(), on.comm->to_json());
      EXPECT_EQ(off.spans->chrome_trace_json(/*deterministic=*/true),
                on.spans->chrome_trace_json(true));
      const std::string off_json = off.metrics->to_json(false);
      const std::string on_json = on.metrics->to_json(false);
      // cfg.accel gates the protocol-path fusions only; those counters must
      // be absent from the naive run. (accel_batch_inverse is codec-level —
      // EC serialize_many batches its affine normalization regardless, just
      // like the always-on comb tables.)
      EXPECT_EQ(off_json.find("accel_multi_exp"), std::string::npos)
          << "naive run must not touch the multi-exp counters";
      EXPECT_EQ(off_json.find("accel_fixed_base"), std::string::npos)
          << "naive run must not touch the fixed-base counter";
      EXPECT_NE(on_json.find("accel_multi_exp"), std::string::npos)
          << "accelerated run must report its accel counters";
      EXPECT_EQ(strip_accel_keys(off_json), strip_accel_keys(on_json));
    }
  }
}

TEST(ParallelDeterminism, EcGroupAlsoDeterministic) {
  // The EC group shares the lazy fixed-base table (now call_once-guarded);
  // cover it with a two-thread run compared against serial.
  const auto g = make_group(GroupId::kEcP192);
  ChaChaRng rng1{55}, rng2{55};
  FrameworkConfig cfg;
  cfg.spec = ProblemSpec{.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  const std::vector<AttrVec> infos{{1, 2}, {9, 4}, {5, 6}};
  cfg.parallelism = 1;
  const auto serial = run_framework(cfg, {0, 0}, {1, 1}, infos, rng1);
  cfg.parallelism = 3;
  const auto threaded = run_framework(cfg, {0, 0}, {1, 1}, infos, rng2);
  expect_identical(serial, threaded, "ec: threads=1 vs threads=3");
}

}  // namespace
}  // namespace ppgr::core

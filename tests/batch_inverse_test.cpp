// Batched Montgomery inversion (PR 6): FpCtx::inv_many must agree with the
// per-element inverse exactly, reject zero inputs with a typed error naming
// the offending index (the whole batch, not UB or a partial result), and
// the EcGroup::serialize_many built on top of it must emit byte-identical
// canonical encodings to the one-at-a-time path — identity points included,
// since those contribute nothing to the inversion batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "group/counting_group.h"
#include "group/mock_group.h"
#include "mpz/fp.h"
#include "mpz/rng.h"

namespace ppgr::mpz {
namespace {

TEST(BatchInverse, SmallPrimeKat) {
  // Z_13 by hand: inverses of 1..12 are 1 7 9 10 8 11 2 5 3 4 6 12.
  const FpCtx f{Nat{13}};
  const std::uint64_t expected[] = {1, 7, 9, 10, 8, 11, 2, 5, 3, 4, 6, 12};
  std::vector<Nat> xs;
  for (std::uint64_t a = 1; a <= 12; ++a) xs.push_back(f.to(Nat{a}));
  const auto invs = f.inv_many(xs);
  ASSERT_EQ(invs.size(), xs.size());
  for (std::size_t i = 0; i < invs.size(); ++i)
    EXPECT_EQ(f.from(invs[i]), Nat{expected[i]}) << "a = " << (i + 1);
}

TEST(BatchInverse, MatchesPerElementInverse) {
  // Property over a protocol-sized field (the 61-bit Mersenne prime): the
  // batch is a pure optimization, element i equals inv(xs[i]) exactly.
  const FpCtx f{Nat{(std::uint64_t{1} << 61) - 1}};
  ChaChaRng rng{11};
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                              std::size_t{257}}) {
    std::vector<Nat> xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(f.random_nonzero(rng));
    const auto invs = f.inv_many(xs);
    ASSERT_EQ(invs.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(invs[i], f.inv(xs[i])) << "n = " << n << ", i = " << i;
      EXPECT_EQ(f.mul(xs[i], invs[i]), f.one());
    }
  }
}

TEST(BatchInverse, EmptyBatch) {
  const FpCtx f{Nat{13}};
  EXPECT_TRUE(f.inv_many({}).empty());
}

TEST(BatchInverse, ZeroInputRejectedWithIndex) {
  const FpCtx f{Nat{13}};
  ChaChaRng rng{12};
  std::vector<Nat> xs;
  for (std::size_t i = 0; i < 6; ++i) xs.push_back(f.random_nonzero(rng));
  xs[3] = f.zero();
  try {
    (void)f.inv_many(xs);
    FAIL() << "inv_many accepted a zero input";
  } catch (const std::domain_error& e) {
    // Typed error naming the offending position — not UB, not a partial
    // batch.
    EXPECT_NE(std::string{e.what()}.find("index 3"), std::string::npos)
        << e.what();
  }
  // A zero anywhere rejects the whole batch, first and last included.
  xs[3] = f.one();
  xs[0] = f.zero();
  EXPECT_THROW((void)f.inv_many(xs), std::domain_error);
  xs[0] = f.one();
  xs[5] = f.zero();
  EXPECT_THROW((void)f.inv_many(xs), std::domain_error);
}

TEST(BatchSerialize, EcMatchesPerElementIncludingIdentity) {
  // serialize_many over EC normalizes the whole batch with one field
  // inversion; the bytes must equal the one-at-a-time canonical encodings,
  // with identity points (no z to invert) interleaved at the edges and
  // middle of the batch.
  const auto g = group::make_group(group::GroupId::kEcP192);
  ChaChaRng rng{13};
  std::vector<group::Elem> xs;
  xs.push_back(g->identity());
  for (std::size_t i = 0; i < 9; ++i) {
    xs.push_back(g->exp_g(g->random_nonzero_scalar(rng)));
    if (i == 4) xs.push_back(g->identity());
  }
  xs.push_back(g->identity());
  const auto batched = g->serialize_many(xs);
  std::vector<std::uint8_t> looped;
  for (const auto& x : xs) {
    const auto one = g->serialize(x);
    looped.insert(looped.end(), one.begin(), one.end());
  }
  EXPECT_EQ(batched, looped);
  EXPECT_EQ(batched.size(), xs.size() * g->element_bytes());

  // Degenerate batches.
  EXPECT_TRUE(g->serialize_many({}).empty());
  const std::vector<group::Elem> ids{g->identity(), g->identity()};
  EXPECT_EQ(g->serialize_many(ids).size(), 2 * g->element_bytes());
}

TEST(BatchSerialize, DefaultLoopAndCountingDecorator) {
  // Groups without a batched override fall back to the per-element loop,
  // and the counting decorator keeps reporting one logical serialization
  // per element — the batch is invisible to the op accounting.
  const group::MockGroup mock{"mock", 32, 61};
  const group::CountingGroup counted{mock};
  ChaChaRng rng{14};
  std::vector<group::Elem> xs;
  for (std::size_t i = 0; i < 5; ++i)
    xs.push_back(mock.exp_g(mock.random_nonzero_scalar(rng)));
  const auto batched = counted.serialize_many(xs);
  std::vector<std::uint8_t> looped;
  for (const auto& x : xs) {
    const auto one = mock.serialize(x);
    looped.insert(looped.end(), one.begin(), one.end());
  }
  EXPECT_EQ(batched, looped);
  EXPECT_EQ(counted.counts().serializations, 5u);
}

}  // namespace
}  // namespace ppgr::mpz

// Forensic flight recorder: ring-buffer bounds and overwrite accounting,
// the "ppgr.flight.v1" dump shape, the Router's event taps (phase / round /
// send / retransmit / injection), and the concurrent record-vs-dump race the
// TSan leg of `scripts/ci.sh audit` pins.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "runtime/flightrec.h"

namespace ppgr::runtime {
namespace {

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder rec{8};
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  rec.record(FlightEventKind::kPhase, Phase::kPhase1);
  rec.record(FlightEventKind::kSend, Phase::kPhase1, 0, 1, 2, 100);
  rec.record(FlightEventKind::kRound, Phase::kPhase1, 0, 0, 0, 1);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kPhase);
  EXPECT_EQ(events[1].kind, FlightEventKind::kSend);
  EXPECT_EQ(events[1].a, 1u);
  EXPECT_EQ(events[1].b, 2u);
  EXPECT_EQ(events[1].c, 100u);
  EXPECT_EQ(events[2].kind, FlightEventKind::kRound);
}

TEST(FlightRecorder, OverwritesOldestWhenFull) {
  FlightRecorder rec{4};
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(FlightEventKind::kSend, Phase::kPhase2, 0, 0, 0, i);
  EXPECT_EQ(rec.size(), 4u);        // ring stays bounded
  EXPECT_EQ(rec.recorded(), 10u);   // lifetime count keeps going
  EXPECT_EQ(rec.dropped(), 6u);     // the overwritten prefix
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the last 4: payloads 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].c, 6u + i);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder rec{0};
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(FlightEventKind::kPhase, Phase::kPhase1);
  rec.record(FlightEventKind::kRound, Phase::kPhase1);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(FlightRecorder, JsonDumpShape) {
  FlightRecorder rec{4};
  rec.record(FlightEventKind::kPhase, Phase::kPhase1, 0, 3);
  rec.record(FlightEventKind::kFault, Phase::kPhase1, 2, 0, 0, 7);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"schema\": \"ppgr.flight.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"phase1\""), std::string::npos);
  // Timestamps are dump-relative: the first retained event is at 0.
  EXPECT_NE(json.find("\"dt_s\": 0.000000"), std::string::npos);
}

TEST(FlightRecorder, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(FlightEventKind::kAudit); ++k)
    EXPECT_STRNE(to_string(static_cast<FlightEventKind>(k)), "?");
}

// The stall watchdog / postmortem writer dumps the ring from an observer
// thread while the orchestrator keeps recording; under TSan this pins the
// ring's locking discipline.
TEST(FlightRecorder, ConcurrentRecordAndDump) {
  FlightRecorder rec{64};
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      rec.record(FlightEventKind::kSend, Phase::kPhase2, 0, 1, 2, ++i);
  }};
  for (int i = 0; i < 200; ++i) {
    const std::vector<FlightEvent> events = rec.events();
    EXPECT_LE(events.size(), 64u);
    const std::string json = rec.to_json();
    EXPECT_NE(json.find("ppgr.flight.v1"), std::string::npos);
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(rec.dropped() + rec.size(), rec.recorded());
}

// Router taps: a plain (fault-free) exchange records phase transitions,
// every accounted send, and round closes — and nothing from the fault
// ladder.
TEST(FlightRecorder, RouterTapsRecordProtocolEvents) {
  FlightRecorder rec{256};
  TraceRecorder trace;
  net::Router::Config cfg;
  cfg.flight = &rec;
  net::Router router{3, trace, nullptr, cfg};
  router.set_phase(Phase::kPhase1);
  router.send(0, 1, std::vector<std::uint8_t>(16, 0xab));
  router.send(1, 2, std::vector<std::uint8_t>(32, 0xcd));
  (void)router.receive(0, 1);
  (void)router.receive(1, 2);
  router.next_round();

  std::size_t phases = 0, sends = 0, rounds = 0, faultish = 0;
  for (const FlightEvent& e : rec.events()) {
    switch (e.kind) {
      case FlightEventKind::kPhase: ++phases; break;
      case FlightEventKind::kSend: ++sends; break;
      case FlightEventKind::kRound: ++rounds; break;
      case FlightEventKind::kRetry:
      case FlightEventKind::kInject:
      case FlightEventKind::kChannelError: ++faultish; break;
      default: break;
    }
  }
  EXPECT_EQ(phases, 1u);
  EXPECT_EQ(sends, 2u);
  EXPECT_EQ(rounds, 1u);
  EXPECT_EQ(faultish, 0u);  // no plan -> the fault-ladder taps stay silent
  // The send tap carries (src, dst, bytes).
  for (const FlightEvent& e : rec.events()) {
    if (e.kind != FlightEventKind::kSend) continue;
    EXPECT_TRUE((e.a == 0 && e.b == 1 && e.c == 16) ||
                (e.a == 1 && e.b == 2 && e.c == 32));
  }
}

// Under a drop-heavy plan the retransmit ladder runs; the ring must see the
// injections and the retries the fault report counts.
TEST(FlightRecorder, RouterTapsRecordFaultLadder) {
  net::FaultPlanConfig pcfg = net::parse_fault_plan("seed=5,drop=0.6");
  const net::FaultPlan plan{pcfg};
  FlightRecorder rec{1024};
  TraceRecorder trace;
  net::Router::Config cfg;
  cfg.faults = &plan;
  cfg.flight = &rec;
  net::Router router{2, trace, nullptr, cfg};
  router.set_phase(Phase::kPhase1);
  std::size_t channel_errors = 0;
  for (int i = 0; i < 20; ++i) {
    router.send(0, 1, std::vector<std::uint8_t>(64, 0x11));
    try {
      (void)router.receive(0, 1);
    } catch (const net::ChannelError&) {
      ++channel_errors;  // retry budget exhausted — a legitimate outcome
    }
    router.next_round();
  }
  std::uint64_t injects = 0, retries = 0, surfaced = 0;
  for (const FlightEvent& e : rec.events()) {
    if (e.kind == FlightEventKind::kInject) ++injects;
    if (e.kind == FlightEventKind::kRetry) ++retries;
    if (e.kind == FlightEventKind::kChannelError) ++surfaced;
  }
  EXPECT_EQ(surfaced, channel_errors);
  const net::FaultReport report = router.fault_report();
  std::uint64_t injected_total = 0;
  for (const std::uint64_t v : report.stats.injected) injected_total += v;
  EXPECT_GT(injects, 0u);
  EXPECT_EQ(injects, injected_total);
  EXPECT_EQ(retries, report.stats.retransmits);
}

}  // namespace
}  // namespace ppgr::runtime

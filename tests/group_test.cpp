// Tests for the group layer: abstract group laws over every instantiation,
// safe-prime parameter validation, elliptic-curve specifics, serialization,
// and the op-counting decorator.
#include <gtest/gtest.h>

#include "group/counting_group.h"
#include "group/fixed_base.h"
#include "group/ec_group.h"
#include "group/group.h"
#include "group/schnorr_group.h"
#include "mpz/modarith.h"
#include "mpz/prime.h"

namespace ppgr::group {
namespace {

using mpz::ChaChaRng;
using mpz::Nat;

// Cheap-to-test groups; the large DL groups get targeted tests below.
std::vector<GroupId> fast_group_ids() {
  return {GroupId::kDlTest256, GroupId::kEcP192, GroupId::kEcP224,
          GroupId::kEcP256, GroupId::kDl1024};
}

class GroupLaws : public ::testing::TestWithParam<GroupId> {};

TEST_P(GroupLaws, AxiomsAndExponentArithmetic) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{1};
  const Elem gen = g->generator();
  EXPECT_FALSE(g->is_identity(gen));
  // Generator has order q: g^q == 1 and g^1 != 1.
  EXPECT_TRUE(g->is_identity(g->exp(gen, g->order())));

  for (int i = 0; i < 6; ++i) {
    const Nat x = g->random_scalar(rng), y = g->random_scalar(rng);
    const Elem gx = g->exp_g(x), gy = g->exp_g(y);
    // Homomorphism: g^x * g^y == g^(x+y mod q).
    const Nat xpy = Nat::add(x, y) % g->order();
    EXPECT_TRUE(g->eq(g->mul(gx, gy), g->exp_g(xpy)));
    // (g^x)^y == g^(xy mod q).
    const Nat xy = Nat::mul(x, y) % g->order();
    EXPECT_TRUE(g->eq(g->exp(gx, y), g->exp_g(xy)));
    // Inverses and identity.
    EXPECT_TRUE(g->is_identity(g->mul(gx, g->inv(gx))));
    EXPECT_TRUE(g->eq(g->mul(gx, g->identity()), gx));
    EXPECT_TRUE(g->eq(g->div(g->mul(gx, gy), gy), gx));
    // Commutativity / associativity.
    EXPECT_TRUE(g->eq(g->mul(gx, gy), g->mul(gy, gx)));
  }
}

TEST_P(GroupLaws, ExponentEdgeCases) {
  const auto g = make_group(GetParam());
  const Elem gen = g->generator();
  EXPECT_TRUE(g->is_identity(g->exp(gen, Nat{})));
  EXPECT_TRUE(g->eq(g->exp(gen, Nat{1}), gen));
  EXPECT_TRUE(g->eq(g->exp(gen, Nat{2}), g->mul(gen, gen)));
  // exp of the identity stays identity.
  EXPECT_TRUE(g->is_identity(g->exp(g->identity(), Nat{12345})));
  // q-1 gives the inverse of g.
  EXPECT_TRUE(
      g->eq(g->exp(gen, Nat::sub(g->order(), Nat{1})), g->inv(gen)));
}

TEST_P(GroupLaws, SerializationRoundTrip) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{2};
  for (int i = 0; i < 6; ++i) {
    const Elem e = g->exp_g(g->random_scalar(rng));
    const auto bytes = g->serialize(e);
    EXPECT_EQ(bytes.size(), g->element_bytes());
    EXPECT_TRUE(g->eq(g->deserialize(bytes), e));
  }
  EXPECT_THROW((void)g->deserialize(std::vector<std::uint8_t>(3, 0x5A)),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllGroups, GroupLaws,
                         ::testing::ValuesIn(fast_group_ids()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(SchnorrGroup, EmbeddedSafePrimesAreSafePrimes) {
  ChaChaRng rng{3};
  struct Case {
    GroupId id;
    std::size_t bits;
  };
  for (const auto& [id, bits] :
       {Case{GroupId::kDlTest256, 256}, Case{GroupId::kDl1024, 1024},
        Case{GroupId::kDl2048, 2048}, Case{GroupId::kDl3072, 3072}}) {
    const auto g = make_group(id);
    auto* sg = dynamic_cast<SchnorrGroup*>(g.get());
    ASSERT_NE(sg, nullptr);
    EXPECT_EQ(sg->modulus().bit_length(), bits) << sg->name();
    EXPECT_EQ(sg->order(), Nat::sub(sg->modulus(), Nat{1}).shr(1));
    EXPECT_TRUE(mpz::is_probable_prime(sg->modulus(), rng, 8)) << sg->name();
    EXPECT_TRUE(mpz::is_probable_prime(sg->order(), rng, 8)) << sg->name();
  }
}

TEST(SchnorrGroup, GeneratorIsQuadraticResidue) {
  const auto g = make_group(GroupId::kDlTest256);
  auto* sg = dynamic_cast<SchnorrGroup*>(g.get());
  EXPECT_EQ(mpz::jacobi(Nat{4}, sg->modulus()), 1);
}

TEST(SchnorrGroup, DeserializeRejectsNonResidue) {
  const auto g = make_group(GroupId::kDlTest256);
  auto* sg = dynamic_cast<SchnorrGroup*>(g.get());
  // Find a quadratic non-residue and check rejection.
  Nat z{2};
  while (mpz::jacobi(z, sg->modulus()) != -1) z += Nat{1};
  EXPECT_THROW((void)g->deserialize(z.to_bytes_be(g->element_bytes())),
               std::invalid_argument);
  // Zero and p are rejected too.
  EXPECT_THROW((void)g->deserialize(Nat{}.to_bytes_be(g->element_bytes())),
               std::invalid_argument);
  EXPECT_THROW(
      (void)g->deserialize(sg->modulus().to_bytes_be(g->element_bytes())),
      std::invalid_argument);
}

TEST(EcGroup, StandardCurveParametersValidate) {
  for (const CurveParams& params : {nist_p192(), nist_p224(), nist_p256()}) {
    const EcGroup curve{params};
    // Base point on curve and of exact prime order.
    EXPECT_TRUE(curve.on_curve(params.gx, params.gy)) << params.name;
    EXPECT_TRUE(curve.is_identity(curve.exp(curve.generator(), params.order)))
        << params.name;
    ChaChaRng rng{4};
    EXPECT_TRUE(mpz::is_probable_prime(params.order, rng, 8)) << params.name;
    EXPECT_TRUE(mpz::is_probable_prime(params.p, rng, 8)) << params.name;
  }
}

TEST(EcGroup, AffineRoundTripAndNegation) {
  const EcGroup curve{nist_p192()};
  ChaChaRng rng{5};
  const Elem pt = curve.exp_g(curve.random_nonzero_scalar(rng));
  const auto [x, y] = curve.to_affine(pt);
  EXPECT_TRUE(curve.eq(curve.from_affine(x, y), pt));
  // -P has the same x, negated y.
  const auto [xn, yn] = curve.to_affine(curve.inv(pt));
  EXPECT_EQ(xn, x);
  EXPECT_EQ(yn, Nat::sub(curve.field().p(), y));
  EXPECT_THROW((void)curve.to_affine(curve.identity()), std::domain_error);
}

TEST(EcGroup, FromAffineValidates) {
  const EcGroup curve{nist_p192()};
  EXPECT_THROW((void)curve.from_affine(Nat{1}, Nat{1}), std::invalid_argument);
}

TEST(EcGroup, AdditionSpecialCases) {
  const EcGroup curve{nist_p192()};
  const Elem g = curve.generator();
  // P + (-P) = identity.
  EXPECT_TRUE(curve.is_identity(curve.mul(g, curve.inv(g))));
  // P + identity = P (both orders).
  EXPECT_TRUE(curve.eq(curve.mul(g, curve.identity()), g));
  EXPECT_TRUE(curve.eq(curve.mul(curve.identity(), g), g));
  // Doubling via mul(x, x) agrees with exp(x, 2) — triggers the u1==u2 path.
  EXPECT_TRUE(curve.eq(curve.mul(g, g), curve.exp(g, Nat{2})));
  // 2P + P == 3P, mixing representations with different Z coordinates.
  const Elem g2 = curve.exp(g, Nat{2});
  EXPECT_TRUE(curve.eq(curve.mul(g2, g), curve.exp(g, Nat{3})));
}

TEST(EcGroup, JacobianEqIgnoresRepresentation) {
  // exp produces a different Jacobian representative than repeated mul, but
  // eq must see through it.
  const EcGroup curve{nist_p256()};
  const Elem g = curve.generator();
  Elem acc = curve.identity();
  for (int i = 0; i < 5; ++i) acc = curve.mul(acc, g);
  EXPECT_TRUE(curve.eq(acc, curve.exp(g, Nat{5})));
}

TEST(EcGroup, IdentitySerializesDistinctly) {
  const EcGroup curve{nist_p192()};
  const auto id_bytes = curve.serialize(curve.identity());
  EXPECT_TRUE(curve.is_identity(curve.deserialize(id_bytes)));
  const auto g_bytes = curve.serialize(curve.generator());
  EXPECT_NE(id_bytes, g_bytes);
}

TEST(EcGroup, DeserializeRejectsOffCurvePoint) {
  const EcGroup curve{nist_p192()};
  auto bytes = curve.serialize(curve.generator());
  bytes.back() ^= 1;  // corrupt y
  EXPECT_THROW((void)curve.deserialize(bytes), std::invalid_argument);
}

TEST(CountingGroup, CountsAndForwards) {
  const auto inner = make_group(GroupId::kEcP192);
  CountingGroup g{*inner};
  ChaChaRng rng{6};
  const Nat x = g.random_scalar(rng);
  const Elem e = g.exp_g(x);          // fixed-base: counted as gexps
  (void)g.exp(e, x);                  // variable-base: counted as exps
  (void)g.mul(e, e);
  (void)g.inv(e);
  (void)g.serialize(e);
  EXPECT_EQ(g.counts().gexps, 1u);
  EXPECT_EQ(g.counts().exps, 1u);
  EXPECT_EQ(g.counts().muls, 1u);
  EXPECT_EQ(g.counts().invs, 1u);
  EXPECT_EQ(g.counts().serializations, 1u);
  EXPECT_EQ(g.counts().exp_bits, x.bit_length());
  // Forwarded results match the inner group.
  EXPECT_TRUE(inner->eq(e, inner->exp_g(x)));
  g.reset();
  EXPECT_EQ(g.counts().muls, 0u);
}

class FixedBaseOverGroups : public ::testing::TestWithParam<GroupId> {};

TEST_P(FixedBaseOverGroups, MatchesGenericExponentiation) {
  // exp_g uses the comb table; it must agree with the generic double-and-add
  // for random and edge-case scalars.
  const auto g = make_group(GetParam());
  ChaChaRng rng{7};
  const Elem gen = g->generator();
  for (int i = 0; i < 10; ++i) {
    const Nat s = g->random_scalar(rng);
    EXPECT_TRUE(g->eq(g->exp_g(s), g->exp(gen, s)));
  }
  for (const Nat& s : {Nat{}, Nat{1}, Nat{2}, Nat{15}, Nat{16},
                       Nat::sub(g->order(), Nat{1})}) {
    EXPECT_TRUE(g->eq(g->exp_g(s), g->exp(gen, s))) << s.to_dec();
  }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, FixedBaseOverGroups,
                         ::testing::ValuesIn(fast_group_ids()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(FixedBase, TableDirectUse) {
  const auto g = make_group(GroupId::kEcP192);
  ChaChaRng rng{8};
  // A table over an arbitrary base, not just the generator.
  const Elem base = g->exp_g(g->random_nonzero_scalar(rng));
  const FixedBaseTable table{*g, base, g->order().bit_length()};
  EXPECT_EQ(table.windows(), (g->order().bit_length() + 3) / 4);
  const Nat s = g->random_scalar(rng);
  EXPECT_TRUE(g->eq(table.exp(*g, s), g->exp(base, s)));
  // Scalar wider than the table falls back to generic exp.
  const FixedBaseTable narrow{*g, base, 8};
  const Nat wide = Nat::from_hex("1ffff");
  EXPECT_TRUE(g->eq(narrow.exp(*g, wide), g->exp(base, wide)));
}

TEST(GroupFactory, NamesAreStable) {
  EXPECT_EQ(to_string(GroupId::kDl1024), "dl-1024");
  EXPECT_EQ(to_string(GroupId::kEcP256), "ecc-p256");
}

}  // namespace
}  // namespace ppgr::group

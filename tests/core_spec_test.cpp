// Tests for the problem-domain algebra: gains, partial gains, masking and
// the expanded protocol vectors.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/spec.h"
#include "dotprod/dot_product.h"
#include "mpz/rng.h"

namespace ppgr::core {
namespace {

using mpz::ChaChaRng;

ProblemSpec tiny_spec() {
  return ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 4, .h = 6};
}

AttrVec random_attrs(const ProblemSpec& s, mpz::Rng& rng, std::size_t bits) {
  AttrVec v(s.m);
  for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
  return v;
}

TEST(ProblemSpec, Validation) {
  ProblemSpec ok = tiny_spec();
  EXPECT_NO_THROW(ok.validate());
  ProblemSpec bad = ok;
  bad.t = 5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.m = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.d1 = 64;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.h = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ProblemSpec, VectorChecks) {
  const ProblemSpec s = tiny_spec();
  EXPECT_NO_THROW(s.check_attributes({1, 2, 3, 255}));
  EXPECT_THROW(s.check_attributes({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(s.check_attributes({1, 2, 3, 256}), std::invalid_argument);
  EXPECT_NO_THROW(s.check_weights({15, 0, 1, 2}));
  EXPECT_THROW(s.check_weights({16, 0, 1, 2}), std::invalid_argument);
}

TEST(Gain, HandComputedExample) {
  // m=4, t=2: first two "equal-to", last two "greater-than".
  const ProblemSpec s = tiny_spec();
  const AttrVec v0{10, 20, 0, 0};
  const AttrVec w{2, 1, 3, 4};
  const AttrVec v{12, 17, 5, 7};
  // g = -[2*(12-10)^2 + 1*(17-20)^2] + [3*5 + 4*7] = -(8+9) + 43 = 26.
  EXPECT_EQ(gain(s, v0, w, v).to_i64(), 26);
}

TEST(Gain, PartialGainDiffersByInitiatorConstant) {
  const ProblemSpec s = tiny_spec();
  ChaChaRng rng{100};
  const AttrVec v0 = random_attrs(s, rng, s.d1);
  const AttrVec w = random_attrs(s, rng, s.d2);
  const Int c = gain_offset(s, v0, w);
  for (int i = 0; i < 20; ++i) {
    const AttrVec v = random_attrs(s, rng, s.d1);
    EXPECT_EQ(gain(s, v0, w, v), partial_gain(s, v0, w, v) - c);
  }
}

TEST(Gain, AllEqualToOrAllGreaterThan) {
  ProblemSpec s = tiny_spec();
  const AttrVec v0{1, 2, 3, 4}, w{1, 1, 1, 1}, v{2, 3, 4, 5};
  s.t = 0;  // all greater-than
  EXPECT_EQ(gain(s, v0, w, v).to_i64(), 4);
  s.t = 4;  // all equal-to
  EXPECT_EQ(gain(s, v0, w, v).to_i64(), -4);
}

TEST(Masking, PreservesStrictOrder) {
  // β = ρ·p + ρ_j with ρ_j in [0, ρ): p_i > p_j implies β_i > β_j.
  const ProblemSpec s = tiny_spec();
  ChaChaRng rng{101};
  const AttrVec v0 = random_attrs(s, rng, s.d1);
  const AttrVec w = random_attrs(s, rng, s.d2);
  Nat rho = rng.bits(s.h);
  rho.set_bit(s.h - 1, true);
  for (int i = 0; i < 30; ++i) {
    const AttrVec va = random_attrs(s, rng, s.d1);
    const AttrVec vb = random_attrs(s, rng, s.d1);
    const Int pa = partial_gain(s, v0, w, va);
    const Int pb = partial_gain(s, v0, w, vb);
    // Adversarial masks: a gets the smallest, b the largest.
    const Int ba = masked_partial_gain(s, v0, w, va, rho, Nat{});
    const Int bb = masked_partial_gain(s, v0, w, vb, rho,
                                       Nat::sub(rho, Nat{1}));
    if (pa > pb) {
      EXPECT_GT(ba, bb);
    } else if (pa == pb) {
      EXPECT_LE(ba, bb);  // equal gains may tie or flip
    }
  }
}

TEST(Masking, BetaFitsDeclaredBitLength) {
  // Extreme values must stay within beta_bits(): all-max attributes and
  // weights, largest ρ and ρ_j.
  const ProblemSpec s = tiny_spec();
  const std::uint64_t amax = (1ULL << s.d1) - 1;
  const std::uint64_t wmax = (1ULL << s.d2) - 1;
  const AttrVec vmax(s.m, amax), wv(s.m, wmax), vzero(s.m, 0);
  const Nat rho_max = Nat::sub(Nat::pow2(s.h), Nat{1});
  const Nat rho_j = Nat::sub(rho_max, Nat{1});
  for (const AttrVec& v0 : {vmax, vzero}) {
    for (const AttrVec& v : {vmax, vzero}) {
      const Int beta = masked_partial_gain(s, v0, wv, v, rho_max, rho_j);
      // Must be representable as l-bit unsigned after the shift.
      EXPECT_NO_THROW((void)signed_to_unsigned(beta, s.beta_bits()));
    }
  }
}

TEST(Encoding, SignedUnsignedRoundTrip) {
  for (const std::int64_t v : {-100, -1, 0, 1, 100}) {
    const Nat u = signed_to_unsigned(Int{v}, 16);
    EXPECT_EQ(unsigned_to_signed(u, 16).to_i64(), v);
  }
  // Order preservation.
  EXPECT_LT(signed_to_unsigned(Int{-5}, 16), signed_to_unsigned(Int{3}, 16));
  // Out of range rejected.
  EXPECT_THROW((void)signed_to_unsigned(Int{40000}, 16), std::overflow_error);
  EXPECT_THROW((void)signed_to_unsigned(Int{-40000}, 16), std::overflow_error);
}

TEST(ExpandedVectors, DotProductEqualsMaskedGain) {
  // w'_j · v'_j must equal β_j = ρ·p_j + ρ_j — the identity at the heart of
  // phase 1 (Sec. V).
  const ProblemSpec s = tiny_spec();
  const FpCtx& f = default_dot_field();
  ChaChaRng rng{102};
  for (int i = 0; i < 15; ++i) {
    const AttrVec v0 = random_attrs(s, rng, s.d1);
    const AttrVec w = random_attrs(s, rng, s.d2);
    const AttrVec v = random_attrs(s, rng, s.d1);
    Nat rho = rng.bits(s.h);
    rho.set_bit(s.h - 1, true);
    const Nat rho_j = rng.below(rho);

    const auto wp = participant_vector(f, s, v);
    const auto vp = initiator_vector(f, s, v0, w, rho, rho_j);
    ASSERT_EQ(wp.size(), s.m + s.t + 1);
    ASSERT_EQ(vp.size(), s.m + s.t + 1);
    const Nat dot = dotprod::plain_dot(f, wp, vp);
    const Int expect = masked_partial_gain(s, v0, w, v, rho, rho_j);
    EXPECT_EQ(f.from_centered(dot), expect);
  }
}

TEST(ReferenceRanks, TiesShareRank) {
  const ProblemSpec s{.m = 1, .t = 0, .d1 = 8, .d2 = 4, .h = 6};
  // gains = values with weight 1.
  const AttrVec v0{0}, w{1};
  const std::vector<AttrVec> infos{{5}, {9}, {5}, {1}};
  EXPECT_EQ(reference_ranks(s, v0, w, infos),
            (std::vector<std::size_t>{2, 1, 2, 4}));
}

}  // namespace
}  // namespace ppgr::core

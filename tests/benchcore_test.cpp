// Tests for the benchmark cost model: the mock group's consistency, count
// equivalence between mock and real protocol runs, calibration sanity and
// model scaling laws.
#include <gtest/gtest.h>

#include "benchcore/model.h"
#include "group/mock_group.h"

namespace ppgr::benchcore {
namespace {

using group::CountingGroup;
using group::GroupId;
using group::MockGroup;
using mpz::ChaChaRng;
using mpz::Nat;

TEST(MockGroup, IsAConsistentGroup) {
  const MockGroup g{"mock", 32, 61};
  ChaChaRng rng{500};
  const auto x = g.random_nonzero_scalar(rng);
  const auto y = g.random_nonzero_scalar(rng);
  // Homomorphism and inverse laws (the properties the protocol relies on).
  const auto gx = g.exp_g(x), gy = g.exp_g(y);
  EXPECT_TRUE(g.eq(g.mul(gx, gy), g.exp_g(Nat::add(x, y) % g.order())));
  EXPECT_TRUE(g.is_identity(g.mul(gx, g.inv(gx))));
  EXPECT_TRUE(g.eq(g.exp(gx, y), g.exp_g(Nat::mul(x, y) % g.order())));
  // Declared order is a multiple of every element's order.
  EXPECT_TRUE(g.is_identity(g.exp(gx, g.order())));
}

TEST(MockGroup, ElGamalAndProofsWorkOverIt) {
  // The counted framework run exercises ElGamal + Schnorr over the mock
  // group; both must be *correct* there (only security is absent).
  const MockGroup g{"mock", 32, 61};
  ChaChaRng rng{501};
  const auto kp = crypto::keygen(g, rng);
  const auto ct = crypto::encrypt_exp(g, kp.y, Nat{}, rng);
  EXPECT_TRUE(crypto::decrypts_to_zero(g, kp.x, ct));
  const auto nz = crypto::encrypt_exp(g, kp.y, Nat{3}, rng);
  EXPECT_FALSE(crypto::decrypts_to_zero(g, kp.x, nz));
  const auto proof = crypto::schnorr_prove(g, kp.x, 4, rng);
  EXPECT_TRUE(crypto::schnorr_verify(g, kp.y, proof));
}

TEST(MockGroup, SerializationCarriesModeledSize) {
  const MockGroup g{"mock", 128, 1024};
  EXPECT_EQ(g.element_bytes(), 128u);
  EXPECT_EQ(g.field_bits(), 1024u);
  const auto bytes = g.serialize(g.generator());
  EXPECT_EQ(bytes.size(), 128u);
  EXPECT_TRUE(g.eq(g.deserialize(bytes), g.generator()));
}

TEST(Model, MockCountsEqualRealGroupCounts) {
  // The foundation of the whole cost model: a protocol run counted over the
  // mock group charges exactly the same operations as one over a real group
  // (the operation sequence is data-independent).
  const core::ProblemSpec spec{.m = 3, .t = 1, .d1 = 5, .d2 = 4, .h = 5};
  const std::size_t n = 3, k = 1;
  const auto real = group::make_group(GroupId::kDlTest256);
  const CountingGroup counted_real{*real};

  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = n;
  cfg.k = k;
  cfg.group = &counted_real;
  cfg.dot_field = &core::default_dot_field();
  // Counting through the decorator: the accelerated path computes past it
  // (crediting runtime counters instead), so it must be off here, exactly
  // as in count_he_framework.
  cfg.accel = false;
  const Instance inst = random_instance(spec, n, 99);
  ChaChaRng rng{100};
  (void)core::run_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  const HeCounts mock_counts = count_he_framework(
      spec, n, k, real->element_bytes(), real->field_bits(), 99);
  EXPECT_EQ(mock_counts.per_participant.muls, counted_real.counts().muls / n);
  EXPECT_EQ(mock_counts.per_participant.exps, counted_real.counts().exps / n);
  EXPECT_EQ(mock_counts.per_participant.invs, counted_real.counts().invs / n);
  EXPECT_EQ(mock_counts.per_participant.gexps,
            counted_real.counts().gexps / n);
}

TEST(Model, CalibrationProducesPositiveCosts) {
  const auto g = group::make_group(GroupId::kEcP192);
  ChaChaRng rng{502};
  const GroupCosts costs = calibrate_group(*g, rng);
  EXPECT_GT(costs.mul_s, 0.0);
  EXPECT_GT(costs.exp_s, costs.mul_s);  // an exp is many muls
  EXPECT_GT(costs.inv_s, 0.0);
  EXPECT_GT(costs.serialize_s, 0.0);
}

TEST(Model, SsCalibrationProducesPositiveCosts) {
  const mpz::FpCtx& f = core::ss_field_for_beta_bits(20);
  ChaChaRng rng{503};
  const SsCosts costs = calibrate_ss(f, 5, 2, rng);
  EXPECT_GT(costs.mult_party_s, 0.0);
  EXPECT_GT(costs.open_party_s, 0.0);
  EXPECT_GT(costs.deal_party_s, 0.0);
  EXPECT_GT(costs.sqrt_s, 0.0);
}

TEST(Model, PricingIsLinearInCounts) {
  GroupCosts costs{.mul_s = 1e-6, .exp_s = 1e-3, .inv_s = 1e-3,
                   .serialize_s = 1e-7};
  group::OpCounts counts;
  counts.muls = 1000;
  counts.exps = 10;
  const double t1 = price_group_ops(counts, costs);
  counts.muls *= 2;
  counts.exps *= 2;
  EXPECT_DOUBLE_EQ(price_group_ops(counts, costs), 2 * t1);
  EXPECT_NEAR(t1, 1000 * 1e-6 + 10 * 1e-3, 1e-12);
}

TEST(Model, HeCountsScaleQuadraticallyInN) {
  // Sec. VI-B: per-participant exponentiations are O(l n^2)/n... the total
  // protocol is O(l n^3) exps across parties, i.e. per participant O(l n^2).
  const core::ProblemSpec spec{.m = 3, .t = 1, .d1 = 5, .d2 = 4, .h = 5};
  const auto c5 = count_he_framework(spec, 5, 1, 32, 256, 1);
  const auto c10 = count_he_framework(spec, 10, 1, 32, 256, 1);
  const double ratio = static_cast<double>(c10.per_participant.exps) /
                       static_cast<double>(c5.per_participant.exps);
  EXPECT_GT(ratio, 3.0);  // ~4x for doubled n
  EXPECT_LT(ratio, 5.0);
}

TEST(Model, TraceRoundsLinearInN) {
  const core::ProblemSpec spec{.m = 3, .t = 1, .d1 = 5, .d2 = 4, .h = 5};
  const auto c5 = count_he_framework(spec, 5, 1, 32, 256, 2);
  const auto c10 = count_he_framework(spec, 10, 1, 32, 256, 2);
  // rounds = n + constant.
  EXPECT_EQ(c10.rounds - c5.rounds, 5u);
}

TEST(Model, PaperDefaultSpecMatchesSecVII) {
  const auto spec = paper_default_spec();
  EXPECT_EQ(spec.m, 10u);
  EXPECT_EQ(spec.d1, 15u);
  EXPECT_EQ(spec.h, 15u);
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace ppgr::benchcore

// Tests for the Paillier extension: round trips, additive homomorphism,
// scaling, re-randomization, and the zero-preservation property the
// framework's step-8 randomization trick relies on (showing Paillier *could*
// implement the comparison phase if its key could be distributed).
#include <gtest/gtest.h>

#include "crypto/paillier.h"
#include "mpz/modarith.h"

namespace ppgr::crypto {
namespace {

using mpz::ChaChaRng;
using mpz::Nat;

class PaillierFixture : public ::testing::Test {
 protected:
  PaillierFixture()
      : rng(600), key(PaillierPrivateKey::generate(256, rng)) {}
  ChaChaRng rng;
  PaillierPrivateKey key;
};

TEST_F(PaillierFixture, EncryptDecryptRoundTrip) {
  const auto& pub = key.public_key();
  for (const mpz::Limb m : {0ULL, 1ULL, 42ULL, 1234567ULL}) {
    EXPECT_EQ(key.decrypt(pub.encrypt(Nat{m}, rng)), Nat{m});
  }
  // Large plaintext just below N.
  const Nat big = Nat::sub(pub.n(), Nat{1});
  EXPECT_EQ(key.decrypt(pub.encrypt(big, rng)), big);
}

TEST_F(PaillierFixture, EncryptionIsProbabilistic) {
  const auto& pub = key.public_key();
  const Nat c1 = pub.encrypt(Nat{7}, rng);
  const Nat c2 = pub.encrypt(Nat{7}, rng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(key.decrypt(c1), key.decrypt(c2));
}

TEST_F(PaillierFixture, AdditiveHomomorphism) {
  const auto& pub = key.public_key();
  const Nat a = pub.encrypt(Nat{1000}, rng);
  const Nat b = pub.encrypt(Nat{234}, rng);
  EXPECT_EQ(key.decrypt(pub.add(a, b)), Nat{1234});
  // Addition wraps mod N.
  const Nat near_n = pub.encrypt(Nat::sub(pub.n(), Nat{1}), rng);
  const Nat two = pub.encrypt(Nat{2}, rng);
  EXPECT_EQ(key.decrypt(pub.add(near_n, two)), Nat{1});
}

TEST_F(PaillierFixture, ScalarMultiplication) {
  const auto& pub = key.public_key();
  const Nat c = pub.encrypt(Nat{21}, rng);
  EXPECT_EQ(key.decrypt(pub.scale(c, Nat{2})), Nat{42});
  EXPECT_EQ(key.decrypt(pub.scale(c, Nat{1000})), Nat{21000});
  // Scaling by zero gives an encryption of zero.
  EXPECT_EQ(key.decrypt(pub.scale(c, Nat{})), Nat{});
}

TEST_F(PaillierFixture, RerandomizePreservesPlaintext) {
  const auto& pub = key.public_key();
  const Nat c = pub.encrypt(Nat{99}, rng);
  const Nat r = pub.rerandomize(c, rng);
  EXPECT_NE(r, c);
  EXPECT_EQ(key.decrypt(r), Nat{99});
}

TEST_F(PaillierFixture, ZeroPreservationUnderScaling) {
  // The step-8 trick: raising to a random power maps zero to zero and any
  // nonzero m to r·m (mod N) — Paillier supports it identically to
  // exponential ElGamal.
  const auto& pub = key.public_key();
  const Nat zero_ct = pub.encrypt(Nat{}, rng);
  const Nat nz_ct = pub.encrypt(Nat{5}, rng);
  for (int i = 0; i < 5; ++i) {
    const Nat r = rng.nonzero_below(pub.n());
    EXPECT_EQ(key.decrypt(pub.scale(zero_ct, r)), Nat{});
    const Nat masked = key.decrypt(pub.scale(nz_ct, r));
    EXPECT_EQ(masked, Nat::mul(Nat{5}, r) % pub.n());
    EXPECT_FALSE(masked.is_zero());
  }
}

TEST_F(PaillierFixture, DecryptValidatesRange) {
  EXPECT_THROW((void)key.decrypt(Nat{}), std::invalid_argument);
  EXPECT_THROW((void)key.decrypt(key.public_key().n_squared()),
               std::invalid_argument);
}

TEST_F(PaillierFixture, EncryptValidatesRange) {
  EXPECT_THROW((void)key.public_key().encrypt(key.public_key().n(), rng),
               std::invalid_argument);
}

TEST(Paillier, CiphertextSizeIsTwiceModulus) {
  ChaChaRng rng{601};
  const auto key = PaillierPrivateKey::generate(128, rng);
  // N^2 has ~2x the modulus bits: ciphertexts are twice as large as N.
  EXPECT_NEAR(static_cast<double>(key.public_key().ciphertext_bytes()),
              2.0 * 128 / 8, 1.0);
}

TEST(Paillier, DistinctKeysDontInterop) {
  ChaChaRng rng{602};
  const auto k1 = PaillierPrivateKey::generate(128, rng);
  const auto k2 = PaillierPrivateKey::generate(128, rng);
  const Nat c = k1.public_key().encrypt(Nat{77}, rng);
  if (c < k2.public_key().n_squared() && !c.is_zero()) {
    EXPECT_NE(k2.decrypt(c), Nat{77});
  }
}

}  // namespace
}  // namespace ppgr::crypto

// Edge-case contract of the session engine: every malformed request must be
// rejected at submit() with a typed EngineError — never enqueued, never
// allowed to abort a driver thread — and a rejection must leave the engine
// fully usable.
#include <gtest/gtest.h>

#include <vector>

#include "engine/engine.h"

namespace ppgr::engine {
namespace {

using core::AttrVec;
using core::ProblemSpec;

RankingRequest valid_request(std::uint64_t sid) {
  RankingRequest req;
  req.session_id = sid;
  req.spec = ProblemSpec{.m = 2, .t = 1, .d1 = 4, .d2 = 3, .h = 4};
  req.k = 1;
  req.v0 = {1, 2};
  req.w = {3, 1};
  req.infos = {{5, 6}, {7, 2}, {1, 9}};
  return req;
}

SessionEngine& shared_engine() {
  static PrecomputeCache cache;
  static SessionEngine engine{[] {
    EngineConfig cfg;
    cfg.seed = 3;
    cfg.max_in_flight = 2;
    cfg.cache = &cache;
    return cfg;
  }()};
  return engine;
}

EngineErrorCode rejection(const RankingRequest& req) {
  try {
    (void)shared_engine().submit(req);
  } catch (const EngineError& e) {
    EXPECT_NE(e.what(), std::string{});
    return e.code();
  }
  ADD_FAILURE() << "request " << req.session_id << " was accepted";
  return EngineErrorCode::kUnknownSession;
}

TEST(EngineProperty, RejectsInvalidSpec) {
  auto req = valid_request(100);
  req.spec.t = req.spec.m + 1;  // more equal-to attributes than attributes
  EXPECT_EQ(rejection(req), EngineErrorCode::kInvalidSpec);
}

TEST(EngineProperty, RejectsKOutsideTopology) {
  auto big_k = valid_request(101);
  big_k.k = big_k.infos.size() + 1;  // k > n
  EXPECT_EQ(rejection(big_k), EngineErrorCode::kInvalidTopology);

  auto zero_k = valid_request(102);
  zero_k.k = 0;
  EXPECT_EQ(rejection(zero_k), EngineErrorCode::kInvalidTopology);

  auto lonely = valid_request(103);
  lonely.infos.resize(1);  // n < 2
  EXPECT_EQ(rejection(lonely), EngineErrorCode::kInvalidTopology);
}

TEST(EngineProperty, RejectsMalformedInputs) {
  auto short_v0 = valid_request(104);
  short_v0.v0.pop_back();  // wrong dimension
  EXPECT_EQ(rejection(short_v0), EngineErrorCode::kInvalidInput);

  auto wide_attr = valid_request(105);
  wide_attr.infos[1][0] = 1u << 10;  // exceeds d1 = 4 bits
  EXPECT_EQ(rejection(wide_attr), EngineErrorCode::kInvalidInput);

  auto wide_weight = valid_request(106);
  wide_weight.w[0] = 1u << 9;  // exceeds d2 = 3 bits
  EXPECT_EQ(rejection(wide_weight), EngineErrorCode::kInvalidInput);
}

TEST(EngineProperty, RejectsInfeasibleSsThreshold) {
  auto explicit_t = valid_request(107);
  explicit_t.framework = FrameworkKind::kSs;
  explicit_t.ss_threshold = 2;  // n = 3 < 2t+1 = 5
  EXPECT_EQ(rejection(explicit_t), EngineErrorCode::kInvalidThreshold);

  auto tiny = valid_request(108);
  tiny.framework = FrameworkKind::kSs;
  tiny.infos.resize(2);  // default t = 0: no honest majority exists
  EXPECT_EQ(rejection(tiny), EngineErrorCode::kInvalidThreshold);
}

TEST(EngineProperty, RejectsDuplicateAndUnknownSessionIds) {
  SessionEngine& engine = shared_engine();
  const std::uint64_t sid = engine.submit(valid_request(109));
  EXPECT_EQ(rejection(valid_request(109)), EngineErrorCode::kDuplicateSession);
  try {
    (void)engine.take(424242);
    ADD_FAILURE() << "take() of a never-submitted id succeeded";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.code(), EngineErrorCode::kUnknownSession);
  }
  // The accepted session is unaffected by the rejections around it.
  const SessionResult res = engine.take(sid);
  EXPECT_EQ(res.ranks().size(), 3u);
}

TEST(EngineProperty, RejectionsLeaveNoResidue) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 17;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  for (std::uint64_t sid = 1; sid <= 4; ++sid) {
    auto bad = valid_request(sid);
    bad.k = 0;
    EXPECT_THROW((void)engine.submit(std::move(bad)), EngineError);
  }
  engine.drain();  // returns immediately: nothing was enqueued
  EXPECT_EQ(engine.peak_in_flight(), 0u);
  EXPECT_EQ(engine.precompute_stats().total().misses, 0u);
  // Ids from rejected submissions stay available.
  const std::uint64_t sid = engine.submit(valid_request(1));
  EXPECT_EQ(engine.take(sid).ranks().size(), 3u);
}

}  // namespace
}  // namespace ppgr::engine

// Unit tests for the deterministic fork-join thread pool and the
// thread-safety guarantees of TraceRecorder / PartyTimer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/thread_pool.h"
#include "runtime/trace.h"

namespace ppgr::runtime {
namespace {

TEST(ThreadPool, OrderedMapResults) {
  ThreadPool pool{4};
  const auto out = pool.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, InlineModeRunsOnCaller) {
  // threads <= 1: no workers; every index executes on the calling thread in
  // index order.
  ThreadPool pool{1};
  EXPECT_EQ(pool.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.threads(), 1u);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPool, AllIndicesRunExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(513);
  pool.parallel_for(513, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesLowestIndex) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 7 || i == 50) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // The lowest failing index wins whenever both ran; with cancellation the
    // later one may have been skipped entirely — either way it must be one
    // of the thrown errors, and when both threw, index 7's.
    const std::string what = e.what();
    EXPECT_TRUE(what == "boom 7" || what == "boom 50") << what;
  }
}

TEST(ThreadPool, ExceptionInInlineMode) {
  ThreadPool pool{1};
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t i) {
        if (i == 2) throw std::logic_error("inline");
      }),
      std::logic_error);
}

TEST(ThreadPool, ReentrantSubmission) {
  // A task may fan out again on the same pool; the caller participates, so
  // this cannot deadlock even when every worker is busy with outer tasks.
  ThreadPool pool{3};
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t j) { inner_total += j; });
  });
  EXPECT_EQ(inner_total.load(), 8u * (16u * 15u / 2));
}

TEST(ThreadPool, ManyTasksStress) {
  ThreadPool pool{4};
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(257, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 257u);
  }
}

TEST(ThreadPool, RapidShortJobsDoNotRaceJobTeardown) {
  // Regression: the submitter used to free its stack-allocated job as soon
  // as done == count, while a freshly-woken worker could still hold a
  // pointer it had just selected from the deque — a use-after-free that
  // turned into an unbounded spin on garbage memory. Thousands of tiny jobs
  // maximize that select/teardown window.
  ThreadPool pool{4};
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 5000; ++round) {
    pool.parallel_for(2, [&](std::size_t i) { total += i + 1; });
  }
  EXPECT_EQ(total.load(), 5000u * 3);
}

TEST(ThreadPool, EmptyAndSingleCounts) {
  ThreadPool pool{4};
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::size_t got = 99;
  pool.parallel_for(1, [&](std::size_t i) { got = i; });
  EXPECT_EQ(got, 0u);
}

// ---- thread-safe trace recording ----

TEST(TraceRecorderThreading, ConcurrentRecordKeepsEveryTransfer) {
  TraceRecorder rec;
  ThreadPool pool{4};
  pool.parallel_for(1000, [&](std::size_t i) { rec.record(1, 2, i); });
  EXPECT_EQ(rec.message_count(), 1000u);
  EXPECT_EQ(rec.total_bytes(), 1000u * 999u / 2);
  EXPECT_EQ(rec.bytes_sent_by(1), rec.total_bytes());
  EXPECT_EQ(rec.bytes_received_by(2), rec.total_bytes());
}

TEST(TraceRecorderThreading, BufferedAbsorbIsDeterministic) {
  // The engine's pattern: tasks record into per-task buffers; the
  // orchestrator absorbs them in task order. The resulting transfer
  // sequence must not depend on the schedule — compare against a serial
  // reference.
  const std::size_t kTasks = 64;
  auto run = [&](std::size_t threads) {
    TraceRecorder rec;
    std::vector<TraceBuffer> bufs(kTasks);
    ThreadPool pool{threads};
    pool.parallel_for(kTasks, [&](std::size_t t) {
      bufs[t].record(t + 1, 0, 10 * t);
      bufs[t].record(0, t + 1, 10 * t + 1);
    });
    for (auto& b : bufs) rec.absorb(b);
    rec.next_round();
    return rec;
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(serial.transfers().size(), threaded.transfers().size());
  for (std::size_t i = 0; i < serial.transfers().size(); ++i) {
    EXPECT_EQ(serial.transfers()[i].src, threaded.transfers()[i].src);
    EXPECT_EQ(serial.transfers()[i].dst, threaded.transfers()[i].dst);
    EXPECT_EQ(serial.transfers()[i].bytes, threaded.transfers()[i].bytes);
    EXPECT_EQ(serial.transfers()[i].round, threaded.transfers()[i].round);
  }
}

TEST(TraceRecorderThreading, CopyAndMovePreserveData) {
  TraceRecorder rec;
  rec.record(1, 2, 100);
  rec.next_round();
  rec.record(2, 1, 50);
  TraceRecorder copy{rec};
  EXPECT_EQ(copy.message_count(), 2u);
  EXPECT_EQ(copy.total_bytes(), 150u);
  TraceRecorder moved{std::move(copy)};
  EXPECT_EQ(moved.message_count(), 2u);
  EXPECT_EQ(moved.rounds(), 2u);
  TraceRecorder assigned;
  assigned = moved;
  EXPECT_EQ(assigned.total_bytes(), 150u);
}

TEST(PartyTimerThreading, ConcurrentAddsForSameParty) {
  PartyTimer timer{3};
  ThreadPool pool{4};
  pool.parallel_for(1000, [&](std::size_t i) { timer.add(i % 3, 0.001); });
  double total = 0;
  for (std::size_t p = 0; p < 3; ++p) total += timer.seconds(p);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(timer.seconds(0), timer.seconds(1), 0.01);
}

TEST(PartyTimerThreading, ScopesAccumulate) {
  PartyTimer timer{2};
  ThreadPool pool{4};
  pool.parallel_for(8, [&](std::size_t) {
    auto scope = timer.time(1);
    volatile std::size_t x = 0;
    for (std::size_t i = 0; i < 10000; ++i) x = x + i;
  });
  EXPECT_GT(timer.seconds(1), 0.0);
  EXPECT_EQ(timer.seconds(0), 0.0);
  EXPECT_GT(timer.max_participant_seconds(), 0.0);
}

}  // namespace
}  // namespace ppgr::runtime

// Parameterized end-to-end property sweeps of the framework: spec shape
// corners (all equal-to, all greater-than, single attribute), k corners
// (k = 1, k = n), group sizes, and randomized instances — each checked
// against the plain reference ranking and the top-k invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/framework.h"

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

struct Shape {
  const char* name;
  ProblemSpec spec;
  std::size_t n;
  std::size_t k;
};

std::vector<Shape> shapes() {
  return {
      {"all_equal_to", {.m = 3, .t = 3, .d1 = 5, .d2 = 4, .h = 5}, 4, 1},
      {"all_greater_than", {.m = 3, .t = 0, .d1 = 5, .d2 = 4, .h = 5}, 4, 2},
      {"single_attribute", {.m = 1, .t = 0, .d1 = 6, .d2 = 3, .h = 4}, 3, 1},
      {"single_equal_attr", {.m = 1, .t = 1, .d1 = 6, .d2 = 3, .h = 4}, 3, 1},
      {"k_equals_n", {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4}, 3, 3},
      {"minimum_n", {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4}, 2, 1},
      {"wide_weights", {.m = 2, .t = 1, .d1 = 4, .d2 = 10, .h = 4}, 4, 2},
      {"wide_mask", {.m = 2, .t = 1, .d1 = 4, .d2 = 3, .h = 14}, 4, 1},
  };
}

class FrameworkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(FrameworkShapes, EndToEndInvariants) {
  const Shape& shape = GetParam();
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = shape.spec;
  cfg.n = shape.n;
  cfg.k = shape.k;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();

  ChaChaRng rng{std::hash<std::string>{}(shape.name)};
  auto attrs = [&](std::size_t bits) {
    AttrVec v(cfg.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
    return v;
  };
  const AttrVec v0 = attrs(cfg.spec.d1);
  const AttrVec w = attrs(cfg.spec.d2);
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < cfg.n; ++j) infos.push_back(attrs(cfg.spec.d1));

  const auto result = run_framework(cfg, v0, w, infos, rng);

  // Invariant 1: ranks in [1, n] and consistent with the reference when
  // gains are distinct (tied gains may resolve either way).
  std::vector<Int> gains;
  for (const auto& v : infos) gains.push_back(gain(cfg.spec, v0, w, v));
  for (std::size_t i = 0; i < cfg.n; ++i) {
    EXPECT_GE(result.ranks[i], 1u);
    EXPECT_LE(result.ranks[i], cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      if (gains[i] > gains[j]) {
        EXPECT_LT(result.ranks[i], result.ranks[j])
            << shape.name << ": higher gain must rank better";
      }
    }
  }
  // Invariant 2: submissions are exactly the rank<=k set.
  for (std::size_t j = 0; j < cfg.n; ++j) {
    const bool submitted =
        std::find(result.submitted_ids.begin(), result.submitted_ids.end(),
                  j + 1) != result.submitted_ids.end();
    EXPECT_EQ(submitted, result.ranks[j] <= cfg.k) << shape.name;
  }
  // Invariant 3 (k = n corner): everyone submits.
  if (cfg.k == cfg.n) {
    EXPECT_EQ(result.submitted_ids.size(), cfg.n);
  }
  // Invariant 4: the trace stays O(n) rounds.
  EXPECT_LE(result.trace.rounds(), cfg.n + 10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FrameworkShapes,
                         ::testing::ValuesIn(shapes()),
                         [](const auto& info) {
                           return std::string{info.param.name};
                         });

TEST(FrameworkProperty, EqualGainsShareRank) {
  // Participants with identical vectors get... β values that differ only by
  // ρ_j, so their relative order is random — but both must outrank strictly
  // worse participants and be outranked by strictly better ones.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 1, .t = 0, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 4;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{909};
  // Two identical middles between a clear best and a clear worst.
  const std::vector<AttrVec> infos{{31}, {16}, {16}, {1}};
  const auto result = run_framework(cfg, {0}, {7}, infos, rng);
  EXPECT_EQ(result.ranks[0], 1u);
  EXPECT_EQ(result.ranks[3], 4u);
  EXPECT_EQ(std::min(result.ranks[1], result.ranks[2]), 2u);
  EXPECT_EQ(std::max(result.ranks[1], result.ranks[2]), 3u);
}

TEST(FrameworkProperty, DeterministicUnderFixedSeed) {
  // Same seed -> identical protocol run (ranks, trace) — the property the
  // reproducible benchmarks rely on.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  const std::vector<AttrVec> infos{{1, 2}, {3, 4}, {5, 6}};
  ChaChaRng rng1{77}, rng2{77};
  const auto r1 = run_framework(cfg, {0, 0}, {1, 1}, infos, rng1);
  const auto r2 = run_framework(cfg, {0, 0}, {1, 1}, infos, rng2);
  EXPECT_EQ(r1.ranks, r2.ranks);
  EXPECT_EQ(r1.trace.total_bytes(), r2.trace.total_bytes());
}

TEST(FrameworkProperty, ZeroWeightsRankByMask) {
  // Degenerate but legal: all-zero weights give identical gains for
  // everyone; the framework must still terminate with a valid permutation
  // (order decided by the random masks).
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{404};
  const std::vector<AttrVec> infos{{1, 2}, {3, 4}, {5, 6}};
  const auto result = run_framework(cfg, {0, 0}, {0, 0}, infos, rng);
  // Masks are random, so ranks form a permutation unless two ρ_j collide —
  // in which case the tied participants share a rank (paper Sec. V, last
  // paragraph). Both outcomes are valid; ranks must stay in range and the
  // best rank must be 1.
  auto sorted = result.ranks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_LE(sorted.back(), 3u);
}

TEST(FrameworkProperty, MinimalMaskMakesTiesDeterministic) {
  // h = 1 is the bit-width boundary of the ρ masking: ρ is drawn as a 1-bit
  // value with the top bit forced, so ρ = 1 and every ρ_j ∈ [0, ρ) is 0 —
  // β_j collapses to the plain gain p_j. Participants with equal gains then
  // share a rank deterministically, exactly like the insecure reference.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 4, .d2 = 3, .h = 1};
  cfg.n = 4;
  cfg.k = 2;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{515};
  const AttrVec v0{3, 9};
  const AttrVec w{5, 2};
  // Participants 2 and 3 are identical; 1 strictly better, 4 strictly worse.
  const std::vector<AttrVec> infos{{3, 15}, {3, 9}, {3, 9}, {3, 1}};
  const auto result = run_framework(cfg, v0, w, infos, rng);
  const auto expect = reference_ranks(cfg.spec, v0, w, infos);
  EXPECT_EQ(result.ranks, expect);
  EXPECT_EQ(result.ranks[1], result.ranks[2]) << "equal gains must tie at h=1";
  // With ρ = 1 and ρ_j = 0, β_j is exactly the l-bit unsigned encoding of
  // the plain partial gain — no masking randomness left.
  const std::size_t l = cfg.spec.beta_bits();
  for (std::size_t j = 0; j < cfg.n; ++j) {
    EXPECT_EQ(result.betas[j],
              signed_to_unsigned(partial_gain(cfg.spec, v0, w, infos[j]), l))
        << "participant " << j + 1;
  }
}

TEST(FrameworkProperty, KEqualsNEveryoneSubmitsInRankOrder) {
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4};
  cfg.n = 5;
  cfg.k = 5;  // k = n: the top-k filter accepts everyone
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{616};
  const std::vector<AttrVec> infos{{1, 2}, {9, 9}, {4, 4}, {0, 1}, {7, 3}};
  const auto result = run_framework(cfg, {0, 0}, {3, 1}, infos, rng);
  ASSERT_EQ(result.submitted_ids.size(), cfg.n);
  // Every participant id appears exactly once.
  auto ids = result.submitted_ids;
  std::sort(ids.begin(), ids.end());
  for (std::size_t j = 0; j < cfg.n; ++j) EXPECT_EQ(ids[j], j + 1);
  // And all ranks are within [1, n] with rank 1 present.
  auto sorted = result.ranks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_LE(sorted.back(), cfg.n);
}

TEST(FrameworkProperty, SingleParticipantIsRejected) {
  // n = 1 has no peers to compare against; the config validator must refuse
  // it rather than run a degenerate protocol.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4};
  cfg.n = 1;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{717};
  const std::vector<AttrVec> infos{{1, 2}};
  EXPECT_THROW(run_framework(cfg, {0, 0}, {1, 1}, infos, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppgr::core

// Parameterized end-to-end property sweeps of the framework: spec shape
// corners (all equal-to, all greater-than, single attribute), k corners
// (k = 1, k = n), group sizes, and randomized instances — each checked
// against the plain reference ranking and the top-k invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/framework.h"

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

struct Shape {
  const char* name;
  ProblemSpec spec;
  std::size_t n;
  std::size_t k;
};

std::vector<Shape> shapes() {
  return {
      {"all_equal_to", {.m = 3, .t = 3, .d1 = 5, .d2 = 4, .h = 5}, 4, 1},
      {"all_greater_than", {.m = 3, .t = 0, .d1 = 5, .d2 = 4, .h = 5}, 4, 2},
      {"single_attribute", {.m = 1, .t = 0, .d1 = 6, .d2 = 3, .h = 4}, 3, 1},
      {"single_equal_attr", {.m = 1, .t = 1, .d1 = 6, .d2 = 3, .h = 4}, 3, 1},
      {"k_equals_n", {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4}, 3, 3},
      {"minimum_n", {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 4}, 2, 1},
      {"wide_weights", {.m = 2, .t = 1, .d1 = 4, .d2 = 10, .h = 4}, 4, 2},
      {"wide_mask", {.m = 2, .t = 1, .d1 = 4, .d2 = 3, .h = 14}, 4, 1},
  };
}

class FrameworkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(FrameworkShapes, EndToEndInvariants) {
  const Shape& shape = GetParam();
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = shape.spec;
  cfg.n = shape.n;
  cfg.k = shape.k;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();

  ChaChaRng rng{std::hash<std::string>{}(shape.name)};
  auto attrs = [&](std::size_t bits) {
    AttrVec v(cfg.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
    return v;
  };
  const AttrVec v0 = attrs(cfg.spec.d1);
  const AttrVec w = attrs(cfg.spec.d2);
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < cfg.n; ++j) infos.push_back(attrs(cfg.spec.d1));

  const auto result = run_framework(cfg, v0, w, infos, rng);

  // Invariant 1: ranks in [1, n] and consistent with the reference when
  // gains are distinct (tied gains may resolve either way).
  std::vector<Int> gains;
  for (const auto& v : infos) gains.push_back(gain(cfg.spec, v0, w, v));
  for (std::size_t i = 0; i < cfg.n; ++i) {
    EXPECT_GE(result.ranks[i], 1u);
    EXPECT_LE(result.ranks[i], cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      if (gains[i] > gains[j]) {
        EXPECT_LT(result.ranks[i], result.ranks[j])
            << shape.name << ": higher gain must rank better";
      }
    }
  }
  // Invariant 2: submissions are exactly the rank<=k set.
  for (std::size_t j = 0; j < cfg.n; ++j) {
    const bool submitted =
        std::find(result.submitted_ids.begin(), result.submitted_ids.end(),
                  j + 1) != result.submitted_ids.end();
    EXPECT_EQ(submitted, result.ranks[j] <= cfg.k) << shape.name;
  }
  // Invariant 3 (k = n corner): everyone submits.
  if (cfg.k == cfg.n) {
    EXPECT_EQ(result.submitted_ids.size(), cfg.n);
  }
  // Invariant 4: the trace stays O(n) rounds.
  EXPECT_LE(result.trace.rounds(), cfg.n + 10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FrameworkShapes,
                         ::testing::ValuesIn(shapes()),
                         [](const auto& info) {
                           return std::string{info.param.name};
                         });

TEST(FrameworkProperty, EqualGainsShareRank) {
  // Participants with identical vectors get... β values that differ only by
  // ρ_j, so their relative order is random — but both must outrank strictly
  // worse participants and be outranked by strictly better ones.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 1, .t = 0, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 4;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{909};
  // Two identical middles between a clear best and a clear worst.
  const std::vector<AttrVec> infos{{31}, {16}, {16}, {1}};
  const auto result = run_framework(cfg, {0}, {7}, infos, rng);
  EXPECT_EQ(result.ranks[0], 1u);
  EXPECT_EQ(result.ranks[3], 4u);
  EXPECT_EQ(std::min(result.ranks[1], result.ranks[2]), 2u);
  EXPECT_EQ(std::max(result.ranks[1], result.ranks[2]), 3u);
}

TEST(FrameworkProperty, DeterministicUnderFixedSeed) {
  // Same seed -> identical protocol run (ranks, trace) — the property the
  // reproducible benchmarks rely on.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  const std::vector<AttrVec> infos{{1, 2}, {3, 4}, {5, 6}};
  ChaChaRng rng1{77}, rng2{77};
  const auto r1 = run_framework(cfg, {0, 0}, {1, 1}, infos, rng1);
  const auto r2 = run_framework(cfg, {0, 0}, {1, 1}, infos, rng2);
  EXPECT_EQ(r1.ranks, r2.ranks);
  EXPECT_EQ(r1.trace.total_bytes(), r2.trace.total_bytes());
}

TEST(FrameworkProperty, ZeroWeightsRankByMask) {
  // Degenerate but legal: all-zero weights give identical gains for
  // everyone; the framework must still terminate with a valid permutation
  // (order decided by the random masks).
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg;
  cfg.spec = {.m = 2, .t = 1, .d1 = 5, .d2 = 3, .h = 5};
  cfg.n = 3;
  cfg.k = 1;
  cfg.group = g.get();
  cfg.dot_field = &default_dot_field();
  ChaChaRng rng{404};
  const std::vector<AttrVec> infos{{1, 2}, {3, 4}, {5, 6}};
  const auto result = run_framework(cfg, {0, 0}, {0, 0}, infos, rng);
  // Masks are random, so ranks form a permutation unless two ρ_j collide —
  // in which case the tied participants share a rank (paper Sec. V, last
  // paragraph). Both outcomes are valid; ranks must stay in range and the
  // best rank must be 1.
  auto sorted = result.ranks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_LE(sorted.back(), 3u);
}

}  // namespace
}  // namespace ppgr::core

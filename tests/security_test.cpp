// Security-property tests mirroring Sec. III-C and Sec. VI-A of the paper.
//
// These are mechanical/statistical checks of the constructions the formal
// proofs rely on — not proofs themselves:
//  - Lemma 1 (private input hiding): the adversary's linear system stays
//    under-determined; β values pool into an under-determined system.
//  - Lemma 2/3 (gain hiding): phase-2 views are re-randomized (no
//    deterministic fingerprint of β), non-zero τ plaintexts are destroyed by
//    the exponent randomization, and the Lemma-3 simulator's replacement
//    sets are indistinguishable in everything the adversary can measure.
//  - Lemma 4 (identity unlinkability): after the decrypt-shuffle chain, the
//    position of the zero inside a returned set is uniform (chi-square), and
//    swapping two honest participants' inputs leaves every observable of the
//    chain unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/framework.h"
#include "dotprod/dot_product.h"
#include "crypto/elgamal.h"
#include "mpz/rng.h"

namespace ppgr::core {
namespace {

using crypto::Ciphertext;
using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;
using mpz::Nat;

ProblemSpec tiny_spec() {
  return ProblemSpec{.m = 2, .t = 1, .d1 = 4, .d2 = 3, .h = 4};
}

FrameworkConfig make_config(const group::Group& g, std::size_t n) {
  FrameworkConfig cfg;
  cfg.spec = tiny_spec();
  cfg.n = n;
  cfg.k = 1;
  cfg.group = &g;
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;
  return cfg;
}

// ---------- Lemma 1: private input hiding ----------

TEST(PrivateInputHiding, DotProductSystemUnderdetermined) {
  // The initiator sees (QX, c', g, a, h): s*d + 2d + 2 equations about
  // Bob's unknowns (Q: s^2, X's random rows: (s-1)*d, f: d, R1..R3, w: d).
  // For all supported parameters the unknowns strictly exceed the
  // equations, which is the [2] security argument.
  for (std::size_t d : {2u, 8u, 32u, 128u, 241u}) {
    const std::size_t s = dotprod::recommended_s(d);
    const std::size_t equations = s * d + 2 * d;
    const std::size_t unknowns = s * s + s * d + d + 3;
    EXPECT_GT(unknowns, equations) << "s=" << s << " d=" << d;
    // And the recommendation is minimal-ish: s-1 would not suffice once the
    // rule actually kicked in.
    if (s > 2) {
      EXPECT_LE((s - 1) * (s - 1) + 3, d);
    }
  }
}

TEST(PrivateInputHiding, BetaPoolingStaysUnderdetermined) {
  // An adversary pooling all n β values faces n equations
  // β_j = ρ p_j + ρ_j in n+1 unknowns (ρ and the n masks ρ_j) even if she
  // somehow knew every p_j — and the p_j themselves are unknown too.
  for (std::size_t n : {2u, 10u, 100u}) {
    const std::size_t equations = n;
    const std::size_t unknowns = 1 + n;  // ρ and ρ_j
    EXPECT_GT(unknowns, equations);
  }
}

TEST(PrivateInputHiding, InitiatorViewVariesAcrossRunsForSameInput) {
  // The same participant vector must not produce a repeatable view
  // (otherwise the initiator could fingerprint inputs across events).
  const auto g = make_group(GroupId::kDlTest256);
  const FrameworkConfig cfg = make_config(*g, 2);
  ChaChaRng rng{200};
  const AttrVec info{3, 5};
  Participant p1{cfg, 1, info, rng};
  Participant p2{cfg, 2, info, rng};
  const auto& q1 = p1.gain_query();
  const auto& q2 = p2.gain_query();
  EXPECT_NE(q1.qx, q2.qx);
  EXPECT_NE(q1.cprime, q2.cprime);
  EXPECT_NE(q1.gvec, q2.gvec);
}

// ---------- Lemma 2/3: gain hiding ----------

TEST(GainHiding, ComparisonSetsCarryNoDeterministicFingerprint) {
  // Step 7 output must be freshly randomized: computing the same comparison
  // twice yields different ciphertexts, so an adversary cannot test bit
  // hypotheses against the published E(β_i) bits.
  const auto g = make_group(GroupId::kDlTest256);
  const FrameworkConfig cfg = make_config(*g, 2);
  ChaChaRng rng{201};
  Initiator init{cfg, {1, 2}, {3, 3}, rng};
  Participant a{cfg, 1, {3, 9}, rng};
  Participant b{cfg, 2, {1, 4}, rng};
  for (auto* p : {&a, &b}) {
    const auto& q = p->gain_query();
    p->receive_gain_answer(init.answer_gain_query(p->id(), q));
  }
  const auto kp = crypto::keygen(*g, rng);
  a.set_joint_key(kp.y);
  b.set_joint_key(kp.y);
  const auto bits_b = b.encrypt_beta_bits();
  const auto tau1 = a.compare_against(bits_b);
  const auto tau2 = a.compare_against(bits_b);
  ASSERT_EQ(tau1.size(), tau2.size());
  for (std::size_t t = 0; t < tau1.size(); ++t) {
    EXPECT_FALSE(g->eq(tau1[t].c, tau2[t].c)) << "bit " << t;
  }
  // And none of them equals the input ciphertext it was derived from.
  for (std::size_t t = 0; t < tau1.size(); ++t) {
    EXPECT_FALSE(g->eq(tau1[t].c, bits_b[t].c));
  }
}

TEST(GainHiding, NonzeroTauValuesAreDestroyedByChain) {
  // After one shuffle hop, a non-zero plaintext m becomes r·m for secret
  // random r: the adversary who somehow guessed m cannot confirm the guess.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{202};
  const auto k1 = crypto::keygen(*g, rng);
  const auto k2 = crypto::keygen(*g, rng);
  const std::vector<group::Elem> ys{k1.y, k2.y};
  const auto joint = crypto::joint_public_key(*g, ys);
  int confirmed = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const Nat m{7};
    Ciphertext ct = crypto::encrypt_exp(*g, joint, m, rng);
    // Party 2's hop.
    ct = crypto::exp_randomize(*g, crypto::partial_decrypt(*g, k2.x, ct),
                               g->random_nonzero_scalar(rng));
    // Party 1 decrypts; does it still look like g^7?
    const auto plain = crypto::decrypt_exp(*g, k1.x, ct);
    if (g->eq(plain, g->exp_g(m))) ++confirmed;
    EXPECT_FALSE(g->is_identity(plain));  // still provably non-zero
  }
  EXPECT_LE(confirmed, 1);  // chance collision only
}

TEST(GainHiding, Lemma3SimulatorSetsAreObservationEquivalent) {
  // The Lemma-3 simulator replaces a real comparison set with fresh
  // encryptions of (same number of zeros, random nonzeros), permuted. Check
  // that every adversary-observable statistic matches: set size, ciphertext
  // size, zero count after full decryption.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{203};
  const auto kp = crypto::keygen(*g, rng);
  const std::size_t l = 12;

  // "Real" set: exactly one zero among l values (the τ structure).
  std::vector<Ciphertext> real_set;
  const std::size_t zero_pos = 5;
  for (std::size_t t = 0; t < l; ++t) {
    const Nat m = (t == zero_pos) ? Nat{} : Nat{static_cast<mpz::Limb>(t + 3)};
    real_set.push_back(crypto::encrypt_exp(*g, kp.y, m, rng));
  }
  // Simulator set: one zero, random nonzeros, random positions.
  std::vector<Ciphertext> sim_set;
  const std::size_t sim_zero = rng.below_u64(l);
  for (std::size_t t = 0; t < l; ++t) {
    const Nat m = (t == sim_zero) ? Nat{} : g->random_nonzero_scalar(rng);
    sim_set.push_back(crypto::encrypt_exp(*g, kp.y, m, rng));
  }
  auto zero_count = [&](const std::vector<Ciphertext>& set) {
    std::size_t zeros = 0;
    for (const auto& ct : set)
      zeros += crypto::decrypts_to_zero(*g, kp.x, ct) ? 1 : 0;
    return zeros;
  };
  EXPECT_EQ(real_set.size(), sim_set.size());
  EXPECT_EQ(zero_count(real_set), zero_count(sim_set));
}

// ---------- Lemma 4: identity unlinkability ----------

// Runs phase 2 manually for n=3 parties with given β bit patterns and
// returns the position of the zero in party 1's returned set (or l if none).
std::size_t chain_zero_position(const group::Group& g, std::size_t l,
                                const Nat& beta1, const Nat& beta2,
                                ChaChaRng& rng) {
  // Two participants suffice to exercise the chain mechanics.
  const auto k1 = crypto::keygen(g, rng);
  const auto k2 = crypto::keygen(g, rng);
  const std::vector<group::Elem> ys{k1.y, k2.y};
  const auto joint = crypto::joint_public_key(g, ys);

  // P1 compares against P2's bits: zero at the most significant differing
  // bit position iff beta2 > beta1 (DGK circuit, same formulas as
  // Participant::compare_against — reproduced here to drive arbitrary bit
  // patterns).
  std::vector<Ciphertext> bits2;
  for (std::size_t b = 0; b < l; ++b)
    bits2.push_back(crypto::encrypt_exp(g, joint,
                                        beta2.bit(b) ? Nat{1} : Nat{}, rng));
  const Nat& q = g.order();
  std::vector<Ciphertext> set;
  Ciphertext suffix{.c = g.identity(), .cp = g.identity()};
  std::vector<Ciphertext> tau(l);
  for (std::size_t b = l; b-- > 0;) {
    Ciphertext gamma =
        beta1.bit(b)
            ? crypto::ct_add_plain(
                  g, crypto::ct_scale(g, bits2[b], Nat::sub(q, Nat{1})), Nat{1})
            : bits2[b];
    const Nat coeff{static_cast<mpz::Limb>(l - b)};
    Ciphertext omega = crypto::ct_scale(g, gamma, Nat::sub(q, coeff));
    omega = crypto::ct_add_plain(g, omega, coeff);
    omega = crypto::ct_add(g, omega, suffix);
    tau[b] = beta1.bit(b) ? crypto::ct_add_plain(g, omega, Nat{1}) : omega;
    suffix = crypto::ct_add(g, suffix, gamma);
  }
  set = std::move(tau);

  // P2's chain hop: partial decrypt, randomize, permute.
  for (auto& ct : set) {
    ct = crypto::exp_randomize(g, crypto::partial_decrypt(g, k2.x, ct),
                               g.random_nonzero_scalar(rng));
  }
  for (std::size_t i = set.size(); i-- > 1;)
    std::swap(set[i], set[rng.below_u64(i + 1)]);

  // P1 removes her own layer and looks for the zero.
  for (std::size_t pos = 0; pos < set.size(); ++pos) {
    if (crypto::decrypts_to_zero(g, k1.x, set[pos])) return pos;
  }
  return l;
}

TEST(IdentityUnlinkability, ZeroPositionIsUniformAfterShuffle) {
  // β2 > β1 so exactly one zero exists; its position in the returned set
  // must be uniform over [0, l) — otherwise the position would leak which
  // bit differed, i.e. information about β beyond the rank.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{204};
  const std::size_t l = 8;
  const Nat beta1{0b00010110};
  const Nat beta2{0b10010110};  // differs at the MSB -> pre-shuffle zero at 7
  std::vector<std::size_t> histogram(l, 0);
  const int kTrials = 160;
  for (int i = 0; i < kTrials; ++i) {
    const std::size_t pos = chain_zero_position(*g, l, beta1, beta2, rng);
    ASSERT_LT(pos, l);
    ++histogram[pos];
  }
  // Chi-square against uniform: 7 dof, p=0.001 critical value 24.32.
  const double expected = static_cast<double>(kTrials) / l;
  double chi2 = 0;
  for (const auto count : histogram) {
    const double d = static_cast<double>(count) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.32) << "zero position not uniform";
}

TEST(IdentityUnlinkability, NoZeroWhenPeerSmallerRegardlessOfShuffle) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{205};
  const std::size_t l = 8;
  for (int i = 0; i < 10; ++i) {
    // β2 < β1: no zero must survive.
    EXPECT_EQ(chain_zero_position(*g, l, Nat{200}, Nat{3}, rng), l);
  }
}

TEST(IdentityUnlinkability, SwappedAssignmentsGiveIdenticalObservables) {
  // Def. 7's game: assign (β_b, β_{1-b}) to two honest participants. The
  // adversary observes everything except the final ranks. With full runs of
  // the real framework we check the coarse observables are identical across
  // the two assignments: trace shape (rounds, per-message sizes) and the
  // multiset of ranks.
  const auto g = make_group(GroupId::kDlTest256);
  FrameworkConfig cfg = make_config(*g, 3);
  const AttrVec v0{1, 2}, w{3, 3};
  // Two candidate vectors for the honest pair + one adversary-chosen vector.
  const AttrVec va{3, 9}, vb{2, 4}, adversary{1, 1};
  ChaChaRng rng1{206}, rng2{206};
  const auto run_b0 =
      run_framework(cfg, v0, w, {va, vb, adversary}, rng1);
  const auto run_b1 =
      run_framework(cfg, v0, w, {vb, va, adversary}, rng2);

  EXPECT_EQ(run_b0.trace.rounds(), run_b1.trace.rounds());
  EXPECT_EQ(run_b0.trace.message_count(), run_b1.trace.message_count());
  ASSERT_EQ(run_b0.trace.transfers().size(), run_b1.trace.transfers().size());
  for (std::size_t i = 0; i < run_b0.trace.transfers().size(); ++i) {
    EXPECT_EQ(run_b0.trace.transfers()[i].bytes,
              run_b1.trace.transfers()[i].bytes);
  }
  // Rank multiset identical; the identity holding each rank swaps.
  auto r0 = run_b0.ranks, r1 = run_b1.ranks;
  EXPECT_EQ(r0[2], r1[2]);  // adversary's own rank is the same
  std::sort(r0.begin(), r0.end());
  std::sort(r1.begin(), r1.end());
  EXPECT_EQ(r0, r1);
}

// ---------- IND-CPA game mechanics (Lemma 2) ----------

TEST(IndCpa, BitwiseEncryptionResistsNaiveDistinguishers) {
  // Play the Def.-in-Sec.-IV-C game with two fixed plaintexts and a family
  // of cheap distinguishers (byte parities, byte sums of the first
  // component). Each must stay near 1/2 — a smoke test that no trivial
  // structure leaks, NOT a proof of IND-CPA (which Lemma 2 reduces to DDH).
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{207};
  const auto kp = crypto::keygen(*g, rng);
  const int kTrials = 300;
  int wins_parity = 0, wins_sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    const bool b = rng.coin();
    const Nat m = b ? Nat{1} : Nat{};
    const auto ct = crypto::encrypt_exp(*g, kp.y, m, rng);
    const auto bytes = g->serialize(ct.c);
    const bool guess_parity = bytes.back() & 1;
    unsigned sum = 0;
    for (const auto byte : bytes) sum += byte;
    const bool guess_sum = sum & 1;
    wins_parity += (guess_parity == b) ? 1 : 0;
    wins_sum += (guess_sum == b) ? 1 : 0;
  }
  // Binomial(300, 1/2): 5-sigma band is 150 ± 43.
  EXPECT_NEAR(wins_parity, kTrials / 2, 43);
  EXPECT_NEAR(wins_sum, kTrials / 2, 43);
}

// ---------- Sec. IV-E: soundness under active wire tampering ----------
// A tampered frame re-encodes with a valid CRC, so the channel layer cannot
// catch it — the cryptographic layer must. In phase 2 the Schnorr proofs of
// key knowledge (and the element decoders behind them) are that layer: a
// bit-flipped proof or ciphertext must surface as a typed ProtocolFault at
// phase 2, never as an accepted proof or a silent wrong ranking.

TEST(ActiveTampering, TamperedPhase2TrafficIsATypedFault) {
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{501};
  FrameworkConfig cfg = make_config(*g, 4);
  net::FaultPlanConfig fpc;
  fpc.seed = 9;
  fpc.tamper = 1.0;   // flip one bit of every message...
  fpc.only_phase = 2; // ...but only in phase 2
  const net::FaultPlan plan{fpc};
  cfg.fault_plan = &plan;

  const AttrVec v0{1, 2}, w{3, 1};
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < cfg.n; ++j)
    infos.push_back(AttrVec{rng.below_u64(1u << cfg.spec.d1),
                            rng.below_u64(1u << cfg.spec.d1)});
  try {
    (void)run_framework(cfg, v0, w, infos, rng);
    FAIL() << "tampered phase-2 proofs were accepted";
  } catch (const ProtocolFault& pf) {
    EXPECT_EQ(pf.info().phase, runtime::Phase::kPhase2);
    EXPECT_GT(pf.report().stats.injected[static_cast<std::size_t>(
                  net::FaultKind::kTamper)],
              0u);
    // The channel saw nothing: detection happened above it.
    EXPECT_EQ(pf.report().stats.crc_detected, 0u);
  }
}

TEST(ActiveTampering, UntamperedPhasesStillVerify) {
  // Control: the same plan object restricted to a phase the run never
  // reaches with tampering (phase 3 carries the anonymized submissions) may
  // fault — but phases 1-2 tampering off means the proofs verify and the
  // protocol's own checks pass. This pins that the typed fault above is
  // caused by the tampering, not by the fault plumbing itself.
  const auto g = make_group(GroupId::kDlTest256);
  ChaChaRng rng{502};
  FrameworkConfig cfg = make_config(*g, 4);
  net::FaultPlanConfig fpc;
  fpc.seed = 9;
  fpc.delay = 0.5;  // enabled plan, payload-preserving faults only
  const net::FaultPlan plan{fpc};
  cfg.fault_plan = &plan;
  const AttrVec v0{1, 2}, w{3, 1};
  std::vector<AttrVec> infos;
  for (std::size_t j = 0; j < cfg.n; ++j)
    infos.push_back(AttrVec{rng.below_u64(1u << cfg.spec.d1),
                            rng.below_u64(1u << cfg.spec.d1)});
  const FrameworkResult res = run_framework(cfg, v0, w, infos, rng);
  EXPECT_EQ(res.ranks.size(), cfg.n);
}

}  // namespace
}  // namespace ppgr::core

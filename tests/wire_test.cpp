// Tests for the wire format and the protocol message codecs: round trips,
// canonical-encoding enforcement, truncation/garbage rejection, and
// agreement between codec sizes and the trace byte-accounting formulas.
#include <gtest/gtest.h>

#include <set>

#include "core/codec.h"
#include "crypto/codec.h"
#include "net/fault.h"
#include "runtime/wire.h"

namespace ppgr {
namespace {

using mpz::ChaChaRng;
using mpz::Nat;
using runtime::Reader;
using runtime::WireError;
using runtime::Writer;

TEST(Wire, PrimitiveRoundTrips) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(UINT64_MAX);
  const std::vector<std::uint8_t> blob{1, 2, 3};
  w.bytes(blob);
  w.nat(Nat::from_hex("deadbeefcafebabe123456"));

  Reader r{w.data()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), UINT64_MAX);
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.nat(), Nat::from_hex("deadbeefcafebabe123456"));
  EXPECT_NO_THROW(r.finish());
}

TEST(Wire, VarintBoundaries) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 35, UINT64_MAX}) {
    Writer w;
    w.varint(v);
    Reader r{w.data()};
    EXPECT_EQ(r.varint(), v);
    r.finish();
  }
}

TEST(Wire, RejectsTruncation) {
  Writer w;
  w.u64(42);
  const auto data = w.data();
  Reader r{std::span{data.data(), 4}};
  EXPECT_THROW((void)r.u64(), WireError);
}

TEST(Wire, RejectsNonCanonicalVarint) {
  // 0x80 0x00 encodes 0 with a redundant continuation byte.
  const std::uint8_t bad[] = {0x80, 0x00};
  Reader r{bad};
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Wire, RejectsOverlongVarint) {
  std::vector<std::uint8_t> bad(10, 0xFF);  // never terminates within 64 bits
  Reader r{bad};
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Wire, RejectsNonMinimalNat) {
  Writer w;
  const std::vector<std::uint8_t> padded{0x00, 0x01};  // leading zero
  w.bytes(padded);
  Reader r{w.data()};
  EXPECT_THROW((void)r.nat(), WireError);
}

TEST(Wire, RejectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r{w.data()};
  (void)r.u8();
  EXPECT_THROW(r.finish(), WireError);
}

TEST(Wire, RejectsLengthBombByteString) {
  Writer w;
  w.varint(1ULL << 40);  // claims a terabyte
  w.u8(0);
  Reader r{w.data()};
  EXPECT_THROW((void)r.bytes(), WireError);
}

TEST(Wire, ZeroNatRoundTrip) {
  Writer w;
  w.nat(Nat{});
  Reader r{w.data()};
  EXPECT_TRUE(r.nat().is_zero());
  r.finish();
}

// ---- crypto codecs ----

class CryptoCodec : public ::testing::TestWithParam<group::GroupId> {};

TEST_P(CryptoCodec, ElemAndCiphertextRoundTrip) {
  const auto g = group::make_group(GetParam());
  ChaChaRng rng{120};
  const auto kp = crypto::keygen(*g, rng);
  const auto ct = crypto::encrypt_exp(*g, kp.y, Nat{5}, rng);

  Writer w;
  crypto::write_elem(w, *g, kp.y);
  crypto::write_ciphertext(w, *g, ct);
  EXPECT_EQ(w.size(), crypto::elem_wire_bytes(*g) +
                          crypto::ciphertext_wire_bytes(*g));

  Reader r{w.data()};
  EXPECT_TRUE(g->eq(crypto::read_elem(r, *g), kp.y));
  const auto ct2 = crypto::read_ciphertext(r, *g);
  EXPECT_TRUE(g->eq(ct2.c, ct.c));
  EXPECT_TRUE(g->eq(ct2.cp, ct.cp));
  r.finish();
}

TEST_P(CryptoCodec, CiphertextVectorRoundTrip) {
  const auto g = group::make_group(GetParam());
  ChaChaRng rng{121};
  const auto kp = crypto::keygen(*g, rng);
  std::vector<crypto::Ciphertext> cts;
  for (int i = 0; i < 5; ++i)
    cts.push_back(crypto::encrypt_exp(*g, kp.y, Nat{static_cast<mpz::Limb>(i)}, rng));

  Writer w;
  crypto::write_ciphertexts(w, *g, cts);
  Reader r{w.data()};
  const auto back = crypto::read_ciphertexts(r, *g);
  r.finish();
  ASSERT_EQ(back.size(), cts.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    EXPECT_TRUE(g->eq(back[i].c, cts[i].c));
  }
}

TEST_P(CryptoCodec, CiphertextVectorRejectsLengthBomb) {
  const auto g = group::make_group(GetParam());
  Writer w;
  w.varint(1 << 30);
  Reader r{w.data()};
  EXPECT_THROW((void)crypto::read_ciphertexts(r, *g), WireError);
}

TEST_P(CryptoCodec, TranscriptRoundTripAndValidation) {
  const auto g = group::make_group(GetParam());
  ChaChaRng rng{122};
  const auto kp = crypto::keygen(*g, rng);
  const auto t = crypto::schnorr_prove(*g, kp.x, 3, rng);

  Writer w;
  crypto::write_transcript(w, *g, t);
  Reader r{w.data()};
  const auto t2 = crypto::read_transcript(r, *g);
  r.finish();
  EXPECT_TRUE(crypto::schnorr_verify(*g, kp.y, t2));

  // Out-of-range challenge rejected.
  crypto::SchnorrTranscript bad = t;
  bad.challenges[0] = g->order();
  Writer wb;
  crypto::write_transcript(wb, *g, bad);
  Reader rb{wb.data()};
  EXPECT_THROW((void)crypto::read_transcript(rb, *g), WireError);
}

TEST_P(CryptoCodec, CorruptedElementRejected) {
  // Flipping ciphertext bytes must yield a deserialization error (not a
  // silently wrong element) for the curve; for the Schnorr group flipping
  // can produce a non-residue, also rejected.
  const auto g = group::make_group(GetParam());
  ChaChaRng rng{123};
  const auto kp = crypto::keygen(*g, rng);
  Writer w;
  crypto::write_elem(w, *g, kp.y);
  auto data = w.take();
  bool rejected_any = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto corrupt = data;
    corrupt[corrupt.size() - 1 - static_cast<std::size_t>(attempt)] ^= 0x5A;
    Reader r{corrupt};
    try {
      (void)crypto::read_elem(r, *g);
    } catch (const std::invalid_argument&) {
      rejected_any = true;
    }
  }
  EXPECT_TRUE(rejected_any);
}

INSTANTIATE_TEST_SUITE_P(Groups, CryptoCodec,
                         ::testing::Values(group::GroupId::kDlTest256,
                                           group::GroupId::kEcP192),
                         [](const auto& info) {
                           std::string n = group::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ---- core codecs ----

TEST(CoreCodec, DotProductMessagesRoundTrip) {
  const auto& f = core::default_dot_field();
  ChaChaRng rng{124};
  dotprod::FVec wvec(6);
  for (auto& x : wvec) x = f.random(rng);
  const dotprod::DotProductBob bob{f, wvec, 4, rng};

  Writer w;
  core::write_bob_round1(w, f, bob.round1());
  // Codec size must match the trace accounting formula exactly (the comm
  // layer asserts measured == modeled bytes).
  EXPECT_EQ(w.size(), dotprod::bob_message_bytes(f, 4, 6));

  Reader r{w.data()};
  const auto m = core::read_bob_round1(r, f);
  r.finish();
  EXPECT_EQ(m.qx, bob.round1().qx);
  EXPECT_EQ(m.cprime, bob.round1().cprime);
  EXPECT_EQ(m.gvec, bob.round1().gvec);

  dotprod::FVec v(6);
  for (auto& x : v) x = f.random(rng);
  const auto reply = dotprod::dot_product_alice(f, m, v);
  Writer w2;
  core::write_alice_round2(w2, f, reply);
  EXPECT_EQ(w2.size(), dotprod::alice_message_bytes(f));
  Reader r2{w2.data()};
  const auto reply2 = core::read_alice_round2(r2, f);
  EXPECT_EQ(reply2.a, reply.a);
  EXPECT_EQ(reply2.h, reply.h);
}

TEST(CoreCodec, FieldElementRangeValidated) {
  const auto& f = core::default_dot_field();
  Writer w;
  w.raw(f.p().to_bytes_be((f.bits() + 7) / 8));  // == p, out of range
  Reader r{w.data()};
  EXPECT_THROW((void)core::read_field_elem(r, f), WireError);
}

TEST(CoreCodec, SubmissionRoundTripAndValidation) {
  const core::ProblemSpec spec{.m = 3, .t = 1, .d1 = 8, .d2 = 4, .h = 6};
  const core::Initiator::Submission s{.participant = 4, .claimed_rank = 2,
                                      .info = {10, 20, 30}};
  Writer w;
  core::write_submission(w, spec, s);
  // Fixed-width framing: the encoded size is the analytic accounting.
  EXPECT_EQ(w.size(), core::submission_wire_bytes(spec));
  Reader r{w.data()};
  const auto s2 = core::read_submission(r, spec);
  r.finish();
  EXPECT_EQ(s2.participant, 4u);
  EXPECT_EQ(s2.claimed_rank, 2u);
  EXPECT_EQ(s2.info, s.info);

  // Wrong dimension rejected (payload too short for a 4-attribute spec).
  const core::ProblemSpec other{.m = 4, .t = 1, .d1 = 8, .d2 = 4, .h = 6};
  Reader r2{w.data()};
  EXPECT_THROW((void)core::read_submission(r2, other), WireError);

  // Attribute exceeding d1 rejected at write time — the fixed-width
  // encoding would otherwise truncate it silently.
  core::Initiator::Submission wide = s;
  wide.info[0] = 300;  // > 2^8
  Writer w3;
  EXPECT_THROW(core::write_submission(w3, spec, wide), std::invalid_argument);

  // And at read time: bytes valid for a wide spec decode to an attribute
  // out of range for a narrower one.
  const core::ProblemSpec narrow{.m = 3, .t = 1, .d1 = 4, .d2 = 4, .h = 6};
  Writer w4;
  core::write_submission(w4, spec, core::Initiator::Submission{
                                       .participant = 4,
                                       .claimed_rank = 2,
                                       .info = {200, 20, 30}});
  Reader r4{w4.data()};
  EXPECT_THROW((void)core::read_submission(r4, narrow), std::invalid_argument);
}

// ---- boundary-value round trips ----
// The metered channels assert measured == modeled bytes, so the codecs must
// hold their fixed widths (and stay lossless) at the representational
// extremes, not just for typical values.

TEST(CodecBoundary, BetaWraparoundFieldElems) {
  // Phase 1 converts the dot-product result to an l-bit unsigned β via the
  // field's centered representation; exercise the codec at the 2^(l-1)
  // sign-wraparound values and their negated (near-p) representatives.
  const auto& f = core::default_dot_field();
  const std::size_t l = 12;
  // Signed β range is [-2^(l-1), 2^(l-1)); the centered field representative
  // of a negative β is p - |β|, so the negative half lives next to the
  // field's own upper boundary.
  std::vector<Nat> reps;
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, (std::uint64_t{1} << (l - 1)) - 1}) {
    reps.push_back(Nat{static_cast<mpz::Limb>(v)});  // β = v
    if (v != 0)
      reps.push_back(Nat::sub(f.p(), Nat{static_cast<mpz::Limb>(v)}));  // -v
  }
  reps.push_back(Nat::sub(
      f.p(), Nat{static_cast<mpz::Limb>(std::uint64_t{1} << (l - 1))}));
  for (const auto& rep : reps) {
    const Nat x = f.to(rep);
    Writer w;
    core::write_field_elem(w, f, x);
    EXPECT_EQ(w.size(), (f.bits() + 7) / 8);
    Reader r{w.data()};
    const Nat back = core::read_field_elem(r, f);
    r.finish();
    EXPECT_EQ(f.from(back), rep);
    // The decoded element yields the same l-bit β.
    EXPECT_EQ(core::signed_to_unsigned(f.from_centered(back), l),
              core::signed_to_unsigned(f.from_centered(x), l));
  }
}

class CodecBoundaryGroup : public ::testing::TestWithParam<group::GroupId> {};

TEST_P(CodecBoundaryGroup, IdentityElementRoundTrip) {
  // The comparison circuit builds trivial encryptions of zero from the
  // identity; both backends must round-trip it at the fixed element width.
  const auto g = group::make_group(GetParam());
  Writer w;
  crypto::write_elem(w, *g, g->identity());
  EXPECT_EQ(w.size(), crypto::elem_wire_bytes(*g));
  Reader r{w.data()};
  EXPECT_TRUE(g->eq(crypto::read_elem(r, *g), g->identity()));
  r.finish();

  const crypto::Ciphertext zero_ct{.c = g->identity(), .cp = g->identity()};
  Writer w2;
  crypto::write_ciphertext(w2, *g, zero_ct);
  EXPECT_EQ(w2.size(), crypto::ciphertext_wire_bytes(*g));
  Reader r2{w2.data()};
  const auto back = crypto::read_ciphertext(r2, *g);
  r2.finish();
  EXPECT_TRUE(g->eq(back.c, zero_ct.c));
  EXPECT_TRUE(g->eq(back.cp, zero_ct.cp));
}

TEST_P(CodecBoundaryGroup, ScalarBoundaries) {
  const auto g = group::make_group(GetParam());
  const std::size_t sb = crypto::scalar_wire_bytes(*g);
  for (const Nat& s : {Nat{}, Nat{1}, Nat::sub(g->order(), Nat{1})}) {
    Writer w;
    crypto::write_scalar(w, *g, s);
    EXPECT_EQ(w.size(), sb);
    Reader r{w.data()};
    EXPECT_EQ(crypto::read_scalar(r, *g), s);
    r.finish();
  }
  // The order itself is out of range.
  Writer w;
  crypto::write_scalar(w, *g, g->order());
  Reader r{w.data()};
  EXPECT_THROW((void)crypto::read_scalar(r, *g), WireError);
}

TEST_P(CodecBoundaryGroup, CiphertextSeqFixedWidth) {
  // The unprefixed sequence framing carries the bulk phase-2 traffic; its
  // size must be exactly count * ciphertext_wire_bytes and a short buffer
  // must be rejected, not mis-framed.
  const auto g = group::make_group(GetParam());
  ChaChaRng rng{321};
  const auto kp = crypto::keygen(*g, rng);
  std::vector<crypto::Ciphertext> cts;
  for (int i = 0; i < 4; ++i)
    cts.push_back(
        crypto::encrypt_exp(*g, kp.y, Nat{static_cast<mpz::Limb>(i)}, rng));
  Writer w;
  crypto::write_ciphertext_seq(w, *g, cts);
  EXPECT_EQ(w.size(), cts.size() * crypto::ciphertext_wire_bytes(*g));
  Reader r{w.data()};
  const auto back = crypto::read_ciphertext_seq(r, *g, cts.size());
  r.finish();
  for (std::size_t i = 0; i < cts.size(); ++i)
    EXPECT_TRUE(g->eq(back[i].c, cts[i].c));
  Reader r2{w.data()};
  EXPECT_THROW((void)crypto::read_ciphertext_seq(r2, *g, cts.size() + 2),
               WireError);
}

INSTANTIATE_TEST_SUITE_P(Groups, CodecBoundaryGroup,
                         ::testing::Values(group::GroupId::kDlTest256,
                                           group::GroupId::kEcP192),
                         [](const auto& info) {
                           std::string n = group::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(CodecBoundary, MaxWidthNatRoundTrip) {
  // The length-prefixed nat codec must survive ciphertext-sized integers
  // (a Paillier ciphertext modulo N^2 is ~2·|N| — take 4096 bits, every
  // byte 0xFF) as well as the minimal-encoding edge next to it.
  std::vector<std::uint8_t> big(512, 0xFF);
  const Nat huge = Nat::from_bytes_be(big);
  Writer w;
  w.nat(huge);
  Reader r{w.data()};
  EXPECT_EQ(r.nat(), huge);
  r.finish();

  // One leading zero byte on the same value must be rejected (canonical
  // minimal encoding).
  Writer w2;
  std::vector<std::uint8_t> padded(513, 0xFF);
  padded[0] = 0x00;
  w2.bytes(padded);
  Reader r2{w2.data()};
  EXPECT_THROW((void)r2.nat(), WireError);
}

// ---- Fault-layer frame codec hardening ----
// The CRC32 frame that carries payloads under a fault plan sits below the
// message codecs above; its decoder must hold the same line they do — a
// malformed buffer is a typed error, never UB or a silent wrong answer.

TEST(FrameFuzz, RandomTruncationPointsAreTypedErrors) {
  ChaChaRng rng{2024};
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = 1 + rng.below_u64(96);
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below_u64(256));
    const std::vector<std::uint8_t> framed =
        net::encode_frame(static_cast<std::uint32_t>(iter), payload);

    const std::size_t cut = rng.below_u64(framed.size());  // < full length
    std::vector<std::uint8_t> chopped(
        framed.begin(), framed.begin() + static_cast<long>(cut));
    try {
      (void)net::decode_frame(chopped);
      FAIL() << "iter " << iter << ": truncation to " << cut
             << " of " << framed.size() << " bytes not rejected";
    } catch (const net::ChannelError& e) {
      EXPECT_EQ(e.kind(), net::ChannelErrorKind::kBadFrame);
    }
  }
}

TEST(FrameFuzz, RandomGarbageNeverEscapesTyped) {
  // Arbitrary byte soup must either decode (with crc_ok telling the truth)
  // or throw the typed bad-frame error; any other exception fails the test.
  ChaChaRng rng{2025};
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> soup(rng.below_u64(64));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below_u64(256));
    try {
      const net::Frame f = net::decode_frame(soup);
      // Decoded: the length field agreed with the buffer. A random 32-bit
      // CRC almost never matches, but either value is legal here.
      EXPECT_EQ(f.payload.size(), soup.size() - net::kFrameHeaderBytes);
    } catch (const net::ChannelError& e) {
      EXPECT_EQ(e.kind(), net::ChannelErrorKind::kBadFrame);
    }
  }
}

TEST(FrameFuzz, BitFlipsNeverForgeACleanFrame) {
  ChaChaRng rng{2026};
  std::vector<std::uint8_t> payload(32);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below_u64(256));
  const std::vector<std::uint8_t> framed = net::encode_frame(9, payload);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> bad = framed;
    // Flip 1-3 DISTINCT payload bits (a repeated flip would cancel out):
    // CRC32's minimum distance catches every such error at this length.
    std::set<std::size_t> bits;
    const std::size_t flips = 1 + rng.below_u64(3);
    while (bits.size() < flips) bits.insert(rng.below_u64(payload.size() * 8));
    for (const std::size_t bit : bits)
      bad[net::kFrameHeaderBytes + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
    const net::Frame f = net::decode_frame(bad);
    EXPECT_FALSE(f.crc_ok) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ppgr

// Differential crypto harness for the phase-2 multi-exponentiation engine
// (PR 6): Straus, Pippenger, the auto-selecting multi_exp() dispatcher and
// the windowed FixedBaseTable must all agree bit-for-bit with the naive
// per-term Group::exp evaluation, on every group family the framework runs
// over — mock (composite order), Schnorr (unique Montgomery representation)
// and elliptic-curve (non-unique Jacobian representation, compared through
// eq() and the canonical serialization). Edge exponents cover the window
// boundaries the algorithms digit-slice at: 0, 1, 2^w - 1, and order +/- 1.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "group/fixed_base.h"
#include "group/mock_group.h"
#include "group/multi_exp.h"

namespace ppgr::group {
namespace {

using mpz::ChaChaRng;
using mpz::Nat;

/// Naive reference: Π_i bases[i]^exps[i] one exp at a time.
Elem naive_product(const Group& g, const std::vector<Elem>& bases,
                   const std::vector<Nat>& exps) {
  Elem acc = g.identity();
  for (std::size_t i = 0; i < bases.size(); ++i)
    acc = g.mul(acc, g.exp(bases[i], exps[i]));
  return acc;
}

/// eq() plus canonical-encoding equality: EC results may differ in Jacobian
/// representation, but the wire bytes (what crosses between parties) must
/// match exactly.
void expect_same(const Group& g, const Elem& got, const Elem& want,
                 const char* what) {
  EXPECT_TRUE(g.eq(got, want)) << what;
  EXPECT_EQ(g.serialize(got), g.serialize(want)) << what;
}

/// The edge exponents every algorithm must digit-slice correctly: zero (no
/// windows at all), one, a full bottom window (2^4 - 1 for the default
/// w = 4), and the wrap-around neighborhood of the group order.
std::vector<Nat> edge_exponents(const Group& g) {
  return {Nat{}, Nat{1}, Nat{15}, Nat::sub(g.order(), Nat{1}), g.order(),
          Nat::add(g.order(), Nat{1})};
}

class MultiExpTest : public ::testing::TestWithParam<const char*> {
 protected:
  MultiExpTest() {
    const std::string which = GetParam();
    if (which == "mock") {
      g_ = std::make_unique<MockGroup>("mock", 32, 61);
    } else if (which == "schnorr") {
      g_ = make_group(GroupId::kDlTest256);
    } else {
      g_ = make_group(GroupId::kEcP192);
    }
  }

  /// k random bases with random scalars.
  void random_terms(std::size_t k, std::vector<Elem>& bases,
                    std::vector<Nat>& exps) {
    for (std::size_t i = 0; i < k; ++i) {
      bases.push_back(g_->exp_g(g_->random_nonzero_scalar(rng_)));
      exps.push_back(g_->random_nonzero_scalar(rng_));
    }
  }

  std::unique_ptr<Group> g_;
  ChaChaRng rng_{42};
};

TEST_P(MultiExpTest, ZeroTermsYieldIdentity) {
  const std::vector<Elem> bases;
  const std::vector<Nat> exps;
  EXPECT_TRUE(g_->is_identity(multi_exp(*g_, bases, exps)));
  EXPECT_TRUE(g_->is_identity(multi_exp_straus(*g_, bases, exps)));
  EXPECT_TRUE(g_->is_identity(multi_exp_pippenger(*g_, bases, exps)));
}

TEST_P(MultiExpTest, SingleTermMatchesExpOnEdgeExponents) {
  for (const Nat& e : edge_exponents(*g_)) {
    const std::vector<Elem> bases{g_->exp_g(g_->random_nonzero_scalar(rng_))};
    const std::vector<Nat> exps{e};
    const Elem want = naive_product(*g_, bases, exps);
    expect_same(*g_, multi_exp(*g_, bases, exps), want, "dispatch");
    expect_same(*g_, multi_exp_straus(*g_, bases, exps), want, "straus");
    expect_same(*g_, multi_exp_pippenger(*g_, bases, exps), want, "pippenger");
  }
}

TEST_P(MultiExpTest, TwoTermsTheProtocolShape) {
  // The phase-2 hot path always fuses exactly two terms (ω accumulation,
  // shuffle-hop rerandomization) — the shape that must be airtight. Pair
  // every edge exponent with every other, plus random fill.
  const auto edges = edge_exponents(*g_);
  for (const Nat& e0 : edges) {
    for (const Nat& e1 : edges) {
      std::vector<Elem> bases;
      std::vector<Nat> exps;
      random_terms(2, bases, exps);
      exps[0] = e0;
      exps[1] = e1;
      const Elem want = naive_product(*g_, bases, exps);
      expect_same(*g_, multi_exp(*g_, bases, exps), want, "dispatch");
      expect_same(*g_, multi_exp_straus(*g_, bases, exps), want, "straus");
      expect_same(*g_, multi_exp_pippenger(*g_, bases, exps), want,
                  "pippenger");
    }
  }
}

TEST_P(MultiExpTest, RandomBatchesAcrossTheAlgorithmSwitch) {
  // Straus side (k <= kStrausMaxTerms), the boundary itself, and the first
  // Pippenger size — all against the naive product.
  for (const std::size_t k :
       {std::size_t{3}, std::size_t{8}, kStrausMaxTerms, kStrausMaxTerms + 1,
        std::size_t{40}}) {
    std::vector<Elem> bases;
    std::vector<Nat> exps;
    random_terms(k, bases, exps);
    const Elem want = naive_product(*g_, bases, exps);
    expect_same(*g_, multi_exp(*g_, bases, exps), want, "dispatch");
    expect_same(*g_, multi_exp_straus(*g_, bases, exps), want, "straus");
    expect_same(*g_, multi_exp_pippenger(*g_, bases, exps), want, "pippenger");
  }
}

TEST_P(MultiExpTest, StrausWindowWidthsAllAgree) {
  std::vector<Elem> bases;
  std::vector<Nat> exps;
  random_terms(5, bases, exps);
  exps[0] = Nat{};  // keep one all-zero column in the digit matrix
  const Elem want = naive_product(*g_, bases, exps);
  for (std::size_t w = 1; w <= 8; ++w)
    expect_same(*g_, multi_exp_straus(*g_, bases, exps, w), want, "straus w");
}

TEST_P(MultiExpTest, SizeMismatchThrows) {
  const std::vector<Elem> bases{g_->generator()};
  const std::vector<Nat> exps;
  EXPECT_THROW((void)multi_exp(*g_, bases, exps), std::invalid_argument);
  EXPECT_THROW((void)multi_exp_straus(*g_, bases, exps), std::invalid_argument);
  EXPECT_THROW((void)multi_exp_pippenger(*g_, bases, exps),
               std::invalid_argument);
}

TEST_P(MultiExpTest, StrausRejectsBadWindow) {
  std::vector<Elem> bases;
  std::vector<Nat> exps;
  random_terms(1, bases, exps);
  EXPECT_THROW((void)multi_exp_straus(*g_, bases, exps, 0),
               std::invalid_argument);
  EXPECT_THROW((void)multi_exp_straus(*g_, bases, exps, 9),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllGroups, MultiExpTest,
                         ::testing::Values("mock", "schnorr", "ec"),
                         [](const auto& info) { return std::string{info.param}; });

TEST(MultiExpLarge, FourThousandTermsPippenger) {
  // The ISSUE's large shape: 4096 terms, deep in Pippenger territory where
  // the bucket count and suffix-sum accumulation are fully exercised. Mock
  // (61-bit) and the test Schnorr group keep the naive reference affordable.
  for (const bool schnorr : {false, true}) {
    std::unique_ptr<Group> g;
    if (schnorr)
      g = make_group(GroupId::kDlTest256);
    else
      g = std::make_unique<MockGroup>("mock", 32, 61);
    ChaChaRng rng{7};
    std::vector<Elem> bases;
    std::vector<Nat> exps;
    for (std::size_t i = 0; i < 4096; ++i) {
      bases.push_back(g->exp_g(g->random_nonzero_scalar(rng)));
      // Sprinkle edge exponents through the batch so some buckets stay empty.
      exps.push_back(i % 97 == 0 ? Nat{} : g->random_nonzero_scalar(rng));
    }
    Elem want = g->identity();
    for (std::size_t i = 0; i < bases.size(); ++i)
      want = g->mul(want, g->exp(bases[i], exps[i]));
    const Elem got = multi_exp(*g, bases, exps);
    EXPECT_TRUE(g->eq(got, want)) << g->name();
    EXPECT_EQ(g->serialize(got), g->serialize(want)) << g->name();
  }
}

class FixedBaseTest : public MultiExpTest {};

TEST_P(FixedBaseTest, TableMatchesGenericExpAcrossWidths) {
  const Elem base = g_->exp_g(g_->random_nonzero_scalar(rng_));
  const std::size_t bits = g_->order().bit_length();
  std::vector<Nat> scalars = edge_exponents(*g_);
  for (int i = 0; i < 4; ++i) scalars.push_back(g_->random_nonzero_scalar(rng_));
  for (std::size_t w = 2; w <= 8; ++w) {
    const FixedBaseTable table{*g_, base, bits, w};
    EXPECT_EQ(table.window_bits(), w);
    for (const Nat& s : scalars)
      expect_same(*g_, table.exp(*g_, s), g_->exp(base, s), "fixed-base");
  }
}

TEST_P(FixedBaseTest, WiderScalarFallsBackToGenericExp) {
  // A table sized for 16-bit scalars asked for a full-width power: must
  // fall back to the group's generic ladder, not truncate the scalar.
  const Elem base = g_->exp_g(g_->random_nonzero_scalar(rng_));
  const FixedBaseTable table{*g_, base, 16};
  const Nat wide = Nat::add(g_->order(), Nat{2});
  expect_same(*g_, table.exp(*g_, wide), g_->exp(base, wide), "fallback");
}

TEST_P(FixedBaseTest, RejectsOutOfRangeWindow) {
  EXPECT_THROW((FixedBaseTable{*g_, g_->generator(), 64, 1}),
               std::invalid_argument);
  EXPECT_THROW((FixedBaseTable{*g_, g_->generator(), 64, 9}),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllGroups, FixedBaseTest,
                         ::testing::Values("mock", "schnorr", "ec"),
                         [](const auto& info) { return std::string{info.param}; });

}  // namespace
}  // namespace ppgr::group

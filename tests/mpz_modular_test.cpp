// Tests for modular arithmetic: Montgomery context, Barrett reduction,
// gcd/invmod/powmod/jacobi/sqrtmod, primality and the Fp field context.
#include <gmpxx.h>
#include <gtest/gtest.h>

#include "mpz/fp.h"
#include "mpz/modarith.h"
#include "mpz/mont.h"
#include "mpz/prime.h"
#include "mpz/rng.h"

namespace ppgr::mpz {
namespace {

mpz_class to_gmp(const Nat& n) { return mpz_class{n.to_hex(), 16}; }
Nat from_gmp(const mpz_class& g) { return Nat::from_hex(g.get_str(16)); }

// A handful of moduli covering 1..many limbs, odd.
std::vector<Nat> test_moduli() {
  return {
      Nat{3},
      Nat{65537},
      Nat::from_hex("ffffffffffffffc5"),                      // < 2^64 prime
      Nat::from_hex("100000000000000000000000000000033"),     // 2^128 + 51, prime
      Nat::from_dec("57896044618658097711785492504343953926634992332820282019728792003956564819949"),  // 2^255-19
  };
}

TEST(Mont, RejectsEvenModulus) {
  EXPECT_THROW(MontCtx{Nat{10}}, std::invalid_argument);
  EXPECT_THROW(MontCtx{Nat{1}}, std::invalid_argument);
}

TEST(Mont, RoundTrip) {
  for (const Nat& m : test_moduli()) {
    const MontCtx ctx{m};
    ChaChaRng rng{m.to_limb()};
    for (int i = 0; i < 20; ++i) {
      const Nat a = rng.below(m);
      EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
    }
  }
}

TEST(Mont, MulMatchesGmp) {
  for (const Nat& m : test_moduli()) {
    const MontCtx ctx{m};
    ChaChaRng rng{m.to_limb() + 1};
    const mpz_class gm = to_gmp(m);
    for (int i = 0; i < 20; ++i) {
      const Nat a = rng.below(m), b = rng.below(m);
      const Nat r = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
      EXPECT_EQ(to_gmp(r), to_gmp(a) * to_gmp(b) % gm);
    }
  }
}

TEST(Mont, ExpMatchesGmp) {
  for (const Nat& m : test_moduli()) {
    const MontCtx ctx{m};
    ChaChaRng rng{m.to_limb() + 2};
    const mpz_class gm = to_gmp(m);
    for (int i = 0; i < 8; ++i) {
      const Nat base = rng.below(m);
      const Nat e = rng.bits(1 + rng.below_u64(300));
      const Nat r = ctx.from_mont(ctx.exp(ctx.to_mont(base), e));
      mpz_class expect;
      const mpz_class gb = to_gmp(base), ge = to_gmp(e);
      mpz_powm(expect.get_mpz_t(), gb.get_mpz_t(), ge.get_mpz_t(),
               gm.get_mpz_t());
      EXPECT_EQ(to_gmp(r), expect);
    }
  }
}

TEST(Mont, ExpEdgeCases) {
  const MontCtx ctx{Nat{101}};
  const Nat g = ctx.to_mont(Nat{5});
  EXPECT_EQ(ctx.from_mont(ctx.exp(g, Nat{})), Nat{1});       // e = 0
  EXPECT_EQ(ctx.from_mont(ctx.exp(g, Nat{1})), Nat{5});      // e = 1
  EXPECT_EQ(ctx.from_mont(ctx.exp(g, Nat{100})), Nat{1});    // Fermat
  EXPECT_EQ(ctx.from_mont(ctx.exp(ctx.to_mont(Nat{}), Nat{9})), Nat{});
}

TEST(Barrett, MatchesDivrem) {
  for (const Nat& m : test_moduli()) {
    const BarrettCtx ctx{m};
    ChaChaRng rng{m.to_limb() + 3};
    for (int i = 0; i < 30; ++i) {
      // a < m^2 as required.
      const Nat a = rng.below(m * m);
      EXPECT_EQ(ctx.reduce(a), a % m);
    }
  }
}

TEST(ModArith, Gcd) {
  EXPECT_EQ(gcd(Nat{12}, Nat{18}), Nat{6});
  EXPECT_EQ(gcd(Nat{}, Nat{5}), Nat{5});
  EXPECT_EQ(gcd(Nat{5}, Nat{}), Nat{5});
  EXPECT_EQ(gcd(Nat{7}, Nat{13}), Nat{1});
  ChaChaRng rng{11};
  for (int i = 0; i < 30; ++i) {
    const Nat a = rng.bits(200), b = rng.bits(180);
    mpz_class g;
    const mpz_class ga = to_gmp(a), gb = to_gmp(b);
    mpz_gcd(g.get_mpz_t(), ga.get_mpz_t(), gb.get_mpz_t());
    EXPECT_EQ(to_gmp(gcd(a, b)), g);
  }
}

TEST(ModArith, InvMod) {
  ChaChaRng rng{12};
  for (const Nat& m : test_moduli()) {
    for (int i = 0; i < 15; ++i) {
      const Nat a = rng.nonzero_below(m);
      const auto inv = invmod(a, m);
      ASSERT_TRUE(inv.has_value());
      EXPECT_EQ(Nat::mul(a, *inv) % m, Nat{1});
    }
  }
  // Non-invertible.
  EXPECT_FALSE(invmod(Nat{6}, Nat{9}).has_value());
  EXPECT_FALSE(invmod(Nat{}, Nat{9}).has_value());
}

TEST(ModArith, PowmodEvenModulus) {
  ChaChaRng rng{13};
  const Nat m = Nat::from_hex("10000000000000000000000");  // even
  for (int i = 0; i < 10; ++i) {
    const Nat b = rng.below(m), e = rng.bits(90);
    mpz_class expect;
    const mpz_class gb = to_gmp(b), ge = to_gmp(e), gm = to_gmp(m);
    mpz_powm(expect.get_mpz_t(), gb.get_mpz_t(), ge.get_mpz_t(), gm.get_mpz_t());
    EXPECT_EQ(to_gmp(powmod(b, e, m)), expect);
  }
}

TEST(ModArith, Jacobi) {
  // (a/p) for prime p equals Legendre; spot-check with Euler's criterion.
  ChaChaRng rng{14};
  const Nat p = Nat::from_hex("ffffffffffffffc5");
  for (int i = 0; i < 40; ++i) {
    const Nat a = rng.nonzero_below(p);
    const Nat euler = powmod(a, Nat::sub(p, Nat{1}).shr(1), p);
    const int expect = euler.is_one() ? 1 : -1;
    EXPECT_EQ(jacobi(a, p), expect);
  }
  EXPECT_EQ(jacobi(Nat{}, Nat{7}), 0);
  EXPECT_EQ(jacobi(Nat{14}, Nat{7}), 0);
  EXPECT_THROW((void)jacobi(Nat{3}, Nat{8}), std::invalid_argument);
}

TEST(ModArith, SqrtMod) {
  ChaChaRng rng{15};
  // Covers both p%4==3 (fast path) and p%4==1 (full Tonelli–Shanks).
  for (const char* ps : {"ffffffffffffffc5", "f7e75fdc469067ffdc4e847c51f452df"}) {
    const Nat p = Nat::from_hex(ps);
    for (int i = 0; i < 25; ++i) {
      const Nat x = rng.below(p);
      const Nat sq = Nat::mul(x, x) % p;
      const auto root = sqrtmod(sq, p);
      ASSERT_TRUE(root.has_value());
      EXPECT_EQ(Nat::mul(*root, *root) % p, sq);
    }
    // A non-residue has no root.
    Nat z{2};
    while (jacobi(z, p) != -1) z += Nat{1};
    EXPECT_FALSE(sqrtmod(z, p).has_value());
  }
}

TEST(Prime, SmallKnownValues) {
  ChaChaRng rng{16};
  EXPECT_FALSE(is_probable_prime(Nat{}, rng));
  EXPECT_FALSE(is_probable_prime(Nat{1}, rng));
  EXPECT_TRUE(is_probable_prime(Nat{2}, rng));
  EXPECT_TRUE(is_probable_prime(Nat{97}, rng));
  EXPECT_FALSE(is_probable_prime(Nat{100}, rng));
  EXPECT_TRUE(is_probable_prime(Nat{101}, rng));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(is_probable_prime(Nat{561}, rng));
  // Large known prime 2^255 - 19.
  EXPECT_TRUE(is_probable_prime(
      Nat::from_dec("5789604461865809771178549250434395392663499233282028201972"
                    "8792003956564819949"),
      rng));
  // 2^256 - 1 is composite.
  EXPECT_FALSE(is_probable_prime(Nat::sub(Nat::pow2(256), Nat{1}), rng));
}

TEST(Prime, RandomPrimeHasExactWidthAndIsPrime) {
  ChaChaRng rng{17};
  for (std::size_t bits : {16u, 64u, 128u, 256u}) {
    const Nat p = random_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, SafePrimeStructure) {
  ChaChaRng rng{18};
  const Nat p = random_safe_prime(64, rng);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(is_probable_prime(p, rng));
  const Nat q = Nat::sub(p, Nat{1}).shr(1);
  EXPECT_TRUE(is_probable_prime(q, rng));
}

// ---- Fp field context ----

class FpLaws : public ::testing::TestWithParam<const char*> {};

TEST_P(FpLaws, FieldAxioms) {
  const FpCtx f{Nat::from_hex(GetParam())};
  ChaChaRng rng{f.p().to_limb()};
  for (int i = 0; i < 25; ++i) {
    const Nat a = f.random(rng), b = f.random(rng), c = f.random(rng);
    // Commutativity, associativity, distributivity.
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    // Identities and inverses.
    EXPECT_EQ(f.add(a, f.zero()), a);
    EXPECT_EQ(f.mul(a, f.one()), a);
    EXPECT_EQ(f.add(a, f.neg(a)), f.zero());
    EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
    if (!f.is_zero(a)) {
      EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
      EXPECT_EQ(f.div(f.mul(a, b), a), b);
    }
    EXPECT_EQ(f.sqr(a), f.mul(a, a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, FpLaws,
    ::testing::Values("d",                                    // tiny
                      "ffffffffffffffc5",                     // 64-bit
                      "fffffffffffffffffffffffffffffffeffffffffffffffff"  // P-192 field
                      ));

TEST(Fp, SignedConversionCentering) {
  const FpCtx f{Nat{101}};
  EXPECT_EQ(f.from_centered(f.to_signed(Int{-3})).to_i64(), -3);
  EXPECT_EQ(f.from_centered(f.to_signed(Int{50})).to_i64(), 50);
  EXPECT_EQ(f.from_centered(f.to_signed(Int{-50})).to_i64(), -50);
  EXPECT_EQ(f.from_centered(f.to_signed(Int{0})).to_i64(), 0);
  // 51 wraps to -50 when centered.
  EXPECT_EQ(f.from_centered(f.to(Nat{51})).to_i64(), -50);
}

TEST(Fp, InvZeroThrows) {
  const FpCtx f{Nat{101}};
  EXPECT_THROW((void)f.inv(f.zero()), std::domain_error);
}

TEST(Fp, SqrtInField) {
  const FpCtx f{Nat::from_hex("ffffffffffffffc5")};
  ChaChaRng rng{77};
  for (int i = 0; i < 20; ++i) {
    const Nat x = f.random(rng);
    const auto r = f.sqrt(f.sqr(x));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(f.sqr(*r), f.sqr(x));
  }
}

TEST(Fp, FromGmpHelperIsSane) {
  // Guard the oracle glue itself.
  const mpz_class g{"123456789abcdef", 16};
  EXPECT_EQ(to_gmp(from_gmp(g)), g);
}

}  // namespace
}  // namespace ppgr::mpz

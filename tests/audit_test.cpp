// Live model-conformance audit and the wide-event session log.
//
// Pins the acceptance contract of the audit layer:
//  - a clean fig2a-preset run audits to ZERO findings for both frameworks
//    (the differential reference / closed form really is an exact model);
//  - an injected-fault chaos run is flagged with a typed finding naming the
//    phase, and a degrade-on-dropout continuation with the dropped parties;
//  - tampered counters produce typed kPhaseOps findings (the drift path);
//  - audit drift escalates engine health to degraded;
//  - the "ppgr.session.v1" wide event and the atomic "ppgr.postmortem.v1"
//    bundle render the result faithfully;
//  - with audit + flight ON, every deterministic export stays bit-identical
//    to a run with them OFF (the observation-only contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/audit.h"
#include "engine/engine.h"
#include "engine/introspect.h"
#include "engine/session_log.h"

namespace ppgr::engine {
namespace {

using core::AttrVec;
using core::ProblemSpec;
using mpz::ChaChaRng;

// The fig2a preset (bench/engine_throughput): m=4, t=2, d1=8, d2=6, h=8.
RankingRequest fig2a_request(std::uint64_t sid, std::size_t n, std::size_t k,
                             FrameworkKind kind = FrameworkKind::kHe) {
  RankingRequest req;
  req.session_id = sid;
  req.framework = kind;
  req.spec = ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
  req.k = k;
  ChaChaRng rng{4242 + sid};
  req.v0.resize(req.spec.m);
  req.w.resize(req.spec.m);
  for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
  for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
  for (std::size_t j = 0; j < n; ++j) {
    AttrVec v(req.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    req.infos.push_back(std::move(v));
  }
  return req;
}

SessionResult run_one(RankingRequest req, bool audit, std::size_t flight = 0) {
  EngineConfig cfg;
  cfg.seed = 7;
  cfg.audit = audit;
  cfg.flight_events = flight;
  SessionEngine eng{cfg};
  const std::uint64_t id = eng.submit(std::move(req));
  return eng.take(id);
}

TEST(ConformanceAudit, CleanFig2aHeRunHasZeroFindings) {
  const SessionResult res =
      run_one(fig2a_request(1, /*n=*/8, /*k=*/3), /*audit=*/true);
  EXPECT_EQ(res.outcome, SessionOutcome::kOk);
  ASSERT_NE(res.audit, nullptr);
  EXPECT_TRUE(res.audit->clean());
  EXPECT_STREQ(res.audit->verdict(), "clean");
  EXPECT_FALSE(res.audit->ss);
  // Every check family actually ran: 3 phase boundaries + run_complete.
  EXPECT_EQ(res.audit->checkpoints, 4u);
  EXPECT_GT(res.audit->checks, 10u);
}

TEST(ConformanceAudit, CleanFig2aSsRunHasZeroFindings) {
  const SessionResult res = run_one(
      fig2a_request(1, /*n=*/8, /*k=*/3, FrameworkKind::kSs), /*audit=*/true);
  EXPECT_EQ(res.outcome, SessionOutcome::kOk);
  ASSERT_NE(res.audit, nullptr);
  EXPECT_TRUE(res.audit->clean());
  EXPECT_TRUE(res.audit->ss);
  EXPECT_EQ(res.audit->checkpoints, 4u);
  EXPECT_GT(res.audit->checks, 0u);
}

TEST(ConformanceAudit, AuditOffLeavesResultWithoutReport) {
  const SessionResult res =
      run_one(fig2a_request(1, /*n=*/4, /*k=*/2), /*audit=*/false);
  EXPECT_EQ(res.audit, nullptr);
  EXPECT_EQ(res.flight, nullptr);
}

// The injected-tamper path: a session killed by the chaos layer must carry
// a typed incompleteness finding NAMING the phase it died in.
TEST(ConformanceAudit, FaultedRunIsFlaggedWithPhase) {
  RankingRequest req = fig2a_request(1, /*n=*/4, /*k=*/2);
  req.fault_plan = net::parse_fault_plan("seed=7,crash=2@1");
  const SessionResult res = run_one(std::move(req), /*audit=*/true,
                                    /*flight=*/256);
  EXPECT_EQ(res.outcome, SessionOutcome::kFault);
  ASSERT_NE(res.audit, nullptr);
  EXPECT_STREQ(res.audit->verdict(), "incomplete");
  ASSERT_EQ(res.audit->findings.size(), 1u);
  const AuditFinding& f = res.audit->findings[0];
  EXPECT_EQ(f.kind, AuditCheckKind::kIncomplete);
  EXPECT_EQ(f.phase, runtime::Phase::kPhase1);
  EXPECT_EQ(f.key, "fault");
  EXPECT_NE(f.detail.find("phase1"), std::string::npos);
  // The flight ring survived the unwind and saw the fault event.
  ASSERT_NE(res.flight, nullptr);
  bool saw_fault = false;
  for (const runtime::FlightEvent& e : res.flight->events())
    saw_fault = saw_fault || e.kind == runtime::FlightEventKind::kFault;
  EXPECT_TRUE(saw_fault);
}

TEST(ConformanceAudit, DegradedRunNamesDroppedParties) {
  RankingRequest req = fig2a_request(1, /*n=*/4, /*k=*/2);
  req.fault_plan = net::parse_fault_plan("seed=7,crash=2@1");
  req.degrade_on_dropout = true;
  const SessionResult res = run_one(std::move(req), /*audit=*/true);
  EXPECT_EQ(res.outcome, SessionOutcome::kOk);  // survivors still ranked
  ASSERT_NE(res.audit, nullptr);
  EXPECT_STREQ(res.audit->verdict(), "incomplete");
  ASSERT_EQ(res.audit->findings.size(), 1u);
  const AuditFinding& f = res.audit->findings[0];
  EXPECT_EQ(f.kind, AuditCheckKind::kIncomplete);
  EXPECT_EQ(f.key, "degrade");
  EXPECT_NE(f.detail.find("P2"), std::string::npos);
  EXPECT_EQ(f.expected, 4u);
  EXPECT_EQ(f.measured, 3u);
}

// Tampered counters: feed the auditor a metrics view whose phase-1 tally
// disagrees with the closed form and expect a typed kPhaseOps finding.
TEST(ConformanceAudit, TamperedCountersProduceTypedDrift) {
  ConformanceAuditor::Config cfg;
  cfg.ss = true;  // closed form, no reference run needed
  cfg.spec = ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
  cfg.n = 3;
  ConformanceAuditor auditor{cfg, AttrVec(4, 1), AttrVec(4, 1),
                             std::vector<AttrVec>(3, AttrVec(4, 1)),
                             ChaChaRng{1}};
  runtime::MetricsRegistry tampered;
  using runtime::CryptoOp;
  using runtime::Phase;
  tampered.add(Phase::kPhase1, 0, CryptoOp::kDotprodQuery, 3);
  tampered.add(Phase::kPhase1, 0, CryptoOp::kDotprodAnswer, 2);  // one short
  tampered.add(Phase::kPhase1, 0, CryptoOp::kDotprodFinish, 3);
  auditor.phase_complete(Phase::kPhase1, &tampered, nullptr);
  const AuditReport& report = auditor.report();
  EXPECT_STREQ(report.verdict(), "drift");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, AuditCheckKind::kPhaseOps);
  EXPECT_EQ(report.findings[0].phase, Phase::kPhase1);
  EXPECT_EQ(report.findings[0].expected, 3u);
  EXPECT_EQ(report.findings[0].measured, 2u);
  // The report serializes with the typed finding in place.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"ppgr.audit.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"phase_ops\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"drift\""), std::string::npos);
}

// Engine health: a session whose audit report carries findings (here via a
// degrade continuation — no protocol fault, so `faulted` stays 0) must
// escalate the snapshot and the health document to degraded.
TEST(ConformanceAudit, AuditDriftDegradesEngineHealth) {
  EngineConfig cfg;
  cfg.seed = 7;
  cfg.audit = true;
  SessionEngine eng{cfg};
  RankingRequest req = fig2a_request(1, /*n=*/4, /*k=*/2);
  req.fault_plan = net::parse_fault_plan("seed=7,crash=2@1");
  req.degrade_on_dropout = true;
  const std::uint64_t id = eng.submit(std::move(req));
  const SessionResult res = eng.take(id);
  ASSERT_NE(res.audit, nullptr);
  ASSERT_FALSE(res.audit->clean());

  const EngineSnapshot snap = snapshot(eng, /*stall_deadline_s=*/5.0);
  EXPECT_EQ(snap.faulted, 0u);
  EXPECT_EQ(snap.audit_drift, 1u);
  EXPECT_EQ(snap.health, runtime::HealthState::kDegraded);
  EXPECT_NE(snap.health_json().find("\"audit_drift\": 1"), std::string::npos);
  // The deterministic rollup's audit section counts the drifted session.
  const std::string rollup = eng.rollup_json();
  EXPECT_NE(rollup.find("\"drifted\": 1"), std::string::npos);
}

TEST(SessionLog, WideEventLineRendersTheResult) {
  const SessionResult res = run_one(fig2a_request(9, /*n=*/4, /*k=*/2),
                                    /*audit=*/true, /*flight=*/128);
  const SessionLogInfo info{"dl-test-256", 4, 2};
  const std::string line = session_wide_event_json(res, info);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // ONE line
  EXPECT_NE(line.find("\"schema\": \"ppgr.session.v1\""), std::string::npos);
  EXPECT_NE(line.find("\"id\": 9"), std::string::npos);
  EXPECT_NE(line.find("\"framework\": \"he\""), std::string::npos);
  EXPECT_NE(line.find("\"group\": \"dl-test-256\""), std::string::npos);
  EXPECT_NE(line.find("\"outcome\": \"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"phase\": \"phase2\""), std::string::npos);
  EXPECT_NE(line.find("\"verdict\": \"clean\""), std::string::npos);
  EXPECT_NE(line.find("\"flight\""), std::string::npos);
  EXPECT_EQ(line.find("\"fault\""), std::string::npos);  // clean run
}

TEST(SessionLog, PostmortemBundleIsAtomicAndComplete) {
  RankingRequest req = fig2a_request(3, /*n=*/4, /*k=*/2);
  req.fault_plan = net::parse_fault_plan("seed=7,crash=2@1");
  const SessionResult res = run_one(std::move(req), /*audit=*/true,
                                    /*flight=*/64);
  ASSERT_EQ(res.outcome, SessionOutcome::kFault);
  const SessionLogInfo info{"dl-test-256", 4, 2};

  const std::string dir = ::testing::TempDir();
  std::string err;
  const std::string path = write_postmortem(dir, res, info, "", &err);
  ASSERT_FALSE(path.empty()) << err;
  EXPECT_NE(path.find("session-3.postmortem.json"), std::string::npos);
  // Atomic: the .tmp sibling must be gone.
  std::ifstream tmp{path + ".tmp"};
  EXPECT_FALSE(tmp.good());
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"schema\": \"ppgr.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"ppgr.session.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"ppgr.flight.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"ppgr.fault.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"snapshot\": null"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SessionLog, PostmortemWriteFailureReportsError) {
  const SessionResult res =
      run_one(fig2a_request(4, /*n=*/4, /*k=*/2), /*audit=*/false);
  const SessionLogInfo info{"dl-test-256", 4, 2};
  std::string err;
  const std::string path = write_postmortem(
      "/nonexistent-ppgr-dir", res, info, "", &err);
  EXPECT_TRUE(path.empty());
  EXPECT_FALSE(err.empty());
}

// The observation-only contract at engine scale: audit + flight ON leaves
// every deterministic export bit-identical to a run with them OFF.
TEST(ConformanceAudit, AuditAndFlightDoNotPerturbDeterministicExports) {
  const auto run = [](bool observed) {
    EngineConfig cfg;
    cfg.seed = 11;
    cfg.audit = observed;
    cfg.flight_events = observed ? 512 : 0;
    SessionEngine eng{cfg};
    std::vector<RankingRequest> reqs;
    reqs.push_back(fig2a_request(1, /*n=*/4, /*k=*/2));
    reqs.push_back(fig2a_request(2, /*n=*/5, /*k=*/2, FrameworkKind::kSs));
    return eng.run_batch(std::move(reqs));
  };
  const std::vector<SessionResult> plain = run(false);
  const std::vector<SessionResult> observed = run(true);
  ASSERT_EQ(plain.size(), observed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const SessionResult& a = plain[i];
    const SessionResult& b = observed[i];
    EXPECT_EQ(a.ranks(), b.ranks());
    EXPECT_EQ(a.submitted_ids(), b.submitted_ids());
    EXPECT_EQ(a.he.betas, b.he.betas);
    ASSERT_NE(a.metrics(), nullptr);
    ASSERT_NE(b.metrics(), nullptr);
    EXPECT_EQ(a.metrics()->to_json(/*include_timing=*/false),
              b.metrics()->to_json(/*include_timing=*/false));
    ASSERT_NE(a.comm(), nullptr);
    ASSERT_NE(b.comm(), nullptr);
    EXPECT_EQ(a.comm()->to_json(), b.comm()->to_json());
    // And the observed run really was observed.
    EXPECT_EQ(a.audit, nullptr);
    ASSERT_NE(b.audit, nullptr);
    EXPECT_TRUE(b.audit->clean());
    ASSERT_NE(b.flight, nullptr);
    EXPECT_GT(b.flight->recorded(), 0u);
  }
}

}  // namespace
}  // namespace ppgr::engine

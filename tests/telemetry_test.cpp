// Live-telemetry layer: the runtime primitives (ProgressCell, quantiles,
// OpenMetricsBuilder, TelemetrySampler) and the engine introspection built on
// them (snapshot / watchdog / exposition / trace stitching).
//
// The two load-bearing claims, per the determinism contract:
//
//   * NON-PERTURBATION — a sampler thread and a snapshot-hammering thread
//     running concurrently with a 16-driver engine leave the deterministic
//     rollup BYTE-IDENTICAL to tests/golden/engine_small.json (the same
//     golden engine_test pins without telemetry attached);
//   * COHERENCE UNDER RACE — snapshots taken while drivers claim work, run
//     protocols and land results are internally consistent (counts never
//     exceed the batch, completed is monotone) and data-race-free (this
//     suite runs under TSan via `scripts/ci.sh telemetry`).
//
// The OpenMetrics exposition is additionally validated by the spec checker
// scripts/check_openmetrics.py (skipped when python3 is unavailable).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/introspect.h"

#ifndef PPGR_GOLDEN_DIR
#define PPGR_GOLDEN_DIR "tests/golden"
#endif
#ifndef PPGR_SCRIPTS_DIR
#define PPGR_SCRIPTS_DIR "scripts"
#endif

namespace ppgr::engine {
namespace {

using core::AttrVec;
using core::ProblemSpec;
using mpz::ChaChaRng;
using runtime::HealthState;
using runtime::LatencyHistogram;
using runtime::OpenMetricsBuilder;
using runtime::Phase;
using runtime::ProgressCell;
using runtime::TelemetrySample;
using runtime::TelemetrySampler;

// Same construction as engine_test.cpp: inputs are a pure function of
// (session_id, input_seed) so the golden-rollup batch is reproduced exactly.
RankingRequest make_request(std::uint64_t sid, std::size_t n, std::size_t k,
                            FrameworkKind kind = FrameworkKind::kHe,
                            std::uint64_t input_seed = 99) {
  RankingRequest req;
  req.session_id = sid;
  req.framework = kind;
  req.spec = ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
  req.k = k;
  ChaChaRng rng{input_seed + sid};
  req.v0.resize(req.spec.m);
  req.w.resize(req.spec.m);
  for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
  for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
  for (std::size_t j = 0; j < n; ++j) {
    AttrVec v(req.spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    req.infos.push_back(std::move(v));
  }
  return req;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "ppgr_telemetry_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Runtime primitives.

TEST(TelemetryPrimitives, HealthSeverityOrder) {
  EXPECT_EQ(worse(HealthState::kOk, HealthState::kOk), HealthState::kOk);
  EXPECT_EQ(worse(HealthState::kOk, HealthState::kDegraded),
            HealthState::kDegraded);
  EXPECT_EQ(worse(HealthState::kStalled, HealthState::kDegraded),
            HealthState::kStalled);
  EXPECT_STREQ(to_string(HealthState::kOk), "ok");
  EXPECT_STREQ(to_string(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(HealthState::kStalled), "stalled");
}

TEST(TelemetryPrimitives, ProgressCellRoundTripsPhaseAndRound) {
  ProgressCell cell;
  auto v = cell.view();
  EXPECT_EQ(v.phase, Phase::kSetup);
  EXPECT_EQ(v.round, 0u);
  EXPECT_GT(v.last_advance_s, 0.0);  // stamped at construction

  cell.advance(Phase::kPhase2, 41);
  v = cell.view();
  EXPECT_EQ(v.phase, Phase::kPhase2);
  EXPECT_EQ(v.round, 41u);

  // Round survives the 56-bit packing at a large index.
  const std::size_t big = (std::size_t{1} << 40) + 7;
  cell.advance(Phase::kPhase3, big);
  v = cell.view();
  EXPECT_EQ(v.phase, Phase::kPhase3);
  EXPECT_EQ(v.round, big);
}

TEST(TelemetryPrimitives, LatencyQuantileNearestRank) {
  LatencyHistogram hist;
  EXPECT_EQ(latency_quantile_seconds(hist, 0.5), 0.0);  // empty

  // 4 fast samples + 1 slow: p50 lands in the fast binade, p99 (rank 5 of 5)
  // in the slow one. Estimates are bin upper bounds — at most one binade
  // above the true value.
  for (int i = 0; i < 4; ++i) hist.add_seconds(1e-6);
  hist.add_seconds(0.5);
  const double p50 = latency_quantile_seconds(hist, 0.5);
  const double p99 = latency_quantile_seconds(hist, 0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 4e-6);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 2.0);
  EXPECT_LE(p50, p99);
}

TEST(TelemetryPrimitives, OpenMetricsBuilderRendersFamiliesAndEof) {
  OpenMetricsBuilder om;
  om.family("ppgr_demo_sessions", "gauge", "Sessions by state");
  om.sample("ppgr_demo_sessions", "state=\"queued\"", std::uint64_t{3});
  om.sample("ppgr_demo_sessions", "state=\"running\"", std::uint64_t{2});
  LatencyHistogram hist;
  hist.add_seconds(1e-6);
  hist.add_seconds(1e-3);
  om.family("ppgr_demo_wait_seconds", "histogram", "Queue wait");
  om.histogram("ppgr_demo_wait_seconds", "kind=\"he\"", hist);
  const std::string page = om.render();

  EXPECT_NE(page.find("# TYPE ppgr_demo_sessions gauge\n"),
            std::string::npos);
  EXPECT_NE(page.find("# HELP ppgr_demo_sessions Sessions by state\n"),
            std::string::npos);
  EXPECT_NE(page.find("ppgr_demo_sessions{state=\"queued\"} 3\n"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE ppgr_demo_wait_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(page.find("ppgr_demo_wait_seconds_bucket{kind=\"he\",le=\"+Inf\"}"
                      " 2\n"),
            std::string::npos);
  EXPECT_NE(page.find("ppgr_demo_wait_seconds_count{kind=\"he\"} 2\n"),
            std::string::npos);
  EXPECT_TRUE(ends_with(page, "# EOF\n")) << page;
  // Exactly one EOF, at the very end.
  EXPECT_EQ(page.find("# EOF\n"), page.size() - 6);
}

TEST(TelemetrySamplerTest, PeriodicSamplesPlusFinalOnStop) {
  const std::string jsonl = temp_path("sampler.jsonl");
  const std::string om = temp_path("sampler.om");
  std::remove(jsonl.c_str());

  std::atomic<std::uint64_t> produced{0};
  TelemetrySampler sampler{
      TelemetrySampler::Config{/*period_s=*/0.005, jsonl, om}, [&] {
        const auto n = produced.fetch_add(1) + 1;
        TelemetrySample s;
        s.jsonl = "{\"n\": " + std::to_string(n) + "}";
        s.openmetrics = "# TYPE demo_n gauge\ndemo_n " + std::to_string(n) +
                        "\n# EOF\n";
        return s;
      }};
  sampler.start();
  EXPECT_THROW(sampler.start(), std::logic_error);  // double-start rejected
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.stop();
  sampler.stop();  // idempotent

  const std::uint64_t taken = sampler.samples();
  EXPECT_GE(taken, 1u);  // at least the final stop() sample
  EXPECT_EQ(taken, produced.load());

  // One JSONL line per sample, in order.
  std::ifstream in{jsonl};
  ASSERT_TRUE(in);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line, "{\"n\": " + std::to_string(lines) + "}");
  }
  EXPECT_EQ(lines, taken);

  // The exposition file holds the FINAL sample, atomically replaced.
  const std::string page = slurp(om);
  EXPECT_EQ(page,
            "# TYPE demo_n gauge\ndemo_n " + std::to_string(taken) +
                "\n# EOF\n");
  std::remove(jsonl.c_str());
  std::remove(om.c_str());
}

TEST(TelemetrySamplerTest, FailsFastOnUnwritablePath) {
  TelemetrySampler sampler{
      TelemetrySampler::Config{0.1,
                               "/nonexistent-ppgr-dir/telemetry.jsonl", ""},
      [] { return TelemetrySample{}; }};
  EXPECT_THROW(sampler.start(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Engine introspection.

// TSan target (scripts/ci.sh telemetry leg): a sampler thread and a
// snapshot-hammering thread observe a 16-driver engine while it claims,
// executes and lands 16 sessions. Snapshots must be coherent throughout and
// the terminal snapshot must account for every session.
TEST(EngineTelemetry, ConcurrentSnapshotsUnderSixteenDrivers) {
  const std::size_t kSessions = 16;
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 7;
  cfg.max_in_flight = kSessions;  // 16 driver threads
  cfg.cache = &cache;
  SessionEngine engine{cfg};

  const std::string jsonl = temp_path("engine.jsonl");
  const std::string om = temp_path("engine.om");
  std::remove(jsonl.c_str());
  EngineSampler sampler{engine,
                        EngineSampler::Config{/*period_s=*/0.001,
                                              /*stall_deadline_s=*/60.0,
                                              jsonl, om}};
  sampler.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> observations{0};
  std::thread watcher{[&] {
    std::size_t last_completed = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const EngineSnapshot s = snapshot(engine, 60.0);
      observations.fetch_add(1, std::memory_order_relaxed);
      EXPECT_LE(s.queued + s.in_flight + s.completed, kSessions);
      EXPECT_LE(s.sessions.size(), s.in_flight);
      EXPECT_GE(s.completed, last_completed);  // completion is monotone
      last_completed = s.completed;
      for (const SessionTelemetry& t : s.sessions) {
        EXPECT_GE(t.id, 1u);
        EXPECT_LE(t.id, kSessions);
        EXPECT_GE(t.running_for_s, 0.0);
        EXPECT_FALSE(t.stalled);  // 60 s deadline never trips here
      }
      // Exercise the renderers concurrently with the engine too.
      (void)s.to_jsonl();
      (void)s.to_openmetrics();
    }
  }};

  std::vector<RankingRequest> reqs;
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid)
    reqs.push_back(make_request(sid, /*n=*/4, /*k=*/1,
                                sid % 4 == 0 ? FrameworkKind::kSs
                                             : FrameworkKind::kHe));
  const auto results = engine.run_batch(std::move(reqs));
  done.store(true, std::memory_order_relaxed);
  watcher.join();
  sampler.stop();

  ASSERT_EQ(results.size(), kSessions);
  for (const auto& r : results) EXPECT_EQ(r.outcome, SessionOutcome::kOk);
  EXPECT_GE(observations.load(), 1u);
  EXPECT_GE(sampler.samples(), 1u);

  // Terminal snapshot: drained, healthy, everything accounted for.
  const EngineSnapshot end = snapshot(engine, 60.0);
  EXPECT_EQ(end.queued, 0u);
  EXPECT_EQ(end.in_flight, 0u);
  EXPECT_EQ(end.completed, kSessions);
  EXPECT_EQ(end.faulted, 0u);
  EXPECT_EQ(end.health, HealthState::kOk);
  EXPECT_TRUE(end.sessions.empty());
  EXPECT_EQ(end.latency[0].run_duration.count() +
                end.latency[1].run_duration.count(),
            kSessions);
  EXPECT_EQ(end.latency[0].queue_wait.count() +
                end.latency[1].queue_wait.count(),
            kSessions);

  // Every JSONL line is a schema-tagged single-line object.
  std::ifstream in{jsonl};
  ASSERT_TRUE(in);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("{\"schema\": \"ppgr.telemetry.v1\"", 0), 0u)
        << line;
    EXPECT_TRUE(ends_with(line, "}")) << line;
  }
  EXPECT_EQ(lines, sampler.samples());
  std::remove(jsonl.c_str());
  std::remove(om.c_str());
}

// The tentpole invariant: telemetry attached (sampler + snapshot hammering)
// must not perturb the deterministic rollup — byte-identical to the same
// golden engine_test pins for a telemetry-free engine. No PPGR_UPDATE_GOLDEN
// path here on purpose: engine_test owns the golden; this test only asserts
// that observation does not change it.
TEST(EngineTelemetry, RollupStaysGoldenUnderConcurrentObservation) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 2025;
  cfg.max_in_flight = 3;
  cfg.parallelism = 2;
  cfg.cache = &cache;
  SessionEngine engine{cfg};

  const std::string om = temp_path("golden.om");
  EngineSampler sampler{engine, EngineSampler::Config{0.001, 60.0, "", om}};
  sampler.start();
  std::atomic<bool> done{false};
  std::thread watcher{[&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)snapshot(engine, 60.0).to_jsonl();
    }
  }};

  std::vector<RankingRequest> reqs;
  reqs.push_back(make_request(1, /*n=*/5, /*k=*/2));
  reqs.push_back(make_request(2, /*n=*/4, /*k=*/1));
  reqs.push_back(make_request(3, /*n=*/5, /*k=*/2, FrameworkKind::kSs));
  (void)engine.run_batch(std::move(reqs));
  done.store(true, std::memory_order_relaxed);
  watcher.join();
  sampler.stop();
  std::remove(om.c_str());

  const std::string golden_path =
      std::string{PPGR_GOLDEN_DIR} + "/engine_small.json";
  std::ifstream in{golden_path};
  ASSERT_TRUE(in) << "missing golden " << golden_path
                  << " (regenerate via engine_test with PPGR_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(engine.rollup_json(), expected.str())
      << "live telemetry perturbed the deterministic rollup";
}

// EngineConfig::telemetry gates the rollup's nondeterministic sections: off
// (the default, pinned by the golden) emits neither; on emits per-kind
// latency quantiles and the health verdict.
TEST(EngineTelemetry, RollupLatencyAndHealthAreGatedByConfig) {
  auto rollup_with = [](bool telemetry) {
    PrecomputeCache cache;
    EngineConfig cfg;
    cfg.seed = 11;
    cfg.max_in_flight = 2;
    cfg.cache = &cache;
    cfg.telemetry = telemetry;
    SessionEngine engine{cfg};
    std::vector<RankingRequest> reqs;
    reqs.push_back(make_request(1, /*n=*/4, /*k=*/1));
    reqs.push_back(make_request(2, /*n=*/4, /*k=*/1, FrameworkKind::kSs));
    (void)engine.run_batch(std::move(reqs));
    return engine.rollup_json();
  };

  const std::string off = rollup_with(false);
  EXPECT_EQ(off.find("\"latency\""), std::string::npos) << off;
  EXPECT_EQ(off.find("\"health\""), std::string::npos) << off;

  const std::string on = rollup_with(true);
  EXPECT_NE(on.find("\"latency\""), std::string::npos) << on;
  EXPECT_NE(on.find("\"queue_wait_p50_seconds\""), std::string::npos) << on;
  EXPECT_NE(on.find("\"run_duration_p99_seconds\""), std::string::npos) << on;
  EXPECT_NE(on.find("\"health\": {\"state\": \"ok\", \"stalls\": 0}"),
            std::string::npos)
      << on;
}

// The exposition page of a mid-load engine passes the OpenMetrics spec
// checker (contiguous families, cumulative buckets, single EOF, ...).
TEST(EngineTelemetry, OpenMetricsPagePassesSpecChecker) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 unavailable";

  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 23;
  cfg.max_in_flight = 4;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  for (std::uint64_t sid = 1; sid <= 6; ++sid)
    engine.submit(make_request(sid, /*n=*/4, /*k=*/1,
                               sid % 2 == 0 ? FrameworkKind::kSs
                                            : FrameworkKind::kHe));

  // One page mid-load (live per-session gauges present) and one drained
  // (histograms populated); both must validate.
  const std::string mid = snapshot(engine, 60.0).to_openmetrics();
  engine.drain();
  for (std::uint64_t sid = 1; sid <= 6; ++sid) (void)engine.take(sid);
  const std::string end = snapshot(engine, 60.0).to_openmetrics();

  const std::string path = temp_path("check.om");
  for (const std::string* page : {&mid, &end}) {
    std::ofstream out{path};
    ASSERT_TRUE(out);
    out << *page;
    out.close();
    const std::string cmd = std::string{"python3 "} + PPGR_SCRIPTS_DIR +
                            "/check_openmetrics.py " + path +
                            " > /dev/null 2>&1";
    EXPECT_EQ(std::system(cmd.c_str()), 0)
        << "check_openmetrics.py rejected:\n"
        << *page;
  }
  std::remove(path.c_str());
}

// Trace stitching: per-session span streams merge onto one timeline with
// pid = session id and named party lanes; timestamps are non-negative
// microseconds relative to the earliest event across ALL sessions.
TEST(EngineTelemetry, StitchedTraceMergesSessionTimelines) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 31;
  cfg.max_in_flight = 2;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  std::vector<RankingRequest> reqs;
  reqs.push_back(make_request(1, /*n=*/4, /*k=*/1));
  reqs.push_back(make_request(2, /*n=*/4, /*k=*/1, FrameworkKind::kSs));
  const auto results = engine.run_batch(std::move(reqs));
  ASSERT_EQ(results.size(), 2u);

  std::vector<const SessionResult*> ptrs;
  for (const auto& r : results) ptrs.push_back(&r);
  const std::string trace = stitched_trace_json(ptrs);

  // Both sessions appear as named process groups with party lanes.
  EXPECT_NE(trace.find("\"name\": \"session 1 (he)\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"session 2 (ss)\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"orchestrator\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"P0\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\": 1,"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\": 2,"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_EQ(trace.find("\"ts\": -"), std::string::npos);  // shared origin
  // A null entry (e.g. a faulted session with no spans) is skipped, not a
  // crash.
  std::vector<const SessionResult*> with_null{&results[0], nullptr};
  EXPECT_NE(stitched_trace_json(with_null).find("session 1"),
            std::string::npos);
}

// Drained-engine health document: the compact ppgr.health.v1 export used by
// ppgr_server --health-out.
TEST(EngineTelemetry, HealthDocumentReflectsDrainedEngine) {
  PrecomputeCache cache;
  EngineConfig cfg;
  cfg.seed = 3;
  cfg.cache = &cache;
  SessionEngine engine{cfg};
  std::vector<RankingRequest> reqs;
  reqs.push_back(make_request(1, /*n=*/4, /*k=*/1));
  (void)engine.run_batch(std::move(reqs));

  const std::string doc = snapshot(engine, 60.0).health_json();
  EXPECT_NE(doc.find("\"schema\": \"ppgr.health.v1\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"state\": \"ok\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"completed\": 1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"stalled_sessions\": []"), std::string::npos) << doc;
}

}  // namespace
}  // namespace ppgr::engine

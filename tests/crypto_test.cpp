// Tests for ElGamal (standard, exponential, distributed) and the Schnorr
// proof system, across both group instantiations.
#include <gtest/gtest.h>

#include "crypto/elgamal.h"
#include "crypto/schnorr_proof.h"
#include "group/counting_group.h"

namespace ppgr::crypto {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

class ElGamalOverGroups : public ::testing::TestWithParam<GroupId> {};

TEST_P(ElGamalOverGroups, StandardEncryptDecryptRoundTrip) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{10};
  const KeyPair kp = keygen(*g, rng);
  for (int i = 0; i < 5; ++i) {
    const Elem m = g->exp_g(g->random_scalar(rng));
    const Ciphertext ct = encrypt(*g, kp.y, m, rng);
    EXPECT_TRUE(g->eq(decrypt(*g, kp.x, ct), m));
  }
}

TEST_P(ElGamalOverGroups, EncryptionIsProbabilistic) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{11};
  const KeyPair kp = keygen(*g, rng);
  const Elem m = g->generator();
  const Ciphertext a = encrypt(*g, kp.y, m, rng);
  const Ciphertext b = encrypt(*g, kp.y, m, rng);
  EXPECT_FALSE(g->eq(a.c, b.c));
  EXPECT_FALSE(g->eq(a.cp, b.cp));
}

TEST_P(ElGamalOverGroups, ExponentialHomomorphism) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{12};
  const KeyPair kp = keygen(*g, rng);
  const Nat m1{17}, m2{25};
  const Ciphertext e1 = encrypt_exp(*g, kp.y, m1, rng);
  const Ciphertext e2 = encrypt_exp(*g, kp.y, m2, rng);
  // E(17) ∘ E(25) decrypts to g^42.
  EXPECT_TRUE(g->eq(decrypt_exp(*g, kp.x, ct_add(*g, e1, e2)), g->exp_g(Nat{42})));
  // E(25) - E(17) -> g^8.
  EXPECT_TRUE(g->eq(decrypt_exp(*g, kp.x, ct_sub(*g, e2, e1)), g->exp_g(Nat{8})));
  // E(17)^3 -> g^51.
  EXPECT_TRUE(
      g->eq(decrypt_exp(*g, kp.x, ct_scale(*g, e1, Nat{3})), g->exp_g(Nat{51})));
  // plaintext addition: E(17) + 5 -> g^22.
  EXPECT_TRUE(g->eq(decrypt_exp(*g, kp.x, ct_add_plain(*g, e1, Nat{5})),
                    g->exp_g(Nat{22})));
}

TEST_P(ElGamalOverGroups, ZeroTest) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{13};
  const KeyPair kp = keygen(*g, rng);
  EXPECT_TRUE(decrypts_to_zero(*g, kp.x, encrypt_exp(*g, kp.y, Nat{}, rng)));
  EXPECT_FALSE(decrypts_to_zero(*g, kp.x, encrypt_exp(*g, kp.y, Nat{1}, rng)));
  // Subtracting equal plaintexts yields an encryption of zero.
  const Ciphertext a = encrypt_exp(*g, kp.y, Nat{99}, rng);
  const Ciphertext b = encrypt_exp(*g, kp.y, Nat{99}, rng);
  EXPECT_TRUE(decrypts_to_zero(*g, kp.x, ct_sub(*g, a, b)));
}

TEST_P(ElGamalOverGroups, RerandomizePreservesPlaintext) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{14};
  const KeyPair kp = keygen(*g, rng);
  const Ciphertext ct = encrypt_exp(*g, kp.y, Nat{7}, rng);
  const Ciphertext rr = rerandomize(*g, kp.y, ct, rng);
  EXPECT_FALSE(g->eq(rr.c, ct.c));  // fresh randomness
  EXPECT_TRUE(g->eq(decrypt_exp(*g, kp.x, rr), g->exp_g(Nat{7})));
}

TEST_P(ElGamalOverGroups, ExpRandomizeKeepsZeroKillsNonzero) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{15};
  const KeyPair kp = keygen(*g, rng);
  const Nat r = g->random_nonzero_scalar(rng);
  // zero stays zero.
  const Ciphertext z = encrypt_exp(*g, kp.y, Nat{}, rng);
  EXPECT_TRUE(decrypts_to_zero(*g, kp.x, exp_randomize(*g, z, r)));
  // nonzero m becomes r*m — still nonzero, but no longer g^m.
  const Ciphertext nz = encrypt_exp(*g, kp.y, Nat{5}, rng);
  const Ciphertext masked = exp_randomize(*g, nz, r);
  EXPECT_FALSE(decrypts_to_zero(*g, kp.x, masked));
  const Nat expected = Nat::mul(Nat{5}, r) % g->order();
  EXPECT_TRUE(g->eq(decrypt_exp(*g, kp.x, masked), g->exp_g(expected)));
}

TEST_P(ElGamalOverGroups, DistributedDecryptionChain) {
  // n parties, joint key; partial decryptions in arbitrary order compose to
  // a full decryption — the mechanism of framework step 8.
  const auto g = make_group(GetParam());
  ChaChaRng rng{16};
  constexpr std::size_t kParties = 5;
  std::vector<KeyPair> keys;
  std::vector<Elem> ys;
  for (std::size_t i = 0; i < kParties; ++i) {
    keys.push_back(keygen(*g, rng));
    ys.push_back(keys.back().y);
  }
  const Elem y = joint_public_key(*g, ys);

  Ciphertext ct = encrypt_exp(*g, y, Nat{123}, rng);
  // Parties 1..n-1 partially decrypt (shuffled order), party 0 finishes.
  for (std::size_t i = kParties; i-- > 1;) ct = partial_decrypt(*g, keys[i].x, ct);
  EXPECT_TRUE(g->eq(decrypt_exp(*g, keys[0].x, ct), g->exp_g(Nat{123})));
}

TEST_P(ElGamalOverGroups, PartialDecryptCommutesWithExpRandomize) {
  // The step-8 pipeline interleaves partial decryption and exponent
  // randomization across hops; verify the interleaving is sound.
  const auto g = make_group(GetParam());
  ChaChaRng rng{17};
  std::vector<KeyPair> keys{keygen(*g, rng), keygen(*g, rng), keygen(*g, rng)};
  const std::vector<Elem> ys{keys[0].y, keys[1].y, keys[2].y};
  const Elem y = joint_public_key(*g, ys);

  Ciphertext zero_ct = encrypt_exp(*g, y, Nat{}, rng);
  Ciphertext nz_ct = encrypt_exp(*g, y, Nat{9}, rng);
  for (std::size_t hop = 1; hop < keys.size(); ++hop) {
    zero_ct = exp_randomize(*g, partial_decrypt(*g, keys[hop].x, zero_ct),
                            g->random_nonzero_scalar(rng));
    nz_ct = exp_randomize(*g, partial_decrypt(*g, keys[hop].x, nz_ct),
                          g->random_nonzero_scalar(rng));
  }
  EXPECT_TRUE(decrypts_to_zero(*g, keys[0].x, zero_ct));
  EXPECT_FALSE(decrypts_to_zero(*g, keys[0].x, nz_ct));
}

TEST_P(ElGamalOverGroups, CiphertextBytes) {
  const auto g = make_group(GetParam());
  EXPECT_EQ(ciphertext_bytes(*g), 2 * g->element_bytes());
}

INSTANTIATE_TEST_SUITE_P(Groups, ElGamalOverGroups,
                         ::testing::Values(GroupId::kDlTest256,
                                           GroupId::kEcP192),
                         [](const auto& info) {
                           std::string n = group::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ---- Schnorr proofs ----

class SchnorrOverGroups : public ::testing::TestWithParam<GroupId> {};

TEST_P(SchnorrOverGroups, CompletenessSingleAndMultiVerifier) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{20};
  for (std::size_t n_verifiers : {1u, 2u, 7u}) {
    const KeyPair kp = keygen(*g, rng);
    const SchnorrTranscript t = schnorr_prove(*g, kp.x, n_verifiers, rng);
    EXPECT_EQ(t.challenges.size(), n_verifiers);
    EXPECT_TRUE(schnorr_verify(*g, kp.y, t));
  }
}

TEST_P(SchnorrOverGroups, SoundnessWrongWitnessFails) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{21};
  const KeyPair kp = keygen(*g, rng);
  // Prover uses a wrong witness for y.
  const Nat wrong = Nat::add(kp.x, Nat{1}) % g->order();
  const SchnorrProverState st = schnorr_commit(*g, rng);
  SchnorrTranscript t;
  t.commitment = st.commitment;
  t.challenges = {schnorr_challenge(*g, rng)};
  t.response = schnorr_respond(*g, st, wrong, t.challenges);
  EXPECT_FALSE(schnorr_verify(*g, kp.y, t));
}

TEST_P(SchnorrOverGroups, TamperedTranscriptFails) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{22};
  const KeyPair kp = keygen(*g, rng);
  SchnorrTranscript t = schnorr_prove(*g, kp.x, 3, rng);
  t.response = Nat::add(t.response, Nat{1}) % g->order();
  EXPECT_FALSE(schnorr_verify(*g, kp.y, t));
}

TEST_P(SchnorrOverGroups, ExtractorRecoversWitness) {
  // Special soundness: rewind the prover (same commitment, different
  // challenges) and extract x — the mechanism the paper's Lemma 3 simulator
  // uses to learn colluders' keys.
  const auto g = make_group(GetParam());
  ChaChaRng rng{23};
  const KeyPair kp = keygen(*g, rng);
  const SchnorrProverState st = schnorr_commit(*g, rng);
  SchnorrTranscript t1, t2;
  t1.commitment = t2.commitment = st.commitment;
  t1.challenges = {schnorr_challenge(*g, rng), schnorr_challenge(*g, rng)};
  t2.challenges = {schnorr_challenge(*g, rng), schnorr_challenge(*g, rng)};
  t1.response = schnorr_respond(*g, st, kp.x, t1.challenges);
  t2.response = schnorr_respond(*g, st, kp.x, t2.challenges);
  EXPECT_EQ(schnorr_extract(*g, t1, t2), kp.x % g->order());
}

TEST_P(SchnorrOverGroups, ExtractorPreconditions) {
  const auto g = make_group(GetParam());
  ChaChaRng rng{24};
  const KeyPair kp = keygen(*g, rng);
  const SchnorrTranscript t1 = schnorr_prove(*g, kp.x, 1, rng);
  const SchnorrTranscript t2 = schnorr_prove(*g, kp.x, 1, rng);
  // Different commitments rejected.
  EXPECT_THROW((void)schnorr_extract(*g, t1, t2), std::invalid_argument);
  // Identical transcripts rejected (equal challenges).
  EXPECT_THROW((void)schnorr_extract(*g, t1, t1), std::invalid_argument);
}

TEST_P(SchnorrOverGroups, SimulatedTranscriptsVerify) {
  // HVZK: the simulator produces accepting transcripts without the witness.
  const auto g = make_group(GetParam());
  ChaChaRng rng{25};
  const KeyPair kp = keygen(*g, rng);
  for (int i = 0; i < 5; ++i) {
    const SchnorrTranscript t = schnorr_simulate(*g, kp.y, 3, rng);
    EXPECT_TRUE(schnorr_verify(*g, kp.y, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, SchnorrOverGroups,
                         ::testing::Values(GroupId::kDlTest256,
                                           GroupId::kEcP192),
                         [](const auto& info) {
                           std::string n = group::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

}  // namespace
}  // namespace ppgr::crypto

// Chaos soak: a seeded fault matrix (drop / duplicate / reorder / corrupt /
// tamper / delay / mixed, plus party-crash x phase) driven through BOTH
// frameworks (HE and SS), with and without degrade-on-dropout. The contract
// under test:
//
//   1. zero hangs, zero aborts, zero UB — every scenario ends in either a
//      completed run or a typed core::ProtocolFault;
//   2. when a run under an honest-fault plan (drop/corrupt/delay/crash — the
//      channel layer detects and heals or surfaces these) completes, the
//      ranking is CORRECT: survivors rank exactly as the fault-free
//      reference over the survivor subset, dropped parties rank 0;
//   3. the fault schedule is part of the deterministic contract: re-running
//      a scenario — including at a different parallelism — reproduces the
//      identical outcome, ranks, fault coordinates and fault report JSON.
//
// Tamper is the adversarial exception for (2): a tampered frame re-encodes
// with a valid CRC, so the channel cannot detect it. Those scenarios assert
// only (1) and (3); end-to-end detection of phase-2 tamper via the Schnorr
// proofs lives in security_test.cpp. See DESIGN.md "Failure model".
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/ss_framework.h"

namespace ppgr::core {
namespace {

using group::GroupId;
using group::make_group;
using mpz::ChaChaRng;

constexpr std::size_t kParties = 5;
constexpr std::size_t kTopK = 2;
constexpr std::size_t kSsThreshold = 2;

ProblemSpec chaos_spec() {
  return ProblemSpec{.m = 3, .t = 1, .d1 = 6, .d2 = 4, .h = 5};
}

struct Inputs {
  AttrVec v0, w;
  std::vector<AttrVec> infos;
};

Inputs make_inputs(std::uint64_t seed) {
  const ProblemSpec spec = chaos_spec();
  ChaChaRng rng{seed};
  Inputs in;
  in.v0.resize(spec.m);
  in.w.resize(spec.m);
  for (auto& x : in.v0) x = rng.below_u64(std::uint64_t{1} << spec.d1);
  for (auto& x : in.w) x = rng.below_u64(std::uint64_t{1} << spec.d2);
  for (std::size_t j = 0; j < kParties; ++j) {
    AttrVec v(spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << spec.d1);
    in.infos.push_back(std::move(v));
  }
  return in;
}

// Everything a scenario can produce, flattened for bit-identity comparison.
struct Outcome {
  bool completed = false;
  std::vector<std::size_t> ranks;
  std::vector<std::size_t> active;
  std::vector<std::size_t> dropped;
  runtime::Phase fault_phase = runtime::Phase::kSetup;
  std::size_t fault_round = 0;
  std::size_t fault_party = kNoParty;
  std::string fault_what;
  std::string report_json;

  bool operator==(const Outcome&) const = default;
};

const group::Group& chaos_group() {
  static const auto g = make_group(GroupId::kDlTest256);
  return *g;
}

Outcome run_scenario(bool ss, const net::FaultPlanConfig& fpc, bool degrade,
                     std::uint64_t input_seed, std::size_t parallelism) {
  const Inputs in = make_inputs(input_seed);
  const net::FaultPlan plan{fpc};

  FrameworkConfig base;
  base.spec = chaos_spec();
  base.n = kParties;
  base.k = kTopK;
  base.group = &chaos_group();
  base.dot_field = &default_dot_field();
  base.dot_s = 4;
  base.parallelism = parallelism;
  base.fault_plan = &plan;
  base.degrade_on_dropout = degrade;

  ChaChaRng rng{input_seed ^ 0x9e3779b97f4a7c15ull};
  Outcome out;
  try {
    if (ss) {
      SsFrameworkConfig cfg;
      cfg.base = base;
      cfg.threshold = kSsThreshold;
      const SsFrameworkResult res =
          run_ss_framework(cfg, in.v0, in.w, in.infos, rng);
      out.completed = true;
      out.ranks = res.ranks;
      out.active = res.active_parties;
      out.dropped = res.dropped_parties;
      if (res.faults) out.report_json = res.faults->to_json();
    } else {
      const FrameworkResult res =
          run_framework(base, in.v0, in.w, in.infos, rng);
      out.completed = true;
      out.ranks = res.ranks;
      out.active = res.active_parties;
      out.dropped = res.dropped_parties;
      if (res.faults) out.report_json = res.faults->to_json();
    }
  } catch (const ProtocolFault& pf) {
    out.completed = false;
    out.fault_phase = pf.info().phase;
    out.fault_round = pf.info().round;
    out.fault_party = pf.info().party;
    out.fault_what = pf.what();
    out.report_json = pf.report().to_json();
  }
  // Any other exception type escapes and fails the test: the contract is
  // "completed or typed ProtocolFault", nothing else.
  return out;
}

bool gains_distinct(const Inputs& in, const std::vector<std::size_t>& ids) {
  std::vector<Int> gains;
  for (const std::size_t id : ids)
    gains.push_back(gain(chaos_spec(), in.v0, in.w, in.infos[id - 1]));
  std::sort(gains.begin(), gains.end());
  return std::adjacent_find(gains.begin(), gains.end()) == gains.end();
}

// Contract (2): a completed run ranks the survivor subset exactly as the
// fault-free reference over that subset; dropped parties rank 0.
void expect_correct_ranking(const Outcome& out, std::uint64_t input_seed,
                            const std::string& label) {
  ASSERT_TRUE(out.completed) << label;
  const Inputs in = make_inputs(input_seed);
  ASSERT_EQ(out.ranks.size(), kParties) << label;
  std::vector<std::size_t> active = out.active;
  if (active.empty())
    for (std::size_t j = 1; j <= kParties; ++j) active.push_back(j);
  for (const std::size_t id : out.dropped)
    EXPECT_EQ(out.ranks[id - 1], 0u) << label << " dropped party " << id;
  if (!gains_distinct(in, active)) return;  // ties: rank order unspecified
  std::vector<AttrVec> sub_infos;
  for (const std::size_t id : active) sub_infos.push_back(in.infos[id - 1]);
  const std::vector<std::size_t> ref =
      reference_ranks(chaos_spec(), in.v0, in.w, sub_infos);
  for (std::size_t i = 0; i < active.size(); ++i)
    EXPECT_EQ(out.ranks[active[i] - 1], ref[i])
        << label << " active party " << active[i];
}

struct KindConfig {
  const char* name;
  const char* spec;
  bool honest;  // channel-detectable: completion implies correctness
};

constexpr KindConfig kKinds[] = {
    {"drop", "drop=0.12", true},
    {"dup", "dup=0.35", true},
    {"reorder", "reorder=0.35", true},
    {"corrupt", "corrupt=0.12", true},
    {"tamper", "tamper=0.08", false},
    {"delay", "delay=0.3,delay_s=0.75", true},
    {"mix", "drop=0.05,dup=0.1,corrupt=0.05,delay=0.1", true},
};
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7};

TEST(Chaos, ProbabilisticFaultMatrixSoak) {
  std::size_t scenarios = 0, completed = 0, faulted = 0;
  for (const bool ss : {false, true}) {
    for (const KindConfig& kind : kKinds) {
      for (const std::uint64_t seed : kSeeds) {
        for (const bool degrade : {false, true}) {
          net::FaultPlanConfig fpc = net::parse_fault_plan(kind.spec);
          fpc.seed = seed;
          const std::uint64_t input_seed = 1000 + seed;
          const std::string label = std::string(ss ? "ss/" : "he/") +
                                    kind.name + "/seed=" +
                                    std::to_string(seed) +
                                    (degrade ? "/degrade" : "");
          SCOPED_TRACE(label);
          const Outcome out = run_scenario(ss, fpc, degrade, input_seed, 1);
          ++scenarios;
          if (out.completed) {
            ++completed;
            if (kind.honest) expect_correct_ranking(out, input_seed, label);
          } else {
            ++faulted;
            EXPECT_FALSE(out.fault_what.empty()) << label;
            EXPECT_NE(out.fault_phase, runtime::Phase::kSetup) << label;
            EXPECT_NE(out.report_json.find("ppgr.fault.v1"),
                      std::string::npos)
                << label;
          }
          // Contract (3): re-run at parallelism 2 — bit-identical outcome.
          if (seed <= 2) {
            const Outcome p2 = run_scenario(ss, fpc, degrade, input_seed, 2);
            EXPECT_EQ(out, p2) << label << " diverged at parallelism 2";
          }
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 196u);
  // The matrix must genuinely exercise both sides of the contract.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(faulted, 0u);
}

TEST(Chaos, CrashMatrixSoak) {
  std::size_t scenarios = 0, degraded_completions = 0;
  for (const bool ss : {false, true}) {
    for (const std::size_t party : {1u, 2u, 3u}) {
      for (const int phase : {1, 2, 3}) {
        for (const bool degrade : {false, true}) {
          net::FaultPlanConfig fpc;
          fpc.seed = 90 + party;
          fpc.crashes.push_back(net::CrashPoint{
              party, static_cast<runtime::Phase>(phase)});
          const std::uint64_t input_seed = 2000 + party * 10 + phase;
          const std::string label =
              std::string(ss ? "ss" : "he") + "/crash=" +
              std::to_string(party) + "@" + std::to_string(phase) +
              (degrade ? "/degrade" : "");
          SCOPED_TRACE(label);
          const Outcome out = run_scenario(ss, fpc, degrade, input_seed, 1);
          ++scenarios;
          if (out.completed) {
            expect_correct_ranking(out, input_seed, label);
            if (!out.dropped.empty()) {
              ++degraded_completions;
              EXPECT_TRUE(degrade) << label;
              EXPECT_EQ(out.dropped, std::vector<std::size_t>{party}) << label;
              EXPECT_EQ(out.active.size(), kParties - 1) << label;
            }
          } else {
            EXPECT_FALSE(out.fault_what.empty()) << label;
            EXPECT_NE(out.fault_what.find("phase"), std::string::npos)
                << label;
            EXPECT_NE(out.report_json.find("\"injected_crash\": 1"),
                      std::string::npos)
                << label;
          }
          // A phase-1 crash with degrade-on-dropout MUST NOT abort: the
          // survivors (4 >= 2t+1 for t=1) carry the session.
          if (phase == 1 && degrade) {
            EXPECT_TRUE(out.completed) << label << " failed to degrade";
          }
          // Phase >= 2 crashes are cryptographically committed: degrade
          // never masks them.
          if (phase >= 2) {
            EXPECT_FALSE(out.completed && !out.dropped.empty()) << label;
          }
          const Outcome p2 = run_scenario(ss, fpc, degrade, input_seed, 2);
          EXPECT_EQ(out, p2) << label << " diverged at parallelism 2";
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 36u);
  EXPECT_GT(degraded_completions, 0u);
}

// Hardware-concurrency spot check: the full matrix above runs at
// parallelism 1 vs 2; here a slice re-runs at parallelism 0 (= hardware
// concurrency) to pin the "any thread count" half of the invariant.
TEST(Chaos, HardwareConcurrencySlice) {
  for (const bool ss : {false, true}) {
    for (const KindConfig& kind : {kKinds[0], kKinds[3], kKinds[6]}) {
      net::FaultPlanConfig fpc = net::parse_fault_plan(kind.spec);
      fpc.seed = 5;
      const std::uint64_t input_seed = 1005;
      const std::string label =
          std::string(ss ? "ss/" : "he/") + kind.name + "/hw";
      SCOPED_TRACE(label);
      const Outcome p1 = run_scenario(ss, fpc, true, input_seed, 1);
      const Outcome hw = run_scenario(ss, fpc, true, input_seed, 0);
      EXPECT_EQ(p1, hw) << label << " diverged at hardware concurrency";
    }
  }
}

// A fault plan with an empty schedule must leave results bit-identical to a
// run with no plan installed at all (modulo the report object existing):
// the fault layer is a strict no-op on the payload path.
TEST(Chaos, InertPlanMatchesNoPlan) {
  const Inputs in = make_inputs(42);
  FrameworkConfig cfg;
  cfg.spec = chaos_spec();
  cfg.n = kParties;
  cfg.k = kTopK;
  cfg.group = &chaos_group();
  cfg.dot_field = &default_dot_field();
  cfg.dot_s = 4;

  ChaChaRng r1{7}, r2{7};
  const FrameworkResult plain = run_framework(cfg, in.v0, in.w, in.infos, r1);

  net::FaultPlanConfig fpc;
  fpc.seed = 3;
  fpc.max_retries = 9;  // recovery knobs alone don't enable injection
  const net::FaultPlan plan{fpc};
  ASSERT_FALSE(plan.enabled());
  FrameworkConfig cfg2 = cfg;
  cfg2.fault_plan = &plan;
  const FrameworkResult gated = run_framework(cfg2, in.v0, in.w, in.infos, r2);

  EXPECT_EQ(plain.ranks, gated.ranks);
  EXPECT_EQ(plain.submitted_ids, gated.submitted_ids);
  EXPECT_EQ(plain.betas, gated.betas);
  EXPECT_EQ(plain.trace.total_bytes(), gated.trace.total_bytes());
  // A report object exists (a plan pointer was installed) but records
  // nothing: no frames, no injections, no recoveries.
  ASSERT_TRUE(gated.faults.has_value());
  EXPECT_EQ(gated.faults->stats.injected_total(), 0u);
  EXPECT_EQ(gated.faults->stats.retransmits, 0u);
}

}  // namespace
}  // namespace ppgr::core

// Shared command-line flags for the figure benchmarks. Every fig2/fig3
// binary documents and accepts the same optional flags:
//
//   --parallelism N    add a real end-to-end run through the parallel
//                      execution engine (serial baseline vs N threads)
//   --metrics-out FILE export the end-to-end run's per-phase crypto-op
//                      counters as JSON (schema ppgr.metrics.v1)
//   --trace-out FILE   export the end-to-end run's Chrome trace-event JSON
//   --comm-out FILE    export the end-to-end run's measured communication
//                      (schema ppgr.comm.v1)
//   --comm-trace-out FILE  export the network-flow Chrome trace
//
// The modeled sweeps price a single participant from exact op counts, so
// they cannot show engine-level behaviour; any of the flags above adds a
// small-but-real dl-test-256 instance executed end to end, which is where
// the metrics and trace exports come from. Output paths are opened before
// the (potentially long) sweep so a typo'd directory fails immediately.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>

#include "core/framework.h"

namespace ppgr::bench {

struct BenchFlags {
  std::size_t parallelism = 0;  // 0 = not requested
  std::string metrics_path;
  std::string trace_path;
  std::string comm_path;
  std::string comm_trace_path;
  std::optional<std::ofstream> metrics_out;
  std::optional<std::ofstream> trace_out;
  std::optional<std::ofstream> comm_out;
  std::optional<std::ofstream> comm_trace_out;

  /// Any flag asks for the real end-to-end engine run.
  [[nodiscard]] bool e2e_requested() const {
    return parallelism > 0 || metrics_out.has_value() ||
           trace_out.has_value() || comm_out.has_value() ||
           comm_trace_out.has_value();
  }

  /// Any export flag that needs cfg.metrics on the end-to-end run.
  [[nodiscard]] bool exports_requested() const {
    return metrics_out.has_value() || trace_out.has_value() ||
           comm_out.has_value() || comm_trace_out.has_value();
  }
};

inline void print_bench_flags_help(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [--parallelism N] [--metrics-out FILE] [--trace-out FILE]\n"
      "       [--comm-out FILE] [--comm-trace-out FILE]\n"
      "\n"
      "With no flags the binary prints its modeled sweep only. Any flag\n"
      "below additionally runs a small real instance end to end through the\n"
      "parallel execution engine:\n"
      "  --parallelism N    worker threads for the end-to-end run; 0 = all\n"
      "                     hardware threads. Compared against the serial\n"
      "                     baseline with a bit-identity check. (default\n"
      "                     when only an export flag is given: 1)\n"
      "  --metrics-out FILE write the end-to-end run's per-phase crypto-op\n"
      "                     counters as JSON (schema ppgr.metrics.v1) and\n"
      "                     print a per-phase report\n"
      "  --trace-out FILE   write the end-to-end run's Chrome trace-event\n"
      "                     JSON (open in about:tracing or\n"
      "                     https://ui.perfetto.dev)\n"
      "  --comm-out FILE    write the end-to-end run's measured\n"
      "                     communication as JSON (schema ppgr.comm.v1)\n"
      "  --comm-trace-out FILE\n"
      "                     write the end-to-end run's network-flow Chrome\n"
      "                     trace on the simulated timeline\n"
      "  --help             show this message\n",
      prog);
}

/// Opens an export path for writing, failing fast (exit 2) so a typo'd
/// directory does not cost a full sweep. Same contract as ppgr_cli.
inline std::ofstream open_bench_out(const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    std::exit(2);
  }
  return out;
}

/// Parses the shared flags. Exits 0 on --help, 2 on an unknown option, a
/// missing argument or an unwritable output path.
inline BenchFlags parse_bench_flags(int argc, char** argv) {
  BenchFlags flags;
  bool parallelism_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        print_bench_flags_help(argv[0], stdout);
        std::exit(0);
      } else if (arg == "--parallelism") {
        flags.parallelism = std::stoul(value());
        parallelism_given = true;
      } else if (arg == "--metrics-out") {
        flags.metrics_path = value();
      } else if (arg == "--trace-out") {
        flags.trace_path = value();
      } else if (arg == "--comm-out") {
        flags.comm_path = value();
      } else if (arg == "--comm-trace-out") {
        flags.comm_trace_path = value();
      } else {
        std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
        print_bench_flags_help(argv[0], stderr);
        std::exit(2);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: bad value for %s\n", arg.c_str());
      std::exit(2);
    }
  }
  // An export flag alone implies a single-threaded end-to-end run;
  // `--parallelism 0` explicitly means all hardware threads.
  if (!parallelism_given &&
      (!flags.metrics_path.empty() || !flags.trace_path.empty() ||
       !flags.comm_path.empty() || !flags.comm_trace_path.empty())) {
    flags.parallelism = 1;
  }
  if (!flags.metrics_path.empty())
    flags.metrics_out = open_bench_out(flags.metrics_path);
  if (!flags.trace_path.empty())
    flags.trace_out = open_bench_out(flags.trace_path);
  if (!flags.comm_path.empty())
    flags.comm_out = open_bench_out(flags.comm_path);
  if (!flags.comm_trace_path.empty())
    flags.comm_trace_out = open_bench_out(flags.comm_trace_path);
  return flags;
}

/// Real end-to-end run of the HE framework through the parallel execution
/// engine: serial baseline vs `flags.parallelism` threads on the same seed,
/// with a determinism check, plus the metrics/trace exports when requested.
/// Complements the modeled sweeps, which price a single participant and
/// therefore cannot show engine-level speedup.
inline void run_parallel_e2e(BenchFlags& flags, std::size_t n = 16) {
  const auto g = group::make_group(group::GroupId::kDlTest256);
  core::FrameworkConfig cfg;
  cfg.spec = core::ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
  cfg.n = n;
  cfg.k = 3;
  cfg.group = g.get();
  cfg.dot_field = &core::default_dot_field();
  cfg.metrics = flags.exports_requested();

  core::AttrVec v0(cfg.spec.m, 7), w(cfg.spec.m, 3);
  std::vector<core::AttrVec> infos;
  for (std::size_t j = 0; j < n; ++j) {
    infos.emplace_back(cfg.spec.m, (j * 11 + 5) % (1u << cfg.spec.d1));
  }

  const auto timed_run = [&](std::size_t p) {
    cfg.parallelism = p;
    mpz::ChaChaRng rng{1234};
    const auto t0 = std::chrono::steady_clock::now();
    auto res = core::run_framework(cfg, v0, w, infos, rng);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return std::make_pair(wall, std::move(res));
  };

  std::printf("end-to-end engine check: group=%s n=%zu l=%zu\n",
              g->name().c_str(), n, cfg.spec.beta_bits());
  const auto [serial_s, serial] = timed_run(1);
  const auto [par_s, par] = timed_run(flags.parallelism);
  bool same = serial.ranks == par.ranks &&
              serial.submitted_ids == par.submitted_ids &&
              serial.trace.total_bytes() == par.trace.total_bytes();
  if (cfg.metrics) {
    // The deterministic exports must be bit-identical across thread counts.
    same = same &&
           serial.metrics->to_json(/*include_timing=*/false) ==
               par.metrics->to_json(/*include_timing=*/false) &&
           serial.spans->chrome_trace_json(/*deterministic=*/true) ==
               par.spans->chrome_trace_json(/*deterministic=*/true) &&
           serial.comm->to_json() == par.comm->to_json() &&
           serial.comm->chrome_trace_json() == par.comm->chrome_trace_json();
  }
  std::printf(
      "  parallelism=1: %.3fs   parallelism=%zu: %.3fs   speedup=%.2fx   "
      "outputs identical: %s\n\n",
      serial_s, flags.parallelism, par_s, serial_s / par_s,
      same ? "yes" : "NO");

  if (flags.metrics_out) {
    *flags.metrics_out << par.metrics->to_json(/*include_timing=*/true);
    std::printf("%s\nmetrics JSON written to %s\n",
                runtime::phase_report(*par.metrics, par.spans.get(),
                                      par.comm.get())
                    .c_str(),
                flags.metrics_path.c_str());
  }
  if (flags.trace_out) {
    *flags.trace_out << par.spans->chrome_trace_json(/*deterministic=*/false);
    std::printf("Chrome trace written to %s (open in about:tracing)\n",
                flags.trace_path.c_str());
  }
  if (flags.comm_out) {
    *flags.comm_out << par.comm->to_json();
    std::printf("communication JSON written to %s\n", flags.comm_path.c_str());
  }
  if (flags.comm_trace_out) {
    *flags.comm_trace_out << par.comm->chrome_trace_json();
    std::printf("network-flow trace written to %s (open in Perfetto)\n",
                flags.comm_trace_path.c_str());
  }
}

}  // namespace ppgr::bench

// Fig. 2(a): per-participant computation time vs the number of participants
// n. Paper observation to reproduce: the SS framework grows ~cubically in n
// while the HE frameworks grow ~quadratically, and ECC < DL < SS at
// moderate-to-large n.
#include "fig2_common.h"

int main(int argc, char** argv) {
  using namespace ppgr::bench;
  BenchFlags flags = parse_bench_flags(argc, argv);
  std::vector<SweepPoint> points;
  for (const std::size_t n : {10u, 20u, 25u, 30u, 40u, 55u, 70u, 85u, 100u}) {
    points.push_back({n, ppgr::benchcore::paper_default_spec(), n});
  }
  run_fig2_sweep("Fig 2(a)", "n", points);
  if (flags.e2e_requested()) run_parallel_e2e(flags);
  return 0;
}

// Fig. 3(b): execution time including network latency, on the paper's
// topology: 80 nodes, 320 duplex 2 Mbps links with 50 ms latency, random
// connected graph obtained by deleting edges from the complete graph.
// Protocol communication traces are recorded from counted protocol runs and
// replayed through the packet simulator.
//
// Two SS variants are simulated (see EXPERIMENTS.md):
//  - "ss-lean": this repository's implementation (linear-round prefix
//    products, ~15l multiplications per comparison -> few bytes, many
//    rounds);
//  - "ss-279l": the primitive the paper cites (Nishide-Ohta, constant
//    rounds, 279l+5 multiplications per comparison, each an all-to-all
//    resharing) — the baseline the paper's crossover claim is about.
//
// Paper observation to reproduce (with ss-279l): SS beats DL for small n
// but falls behind as n grows, when its traffic and congestion explode;
// ECC best throughout.
#include <cstdio>

#include "bench_flags.h"
#include "benchcore/model.h"
#include "net/simulator.h"
#include "sss/mpc_sort.h"

namespace {

// One representative all-to-all round among n parties, scaled by the round
// count: every parallel round of an SS protocol is statistically identical,
// so simulating one and multiplying is equivalent to simulating them all.
double all_to_all_rounds_seconds(ppgr::net::Simulator& sim,
                                 std::span<const std::size_t> node_of,
                                 std::size_t n, double total_bytes,
                                 double rounds) {
  const std::size_t pairs = n * (n - 1);
  const std::size_t per_msg = std::max<std::size_t>(
      1, static_cast<std::size_t>(total_bytes / (rounds * pairs)));
  std::vector<ppgr::runtime::Transfer> one_round;
  one_round.reserve(pairs);
  for (std::size_t a = 1; a <= n; ++a)
    for (std::size_t b = 1; b <= n; ++b)
      if (a != b) one_round.push_back({0, a, b, per_msg});
  return sim.replay(one_round, node_of).total_seconds * rounds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppgr;
  using benchcore::TablePrinter;
  bench::BenchFlags flags = bench::parse_bench_flags(argc, argv);

  // The paper's network.
  mpz::ChaChaRng topo_rng{80320};
  const net::Topology topo = net::Topology::random_connected(80, 320, topo_rng);
  net::Simulator sim{topo, net::SimulatorConfig{}};

  const auto spec = benchcore::paper_default_spec();
  const std::size_t l_field = spec.beta_bits() + 2;
  const auto dl = group::make_group(group::GroupId::kDl1024);
  const auto ec = group::make_group(group::GroupId::kEcP192);
  mpz::ChaChaRng rng{44};
  const auto dl_costs = benchcore::calibrate_group(*dl, rng);
  const auto ec_costs = benchcore::calibrate_group(*ec, rng);
  // Assumed round count of the cited constant-round comparison.
  constexpr double kNishideOhtaRounds = 15.0;

  std::printf("Fig 3(b): execution time (computation + simulated network) "
              "vs n\n80-node random graph, 320 links, 2 Mbps, 50 ms "
              "latency\n\n");
  TablePrinter table({"n", "ss-lean", "ss-279l", "dl-1024", "ecc-p192",
                      "ss279 net", "dl net", "ecc net"});

  for (const std::size_t n : {10u, 20u, 30u, 40u, 50u, 60u, 70u}) {
    // Place parties on distinct nodes, spread deterministically.
    std::vector<std::size_t> node_of(n + 1);
    for (std::size_t p = 0; p <= n; ++p) node_of[p] = (p * 79) % 80;

    const std::uint64_t seed = 1000 + n;
    const auto ssp = benchcore::price_ss_framework(spec, n, 3, seed);
    const auto dl_counts = benchcore::count_he_framework(
        spec, n, 3, dl->element_bytes(), dl->field_bits(), seed);
    const auto ec_counts = benchcore::count_he_framework(
        spec, n, 3, ec->element_bytes(), ec->field_bits(), seed);
    const auto dlp =
        benchcore::price_he_counts(dl_counts, dl->name(), dl_costs, true);
    const auto ecp =
        benchcore::price_he_counts(ec_counts, ec->name(), ec_costs, true);

    // HE traces: replay in full.
    const double dl_net =
        sim.replay(dlp.trace.transfers(), node_of).total_seconds;
    const double ec_net =
        sim.replay(ecp.trace.transfers(), node_of).total_seconds;

    // ss-lean: this repo's implementation, measured counts.
    const double lean_net = all_to_all_rounds_seconds(
        sim, node_of, n, static_cast<double>(ssp.totals.bytes),
        static_cast<double>(std::max<std::uint64_t>(1, ssp.parallel_rounds)));

    // ss-279l: cited primitive. Per comparison: (279 l + 5) GRR
    // multiplications, each an n(n-1)-message resharing of field elements;
    // constant ~15 rounds per comparison, layer-parallel network.
    const auto network = sss::batcher_network(n);
    const double comparators =
        static_cast<double>(sss::comparator_count(network));
    const double mults279 = comparators * (279.0 * l_field + 5.0);
    const std::size_t fe_bytes = (l_field + 7) / 8;
    const double bytes279 =
        mults279 * static_cast<double>(n * (n - 1)) * fe_bytes;
    const double rounds279 =
        static_cast<double>(network.size()) * kNishideOhtaRounds + 2.0;
    const double ss279_net =
        all_to_all_rounds_seconds(sim, node_of, n, bytes279, rounds279);
    // Compute cost of ss-279l: same per-multiplication price as measured.
    const mpz::FpCtx& ss_field = core::ss_field_for_beta_bits(spec.beta_bits());
    mpz::ChaChaRng crng{seed + 9};
    const auto ss_costs = benchcore::calibrate_ss(
        ss_field, n, std::max<std::size_t>(1, (n - 1) / 2), crng);
    const double ss279_cpu = mults279 * ss_costs.mult_party_s;

    table.row({std::to_string(n),
               TablePrinter::fmt_seconds(ssp.total_seconds() + lean_net),
               TablePrinter::fmt_seconds(ss279_cpu + ss279_net),
               TablePrinter::fmt_seconds(dlp.total_seconds() + dl_net),
               TablePrinter::fmt_seconds(ecp.total_seconds() + ec_net),
               TablePrinter::fmt_seconds(ss279_net),
               TablePrinter::fmt_seconds(dl_net),
               TablePrinter::fmt_seconds(ec_net)});
  }
  std::printf(
      "\nObserved shape: ECC best throughout (reproduces the paper); the "
      "network\ncost decomposition shows the paper's mechanism — SS cost "
      "driven by its\ninteraction traffic, DL by bulk chain transfers — but "
      "the specific SS<DL\nsmall-n crossover the paper reports does not "
      "emerge under store-and-forward\nreplay of the full protocol volumes; "
      "see the Fig 3(b) analysis in\nEXPERIMENTS.md.\n\n");
  if (flags.e2e_requested()) bench::run_parallel_e2e(flags);
  return 0;
}

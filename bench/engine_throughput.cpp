// Open-loop throughput of the multi-session ranking engine: for each preset
// a burst of S sessions is submitted at once and driven through a shared
// thread pool at a fixed admission cap (default load 16), twice —
//
//   cold: a fresh PrecomputeCache (every joint-key table / zero pool built)
//   warm: a second engine with the same seed and requests over the same
//         cache — a bit-for-bit replay, so every artifact is already
//         resident and setup collapses to cache lookups
//
// — and BENCH_engine.json records sessions/sec, p50/p95 session latency,
// per-pass setup time and the cold/warm setup speedup, alongside the
// deterministic leaves (cache hit/miss counts, outputs_identical) that the
// bench-regress CI leg gates exactly.
//
// The "small" preset additionally runs a third (warm) pass with a live
// telemetry sampler attached at the operator-default 100 ms period. The
// recorded "telemetry" block gates the sampler overhead: the fraction of the
// pass spent inside sampler callbacks (snapshot + JSONL + OpenMetrics
// rendering) must stay under 1%, and the observed pass must stay
// bit-identical to the unobserved ones (the non-perturbation invariant at
// bench scale). The busy-fraction measure is used instead of a wall-clock
// A/B delta because the latter is scheduler noise on 1-core CI boxes.
//
// A fourth (warm) pass runs with the forensic flight recorder attached
// (runtime/flightrec.h, 4096-event ring per session) — the always-on budget
// for the recorder. The "flight" block gates its overhead the same way:
// events-recorded x a calibrated per-record() cost must stay under 1% of
// the pass wall, and outputs must stay bit-identical. The event count
// itself is deterministic (the event sequence is a pure function of a
// fault-free run), so bench_compare gates it exactly.
//
// The final "tcp_loopback" block measures the real-socket transport
// (net::tcp, DESIGN.md §5f): framed round trips over a loopback
// TcpTransport pair — p50/p95 round-trip latency for a protocol-sized
// payload. Frame and byte counts are exact leaves; the latencies are
// wall-clock and classified noisy by bench_compare.
//
// Usage: engine_throughput [--load N] [--parallelism N] [--seed S]
//                          [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/introspect.h"
#include "net/tcp/transport.h"
#include "runtime/flightrec.h"

namespace {

using namespace ppgr;
using engine::EngineConfig;
using engine::FrameworkKind;
using engine::PrecomputeCache;
using engine::PrecomputeStats;
using engine::RankingRequest;
using engine::SessionEngine;
using engine::SessionResult;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Preset {
  const char* name;
  std::size_t n;
  std::size_t k;
  std::size_t sessions;
};

// Paper-scale spec (the fig2a default: m=4, t=2, d1=8, d2=6, h=8 → l=35)
// at three group sizes; session counts keep each preset in seconds.
constexpr Preset kPresets[] = {
    {"small", 4, 2, 12},
    {"fig2a", 8, 3, 8},
    {"wide", 12, 3, 4},
};

std::vector<RankingRequest> make_requests(const Preset& preset) {
  std::vector<RankingRequest> reqs;
  for (std::uint64_t sid = 1; sid <= preset.sessions; ++sid) {
    RankingRequest req;
    req.session_id = sid;
    req.spec = core::ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
    req.k = preset.k;
    mpz::ChaChaRng rng{4242 + sid};
    req.v0.resize(req.spec.m);
    req.w.resize(req.spec.m);
    for (auto& x : req.v0) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
    for (auto& x : req.w) x = rng.below_u64(std::uint64_t{1} << req.spec.d2);
    for (std::size_t j = 0; j < preset.n; ++j) {
      core::AttrVec v(req.spec.m);
      for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << req.spec.d1);
      req.infos.push_back(std::move(v));
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

struct PassStats {
  double wall_seconds = 0.0;
  double setup_seconds = 0.0;  // sum over sessions of precompute fetch/build
  double p50 = 0.0;
  double p95 = 0.0;
  std::uint64_t samples = 0;        // telemetry pass only
  double sampler_busy_seconds = 0.0;  // total time inside sampler callbacks
  std::uint64_t flight_recorded = 0;  // flight pass only: events, all sessions
  PrecomputeStats cache;
  std::vector<SessionResult> results;
};

constexpr double kTelemetryPeriodS = 0.1;   // operator default (100 ms)
constexpr std::size_t kFlightEvents = 4096;  // per-session ring capacity

PassStats run_pass(const Preset& preset, PrecomputeCache& cache,
                   std::size_t load, std::size_t parallelism,
                   std::uint64_t seed, bool with_telemetry = false,
                   std::size_t flight_events = 0) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.max_in_flight = load;
  cfg.parallelism = parallelism;
  cfg.cache = &cache;
  cfg.flight_events = flight_events;
  SessionEngine eng{cfg};

  PassStats stats;
  // The same composition EngineSampler runs (snapshot -> JSONL + OpenMetrics
  // page), with the callback timed so the overhead gate measures the real
  // per-sample cost rather than a noisy wall-clock A/B difference.
  std::atomic<std::uint64_t> busy_ns{0};
  runtime::TelemetrySampler sampler{
      runtime::TelemetrySampler::Config{kTelemetryPeriodS, "", ""},
      [&eng, &busy_ns] {
        const double a = now_s();
        const engine::EngineSnapshot s =
            engine::snapshot(eng, /*stall_deadline_s=*/5.0);
        runtime::TelemetrySample out{s.to_jsonl(), s.to_openmetrics()};
        busy_ns.fetch_add(static_cast<std::uint64_t>((now_s() - a) * 1e9),
                          std::memory_order_relaxed);
        return out;
      }};
  if (with_telemetry) sampler.start();

  const double t0 = now_s();
  stats.results = eng.run_batch(make_requests(preset));
  stats.wall_seconds = now_s() - t0;
  if (with_telemetry) {
    sampler.stop();
    stats.samples = sampler.samples();
    stats.sampler_busy_seconds =
        static_cast<double>(busy_ns.load()) * 1e-9;
  }
  std::vector<double> latencies;
  for (const auto& res : stats.results) {
    stats.setup_seconds += res.setup_seconds;
    latencies.push_back(res.wall_seconds);
    if (res.flight != nullptr) stats.flight_recorded += res.flight->recorded();
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50 = latencies[latencies.size() / 2];
  stats.p95 =
      latencies[std::min(latencies.size() - 1, latencies.size() * 95 / 100)];
  stats.cache = eng.precompute_stats();
  return stats;
}

// Median per-record() cost of the flight ring, measured hot (the ring and
// its mutex resident in cache — the state a recording session runs in).
double calibrate_flight_record_seconds() {
  runtime::FlightRecorder rec{kFlightEvents};
  constexpr std::uint64_t kCalls = 1u << 18;
  double best = 1e9;  // best-of-3 to shed scheduler noise
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < kCalls; ++i)
      rec.record(runtime::FlightEventKind::kSend, runtime::Phase::kPhase2, 0,
                 1, 2, i);
    best = std::min(best, now_s() - t0);
  }
  return best / static_cast<double>(kCalls);
}

bool passes_identical(const PassStats& a, const PassStats& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const SessionResult& x = a.results[i];
    const SessionResult& y = b.results[i];
    if (x.ranks() != y.ranks() || x.submitted_ids() != y.submitted_ids() ||
        x.he.betas != y.he.betas ||
        x.trace().total_bytes() != y.trace().total_bytes() ||
        x.metrics()->to_json(/*include_timing=*/false) !=
            y.metrics()->to_json(/*include_timing=*/false))
      return false;
  }
  return true;
}

// Round trips of a protocol-sized framed payload over a real loopback
// TcpTransport pair (kernel-assigned ports): party 1 echoes every frame
// back, party 0 measures send->receive round-trip time per frame.
struct TcpLoopbackStats {
  std::uint64_t frames = 0;       // frames on the wire (2 per round trip)
  std::size_t payload_bytes = 0;  // per-frame payload size
  double p50 = 0.0, p95 = 0.0, wall = 0.0;
};

TcpLoopbackStats measure_tcp_loopback() {
  using net::tcp::Endpoint;
  using net::tcp::TcpTransport;
  using net::tcp::TcpTransportConfig;
  constexpr std::size_t kRoundTrips = 256;
  constexpr std::size_t kPayloadBytes = 4096;

  std::vector<std::unique_ptr<TcpTransport>> mesh;
  for (std::size_t p = 0; p < 2; ++p) {
    TcpTransportConfig cfg;
    cfg.party = p;
    cfg.parties = 2;
    cfg.listen = Endpoint{"127.0.0.1", 0};
    cfg.peers.resize(2);
    cfg.session = 0xBE7CBE7C;
    mesh.push_back(std::make_unique<TcpTransport>(std::move(cfg)));
  }
  mesh[0]->set_peer(1, Endpoint{"127.0.0.1", mesh[1]->listen_port()});
  mesh[1]->set_peer(0, Endpoint{"127.0.0.1", mesh[0]->listen_port()});
  std::thread dial{[&] { mesh[1]->connect(); }};
  mesh[0]->connect();
  dial.join();

  std::thread echo{[&] {
    for (std::size_t i = 0; i < kRoundTrips; ++i)
      mesh[1]->send(1, 0, mesh[1]->receive(0, 1));
  }};
  const std::vector<std::uint8_t> payload(kPayloadBytes, 0xA5);
  std::vector<double> latencies;
  latencies.reserve(kRoundTrips);
  const double wall0 = now_s();
  for (std::size_t i = 0; i < kRoundTrips; ++i) {
    const double t0 = now_s();
    mesh[0]->send(0, 1, payload);
    (void)mesh[0]->receive(1, 0);
    latencies.push_back(now_s() - t0);
  }
  TcpLoopbackStats stats;
  stats.wall = now_s() - wall0;
  echo.join();
  std::sort(latencies.begin(), latencies.end());
  stats.frames = 2 * kRoundTrips;
  stats.payload_bytes = kPayloadBytes;
  stats.p50 = latencies[latencies.size() / 2];
  stats.p95 = latencies[latencies.size() * 95 / 100];
  return stats;
}

void print_counters(std::FILE* out, const char* label,
                    const PrecomputeStats& s) {
  std::fprintf(out,
               "     \"%s\": {\"generator_tables\": {\"hits\": %llu, "
               "\"misses\": %llu}, \"joint_key_tables\": {\"hits\": %llu, "
               "\"misses\": %llu}, \"zero_pools\": {\"hits\": %llu, "
               "\"misses\": %llu}}",
               label,
               static_cast<unsigned long long>(s.generator_table.hits),
               static_cast<unsigned long long>(s.generator_table.misses),
               static_cast<unsigned long long>(s.key_table.hits),
               static_cast<unsigned long long>(s.key_table.misses),
               static_cast<unsigned long long>(s.zero_pool.hits),
               static_cast<unsigned long long>(s.zero_pool.misses));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t load = 16;
  std::size_t parallelism = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 20250807;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--load") == 0) load = std::stoul(argv[i + 1]);
    else if (std::strcmp(argv[i], "--parallelism") == 0)
      parallelism = std::stoul(argv[i + 1]);
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::stoull(argv[i + 1]);
    else if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("engine_throughput: load=%zu, parallelism=%zu (0=hw), "
              "hardware_concurrency=%u\n\n",
              load, parallelism, std::thread::hardware_concurrency());
  std::printf("%8s %4s %9s  %12s %12s %14s %10s\n", "preset", "n", "sessions",
              "cold[s/s]", "warm[s/s]", "setup-speedup", "identical");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"engine_throughput\",\n"
               "  \"group\": \"dl-test-256\",\n"
               "  \"load\": %zu,\n"
               "  \"engine_seed\": %llu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"presets\": [\n",
               load, static_cast<unsigned long long>(seed),
               std::thread::hardware_concurrency());

  bool all_identical = true;
  bool telemetry_gate_ok = true;
  double tele_overhead = 0.0, tele_wall = 0.0, tele_busy = 0.0;
  std::uint64_t tele_samples = 0;
  bool flight_gate_ok = true;
  bool flight_identical = true;
  double flight_overhead = 0.0, flight_wall = 0.0, flight_per_event = 0.0;
  std::uint64_t flight_recorded = 0;
  for (std::size_t pi = 0; pi < std::size(kPresets); ++pi) {
    const Preset& preset = kPresets[pi];
    PrecomputeCache cache;
    const PassStats cold = run_pass(preset, cache, load, parallelism, seed);
    const PassStats warm = run_pass(preset, cache, load, parallelism, seed);
    bool identical = passes_identical(cold, warm);

    if (pi == 0) {
      // Sampler overhead gate on the small preset: a third warm pass with
      // the 100 ms sampler attached must stay bit-identical and spend <1%
      // of the pass inside sampler callbacks.
      const PassStats tele =
          run_pass(preset, cache, load, parallelism, seed,
                   /*with_telemetry=*/true);
      identical = identical && passes_identical(cold, tele);
      tele_wall = tele.wall_seconds;
      tele_busy = tele.sampler_busy_seconds;
      tele_samples = tele.samples;
      tele_overhead =
          tele.wall_seconds > 0.0 ? tele_busy / tele.wall_seconds : 0.0;
      telemetry_gate_ok = tele_overhead < 0.01;
      std::printf(
          "%8s      telemetry: %llu samples @ %.0fms, overhead %.4f%% "
          "(gate <1%%) %s\n",
          preset.name, static_cast<unsigned long long>(tele_samples),
          kTelemetryPeriodS * 1e3, tele_overhead * 100.0,
          telemetry_gate_ok ? "ok" : "FAIL");

      // Flight-recorder budget on the small preset: a fourth warm pass with
      // the per-session ring attached must stay bit-identical, and the
      // recording cost (events x calibrated per-record cost) must stay
      // under 1% of the pass wall.
      const PassStats flight =
          run_pass(preset, cache, load, parallelism, seed,
                   /*with_telemetry=*/false, kFlightEvents);
      flight_identical = passes_identical(cold, flight);
      identical = identical && flight_identical;
      flight_per_event = calibrate_flight_record_seconds();
      flight_recorded = flight.flight_recorded;
      flight_wall = flight.wall_seconds;
      flight_overhead =
          flight_wall > 0.0
              ? static_cast<double>(flight_recorded) * flight_per_event /
                    flight_wall
              : 0.0;
      flight_gate_ok = flight_overhead < 0.01;
      std::printf(
          "%8s      flight: %llu events @ %.0fns, overhead %.4f%% "
          "(gate <1%%) %s\n",
          preset.name, static_cast<unsigned long long>(flight_recorded),
          flight_per_event * 1e9, flight_overhead * 100.0,
          flight_gate_ok ? "ok" : "FAIL");
    }
    all_identical = all_identical && identical;

    const double cold_tput = preset.sessions / cold.wall_seconds;
    const double warm_tput = preset.sessions / warm.wall_seconds;
    const double setup_speedup =
        warm.setup_seconds > 0.0 ? cold.setup_seconds / warm.setup_seconds
                                 : 0.0;
    std::printf("%8s %4zu %9zu  %12.2f %12.2f %13.1fx %10s\n", preset.name,
                preset.n, preset.sessions, cold_tput, warm_tput, setup_speedup,
                identical ? "yes" : "NO");

    std::fprintf(out,
                 "    {\"preset\": \"%s\", \"n\": %zu, \"k\": %zu, "
                 "\"sessions\": %zu, \"beta_bits\": %zu,\n"
                 "     \"outputs_identical\": %s,\n",
                 preset.name, preset.n, preset.k, preset.sessions,
                 core::ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8}
                     .beta_bits(),
                 identical ? "true" : "false");
    print_counters(out, "cold_cache", cold.cache);
    std::fprintf(out, ",\n");
    print_counters(out, "warm_cache", warm.cache);
    std::fprintf(out,
                 ",\n"
                 "     \"cold_wall_seconds\": %.6f, "
                 "\"warm_wall_seconds\": %.6f,\n"
                 "     \"cold_throughput_sessions_per_sec\": %.4f, "
                 "\"warm_throughput_sessions_per_sec\": %.4f,\n"
                 "     \"cold_latency_p50_seconds\": %.6f, "
                 "\"cold_latency_p95_seconds\": %.6f,\n"
                 "     \"warm_latency_p50_seconds\": %.6f, "
                 "\"warm_latency_p95_seconds\": %.6f,\n"
                 "     \"cold_setup_total_seconds\": %.6f, "
                 "\"warm_setup_total_seconds\": %.6f,\n"
                 "     \"setup_speedup_cold_vs_warm\": %.2f}%s\n",
                 cold.wall_seconds, warm.wall_seconds, cold_tput, warm_tput,
                 cold.p50, cold.p95, warm.p50, warm.p95, cold.setup_seconds,
                 warm.setup_seconds, setup_speedup,
                 pi + 1 < std::size(kPresets) ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Sampler overhead on the small preset (see the header comment). All
  // leaves except the gate verdict and the period are wall-clock-derived —
  // bench_compare.py classifies them as noisy; gate_pass flipping means the
  // sampler got two orders of magnitude slower, which IS a regression.
  std::fprintf(out,
               "  \"telemetry\": {\"period_seconds\": %.3f, "
               "\"samples\": %llu,\n"
               "    \"wall_seconds\": %.6f, \"sampler_overhead_seconds\": "
               "%.6f,\n"
               "    \"overhead_ratio\": %.6f, \"gate_ratio\": 0.01, "
               "\"gate_pass\": %s},\n",
               kTelemetryPeriodS,
               static_cast<unsigned long long>(tele_samples), tele_wall,
               tele_busy, tele_overhead,
               telemetry_gate_ok ? "true" : "false");
  // Flight-recorder budget on the small preset. events_recorded,
  // outputs_identical and gate_pass are deterministic-exact leaves; the
  // per-event cost and ratios are wall-clock noise.
  std::fprintf(out,
               "  \"flight\": {\"events_capacity\": %zu, "
               "\"events_recorded\": %llu,\n"
               "    \"outputs_identical\": %s,\n"
               "    \"wall_seconds\": %.6f, \"per_event_seconds\": %.9f,\n"
               "    \"overhead_ratio\": %.6f, \"gate_ratio\": 0.01, "
               "\"gate_pass\": %s},\n",
               kFlightEvents,
               static_cast<unsigned long long>(flight_recorded),
               flight_identical ? "true" : "false", flight_wall,
               flight_per_event, flight_overhead,
               flight_gate_ok ? "true" : "false");
  // Real-socket frame round trips over loopback (see the header comment).
  // frames / payload_bytes are exact; the latency/wall leaves are noisy.
  const TcpLoopbackStats tcp = measure_tcp_loopback();
  std::printf(
      "\n     tcp loopback: %llu frames x %zu B, round trip p50 %.0f us "
      "p95 %.0f us\n",
      static_cast<unsigned long long>(tcp.frames), tcp.payload_bytes,
      tcp.p50 * 1e6, tcp.p95 * 1e6);
  std::fprintf(out,
               "  \"tcp_loopback\": {\"frames\": %llu, "
               "\"payload_bytes\": %zu,\n"
               "    \"latency_p50_seconds\": %.9f, "
               "\"latency_p95_seconds\": %.9f,\n"
               "    \"wall_seconds\": %.6f}\n",
               static_cast<unsigned long long>(tcp.frames), tcp.payload_bytes,
               tcp.p50, tcp.p95, tcp.wall);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return all_identical && telemetry_gate_ok && flight_gate_ok ? 0 : 1;
}

// Fig. 2(d): per-participant computation time vs the masking-factor bit
// length h at n = 25. h enters l linearly, so growth is linear — the paper's
// reported shape.
#include "fig2_common.h"

int main(int argc, char** argv) {
  using namespace ppgr::bench;
  BenchFlags flags = parse_bench_flags(argc, argv);
  std::vector<SweepPoint> points;
  for (const std::size_t h : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    auto spec = ppgr::benchcore::paper_default_spec();
    spec.h = h;
    points.push_back({h, spec, 25});
  }
  run_fig2_sweep("Fig 2(d)", "h", points);
  if (flags.e2e_requested()) run_parallel_e2e(flags);
  return 0;
}

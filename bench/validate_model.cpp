// Model validation: the figure benchmarks price exact operation counts with
// calibrated per-op costs instead of running 1024-bit crypto for hours at
// n = 70. This bench justifies that: it runs the REAL framework end to end
// at small n and compares measured mean per-participant compute time against
// the model's prediction for the same configuration.
#include <cstdio>

#include "benchcore/model.h"

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;

  // Small spec so the real run stays in seconds.
  core::ProblemSpec spec{.m = 6, .t = 3, .d1 = 8, .d2 = 8, .h = 8};

  std::printf("Model validation: measured real runs vs modeled predictions\n"
              "(l = %zu bits)\n\n", spec.beta_bits());
  TablePrinter table({"group", "n", "measured/party", "modeled/party",
                      "model/measured"});

  mpz::ChaChaRng rng{66};
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kDl1024}) {
    const auto g = group::make_group(gid);
    const auto costs = benchcore::calibrate_group(*g, rng);
    for (const std::size_t n : {4u, 6u, 8u}) {
      const auto inst = benchcore::random_instance(spec, n, 77 + n);
      core::FrameworkConfig cfg;
      cfg.spec = spec;
      cfg.n = n;
      cfg.k = 2;
      cfg.group = g.get();
      cfg.dot_field = &core::default_dot_field();
      mpz::ChaChaRng run_rng{88 + n};
      const auto real =
          core::run_framework(cfg, inst.v0, inst.w, inst.infos, run_rng);
      double measured = 0;
      for (std::size_t j = 1; j <= n; ++j) measured += real.compute_seconds[j];
      measured /= static_cast<double>(n);

      const auto modeled =
          benchcore::price_he_framework(spec, n, 2, *g, costs, 77 + n);
      char ratio[16];
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    modeled.total_seconds() / measured);
      table.row({g->name(), std::to_string(n),
                 TablePrinter::fmt_seconds(measured),
                 TablePrinter::fmt_seconds(modeled.total_seconds()), ratio});
    }
  }
  std::printf("\nA ratio near 1.0 validates pricing counted ops with "
              "calibrated costs.\n");
  return 0;
}

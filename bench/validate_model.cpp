// Model validation: the figure benchmarks price exact operation counts with
// calibrated per-op costs instead of running 1024-bit crypto for hours at
// n = 70. This bench justifies that two ways:
//
//  - default mode: runs the REAL framework end to end at small n and
//    compares measured mean per-participant compute time against the
//    model's prediction for the same configuration (timing sanity check);
//  - --check mode (run as the `model_validation` ctest): runs the real
//    framework with the runtime metrics layer enabled and asserts the
//    *measured* group-op counters match the CountingGroup totals of
//    benchcore::count_he_framework exactly, reporting the offending counter
//    on drift. This pins the Sec. VI-B analytical table to the real
//    runtime: an instrumentation or protocol change that alters either
//    side's counts fails CI;
//  - --check-comm mode (run as the `comm_validation` ctest): runs the real
//    framework and asserts the communication CommRegistry *measured* on the
//    wire (every message serialized through net::Router) matches
//    benchcore::model_he_comm — the closed-form per-(phase, link)
//    message/byte model — exactly, link by link. A codec or protocol change
//    that alters either side fails CI.
#include <cstdio>
#include <cstring>

#include "benchcore/model.h"

namespace {

using namespace ppgr;

/// Exits nonzero on the first counter that drifts between the measured
/// runtime metrics and the counted model run.
int run_check() {
  const core::ProblemSpec spec{.m = 4, .t = 2, .d1 = 6, .d2 = 6, .h = 6};
  constexpr std::size_t n = 4;
  constexpr std::size_t k = 2;
  constexpr std::uint64_t seed = 1234;

  // Model side: CountingGroup totals from the counted mock-group run.
  const auto g = group::make_group(group::GroupId::kDlTest256);
  const auto model = benchcore::count_he_framework(
      spec, n, k, g->element_bytes(), g->field_bits(), seed);

  // Measured side: the real framework under the metrics layer, constructed
  // exactly as count_he_framework constructs its counted run (same
  // instance, same seed-derived streams) — group operations in this
  // protocol are data-independent, so the two runs must perform the same
  // interface-level op sequence.
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = n;
  cfg.k = k;
  cfg.group = g.get();
  cfg.dot_field = &core::default_dot_field();
  cfg.metrics = true;
  const auto inst = benchcore::random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 1};
  const auto real = core::run_framework(cfg, inst.v0, inst.w, inst.infos, rng);
  const auto measured = real.metrics->totals();

  int failures = 0;
  const auto expect = [&failures](const char* counter, std::uint64_t measured_v,
                                  std::uint64_t model_v) {
    if (measured_v == model_v) return;
    std::fprintf(stderr,
                 "DRIFT %-18s measured=%llu model=%llu (delta %+lld)\n",
                 counter, static_cast<unsigned long long>(measured_v),
                 static_cast<unsigned long long>(model_v),
                 static_cast<long long>(measured_v) -
                     static_cast<long long>(model_v));
    ++failures;
  };

  using runtime::CryptoOp;
  expect("group_mul", measured[CryptoOp::kGroupMul], model.totals.muls);
  expect("group_exp", measured[CryptoOp::kGroupExp], model.totals.exps);
  expect("group_exp_g", measured[CryptoOp::kGroupExpG], model.totals.gexps);
  expect("group_inv", measured[CryptoOp::kGroupInv], model.totals.invs);
  expect("group_serialize", measured[CryptoOp::kGroupSerialize],
         model.totals.serializations);
  expect("group_deserialize", measured[CryptoOp::kGroupDeserialize],
         model.totals.deserializations);

  // (No divisibility-by-n assertion: comparison-circuit cost depends on
  // each party's own β bit pattern, so totals are not an exact multiple of
  // n — which is also why the model's per-participant figures use integer
  // division.)

  // Phase attribution must add up: the sum over the model run's per-phase
  // tallies equals its undivided totals for every op.
  runtime::OpTally phase_sum;
  for (const auto& t : model.phase_ops) phase_sum += t;
  expect("phases(group_mul)", phase_sum[CryptoOp::kGroupMul],
         model.totals.muls);
  expect("phases(group_exp)", phase_sum[CryptoOp::kGroupExp],
         model.totals.exps);
  expect("phases(group_exp_g)", phase_sum[CryptoOp::kGroupExpG],
         model.totals.gexps);
  expect("phases(group_inv)", phase_sum[CryptoOp::kGroupInv],
         model.totals.invs);

  if (failures != 0) {
    std::fprintf(stderr,
                 "\nmodel validation FAILED: %d counter(s) drifted between "
                 "benchcore::count_he_framework and the measured runtime "
                 "metrics\n",
                 failures);
    return 1;
  }
  std::printf("model validation OK: measured runtime counters match "
              "CountingGroup totals exactly\n"
              "  group_exp=%llu group_exp_g=%llu group_mul=%llu "
              "group_inv=%llu (n=%zu, l=%zu)\n",
              static_cast<unsigned long long>(measured[CryptoOp::kGroupExp]),
              static_cast<unsigned long long>(measured[CryptoOp::kGroupExpG]),
              static_cast<unsigned long long>(measured[CryptoOp::kGroupMul]),
              static_cast<unsigned long long>(measured[CryptoOp::kGroupInv]),
              n, spec.beta_bits());
  return 0;
}

/// Exits nonzero on the first (phase, src -> dst) link whose measured
/// message count or serialized byte total drifts from the closed-form
/// communication model.
int run_check_comm() {
  const core::ProblemSpec spec{.m = 4, .t = 2, .d1 = 6, .d2 = 6, .h = 6};
  constexpr std::size_t n = 4;
  constexpr std::size_t k = 2;
  constexpr std::uint64_t seed = 1234;

  const auto g = group::make_group(group::GroupId::kDlTest256);
  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = n;
  cfg.k = k;
  cfg.group = g.get();
  cfg.dot_field = &core::default_dot_field();
  cfg.metrics = true;
  const auto inst = benchcore::random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 1};
  const auto real = core::run_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  const auto measured = real.comm->links();
  const auto modeled = benchcore::model_he_comm(
      spec, n, *g, *cfg.dot_field, cfg.dot_s, real.submitted_ids);

  int failures = 0;
  const auto link_name = [](const runtime::CommLink& lk) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %zu->%zu",
                  runtime::phase_name(lk.phase), lk.src, lk.dst);
    return std::string{buf};
  };
  const std::size_t common = std::min(measured.size(), modeled.size());
  for (std::size_t i = 0; i < common; ++i) {
    const auto& ms = measured[i];
    const auto& md = modeled[i];
    if (ms.phase != md.phase || ms.src != md.src || ms.dst != md.dst) {
      std::fprintf(stderr, "LINK MISMATCH at %zu: measured %s vs model %s\n",
                   i, link_name(ms).c_str(), link_name(md).c_str());
      ++failures;
      continue;
    }
    if (ms.messages != md.messages || ms.bytes != md.bytes) {
      std::fprintf(
          stderr,
          "DRIFT %-16s measured msgs=%llu bytes=%llu  model msgs=%llu "
          "bytes=%llu\n",
          link_name(ms).c_str(), static_cast<unsigned long long>(ms.messages),
          static_cast<unsigned long long>(ms.bytes),
          static_cast<unsigned long long>(md.messages),
          static_cast<unsigned long long>(md.bytes));
      ++failures;
    }
  }
  if (measured.size() != modeled.size()) {
    std::fprintf(stderr, "LINK COUNT drift: measured %zu links, model %zu\n",
                 measured.size(), modeled.size());
    ++failures;
  }

  // Cross-pillar consistency: the comm registry and the replayable trace
  // must account for the same wire, byte for byte.
  if (real.comm->total_bytes() != real.trace.total_bytes() ||
      real.comm->message_count() != real.trace.message_count()) {
    std::fprintf(stderr,
                 "PILLAR drift: comm bytes=%llu msgs=%zu vs trace bytes=%zu "
                 "msgs=%zu\n",
                 static_cast<unsigned long long>(real.comm->total_bytes()),
                 real.comm->message_count(), real.trace.total_bytes(),
                 real.trace.message_count());
    ++failures;
  }

  if (failures != 0) {
    std::fprintf(stderr,
                 "\ncomm validation FAILED: %d link(s) drifted between the "
                 "measured wire bytes and benchcore::model_he_comm\n",
                 failures);
    return 1;
  }
  std::printf("comm validation OK: measured wire bytes match the closed-form "
              "model on all %zu links\n"
              "  messages=%zu bytes=%llu rounds=%zu virtual=%.6fs (n=%zu, "
              "l=%zu)\n",
              measured.size(), real.comm->message_count(),
              static_cast<unsigned long long>(real.comm->total_bytes()),
              real.comm->rounds(), real.comm->virtual_seconds(), n,
              spec.beta_bits());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--check") == 0) return run_check();
  if (argc > 1 && std::strcmp(argv[1], "--check-comm") == 0)
    return run_check_comm();
  using namespace ppgr;
  using benchcore::TablePrinter;

  // Small spec so the real run stays in seconds.
  core::ProblemSpec spec{.m = 6, .t = 3, .d1 = 8, .d2 = 8, .h = 8};

  std::printf("Model validation: measured real runs vs modeled predictions\n"
              "(l = %zu bits)\n\n", spec.beta_bits());
  TablePrinter table({"group", "n", "measured/party", "modeled/party",
                      "model/measured"});

  mpz::ChaChaRng rng{66};
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kDl1024}) {
    const auto g = group::make_group(gid);
    const auto costs = benchcore::calibrate_group(*g, rng);
    for (const std::size_t n : {4u, 6u, 8u}) {
      const auto inst = benchcore::random_instance(spec, n, 77 + n);
      core::FrameworkConfig cfg;
      cfg.spec = spec;
      cfg.n = n;
      cfg.k = 2;
      cfg.group = g.get();
      cfg.dot_field = &core::default_dot_field();
      mpz::ChaChaRng run_rng{88 + n};
      const auto real =
          core::run_framework(cfg, inst.v0, inst.w, inst.infos, run_rng);
      double measured = 0;
      for (std::size_t j = 1; j <= n; ++j) measured += real.compute_seconds[j];
      measured /= static_cast<double>(n);

      const auto modeled =
          benchcore::price_he_framework(spec, n, 2, *g, costs, 77 + n);
      char ratio[16];
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    modeled.total_seconds() / measured);
      table.row({g->name(), std::to_string(n),
                 TablePrinter::fmt_seconds(measured),
                 TablePrinter::fmt_seconds(modeled.total_seconds()), ratio});
    }
  }
  std::printf("\nA ratio near 1.0 validates pricing counted ops with "
              "calibrated costs.\n");
  return 0;
}

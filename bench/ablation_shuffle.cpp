// Ablation: where does the unlinkable-comparison phase spend its time?
//
// (1) Splits one step-8 chain hop into its three components — partial
//     decryption, exponent randomization, permutation — per group.
// (2) Prices the step-7 ciphertext re-randomization this implementation
//     adds (fresh randomness before a comparison set leaves its computing
//     party; see DESIGN.md) against the rest of the comparison, quantifying
//     the cost of that security fix.
#include <chrono>
#include <cstdio>

#include "benchcore/model.h"
#include "crypto/elgamal.h"

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename F>
double time_per_call(F&& body, int iters) {
  body();
  const double t0 = now_s();
  for (int i = 0; i < iters; ++i) body();
  return (now_s() - t0) / iters;
}

}  // namespace

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;

  std::printf("Ablation: step-8 hop component costs per ciphertext\n\n");
  TablePrinter table({"group", "partial-dec", "exp-rand", "rerand (step7)",
                      "full hop"});
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kEcP256,
                         group::GroupId::kDl1024, group::GroupId::kDl2048}) {
    const auto g = group::make_group(gid);
    mpz::ChaChaRng rng{9};
    const auto kp = crypto::keygen(*g, rng);
    auto ct = crypto::encrypt_exp(*g, kp.y, mpz::Nat{1}, rng);
    const mpz::Nat r = g->random_nonzero_scalar(rng);

    const double pd =
        time_per_call([&] { (void)crypto::partial_decrypt(*g, kp.x, ct); }, 12);
    const double er =
        time_per_call([&] { (void)crypto::exp_randomize(*g, ct, r); }, 12);
    const double rr = time_per_call(
        [&] { (void)crypto::rerandomize(*g, kp.y, ct, rng); }, 12);
    const double full = time_per_call(
        [&] {
          (void)crypto::exp_randomize(
              *g, crypto::partial_decrypt(*g, kp.x, ct), r);
        },
        12);
    table.row({g->name(), TablePrinter::fmt_seconds(pd),
               TablePrinter::fmt_seconds(er), TablePrinter::fmt_seconds(rr),
               TablePrinter::fmt_seconds(full)});
  }
  std::printf(
      "\nExp-randomize costs ~2 exponentiations vs partial decryption's 1;\n"
      "the step-7 re-randomization adds ~2 more per ciphertext produced.\n");
  return 0;
}

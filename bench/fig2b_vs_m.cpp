// Fig. 2(b): per-participant computation time vs the attribute dimension m
// at n = 25. m enters the bit length l only logarithmically
// (l = h + ceil(log2 m) + ...), so the curves grow logarithmically in m —
// the paper's reported shape.
#include "fig2_common.h"

int main(int argc, char** argv) {
  using namespace ppgr::bench;
  BenchFlags flags = parse_bench_flags(argc, argv);
  std::vector<SweepPoint> points;
  for (const std::size_t m : {5u, 10u, 20u, 40u, 80u, 160u}) {
    auto spec = ppgr::benchcore::paper_default_spec();
    spec.m = m;
    spec.t = m / 2;
    points.push_back({m, spec, 25});
  }
  run_fig2_sweep("Fig 2(b)", "m", points);
  if (flags.e2e_requested()) run_parallel_e2e(flags);
  return 0;
}

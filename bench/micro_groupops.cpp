// Micro-benchmarks (google-benchmark): the primitive costs that feed the
// figure models — group multiplication/exponentiation for every group the
// paper evaluates, bignum kernels, ElGamal operations and the GRR secure
// multiplication. These are the measured quantities behind
// benchcore::calibrate_*.
#include <benchmark/benchmark.h>

#include "crypto/elgamal.h"
#include "group/group.h"
#include "mpz/modarith.h"
#include "mpz/prime.h"
#include "sss/mpc_engine.h"

namespace {

using namespace ppgr;

const group::Group& group_for(int id) {
  static const auto groups = [] {
    std::vector<std::unique_ptr<group::Group>> gs;
    gs.push_back(group::make_group(group::GroupId::kDl1024));
    gs.push_back(group::make_group(group::GroupId::kDl2048));
    gs.push_back(group::make_group(group::GroupId::kDl3072));
    gs.push_back(group::make_group(group::GroupId::kEcP192));
    gs.push_back(group::make_group(group::GroupId::kEcP224));
    gs.push_back(group::make_group(group::GroupId::kEcP256));
    return gs;
  }();
  return *groups[static_cast<std::size_t>(id)];
}

void BM_GroupMul(benchmark::State& state) {
  const auto& g = group_for(static_cast<int>(state.range(0)));
  mpz::ChaChaRng rng{1};
  group::Elem a = g.exp_g(g.random_nonzero_scalar(rng));
  const group::Elem b = g.exp_g(g.random_nonzero_scalar(rng));
  for (auto _ : state) {
    a = g.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_GroupMul)->DenseRange(0, 5);

void BM_GroupExp(benchmark::State& state) {
  const auto& g = group_for(static_cast<int>(state.range(0)));
  mpz::ChaChaRng rng{2};
  const group::Elem a = g.exp_g(g.random_nonzero_scalar(rng));
  const mpz::Nat s = g.random_nonzero_scalar(rng);
  for (auto _ : state) {
    auto r = g.exp(a, s);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_GroupExp)->DenseRange(0, 5);

void BM_ElGamalEncryptExp(benchmark::State& state) {
  const auto& g = group_for(static_cast<int>(state.range(0)));
  mpz::ChaChaRng rng{3};
  const auto kp = crypto::keygen(g, rng);
  for (auto _ : state) {
    auto ct = crypto::encrypt_exp(g, kp.y, mpz::Nat{1}, rng);
    benchmark::DoNotOptimize(ct);
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_ElGamalEncryptExp)->DenseRange(0, 5);

void BM_ElGamalShuffleHopStep(benchmark::State& state) {
  // One step-8 ciphertext transformation: partial decrypt + exp-randomize.
  const auto& g = group_for(static_cast<int>(state.range(0)));
  mpz::ChaChaRng rng{4};
  const auto kp = crypto::keygen(g, rng);
  auto ct = crypto::encrypt_exp(g, kp.y, mpz::Nat{1}, rng);
  const mpz::Nat r = g.random_nonzero_scalar(rng);
  for (auto _ : state) {
    auto out = crypto::exp_randomize(g, crypto::partial_decrypt(g, kp.x, ct), r);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_ElGamalShuffleHopStep)->DenseRange(0, 5);

void BM_MontMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  mpz::ChaChaRng rng{5};
  const mpz::Nat m = mpz::random_prime(bits, rng);
  const mpz::MontCtx ctx{m};
  mpz::Nat a = ctx.to_mont(rng.below(m));
  const mpz::Nat b = ctx.to_mont(rng.below(m));
  for (auto _ : state) {
    a = ctx.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_MontMul)->Arg(256)->Arg(1024)->Arg(2048)->Arg(3072);

void BM_NatMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  mpz::ChaChaRng rng{6};
  const mpz::Nat a = rng.bits(bits), b = rng.bits(bits);
  for (auto _ : state) {
    auto r = mpz::Nat::mul(a, b);
    benchmark::DoNotOptimize(r);
  }
}
// Straddles the Karatsuba threshold (24 limbs = 1536 bits).
BENCHMARK(BM_NatMul)->Arg(512)->Arg(1024)->Arg(1536)->Arg(3072)->Arg(8192);

void BM_GrrMultiplication(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mpz::ChaChaRng rng{7};
  static const mpz::FpCtx field{mpz::Nat::from_hex("3ffffffd7")};  // 34-bit
  sss::MpcEngine engine{field, n, (n - 1) / 2, rng};
  const auto a = engine.input(field.to(mpz::Nat{123}));
  const auto b = engine.input(field.to(mpz::Nat{456}));
  for (auto _ : state) {
    auto r = engine.mul(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("all-party cost; divide by n for per-party");
}
BENCHMARK(BM_GrrMultiplication)->Arg(5)->Arg(25)->Arg(45)->Arg(70);

}  // namespace

BENCHMARK_MAIN();

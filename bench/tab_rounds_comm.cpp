// Sec. VI-B analysis table: communication rounds, per-participant
// communication volume, and multiplication/exponentiation counts, ours vs
// the SS framework.
//
// Paper claims to reproduce:
//  - our framework: O(n) communication rounds; per-participant communication
//    O(l * S_c * n^2) bits; O(l^2 n + l n^2 λ) multiplications.
//  - SS framework: O((279l+5) n (log n)^2)-ish rounds (one per secure
//    multiplication along the network's critical path) and
//    O(l t n^2 (log n)^2) multiplications.
#include <cstdio>

#include "benchcore/model.h"

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  const auto spec = benchcore::paper_default_spec();
  const auto ec = group::make_group(group::GroupId::kEcP192);
  mpz::ChaChaRng rng{55};
  const auto ec_costs = benchcore::calibrate_group(*ec, rng);

  std::printf("Sec VI-B: rounds and communication, ours (ecc-p192) vs SS "
              "(l = %zu)\n\n", spec.beta_bits());
  TablePrinter table({"n", "our rounds", "ss rounds", "our MB/party",
                      "ss MB/party", "our exps/party", "ss mults"});
  for (const std::size_t n : {10u, 25u, 40u, 55u, 70u}) {
    const std::uint64_t seed = 2000 + n;
    const auto he = benchcore::price_he_framework(spec, n, 3, *ec, ec_costs,
                                                  seed);
    const auto ss = benchcore::price_ss_framework(spec, n, 3, seed);
    // Per-participant communication: average sent bytes over participants.
    double he_mb = 0;
    for (std::size_t j = 1; j <= n; ++j)
      he_mb += static_cast<double>(he.trace.bytes_sent_by(j));
    he_mb /= static_cast<double>(n) * 1e6;
    const double ss_mb = static_cast<double>(ss.totals.bytes) /
                         static_cast<double>(n) / 1e6;
    char he_mb_s[16], ss_mb_s[16];
    std::snprintf(he_mb_s, sizeof(he_mb_s), "%.2f", he_mb);
    std::snprintf(ss_mb_s, sizeof(ss_mb_s), "%.2f", ss_mb);
    table.row({std::to_string(n), std::to_string(he.rounds),
               std::to_string(ss.parallel_rounds), he_mb_s, ss_mb_s,
               TablePrinter::fmt_count(he.per_participant.exps),
               TablePrinter::fmt_count(ss.totals.mults)});
  }
  std::printf("\nExpected shape: our rounds grow linearly in n; SS rounds "
              "are orders of magnitude larger and grow ~ (log n)^2 faster "
              "per comparison chain.\n");
  return 0;
}

// Extension experiment: the probabilistic top-k protocol (Burkhart &
// Dimitropoulos, the paper's reference [4]) vs the full multiparty sort as
// the phase-2 engine, when the application only needs the top-k (the
// group-ranking motivation needs each participant's rank, which top-k does
// NOT provide — this quantifies what that extra output costs).
#include <cstdio>

#include "benchcore/model.h"
#include "sss/mpc_sort.h"
#include "sss/topk.h"

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  const auto spec = benchcore::paper_default_spec();
  const std::size_t l = spec.beta_bits();
  const mpz::FpCtx& field = core::ss_field_for_beta_bits(l);

  std::printf("Extension: probabilistic top-k vs full rank sort "
              "(SS substrate, l = %zu)\n\n", l);
  TablePrinter table({"n", "topk cmps", "sort cmps", "topk mults",
                      "sort mults", "topk rounds", "sort rounds"});
  for (const std::size_t n : {10u, 25u, 40u, 70u}) {
    mpz::ChaChaRng rng{400 + n};
    const std::size_t t = std::max<std::size_t>(1, (n - 1) / 2);
    sss::MpcEngine topk_engine{field, n, t, rng,
                               sss::MpcEngine::Mode::kCountOnly};
    const auto topk =
        sss::probabilistic_topk(topk_engine, std::vector<mpz::Nat>(n), 3, l);
    sss::MpcEngine sort_engine{field, n, t, rng,
                               sss::MpcEngine::Mode::kCountOnly};
    const auto sort = sss::mpc_rank_sort(sort_engine, std::vector<mpz::Nat>(n));
    table.row({std::to_string(n), TablePrinter::fmt_count(topk.costs.comparisons),
               TablePrinter::fmt_count(sort.costs.comparisons),
               TablePrinter::fmt_count(topk.costs.mults),
               TablePrinter::fmt_count(sort.costs.mults),
               TablePrinter::fmt_count(topk.costs.rounds),
               TablePrinter::fmt_count(sort.costs.rounds)});
  }
  std::printf(
      "\nAt these l (~70 bits) and n the full sort needs FEWER comparisons\n"
      "(n(log n)^2/4 < l*n until (log n)^2 > 4l, i.e. n ~ 10^5): binary\n"
      "threshold search only pays off for short values or huge groups. The\n"
      "original [4] gains its speed from hash-bucket counting rather than\n"
      "secure comparisons; within a comparison-based substrate the trade-off\n"
      "above is what remains, plus top-k leaks aggregate counts, may\n"
      "over-select on ties, and yields no individual ranks (which the\n"
      "group-ranking framework requires).\n");
  return 0;
}

// Fig. 3(a): per-participant computation time vs security level at n = 70.
// Following the NIST equivalence the paper cites (FIPS 140-2 IG): 80-bit
// symmetric ~ DL-1024 ~ ECC-160, 112-bit ~ DL-2048 ~ ECC-224, 128-bit ~
// DL-3072 ~ ECC-256. We use the standardized P-192/P-224/P-256 curves for
// the ECC side (P-192 is the closest NIST curve to "160-bit ECC").
// Paper observation to reproduce: ECC is faster at equal security and its
// advantage grows with the security level.
#include <cstdio>

#include "bench_flags.h"
#include "benchcore/model.h"

int main(int argc, char** argv) {
  using namespace ppgr;
  using benchcore::TablePrinter;
  bench::BenchFlags flags = bench::parse_bench_flags(argc, argv);
  struct Level {
    int sym_bits;
    group::GroupId dl;
    group::GroupId ec;
  };
  const Level levels[] = {
      {80, group::GroupId::kDl1024, group::GroupId::kEcP192},
      {112, group::GroupId::kDl2048, group::GroupId::kEcP224},
      {128, group::GroupId::kDl3072, group::GroupId::kEcP256},
  };
  const std::size_t n = 70;
  const auto spec = benchcore::paper_default_spec();

  // All parameter sets execute the identical operation sequence; one counted
  // run prices every level.
  const auto counts = benchcore::count_he_framework(spec, n, 3, 128, 1024, 7);

  std::printf("Fig 3(a): per-participant computation time vs security level "
              "(n = %zu)\n\n", n);
  TablePrinter table({"security", "dl", "dl time", "ecc", "ecc time",
                      "dl/ecc"});
  mpz::ChaChaRng rng{33};
  for (const Level& level : levels) {
    const auto dl = group::make_group(level.dl);
    const auto ec = group::make_group(level.ec);
    const auto dl_costs = benchcore::calibrate_group(*dl, rng);
    const auto ec_costs = benchcore::calibrate_group(*ec, rng);
    const auto dlp = benchcore::price_he_counts(counts, dl->name(), dl_costs);
    const auto ecp = benchcore::price_he_counts(counts, ec->name(), ec_costs);
    const double ratio = dlp.total_seconds() / ecp.total_seconds();
    char rbuf[16];
    std::snprintf(rbuf, sizeof(rbuf), "%.1fx", ratio);
    table.row({std::to_string(level.sym_bits) + "-bit", dl->name(),
               TablePrinter::fmt_seconds(dlp.total_seconds()), ec->name(),
               TablePrinter::fmt_seconds(ecp.total_seconds()), rbuf});
  }
  std::printf("\nExpected shape: ECC faster at every level; the DL/ECC gap "
              "widens as the security level rises.\n\n");
  if (flags.e2e_requested()) bench::run_parallel_e2e(flags);
  return 0;
}

// Shared sweep driver for the four panels of the paper's Fig. 2: each panel
// varies one parameter (n, m, d1, h) and reports per-participant computation
// time for the SS framework, the DL framework (1024-bit safe prime) and the
// ECC framework (P-192, the standardized stand-in for the paper's 160-bit
// curve). Defaults are the paper's: n=25, m=10, d1=15, h=15.
//
// Two SS columns are printed: "ss" prices this repository's lean
// Nishide-Ohta implementation (~15l multiplications per comparison thanks to
// linear-round prefix products), and "ss-279l" prices the constant the paper
// reports for the primitive it cites (279l+5 multiplications per
// comparison) — the comparison the paper actually drew. See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "bench_flags.h"
#include "benchcore/model.h"
#include "core/framework.h"
#include "sss/mpc_sort.h"

namespace ppgr::bench {

using benchcore::GroupCosts;
using benchcore::HePoint;
using benchcore::SsPoint;
using benchcore::TablePrinter;

struct SweepPoint {
  std::size_t axis_value;
  core::ProblemSpec spec;
  std::size_t n;
};

inline void run_fig2_sweep(const std::string& figure,
                           const std::string& axis_name,
                           const std::vector<SweepPoint>& points) {
  const auto dl = group::make_group(group::GroupId::kDl1024);
  const auto ec = group::make_group(group::GroupId::kEcP192);
  mpz::ChaChaRng rng{2012};
  const GroupCosts dl_costs = benchcore::calibrate_group(*dl, rng);
  const GroupCosts ec_costs = benchcore::calibrate_group(*ec, rng);

  std::printf("%s: per-participant computation time vs %s\n",
              figure.c_str(), axis_name.c_str());
  std::printf(
      "(modeled = exact op counts x calibrated real op costs; see "
      "EXPERIMENTS.md)\n\n");
  TablePrinter table({axis_name, "ss", "ss-279l", "dl-1024", "ecc-p192",
                      "dl/ecc", "he exps/party"});
  for (const auto& p : points) {
    constexpr std::size_t kTopK = 3;
    const std::uint64_t seed = 42 + p.axis_value;
    const SsPoint ss = benchcore::price_ss_framework(p.spec, p.n, kTopK, seed);
    // Price the paper's reported comparison constant on the same substrate:
    // 279l+5 GRR multiplications per comparison.
    const std::size_t l_field = p.spec.beta_bits() + 2;
    const mpz::FpCtx& ss_field = core::ss_field_for_beta_bits(p.spec.beta_bits());
    mpz::ChaChaRng crng{seed + 9};
    const auto ss_costs = benchcore::calibrate_ss(
        ss_field, p.n, std::max<std::size_t>(1, (p.n - 1) / 2), crng);
    const std::size_t comparators =
        sss::comparator_count(sss::batcher_network(p.n));
    const double ss_paper_s =
        static_cast<double>(comparators) * (279.0 * l_field + 5.0) *
            ss_costs.mult_party_s +
        ss.phase1_seconds;

    // One counted run prices both HE frameworks (identical op sequences).
    const auto counts = benchcore::count_he_framework(
        p.spec, p.n, kTopK, dl->element_bytes(), dl->field_bits(), seed);
    const HePoint dlp = benchcore::price_he_counts(counts, "dl-1024", dl_costs);
    const HePoint ecp = benchcore::price_he_counts(counts, "ecc-p192", ec_costs);
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  dlp.total_seconds() / ecp.total_seconds());
    table.row({std::to_string(p.axis_value),
               TablePrinter::fmt_seconds(ss.total_seconds()),
               TablePrinter::fmt_seconds(ss_paper_s),
               TablePrinter::fmt_seconds(dlp.total_seconds()),
               TablePrinter::fmt_seconds(ecp.total_seconds()), ratio,
               TablePrinter::fmt_count(dlp.per_participant.exps)});
  }
  std::printf("\n");
}

}  // namespace ppgr::bench

// Fig. 2(c): per-participant computation time vs the attribute bit length d1
// at n = 25. d1 enters l linearly, so all frameworks grow linearly — the
// paper's reported shape.
#include "fig2_common.h"

int main(int argc, char** argv) {
  using namespace ppgr::bench;
  BenchFlags flags = parse_bench_flags(argc, argv);
  std::vector<SweepPoint> points;
  for (const std::size_t d1 : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    auto spec = ppgr::benchcore::paper_default_spec();
    spec.d1 = d1;
    points.push_back({d1, spec, 25});
  }
  run_fig2_sweep("Fig 2(c)", "d1", points);
  if (flags.e2e_requested()) run_parallel_e2e(flags);
  return 0;
}

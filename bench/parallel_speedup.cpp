// Speedup curve of the deterministic parallel execution engine: real
// end-to-end run_framework executions (no cost model) at fixed n, sweeping
// cfg.parallelism, verifying that every thread count produces bit-identical
// ranks/β/trace, and emitting BENCH_parallel.json.
//
// The phase-2 work — n·(n-1) comparison-circuit evaluations and the
// decrypt-shuffle chain — is embarrassingly parallel, so on a machine with
// C cores the expected speedup at parallelism p is ~min(p, C) (Amdahl-
// limited by the serial trace/merge epilogues, which are O(n) bookkeeping).
//
// A leading pass runs the protocol with the multi-exponentiation engine
// disabled (cfg.accel = false) at parallelism 1; every accelerated run must
// be bit-identical to it — ranks, β, byte trace, comm flows, span stream
// and all logical metrics counters (only the accel_* diagnostics may
// appear on the accelerated side). The JSON gains an "accel_off" block so
// the per-phase accel/no-accel wall breakdown is part of the report.
//
// Usage: parallel_speedup [--n N] [--threads "1,2,4"] [--out FILE]
#include <cstdio>
#include <cstring>
#include <chrono>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"

namespace {

using namespace ppgr;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::size_t parallelism;
  double wall_seconds;
  core::FrameworkResult result;
};

// The accel_* counters are the only metrics keys allowed to differ between
// accelerated and naive runs; everything left must be byte-identical.
std::string strip_accel_keys(const std::string& metrics_json) {
  static const std::regex kAccel{R"(, "accel_[a-z_]+": [0-9]+)"};
  return std::regex_replace(metrics_json, kAccel, "");
}

bool identical_modulo_accel(const core::FrameworkResult& a,
                            const core::FrameworkResult& b) {
  return a.ranks == b.ranks && a.submitted_ids == b.submitted_ids &&
         a.trace.total_bytes() == b.trace.total_bytes() &&
         strip_accel_keys(a.metrics->to_json(/*include_timing=*/false)) ==
             strip_accel_keys(b.metrics->to_json(false)) &&
         a.spans->chrome_trace_json(/*deterministic=*/true) ==
             b.spans->chrome_trace_json(true) &&
         a.comm->to_json() == b.comm->to_json() &&
         a.comm->chrome_trace_json() == b.comm->chrome_trace_json();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 16;
  std::string threads_arg = "1,2,4";
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--n") == 0) n = std::stoul(argv[i + 1]);
    else if (std::strcmp(argv[i], "--threads") == 0) threads_arg = argv[i + 1];
    else if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  std::vector<std::size_t> thread_counts;
  for (std::size_t pos = 0; pos < threads_arg.size();) {
    const std::size_t comma = threads_arg.find(',', pos);
    thread_counts.push_back(
        std::stoul(threads_arg.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  // Small-but-real parameters: l stays ~35 bits so a full n=16 run (and its
  // O(n²·l) phase 2) finishes in seconds per engine setting.
  const auto g = group::make_group(group::GroupId::kDlTest256);
  core::FrameworkConfig cfg;
  cfg.spec = core::ProblemSpec{.m = 4, .t = 2, .d1 = 8, .d2 = 6, .h = 8};
  cfg.n = n;
  cfg.k = 3;
  cfg.group = g.get();
  cfg.dot_field = &core::default_dot_field();
  // Per-phase breakdowns for the JSON report; also lets the bit-identity
  // check below cover the deterministic metrics/span exports.
  cfg.metrics = true;

  const auto instance_rng = [&] { return mpz::ChaChaRng{4242}; };
  core::AttrVec v0(cfg.spec.m), w(cfg.spec.m);
  std::vector<core::AttrVec> infos;
  {
    auto rng = instance_rng();
    for (auto& x : v0) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
    for (auto& x : w) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d2);
    for (std::size_t j = 0; j < n; ++j) {
      core::AttrVec v(cfg.spec.m);
      for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << cfg.spec.d1);
      infos.push_back(std::move(v));
    }
  }

  std::printf("parallel_speedup: end-to-end run_framework, group=%s, n=%zu, "
              "l=%zu bits, hardware_concurrency=%u\n\n",
              g->name().c_str(), n, cfg.spec.beta_bits(),
              std::thread::hardware_concurrency());

  // Naive baseline: multi-exp engine off, serial. Timed and kept for the
  // bit-identity check against every accelerated run below.
  RunResult accel_off{1, 0.0, {}};
  {
    cfg.accel = false;
    cfg.parallelism = 1;
    mpz::ChaChaRng rng{777};
    const double t0 = now_s();
    accel_off.result = core::run_framework(cfg, v0, w, infos, rng);
    accel_off.wall_seconds = now_s() - t0;
    cfg.accel = true;
    std::printf("accel off (naive, serial): %.3f s wall\n\n",
                accel_off.wall_seconds);
  }

  std::printf("%12s %14s %10s %12s\n", "parallelism", "wall[s]", "speedup",
              "identical");

  std::vector<RunResult> runs;
  for (const std::size_t p : thread_counts) {
    cfg.parallelism = p;
    // Fresh protocol rng per run: determinism must come from the seed, not
    // from shared state.
    mpz::ChaChaRng rng{777};
    const double t0 = now_s();
    auto result = core::run_framework(cfg, v0, w, infos, rng);
    const double wall = now_s() - t0;
    runs.push_back(RunResult{p, wall, std::move(result)});

    const auto& base = runs.front().result;
    const auto& cur = runs.back().result;
    const bool identical =
        base.ranks == cur.ranks && base.submitted_ids == cur.submitted_ids &&
        base.trace.total_bytes() == cur.trace.total_bytes() &&
        base.metrics->to_json(/*include_timing=*/false) ==
            cur.metrics->to_json(/*include_timing=*/false) &&
        base.spans->chrome_trace_json(/*deterministic=*/true) ==
            cur.spans->chrome_trace_json(/*deterministic=*/true) &&
        base.comm->to_json() == cur.comm->to_json() &&
        base.comm->chrome_trace_json() == cur.comm->chrome_trace_json();
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: parallelism=%zu output differs from serial\n", p);
      return 1;
    }
    if (!identical_modulo_accel(accel_off.result, cur)) {
      std::fprintf(stderr,
                   "FATAL: parallelism=%zu accelerated output differs from "
                   "the naive (accel off) run\n",
                   p);
      return 1;
    }
    std::printf("%12zu %14.3f %9.2fx %12s\n", p, wall,
                runs.front().wall_seconds / wall, "yes");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"parallel_speedup\",\n"
               "  \"group\": \"%s\",\n"
               "  \"n\": %zu,\n"
               "  \"k\": %zu,\n"
               "  \"beta_bits\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"runs\": [\n",
               g->name().c_str(), n, cfg.k, cfg.spec.beta_bits(),
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(out,
                 "    {\"parallelism\": %zu, \"wall_seconds\": %.6f, "
                 "\"speedup_vs_serial\": %.4f, \"outputs_identical\": true,\n"
                 "     \"phases\": [\n",
                 runs[i].parallelism, runs[i].wall_seconds,
                 runs.front().wall_seconds / runs[i].wall_seconds);
    // Per-phase breakdown: wall seconds from the depth-1 phase spans, op
    // counters from the metrics registry (counters are identical across
    // runs by the bit-identity check above; wall time is not).
    const auto walls = runs[i].result.spans->phase_wall_seconds();
    for (std::size_t p = 0; p < runtime::kPhaseCount; ++p) {
      const auto ops = runs[i].result.metrics->phase_totals(
          static_cast<runtime::Phase>(p));
      const auto c = [&ops](runtime::CryptoOp op) {
        return static_cast<unsigned long long>(ops[op]);
      };
      std::fprintf(
          out,
          "      {\"phase\": \"%s\", \"wall_seconds\": %.6f, "
          "\"group_exps\": %llu, \"group_exp_g\": %llu, "
          "\"group_muls\": %llu, \"compare_circuits\": %llu, "
          "\"shuffle_hops\": %llu, \"accel_multi_exps\": %llu, "
          "\"accel_fixed_base_exps\": %llu}%s\n",
          runtime::phase_name(static_cast<runtime::Phase>(p)), walls[p],
          c(runtime::CryptoOp::kGroupExp), c(runtime::CryptoOp::kGroupExpG),
          c(runtime::CryptoOp::kGroupMul),
          c(runtime::CryptoOp::kCompareCircuit),
          c(runtime::CryptoOp::kShuffleHop),
          c(runtime::CryptoOp::kAccelMultiExp),
          c(runtime::CryptoOp::kAccelFixedBaseExp),
          p + 1 < runtime::kPhaseCount ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  // Naive (multi-exp engine off) baseline: same instance, serial. The
  // logical op counts are identical to the accelerated runs by the
  // bit-identity check above, so only the per-phase walls are reported —
  // phase2 wall[off] / wall[on] is the acceleration's end-to-end win.
  {
    const auto off_walls = accel_off.result.spans->phase_wall_seconds();
    const auto on_walls = runs.front().result.spans->phase_wall_seconds();
    const double p2_off = off_walls[static_cast<std::size_t>(
        runtime::Phase::kPhase2)];
    const double p2_on = on_walls[static_cast<std::size_t>(
        runtime::Phase::kPhase2)];
    std::fprintf(out,
                 "  \"accel_off\": {\"parallelism\": 1, "
                 "\"wall_seconds\": %.6f, \"outputs_identical\": true,\n"
                 "    \"phases\": [\n",
                 accel_off.wall_seconds);
    for (std::size_t p = 0; p < runtime::kPhaseCount; ++p)
      std::fprintf(out,
                   "      {\"phase\": \"%s\", \"wall_seconds\": %.6f}%s\n",
                   runtime::phase_name(static_cast<runtime::Phase>(p)),
                   off_walls[p], p + 1 < runtime::kPhaseCount ? "," : "");
    std::fprintf(out,
                 "    ],\n"
                 "    \"phase2_speedup_vs_naive\": %.4f\n  },\n",
                 p2_on > 0 ? p2_off / p2_on : 0.0);
    std::printf("\naccel on vs off (serial): phase2 %.3f s -> %.3f s "
                "(%.2fx), total %.3f s -> %.3f s\n",
                p2_off, p2_on, p2_on > 0 ? p2_off / p2_on : 0.0,
                accel_off.wall_seconds, runs.front().wall_seconds);
  }

  // Measured communication of the run (identical at every parallelism, per
  // the bit-identity check): per-phase totals plus the per-link breakdown
  // from the serial run's CommRegistry. Virtual seconds come from the
  // deterministic network simulation, so they are exact, not sampled.
  {
    const runtime::CommRegistry& comm = *runs.front().result.comm;
    const auto links = comm.links();
    std::fprintf(out,
                 "  \"comm\": {\n"
                 "    \"messages\": %zu,\n"
                 "    \"bytes\": %llu,\n"
                 "    \"rounds\": %zu,\n"
                 "    \"virtual_seconds\": %.9f,\n"
                 "    \"links\": [\n",
                 comm.message_count(),
                 static_cast<unsigned long long>(comm.total_bytes()),
                 comm.rounds(), comm.virtual_seconds());
    for (std::size_t i = 0; i < links.size(); ++i) {
      const auto& lk = links[i];
      std::fprintf(out,
                   "      {\"phase\": \"%s\", \"src\": %zu, \"dst\": %zu, "
                   "\"messages\": %llu, \"bytes\": %llu, "
                   "\"tx_seconds\": %.9f}%s\n",
                   runtime::phase_name(lk.phase), lk.src, lk.dst,
                   static_cast<unsigned long long>(lk.messages),
                   static_cast<unsigned long long>(lk.bytes), lk.tx_s,
                   i + 1 < links.size() ? "," : "");
    }
    std::fprintf(out, "    ]\n  }\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

// Ablation: fixed-base (comb) generator exponentiation vs generic
// double-and-add. Every ElGamal encryption and re-randomization in phase 2
// computes g^r; the comb table removes all squarings from that path.
#include <chrono>
#include <cstdio>

#include "benchcore/model.h"

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  std::printf("Ablation: generator exponentiation, comb table vs generic\n\n");
  TablePrinter table({"group", "generic exp", "fixed-base", "speedup"});
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kEcP256,
                         group::GroupId::kDl1024, group::GroupId::kDl2048,
                         group::GroupId::kDl3072}) {
    const auto g = group::make_group(gid);
    mpz::ChaChaRng rng{13};
    const auto gen = g->generator();
    const auto s = g->random_nonzero_scalar(rng);
    (void)g->exp_g(s);  // build the table outside the timing
    const int iters = 16;
    double t0 = now_s();
    for (int i = 0; i < iters; ++i) (void)g->exp(gen, s);
    const double generic = (now_s() - t0) / iters;
    t0 = now_s();
    for (int i = 0; i < iters; ++i) (void)g->exp_g(s);
    const double fixed = (now_s() - t0) / iters;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", generic / fixed);
    table.row({g->name(), TablePrinter::fmt_seconds(generic),
               TablePrinter::fmt_seconds(fixed), speedup});
  }
  std::printf("\nThe framework model prices fixed-base and variable-base "
              "exponentiations\nseparately (OpCounts::gexps vs exps).\n");
  return 0;
}

// Ablation: fixed-base (comb) exponentiation vs generic double-and-add,
// for both fixed bases the protocol exponentiates:
//   - the generator g: every ElGamal encryption computes g^r;
//   - the joint public key y (phase 2's shared base): every compare-circuit
//     re-randomization computes y^r across all n(n-1) circuits, served
//     since PR 6 by a per-session FixedBaseTable over y.
// The second table also sweeps the window width to show the memory/speed
// trade-off documented in group/fixed_base.h.
#include <chrono>
#include <cstdio>

#include "benchcore/model.h"
#include "group/fixed_base.h"

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  std::printf("Ablation: generator exponentiation, comb table vs generic\n\n");
  TablePrinter table({"group", "generic exp", "fixed-base", "speedup"});
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kEcP256,
                         group::GroupId::kDl1024, group::GroupId::kDl2048,
                         group::GroupId::kDl3072}) {
    const auto g = group::make_group(gid);
    mpz::ChaChaRng rng{13};
    const auto gen = g->generator();
    const auto s = g->random_nonzero_scalar(rng);
    (void)g->exp_g(s);  // build the table outside the timing
    const int iters = 16;
    double t0 = now_s();
    for (int i = 0; i < iters; ++i) (void)g->exp(gen, s);
    const double generic = (now_s() - t0) / iters;
    t0 = now_s();
    for (int i = 0; i < iters; ++i) (void)g->exp_g(s);
    const double fixed = (now_s() - t0) / iters;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", generic / fixed);
    table.row({g->name(), TablePrinter::fmt_seconds(generic),
               TablePrinter::fmt_seconds(fixed), speedup});
  }
  std::printf("\nThe framework model prices fixed-base and variable-base "
              "exponentiations\nseparately (OpCounts::gexps vs exps).\n");

  // Phase-2 shared base: a windowed table over the joint ElGamal key y.
  // Unlike the generator table (built once per group, amortized over
  // everything), this one is built per session — the build cost matters,
  // so it is reported alongside the per-exp win.
  std::printf("\nAblation: shared-base (joint key y) exponentiation, "
              "windowed table vs generic\n\n");
  TablePrinter table2({"group", "w", "build", "generic exp", "table exp",
                       "speedup", "break-even"});
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kDl1024,
                         group::GroupId::kDl2048}) {
    const auto g = group::make_group(gid);
    mpz::ChaChaRng rng{14};
    // Stand-in joint key: any non-generator element works — the table only
    // sees an opaque base.
    const auto y = g->exp_g(g->random_nonzero_scalar(rng));
    const auto s = g->random_nonzero_scalar(rng);
    const int iters = 16;
    double t0 = now_s();
    for (int i = 0; i < iters; ++i) (void)g->exp(y, s);
    const double generic = (now_s() - t0) / iters;
    for (const std::size_t w : {std::size_t{2}, std::size_t{4},
                                std::size_t{6}}) {
      t0 = now_s();
      const group::FixedBaseTable table{*g, y, g->order().bit_length(), w};
      const double build = now_s() - t0;
      t0 = now_s();
      for (int i = 0; i < iters; ++i) (void)table.exp(*g, s);
      const double fixed = (now_s() - t0) / iters;
      char wbuf[8], speedup[16], breakeven[24];
      std::snprintf(wbuf, sizeof(wbuf), "%zu", w);
      std::snprintf(speedup, sizeof(speedup), "%.1fx", generic / fixed);
      // Exps after which the build has paid for itself.
      std::snprintf(breakeven, sizeof(breakeven), "%.0f exps",
                    build / (generic - fixed > 0 ? generic - fixed : 1e-12));
      table2.row({g->name(), wbuf, TablePrinter::fmt_seconds(build),
                  TablePrinter::fmt_seconds(generic),
                  TablePrinter::fmt_seconds(fixed), speedup, breakeven});
    }
  }
  std::printf("\nA fig2a-preset session answers n(n-1)*l re-randomizations "
              "from one table\n(e.g. n=16, l=35: 8400 y^r exps), far past "
              "every break-even above.\n");
  return 0;
}

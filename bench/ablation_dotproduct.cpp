// Ablation: the secure dot product's disguise dimension s.
//
// The Ioannidis protocol hides Bob's vector inside an s x d matrix; s
// controls the size of the linear system an adversary faces and the cost of
// phase 1. The paper (citing [2]) notes s "is not necessary to be a big
// number"; this ablation quantifies the cost of growing it: computation is
// O(s^2 + s·d) for Bob and the round-1 message is (s+2)·d field elements.
#include <chrono>
#include <cstdio>

#include "benchcore/model.h"
#include "dotprod/dot_product.h"

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  const auto& f = core::default_dot_field();
  const std::size_t d = 16;  // m + t + 1 for the paper's default spec

  std::printf("Ablation: dot-product disguise dimension s (d = %zu)\n\n", d);
  TablePrinter table({"s", "bob time", "alice time", "bob->alice bytes"});
  mpz::ChaChaRng rng{11};
  dotprod::FVec w(d), v(d);
  for (auto& x : w) x = f.random(rng);
  for (auto& x : v) x = f.random(rng);

  for (const std::size_t s : {2u, 4u, 8u, 16u, 32u, 64u}) {
    double bob_time;
    {
      const double t0 = now_s();
      for (int i = 0; i < 10; ++i) {
        const dotprod::DotProductBob bob{f, w, s, rng};
        (void)bob;
      }
      bob_time = (now_s() - t0) / 10;
    }
    const dotprod::DotProductBob bob{f, w, s, rng};
    double alice_time;
    {
      const double t0 = now_s();
      for (int i = 0; i < 10; ++i)
        (void)dotprod::dot_product_alice(f, bob.round1(), v);
      alice_time = (now_s() - t0) / 10;
    }
    table.row({std::to_string(s), TablePrinter::fmt_seconds(bob_time),
               TablePrinter::fmt_seconds(alice_time),
               std::to_string(dotprod::bob_message_bytes(f, s, d))});
  }
  std::printf("\nExpected: linear-to-quadratic growth in s; s = 8 (the "
              "library default) costs well under a millisecond.\n");
  return 0;
}

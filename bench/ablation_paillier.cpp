// Ablation: why the paper builds the unlinkable comparison on (exponential)
// ElGamal rather than Paillier — reference [10] of the paper.
//
// Paillier matches ElGamal's homomorphic toolbox (add / scale /
// re-randomize / zero-preserving exponent masking) and even decrypts sums
// directly; at equal modulus size its per-operation costs and ciphertext
// sizes are compared below. The disqualifier is structural, not
// performance: step 5 of the framework needs a joint key no single party
// can use alone, which ElGamal gets from one broadcast round
// (y = Π g^{x_j}), while Paillier's secret is the factorization of N —
// a dealerless distributed RSA-modulus generation, orders of magnitude more
// protocol machinery. This bench makes the performance half of that
// trade-off concrete.
#include <chrono>
#include <cstdio>

#include "benchcore/model.h"
#include "crypto/elgamal.h"
#include "crypto/paillier.h"

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename F>
double time_per_call(F&& body, int iters) {
  body();
  const double t0 = now_s();
  for (int i = 0; i < iters; ++i) body();
  return (now_s() - t0) / iters;
}
}  // namespace

int main() {
  using namespace ppgr;
  using benchcore::TablePrinter;
  mpz::ChaChaRng rng{77};

  std::printf("Ablation: exponential ElGamal vs Paillier as the phase-2 "
              "cryptosystem\n(80-bit security: DL/RSA-1024, P-192)\n\n");
  TablePrinter table({"system", "ct bytes", "encrypt", "add", "scale",
                      "distributed key"});

  // ElGamal over the two production groups.
  for (const auto gid : {group::GroupId::kEcP192, group::GroupId::kDl1024}) {
    const auto g = group::make_group(gid);
    const auto kp = crypto::keygen(*g, rng);
    auto ct = crypto::encrypt_exp(*g, kp.y, mpz::Nat{1}, rng);
    const double enc = time_per_call(
        [&] { ct = crypto::encrypt_exp(*g, kp.y, mpz::Nat{1}, rng); }, 10);
    const double add =
        time_per_call([&] { (void)crypto::ct_add(*g, ct, ct); }, 50);
    const double scale = time_per_call(
        [&] { (void)crypto::ct_scale(*g, ct, g->order()); }, 10);
    table.row({"elgamal/" + g->name(),
               std::to_string(crypto::ciphertext_bytes(*g)),
               TablePrinter::fmt_seconds(enc), TablePrinter::fmt_seconds(add),
               TablePrinter::fmt_seconds(scale), "1 broadcast round"});
  }

  // Paillier at 1024-bit modulus (same 80-bit security class as DL-1024).
  const auto key = crypto::PaillierPrivateKey::generate(1024, rng);
  const auto& pub = key.public_key();
  mpz::Nat ct = pub.encrypt(mpz::Nat{1}, rng);
  const double enc =
      time_per_call([&] { ct = pub.encrypt(mpz::Nat{1}, rng); }, 10);
  const double add = time_per_call([&] { (void)pub.add(ct, ct); }, 50);
  const double scale =
      time_per_call([&] { (void)pub.scale(ct, pub.n()); }, 10);
  table.row({"paillier-1024", std::to_string(pub.ciphertext_bytes()),
             TablePrinter::fmt_seconds(enc), TablePrinter::fmt_seconds(add),
             TablePrinter::fmt_seconds(scale),
             "distributed RSA keygen (impractical)"});

  std::printf("\nPaillier would also let the initiator decrypt sums directly "
              "(no g^m zero\ntest needed), but the framework cannot give any "
              "single party that power —\nthe distributed-key column is the "
              "decisive one, exactly as the paper's\nSec. II argues.\n");
  return 0;
}

#!/usr/bin/env python3
"""Noise-aware comparison of benchmark/metrics JSON reports.

Used by the `bench-regress` CI leg (scripts/ci.sh) to gate performance
regressions against checked-in baselines:

  bench_compare.py BASELINE CURRENT [BASELINE2 CURRENT2 ...] \\
      [--wall-tolerance 0.20]

Each (baseline, current) pair must have the same JSON shape (same bench,
same configuration); any number of pairs is gated in one invocation — one
shared code path classifies and compares the leaves of every report kind.
Leaves are classified by key:

  - *noisy* leaves — wall-clock and anything derived from it (keys matching
    "wall", "speedup", "latency", "throughput", "total_seconds",
    latency-histogram bins, or host facts like "hardware_concurrency") —
    vary run to run; a relative drift beyond the tolerance prints a WARN
    but never fails the gate. Simulated *virtual* network seconds are NOT
    noisy: they are a deterministic function of the run and compare
    exactly. Fault-injection/recovery counters ("ppgr.fault.v1", the
    comm "faults" block, engine outcome rollups) are likewise seeded and
    deterministic, and are forced into the exact class even when a noisy
    substring (e.g. "latency") would otherwise match; so are the accel_*
    multi-exponentiation counters — they count algorithm invocations, not
    time, and must never drift silently;
  - every other numeric leaf (operation counts, cache hit/miss counts,
    message counts, byte totals, rounds, parameters) is deterministic by
    construction, so any drift at all is a FAIL: the protocol, the codecs
    or the instrumentation changed and the baseline must be regenerated
    deliberately.

Exit status: 0 = clean or warnings only, 1 = deterministic drift or shape
mismatch, 2 = usage/IO error, 3 = a baseline file does not exist (first run
on a fresh checkout / new bench: bootstrap it by copying the current
report). Works on BENCH_parallel.json, BENCH_engine.json, ppgr.metrics.v1
and ppgr.comm.v1 documents alike (the classification is by key, not
schema).
"""

import argparse
import json
import os
import sys

NOISY_KEY_PARTS = (
    "wall",
    "speedup",
    "latency",  # per-session latency percentiles in BENCH_engine.json
    "throughput",  # sessions/sec in BENCH_engine.json
    "total_seconds",  # wall-clock op-latency totals in ppgr.metrics.v1
    "hardware_concurrency",
    "ge_ns",  # latency histogram bin floors
    # Live-telemetry observables (engine rollup "latency"/"health" sections,
    # BENCH_engine.json "telemetry" block): wall-clock-derived by design.
    "queue_wait",  # queue_wait_p50_seconds / queue_wait_p99_seconds
    "run_duration",  # run_duration_p50_seconds / run_duration_p99_seconds
    "overhead",  # sampler overhead ratio in BENCH_engine.json
    "samples",  # sampler tick count — period / scheduling dependent
    "stalls",  # watchdog observation count — snapshot-timing dependent
    "uptime",
    "per_event",  # calibrated flight-recorder record() cost (BENCH_engine)
)

# Fault-injection and channel-recovery observables (ppgr.fault.v1 sections,
# CommRegistry "faults" blocks, engine per-outcome rollups) are seeded and
# schedule-independent: they compare EXACTLY, even where a substring above
# would otherwise classify them as noisy (e.g. the injected-delay counter
# lives next to latency keys). Checked before the noisy classification.
EXACT_KEY_PARTS = (
    "accel",  # accel_* multi-exp/fixed-base/batch-inverse counters
    "injected",  # injected_drop/.../injected_crash/injected_total
    "retransmits",
    "crc_detected",
    "duplicates_dropped",
    "reorders_healed",
    "timeouts",
    "giveups",
    "fault",  # fault coordinates, fault counters blocks
    "outcome",  # engine per-outcome counts ("outcomes": {"ok": .., ..})
    "dropped_parties",
    "active_parties",
    # Conformance-audit and flight-recorder observables (engine rollup
    # "audit" block, BENCH_engine.json "flight" block, ppgr.audit.v1):
    # counts of deterministic events, gated exactly.
    "events_recorded",  # flight events per pass — a pure function of the run
    "drifted",  # sessions whose audit found divergence
    "findings",
    "checkpoints",
    "gate_pass",  # overhead-budget verdicts flip only on real regressions
)


def is_forced_exact(path):
    leaf = path.rsplit(".", 1)[-1]
    return any(part in leaf for part in EXACT_KEY_PARTS)


def is_noisy(path):
    # Deterministic fault/recovery counters win over every noisy pattern.
    if is_forced_exact(path):
        return False
    # Latency histogram bins hold wall-clock distributions: both the bin
    # floors and the per-bin counts are timing-dependent.
    if ".bins[" in path:
        return True
    leaf = path.rsplit(".", 1)[-1]
    return any(part in leaf for part in NOISY_KEY_PARTS)


def load_json(name):
    """Loads a JSON document, exiting with status 2 on IO/parse errors."""
    try:
        with open(name, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {name}: {e}", file=sys.stderr)
        sys.exit(2)


class Comparison:
    def __init__(self, wall_tolerance):
        self.wall_tolerance = wall_tolerance
        self.failures = []
        self.warnings = []
        self.exact_checked = 0
        self.noisy_checked = 0

    def fail(self, msg):
        self.failures.append(msg)

    def warn(self, msg):
        self.warnings.append(msg)

    def compare(self, path, base, cur):
        if type(base) is not type(cur) and not (
            isinstance(base, (int, float)) and isinstance(cur, (int, float))
        ):
            self.fail(
                f"{path}: type changed "
                f"({type(base).__name__} -> {type(cur).__name__})"
            )
            return
        if isinstance(base, dict):
            for key in base.keys() | cur.keys():
                sub = f"{path}.{key}" if path else key
                if key not in base:
                    self.fail(f"{sub}: new key not in baseline")
                elif key not in cur:
                    self.fail(f"{sub}: key missing from current report")
                else:
                    self.compare(sub, base[key], cur[key])
        elif isinstance(base, list):
            if len(base) != len(cur):
                self.fail(
                    f"{path}: length changed ({len(base)} -> {len(cur)})"
                )
                return
            for i, (b, c) in enumerate(zip(base, cur)):
                self.compare(f"{path}[{i}]", b, c)
        elif isinstance(base, bool) or not isinstance(base, (int, float)):
            self.exact_checked += 1
            if base != cur:
                self.fail(f"{path}: {base!r} -> {cur!r}")
        elif is_noisy(path):
            self.noisy_checked += 1
            ref = max(abs(base), abs(cur))
            if ref == 0:
                return
            rel = abs(cur - base) / ref
            if rel > self.wall_tolerance:
                self.warn(
                    f"{path}: {base:.6g} -> {cur:.6g} "
                    f"({rel * 100:.1f}% > {self.wall_tolerance * 100:.0f}% "
                    f"tolerance)"
                )
        else:
            self.exact_checked += 1
            if base != cur:
                delta = cur - base
                self.fail(f"{path}: {base} -> {cur} (delta {delta:+})")


def compare_pair(baseline, current, wall_tolerance):
    """Compares one (baseline, current) report pair; returns the
    Comparison with its findings (messages prefixed with the pair name)."""
    if not os.path.exists(baseline):
        print(
            f"error: baseline {baseline} does not exist.\n"
            f"  First run for this bench? Bootstrap the baseline from the "
            f"current report and commit it:\n"
            f"    cp {current} {baseline}\n"
            f"  (see scripts/ci.sh bench-regress for the regeneration "
            f"workflow)",
            file=sys.stderr,
        )
        sys.exit(3)
    cmp = Comparison(wall_tolerance)
    cmp.compare("", load_json(baseline), load_json(current))
    for msg in cmp.warnings:
        print(f"WARN  [{baseline}] {msg}")
    for msg in cmp.failures:
        print(f"FAIL  [{baseline}] {msg}")
    print(
        f"bench_compare: {baseline} vs {current}: "
        f"{cmp.exact_checked} deterministic leaves checked exactly, "
        f"{cmp.noisy_checked} noisy leaves within "
        f"{wall_tolerance * 100:.0f}% tolerance, "
        f"{len(cmp.warnings)} warning(s), {len(cmp.failures)} failure(s)"
    )
    return cmp


def main():
    parser = argparse.ArgumentParser(
        description="Compare benchmark JSON report(s) against baseline(s)."
    )
    parser.add_argument(
        "reports",
        nargs="+",
        metavar="BASELINE CURRENT",
        help="one or more (baseline, current) file pairs",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.20,
        metavar="FRAC",
        help="relative drift allowed on noisy (timing) leaves before a "
        "warning is printed (default 0.20 = 20%%)",
    )
    args = parser.parse_args()
    if len(args.reports) < 2 or len(args.reports) % 2 != 0:
        print(
            "error: reports must come in (baseline, current) pairs",
            file=sys.stderr,
        )
        return 2

    failures = 0
    for i in range(0, len(args.reports), 2):
        cmp = compare_pair(
            args.reports[i], args.reports[i + 1], args.wall_tolerance
        )
        failures += len(cmp.failures)

    if failures:
        print(
            "bench_compare: deterministic drift — if deliberate, regenerate "
            "the baseline (see scripts/ci.sh bench-regress)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Loopback deployment launcher: runs one ppgr_cli-style instance file as
# n+1 real OS processes (one ppgr_party per protocol party) over localhost
# TCP, and prints the initiator's ranking.
#
# The instance file is split into the public spec (spec/group/k + a derived
# `parties` count) and per-party private inputs (criterion+weights for the
# initiator, one participant line each for parties 1..n) — each process
# only ever reads its own share, like a real deployment would.
#
# All per-party artifacts (spec, inputs, logs, exit codes) land in the work
# directory (default: a fresh mktemp -d, printed at the end; kept on
# failure for inspection).
#
# Exit: 0 = all parties completed; 4 = some party exited with a protocol /
# transport fault; 2 = usage error; 1 = anything else.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: run_local.sh INSTANCE_FILE [options]

  INSTANCE_FILE      full ppgr_cli instance file (spec/group/k/criterion/
                     weights/participant directives)
  --seed N           shared ChaCha20 seed handed to every party; makes the
                     socket run bit-identical to `ppgr_cli INSTANCE --seed N`
  --framework he|ss  protocol selection, forwarded to every party
                     (default he)
  --threshold T      SS threshold, forwarded when --framework ss
  --base-port P      first listen port; party i listens on P+i
                     (default: random in 20000..39999)
  --bin PATH         ppgr_party binary
                     (default: build/examples/ppgr_party next to this repo)
  --work-dir DIR     working directory for split inputs and per-party logs
                     (default: mktemp -d)
  --keep             keep the work directory on success too
  --help             show this message
EOF
}

here="$(cd "$(dirname "$0")/.." && pwd)"
instance=""
seed_args=()
fw_args=()
base_port=$((20000 + RANDOM % 20000))
bin="${here}/build/examples/ppgr_party"
work=""
keep=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --help|-h) usage; exit 0 ;;
    --seed) seed_args=(--seed "${2:?--seed needs a value}"); shift 2 ;;
    --framework) fw_args+=(--framework "${2:?--framework needs a value}"); shift 2 ;;
    --threshold) fw_args+=(--threshold "${2:?--threshold needs a value}"); shift 2 ;;
    --base-port) base_port="${2:?--base-port needs a value}"; shift 2 ;;
    --bin) bin="${2:?--bin needs a value}"; shift 2 ;;
    --work-dir) work="${2:?--work-dir needs a value}"; shift 2 ;;
    --keep) keep=1; shift ;;
    -*) echo "run_local.sh: unknown option '$1'" >&2; usage >&2; exit 2 ;;
    *)
      if [[ -n "${instance}" ]]; then
        echo "run_local.sh: more than one instance file" >&2; exit 2
      fi
      instance="$1"; shift ;;
  esac
done

if [[ -z "${instance}" ]]; then
  echo "run_local.sh: missing INSTANCE_FILE" >&2; usage >&2; exit 2
fi
if [[ ! -r "${instance}" ]]; then
  echo "run_local.sh: cannot read '${instance}'" >&2; exit 1
fi
if [[ ! -x "${bin}" ]]; then
  echo "run_local.sh: ppgr_party binary not found at '${bin}'" >&2
  echo "  build it first: cmake -B build -S . && cmake --build build -j --target ppgr_party" >&2
  exit 1
fi

if [[ -z "${work}" ]]; then
  work="$(mktemp -d "${TMPDIR:-/tmp}/ppgr_local.XXXXXX")"
else
  mkdir -p "${work}"
fi

# Split the instance file: spec/group/k go into the public spec (plus the
# participant count), criterion+weights into party 0's input, the i-th
# participant line into party i's input.
n="$(awk -v work="${work}" '
  { sub(/#.*/, "") }
  $1 == "spec" || $1 == "group" || $1 == "k" { print > (work "/spec.txt"); next }
  $1 == "criterion" || $1 == "weights" { print > (work "/input0.txt"); next }
  $1 == "participant" { ++n; print > (work "/input" n ".txt"); next }
  END { print n+0 }
' "${instance}")"

if [[ "${n}" -lt 2 ]]; then
  echo "run_local.sh: instance has ${n} participant line(s); need >= 2" >&2
  exit 1
fi
echo "parties ${n}" >> "${work}/spec.txt"

peers=""
for ((i = 0; i <= n; ++i)); do
  peers="${peers}${peers:+,}${i}=127.0.0.1:$((base_port + i))"
done

echo "run_local.sh: launching $((n + 1)) processes on 127.0.0.1:${base_port}..$((base_port + n))" >&2
pids=()
for ((i = 1; i <= n; ++i)); do
  "${bin}" --party-id "${i}" --listen "127.0.0.1:$((base_port + i))" \
      --peers "${peers}" --spec "${work}/spec.txt" \
      --input "${work}/input${i}.txt" --quiet \
      "${seed_args[@]+"${seed_args[@]}"}" "${fw_args[@]+"${fw_args[@]}"}" \
      > "${work}/party${i}.log" 2>&1 &
  pids+=($!)
done

status=0
"${bin}" --party-id 0 --listen "127.0.0.1:${base_port}" \
    --peers "${peers}" --spec "${work}/spec.txt" \
    --input "${work}/input0.txt" \
    "${seed_args[@]+"${seed_args[@]}"}" "${fw_args[@]+"${fw_args[@]}"}" \
    > "${work}/party0.log" 2>&1 || status=$?

for ((i = 1; i <= n; ++i)); do
  rc=0
  wait "${pids[i - 1]}" || rc=$?
  if [[ "${rc}" -ne 0 && "${status}" -eq 0 ]]; then status="${rc}"; fi
  echo "${rc}" > "${work}/party${i}.exit"
done
echo "${status}" > "${work}/party0.exit"

cat "${work}/party0.log"
if [[ "${status}" -ne 0 ]]; then
  echo "run_local.sh: a party failed (exit ${status}); logs kept in ${work}/" >&2
  exit "${status}"
fi
if [[ "${keep}" -eq 1 ]]; then
  echo "run_local.sh: artifacts kept in ${work}/" >&2
else
  rm -rf "${work}"
fi

#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition file.

Checks the subset of the OpenMetrics spec the telemetry layer relies on
(src/runtime/telemetry.h OpenMetricsBuilder + engine/introspect.cpp):

  - the file ends with exactly one '# EOF' line and nothing follows it;
  - every '# TYPE' declares a known type (gauge / counter / histogram) and
    no family is declared twice;
  - every sample line parses (name{labels} value), its labels are
    well-formed, and its metric name belongs to the *current* family —
    samples of one family are contiguous, never interleaved with another;
  - histogram families expose conventional _bucket/_sum/_count series, the
    cumulative buckets are non-decreasing in 'le' order, a '+Inf' bucket is
    present per label set, and _count equals the +Inf bucket.

Usage: check_openmetrics.py FILE [FILE...]
Exit:  0 when every file validates, 1 otherwise (problems on stderr).
"""

import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"       # metric name
    r"(?:\{([^}]*)\})?"                   # optional {labels}
    r" (-?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?|[+-]Inf|NaN)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
TYPES = {"gauge", "counter", "histogram"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(raw):
    """'a="x",b="y"' -> dict; raises ValueError on malformed pairs."""
    if not raw:
        return {}
    out = {}
    for pair in raw.split(","):
        if not LABEL_RE.match(pair):
            raise ValueError(f"malformed label pair '{pair}'")
        name, value = pair.split("=", 1)
        out[name] = value.strip('"')
    return out


def check(path):
    problems = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()

    if not lines or lines[-1] != "# EOF":
        problems.append("missing terminating '# EOF' line")
    if lines.count("# EOF") > 1:
        problems.append("more than one '# EOF' line")

    declared = {}          # family -> type
    current = None         # family of the contiguous sample block
    # histogram bookkeeping: (family, labels-without-le) -> state
    buckets = {}           # -> list of (le, value)
    counts = {}            # -> _count value

    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: content after '# EOF'")
            break
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                problems.append(f"line {lineno}: bad TYPE line '{line}'")
                continue
            family = parts[2]
            if family in declared:
                problems.append(
                    f"line {lineno}: family '{family}' declared twice")
            declared[family] = parts[3]
            current = family
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) < 4:
                problems.append(f"line {lineno}: bad HELP line '{line}'")
            continue
        if line.startswith("#") or line == "":
            problems.append(f"line {lineno}: unexpected line '{line}'")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparsable sample '{line}'")
            continue
        name, raw_labels, value = m.groups()
        try:
            labels = parse_labels(raw_labels)
        except ValueError as e:
            problems.append(f"line {lineno}: {e}")
            continue

        if current is None:
            problems.append(f"line {lineno}: sample before any TYPE line")
            continue
        if declared.get(current) == "histogram":
            ok = name == current or any(
                name == current + s for s in HIST_SUFFIXES)
        else:
            ok = name == current
        if not ok:
            problems.append(
                f"line {lineno}: sample '{name}' outside its family block "
                f"(current family: '{current}')")
            continue

        if declared.get(current) == "histogram" and name != current:
            key_labels = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le"))
            key = (current, key_labels)
            if name == current + "_bucket":
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without 'le'")
                    continue
                le = (float("inf") if labels["le"] == "+Inf"
                      else float(labels["le"]))
                buckets.setdefault(key, []).append(
                    (lineno, le, float(value)))
            elif name == current + "_count":
                counts[key] = (lineno, float(value))

    for (family, _labels), series in buckets.items():
        prev = None
        for lineno, le, value in series:
            if prev is not None and value < prev:
                problems.append(
                    f"line {lineno}: histogram '{family}' bucket not "
                    f"cumulative ({value} < {prev})")
            prev = value
        if not any(le == float("inf") for _, le, _v in series):
            problems.append(f"histogram '{family}' has no '+Inf' bucket")
        key = (family, _labels)
        if key in counts:
            inf_value = [v for _, le, v in series if le == float("inf")]
            if inf_value and counts[key][1] != inf_value[0]:
                problems.append(
                    f"histogram '{family}': _count {counts[key][1]} != "
                    f"+Inf bucket {inf_value[0]}")

    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bad = 0
    for path in argv[1:]:
        problems = check(path)
        if problems:
            bad += 1
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

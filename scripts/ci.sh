#!/usr/bin/env bash
# CI entry point: plain build + full ctest, then the same suite hardened
# under ASan+UBSan and TSan (CMake presets `asan` / `tsan`). The TSan leg is
# what proves the parallel execution engine race-free: it runs
# parallel_determinism_test and runtime_pool_test with real threads.
#
# The `metrics` mode is the focused observability leg: it runs the metrics
# unit tests, the golden exporter test and the model-vs-measured self-check
# (bench/validate_model --check) under ASan+UBSan — CI fails on any counter
# drift between the runtime metrics and the analytical cost model. The full
# asan/plain legs also include these tests via ctest.
#
# Usage: scripts/ci.sh [plain|asan|tsan|metrics|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_leg() {
  local preset="$1"
  shift
  echo "==== [${preset}] configure + build + test ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}" -j "${JOBS}" "$@"
}

case "${MODE}" in
  plain) run_leg default ;;
  asan) run_leg asan ;;
  # The full suite takes a while under TSan's instrumentation; the threaded
  # tests are the ones TSan exists for, so the tsan leg runs those. Pass
  # extra ctest args (e.g. -R '.') to widen.
  tsan) run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property' ;;
  metrics) run_leg asan -R 'runtime_metrics|metrics_export|model_validation' ;;
  all)
    run_leg default
    run_leg asan
    run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property'
    ;;
  *)
    echo "usage: $0 [plain|asan|tsan|metrics|all]" >&2
    exit 2
    ;;
esac
echo "==== ci.sh: all requested legs green ===="

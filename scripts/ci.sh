#!/usr/bin/env bash
# CI entry point: plain build + full ctest, then the same suite hardened
# under ASan+UBSan and TSan (CMake presets `asan` / `tsan`). The TSan leg is
# what proves the parallel execution engine race-free: it runs
# parallel_determinism_test and runtime_pool_test with real threads.
#
# The `metrics` mode is the focused observability leg: it runs the metrics
# unit tests, the golden exporter test and the model-vs-measured self-checks
# (bench/validate_model --check and --check-comm) under ASan+UBSan — CI
# fails on any counter drift between the runtime metrics and the analytical
# cost model, or any wire-byte drift between the measured communication and
# the closed-form comm model. The full asan/plain legs also include these
# tests via ctest.
#
# The `engine` mode is the session-engine concurrency leg: it runs the
# engine tests (admission cap, shared precompute cache, determinism under
# load, the multi-session stress test) under TSan — many driver threads
# race through one shared thread pool, cache and metrics registry, which is
# exactly the surface TSan exists for.
#
# The `chaos` mode is the fault-injection leg: the seeded fault-matrix soak
# (drop/corrupt/delay/crash x phase x party over both frameworks, plus the
# channel/codec fault unit tests and the tampered-proof security tests) runs
# under ASan+UBSan — every injected fault must end in a correct ranking or a
# typed ProtocolFault, never UB. The engine fault-isolation soak (crash-killed
# sessions vs bit-identical survivors over a shared precompute cache) runs
# under TSan, since session isolation is a concurrency property.
#
# The `multiexp` mode is the multi-exponentiation crypto leg: the
# differential suite (Straus/Pippenger/fixed-base vs naive Group::exp on
# every group family), the batched-inversion KATs and the accel-on vs
# accel-off bit-identity test run under ASan+UBSan — index arithmetic over
# window digits and bucket arrays is exactly the surface ASan watches.
#
# The `telemetry` mode is the live-observability leg: the telemetry suite
# (sampler lifecycle, concurrent snapshot-vs-absorb races, the telemetry-off
# golden non-perturbation invariant, OpenMetrics exposition validated by
# scripts/check_openmetrics.py from inside the test) plus the engine
# watchdog stalled->fault test run under TSan — samplers and watchdogs read
# engine state while sixteen driver threads mutate it, which is exactly the
# surface TSan exists for.
#
# The `audit` mode is the forensics/conformance leg: the flight-recorder
# suite (ring semantics, Router taps), the conformance-audit suite (clean
# runs audit to zero findings, faulted/degraded/tampered runs to typed
# ones, postmortem atomicity) and the ppgr_server exit-contract integration
# test run under ASan+UBSan; the concurrent record-vs-dump race in the
# flight ring runs again under TSan (observer threads dump while the
# orchestrator records).
#
# The `chaos` leg additionally drives one known-faulting scenario through
# ppgr_server with --postmortem-dir build/chaos_postmortems/ and archives
# the resulting ppgr.postmortem.v1 bundles — a failing chaos investigation
# starts from a forensic flight recording, not from a rerun.
#
# The `bench-regress` mode is the perf-regression gate: it reruns the
# parallel_speedup and engine_throughput benches with the checked-in
# baselines' exact configurations and compares both fresh reports against
# BENCH_parallel.json / BENCH_engine.json in one scripts/bench_compare.py
# invocation — operation counts, cache hit/miss counts, message counts and
# byte totals must match exactly (deterministic; any drift fails),
# wall-clock/throughput/latency drift beyond 20% only warns (1-core CI
# boxes are noisy). After a deliberate protocol/codec change, regenerate:
#   ./build/bench/parallel_speedup --out BENCH_parallel.json
#   ./build/bench/engine_throughput --out BENCH_engine.json
#
# The `sockets` mode is the real-transport leg: the net::tcp suite (frame
# codec over flaky socketpairs, loopback transport meshes, the full
# protocol over sockets vs the same-seed simulator) and the process-level
# launcher test run under ASan+UBSan; the transport mesh + in-process
# socket E2E tests run again under TSan — per-peer reader threads feeding
# inboxes while protocol threads send is exactly the surface TSan watches.
#
# Usage: scripts/ci.sh [plain|asan|tsan|engine|metrics|chaos|multiexp|telemetry|audit|sockets|bench-regress|all]
#        (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_leg() {
  local preset="$1"
  shift
  echo "==== [${preset}] configure + build + test ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}" -j "${JOBS}" "$@"
}

bench_regress() {
  echo "==== [bench-regress] benches vs checked-in baselines ===="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" \
      --target parallel_speedup engine_throughput
  local fresh_parallel="build/bench_regress_current.json"
  local fresh_engine="build/bench_regress_engine_current.json"
  ./build/bench/parallel_speedup --out "${fresh_parallel}"
  ./build/bench/engine_throughput --out "${fresh_engine}"
  python3 scripts/bench_compare.py \
      BENCH_parallel.json "${fresh_parallel}" \
      BENCH_engine.json "${fresh_engine}"
}

# Archives forensic bundles from a known-faulting chaos scenario: a crash
# plan kills a session, ppgr_server exits 3 (batch degraded) and the
# postmortem bundle (wide event + flight recording + fault report) must
# land in build/chaos_postmortems/ for the investigation.
chaos_postmortems() {
  echo "==== [chaos] archive postmortem bundles from a faulting run ===="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target ppgr_server
  local dir="build/chaos_postmortems"
  mkdir -p "${dir}"
  local req="${dir}/crash_scenario.req"
  cat > "${req}" <<'EOF'
session 1
spec 4 2 8 4 8
k 1
criterion 35 120 0 0
weights 10 5 2 1
participant 34 118 90 55
participant 52 160 20 90
participant 35 121 40 40
fault-plan seed=7,crash=2@1
EOF
  local status=0
  ./build/examples/ppgr_server "${req}" --audit --flight-events 4096 \
      --postmortem-dir "${dir}" \
      --session-log-out "${dir}/sessions.jsonl" || status=$?
  if [[ "${status}" -ne 3 ]]; then
    echo "chaos_postmortems: expected exit 3 (batch degraded), got ${status}" >&2
    exit 1
  fi
  if [[ ! -s "${dir}/session-1.postmortem.json" ]]; then
    echo "chaos_postmortems: postmortem bundle did not land in ${dir}" >&2
    exit 1
  fi
  echo "chaos postmortem bundles archived in ${dir}/"
}

case "${MODE}" in
  plain) run_leg default ;;
  asan) run_leg asan ;;
  # The full suite takes a while under TSan's instrumentation; the threaded
  # tests are the ones TSan exists for, so the tsan leg runs those. Pass
  # extra ctest args (e.g. -R '.') to widen.
  tsan) run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property' ;;
  engine) run_leg tsan -R 'engine' ;;
  metrics) run_leg asan -R 'runtime_metrics|metrics_export|model_validation|comm_validation|net_test' ;;
  chaos)
    run_leg asan -R '^fault_test$|chaos_test|wire_test|security_test'
    run_leg tsan -R 'engine_fault'
    chaos_postmortems
    ;;
  multiexp) run_leg asan -R 'multiexp|batch_inverse|parallel_determinism' ;;
  telemetry) run_leg tsan -R 'telemetry|engine_fault' ;;
  audit)
    run_leg asan -R 'flightrec|audit_test|server_cli'
    run_leg tsan -R 'flightrec'
    ;;
  sockets)
    run_leg asan -R 'tcp_transport|party_launcher'
    run_leg tsan -R 'tcp_transport'
    ;;
  bench-regress) bench_regress ;;
  all)
    run_leg default
    run_leg asan
    run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property'
    run_leg tsan -R 'engine'
    run_leg tsan -R 'telemetry|engine_fault'
    run_leg tsan -R 'flightrec'
    run_leg tsan -R 'tcp_transport'
    bench_regress
    ;;
  *)
    echo "usage: $0 [plain|asan|tsan|engine|metrics|chaos|multiexp|telemetry|audit|sockets|bench-regress|all]" >&2
    exit 2
    ;;
esac
echo "==== ci.sh: all requested legs green ===="

#!/usr/bin/env bash
# CI entry point: plain build + full ctest, then the same suite hardened
# under ASan+UBSan and TSan (CMake presets `asan` / `tsan`). The TSan leg is
# what proves the parallel execution engine race-free: it runs
# parallel_determinism_test and runtime_pool_test with real threads.
#
# The `metrics` mode is the focused observability leg: it runs the metrics
# unit tests, the golden exporter test and the model-vs-measured self-checks
# (bench/validate_model --check and --check-comm) under ASan+UBSan — CI
# fails on any counter drift between the runtime metrics and the analytical
# cost model, or any wire-byte drift between the measured communication and
# the closed-form comm model. The full asan/plain legs also include these
# tests via ctest.
#
# The `bench-regress` mode is the perf-regression gate: it reruns the
# parallel_speedup bench with the checked-in BENCH_parallel.json's exact
# configuration and compares the fresh report against that baseline with
# scripts/bench_compare.py — operation counts, message counts and byte
# totals must match exactly (deterministic; any drift fails), wall-clock
# drift beyond 20% only warns (1-core CI boxes are noisy). After a
# deliberate protocol/codec change, regenerate the baseline:
#   ./build/bench/parallel_speedup --out BENCH_parallel.json
#
# Usage: scripts/ci.sh [plain|asan|tsan|metrics|bench-regress|all]
#        (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_leg() {
  local preset="$1"
  shift
  echo "==== [${preset}] configure + build + test ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}" -j "${JOBS}" "$@"
}

bench_regress() {
  echo "==== [bench-regress] parallel_speedup vs checked-in baseline ===="
  cmake --preset default
  cmake --build --preset default -j "${JOBS}" --target parallel_speedup
  local fresh="build/bench_regress_current.json"
  ./build/bench/parallel_speedup --out "${fresh}"
  python3 scripts/bench_compare.py BENCH_parallel.json "${fresh}"
}

case "${MODE}" in
  plain) run_leg default ;;
  asan) run_leg asan ;;
  # The full suite takes a while under TSan's instrumentation; the threaded
  # tests are the ones TSan exists for, so the tsan leg runs those. Pass
  # extra ctest args (e.g. -R '.') to widen.
  tsan) run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property' ;;
  metrics) run_leg asan -R 'runtime_metrics|metrics_export|model_validation|comm_validation|net_test' ;;
  bench-regress) bench_regress ;;
  all)
    run_leg default
    run_leg asan
    run_leg tsan -R 'parallel_determinism|runtime_pool|framework_property'
    bench_regress
    ;;
  *)
    echo "usage: $0 [plain|asan|tsan|metrics|bench-regress|all]" >&2
    exit 2
    ;;
esac
echo "==== ci.sh: all requested legs green ===="

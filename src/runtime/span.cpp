#include "runtime/span.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace ppgr::runtime {

void SpanBuffer::push(SpanEvent ev) {
  if (ev.begin) {
    ev.depth = depth_++;
  } else {
    ev.depth = --depth_;
  }
  events_.push_back(ev);
}

void SpanBuffer::clear() {
  events_.clear();
  depth_ = 0;
}

void SpanRecorder::push(SpanEvent ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ev.begin) {
    ev.depth = depth_++;
  } else {
    ev.depth = --depth_;
  }
  events_.push_back(ev);
}

void SpanRecorder::absorb(SpanBuffer& buf) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.reserve(events_.size() + buf.events().size());
    for (SpanEvent ev : buf.events()) {
      ev.depth += depth_;
      events_.push_back(ev);
    }
  }
  buf.clear();
}

std::array<double, kPhaseCount> SpanRecorder::phase_wall_seconds() const {
  std::array<double, kPhaseCount> wall{};
  std::array<double, kPhaseCount> open{};
  for (const auto& ev : events_) {
    if (ev.depth != 1) continue;
    const auto p = static_cast<std::size_t>(ev.phase);
    if (ev.begin) {
      open[p] = ev.t_wall;
    } else {
      wall[p] += ev.t_wall - open[p];
    }
  }
  return wall;
}

std::string SpanRecorder::chrome_trace_json(bool deterministic) const {
  std::string out;
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // One lane (tid) per party; tid = party + 1 keeps the orchestrator at 0.
  std::vector<std::int32_t> parties;
  for (const auto& ev : events_) {
    bool found = false;
    for (const auto p : parties)
      if (p == ev.party) {
        found = true;
        break;
      }
    if (!found) parties.push_back(ev.party);
  }
  std::sort(parties.begin(), parties.end());

  bool first = true;
  char buf[256];
  for (const auto p : parties) {
    char name[32];
    if (p == kOrchestratorParty) {
      std::snprintf(name, sizeof(name), "orchestrator");
    } else if (p == 0) {
      std::snprintf(name, sizeof(name), "P0 (initiator)");
    } else {
      std::snprintf(name, sizeof(name), "P%d", p);
    }
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": "
                  "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",\n", p + 1, name);
    out += buf;
    first = false;
  }

  // Match begin/end pairs per lane in stream order; emit one "X" complete
  // event per span, in end-event order (deterministic: the event stream is).
  const double t0 = events_.empty() ? 0.0 : events_.front().t_wall;
  std::unordered_map<std::int32_t, std::vector<std::size_t>> stacks;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto& ev = events_[i];
    if (ev.begin) {
      stacks[ev.party].push_back(i);
      continue;
    }
    auto& stack = stacks[ev.party];
    if (stack.empty()) continue;  // malformed stream; skip
    const std::size_t begin_idx = stack.back();
    const SpanEvent& b = events_[begin_idx];
    stack.pop_back();
    double ts_us;
    double dur_us;
    if (deterministic) {
      // Timestamps are event-stream indices in µs ticks: bit-identical
      // across thread counts, nesting preserved exactly.
      ts_us = static_cast<double>(begin_idx);
      dur_us = static_cast<double>(i - begin_idx);
    } else {
      ts_us = (b.t_wall - t0) * 1e6;
      dur_us = (ev.t_wall - b.t_wall) * 1e6;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"name\": "
                  "\"%s\", \"cat\": \"%s\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"args\": {\"party\": %d, \"depth\": %u, \"i\": %" PRIu64
                  "}}",
                  first ? "" : ",\n", ev.party + 1, b.name,
                  phase_name(b.phase), ts_us, dur_us, ev.party, b.depth,
                  b.index);
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ppgr::runtime

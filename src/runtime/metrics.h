// Crypto-operation metrics: counters and fixed-bin latency histograms for
// the protocol's expensive operations, attributed by (phase, party).
//
// The paper's whole evaluation (Figs. 2-3, the Sec. VI-B table) is a
// breakdown of where exponentiations, multiplications and bytes go across
// the three phases. This registry measures exactly that on the *real*
// runtime, so bench/validate_model can cross-check the measured counts
// against the closed-form predictions of benchcore::price_he_framework —
// the analytical table and the implementation can no longer silently
// diverge.
//
// Instrumentation funnel: hot paths (group ops via group::MeteredGroup,
// ElGamal/Paillier/Schnorr in src/crypto, the dot product, the comparison
// circuit and shuffle hops in core/framework.cpp) call count_op() /
// ScopedOpTimer. Both write through a thread-local MetricsBuffer* sink:
//
//  - Disabled (the default): no sink is installed, so every call is a
//    single thread-local load + branch — a no-op sink. Defining
//    PPGR_DISABLE_METRICS removes even that (kMetricsCompiledIn == false,
//    compile-time checkable), turning every instrumentation point into an
//    empty constexpr-folded function.
//  - Enabled (FrameworkConfig::metrics): the orchestrator installs one
//    MetricsBuffer per parallel task (MetricsScope) and absorbs them into
//    the shared MetricsRegistry in deterministic task-index order after the
//    fork-join barrier, mirroring TraceBuffer/TraceRecorder. Counter totals
//    are sums, so they are bit-identical for every --parallelism value.
//
// Determinism contract: counters (and histogram sample *counts*) are pure
// functions of the protocol instance and seed; latency bin contents and
// sums are wall-clock and vary run to run. MetricsRegistry::to_json(false)
// therefore emits only the deterministic fields (the golden exporter test
// and the cross-parallelism bit-identity check run in that mode).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/histogram.h"

namespace ppgr::runtime {

class SpanRecorder;  // span.h

/// Compile-time kill switch: build with -DPPGR_DISABLE_METRICS to fold every
/// count_op/ScopedOpTimer call site into an empty function.
#ifdef PPGR_DISABLE_METRICS
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Protocol phases of the paper's framework (Fig. 1), plus setup.
enum class Phase : std::uint8_t {
  kSetup = 0,   // keygen-independent bookkeeping outside the three phases
  kPhase1 = 1,  // secure gain computation
  kPhase2 = 2,  // unlinkable gain comparison
  kPhase3 = 3,  // ranking submission
};
inline constexpr std::size_t kPhaseCount = 4;
[[nodiscard]] const char* phase_name(Phase p);

/// Party id used for orchestrator-level work not attributable to one party
/// (e.g. the joint-key product computed once in the HBC simulation).
inline constexpr std::int32_t kOrchestratorParty = -1;

/// The expensive operations of the protocol stack, at the granularity the
/// paper's Sec. VI-B analysis counts them.
enum class CryptoOp : std::uint8_t {
  // group layer (counted by group::MeteredGroup at the Group interface,
  // identical semantics to group::CountingGroup)
  kGroupMul = 0,
  kGroupExp,        // variable-base exponentiation
  kGroupExpG,       // fixed-base (generator) exponentiation
  kGroupInv,
  kGroupSerialize,
  kGroupDeserialize,
  // ElGamal (src/crypto/elgamal.cpp)
  kElGamalEncrypt,
  kElGamalDecrypt,
  kElGamalRerandomize,
  kElGamalPartialDecrypt,
  kElGamalExpRandomize,
  // Paillier (src/crypto/paillier.cpp)
  kPaillierEncrypt,
  kPaillierDecrypt,
  kPaillierAdd,
  kPaillierScale,
  kPaillierRerandomize,
  // Schnorr proofs (src/crypto/schnorr_proof.cpp)
  kSchnorrProve,
  kSchnorrVerify,
  // dot product (src/dotprod)
  kDotprodQuery,    // Bob round-1 disguise construction
  kDotprodAnswer,   // Alice's reply
  kDotprodFinish,   // Bob's unmasking
  // framework steps (core/framework.cpp)
  kCompareCircuit,  // one l-bit comparison-circuit evaluation (step 7)
  kShuffleHop,      // one party's hop over one foreign set (step 8)
  // session-engine precompute cache (src/engine/precompute.h): lookups that
  // were served from an artifact a prior session built vs. lookups that had
  // to build the artifact themselves. Counted in the engine's own registry,
  // never in a session's (a session's counters must not depend on what ran
  // before it).
  kPrecomputeHit,
  kPrecomputeMiss,
  // accelerated-execution counters (PR 6): how often the phase-2 hot path
  // took a fast route — simultaneous multi-exponentiation (group/multi_exp),
  // fixed-base comb exponentiation through an attached table, and batched
  // Montgomery inversion for affine normalization. These run *in parallel*
  // to the logical group-op counters above: an accelerated path credits the
  // exact interface-level ops the unaccelerated algorithm would have
  // reported (so validate_model --check stays exact) and additionally bumps
  // these. They are deterministic functions of the run configuration, and
  // the only metrics keys allowed to differ between accel-on and accel-off.
  kAccelMultiExp,      // one multi_exp evaluation
  kAccelMultiExpTerm,  // terms across all multi_exp evaluations
  kAccelFixedBaseExp,  // exps served by a non-generator fixed-base table
  kAccelBatchInverse,  // elements inverted through a batched inversion
};
inline constexpr std::size_t kOpCount = 29;
[[nodiscard]] const char* op_name(CryptoOp op);

/// Plain counter block, one slot per CryptoOp.
struct OpTally {
  std::array<std::uint64_t, kOpCount> v{};

  [[nodiscard]] std::uint64_t operator[](CryptoOp op) const {
    return v[static_cast<std::size_t>(op)];
  }
  OpTally& operator+=(const OpTally& o) {
    for (std::size_t i = 0; i < kOpCount; ++i) v[i] += o.v[i];
    return *this;
  }
  [[nodiscard]] bool empty() const {
    for (const auto x : v)
      if (x != 0) return false;
    return true;
  }
};

// LatencyHistogram lives in runtime/histogram.h (shared with the telemetry
// layer's OpenMetrics buckets and quantile estimators).

/// Per-task, unsynchronized staging area (the metrics analogue of
/// TraceBuffer): counters keyed by (phase, party) plus per-op latency
/// histograms. The orchestrator gives every parallel task its own buffer
/// and absorbs them in task-index order.
class MetricsBuffer {
 public:
  struct Slot {
    Phase phase = Phase::kSetup;
    std::int32_t party = kOrchestratorParty;
    OpTally tally;
  };

  /// Routes subsequent add() calls to the (phase, party) slot, creating it
  /// on first use. O(#slots) on a context switch, O(1) per add.
  void set_context(Phase phase, std::int32_t party);

  void add(CryptoOp op, std::uint64_t delta = 1) {
    if (active_ == kNoSlot) set_context(Phase::kSetup, kOrchestratorParty);
    slots_[active_].tally.v[static_cast<std::size_t>(op)] += delta;
  }
  void add_latency(CryptoOp op, double seconds) {
    hist_[static_cast<std::size_t>(op)].add_seconds(seconds);
  }

  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }
  [[nodiscard]] const std::array<LatencyHistogram, kOpCount>& histograms()
      const {
    return hist_;
  }
  [[nodiscard]] bool empty() const;
  void clear();

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<Slot> slots_;
  std::size_t active_ = kNoSlot;
  std::array<LatencyHistogram, kOpCount> hist_;
};

namespace detail {
/// The thread-local sink the instrumentation funnel writes through. Null
/// (the default) means metrics are disabled on this thread. constinit is
/// load-bearing: it guarantees no dynamic initialization, so reads compile
/// to a direct TLS access instead of going through the TLS init wrapper
/// (which GCC's UBSan misdiagnoses as a null-pointer load at -O2).
extern thread_local constinit MetricsBuffer* tl_sink;
}  // namespace detail

[[nodiscard]] inline MetricsBuffer* current_metrics_sink() {
  if constexpr (!kMetricsCompiledIn) return nullptr;
  return detail::tl_sink;
}

/// The one-line instrumentation call for hot paths. With no sink installed
/// this is a thread-local load and an untaken branch; with
/// PPGR_DISABLE_METRICS it is an empty function.
inline void count_op(CryptoOp op, std::uint64_t delta = 1) {
  if constexpr (kMetricsCompiledIn) {
    if (MetricsBuffer* sink = detail::tl_sink) sink->add(op, delta);
  } else {
    (void)op;
    (void)delta;
  }
}

[[nodiscard]] inline double metrics_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Counts `op` once and records its wall-clock latency into the op's
/// histogram. Reads the sink once at construction; no clock calls when
/// metrics are disabled.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(CryptoOp op)
      : sink_(current_metrics_sink()), op_(op),
        start_(sink_ != nullptr ? metrics_now_seconds() : 0.0) {}
  ~ScopedOpTimer() {
    if (sink_ != nullptr) {
      sink_->add(op_);
      sink_->add_latency(op_, metrics_now_seconds() - start_);
    }
  }
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  MetricsBuffer* sink_;
  CryptoOp op_;
  double start_;
};

/// RAII installer: makes `buf` the thread's sink (with the given attribution
/// context) and restores the previous sink on destruction. A null buffer is
/// a no-op scope, so call sites need no branching.
class MetricsScope {
 public:
  MetricsScope(MetricsBuffer* buf, Phase phase, std::int32_t party)
      : prev_(detail::tl_sink) {
    if (buf != nullptr) buf->set_context(phase, party);
    detail::tl_sink = buf != nullptr ? buf : prev_;
  }
  ~MetricsScope() { detail::tl_sink = prev_; }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsBuffer* prev_;
};

/// RAII mute: removes this thread's sink entirely, restoring it on
/// destruction. MetricsScope cannot express "no sink" (a null buffer keeps
/// the previous one installed so call sites need no branching); the mute is
/// for work whose cost must not be attributed to the current measurement —
/// e.g. building a shared precompute artifact inside one session of the
/// session engine, where counting the build would make that session's
/// counters depend on whether an earlier session already paid for it.
class MetricsMute {
 public:
  MetricsMute() : prev_(detail::tl_sink) { detail::tl_sink = nullptr; }
  ~MetricsMute() { detail::tl_sink = prev_; }
  MetricsMute(const MetricsMute&) = delete;
  MetricsMute& operator=(const MetricsMute&) = delete;

 private:
  MetricsBuffer* prev_;
};

/// Thread-safe accumulation of MetricsBuffers. absorb() is one lock
/// acquisition per buffer; queries snapshot under the same lock. Counter
/// merging is commutative, so totals are schedule-independent; the
/// deterministic absorb order only matters for the exporters' slot order,
/// which is additionally canonicalized by sorting on (phase, party).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Merges and clears the buffer.
  void absorb(MetricsBuffer& buf);
  /// Direct locked increment (tests, non-hot call sites).
  void add(Phase phase, std::int32_t party, CryptoOp op,
           std::uint64_t delta = 1);

  [[nodiscard]] OpTally totals() const;
  [[nodiscard]] OpTally phase_totals(Phase phase) const;
  [[nodiscard]] std::uint64_t total(CryptoOp op) const;
  /// All (phase, party) slots, sorted by (phase, party).
  [[nodiscard]] std::vector<MetricsBuffer::Slot> slots() const;
  [[nodiscard]] LatencyHistogram histogram(CryptoOp op) const;
  [[nodiscard]] bool empty() const;
  void clear();

  /// Metrics JSON document ("ppgr.metrics.v1"). With include_timing the
  /// histograms carry bins and total time (wall-clock, nondeterministic);
  /// without it the output is a pure function of the protocol run and is
  /// bit-identical across thread counts (the golden-file mode).
  [[nodiscard]] std::string to_json(bool include_timing) const;

 private:
  mutable std::mutex mu_;
  std::vector<MetricsBuffer::Slot> slots_;
  std::array<LatencyHistogram, kOpCount> hist_;
};

class CommRegistry;  // runtime/comm.h (which includes this header)

/// Plain-text per-phase report: wall seconds per phase (from depth-1 spans,
/// when a recorder is supplied) and the key operation counters; with a
/// CommRegistry, also the per-phase communication summary and the per-link
/// breakdown with simulated utilization. For terminals instead of tooling.
[[nodiscard]] std::string phase_report(const MetricsRegistry& reg,
                                       const SpanRecorder* spans,
                                       const CommRegistry* comm = nullptr);

}  // namespace ppgr::runtime

#include "runtime/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "runtime/comm.h"
#include "runtime/span.h"

namespace ppgr::runtime {

namespace detail {
thread_local constinit MetricsBuffer* tl_sink = nullptr;
}  // namespace detail

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSetup: return "setup";
    case Phase::kPhase1: return "phase1";
    case Phase::kPhase2: return "phase2";
    case Phase::kPhase3: return "phase3";
  }
  return "?";
}

const char* op_name(CryptoOp op) {
  switch (op) {
    case CryptoOp::kGroupMul: return "group_mul";
    case CryptoOp::kGroupExp: return "group_exp";
    case CryptoOp::kGroupExpG: return "group_exp_g";
    case CryptoOp::kGroupInv: return "group_inv";
    case CryptoOp::kGroupSerialize: return "group_serialize";
    case CryptoOp::kGroupDeserialize: return "group_deserialize";
    case CryptoOp::kElGamalEncrypt: return "elgamal_encrypt";
    case CryptoOp::kElGamalDecrypt: return "elgamal_decrypt";
    case CryptoOp::kElGamalRerandomize: return "elgamal_rerandomize";
    case CryptoOp::kElGamalPartialDecrypt: return "elgamal_partial_decrypt";
    case CryptoOp::kElGamalExpRandomize: return "elgamal_exp_randomize";
    case CryptoOp::kPaillierEncrypt: return "paillier_encrypt";
    case CryptoOp::kPaillierDecrypt: return "paillier_decrypt";
    case CryptoOp::kPaillierAdd: return "paillier_add";
    case CryptoOp::kPaillierScale: return "paillier_scale";
    case CryptoOp::kPaillierRerandomize: return "paillier_rerandomize";
    case CryptoOp::kSchnorrProve: return "schnorr_prove";
    case CryptoOp::kSchnorrVerify: return "schnorr_verify";
    case CryptoOp::kDotprodQuery: return "dotprod_query";
    case CryptoOp::kDotprodAnswer: return "dotprod_answer";
    case CryptoOp::kDotprodFinish: return "dotprod_finish";
    case CryptoOp::kCompareCircuit: return "compare_circuit";
    case CryptoOp::kShuffleHop: return "shuffle_hop";
    case CryptoOp::kPrecomputeHit: return "precompute_hit";
    case CryptoOp::kPrecomputeMiss: return "precompute_miss";
    case CryptoOp::kAccelMultiExp: return "accel_multi_exp";
    case CryptoOp::kAccelMultiExpTerm: return "accel_multi_exp_term";
    case CryptoOp::kAccelFixedBaseExp: return "accel_fixed_base_exp";
    case CryptoOp::kAccelBatchInverse: return "accel_batch_inverse";
  }
  return "?";
}

void MetricsBuffer::set_context(Phase phase, std::int32_t party) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].phase == phase && slots_[i].party == party) {
      active_ = i;
      return;
    }
  }
  slots_.push_back(Slot{.phase = phase, .party = party});
  active_ = slots_.size() - 1;
}

bool MetricsBuffer::empty() const {
  for (const auto& s : slots_)
    if (!s.tally.empty()) return false;
  for (const auto& h : hist_)
    if (h.count() != 0) return false;
  return true;
}

void MetricsBuffer::clear() {
  slots_.clear();
  active_ = kNoSlot;
  hist_ = {};
}

void MetricsRegistry::absorb(MetricsBuffer& buf) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : buf.slots()) {
      if (s.tally.empty()) continue;
      bool merged = false;
      for (auto& mine : slots_) {
        if (mine.phase == s.phase && mine.party == s.party) {
          mine.tally += s.tally;
          merged = true;
          break;
        }
      }
      if (!merged) slots_.push_back(s);
    }
    for (std::size_t i = 0; i < kOpCount; ++i)
      hist_[i].merge(buf.histograms()[i]);
  }
  buf.clear();
}

void MetricsRegistry::add(Phase phase, std::int32_t party, CryptoOp op,
                          std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : slots_) {
    if (s.phase == phase && s.party == party) {
      s.tally.v[static_cast<std::size_t>(op)] += delta;
      return;
    }
  }
  slots_.push_back(MetricsBuffer::Slot{.phase = phase, .party = party});
  slots_.back().tally.v[static_cast<std::size_t>(op)] += delta;
}

OpTally MetricsRegistry::totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  OpTally t;
  for (const auto& s : slots_) t += s.tally;
  return t;
}

OpTally MetricsRegistry::phase_totals(Phase phase) const {
  const std::lock_guard<std::mutex> lock(mu_);
  OpTally t;
  for (const auto& s : slots_)
    if (s.phase == phase) t += s.tally;
  return t;
}

std::uint64_t MetricsRegistry::total(CryptoOp op) const {
  return totals()[op];
}

std::vector<MetricsBuffer::Slot> MetricsRegistry::slots() const {
  std::vector<MetricsBuffer::Slot> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = slots_;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    return a.party < b.party;
  });
  return out;
}

LatencyHistogram MetricsRegistry::histogram(CryptoOp op) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hist_[static_cast<std::size_t>(op)];
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : slots_)
    if (!s.tally.empty()) return false;
  for (const auto& h : hist_)
    if (h.count() != 0) return false;
  return true;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  hist_ = {};
}

namespace {

void append_tally_json(std::string& out, const OpTally& t) {
  out += "{";
  bool first = true;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    if (t.v[i] == 0) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                  first ? "" : ", ", op_name(static_cast<CryptoOp>(i)),
                  t.v[i]);
    out += buf;
    first = false;
  }
  out += "}";
}

}  // namespace

std::string MetricsRegistry::to_json(bool include_timing) const {
  const auto sorted = slots();
  std::array<LatencyHistogram, kOpCount> hist;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    hist = hist_;
  }

  std::string out;
  out += "{\n  \"schema\": \"ppgr.metrics.v1\",\n";
  out += include_timing ? "  \"deterministic\": false,\n"
                        : "  \"deterministic\": true,\n";

  OpTally all;
  for (const auto& s : sorted) all += s.tally;
  out += "  \"totals\": ";
  append_tally_json(out, all);
  out += ",\n  \"phases\": [";

  bool first_phase = true;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    OpTally pt;
    bool any = false;
    for (const auto& s : sorted)
      if (s.phase == phase) {
        pt += s.tally;
        any = true;
      }
    if (!any) continue;
    out += first_phase ? "\n" : ",\n";
    first_phase = false;
    out += "    {\"phase\": \"";
    out += phase_name(phase);
    out += "\", \"totals\": ";
    append_tally_json(out, pt);
    out += ", \"parties\": [";
    bool first_party = true;
    for (const auto& s : sorted) {
      if (s.phase != phase) continue;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s\n      {\"party\": %d, \"ops\": ",
                    first_party ? "" : ",", s.party);
      out += buf;
      first_party = false;
      append_tally_json(out, s.tally);
      out += "}";
    }
    out += "\n    ]}";
  }
  out += "\n  ],\n  \"histograms\": [";

  bool first_hist = true;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const LatencyHistogram& h = hist[i];
    if (h.count() == 0) continue;
    out += first_hist ? "\n" : ",\n";
    first_hist = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "    {\"op\": \"%s\", \"count\": %" PRIu64,
                  op_name(static_cast<CryptoOp>(i)), h.count());
    out += buf;
    if (include_timing) {
      std::snprintf(buf, sizeof(buf), ", \"total_seconds\": %.9f, \"bins\": [",
                    h.total_seconds());
      out += buf;
      bool first_bin = true;
      for (std::size_t b = 0; b < LatencyHistogram::kBins; ++b) {
        if (h.bins()[b] == 0) continue;
        std::snprintf(buf, sizeof(buf), "%s{\"ge_ns\": %" PRIu64
                      ", \"n\": %" PRIu64 "}",
                      first_bin ? "" : ", ", LatencyHistogram::bin_floor_ns(b),
                      h.bins()[b]);
        out += buf;
        first_bin = false;
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string phase_report(const MetricsRegistry& reg,
                         const SpanRecorder* spans,
                         const CommRegistry* comm) {
  std::array<double, kPhaseCount> wall{};
  if (spans != nullptr) wall = spans->phase_wall_seconds();

  const auto fmt_row = [](const char* phase, const char* wall_s,
                          const OpTally& t) {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%-8s %10s %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %8" PRIu64
        " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64
        "\n",
        phase, wall_s, t[CryptoOp::kGroupExp], t[CryptoOp::kGroupExpG],
        t[CryptoOp::kGroupMul], t[CryptoOp::kGroupInv],
        t[CryptoOp::kElGamalEncrypt], t[CryptoOp::kElGamalDecrypt],
        t[CryptoOp::kSchnorrProve] + t[CryptoOp::kSchnorrVerify],
        t[CryptoOp::kCompareCircuit], t[CryptoOp::kShuffleHop]);
    return std::string{buf};
  };

  std::string out;
  out += "per-phase crypto-op breakdown (counts summed over parties)\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-8s %10s %10s %10s %10s %8s %8s %8s %8s %8s %8s\n",
                  "phase", "wall[s]", "exp", "exp_g", "mul", "inv", "enc",
                  "dec", "schnorr", "compare", "shuffle");
    out += buf;
    out += std::string(std::string_view{buf}.size() - 1, '-') + "\n";
  }
  OpTally all;
  double wall_total = 0.0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    const OpTally t = reg.phase_totals(phase);
    if (t.empty() && wall[p] == 0.0) continue;
    all += t;
    wall_total += wall[p];
    char ws[32];
    if (spans != nullptr) {
      std::snprintf(ws, sizeof(ws), "%.3f", wall[p]);
    } else {
      std::snprintf(ws, sizeof(ws), "-");
    }
    out += fmt_row(phase_name(phase), ws, t);
  }
  char ws[32];
  if (spans != nullptr) {
    std::snprintf(ws, sizeof(ws), "%.3f", wall_total);
  } else {
    std::snprintf(ws, sizeof(ws), "-");
  }
  out += fmt_row("total", ws, all);

  // Latency summary for the ops that carry histograms.
  bool header_done = false;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const LatencyHistogram h = reg.histogram(static_cast<CryptoOp>(i));
    if (h.count() == 0) continue;
    if (!header_done) {
      out += "\nop latency (wall-clock, nondeterministic)\n";
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%-24s %12s %14s\n", "op", "count",
                    "mean");
      out += buf;
      header_done = true;
    }
    const double mean_us =
        h.total_seconds() / static_cast<double>(h.count()) * 1e6;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-24s %12" PRIu64 " %11.1f us\n",
                  op_name(static_cast<CryptoOp>(i)), h.count(), mean_us);
    out += buf;
  }

  if (comm != nullptr && !comm->empty()) {
    const std::vector<CommLink> links = comm->links();
    // Per-phase summary first: messages, exact serialized bytes, and the
    // phase's virtual network time.
    out += "\ncommunication (measured on the wire, simulated network time)\n";
    {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%-8s %10s %12s %12s\n", "phase",
                    "messages", "bytes", "net[s]");
      out += buf;
      out += std::string(std::string_view{buf}.size() - 1, '-') + "\n";
    }
    std::array<std::uint64_t, kPhaseCount> msgs{};
    std::array<std::uint64_t, kPhaseCount> bytes{};
    for (const CommLink& lk : links) {
      msgs[static_cast<std::size_t>(lk.phase)] += lk.messages;
      bytes[static_cast<std::size_t>(lk.phase)] += lk.bytes;
    }
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const auto phase = static_cast<Phase>(p);
      if (msgs[p] == 0 && comm->phase_virtual_seconds(phase) == 0.0) continue;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%-8s %10" PRIu64 " %12" PRIu64 " %12.6f\n",
                    phase_name(phase), msgs[p], bytes[p],
                    comm->phase_virtual_seconds(phase));
      out += buf;
    }
    {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%-8s %10zu %12" PRIu64 " %12.6f\n", "total",
                    comm->message_count(), comm->total_bytes(),
                    comm->virtual_seconds());
      out += buf;
    }

    // Per-link breakdown: utilization is the link's summed transmission
    // time over its phase's virtual duration (how busy the simulator kept
    // that direction of the link).
    out += "\nper-link breakdown (util = tx seconds / phase net seconds)\n";
    {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%-8s %9s %10s %12s %12s %8s\n",
                    "phase", "link", "messages", "bytes", "tx[s]", "util");
      out += buf;
      out += std::string(std::string_view{buf}.size() - 1, '-') + "\n";
    }
    for (const CommLink& lk : links) {
      const double phase_s = comm->phase_virtual_seconds(lk.phase);
      char link[32];
      std::snprintf(link, sizeof(link), "%zu->%zu", lk.src, lk.dst);
      char buf[160];
      if (phase_s > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "%-8s %9s %10" PRIu64 " %12" PRIu64 " %12.6f %7.1f%%\n",
                      phase_name(lk.phase), link, lk.messages, lk.bytes,
                      lk.tx_s, 100.0 * lk.tx_s / phase_s);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "%-8s %9s %10" PRIu64 " %12" PRIu64 " %12.6f %8s\n",
                      phase_name(lk.phase), link, lk.messages, lk.bytes,
                      lk.tx_s, "-");
      }
      out += buf;
    }
  }
  return out;
}

}  // namespace ppgr::runtime

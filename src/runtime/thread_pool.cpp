#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>

namespace ppgr::runtime {

// A parallel_for invocation. Indices are claimed with a single atomic
// fetch-add; completion is tracked with a second counter so the submitting
// thread can block until every claimed index has actually finished (a worker
// may still be inside fn when next_ runs past count_).
struct ThreadPool::Job {
  explicit Job(std::size_t count, const std::function<void(std::size_t)>& fn)
      : count(count), fn(&fn) {}

  const std::size_t count;
  const std::function<void(std::size_t)>* fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Workers currently inside run_job for this job. Incremented under
  // State::mu at selection time, so the submitter can wait for every worker
  // holding a pointer to this (stack-allocated) job to let go before
  // destroying it — done == count alone only proves all indices finished,
  // not that a freshly-woken worker isn't about to touch the job.
  std::atomic<std::size_t> active{0};
  std::atomic<bool> cancelled{false};

  std::mutex err_mu;
  std::size_t err_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  std::mutex done_mu;
  std::condition_variable done_cv;

  [[nodiscard]] bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= count;
  }
};

struct ThreadPool::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job*> jobs;  // live jobs; removed by their submitter
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t threads) : state_(std::make_unique<State>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  // The caller participates in every parallel_for, so spawn one fewer
  // worker than the requested concurrency.
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [&] {
        if (state_->stop) return true;
        for (Job* j : state_->jobs)
          if (!j->exhausted()) return true;
        return false;
      });
      for (Job* j : state_->jobs) {
        if (!j->exhausted()) {
          job = j;
          break;
        }
      }
      if (job == nullptr) {
        if (state_->stop) return;
        continue;
      }
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    run_job(*job);
    {
      // Decrement under done_mu so the submitter cannot observe active == 0
      // (and free the job) until this worker has fully let go of it.
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->active.fetch_sub(1, std::memory_order_acq_rel);
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    if (!job.cancelled.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(job.err_mu);
          if (i < job.err_index) {
            job.err_index = i;
            job.err = std::current_exception();
          }
        }
        job.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline engine: identical index order to the serial protocol. An
    // exception here is by construction the lowest-index one.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job{count, fn};
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->jobs.push_back(&job);
  }
  state_->cv.notify_all();

  // The submitter helps until the index space is drained, then waits for
  // stragglers still inside fn on other workers.
  run_job(job);
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == count &&
             job.active.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (auto it = state_->jobs.begin(); it != state_->jobs.end(); ++it) {
      if (*it == &job) {
        state_->jobs.erase(it);
        break;
      }
    }
  }
  if (job.err) std::rethrow_exception(job.err);
}

}  // namespace ppgr::runtime

// Power-of-two latency histogram and its quantile estimators, shared by the
// deterministic metrics registry (runtime/metrics.h), the live telemetry
// layer (runtime/telemetry.h, OpenMetrics bucket bounds) and the engine's
// wall-clock rollup. One definition of the binade math — bin i covers
// [2^i, 2^{i+1}) ns — replaces the three hand-maintained copies that used to
// live in metrics.cpp, telemetry.cpp and engine.cpp.
//
// Two estimators cover the two sample shapes in the codebase:
//  - latency_quantile_seconds: nearest-rank over the 40 binned counters
//    (over-estimates by at most one binade; used for live p50/p99 readouts);
//  - sample_quantile_seconds: exact nearest-rank over a sorted raw-sample
//    vector (used where the full sample set is retained, e.g. per-session
//    wall times in the engine rollup).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ppgr::runtime {

/// Fixed-bin latency histogram: bin i counts samples in [2^i, 2^{i+1}) ns.
/// 40 bins cover 1 ns .. ~18 minutes; merging is bin-wise addition, so the
/// absorb order cannot change the result.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBins = 40;

  void add_seconds(double seconds) {
    const double ns = seconds * 1e9;
    std::size_t bin = 0;
    if (ns >= 1.0) {
      const auto v = static_cast<std::uint64_t>(ns);
      bin = std::min<std::size_t>(kBins - 1, std::bit_width(v) - 1);
    }
    ++bins_[bin];
    ++count_;
    sum_seconds_ += seconds;
  }

  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kBins; ++i) bins_[i] += o.bins_[i];
    count_ += o.count_;
    sum_seconds_ += o.sum_seconds_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double total_seconds() const { return sum_seconds_; }
  [[nodiscard]] const std::array<std::uint64_t, kBins>& bins() const {
    return bins_;
  }
  /// Lower bound of bin i in nanoseconds (2^i).
  [[nodiscard]] static std::uint64_t bin_floor_ns(std::size_t i) {
    return std::uint64_t{1} << i;
  }
  /// Upper bound of bin i in seconds (2^{i+1} ns) — the OpenMetrics `le`
  /// bucket bound and the value a binade quantile estimate reports.
  [[nodiscard]] static double bin_upper_seconds(std::size_t i) {
    return static_cast<double>(bin_floor_ns(i)) * 2.0 * 1e-9;
  }

 private:
  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
};

/// Nearest-rank quantile estimate from a LatencyHistogram: the upper bound
/// (in seconds) of the power-of-two bin containing the q-th sample. An
/// over-estimate by at most one binade — good enough for a live p50/p99
/// readout. Returns 0 for an empty histogram.
[[nodiscard]] inline double latency_quantile_seconds(
    const LatencyHistogram& hist, double q) {
  const std::uint64_t n = hist.count();
  if (n == 0) return 0.0;
  auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBins; ++i) {
    cum += hist.bins()[i];
    if (cum >= rank) return LatencyHistogram::bin_upper_seconds(i);
  }
  return hist.total_seconds();  // unreachable: bins sum to count
}

/// Exact nearest-rank quantile over an ascending-sorted sample vector.
/// Returns 0 for an empty vector.
[[nodiscard]] inline double sample_quantile_seconds(
    const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace ppgr::runtime

// Live telemetry primitives: the runtime-level building blocks the engine's
// introspection layer (src/engine/introspect.h) composes into a live view of
// a running service.
//
// Everything in this header is deliberately *outside* the deterministic
// export paths (metrics.h, span.h, comm.h): a telemetry snapshot is a
// wall-clock observation of a system in motion — which sessions happen to be
// in flight, how long since a round advanced, how many samples the sampler
// took — and is therefore explicitly NOT reproducible run to run. The
// invariant the tests pin instead is non-perturbation: with telemetry
// attached, every deterministic export (metrics, trace, comm, engine rollup)
// stays byte-identical to a run without it.
//
// Pieces:
//  - HealthState: the typed ok/degraded/stalled verdict of the watchdog;
//  - ProgressSink / ProgressCell: the round-progress hook. net::Router
//    notifies the sink at every phase change and round barrier; ProgressCell
//    is the lock-free implementation a sampler thread can read while the
//    protocol thread writes (relaxed atomics — a reader sees a recent,
//    not-necessarily-latest, coherent (phase, round, when) triple);
//  - OpenMetricsBuilder: renders the OpenMetrics text exposition format
//    (Prometheus scrape format with `# EOF` terminator);
//  - TelemetrySampler: a background thread that calls a produce callback
//    every period, appending a JSONL line per sample and atomically
//    rewriting an OpenMetrics exposition file (write-tmp-then-rename, so a
//    scraper never reads a torn file). Clean start/stop; stop() takes one
//    final sample so a drained engine's last state is always on disk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "runtime/metrics.h"

namespace ppgr::runtime {

/// Watchdog verdict, ordered by severity (max() of two states is the worse).
enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1, kStalled = 2 };
[[nodiscard]] const char* to_string(HealthState state);
[[nodiscard]] inline HealthState worse(HealthState a, HealthState b) {
  return a > b ? a : b;
}

/// Round-progress hook: net::Router calls advance() at every phase change
/// and round barrier. Implementations must be callable from the protocol's
/// orchestrator thread while other threads read (ProgressCell is; a test
/// double counting calls under a lock is too).
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void advance(Phase phase, std::size_t round) = 0;
};

/// Lock-free single-writer/many-reader progress cell. The writer is the
/// session's orchestrator thread (via the Router hook); readers are sampler
/// / watchdog threads. (phase, round) are packed into one atomic word so a
/// reader never sees a phase from one round paired with another round's
/// index; the advance timestamp is a separate relaxed atomic — the watchdog
/// tolerates it being one advance behind.
class ProgressCell final : public ProgressSink {
 public:
  ProgressCell() : state_(0), last_advance_s_(metrics_now_seconds()) {}

  void advance(Phase phase, std::size_t round) override {
    state_.store(pack(phase, round), std::memory_order_relaxed);
    last_advance_s_.store(metrics_now_seconds(), std::memory_order_relaxed);
  }

  struct View {
    Phase phase = Phase::kSetup;
    std::size_t round = 0;
    double last_advance_s = 0.0;  // steady-clock seconds (metrics_now_seconds)
  };
  [[nodiscard]] View view() const {
    const std::uint64_t s = state_.load(std::memory_order_relaxed);
    return View{static_cast<Phase>(s >> 56),
                static_cast<std::size_t>(s & ((std::uint64_t{1} << 56) - 1)),
                last_advance_s_.load(std::memory_order_relaxed)};
  }

 private:
  static std::uint64_t pack(Phase phase, std::size_t round) {
    return (static_cast<std::uint64_t>(phase) << 56) |
           (static_cast<std::uint64_t>(round) &
            ((std::uint64_t{1} << 56) - 1));
  }
  std::atomic<std::uint64_t> state_;
  std::atomic<double> last_advance_s_;
};

// latency_quantile_seconds (the binade p50/p99 estimator) lives in
// runtime/histogram.h, next to the histogram it reads.

/// Builder for the OpenMetrics text exposition format. Usage:
///
///   OpenMetricsBuilder om;
///   om.family("ppgr_engine_sessions", "gauge", "Sessions by state");
///   om.sample("ppgr_engine_sessions", "state=\"queued\"", 3);
///   std::string page = om.render();   // ends with "# EOF\n"
///
/// The builder escapes nothing: metric names and label strings are caller-
/// supplied literals (scripts/check_openmetrics.py validates the output in
/// CI). Histogram families emit their samples via sample() with the
/// conventional _bucket/_sum/_count suffixes.
class OpenMetricsBuilder {
 public:
  /// Starts a metric family: emits `# TYPE` and (when help is nonempty)
  /// `# HELP` lines. `type` is one of "gauge", "counter", "histogram".
  void family(const std::string& name, const char* type,
              const std::string& help);
  /// One sample line: `name{labels} value` (or `name value` without labels).
  void sample(const std::string& name, const std::string& labels,
              double value);
  void sample(const std::string& name, const std::string& labels,
              std::uint64_t value);
  /// Emits a LatencyHistogram as a conventional OpenMetrics histogram:
  /// cumulative `_bucket{le="..."}` lines over the occupied bins, the
  /// `le="+Inf"` bucket, `_sum` and `_count`. `labels` (may be empty) are
  /// added to every line.
  void histogram(const std::string& name, const std::string& labels,
                 const LatencyHistogram& hist);
  /// The full page, terminated with the mandatory `# EOF` line.
  [[nodiscard]] std::string render() const { return body_ + "# EOF\n"; }

 private:
  std::string body_;
};

/// One sampler observation: the JSONL line (without trailing newline) and
/// the full OpenMetrics page. Either may be empty (that output is skipped).
struct TelemetrySample {
  std::string jsonl;
  std::string openmetrics;
};

/// Background sampling thread. Calls `produce` every `period_s` seconds
/// (and once more on stop), appending sample.jsonl to `jsonl_path` and
/// atomically replacing `openmetrics_path` with sample.openmetrics.
/// The produce callback runs on the sampler thread: it must be safe to call
/// concurrently with the system it observes (the engine snapshot is).
class TelemetrySampler {
 public:
  struct Config {
    double period_s = 0.1;
    std::string jsonl_path;        // "" = no JSONL output
    std::string openmetrics_path;  // "" = no exposition file
  };

  TelemetrySampler(Config cfg, std::function<TelemetrySample()> produce);
  /// Joins the thread (taking the final sample) if still running.
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Starts the background thread; throws std::logic_error if already
  /// started and std::runtime_error if an output path cannot be opened.
  void start();
  /// Stops the thread: takes one final sample, flushes, joins. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  void loop();
  void take_sample();

  Config cfg_;
  std::function<TelemetrySample()> produce_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool joined_ = false;
  std::atomic<std::uint64_t> samples_{0};
  std::thread thread_;
};

}  // namespace ppgr::runtime

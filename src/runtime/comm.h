// Communication observability: the third pillar next to the crypto-op
// metrics (metrics.h) and the phase spans (span.h).
//
// The TraceRecorder keeps the raw (round, src, dst, bytes) transfer log the
// network benches replay; CommRegistry layers the *measured* communication
// view on top of it: one FlowRecord per delivered message carrying exact
// serialized byte counts (produced by the wire codecs, not analytic
// formulas) plus the virtual-time decomposition of its delivery on the
// simulated network — queueing, transmission and propagation segments, as
// computed by net::Simulator when net::Router closes a round.
//
// Staging mirrors MetricsBuffer/TraceBuffer: parallel tasks serialize their
// outgoing messages into a per-task CommBuffer (unsynchronized), and the
// orchestrator absorbs the buffers in task-index order after the fork-join
// barrier — so the flow sequence, and therefore every exporter below, is
// bit-identical for any --parallelism value. Virtual times are derived from
// the deterministic discrete-event simulation, so they are deterministic
// too (the golden exporter tests run all comm exports in default mode).
//
// Exporters:
//  - to_json(): "ppgr.comm.v1" — totals, per-phase per-link tables
//    (messages, bytes, transmission seconds, utilization) and the full flow
//    log with virtual-time segments;
//  - chrome_trace_json(): Chrome trace-event JSON on the *virtual* network
//    timeline — a send/receive slice pair per message, linked by flow
//    events ("s"/"f"), one lane per party. Loadable in Perfetto next to the
//    compute spans of SpanRecorder::chrome_trace_json().
//
// Party ids follow the paper: 0 is the initiator, 1..n the participants.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/metrics.h"

namespace ppgr::runtime {

/// Virtual-time decomposition of one message's delivery (seconds on the
/// simulated network, absolute since the start of the run):
///   send_s    - the message enters the network (round barrier);
///   deliver_s - its last packet reaches the destination;
///   tx_s      - pure serialization time of its bytes on one link;
///   prop_s    - pure propagation (hops x latency);
///   queue_s   - the remainder: contention + store-and-forward pipelining.
/// Invariant: deliver_s - send_s == tx_s + prop_s + queue_s, queue_s >= 0.
struct FlowTiming {
  double send_s = 0.0;
  double deliver_s = 0.0;
  double tx_s = 0.0;
  double prop_s = 0.0;
  double queue_s = 0.0;
};

/// One delivered inter-party message.
struct FlowRecord {
  Phase phase = Phase::kSetup;
  std::size_t round = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t bytes = 0;  // exact serialized wire bytes
  FlowTiming t;           // filled when the round is closed
};

/// A message staged for routing: either a real payload (delivered to the
/// destination's mailbox for decoding) or accounting-only (bytes measured
/// from a real serialization whose content the in-process simulation hands
/// over out-of-band; see DESIGN.md Sec. 5d). Broadcasts share one payload.
struct CommMessage {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t bytes = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> payload;  // may be null
};

/// Per-task, unsynchronized staging area for messages sent inside a
/// parallel region (the comm analogue of MetricsBuffer). net::Router
/// absorbs buffers in task-index order after the fork-join barrier.
class CommBuffer {
 public:
  /// Stages a payload-carrying message; bytes = payload->size().
  void send(std::size_t src, std::size_t dst,
            std::shared_ptr<const std::vector<std::uint8_t>> payload);
  /// Stages an accounting-only message of `bytes` serialized bytes.
  void record(std::size_t src, std::size_t dst, std::size_t bytes);

  [[nodiscard]] const std::vector<CommMessage>& staged() const {
    return staged_;
  }
  [[nodiscard]] bool empty() const { return staged_.empty(); }
  void clear() { staged_.clear(); }

 private:
  std::vector<CommMessage> staged_;
};

/// Channel-recovery counters mirrored from the fault-injection layer
/// (net::Router under a net::FaultPlan; see DESIGN.md Sec. 7). Pure
/// counters — a deterministic function of the fault schedule — so the
/// bench-regress gate compares them exactly.
struct FaultCounters {
  std::uint64_t injected_drop = 0;
  std::uint64_t injected_duplicate = 0;
  std::uint64_t injected_reorder = 0;
  std::uint64_t injected_corrupt = 0;
  std::uint64_t injected_tamper = 0;
  std::uint64_t injected_delay = 0;
  std::uint64_t injected_crash = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t crc_detected = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t reorders_healed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t giveups = 0;
};

/// Aggregate over one (phase, src -> dst) link.
struct CommLink {
  Phase phase = Phase::kSetup;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double tx_s = 0.0;  // summed transmission seconds
};

/// Thread-safe accumulation of flows plus the virtual network clock.
/// Records arrive in deterministic order (direct serial calls or CommBuffer
/// absorption in task order); close_round() stamps the current round's
/// flows with their simulated timings and advances the virtual clock.
class CommRegistry {
 public:
  CommRegistry() = default;
  CommRegistry(const CommRegistry&) = delete;
  CommRegistry& operator=(const CommRegistry&) = delete;

  void set_phase(Phase p);
  [[nodiscard]] Phase phase() const;

  /// Records one message in the current round; bytes must be the exact
  /// serialized size.
  void record(std::size_t src, std::size_t dst, std::size_t bytes);

  /// Closes the current round. `timings` holds one entry per flow recorded
  /// in this round (in record order) with times relative to the round
  /// start; `round_seconds` is the round's virtual duration. Throws
  /// std::invalid_argument on a size mismatch.
  void close_round(std::span<const FlowTiming> timings, double round_seconds);

  [[nodiscard]] std::size_t message_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  /// Closed rounds (empty rounds are preserved, like TraceRecorder).
  [[nodiscard]] std::size_t rounds() const;
  /// Virtual seconds of all closed rounds.
  [[nodiscard]] double virtual_seconds() const;
  [[nodiscard]] double phase_virtual_seconds(Phase p) const;
  [[nodiscard]] std::vector<FlowRecord> flows() const;
  /// Per-(phase, src, dst) aggregates, sorted by (phase, src, dst).
  [[nodiscard]] std::vector<CommLink> links() const;
  /// Installs the fault/retry counters (net::Router mirrors them at the end
  /// of a faulted run). Once set, to_json() gains a "faults" section —
  /// fault-free runs never call this, keeping their exports byte-identical
  /// to the pre-fault-layer goldens.
  void set_fault_counters(const FaultCounters& counters);
  [[nodiscard]] bool has_fault_counters() const;
  [[nodiscard]] FaultCounters fault_counters() const;
  [[nodiscard]] bool empty() const;
  void clear();

  /// Communication JSON document ("ppgr.comm.v1"). Fully deterministic: a
  /// pure function of the protocol run and the simulator config.
  [[nodiscard]] std::string to_json() const;
  /// Chrome trace-event JSON on the virtual timeline: per-message send and
  /// receive slices linked by flow events. Deterministic.
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<FlowRecord> flows_;
  std::size_t current_round_ = 0;
  std::size_t round_begin_ = 0;  // index of the current round's first flow
  std::size_t closed_rounds_ = 0;
  double virtual_clock_ = 0.0;
  std::array<double, kPhaseCount> phase_virtual_{};
  Phase phase_ = Phase::kSetup;
  FaultCounters fault_counters_{};
  bool has_fault_counters_ = false;
};

}  // namespace ppgr::runtime

// Communication trace recording.
//
// Protocols in this library execute in synchronous logical rounds. While a
// protocol runs (in-process), every message is recorded as a Transfer
// (round, src, dst, bytes). The trace is the bridge to the network
// simulator: bench/fig3b_network replays recorded traces through net::
// Simulator to measure wall-clock communication time on the paper's 80-node
// topology, exactly as the paper ran its frameworks through NS2.
//
// Party ids: 0 is the initiator P0, 1..n are participants P1..Pn (paper
// notation).
#pragma once

#include <cstddef>
#include <vector>

namespace ppgr::runtime {

struct Transfer {
  std::size_t round;
  std::size_t src;
  std::size_t dst;
  std::size_t bytes;
};

class TraceRecorder {
 public:
  /// Records a message in the current round.
  void record(std::size_t src, std::size_t dst, std::size_t bytes);
  /// Closes the current round; subsequent records belong to the next one.
  /// (Empty rounds are allowed and preserved.)
  void next_round();

  [[nodiscard]] const std::vector<Transfer>& transfers() const {
    return transfers_;
  }
  /// Number of rounds that contain at least one message.
  [[nodiscard]] std::size_t rounds() const;
  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t bytes_sent_by(std::size_t party) const;
  [[nodiscard]] std::size_t bytes_received_by(std::size_t party) const;
  [[nodiscard]] std::size_t message_count() const { return transfers_.size(); }

  void clear();

 private:
  std::vector<Transfer> transfers_;
  std::size_t current_round_ = 0;
};

/// Accumulates computation time per party. The framework orchestrator brackets
/// each party-local computation with start/stop; the benches report the
/// maximum / per-participant values the paper plots.
class PartyTimer {
 public:
  explicit PartyTimer(std::size_t n_parties) : seconds_(n_parties, 0.0) {}

  /// RAII bracket for one party's local computation.
  class Scope {
   public:
    Scope(PartyTimer& timer, std::size_t party);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PartyTimer& timer_;
    std::size_t party_;
    double start_;
  };

  [[nodiscard]] Scope time(std::size_t party) { return Scope{*this, party}; }
  void add(std::size_t party, double seconds) { seconds_.at(party) += seconds; }

  [[nodiscard]] double seconds(std::size_t party) const {
    return seconds_.at(party);
  }
  [[nodiscard]] std::size_t parties() const { return seconds_.size(); }
  /// Max over participants (excluding party 0, the initiator).
  [[nodiscard]] double max_participant_seconds() const;
  /// Mean over participants (excluding party 0).
  [[nodiscard]] double mean_participant_seconds() const;

 private:
  static double now_seconds();
  std::vector<double> seconds_;
};

}  // namespace ppgr::runtime

// Communication trace recording.
//
// Protocols in this library execute in synchronous logical rounds. While a
// protocol runs (in-process), every message is recorded as a Transfer
// (round, src, dst, bytes). The trace is the bridge to the network
// simulator: bench/fig3b_network replays recorded traces through net::
// Simulator to measure wall-clock communication time on the paper's 80-node
// topology, exactly as the paper ran its frameworks through NS2.
//
// Threading: the recorder is safe for concurrent record() calls (internally
// locked), but the parallel execution engine never contends on that lock in
// hot loops. Instead each parallel task records into its own TraceBuffer and
// the orchestrator absorbs the buffers serially, in deterministic task-index
// order, after the fork-join barrier — so the transfer sequence is
// bit-identical for any thread count.
//
// Party ids: 0 is the initiator P0, 1..n are participants P1..Pn (paper
// notation).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace ppgr::runtime {

struct Transfer {
  std::size_t round;
  std::size_t src;
  std::size_t dst;
  std::size_t bytes;
};

/// Per-task, unsynchronized staging area for transfers recorded inside a
/// parallel region. Round numbers are stamped when the buffer is absorbed
/// into a TraceRecorder.
class TraceBuffer {
 public:
  void record(std::size_t src, std::size_t dst, std::size_t bytes);

  [[nodiscard]] const std::vector<Transfer>& staged() const { return staged_; }
  [[nodiscard]] bool empty() const { return staged_.empty(); }
  void clear() { staged_.clear(); }

 private:
  std::vector<Transfer> staged_;  // round fields unset (0) until absorbed
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder& other);
  TraceRecorder& operator=(const TraceRecorder& other);
  TraceRecorder(TraceRecorder&& other) noexcept;
  TraceRecorder& operator=(TraceRecorder&& other) noexcept;

  /// Records a message in the current round. Thread-safe; note that the
  /// relative order of concurrent records is scheduling-dependent — use
  /// TraceBuffer + absorb() where the transfer order must be deterministic.
  void record(std::size_t src, std::size_t dst, std::size_t bytes);
  /// Closes the current round; subsequent records belong to the next one.
  /// (Empty rounds are allowed and preserved.)
  void next_round();
  /// Appends a buffer's transfers (in their staged order) to the current
  /// round. One lock acquisition per buffer, not per transfer.
  void absorb(const TraceBuffer& buf);

  [[nodiscard]] const std::vector<Transfer>& transfers() const {
    return transfers_;
  }
  /// Number of rounds that contain at least one message. Tracked
  /// incrementally as transfers arrive — O(1), safe to call per table row.
  [[nodiscard]] std::size_t rounds() const;
  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t bytes_sent_by(std::size_t party) const;
  [[nodiscard]] std::size_t bytes_received_by(std::size_t party) const;
  [[nodiscard]] std::size_t message_count() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Transfer> transfers_;
  std::size_t current_round_ = 0;
  std::size_t distinct_rounds_ = 0;       // rounds with >= 1 message so far
  bool current_round_counted_ = false;    // current round already in the tally
};

/// Accumulates computation time per party. The framework orchestrator brackets
/// each party-local computation with start/stop; the benches report the
/// maximum / per-participant values the paper plots.
///
/// Accumulation is a relaxed atomic add per party, so concurrent tasks that
/// time work for the same party (e.g. the fanned-out shuffle hop) never race
/// and never contend on a lock.
class PartyTimer {
 public:
  explicit PartyTimer(std::size_t n_parties) : seconds_(n_parties) {
    for (auto& s : seconds_) s.store(0.0, std::memory_order_relaxed);
  }

  /// RAII bracket for one party's local computation.
  class Scope {
   public:
    Scope(PartyTimer& timer, std::size_t party);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PartyTimer& timer_;
    std::size_t party_;
    double start_;
  };

  [[nodiscard]] Scope time(std::size_t party) { return Scope{*this, party}; }
  void add(std::size_t party, double seconds) {
    seconds_.at(party).fetch_add(seconds, std::memory_order_relaxed);
  }

  [[nodiscard]] double seconds(std::size_t party) const {
    return seconds_.at(party).load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t parties() const { return seconds_.size(); }
  /// Max over participants (excluding party 0, the initiator).
  [[nodiscard]] double max_participant_seconds() const;
  /// Mean over participants (excluding party 0).
  [[nodiscard]] double mean_participant_seconds() const;

 private:
  static double now_seconds();
  std::vector<std::atomic<double>> seconds_;
};

}  // namespace ppgr::runtime

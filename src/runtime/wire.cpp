#include "runtime/wire.h"

namespace ppgr::runtime {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  raw(data);
}

void Writer::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::nat(const mpz::Nat& n) { bytes(n.to_bytes_be()); }

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw WireError("wire: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Canonicality: the final byte of a multi-byte varint must be nonzero.
      if (shift > 0 && byte == 0) throw WireError("wire: non-canonical varint");
      return v;
    }
  }
  throw WireError("wire: varint too long");
}

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint64_t len = varint();
  if (len > remaining()) throw WireError("wire: truncated byte string");
  return raw(static_cast<std::size_t>(len));
}

std::vector<std::uint8_t> Reader::raw(std::size_t len) {
  need(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

mpz::Nat Reader::nat() {
  const auto b = bytes();
  if (!b.empty() && b.front() == 0)
    throw WireError("wire: non-minimal Nat encoding");
  return mpz::Nat::from_bytes_be(b);
}

void Reader::finish() const {
  if (remaining() != 0) throw WireError("wire: trailing bytes");
}

}  // namespace ppgr::runtime

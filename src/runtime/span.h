// Hierarchical phase-span tracing: framework → phase → protocol step →
// party task.
//
// Spans are recorded as begin/end event pairs. Inside a parallel region
// every task writes into its own SpanBuffer (unsynchronized, like
// TraceBuffer) and the orchestrator absorbs the buffers in deterministic
// task-index order after the fork-join barrier — so the event *stream*
// (names, nesting, phases, parties) is bit-identical for every
// --parallelism value. Wall-clock timestamps ride along for the timing
// export but are excluded from the deterministic export mode.
//
// Exporter: chrome_trace_json() emits Chrome trace-event JSON ("X" complete
// events, one lane per party) loadable in about:tracing / Perfetto. In
// deterministic mode timestamps are event-stream indices (µs ticks), which
// both makes the file bit-identical across thread counts and preserves the
// nesting exactly; in timing mode timestamps are real microseconds (note
// that at parallelism > 1 two tasks of the same party can genuinely
// overlap, which renders as stacked slices in the same lane).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/metrics.h"

namespace ppgr::runtime {

struct SpanEvent {
  bool begin = true;
  std::uint32_t depth = 0;     // nesting depth of the span this event opens/closes
  Phase phase = Phase::kSetup;
  std::int32_t party = kOrchestratorParty;
  const char* name = "";       // static-lifetime literal
  std::uint64_t index = 0;     // optional disambiguator (hop number, ...)
  double t_wall = 0.0;         // steady-clock seconds
};

/// Destination for span events. Two implementations: SpanBuffer (per-task
/// staging) and SpanRecorder (the shared, locked stream).
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void push(SpanEvent ev) = 0;
};

/// Per-task, unsynchronized staging area. Events absorbed into a
/// SpanRecorder are re-based onto the recorder's current depth, so task
/// spans nest under the orchestrator's open step span.
class SpanBuffer final : public SpanSink {
 public:
  void push(SpanEvent ev) override;

  [[nodiscard]] const std::vector<SpanEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear();

 private:
  std::vector<SpanEvent> events_;
  std::uint32_t depth_ = 0;
};

/// RAII span: pushes a begin event on construction and the matching end
/// event on destruction. A null sink makes the scope a no-op, so call sites
/// need no branching on whether tracing is enabled.
class SpanScope {
 public:
  SpanScope(SpanSink* sink, const char* name, Phase phase, std::int32_t party,
            std::uint64_t index = 0)
      : sink_(sink), name_(name), phase_(phase), party_(party), index_(index) {
    if (sink_ != nullptr)
      sink_->push(SpanEvent{.begin = true, .phase = phase_, .party = party_,
                            .name = name_, .index = index_,
                            .t_wall = metrics_now_seconds()});
  }
  ~SpanScope() {
    if (sink_ != nullptr)
      sink_->push(SpanEvent{.begin = false, .phase = phase_, .party = party_,
                            .name = name_, .index = index_,
                            .t_wall = metrics_now_seconds()});
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanSink* sink_;
  const char* name_;
  Phase phase_;
  std::int32_t party_;
  std::uint64_t index_;
};

/// The shared span stream. Direct push() calls (orchestrator-level spans)
/// and absorb() (task buffers) are serialized by one mutex; reads are
/// unsynchronized and expect the run to have finished, exactly like
/// TraceRecorder::transfers().
class SpanRecorder final : public SpanSink {
 public:
  SpanRecorder() = default;
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  void push(SpanEvent ev) override;
  /// Appends a task buffer's events (re-based onto the current depth) and
  /// clears the buffer. One lock acquisition per buffer.
  void absorb(SpanBuffer& buf);

  [[nodiscard]] const std::vector<SpanEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t span_count() const { return events_.size() / 2; }

  /// Total wall seconds of depth-1 spans (the phases) per Phase value —
  /// the per-phase wall-clock breakdown of the run.
  [[nodiscard]] std::array<double, kPhaseCount> phase_wall_seconds() const;

  /// Chrome trace-event JSON; see the header comment for the two modes.
  [[nodiscard]] std::string chrome_trace_json(bool deterministic) const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::uint32_t depth_ = 0;
};

}  // namespace ppgr::runtime

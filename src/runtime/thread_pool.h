// Deterministic fork-join thread pool.
//
// The framework's phase-2 hot loops (bitwise encryption, the n·(n-1)
// comparison-circuit evaluations, the per-set shuffle hops) are
// embarrassingly parallel: tasks never communicate and each task's
// randomness comes from its own counter-seeded Rng stream
// (mpz::StreamFamily). The pool therefore needs no work stealing and no
// futures — just an ordered index space [0, count) fanned out over a fixed
// set of workers, with a barrier at the end of every parallel_for.
//
// Determinism contract: which worker runs an index is scheduling-dependent,
// but callers make each index self-contained (own RNG stream, own output
// slot), so the *results* are identical for any thread count — including
// the inline path. `threads <= 1` spawns no workers at all and runs every
// index on the caller; this is the default engine and the only mode safe
// for non-thread-safe decorators (e.g. group::CountingGroup).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ppgr::runtime {

class ThreadPool {
 public:
  /// `threads` = total concurrency: 1 caller + (threads-1) workers.
  /// 0 means std::thread::hardware_concurrency(); <= 1 means inline mode.
  explicit ThreadPool(std::size_t threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resolved concurrency (>= 1).
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs fn(0), ..., fn(count-1), blocking until all complete. The calling
  /// thread participates, so the pool makes progress even with zero workers
  /// and reentrant calls (fn may itself call parallel_for on this pool)
  /// cannot deadlock. If tasks throw, the exception thrown by the
  /// lowest-index failing task is rethrown after the loop drains; once a
  /// task has thrown, not-yet-started indices are skipped.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Ordered map: out[i] = fn(i). Requires T default-constructible.
  template <typename F>
  auto map(std::size_t count, F&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(count);
    parallel_for(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Job;
  void worker_loop();
  void run_job(Job& job);

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;

  // Queue of live jobs (owned by the parallel_for invocations that pushed
  // them). Guarded by mu_; cv_ wakes workers when a job arrives or the pool
  // shuts down.
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace ppgr::runtime

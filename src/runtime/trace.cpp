#include "runtime/trace.h"

#include <chrono>
#include <stdexcept>

namespace ppgr::runtime {

void TraceBuffer::record(std::size_t src, std::size_t dst, std::size_t bytes) {
  if (src == dst) throw std::invalid_argument("TraceBuffer: src == dst");
  staged_.push_back(Transfer{0, src, dst, bytes});
}

TraceRecorder::TraceRecorder(const TraceRecorder& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  transfers_ = other.transfers_;
  current_round_ = other.current_round_;
  distinct_rounds_ = other.distinct_rounds_;
  current_round_counted_ = other.current_round_counted_;
}

TraceRecorder& TraceRecorder::operator=(const TraceRecorder& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  transfers_ = other.transfers_;
  current_round_ = other.current_round_;
  distinct_rounds_ = other.distinct_rounds_;
  current_round_counted_ = other.current_round_counted_;
  return *this;
}

TraceRecorder::TraceRecorder(TraceRecorder&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  transfers_ = std::move(other.transfers_);
  current_round_ = other.current_round_;
  distinct_rounds_ = other.distinct_rounds_;
  current_round_counted_ = other.current_round_counted_;
}

TraceRecorder& TraceRecorder::operator=(TraceRecorder&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  transfers_ = std::move(other.transfers_);
  current_round_ = other.current_round_;
  distinct_rounds_ = other.distinct_rounds_;
  current_round_counted_ = other.current_round_counted_;
  return *this;
}

void TraceRecorder::record(std::size_t src, std::size_t dst,
                           std::size_t bytes) {
  if (src == dst)
    throw std::invalid_argument("TraceRecorder: src == dst");
  std::lock_guard<std::mutex> lock(mu_);
  transfers_.push_back(Transfer{current_round_, src, dst, bytes});
  if (!current_round_counted_) {
    ++distinct_rounds_;
    current_round_counted_ = true;
  }
}

void TraceRecorder::next_round() {
  std::lock_guard<std::mutex> lock(mu_);
  ++current_round_;
  current_round_counted_ = false;
}

void TraceRecorder::absorb(const TraceBuffer& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Transfer& t : buf.staged())
    transfers_.push_back(Transfer{current_round_, t.src, t.dst, t.bytes});
  if (!buf.staged().empty() && !current_round_counted_) {
    ++distinct_rounds_;
    current_round_counted_ = true;
  }
}

std::size_t TraceRecorder::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return distinct_rounds_;
}

std::size_t TraceRecorder::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& t : transfers_) sum += t.bytes;
  return sum;
}

std::size_t TraceRecorder::bytes_sent_by(std::size_t party) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& t : transfers_)
    if (t.src == party) sum += t.bytes;
  return sum;
}

std::size_t TraceRecorder::bytes_received_by(std::size_t party) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& t : transfers_)
    if (t.dst == party) sum += t.bytes;
  return sum;
}

std::size_t TraceRecorder::message_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transfers_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  transfers_.clear();
  current_round_ = 0;
  distinct_rounds_ = 0;
  current_round_counted_ = false;
}

double PartyTimer::now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PartyTimer::Scope::Scope(PartyTimer& timer, std::size_t party)
    : timer_(timer), party_(party), start_(now_seconds()) {}

PartyTimer::Scope::~Scope() { timer_.add(party_, now_seconds() - start_); }

double PartyTimer::max_participant_seconds() const {
  double best = 0.0;
  for (std::size_t i = 1; i < seconds_.size(); ++i)
    best = std::max(best, seconds_[i].load(std::memory_order_relaxed));
  return best;
}

double PartyTimer::mean_participant_seconds() const {
  if (seconds_.size() <= 1) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < seconds_.size(); ++i)
    sum += seconds_[i].load(std::memory_order_relaxed);
  return sum / static_cast<double>(seconds_.size() - 1);
}

}  // namespace ppgr::runtime

#include "runtime/flightrec.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ppgr::runtime {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kPhase: return "phase";
    case FlightEventKind::kRound: return "round";
    case FlightEventKind::kSend: return "send";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kInject: return "inject";
    case FlightEventKind::kChannelError: return "channel_error";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kDegrade: return "degrade";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kAudit: return "audit";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::record(FlightEventKind kind, Phase phase,
                            std::uint16_t detail, std::uint32_t a,
                            std::uint32_t b, std::uint64_t c) {
  const double now = metrics_now_seconds();
  const std::lock_guard<std::mutex> lock(mu_);
  FlightEvent& e = ring_[recorded_ % ring_.size()];
  e.t_s = now;
  e.kind = kind;
  e.phase = phase;
  e.detail = detail;
  e.a = a;
  e.b = b;
  e.c = c;
  ++recorded_;
}

std::size_t FlightRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  const std::uint64_t n = std::min<std::uint64_t>(recorded_, ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = recorded_ - n; i < recorded_; ++i)
    out.push_back(ring_[i % ring_.size()]);
  return out;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> evs = events();
  std::uint64_t rec = 0;
  std::uint64_t drop = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    rec = recorded_;
    drop = recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  std::string out;
  out += "{\n  \"schema\": \"ppgr.flight.v1\",\n";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  \"capacity\": %zu, \"recorded\": %" PRIu64
                ", \"dropped\": %" PRIu64 ",\n  \"events\": [",
                ring_.size(), rec, drop);
  out += buf;
  const double t0 = evs.empty() ? 0.0 : evs.front().t_s;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const FlightEvent& e = evs[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"dt_s\": %.6f, \"kind\": \"%s\", \"phase\": "
                  "\"%s\", \"detail\": %u, \"a\": %u, \"b\": %u, \"c\": %"
                  PRIu64 "}",
                  i == 0 ? "" : ",", e.t_s - t0, to_string(e.kind),
                  phase_name(e.phase), static_cast<unsigned>(e.detail),
                  static_cast<unsigned>(e.a), static_cast<unsigned>(e.b),
                  e.c);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace ppgr::runtime

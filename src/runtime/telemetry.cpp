#include "runtime/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ppgr::runtime {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kStalled: return "stalled";
  }
  return "?";
}

void OpenMetricsBuilder::family(const std::string& name, const char* type,
                                const std::string& help) {
  body_ += "# TYPE " + name + " " + type + "\n";
  if (!help.empty()) body_ += "# HELP " + name + " " + help + "\n";
}

void OpenMetricsBuilder::sample(const std::string& name,
                                const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  body_ += name;
  if (!labels.empty()) body_ += "{" + labels + "}";
  body_ += " ";
  body_ += buf;
  body_ += "\n";
}

void OpenMetricsBuilder::sample(const std::string& name,
                                const std::string& labels,
                                std::uint64_t value) {
  body_ += name;
  if (!labels.empty()) body_ += "{" + labels + "}";
  body_ += " " + std::to_string(value) + "\n";
}

void OpenMetricsBuilder::histogram(const std::string& name,
                                   const std::string& labels,
                                   const LatencyHistogram& hist) {
  // Cumulative buckets over the occupied bin range only: 40 fixed bins
  // would bloat every scrape; the top occupied bin plus +Inf loses nothing.
  std::size_t top = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBins; ++i)
    if (hist.bins()[i] != 0) top = i + 1;
  std::uint64_t cum = 0;
  const std::string sep = labels.empty() ? "" : ",";
  for (std::size_t i = 0; i < top; ++i) {
    cum += hist.bins()[i];
    const double le_s = LatencyHistogram::bin_upper_seconds(i);
    char le[48];
    std::snprintf(le, sizeof(le), "le=\"%.9g\"", le_s);
    sample(name + "_bucket", labels + sep + le, cum);
  }
  sample(name + "_bucket", labels + sep + "le=\"+Inf\"", hist.count());
  sample(name + "_sum", labels, hist.total_seconds());
  sample(name + "_count", labels, hist.count());
}

TelemetrySampler::TelemetrySampler(Config cfg,
                                   std::function<TelemetrySample()> produce)
    : cfg_(std::move(cfg)), produce_(std::move(produce)) {
  if (cfg_.period_s <= 0.0)
    throw std::invalid_argument("TelemetrySampler: period must be > 0");
  if (!produce_)
    throw std::invalid_argument("TelemetrySampler: produce callback required");
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (started_)
      throw std::logic_error("TelemetrySampler: already started");
  }
  // Fail fast on an unwritable JSONL path before the thread exists (the
  // OpenMetrics tmp-file path is probed identically on the first sample).
  // Probed before latching started_, so a failed start leaves the sampler
  // stoppable/destroyable without a thread to join.
  if (!cfg_.jsonl_path.empty()) {
    std::ofstream probe{cfg_.jsonl_path, std::ios::trunc};
    if (!probe)
      throw std::runtime_error("TelemetrySampler: cannot open '" +
                               cfg_.jsonl_path + "' for writing");
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { loop(); });
}

void TelemetrySampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || joined_) return;
    stop_requested_ = true;
    joined_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void TelemetrySampler::loop() {
  const auto period = std::chrono::duration<double>(cfg_.period_s);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
        break;
      }
    }
    take_sample();
  }
  // Final sample on stop: the drained state always reaches disk.
  take_sample();
}

void TelemetrySampler::take_sample() {
  const TelemetrySample sample = produce_();
  if (!cfg_.jsonl_path.empty() && !sample.jsonl.empty()) {
    std::ofstream out{cfg_.jsonl_path, std::ios::app};
    if (out) out << sample.jsonl << "\n";
  }
  if (!cfg_.openmetrics_path.empty() && !sample.openmetrics.empty()) {
    // Write-then-rename: a scraper reading the exposition file never sees a
    // torn page. rename(2) is atomic within a filesystem.
    const std::string tmp = cfg_.openmetrics_path + ".tmp";
    {
      std::ofstream out{tmp, std::ios::trunc};
      if (!out) return;
      out << sample.openmetrics;
    }
    std::rename(tmp.c_str(), cfg_.openmetrics_path.c_str());
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ppgr::runtime

// Byte-oriented wire format for protocol messages.
//
// Deployments of the framework run parties on separate machines; everything
// a party sends must have a canonical byte encoding. This module provides
// the primitive Writer/Reader (little-endian fixed integers, LEB128
// varints, length-prefixed byte strings and Nat values) used by the codec
// functions next to each message type (crypto/codec.h, core/codec.h). The
// trace recorder's byte accounting is cross-checked against these encodings
// by tests/wire_test.cpp.
//
// Format invariants:
//  - all lengths are varints; values up to 2^64-1;
//  - Nat is a varint length followed by big-endian magnitude bytes
//    (minimal: no leading zero byte);
//  - readers validate eagerly and throw WireError on truncation or
//    non-canonical input; a Reader must be fully consumed (finish()).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpz/nat.h"

namespace ppgr::runtime {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Encoded size of varint(v) in bytes — used by the analytic message-size
/// formulas so they stay exactly equal to the serialized sizes.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128.
  void varint(std::uint64_t v);
  /// Length-prefixed bytes.
  void bytes(std::span<const std::uint8_t> data);
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(std::span<const std::uint8_t> data);
  void nat(const mpz::Nat& n);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::vector<std::uint8_t> bytes();
  [[nodiscard]] std::vector<std::uint8_t> raw(std::size_t len);
  [[nodiscard]] mpz::Nat nat();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws WireError if any input is left unconsumed.
  void finish() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ppgr::runtime

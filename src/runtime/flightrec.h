// Forensic flight recorder: a bounded ring buffer of typed protocol events.
//
// When a session faults or stalls today, the typed ProtocolFault says
// *where* it died, not *what led up to it*. The flight recorder keeps the
// recent event history — phase/round transitions, channel sends, the fault
// ladder's retry/backoff/give-up decisions, precompute cache hits/misses,
// degradation steps — in a fixed-capacity ring that is cheap enough to leave
// always-on (<1% of session wall, gated by bench/engine_throughput) and is
// dumped only on fault/stall or on demand.
//
// Threading: the writer is the session's orchestrator/driver thread (the
// same serial choke point that owns net::Router), so record() is effectively
// single-writer. Dumps, however, can come from observer threads (the stall
// watchdog, an operator snapshot) while the session is still running, so the
// ring is guarded by a mutex — one uncontended lock per event, far below the
// cost of the crypto work each event describes.
//
// Observation-only contract: nothing reads the recorder back into protocol
// logic, and no deterministic export includes it. Event timestamps are
// wall-clock (metrics_now_seconds) and explicitly nondeterministic; the
// event *sequence* (kinds, phases, payloads) is a pure function of the run
// for a fault-free deterministic session.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/metrics.h"

namespace ppgr::runtime {

/// What happened. `detail`/`a`/`b`/`c` of FlightEvent are kind-specific:
///   kPhase        a=round at transition                  (Router::set_phase)
///   kRound        c=new round index                      (Router::next_round)
///   kSend         a=src, b=dst, c=bytes                  (every accounted message)
///   kRetry        a=src, b=dst, c=attempt                (retransmit ladder)
///   kInject       detail=net::FaultKind, a=src, b=dst, c=attempt (plan hit)
///   kChannelError detail=net::ChannelErrorKind, a=src, b=dst     (surfaced)
///   kCacheHit /
///   kCacheMiss    detail=artifact ordinal (0=generator table, 1=key table,
///                 2=zero pool)                           (engine precompute)
///   kDegrade      a=survivors, b=dropped                 (phase-1 degrade)
///   kFault        detail=party (+1 bias: 0 = none), c=round      (ProtocolFault)
///   kAudit        a=checks, b=findings                   (conformance audit)
enum class FlightEventKind : std::uint8_t {
  kPhase = 0,
  kRound,
  kSend,
  kRetry,
  kInject,
  kChannelError,
  kCacheHit,
  kCacheMiss,
  kDegrade,
  kFault,
  kAudit,
};
[[nodiscard]] const char* to_string(FlightEventKind kind);

/// One fixed-size recorded event. POD so ring writes are a few stores.
struct FlightEvent {
  double t_s = 0.0;  // metrics_now_seconds() at record time (wall, noisy)
  FlightEventKind kind = FlightEventKind::kPhase;
  Phase phase = Phase::kSetup;
  std::uint16_t detail = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
};

class FlightRecorder {
 public:
  /// `capacity` = number of events retained (oldest overwritten first).
  explicit FlightRecorder(std::size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEventKind kind, Phase phase, std::uint16_t detail = 0,
              std::uint32_t a = 0, std::uint32_t b = 0, std::uint64_t c = 0);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (== min(recorded, capacity)).
  [[nodiscard]] std::size_t size() const;
  /// Total record() calls over the recorder's lifetime.
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Snapshot of the retained events, oldest first. Safe to call from any
  /// thread while the writer keeps recording.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// The dump: a "ppgr.flight.v1" JSON document with ring stats and the
  /// retained events oldest-first. Timestamps are relative to the first
  /// retained event (absolute steady-clock values mean nothing off-box).
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::uint64_t recorded_ = 0;  // next write goes to recorded_ % capacity
};

}  // namespace ppgr::runtime

#include "runtime/comm.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace ppgr::runtime {

void CommBuffer::send(
    std::size_t src, std::size_t dst,
    std::shared_ptr<const std::vector<std::uint8_t>> payload) {
  if (src == dst) throw std::invalid_argument("CommBuffer: src == dst");
  if (payload == nullptr)
    throw std::invalid_argument("CommBuffer: null payload");
  const std::size_t bytes = payload->size();
  staged_.push_back(CommMessage{src, dst, bytes, std::move(payload)});
}

void CommBuffer::record(std::size_t src, std::size_t dst, std::size_t bytes) {
  if (src == dst) throw std::invalid_argument("CommBuffer: src == dst");
  staged_.push_back(CommMessage{src, dst, bytes, nullptr});
}

void CommRegistry::set_phase(Phase p) {
  const std::lock_guard<std::mutex> lock(mu_);
  phase_ = p;
}

Phase CommRegistry::phase() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

void CommRegistry::record(std::size_t src, std::size_t dst,
                          std::size_t bytes) {
  if (src == dst) throw std::invalid_argument("CommRegistry: src == dst");
  const std::lock_guard<std::mutex> lock(mu_);
  flows_.push_back(FlowRecord{phase_, current_round_, src, dst, bytes, {}});
}

void CommRegistry::close_round(std::span<const FlowTiming> timings,
                               double round_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t in_round = flows_.size() - round_begin_;
  if (timings.size() != in_round)
    throw std::invalid_argument("CommRegistry::close_round: timing mismatch");
  for (std::size_t i = 0; i < in_round; ++i) {
    FlowTiming t = timings[i];
    t.send_s += virtual_clock_;
    t.deliver_s += virtual_clock_;
    flows_[round_begin_ + i].t = t;
  }
  virtual_clock_ += round_seconds;
  phase_virtual_[static_cast<std::size_t>(phase_)] += round_seconds;
  ++closed_rounds_;
  ++current_round_;
  round_begin_ = flows_.size();
}

std::size_t CommRegistry::message_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

std::uint64_t CommRegistry::total_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t b = 0;
  for (const auto& f : flows_) b += f.bytes;
  return b;
}

std::size_t CommRegistry::rounds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_rounds_;
}

double CommRegistry::virtual_seconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return virtual_clock_;
}

double CommRegistry::phase_virtual_seconds(Phase p) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return phase_virtual_[static_cast<std::size_t>(p)];
}

std::vector<FlowRecord> CommRegistry::flows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_;
}

std::vector<CommLink> CommRegistry::links() const {
  std::vector<CommLink> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& f : flows_) {
      CommLink* slot = nullptr;
      for (auto& l : out) {
        if (l.phase == f.phase && l.src == f.src && l.dst == f.dst) {
          slot = &l;
          break;
        }
      }
      if (slot == nullptr) {
        out.push_back(CommLink{f.phase, f.src, f.dst, 0, 0, 0.0});
        slot = &out.back();
      }
      ++slot->messages;
      slot->bytes += f.bytes;
      slot->tx_s += f.t.tx_s;
    }
  }
  std::sort(out.begin(), out.end(), [](const CommLink& a, const CommLink& b) {
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  return out;
}

void CommRegistry::set_fault_counters(const FaultCounters& counters) {
  const std::lock_guard<std::mutex> lock(mu_);
  fault_counters_ = counters;
  has_fault_counters_ = true;
}

bool CommRegistry::has_fault_counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return has_fault_counters_;
}

FaultCounters CommRegistry::fault_counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fault_counters_;
}

bool CommRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_.empty();
}

void CommRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  flows_.clear();
  current_round_ = 0;
  round_begin_ = 0;
  closed_rounds_ = 0;
  virtual_clock_ = 0.0;
  phase_virtual_ = {};
  phase_ = Phase::kSetup;
  fault_counters_ = {};
  has_fault_counters_ = false;
}

namespace {

void append_f(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

std::string CommRegistry::to_json() const {
  const auto all_flows = flows();
  const auto all_links = links();
  std::array<double, kPhaseCount> phase_s{};
  double total_s = 0.0;
  std::size_t n_rounds = 0;
  FaultCounters fc{};
  bool has_fc = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    phase_s = phase_virtual_;
    total_s = virtual_clock_;
    n_rounds = closed_rounds_;
    fc = fault_counters_;
    has_fc = has_fault_counters_;
  }

  std::uint64_t total_bytes = 0;
  for (const auto& f : all_flows) total_bytes += f.bytes;

  std::string out;
  out += "{\n  \"schema\": \"ppgr.comm.v1\",\n";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  \"rounds\": %zu,\n  \"messages\": %zu,\n"
                "  \"bytes\": %" PRIu64 ",\n",
                n_rounds, all_flows.size(), total_bytes);
  out += buf;
  out += "  \"virtual_seconds\": ";
  append_f(out, "%.9f", total_s);
  // Only faulted runs carry the counters section; fault-free exports stay
  // byte-identical to the pre-fault-layer schema.
  if (has_fc) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"faults\": {\n"
                  "    \"injected_drop\": %" PRIu64 ",\n"
                  "    \"injected_duplicate\": %" PRIu64 ",\n"
                  "    \"injected_reorder\": %" PRIu64 ",\n"
                  "    \"injected_corrupt\": %" PRIu64 ",\n",
                  fc.injected_drop, fc.injected_duplicate, fc.injected_reorder,
                  fc.injected_corrupt);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"injected_tamper\": %" PRIu64 ",\n"
                  "    \"injected_delay\": %" PRIu64 ",\n"
                  "    \"injected_crash\": %" PRIu64 ",\n"
                  "    \"retransmits\": %" PRIu64 ",\n",
                  fc.injected_tamper, fc.injected_delay, fc.injected_crash,
                  fc.retransmits);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"crc_detected\": %" PRIu64 ",\n"
                  "    \"duplicates_dropped\": %" PRIu64 ",\n"
                  "    \"reorders_healed\": %" PRIu64 ",\n"
                  "    \"timeouts\": %" PRIu64 ",\n"
                  "    \"giveups\": %" PRIu64 "\n  }",
                  fc.crc_detected, fc.duplicates_dropped, fc.reorders_healed,
                  fc.timeouts, fc.giveups);
    out += buf;
  }
  out += ",\n  \"phases\": [";

  bool first_phase = true;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    std::uint64_t pb = 0, pm = 0;
    for (const auto& f : all_flows)
      if (f.phase == phase) {
        pb += f.bytes;
        ++pm;
      }
    if (pm == 0) continue;
    out += first_phase ? "\n" : ",\n";
    first_phase = false;
    std::snprintf(buf, sizeof(buf),
                  "    {\"phase\": \"%s\", \"messages\": %" PRIu64
                  ", \"bytes\": %" PRIu64 ", \"virtual_seconds\": ",
                  phase_name(phase), pm, pb);
    out += buf;
    append_f(out, "%.9f", phase_s[p]);
    out += ", \"links\": [";
    bool first_link = true;
    for (const auto& l : all_links) {
      if (l.phase != phase) continue;
      out += first_link ? "\n" : ",\n";
      first_link = false;
      std::snprintf(buf, sizeof(buf),
                    "      {\"src\": %zu, \"dst\": %zu, \"messages\": %" PRIu64
                    ", \"bytes\": %" PRIu64 ", \"tx_seconds\": ",
                    l.src, l.dst, l.messages, l.bytes);
      out += buf;
      append_f(out, "%.9f", l.tx_s);
      out += ", \"utilization\": ";
      append_f(out, "%.6f", phase_s[p] > 0.0 ? l.tx_s / phase_s[p] : 0.0);
      out += "}";
    }
    out += "\n    ]}";
  }
  out += "\n  ],\n  \"flows\": [";

  bool first_flow = true;
  for (const auto& f : all_flows) {
    out += first_flow ? "\n" : ",\n";
    first_flow = false;
    std::snprintf(buf, sizeof(buf),
                  "    {\"phase\": \"%s\", \"round\": %zu, \"src\": %zu, "
                  "\"dst\": %zu, \"bytes\": %zu, \"send_s\": ",
                  phase_name(f.phase), f.round, f.src, f.dst, f.bytes);
    out += buf;
    append_f(out, "%.9f", f.t.send_s);
    out += ", \"deliver_s\": ";
    append_f(out, "%.9f", f.t.deliver_s);
    out += ", \"tx_s\": ";
    append_f(out, "%.9f", f.t.tx_s);
    out += ", \"prop_s\": ";
    append_f(out, "%.9f", f.t.prop_s);
    out += ", \"queue_s\": ";
    append_f(out, "%.9f", f.t.queue_s);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string CommRegistry::chrome_trace_json() const {
  const auto all_flows = flows();

  // One lane (tid) per party; tid = party + 1 matches the span exporter's
  // convention. pid 1 keeps the virtual-network timeline in its own process
  // group when loaded next to the compute spans (pid 0).
  std::size_t max_party = 0;
  for (const auto& f : all_flows)
    max_party = std::max({max_party, f.src, f.dst});

  std::string out = "[\n";
  char buf[256];
  out +=
      "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"virtual network\"}}";
  for (std::size_t p = 0; p <= max_party; ++p) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": %zu, \"name\": "
                  "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                  p + 1, p == 0 ? "P0 (initiator)" : ("P" + std::to_string(p)).c_str());
    out += buf;
  }

  std::size_t seq = 0;
  for (const auto& f : all_flows) {
    const double send_us = f.t.send_s * 1e6;
    const double deliver_us = f.t.deliver_s * 1e6;
    // The send slice spans the message's stay in the network; the receive
    // slice is a zero-ish marker at delivery. Flow arrows link the two.
    const double dur_us = std::max(deliver_us - send_us, 0.001);
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": %zu, \"ts\": "
                  "%.3f, \"dur\": %.3f, \"name\": \"send %zu->%zu\", "
                  "\"cat\": \"%s\", \"args\": {\"bytes\": %zu, \"round\": "
                  "%zu}}",
                  f.src + 1, send_us, dur_us, f.src, f.dst,
                  phase_name(f.phase), f.bytes, f.round);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"ph\": \"s\", \"pid\": 1, \"tid\": %zu, \"ts\": "
                  "%.3f, \"id\": %zu, \"name\": \"msg\", \"cat\": \"comm\"}",
                  f.src + 1, send_us, seq);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"ph\": \"f\", \"bp\": \"e\", \"pid\": 1, \"tid\": "
                  "%zu, \"ts\": %.3f, \"id\": %zu, \"name\": \"msg\", "
                  "\"cat\": \"comm\"}",
                  f.dst + 1, deliver_us, seq);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": %zu, \"ts\": "
                  "%.3f, \"dur\": 0.001, \"name\": \"recv %zu->%zu\", "
                  "\"cat\": \"%s\", \"args\": {\"bytes\": %zu}}",
                  f.dst + 1, deliver_us, f.src, f.dst, phase_name(f.phase),
                  f.bytes);
    out += buf;
    ++seq;
  }
  out += "\n]\n";
  return out;
}

}  // namespace ppgr::runtime

#include "group/mock_group.h"

#include <stdexcept>

namespace ppgr::group {

namespace {

constexpr std::uint64_t kP = (1ULL << 61) - 1;  // Mersenne prime M61

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
  // Mersenne reduction: t = hi*2^61 + lo ≡ hi + lo (mod 2^61 - 1).
  std::uint64_t r = static_cast<std::uint64_t>(t & kP) +
                    static_cast<std::uint64_t>(t >> 61);
  if (r >= kP) r -= kP;
  return r;
}

std::uint64_t powmod61(std::uint64_t base, std::uint64_t e) {
  std::uint64_t acc = 1;
  while (e != 0) {
    if (e & 1) acc = mulmod(acc, base);
    base = mulmod(base, base);
    e >>= 1;
  }
  return acc;
}

}  // namespace

MockGroup::MockGroup(std::string name, std::size_t modeled_elem_bytes,
                     std::size_t modeled_field_bits)
    : name_(std::move(name)),
      elem_bytes_(modeled_elem_bytes),
      field_bits_(modeled_field_bits),
      order_(Nat{kP - 1}) {}

Elem MockGroup::generator() const { return Elem{.a = Nat{3}}; }

Elem MockGroup::identity() const { return Elem{.a = Nat{1}}; }

Elem MockGroup::mul(const Elem& x, const Elem& y) const {
  return Elem{.a = Nat{mulmod(x.a.to_limb(), y.a.to_limb())}};
}

Elem MockGroup::exp(const Elem& base, const Nat& scalar) const {
  // Reduce the (possibly huge) protocol scalar mod ord-multiple p-1; the
  // result is identical because x^(p-1) = 1 for all x in Z_p*.
  const std::uint64_t e = (scalar % order_).to_limb();
  return Elem{.a = Nat{powmod61(base.a.to_limb(), e)}};
}

Elem MockGroup::inv(const Elem& x) const {
  return Elem{.a = Nat{powmod61(x.a.to_limb(), kP - 2)}};
}

bool MockGroup::eq(const Elem& x, const Elem& y) const { return x.a == y.a; }

bool MockGroup::is_identity(const Elem& x) const { return x.a.is_one(); }

std::vector<std::uint8_t> MockGroup::serialize(const Elem& x) const {
  // Padded to the modeled size so traces carry realistic bytes.
  return x.a.to_bytes_be(elem_bytes_);
}

Elem MockGroup::deserialize(std::span<const std::uint8_t> bytes) const {
  if (bytes.size() != elem_bytes_)
    throw std::invalid_argument("MockGroup::deserialize: bad length");
  const Nat v = Nat::from_bytes_be(bytes);
  if (v.is_zero() || v >= Nat{kP})
    throw std::invalid_argument("MockGroup::deserialize: out of range");
  return Elem{.a = v};
}

}  // namespace ppgr::group

// Abstract prime-order group interface.
//
// The paper's framework (Sec. IV-B) needs a cyclic group of prime order q in
// which the decisional Diffie-Hellman problem is hard, and evaluates two
// instantiations: "DL" (quadratic residues modulo a safe prime) and "ECC"
// (a prime-order elliptic-curve group). All protocol code (ElGamal, Schnorr
// proofs, the unlinkable comparison phase) is written against this interface
// so the two instantiations — plus the op-counting decorator used by the
// benchmark cost model — are interchangeable at runtime.
//
// Group notation is multiplicative throughout, matching the paper: `mul` is
// the group operation and `exp` is repeated application (scalar
// multiplication for curves).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mpz/nat.h"
#include "mpz/rng.h"

namespace ppgr::group {

using mpz::Nat;
using mpz::Rng;

/// Opaque group element. Representation is owned by the concrete Group:
/// Schnorr groups use `a` (a residue in Montgomery form); elliptic curves use
/// (a, b, c) as Jacobian (X, Y, Z) with `infinity` flagging the identity.
/// Elements must only be combined through the Group that created them.
struct Elem {
  Nat a;
  Nat b;
  Nat c;
  bool infinity = false;
};

class Group {
 public:
  virtual ~Group() = default;

  /// Human-readable name, e.g. "dl-1024" or "ecc-p192".
  [[nodiscard]] virtual std::string name() const = 0;
  /// The prime group order q.
  [[nodiscard]] virtual const Nat& order() const = 0;
  /// Security parameter in bits of the *underlying field/modulus* (λ in the
  /// paper's Sec. VI-B analysis: 1024 for DL-1024, 192 for P-192, ...).
  [[nodiscard]] virtual std::size_t field_bits() const = 0;

  [[nodiscard]] virtual Elem generator() const = 0;
  [[nodiscard]] virtual Elem identity() const = 0;
  [[nodiscard]] virtual Elem mul(const Elem& x, const Elem& y) const = 0;
  [[nodiscard]] virtual Elem exp(const Elem& base, const Nat& scalar) const = 0;
  [[nodiscard]] virtual Elem inv(const Elem& x) const = 0;
  [[nodiscard]] virtual bool eq(const Elem& x, const Elem& y) const = 0;
  [[nodiscard]] virtual bool is_identity(const Elem& x) const = 0;

  /// Canonical byte encoding (fixed length element_bytes()).
  [[nodiscard]] virtual std::vector<std::uint8_t> serialize(const Elem& x) const = 0;
  /// Batch form of serialize: the concatenated canonical encodings of `xs`
  /// (element_bytes() each), byte-identical to serializing one by one. The
  /// default loops; EcGroup overrides it with a batched-inversion affine
  /// normalization (one field inversion for the whole batch instead of one
  /// per point), and the counting decorators override it to keep reporting
  /// xs.size() logical serializations.
  [[nodiscard]] virtual std::vector<std::uint8_t> serialize_many(
      std::span<const Elem> xs) const {
    std::vector<std::uint8_t> out;
    out.reserve(xs.size() * element_bytes());
    for (const Elem& x : xs) {
      const auto one = serialize(x);
      out.insert(out.end(), one.begin(), one.end());
    }
    return out;
  }
  /// Inverse of serialize; throws std::invalid_argument on malformed input
  /// (including points off the curve / non-residues).
  [[nodiscard]] virtual Elem deserialize(std::span<const std::uint8_t> bytes) const = 0;
  /// Length of the canonical encoding in bytes. Drives the communication
  /// accounting (S_c in the paper's Sec. VI-B is 2 * element_bytes()).
  [[nodiscard]] virtual std::size_t element_bytes() const = 0;

  /// Fused x^ex · y^ey — the shape of every ElGamal ciphertext fold in the
  /// accelerated phase-2 paths (multi_exp() routes its 2-term calls here).
  /// The default (defined in multi_exp.cpp) is the generic interleaved
  /// Straus ladder through this group's mul(), so decorators that count or
  /// meter group operations keep reporting exactly the ops the generic
  /// evaluation performs. SchnorrGroup overrides it with a Montgomery-native
  /// ladder that computes the identical element without per-step Elem
  /// boxing.
  [[nodiscard]] virtual Elem dual_exp(const Elem& x, const Nat& ex,
                                      const Elem& y, const Nat& ey) const;

  // --- conveniences shared by all groups ---
  /// x / y.
  [[nodiscard]] Elem div(const Elem& x, const Elem& y) const {
    return mul(x, inv(y));
  }
  /// g^scalar. Concrete groups override this with fixed-base (comb)
  /// exponentiation — the framework's phase 2 evaluates g^r thousands of
  /// times per run (every encryption and re-randomization), and a
  /// precomputed generator table removes all squarings from that path
  /// (bench/ablation_fixedbase quantifies the gain).
  [[nodiscard]] virtual Elem exp_g(const Nat& scalar) const {
    return exp(generator(), scalar);
  }
  /// Uniform scalar in [0, q).
  [[nodiscard]] Nat random_scalar(Rng& rng) const { return rng.below(order()); }
  /// Uniform scalar in [1, q).
  [[nodiscard]] Nat random_nonzero_scalar(Rng& rng) const {
    return rng.nonzero_below(order());
  }
};

/// Named constructors for the configurations evaluated in the paper
/// (Sec. VII: DL framework with 1024/2048/3072-bit safe primes, ECC framework
/// with 160..256-bit curves; we use the NIST P-192/P-224/P-256 curves as the
/// closest standardized equivalents of the "160/224/256-bit ECC group").
enum class GroupId {
  kDl1024,
  kDl2048,
  kDl3072,
  kEcP192,
  kEcP224,
  kEcP256,
  kDlTest256,  // small safe prime for fast unit tests — NOT secure
};

[[nodiscard]] std::unique_ptr<Group> make_group(GroupId id);
[[nodiscard]] std::string to_string(GroupId id);

}  // namespace ppgr::group

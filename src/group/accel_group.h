// Precompute-accelerated decorator over any Group.
//
// The session engine's counterpart of MeteredGroup: instead of counting
// calls it routes them through fixed-base comb tables (group/fixed_base.h)
// when one is attached —
//
//   exp_g(s)      -> generator table (every encryption / re-randomization)
//   exp(base, s)  -> joint-key table when `base` equals the table's base
//                    (the other half of every encryption)
//
// Tables are attached after construction because the joint ElGamal key only
// exists once phase-2 keygen has run; run_framework installs the key table
// between two fork-join barriers, so worker threads observe the write
// through the pool's synchronization (no atomics needed — same discipline
// as every other orchestrator-owned structure).
//
// Mathematically the decorator is invisible: a comb table computes exactly
// base^scalar, so wrapping a group in AcceleratedGroup never changes any
// protocol output — only where the multiplications come from. Layering
// under MeteredGroup keeps the interface-level op counts unchanged too
// (the comb's internal muls are deliberately uncounted, matching how
// SchnorrGroup::exp_g's own table works).
#pragma once

#include <memory>
#include <utility>

#include "group/fixed_base.h"
#include "group/group.h"

namespace ppgr::group {

class AcceleratedGroup final : public Group {
 public:
  /// Does not own `inner`; it must outlive this decorator.
  explicit AcceleratedGroup(const Group& inner) : inner_(inner) {}

  /// Generator table for exp_g. Null detaches.
  void set_generator_table(std::shared_ptr<const FixedBaseTable> t) {
    gen_table_ = std::move(t);
  }
  /// Extra fixed-base table (the joint public key); exp() consults it when
  /// the base compares equal to table->base(). Null detaches.
  void set_base_table(std::shared_ptr<const FixedBaseTable> t) {
    base_table_ = std::move(t);
  }

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] const Nat& order() const override { return inner_.order(); }
  [[nodiscard]] std::size_t field_bits() const override {
    return inner_.field_bits();
  }
  [[nodiscard]] Elem generator() const override { return inner_.generator(); }
  [[nodiscard]] Elem identity() const override { return inner_.identity(); }
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override {
    return inner_.mul(x, y);
  }
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override {
    if (base_table_ != nullptr && inner_.eq(base, base_table_->base()))
      return base_table_->exp(inner_, scalar);
    return inner_.exp(base, scalar);
  }
  [[nodiscard]] Elem exp_g(const Nat& scalar) const override {
    if (gen_table_ != nullptr) return gen_table_->exp(inner_, scalar);
    return inner_.exp_g(scalar);
  }
  [[nodiscard]] Elem inv(const Elem& x) const override {
    return inner_.inv(x);
  }
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override {
    return inner_.eq(x, y);
  }
  [[nodiscard]] bool is_identity(const Elem& x) const override {
    return inner_.is_identity(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      const Elem& x) const override {
    return inner_.serialize(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize_many(
      std::span<const Elem> xs) const override {
    return inner_.serialize_many(xs);
  }
  [[nodiscard]] Elem deserialize(
      std::span<const std::uint8_t> bytes) const override {
    return inner_.deserialize(bytes);
  }
  [[nodiscard]] std::size_t element_bytes() const override {
    return inner_.element_bytes();
  }

 private:
  const Group& inner_;
  std::shared_ptr<const FixedBaseTable> gen_table_;
  std::shared_ptr<const FixedBaseTable> base_table_;
};

}  // namespace ppgr::group

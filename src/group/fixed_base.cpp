#include "group/fixed_base.h"

namespace ppgr::group {

FixedBaseTable::FixedBaseTable(const Group& g, const Elem& base,
                               std::size_t max_scalar_bits)
    : base_(base) {
  const std::size_t windows = (max_scalar_bits + 3) / 4;
  table_.resize(windows);
  Elem window_base = base;  // g^(16^k)
  for (std::size_t k = 0; k < windows; ++k) {
    table_[k][0] = g.identity();
    table_[k][1] = window_base;
    for (std::size_t d = 2; d < 16; ++d)
      table_[k][d] = g.mul(table_[k][d - 1], window_base);
    // Advance to g^(16^(k+1)) = (g^(16^k))^16.
    window_base = g.mul(table_[k][15], window_base);
  }
}

Elem FixedBaseTable::exp(const Group& g, const Nat& scalar) const {
  const std::size_t nbits = scalar.bit_length();
  if (nbits > table_.size() * 4) return g.exp(base_, scalar);  // too wide
  Elem acc = g.identity();
  const std::size_t windows = (nbits + 3) / 4;
  for (std::size_t k = 0; k < windows; ++k) {
    std::size_t nib = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (scalar.bit(k * 4 + b)) nib |= (1u << b);
    }
    if (nib != 0) acc = g.mul(acc, table_[k][nib]);
  }
  return acc;
}

}  // namespace ppgr::group

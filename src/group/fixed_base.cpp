#include "group/fixed_base.h"

#include <stdexcept>

namespace ppgr::group {

FixedBaseTable::FixedBaseTable(const Group& g, const Elem& base,
                               std::size_t max_scalar_bits,
                               std::size_t window_bits)
    : base_(base), window_bits_(window_bits) {
  if (window_bits < 2 || window_bits > 8)
    throw std::invalid_argument("FixedBaseTable: window_bits must be in [2,8]");
  const std::size_t w = window_bits;
  const std::size_t digits = std::size_t{1} << w;
  const std::size_t windows = (max_scalar_bits + w - 1) / w;
  table_.resize(windows);
  Elem window_base = base;  // g^(2^(wk))
  for (std::size_t k = 0; k < windows; ++k) {
    table_[k].resize(digits);
    table_[k][0] = g.identity();
    table_[k][1] = window_base;
    for (std::size_t d = 2; d < digits; ++d)
      table_[k][d] = g.mul(table_[k][d - 1], window_base);
    // Advance to g^(2^(w(k+1))) = (g^(2^(wk)))^(2^w).
    window_base = g.mul(table_[k][digits - 1], window_base);
  }
}

Elem FixedBaseTable::exp(const Group& g, const Nat& scalar) const {
  const std::size_t w = window_bits_;
  const std::size_t nbits = scalar.bit_length();
  if (nbits > table_.size() * w) return g.exp(base_, scalar);  // too wide
  Elem acc = g.identity();
  const std::size_t windows = (nbits + w - 1) / w;
  for (std::size_t k = 0; k < windows; ++k) {
    std::size_t digit = 0;
    for (std::size_t b = 0; b < w; ++b) {
      if (scalar.bit(k * w + b)) digit |= (std::size_t{1} << b);
    }
    if (digit != 0) acc = g.mul(acc, table_[k][digit]);
  }
  return acc;
}

}  // namespace ppgr::group

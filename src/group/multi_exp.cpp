#include "group/multi_exp.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <vector>

#include "runtime/metrics.h"

namespace ppgr::group {

namespace {

std::size_t max_bits(std::span<const Nat> exps) {
  std::size_t bits = 0;
  for (const Nat& e : exps) bits = std::max(bits, e.bit_length());
  return bits;
}

std::size_t digit_at(const Nat& e, std::size_t lo, std::size_t width) {
  std::size_t d = 0;
  for (std::size_t b = 0; b < width; ++b)
    if (e.bit(lo + b)) d |= (std::size_t{1} << b);
  return d;
}

}  // namespace

Elem multi_exp_straus(const Group& g, std::span<const Elem> bases,
                      std::span<const Nat> exps, std::size_t window_bits) {
  if (bases.size() != exps.size())
    throw std::invalid_argument("multi_exp_straus: size mismatch");
  if (window_bits < 1 || window_bits > 8)
    throw std::invalid_argument("multi_exp_straus: window_bits must be in [1,8]");
  const std::size_t k = bases.size();
  if (k == 0) return g.identity();
  const std::size_t w = window_bits;
  const std::size_t digits = std::size_t{1} << w;

  // Per-base digit tables: T[i][d] = bases[i]^d.
  std::vector<std::vector<Elem>> table(k);
  for (std::size_t i = 0; i < k; ++i) {
    table[i].resize(digits);
    table[i][0] = g.identity();
    if (digits > 1) table[i][1] = bases[i];
    for (std::size_t d = 2; d < digits; ++d)
      table[i][d] = g.mul(table[i][d - 1], bases[i]);
  }

  const std::size_t bits = max_bits(exps);
  const std::size_t windows = (bits + w - 1) / w;
  Elem acc = g.identity();
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started)
      for (std::size_t s = 0; s < w; ++s) acc = g.mul(acc, acc);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t d = digit_at(exps[i], win * w, w);
      if (d == 0) continue;
      acc = started ? g.mul(acc, table[i][d]) : table[i][d];
      started = true;
    }
  }
  return started ? acc : g.identity();
}

Elem multi_exp_pippenger(const Group& g, std::span<const Elem> bases,
                         std::span<const Nat> exps) {
  if (bases.size() != exps.size())
    throw std::invalid_argument("multi_exp_pippenger: size mismatch");
  const std::size_t k = bases.size();
  if (k == 0) return g.identity();
  // Window size ~ log2(k): bucket maintenance (2^(c+1) muls per window)
  // balances the k digit-insertions per window.
  const std::size_t c = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::bit_width(k)) - 1, 1, 12);
  const std::size_t buckets_n = (std::size_t{1} << c) - 1;

  const std::size_t bits = max_bits(exps);
  const std::size_t windows = (bits + c - 1) / c;
  Elem acc = g.identity();
  bool started = false;
  std::vector<Elem> buckets(buckets_n);
  std::vector<char> used(buckets_n);
  for (std::size_t win = windows; win-- > 0;) {
    if (started)
      for (std::size_t s = 0; s < c; ++s) acc = g.mul(acc, acc);
    std::fill(used.begin(), used.end(), 0);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t d = digit_at(exps[i], win * c, c);
      if (d == 0) continue;
      buckets[d - 1] = used[d - 1] != 0 ? g.mul(buckets[d - 1], bases[i])
                                        : bases[i];
      used[d - 1] = 1;
    }
    // Suffix sums: Σ_d d·bucket[d] = Σ running products from the top —
    // running = Π_{e>=d} bucket[e], window = Σ_d running_d.
    Elem running = g.identity();
    bool have_running = false;
    Elem window_sum = g.identity();
    bool have_sum = false;
    for (std::size_t d = buckets_n; d-- > 0;) {
      if (used[d] != 0) {
        running = have_running ? g.mul(running, buckets[d]) : buckets[d];
        have_running = true;
      }
      if (have_running) {
        window_sum = have_sum ? g.mul(window_sum, running) : running;
        have_sum = true;
      }
    }
    if (have_sum) {
      acc = started ? g.mul(acc, window_sum) : window_sum;
      started = true;
    }
  }
  return started ? acc : g.identity();
}

Elem multi_exp(const Group& g, std::span<const Elem> bases,
               std::span<const Nat> exps) {
  if (bases.size() != exps.size())
    throw std::invalid_argument("multi_exp: size mismatch");
  runtime::count_op(runtime::CryptoOp::kAccelMultiExp);
  runtime::count_op(runtime::CryptoOp::kAccelMultiExpTerm, bases.size());
  if (bases.empty()) return g.identity();
  if (bases.size() == 1) return g.exp(bases[0], exps[0]);
  // The 2-term shape (one per ciphertext in the shuffle-hop and comparison
  // folds) is the protocol hot path; groups may override dual_exp with a
  // representation-native ladder.
  if (bases.size() == 2) return g.dual_exp(bases[0], exps[0], bases[1], exps[1]);
  if (bases.size() <= kStrausMaxTerms) return multi_exp_straus(g, bases, exps);
  return multi_exp_pippenger(g, bases, exps);
}

// Default dual_exp: the generic 2-term Straus ladder, evaluated through the
// (possibly decorated) group's own mul/exp virtuals. Lives here rather than
// group.h so the interface header does not depend on the multi-exp engine.
Elem Group::dual_exp(const Elem& x, const Nat& ex, const Elem& y,
                     const Nat& ey) const {
  const std::array<Elem, 2> bases{x, y};
  const std::array<Nat, 2> exps{ex, ey};
  return multi_exp_straus(*this, bases, exps);
}

}  // namespace ppgr::group

// Fixed-base exponentiation via a 4-bit comb table.
//
// For a fixed base g, precompute T[k][d] = g^(d * 16^k) for every nibble
// position k of the scalar; then g^s = Π_k T[k][nibble_k(s)] — one group
// multiplication per nonzero nibble and zero squarings. Shared by the
// Schnorr and elliptic-curve groups for their generator (the hottest base in
// the framework: every ElGamal encryption computes two fixed-base powers).
#pragma once

#include <array>
#include <vector>

#include "group/group.h"

namespace ppgr::group {

class FixedBaseTable {
 public:
  /// Precomputes for scalars up to `max_scalar_bits` bits. The table costs
  /// ceil(bits/4) * 15 precomputed elements.
  FixedBaseTable(const Group& g, const Elem& base, std::size_t max_scalar_bits);

  /// base^scalar using only multiplications. Falls back to the group's
  /// generic exp for scalars wider than the table.
  [[nodiscard]] Elem exp(const Group& g, const Nat& scalar) const;

  [[nodiscard]] std::size_t windows() const { return table_.size(); }

  /// The fixed base the table was built for.
  [[nodiscard]] const Elem& base() const { return base_; }

 private:
  Elem base_;
  std::vector<std::array<Elem, 16>> table_;  // [window][nibble]
};

}  // namespace ppgr::group

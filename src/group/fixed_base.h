// Fixed-base exponentiation via a windowed comb table.
//
// For a fixed base g and window width w, precompute T[k][d] = g^(d * 2^(wk))
// for every w-bit digit position k of the scalar; then g^s = Π_k
// T[k][digit_k(s)] — one group multiplication per nonzero digit and zero
// squarings. Shared by the Schnorr and elliptic-curve groups for their
// generator (the hottest base in the framework: every ElGamal encryption
// computes two fixed-base powers) and, since PR 6, by the phase-2
// accelerator for the joint ElGamal key (every compare-circuit
// re-randomization exponentiates it).
//
// Memory/speed trade-off: a table costs ceil(bits/w) * (2^w - 1) precomputed
// elements and answers an exp in ~bits/w multiplications, so widening w by
// one halves...doubles: w=4 on a 256-bit scalar is 960 elements and <=64
// muls; w=5 is 1612 elements and <=52 muls. The default w=4 matches the
// pre-PR-6 tables bit for bit.
#pragma once

#include <vector>

#include "group/group.h"

namespace ppgr::group {

class FixedBaseTable {
 public:
  /// Precomputes for scalars up to `max_scalar_bits` bits with `window_bits`
  /// wide digits (2..8; throws std::invalid_argument outside that range).
  FixedBaseTable(const Group& g, const Elem& base, std::size_t max_scalar_bits,
                 std::size_t window_bits = 4);

  /// base^scalar using only multiplications. Falls back to the group's
  /// generic exp for scalars wider than the table.
  [[nodiscard]] Elem exp(const Group& g, const Nat& scalar) const;

  [[nodiscard]] std::size_t windows() const { return table_.size(); }
  [[nodiscard]] std::size_t window_bits() const { return window_bits_; }

  /// The fixed base the table was built for.
  [[nodiscard]] const Elem& base() const { return base_; }

 private:
  Elem base_;
  std::size_t window_bits_;
  std::vector<std::vector<Elem>> table_;  // [window][digit], 2^w digits each
};

}  // namespace ppgr::group

// Simultaneous multi-exponentiation: Π_i bases[i]^exps[i] in one pass.
//
// The phase-2 hot path is full of short products of powers — the
// comparison circuit's ω/τ accumulations (2 terms each) and the fused
// partial-decrypt + exponent-randomize of a shuffle hop (2 terms) — where
// evaluating each power separately repeats the squaring ladder per term.
// Two classic algorithms share it instead:
//
//   Straus (interleaved windows): one ladder of w-bit squaring steps over
//     the widest exponent, with a per-base 2^w-entry table multiplied in at
//     each window. Cost ≈ B squarings + k·(B/w) muls + k·2^w table muls for
//     k terms of B bits — the per-term ladder is amortized away. Best for
//     small k (every table stays in cache).
//
//   Pippenger (bucketed windows): per window, every base lands in the
//     bucket of its digit, and a running suffix sum turns the 2^c - 1
//     buckets into the window product with ~2^(c+1) muls regardless of k.
//     With c ≈ log2(k) the asymptotic cost is B·(1 + k/log k) muls — best
//     for large batches.
//
// multi_exp() picks between them by term count (kStrausMaxTerms). All three
// entry points are written against the abstract Group interface only
// (mul/identity/exp), so they serve mock, Schnorr and EC groups alike, and
// they compute exactly Π bases[i]^exps[i] — the differential suite in
// tests/multiexp_test.cpp pins them against naive Group::exp on random and
// edge-case inputs.
//
// Metrics: multi_exp() bumps the kAccelMultiExp/kAccelMultiExpTerm counters
// (the explicit straus/pippenger entry points do not). It never credits
// logical group-op counters — callers on the accelerated protocol path are
// responsible for crediting the interface-level ops the unaccelerated
// algorithm would have reported (see core/framework.cpp).
#pragma once

#include <span>

#include "group/group.h"

namespace ppgr::group {

/// Terms at or below which multi_exp() uses Straus; above, Pippenger.
inline constexpr std::size_t kStrausMaxTerms = 32;

/// Π bases[i]^exps[i], auto-selecting the algorithm by term count.
/// bases and exps must have equal size; 0 terms yields the identity and a
/// single term defers to g.exp. Throws std::invalid_argument on size
/// mismatch.
[[nodiscard]] Elem multi_exp(const Group& g, std::span<const Elem> bases,
                             std::span<const Nat> exps);

/// Straus interleaved multi-exp with `window_bits`-wide windows (1..8).
[[nodiscard]] Elem multi_exp_straus(const Group& g, std::span<const Elem> bases,
                                    std::span<const Nat> exps,
                                    std::size_t window_bits = 4);

/// Pippenger bucketed multi-exp; window size is chosen from the term count.
[[nodiscard]] Elem multi_exp_pippenger(const Group& g,
                                       std::span<const Elem> bases,
                                       std::span<const Nat> exps);

}  // namespace ppgr::group

#include "group/schnorr_group.h"

#include <stdexcept>

#include "mpz/modarith.h"

namespace ppgr::group {

SchnorrGroup::SchnorrGroup(std::string name, Nat safe_prime)
    : name_(std::move(name)), mont_(std::move(safe_prime)) {
  const Nat& p = mont_.modulus();
  if (p < Nat{7}) throw std::invalid_argument("SchnorrGroup: p too small");
  q_ = Nat::sub(p, Nat{1}).shr(1);
  gen_ = mont_.to_mont(Nat{4});
}

Elem SchnorrGroup::generator() const { return Elem{.a = gen_}; }

Elem SchnorrGroup::exp_g(const Nat& scalar) const {
  std::call_once(gen_table_once_, [&] {
    gen_table_ = std::make_unique<FixedBaseTable>(*this, generator(),
                                                  q_.bit_length());
  });
  return gen_table_->exp(*this, scalar);
}

Elem SchnorrGroup::identity() const { return Elem{.a = mont_.one_mont()}; }

Elem SchnorrGroup::mul(const Elem& x, const Elem& y) const {
  return Elem{.a = mont_.mul(x.a, y.a)};
}

Elem SchnorrGroup::exp(const Elem& base, const Nat& scalar) const {
  return Elem{.a = mont_.exp(base.a, scalar)};
}

Elem SchnorrGroup::inv(const Elem& x) const {
  // x^(q-1) = x^{-1} for x in the order-q subgroup.
  return Elem{.a = mont_.exp(x.a, Nat::sub(q_, Nat{1}))};
}

bool SchnorrGroup::eq(const Elem& x, const Elem& y) const { return x.a == y.a; }

bool SchnorrGroup::is_identity(const Elem& x) const {
  return x.a == mont_.one_mont();
}

std::size_t SchnorrGroup::element_bytes() const {
  return (mont_.modulus().bit_length() + 7) / 8;
}

std::vector<std::uint8_t> SchnorrGroup::serialize(const Elem& x) const {
  return mont_.from_mont(x.a).to_bytes_be(element_bytes());
}

Elem SchnorrGroup::deserialize(std::span<const std::uint8_t> bytes) const {
  if (bytes.size() != element_bytes())
    throw std::invalid_argument("SchnorrGroup::deserialize: bad length");
  const Nat v = Nat::from_bytes_be(bytes);
  if (v.is_zero() || v >= mont_.modulus())
    throw std::invalid_argument("SchnorrGroup::deserialize: out of range");
  if (mpz::jacobi(v, mont_.modulus()) != 1)
    throw std::invalid_argument("SchnorrGroup::deserialize: not a residue");
  return Elem{.a = mont_.to_mont(v)};
}

}  // namespace ppgr::group

#include "group/schnorr_group.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "mpz/modarith.h"

namespace ppgr::group {

SchnorrGroup::SchnorrGroup(std::string name, Nat safe_prime)
    : name_(std::move(name)), mont_(std::move(safe_prime)) {
  const Nat& p = mont_.modulus();
  if (p < Nat{7}) throw std::invalid_argument("SchnorrGroup: p too small");
  q_ = Nat::sub(p, Nat{1}).shr(1);
  gen_ = mont_.to_mont(Nat{4});
}

Elem SchnorrGroup::generator() const { return Elem{.a = gen_}; }

Elem SchnorrGroup::exp_g(const Nat& scalar) const {
  std::call_once(gen_table_once_, [&] {
    gen_table_ = std::make_unique<FixedBaseTable>(*this, generator(),
                                                  q_.bit_length());
  });
  return gen_table_->exp(*this, scalar);
}

Elem SchnorrGroup::identity() const { return Elem{.a = mont_.one_mont()}; }

Elem SchnorrGroup::mul(const Elem& x, const Elem& y) const {
  return Elem{.a = mont_.mul(x.a, y.a)};
}

Elem SchnorrGroup::exp(const Elem& base, const Nat& scalar) const {
  return Elem{.a = mont_.exp(base.a, scalar)};
}

Elem SchnorrGroup::dual_exp(const Elem& x, const Nat& ex, const Elem& y,
                            const Nat& ey) const {
  // Montgomery-native 2-term Straus ladder (4-bit interleaved windows): the
  // same interleaving as the generic Group::dual_exp, evaluated directly on
  // the residues so the ~400 ladder steps skip the virtual dispatch and
  // Elem boxing of the generic path. Residues mod p have a unique
  // Montgomery form, so the result is bit-identical to the generic ladder.
  constexpr std::size_t kW = 4;
  constexpr std::size_t kDigits = std::size_t{1} << kW;
  const std::size_t bits = std::max(ex.bit_length(), ey.bit_length());
  if (bits == 0) return identity();
  std::array<Nat, kDigits> tx, ty;
  tx[1] = x.a;
  ty[1] = y.a;
  for (std::size_t d = 2; d < kDigits; ++d) {
    tx[d] = mont_.mul(tx[d - 1], x.a);
    ty[d] = mont_.mul(ty[d - 1], y.a);
  }
  // 4-bit windows at 4-bit offsets never straddle a 64-bit limb.
  const auto digit = [](const Nat& e, std::size_t pos) -> std::size_t {
    return (e.limb(pos / 64) >> (pos % 64)) & 0xF;
  };
  Nat acc;
  bool started = false;
  for (std::size_t w = (bits + kW - 1) / kW; w-- > 0;) {
    if (started) {
      acc = mont_.sqr(acc);
      acc = mont_.sqr(acc);
      acc = mont_.sqr(acc);
      acc = mont_.sqr(acc);
    }
    const std::size_t dx = digit(ex, w * kW);
    const std::size_t dy = digit(ey, w * kW);
    if (dx != 0) {
      acc = started ? mont_.mul(acc, tx[dx]) : tx[dx];
      started = true;
    }
    if (dy != 0) {
      acc = started ? mont_.mul(acc, ty[dy]) : ty[dy];
      started = true;
    }
  }
  return started ? Elem{.a = std::move(acc)} : identity();
}

Elem SchnorrGroup::inv(const Elem& x) const {
  // Extended-Euclidean field inverse: an egcd on p's few limbs is far
  // cheaper than the x^(q-1) exponentiation (a full-width ladder), and the
  // inverse is unique in Z_p*, so the result is bit-identical. Inverting
  // the Montgomery form xR directly would yield x^{-1}R^{-1}; convert out
  // and back in instead.
  const auto s = mpz::invmod(mont_.from_mont(x.a), mont_.modulus());
  if (!s.has_value())  // impossible for subgroup elements (p prime, x != 0)
    throw std::domain_error("SchnorrGroup::inv: element not invertible");
  return Elem{.a = mont_.to_mont(*s)};
}

bool SchnorrGroup::eq(const Elem& x, const Elem& y) const { return x.a == y.a; }

bool SchnorrGroup::is_identity(const Elem& x) const {
  return x.a == mont_.one_mont();
}

std::size_t SchnorrGroup::element_bytes() const {
  return (mont_.modulus().bit_length() + 7) / 8;
}

std::vector<std::uint8_t> SchnorrGroup::serialize(const Elem& x) const {
  return mont_.from_mont(x.a).to_bytes_be(element_bytes());
}

Elem SchnorrGroup::deserialize(std::span<const std::uint8_t> bytes) const {
  if (bytes.size() != element_bytes())
    throw std::invalid_argument("SchnorrGroup::deserialize: bad length");
  const Nat v = Nat::from_bytes_be(bytes);
  if (v.is_zero() || v >= mont_.modulus())
    throw std::invalid_argument("SchnorrGroup::deserialize: out of range");
  if (mpz::jacobi(v, mont_.modulus()) != 1)
    throw std::invalid_argument("SchnorrGroup::deserialize: not a residue");
  return Elem{.a = mont_.to_mont(v)};
}

}  // namespace ppgr::group

// Op-counting decorator over any Group.
//
// The paper's Sec. VI-B efficiency analysis is stated in group
// multiplications; our benchmark harness reproduces the figures by running
// the real protocols through this decorator to obtain *exact* operation
// counts, then pricing the counts with per-operation costs calibrated by
// google-benchmark (bench/micro_groupops). The decorator forwards every call
// to the wrapped group, so counted runs still produce correct protocol
// results.
#pragma once

#include <cstdint>

#include "group/group.h"

namespace ppgr::group {

struct OpCounts {
  std::uint64_t muls = 0;
  std::uint64_t exps = 0;      // variable-base exponentiations
  std::uint64_t gexps = 0;     // fixed-base (generator) exponentiations
  std::uint64_t exp_bits = 0;  // total scalar bits across exps
  std::uint64_t invs = 0;
  std::uint64_t serializations = 0;
  std::uint64_t deserializations = 0;

  OpCounts& operator+=(const OpCounts& o) {
    muls += o.muls;
    exps += o.exps;
    gexps += o.gexps;
    exp_bits += o.exp_bits;
    invs += o.invs;
    serializations += o.serializations;
    deserializations += o.deserializations;
    return *this;
  }
};

class CountingGroup final : public Group {
 public:
  /// Does not own `inner`; it must outlive this decorator.
  explicit CountingGroup(const Group& inner) : inner_(inner) {}

  [[nodiscard]] const OpCounts& counts() const { return counts_; }
  void reset() { counts_ = OpCounts{}; }

  [[nodiscard]] std::string name() const override {
    return inner_.name() + "+counting";
  }
  [[nodiscard]] const Nat& order() const override { return inner_.order(); }
  [[nodiscard]] std::size_t field_bits() const override {
    return inner_.field_bits();
  }
  [[nodiscard]] Elem generator() const override { return inner_.generator(); }
  [[nodiscard]] Elem identity() const override { return inner_.identity(); }
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override {
    ++counts_.muls;
    return inner_.mul(x, y);
  }
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override {
    ++counts_.exps;
    counts_.exp_bits += scalar.bit_length();
    return inner_.exp(base, scalar);
  }
  [[nodiscard]] Elem exp_g(const Nat& scalar) const override {
    ++counts_.gexps;
    return inner_.exp_g(scalar);
  }
  [[nodiscard]] Elem inv(const Elem& x) const override {
    ++counts_.invs;
    return inner_.inv(x);
  }
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override {
    return inner_.eq(x, y);
  }
  [[nodiscard]] bool is_identity(const Elem& x) const override {
    return inner_.is_identity(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize(const Elem& x) const override {
    ++counts_.serializations;
    return inner_.serialize(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize_many(
      std::span<const Elem> xs) const override {
    counts_.serializations += xs.size();
    return inner_.serialize_many(xs);
  }
  [[nodiscard]] Elem deserialize(std::span<const std::uint8_t> bytes) const override {
    ++counts_.deserializations;
    return inner_.deserialize(bytes);
  }
  [[nodiscard]] std::size_t element_bytes() const override {
    return inner_.element_bytes();
  }

 private:
  const Group& inner_;
  mutable OpCounts counts_;
};

}  // namespace ppgr::group

// Factory for the parameter sets evaluated in the paper, plus the embedded
// safe-prime constants for the DL groups.
//
// The safe primes below were generated once with `openssl prime -generate
// -safe` and are re-verified (p and (p-1)/2 prime, exact bit widths) by
// tests/group_test.cpp using this library's own Miller-Rabin implementation.
#include "group/group.h"

#include <stdexcept>

#include "group/ec_group.h"
#include "group/schnorr_group.h"

namespace ppgr::group {

namespace {

const char* kSafePrime1024 =
    "E4D62C336D05E5BDB82AB3D4BBF2BF5CA32BC3B3DCD2C857BE95099C7399589BDDB6FC5C"
    "8515A2D501F3296BCF100146F53FC959F99AE52C8D69DC495A9F216321B96FAB73ACAB22"
    "733705696B435EFA63AAE15E2C80BC12292C6F5587E27BE91940B135CF249C046A96806B"
    "9FB7426D1A81729A378C83146DB1F01F3E4700C3";

const char* kSafePrime2048 =
    "DF7101199C884F3E1EE991B69143E0EBD453186C7D7714895DA70D95FD2E2CD09C3C8536"
    "8066BB1B07FBCA112D69EFAEAC5D701A0FB78ACE2D3FC06889CCC6B48F804B4EAA285917"
    "30BAD0245C183A8DECC9BF84C79978343EB3A06147AF97D8DD2C78B1C2D39CEF1EACB22C"
    "50740AAC5E5E586A186EFC57A0D02C9DD96632B502FEBFCEB212A8423FFE15E516702D66"
    "F956BCF4BFC7D18FBC245E15B9EA3DFE08404B2EDEA845E114E3E49F498E805F9CF675A2"
    "A6692532F3B01777EADFFADFD0F9E40382754DE085131C068E04B36CA18808564B956DF5"
    "7986B5D162C6AC417028084AD454078C36253F3749CD369F272D943FFFC181E8DA086954"
    "6628B127";

const char* kSafePrime3072 =
    "FACA24F5F0CFBB891B475E6C0C3C3C7E127206625E33021AC872745DF52ED069EFB12063"
    "76AA6CB8FDD6DEB0C96161BA3E0E28E65BAA2287A7B40C1C50352A5D12951F224DB90AD7"
    "37A0B58C09640C1FB998E9C3F47FCF975E1485A504582EECD0DA2D0E5B42F60D8557F85E"
    "8AAFFD56C582251E184A341EAA3D80714E84328C065C04F97271B4505DEC3E54B4536FAC"
    "158AF72712F6BAFAF4D3E7072566651E2467EFE84ABED23DECF0ADF0BC905800830106EA"
    "3AC23218C7FD67B7D5D8F6DE5D268038F1543BA8D72A23685B76B2A765A1F1DF2033E060"
    "89F1532B65E760913ABC6D4140AA7AB2884E3D29F38D1A4B8DB2AF76EEF7B107356B2BA2"
    "02D3FBBB8181707496B10F2B8CA5ADD809DE4B7D5F86D1CDE32A09C77B3955A514015069"
    "D65B48378AE2344DF61D82B5AEA889723741E3A117F0AEB2A67986551ECC54C6208E0795"
    "5C1E845E14D2442100C3DD6983495460FB92B0124437472480579A347C357E39C798A27C"
    "1F4B75D0418FC09E709374110582EE6BD501808C04A1CC17";

// Small (256-bit) safe prime for fast unit tests; NOT cryptographically
// meaningful at this size.
const char* kSafePrimeTest256 =
    "F3831F59EF561EC1F0C3DE1DAFCA953D36133ACA9693A0C63BFFE9BB472ED7C7";

}  // namespace

std::unique_ptr<Group> make_group(GroupId id) {
  switch (id) {
    case GroupId::kDl1024:
      return std::make_unique<SchnorrGroup>("dl-1024",
                                            Nat::from_hex(kSafePrime1024));
    case GroupId::kDl2048:
      return std::make_unique<SchnorrGroup>("dl-2048",
                                            Nat::from_hex(kSafePrime2048));
    case GroupId::kDl3072:
      return std::make_unique<SchnorrGroup>("dl-3072",
                                            Nat::from_hex(kSafePrime3072));
    case GroupId::kEcP192:
      return std::make_unique<EcGroup>(nist_p192());
    case GroupId::kEcP224:
      return std::make_unique<EcGroup>(nist_p224());
    case GroupId::kEcP256:
      return std::make_unique<EcGroup>(nist_p256());
    case GroupId::kDlTest256:
      return std::make_unique<SchnorrGroup>("dl-test-256",
                                            Nat::from_hex(kSafePrimeTest256));
  }
  throw std::invalid_argument("make_group: unknown GroupId");
}

std::string to_string(GroupId id) { return make_group(id)->name(); }

}  // namespace ppgr::group

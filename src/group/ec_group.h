// The "ECC" instantiation of the paper's DDH group: a prime-order
// short-Weierstrass elliptic curve y^2 = x^3 + ax + b over Z_p, written
// multiplicatively to match the Group interface (mul = point addition,
// exp = scalar multiplication).
//
// We ship the NIST P-192 / P-224 / P-256 curves (all with cofactor 1 and
// a = -3), the standardized equivalents of the "160/224/256-bit ECC group"
// security levels compared in the paper's Fig. 3(a). Internally points are
// kept in Jacobian coordinates (X, Y, Z) with field elements in Montgomery
// form; serialization is the affine uncompressed SEC1 format 0x04 || x || y
// (0x00 for the identity).
#pragma once

#include <mutex>
#include <memory>

#include "group/fixed_base.h"
#include "group/group.h"
#include "mpz/fp.h"

namespace ppgr::group {

/// Short-Weierstrass curve parameters (affine, standard representation).
struct CurveParams {
  std::string name;
  Nat p;      // field prime
  Nat a;      // usually p - 3
  Nat b;
  Nat gx;     // base point
  Nat gy;
  Nat order;  // prime order n (cofactor must be 1)
};

class EcGroup final : public Group {
 public:
  explicit EcGroup(CurveParams params);

  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] const Nat& order() const override { return params_.order; }
  [[nodiscard]] std::size_t field_bits() const override {
    return field_.bits();
  }
  [[nodiscard]] const mpz::FpCtx& field() const { return field_; }

  [[nodiscard]] Elem generator() const override { return gen_; }
  [[nodiscard]] Elem exp_g(const Nat& scalar) const override;
  [[nodiscard]] Elem identity() const override { return Elem{.infinity = true}; }
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override;
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override;
  [[nodiscard]] Elem inv(const Elem& x) const override;
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override;
  [[nodiscard]] bool is_identity(const Elem& x) const override {
    return x.infinity;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize(const Elem& x) const override;
  /// Batched serialization: normalizes every non-identity point to affine
  /// with ONE field inversion (FpCtx::inv_many, Montgomery's trick) instead
  /// of one per point. Byte-identical to the per-element form.
  [[nodiscard]] std::vector<std::uint8_t> serialize_many(
      std::span<const Elem> xs) const override;
  [[nodiscard]] Elem deserialize(std::span<const std::uint8_t> bytes) const override;
  [[nodiscard]] std::size_t element_bytes() const override;

  /// Affine coordinates (standard form). Throws on the identity.
  [[nodiscard]] std::pair<Nat, Nat> to_affine(const Elem& pt) const;
  /// Point from affine coordinates; validates the curve equation.
  [[nodiscard]] Elem from_affine(const Nat& x, const Nat& y) const;
  /// Curve-equation check on affine (standard-form) coordinates.
  [[nodiscard]] bool on_curve(const Nat& x, const Nat& y) const;

 private:
  [[nodiscard]] Elem dbl(const Elem& pt) const;

  CurveParams params_;
  mpz::FpCtx field_;
  Nat a_mont_;  // curve a in Montgomery form
  Nat b_mont_;
  Elem gen_;
  // Lazily built comb table for the generator; call_once-guarded so
  // concurrent exp_g calls from the parallel engine are race-free.
  mutable std::once_flag gen_table_once_;
  mutable std::unique_ptr<FixedBaseTable> gen_table_;
};

/// Built-in curves.
[[nodiscard]] CurveParams nist_p192();
[[nodiscard]] CurveParams nist_p224();
[[nodiscard]] CurveParams nist_p256();

}  // namespace ppgr::group

// Metrics-emitting decorator over any Group.
//
// The observability analogue of CountingGroup: every interface-level call is
// reported to the runtime metrics funnel (runtime::count_op) and then
// forwarded to the wrapped group. Counting at the *interface* — not inside
// the concrete groups — is deliberate and must match CountingGroup exactly:
// SchnorrGroup::exp_g runs internal comb-table multiplications that the
// Sec. VI-B model does not price, so instrumenting the concrete groups would
// break the model-vs-measured exact-match check in bench/validate_model.
//
// With no metrics sink installed on the calling thread, each report is a
// thread-local load plus an untaken branch; with PPGR_DISABLE_METRICS the
// decorator degenerates to pure forwarding.
#pragma once

#include "group/group.h"
#include "runtime/metrics.h"

namespace ppgr::group {

class MeteredGroup final : public Group {
 public:
  /// Does not own `inner`; it must outlive this decorator.
  explicit MeteredGroup(const Group& inner) : inner_(inner) {}

  [[nodiscard]] std::string name() const override {
    return inner_.name() + "+metered";
  }
  [[nodiscard]] const Nat& order() const override { return inner_.order(); }
  [[nodiscard]] std::size_t field_bits() const override {
    return inner_.field_bits();
  }
  [[nodiscard]] Elem generator() const override { return inner_.generator(); }
  [[nodiscard]] Elem identity() const override { return inner_.identity(); }
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override {
    runtime::count_op(runtime::CryptoOp::kGroupMul);
    return inner_.mul(x, y);
  }
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override {
    runtime::count_op(runtime::CryptoOp::kGroupExp);
    return inner_.exp(base, scalar);
  }
  [[nodiscard]] Elem exp_g(const Nat& scalar) const override {
    runtime::count_op(runtime::CryptoOp::kGroupExpG);
    return inner_.exp_g(scalar);
  }
  [[nodiscard]] Elem inv(const Elem& x) const override {
    runtime::count_op(runtime::CryptoOp::kGroupInv);
    return inner_.inv(x);
  }
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override {
    return inner_.eq(x, y);
  }
  [[nodiscard]] bool is_identity(const Elem& x) const override {
    return inner_.is_identity(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      const Elem& x) const override {
    runtime::count_op(runtime::CryptoOp::kGroupSerialize);
    return inner_.serialize(x);
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize_many(
      std::span<const Elem> xs) const override {
    // Still xs.size() logical serializations, however the inner group
    // batches the work (the model prices encodings, not inversions).
    runtime::count_op(runtime::CryptoOp::kGroupSerialize, xs.size());
    return inner_.serialize_many(xs);
  }
  [[nodiscard]] Elem deserialize(
      std::span<const std::uint8_t> bytes) const override {
    runtime::count_op(runtime::CryptoOp::kGroupDeserialize);
    return inner_.deserialize(bytes);
  }
  [[nodiscard]] std::size_t element_bytes() const override {
    return inner_.element_bytes();
  }

 private:
  const Group& inner_;
};

}  // namespace ppgr::group

#include "group/ec_group.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "runtime/metrics.h"

namespace ppgr::group {

namespace {
// Jacobian <-> affine convention: x = X/Z^2, y = Y/Z^3; identity has
// infinity=true (coordinates unused).
}  // namespace

EcGroup::EcGroup(CurveParams params)
    : params_(std::move(params)), field_(params_.p) {
  a_mont_ = field_.to(params_.a);
  b_mont_ = field_.to(params_.b);
  if (!on_curve(params_.gx, params_.gy))
    throw std::invalid_argument("EcGroup: base point not on curve");
  gen_ = Elem{.a = field_.to(params_.gx),
              .b = field_.to(params_.gy),
              .c = field_.one()};
}

bool EcGroup::on_curve(const Nat& x, const Nat& y) const {
  const Nat xm = field_.to(x), ym = field_.to(y);
  const Nat lhs = field_.sqr(ym);
  const Nat rhs = field_.add(
      field_.add(field_.mul(field_.sqr(xm), xm), field_.mul(a_mont_, xm)),
      b_mont_);
  return lhs == rhs;
}

Elem EcGroup::from_affine(const Nat& x, const Nat& y) const {
  if (!on_curve(x, y))
    throw std::invalid_argument("EcGroup::from_affine: point not on curve");
  return Elem{.a = field_.to(x), .b = field_.to(y), .c = field_.one()};
}

std::pair<Nat, Nat> EcGroup::to_affine(const Elem& pt) const {
  if (pt.infinity)
    throw std::domain_error("EcGroup::to_affine: identity has no coordinates");
  const Nat zinv = field_.inv(pt.c);
  const Nat zinv2 = field_.sqr(zinv);
  const Nat x = field_.mul(pt.a, zinv2);
  const Nat y = field_.mul(pt.b, field_.mul(zinv2, zinv));
  return {field_.from(x), field_.from(y)};
}

Elem EcGroup::dbl(const Elem& pt) const {
  if (pt.infinity || pt.b.is_zero()) return identity();
  const auto& f = field_;
  // a = -3 speedup: M = 3(X - Z^2)(X + Z^2).
  const Nat z2 = f.sqr(pt.c);
  const Nat m = [&] {
    if (params_.a == Nat::sub(params_.p, Nat{3})) {
      const Nat t = f.mul(f.sub(pt.a, z2), f.add(pt.a, z2));
      return f.add(f.add(t, t), t);
    }
    const Nat x2 = f.sqr(pt.a);
    return f.add(f.add(f.add(x2, x2), x2), f.mul(a_mont_, f.sqr(z2)));
  }();
  const Nat y2 = f.sqr(pt.b);
  const Nat s4 = f.mul(pt.a, y2);
  const Nat s = f.add(f.add(s4, s4), f.add(s4, s4));  // 4XY^2
  const Nat x3 = f.sub(f.sqr(m), f.add(s, s));
  const Nat y4 = f.sqr(y2);
  Nat y8 = f.add(y4, y4);
  y8 = f.add(y8, y8);
  y8 = f.add(y8, y8);  // 8Y^4
  const Nat y3 = f.sub(f.mul(m, f.sub(s, x3)), y8);
  const Nat yz = f.mul(pt.b, pt.c);
  return Elem{.a = x3, .b = y3, .c = f.add(yz, yz)};
}

Elem EcGroup::mul(const Elem& x, const Elem& y) const {
  if (x.infinity) return y;
  if (y.infinity) return x;
  const auto& f = field_;
  const Nat z1sq = f.sqr(x.c), z2sq = f.sqr(y.c);
  const Nat u1 = f.mul(x.a, z2sq);
  const Nat u2 = f.mul(y.a, z1sq);
  const Nat s1 = f.mul(x.b, f.mul(z2sq, y.c));
  const Nat s2 = f.mul(y.b, f.mul(z1sq, x.c));
  if (u1 == u2) {
    if (s1 != s2) return identity();  // P + (-P)
    return dbl(x);
  }
  const Nat h = f.sub(u2, u1);
  const Nat r = f.sub(s2, s1);
  const Nat h2 = f.sqr(h);
  const Nat h3 = f.mul(h2, h);
  const Nat u1h2 = f.mul(u1, h2);
  const Nat x3 = f.sub(f.sub(f.sqr(r), h3), f.add(u1h2, u1h2));
  const Nat y3 = f.sub(f.mul(r, f.sub(u1h2, x3)), f.mul(s1, h3));
  const Nat z3 = f.mul(h, f.mul(x.c, y.c));
  return Elem{.a = x3, .b = y3, .c = z3};
}

Elem EcGroup::exp(const Elem& base, const Nat& scalar) const {
  if (base.infinity || scalar.is_zero()) return identity();
  // 4-bit left-to-right window.
  std::array<Elem, 16> table;
  table[0] = identity();
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base);

  const std::size_t nbits = scalar.bit_length();
  const std::size_t windows = (nbits + 3) / 4;
  Elem acc = identity();
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
    }
    std::size_t nib = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t idx = w * 4 + b;
      if (idx < nbits && scalar.bit(idx)) nib |= (1u << b);
    }
    if (nib != 0) {
      acc = started ? mul(acc, table[nib]) : table[nib];
      started = true;
    }
  }
  return acc;
}

Elem EcGroup::exp_g(const Nat& scalar) const {
  std::call_once(gen_table_once_, [&] {
    gen_table_ = std::make_unique<FixedBaseTable>(
        *this, gen_, params_.order.bit_length());
  });
  return gen_table_->exp(*this, scalar);
}

Elem EcGroup::inv(const Elem& x) const {
  if (x.infinity) return x;
  return Elem{.a = x.a, .b = field_.neg(x.b), .c = x.c};
}

bool EcGroup::eq(const Elem& x, const Elem& y) const {
  if (x.infinity || y.infinity) return x.infinity == y.infinity;
  // Cross-multiplied Jacobian comparison: X1 Z2^2 == X2 Z1^2 and
  // Y1 Z2^3 == Y2 Z1^3.
  const auto& f = field_;
  const Nat z1sq = f.sqr(x.c), z2sq = f.sqr(y.c);
  if (f.mul(x.a, z2sq) != f.mul(y.a, z1sq)) return false;
  return f.mul(x.b, f.mul(z2sq, y.c)) == f.mul(y.b, f.mul(z1sq, x.c));
}

std::size_t EcGroup::element_bytes() const {
  return 1 + 2 * ((field_.bits() + 7) / 8);
}

std::vector<std::uint8_t> EcGroup::serialize(const Elem& x) const {
  std::vector<std::uint8_t> out(element_bytes(), 0);
  if (x.infinity) return out;  // all-zero encoding for the identity
  const auto [ax, ay] = to_affine(x);
  const std::size_t fb = (field_.bits() + 7) / 8;
  out[0] = 0x04;
  const auto xb = ax.to_bytes_be(fb), yb = ay.to_bytes_be(fb);
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  std::copy(yb.begin(), yb.end(), out.begin() + 1 + static_cast<std::ptrdiff_t>(fb));
  return out;
}

std::vector<std::uint8_t> EcGroup::serialize_many(
    std::span<const Elem> xs) const {
  const std::size_t eb = element_bytes();
  const std::size_t fb = (field_.bits() + 7) / 8;
  std::vector<std::uint8_t> out(xs.size() * eb, 0);
  // One batched inversion over every finite point's Z coordinate.
  std::vector<Nat> zs;
  zs.reserve(xs.size());
  for (const Elem& pt : xs)
    if (!pt.infinity) zs.push_back(pt.c);
  if (zs.empty()) return out;  // all identities: all-zero encodings
  const std::vector<Nat> zinvs = field_.inv_many(zs);
  runtime::count_op(runtime::CryptoOp::kAccelBatchInverse, zinvs.size());
  std::size_t zi = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Elem& pt = xs[i];
    if (pt.infinity) continue;
    const Nat& zinv = zinvs[zi++];
    const Nat zinv2 = field_.sqr(zinv);
    const Nat ax = field_.from(field_.mul(pt.a, zinv2));
    const Nat ay = field_.from(field_.mul(pt.b, field_.mul(zinv2, zinv)));
    std::uint8_t* dst = out.data() + i * eb;
    dst[0] = 0x04;
    const auto xb = ax.to_bytes_be(fb), yb = ay.to_bytes_be(fb);
    std::copy(xb.begin(), xb.end(), dst + 1);
    std::copy(yb.begin(), yb.end(), dst + 1 + fb);
  }
  return out;
}

Elem EcGroup::deserialize(std::span<const std::uint8_t> bytes) const {
  if (bytes.size() != element_bytes())
    throw std::invalid_argument("EcGroup::deserialize: bad length");
  if (bytes[0] == 0x00) return identity();
  if (bytes[0] != 0x04)
    throw std::invalid_argument("EcGroup::deserialize: bad prefix");
  const std::size_t fb = (field_.bits() + 7) / 8;
  const Nat x = Nat::from_bytes_be(bytes.subspan(1, fb));
  const Nat y = Nat::from_bytes_be(bytes.subspan(1 + fb, fb));
  return from_affine(x, y);  // validates curve membership
}

CurveParams nist_p192() {
  const Nat p = Nat::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  return CurveParams{
      .name = "ecc-p192",
      .p = p,
      .a = Nat::sub(p, Nat{3}),
      .b = Nat::from_hex("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1"),
      .gx = Nat::from_hex("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012"),
      .gy = Nat::from_hex("07192b95ffc8da78631011ed6b24cdd573f977a11e794811"),
      .order = Nat::from_hex("ffffffffffffffffffffffff99def836146bc9b1b4d22831"),
  };
}

CurveParams nist_p224() {
  const Nat p =
      Nat::from_hex("ffffffffffffffffffffffffffffffff000000000000000000000001");
  return CurveParams{
      .name = "ecc-p224",
      .p = p,
      .a = Nat::sub(p, Nat{3}),
      .b = Nat::from_hex(
          "b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4"),
      .gx = Nat::from_hex(
          "b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21"),
      .gy = Nat::from_hex(
          "bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34"),
      .order = Nat::from_hex(
          "ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d"),
  };
}

CurveParams nist_p256() {
  const Nat p = Nat::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  return CurveParams{
      .name = "ecc-p256",
      .p = p,
      .a = Nat::sub(p, Nat{3}),
      .b = Nat::from_hex(
          "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
      .gx = Nat::from_hex(
          "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
      .gy = Nat::from_hex(
          "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
      .order = Nat::from_hex(
          "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"),
  };
}

}  // namespace ppgr::group

// A cheap-but-consistent group for cost accounting.
//
// The benchmark harness needs *exact per-protocol operation counts* at
// parameter scales (n up to 70, 1024-3072-bit DL groups) where executing the
// real exponentiations would take hours on one core. Every phase-2 operation
// count in the framework is data-independent, so the counts obtained by
// running the protocol over ANY consistent group are the counts of the real
// run. MockGroup is that group: arithmetic in Z_p* for the Mersenne prime
// p = 2^61 - 1 (single-word Montgomery-free math), declared order p-1 so
// protocol-level scalar arithmetic mod q stays consistent with the group
// (ord(g) divides p-1). It is NOT secure and must never leave bench code.
//
// element_bytes() is configurable so recorded communication traces carry the
// byte sizes of the group being modeled (e.g. a 1024-bit DL element).
#pragma once

#include "group/group.h"

namespace ppgr::group {

class MockGroup final : public Group {
 public:
  /// `modeled_elem_bytes`/`modeled_field_bits` report as the group being
  /// priced (for trace byte accounting); internal math is 61-bit.
  MockGroup(std::string name, std::size_t modeled_elem_bytes,
            std::size_t modeled_field_bits);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] const Nat& order() const override { return order_; }
  [[nodiscard]] std::size_t field_bits() const override { return field_bits_; }

  [[nodiscard]] Elem generator() const override;
  [[nodiscard]] Elem identity() const override;
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override;
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override;
  [[nodiscard]] Elem inv(const Elem& x) const override;
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override;
  [[nodiscard]] bool is_identity(const Elem& x) const override;

  [[nodiscard]] std::vector<std::uint8_t> serialize(const Elem& x) const override;
  [[nodiscard]] Elem deserialize(std::span<const std::uint8_t> bytes) const override;
  [[nodiscard]] std::size_t element_bytes() const override { return elem_bytes_; }

 private:
  std::string name_;
  std::size_t elem_bytes_;
  std::size_t field_bits_;
  Nat order_;  // p - 1 = 2^61 - 2
};

}  // namespace ppgr::group

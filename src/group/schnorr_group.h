// The "DL" instantiation of the paper's DDH group (Sec. IV-B): the subgroup
// of quadratic residues modulo a safe prime p = 2q + 1, which has prime
// order q. The generator is 4 = 2^2, a quadratic residue for every p > 5.
//
// The production parameter sets (1024/2048/3072 bits, matching the security
// levels compared in Fig. 3(a)) are fixed safe primes generated once with a
// verified generator and re-checked by the test suite using the library's own
// Miller-Rabin implementation.
#pragma once

#include <mutex>
#include <memory>

#include "group/fixed_base.h"
#include "group/group.h"
#include "mpz/mont.h"

namespace ppgr::group {

class SchnorrGroup final : public Group {
 public:
  /// p must be a safe prime (p = 2q+1, both prime). Verified lazily by the
  /// test suite, not on construction (3072-bit primality proofs are slow).
  explicit SchnorrGroup(std::string name, Nat safe_prime);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] const Nat& order() const override { return q_; }
  [[nodiscard]] std::size_t field_bits() const override {
    return mont_.modulus().bit_length();
  }
  [[nodiscard]] const Nat& modulus() const { return mont_.modulus(); }

  [[nodiscard]] Elem generator() const override;
  [[nodiscard]] Elem exp_g(const Nat& scalar) const override;
  [[nodiscard]] Elem identity() const override;
  [[nodiscard]] Elem mul(const Elem& x, const Elem& y) const override;
  [[nodiscard]] Elem exp(const Elem& base, const Nat& scalar) const override;
  [[nodiscard]] Elem dual_exp(const Elem& x, const Nat& ex, const Elem& y,
                              const Nat& ey) const override;
  [[nodiscard]] Elem inv(const Elem& x) const override;
  [[nodiscard]] bool eq(const Elem& x, const Elem& y) const override;
  [[nodiscard]] bool is_identity(const Elem& x) const override;

  [[nodiscard]] std::vector<std::uint8_t> serialize(const Elem& x) const override;
  [[nodiscard]] Elem deserialize(std::span<const std::uint8_t> bytes) const override;
  [[nodiscard]] std::size_t element_bytes() const override;

 private:
  std::string name_;
  mpz::MontCtx mont_;
  Nat q_;        // (p-1)/2
  Nat gen_;      // 4, in Montgomery form
  // Lazily built comb table for the generator; call_once-guarded so
  // concurrent exp_g calls from the parallel engine are race-free.
  mutable std::once_flag gen_table_once_;
  mutable std::unique_ptr<FixedBaseTable> gen_table_;
};

}  // namespace ppgr::group

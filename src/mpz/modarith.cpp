#include "mpz/modarith.h"

#include <stdexcept>
#include <utility>

#include "mpz/mont.h"
#include "mpz/sint.h"

namespace ppgr::mpz {

Nat gcd(Nat a, Nat b) {
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;
  // Binary GCD.
  std::size_t shift = 0;
  while (a.is_even() && b.is_even()) {
    a = a.shr(1);
    b = b.shr(1);
    ++shift;
  }
  while (a.is_even()) a = a.shr(1);
  while (!b.is_zero()) {
    while (b.is_even()) b = b.shr(1);
    if (a > b) std::swap(a, b);
    b = Nat::sub(b, a);
  }
  return a.shl(shift);
}

std::optional<Nat> invmod(const Nat& a, const Nat& m) {
  if (m <= Nat{1}) throw std::invalid_argument("invmod: modulus must be > 1");
  // Extended Euclid over signed integers.
  Int old_r = Int::from_nat(a % m), r = Int::from_nat(m);
  Int old_s{1}, s{0};
  while (!r.is_zero()) {
    const Int q = Int::divrem(old_r, r).quot;
    Int tmp = old_r - q * r;
    old_r = std::exchange(r, std::move(tmp));
    tmp = old_s - q * s;
    old_s = std::exchange(s, std::move(tmp));
  }
  if (old_r != Int{1}) return std::nullopt;  // not coprime
  return old_s.mod(m);
}

Nat powmod(const Nat& base, const Nat& e, const Nat& m) {
  if (m.is_zero()) throw std::domain_error("powmod: zero modulus");
  if (m.is_one()) return Nat{};
  if (m.is_odd()) {
    const MontCtx ctx{m};
    return ctx.from_mont(ctx.exp(ctx.to_mont(base % m), e));
  }
  // Plain square-and-multiply with division-based reduction (rare path).
  Nat acc{1};
  Nat b = base % m;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = Nat::mul(acc, acc) % m;
    if (e.bit(i)) acc = Nat::mul(acc, b) % m;
  }
  return acc;
}

int jacobi(Nat a, Nat n) {
  if (n.is_even() || n.is_zero())
    throw std::invalid_argument("jacobi: n must be odd and positive");
  a = a % n;
  int result = 1;
  while (!a.is_zero()) {
    while (a.is_even()) {
      a = a.shr(1);
      const Limb n_mod_8 = n.limb(0) & 7u;
      if (n_mod_8 == 3 || n_mod_8 == 5) result = -result;
    }
    std::swap(a, n);
    if ((a.limb(0) & 3u) == 3 && (n.limb(0) & 3u) == 3) result = -result;
    a = a % n;
  }
  return n.is_one() ? result : 0;
}

std::optional<Nat> sqrtmod(const Nat& a, const Nat& p) {
  const Nat a_red = a % p;
  if (a_red.is_zero()) return Nat{};
  if (jacobi(a_red, p) != 1) return std::nullopt;
  const Nat one{1};
  if ((p.limb(0) & 3u) == 3) {
    // p ≡ 3 (mod 4): sqrt = a^((p+1)/4).
    return powmod(a_red, Nat::add(p, one).shr(2), p);
  }
  // Tonelli–Shanks. Write p-1 = q * 2^s with q odd.
  Nat q = Nat::sub(p, one);
  std::size_t s = 0;
  while (q.is_even()) {
    q = q.shr(1);
    ++s;
  }
  // Find a quadratic non-residue z.
  Nat z{2};
  while (jacobi(z, p) != -1) z += one;

  Nat m_exp{static_cast<Limb>(s)};
  std::size_t m = s;
  Nat c = powmod(z, q, p);
  Nat t = powmod(a_red, q, p);
  Nat r = powmod(a_red, Nat::add(q, one).shr(1), p);
  while (!t.is_one()) {
    // Find least i in (0, m) with t^(2^i) == 1.
    std::size_t i = 0;
    Nat t2 = t;
    while (!t2.is_one()) {
      t2 = Nat::mul(t2, t2) % p;
      ++i;
      if (i == m) return std::nullopt;  // unreachable for prime p
    }
    const Nat b = powmod(c, Nat::pow2(m - i - 1), p);
    m = i;
    c = Nat::mul(b, b) % p;
    t = Nat::mul(t, c) % p;
    r = Nat::mul(r, b) % p;
  }
  return r;
}

BarrettCtx::BarrettCtx(Nat modulus) : m_(std::move(modulus)) {
  if (m_ <= Nat{1}) throw std::invalid_argument("BarrettCtx: modulus must be > 1");
  k_ = m_.limb_count();
  mu_ = Nat::pow2(2 * 64 * k_) / m_;
}

Nat BarrettCtx::reduce(const Nat& a) const {
  // Classic Barrett: q = floor(floor(a / b^(k-1)) * mu / b^(k+1)), with
  // b = 2^64; then at most two correction subtractions.
  const Nat q1 = a.shr(64 * (k_ - 1));
  const Nat q2 = Nat::mul(q1, mu_);
  const Nat q3 = q2.shr(64 * (k_ + 1));
  Nat r = Nat::sub(a, Nat::mul(q3, m_));
  while (r >= m_) r = Nat::sub(r, m_);
  return r;
}

}  // namespace ppgr::mpz

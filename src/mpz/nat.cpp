#include "mpz/nat.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

namespace ppgr::mpz {

namespace {

using U128 = unsigned __int128;

constexpr std::size_t kLimbBits = 64;

// a*b -> (hi, lo)
inline void mul64(Limb a, Limb b, Limb& hi, Limb& lo) {
  const U128 p = static_cast<U128>(a) * b;
  hi = static_cast<Limb>(p >> 64);
  lo = static_cast<Limb>(p);
}

}  // namespace

Nat::Nat(Limb v) {
  if (v != 0) limbs_.push_back(v);
}

void Nat::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Nat Nat::from_limbs(std::span<const Limb> limbs) {
  Nat n;
  n.limbs_.assign(limbs.begin(), limbs.end());
  n.normalize();
  return n;
}

Nat Nat::pow2(std::size_t k) {
  Nat n;
  n.limbs_.assign(k / kLimbBits + 1, 0);
  n.limbs_.back() = Limb{1} << (k % kLimbBits);
  return n;
}

std::size_t Nat::bit_length() const {
  if (limbs_.empty()) return 0;
  return limbs_.size() * kLimbBits -
         static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool Nat::bit(std::size_t i) const {
  const std::size_t li = i / kLimbBits;
  if (li >= limbs_.size()) return false;
  return (limbs_[li] >> (i % kLimbBits)) & 1u;
}

void Nat::set_bit(std::size_t i, bool v) {
  const std::size_t li = i / kLimbBits;
  if (li >= limbs_.size()) {
    if (!v) return;
    limbs_.resize(li + 1, 0);
  }
  const Limb mask = Limb{1} << (i % kLimbBits);
  if (v) {
    limbs_[li] |= mask;
  } else {
    limbs_[li] &= ~mask;
    normalize();
  }
}

int Nat::cmp(const Nat& a, const Nat& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Nat Nat::add(const Nat& a, const Nat& b) {
  const Nat& lo = a.limbs_.size() <= b.limbs_.size() ? a : b;
  const Nat& hi = a.limbs_.size() <= b.limbs_.size() ? b : a;
  Nat out;
  out.limbs_.resize(hi.limbs_.size() + 1, 0);
  Limb carry = 0;
  std::size_t i = 0;
  for (; i < lo.limbs_.size(); ++i) {
    const U128 s = static_cast<U128>(hi.limbs_[i]) + lo.limbs_[i] + carry;
    out.limbs_[i] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> 64);
  }
  for (; i < hi.limbs_.size(); ++i) {
    const U128 s = static_cast<U128>(hi.limbs_[i]) + carry;
    out.limbs_[i] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> 64);
  }
  out.limbs_[i] = carry;
  out.normalize();
  return out;
}

Nat Nat::sub(const Nat& a, const Nat& b) {
  if (cmp(a, b) < 0) throw std::domain_error("Nat::sub: underflow (a < b)");
  Nat out;
  out.limbs_.resize(a.limbs_.size(), 0);
  Limb borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const Limb bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const Limb ai = a.limbs_[i];
    const Limb d = ai - bi - borrow;
    // Borrow occurred iff we wrapped: bi + borrow > ai.
    borrow = (borrow != 0) ? (ai <= bi ? 1 : 0) : (ai < bi ? 1 : 0);
    out.limbs_[i] = d;
  }
  out.normalize();
  return out;
}

Nat Nat::mul_schoolbook(const Nat& a, const Nat& b) {
  if (a.is_zero() || b.is_zero()) return Nat{};
  Nat out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    Limb carry = 0;
    const Limb ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const U128 t = static_cast<U128>(ai) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<Limb>(t);
      carry = static_cast<Limb>(t >> 64);
    }
    out.limbs_[i + b.limbs_.size()] = carry;
  }
  out.normalize();
  return out;
}

Nat Nat::mul_karatsuba(const Nat& a, const Nat& b) {
  const std::size_t half = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  auto split = [half](const Nat& x) {
    Nat lo, hi;
    if (x.limbs_.size() <= half) {
      lo = x;
    } else {
      lo.limbs_.assign(x.limbs_.begin(),
                       x.limbs_.begin() + static_cast<std::ptrdiff_t>(half));
      lo.normalize();
      hi.limbs_.assign(x.limbs_.begin() + static_cast<std::ptrdiff_t>(half),
                       x.limbs_.end());
      hi.normalize();
    }
    return std::pair<Nat, Nat>{std::move(lo), std::move(hi)};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  const Nat z0 = mul(a0, b0);
  const Nat z2 = mul(a1, b1);
  // z1 = (a0+a1)(b0+b1) - z0 - z2
  const Nat z1 = sub(sub(mul(add(a0, a1), add(b0, b1)), z0), z2);
  return add(add(z0, z1.shl(half * kLimbBits)), z2.shl(2 * half * kLimbBits));
}

Nat Nat::mul(const Nat& a, const Nat& b) {
  const std::size_t mn = std::min(a.limbs_.size(), b.limbs_.size());
  if (mn >= kKaratsubaThreshold) return mul_karatsuba(a, b);
  return mul_schoolbook(a, b);
}

Nat Nat::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    if (bits == 0) return *this;
    return Nat{};
  }
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  Nat out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
  }
  out.normalize();
  return out;
}

Nat Nat::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return Nat{};
  const std::size_t bit_shift = bits % kLimbBits;
  Nat out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift]
                                   : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
  }
  out.normalize();
  return out;
}

Nat::DivRem Nat::divrem(const Nat& a, const Nat& b) {
  if (b.is_zero()) throw std::domain_error("Nat::divrem: division by zero");
  if (cmp(a, b) < 0) return {Nat{}, a};
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const Limb d = b.limbs_[0];
    Nat q;
    q.limbs_.assign(a.limbs_.size(), 0);
    U128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const U128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {std::move(q), Nat{static_cast<Limb>(rem)}};
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const std::size_t n = b.limbs_.size();
  const std::size_t m = a.limbs_.size() - n;
  const unsigned shift =
      static_cast<unsigned>(std::countl_zero(b.limbs_.back()));
  // Normalized copies; un gets an extra high limb.
  std::vector<Limb> vn(n), un(a.limbs_.size() + 1, 0);
  for (std::size_t i = n; i-- > 0;) {
    vn[i] = (b.limbs_[i] << shift);
    if (shift != 0 && i > 0) vn[i] |= b.limbs_[i - 1] >> (64 - shift);
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    un[i] = (a.limbs_[i] << shift);
    if (shift != 0 && i > 0) un[i] |= a.limbs_[i - 1] >> (64 - shift);
  }
  if (shift != 0) un[a.limbs_.size()] = a.limbs_.back() >> (64 - shift);

  Nat q;
  q.limbs_.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    const U128 num = (static_cast<U128>(un[j + n]) << 64) | un[j + n - 1];
    U128 qhat = num / vn[n - 1];
    U128 rhat = num % vn[n - 1];
    while (qhat >= (U128{1} << 64) ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (U128{1} << 64)) break;
    }
    // Multiply-subtract: un[j..j+n] -= qhat * vn.
    Limb borrow = 0, carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Limb phi, plo;
      mul64(static_cast<Limb>(qhat), vn[i], phi, plo);
      const U128 pl = static_cast<U128>(plo) + carry;
      plo = static_cast<Limb>(pl);
      phi += static_cast<Limb>(pl >> 64);
      const Limb u = un[i + j];
      const Limb d = u - plo - borrow;
      borrow = (borrow != 0) ? (u <= plo ? 1 : 0) : (u < plo ? 1 : 0);
      un[i + j] = d;
      carry = phi;
    }
    const Limb utop = un[j + n];
    const Limb dtop = utop - carry - borrow;
    const bool neg =
        (borrow != 0) ? (utop <= carry) : (utop < carry);
    un[j + n] = dtop;

    if (neg) {
      // Add back one multiple of vn (happens with prob ~2/2^64).
      --qhat;
      Limb c2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const U128 s = static_cast<U128>(un[i + j]) + vn[i] + c2;
        un[i + j] = static_cast<Limb>(s);
        c2 = static_cast<Limb>(s >> 64);
      }
      un[j + n] += c2;
    }
    q.limbs_[j] = static_cast<Limb>(qhat);
  }
  q.normalize();

  Nat r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  return {std::move(q), r.shr(shift)};
}

Nat Nat::bit_and(const Nat& a, const Nat& b) {
  Nat out;
  const std::size_t n = std::min(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.limbs_[i] = a.limbs_[i] & b.limbs_[i];
  out.normalize();
  return out;
}

Nat Nat::bit_or(const Nat& a, const Nat& b) {
  Nat out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.limbs_[i] = a.limb(i) | b.limb(i);
  out.normalize();
  return out;
}

Nat Nat::bit_xor(const Nat& a, const Nat& b) {
  Nat out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.limbs_[i] = a.limb(i) ^ b.limb(i);
  out.normalize();
  return out;
}

Nat Nat::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) throw std::invalid_argument("Nat::from_hex: empty string");
  Nat out;
  for (const char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else if (c == '_' || c == ' ') continue;  // allow visual grouping
    else throw std::invalid_argument("Nat::from_hex: bad digit");
    out = out.shl(4);
    if (d != 0) out = add(out, Nat{static_cast<Limb>(d)});
  }
  return out;
}

Nat Nat::from_dec(std::string_view dec) {
  if (dec.empty()) throw std::invalid_argument("Nat::from_dec: empty string");
  Nat out;
  const Nat ten{10};
  for (const char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("Nat::from_dec: bad digit");
    out = add(mul(out, ten), Nat{static_cast<Limb>(c - '0')});
  }
  return out;
}

Nat Nat::from_bytes_be(std::span<const std::uint8_t> bytes) {
  Nat out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 64] |= static_cast<Limb>(bytes[i]) << (bit_pos % 64);
  }
  out.normalize();
  return out;
}

std::string Nat::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(limbs_.size() * 16);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      s.push_back(kDigits[(limbs_[i] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

std::string Nat::to_dec() const {
  if (is_zero()) return "0";
  std::string s;
  Nat cur = *this;
  // Peel 19 decimal digits at a time (largest power of 10 in a limb).
  const Nat chunk{10'000'000'000'000'000'000ULL};
  while (!cur.is_zero()) {
    auto [q, r] = divrem(cur, chunk);
    Limb v = r.to_limb();
    const bool last = q.is_zero();
    for (int i = 0; i < 19 && (!last || v != 0 || i == 0); ++i) {
      s.push_back(static_cast<char>('0' + v % 10));
      v /= 10;
    }
    cur = std::move(q);
  }
  std::reverse(s.begin(), s.end());
  return s;
}

std::vector<std::uint8_t> Nat::to_bytes_be(std::size_t width) const {
  const std::size_t need = (bit_length() + 7) / 8;
  if (width == 0) width = need;
  if (need > width) throw std::length_error("Nat::to_bytes_be: value too wide");
  std::vector<std::uint8_t> out(width, 0);
  for (std::size_t i = 0; i < need; ++i) {
    const std::size_t bit_pos = i * 8;
    out[width - 1 - i] =
        static_cast<std::uint8_t>(limbs_[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

}  // namespace ppgr::mpz

// Prime-field context Z_p.
//
// A thin, explicit layer over MontCtx: every element handled through FpCtx is
// a Nat *in Montgomery form*. This keeps elliptic-curve formulas and
// secret-sharing polynomial evaluation fast (no per-operation conversions)
// while staying value-typed. The secure dot-product protocol and the Shamir
// substrate are both written against this class.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mpz/mont.h"
#include "mpz/rng.h"
#include "mpz/sint.h"

namespace ppgr::mpz {

class FpCtx {
 public:
  /// p must be an odd prime > 2 (primality is the caller's responsibility;
  /// oddness is enforced).
  explicit FpCtx(Nat p);

  [[nodiscard]] const Nat& p() const { return mont_.modulus(); }
  [[nodiscard]] std::size_t bits() const { return p().bit_length(); }

  // --- conversions (standard <-> Montgomery form) ---
  /// Standard representative (reduced mod p first) -> field element.
  [[nodiscard]] Nat to(const Nat& standard) const;
  /// Signed integer -> field element (Euclidean reduction).
  [[nodiscard]] Nat to_signed(const Int& v) const;
  /// Field element -> standard representative in [0, p).
  [[nodiscard]] Nat from(const Nat& elem) const { return mont_.from_mont(elem); }
  /// Field element -> signed integer, centering to (-p/2, p/2].
  [[nodiscard]] Int from_centered(const Nat& elem) const;

  // --- arithmetic on field elements ---
  [[nodiscard]] Nat zero() const { return Nat{}; }
  [[nodiscard]] const Nat& one() const { return mont_.one_mont(); }
  [[nodiscard]] Nat add(const Nat& a, const Nat& b) const { return mont_.add(a, b); }
  [[nodiscard]] Nat sub(const Nat& a, const Nat& b) const { return mont_.sub(a, b); }
  [[nodiscard]] Nat neg(const Nat& a) const;
  [[nodiscard]] Nat mul(const Nat& a, const Nat& b) const { return mont_.mul(a, b); }
  [[nodiscard]] Nat sqr(const Nat& a) const { return mont_.sqr(a); }
  /// a^e for plain (non-field) exponent e.
  [[nodiscard]] Nat pow(const Nat& a, const Nat& e) const { return mont_.exp(a, e); }
  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Nat inv(const Nat& a) const;
  /// Batched inverse (Montgomery's trick): one field inversion plus 3(n-1)
  /// multiplications for n elements, via prefix products and
  /// back-substitution. Element i of the result equals inv(xs[i]) exactly.
  /// Throws std::domain_error naming the offending index if any input is
  /// zero — the whole batch is rejected, nothing is partially computed.
  [[nodiscard]] std::vector<Nat> inv_many(std::span<const Nat> xs) const;
  /// a/b.
  [[nodiscard]] Nat div(const Nat& a, const Nat& b) const { return mul(a, inv(b)); }
  /// Square root in the field, if one exists.
  [[nodiscard]] std::optional<Nat> sqrt(const Nat& a) const;

  [[nodiscard]] bool is_zero(const Nat& a) const { return a.is_zero(); }
  [[nodiscard]] bool eq(const Nat& a, const Nat& b) const { return a == b; }

  /// Uniform random field element.
  [[nodiscard]] Nat random(Rng& rng) const { return to(rng.below(p())); }
  /// Uniform random nonzero field element.
  [[nodiscard]] Nat random_nonzero(Rng& rng) const {
    return to(rng.nonzero_below(p()));
  }

 private:
  MontCtx mont_;
};

}  // namespace ppgr::mpz

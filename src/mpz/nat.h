// Arbitrary-precision unsigned integers ("naturals").
//
// This is the foundational substrate of the ppgr library: every group,
// cryptosystem and protocol in the repository is built on top of Nat.
// Limbs are 64-bit, stored little-endian, and always normalized (no leading
// zero limbs; the value zero is the empty limb vector).
//
// Design notes
//  - Value semantics throughout; cheap moves.
//  - Multiplication switches from schoolbook to Karatsuba above a threshold.
//  - Division is Knuth's Algorithm D with 128-bit trial quotients.
//  - Subtraction requires lhs >= rhs (checked); signed arithmetic lives in
//    Int (sint.h).
//  - Limbs live in a small-buffer LimbVec (limb_vec.h): values up to 256
//    bits never touch the allocator, which is what makes the Montgomery
//    hot loops allocation-free for the test groups and P-curves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpz/limb_vec.h"

namespace ppgr::mpz {

using Limb = std::uint64_t;

class Nat {
 public:
  /// Zero.
  Nat() = default;
  /// From a single machine word.
  Nat(Limb v);  // NOLINT(google-explicit-constructor): deliberate, ergonomic
  /// From raw limbs, little-endian; normalizes.
  static Nat from_limbs(std::span<const Limb> limbs);
  /// Parse a hex string (no 0x prefix required, case-insensitive).
  /// Throws std::invalid_argument on bad input.
  static Nat from_hex(std::string_view hex);
  /// Parse a decimal string. Throws std::invalid_argument on bad input.
  static Nat from_dec(std::string_view dec);
  /// Big-endian byte deserialization.
  static Nat from_bytes_be(std::span<const std::uint8_t> bytes);
  /// 2^k.
  static Nat pow2(std::size_t k);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  [[nodiscard]] bool is_even() const { return !is_odd(); }

  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit i (i >= bit_length() reads as 0).
  [[nodiscard]] bool bit(std::size_t i) const;
  /// Sets bit i to v, growing as needed.
  void set_bit(std::size_t i, bool v);
  /// Number of limbs (0 for zero).
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }
  /// Limb i (i >= limb_count() reads as 0).
  [[nodiscard]] Limb limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }
  [[nodiscard]] std::span<const Limb> limbs() const {
    return {limbs_.data(), limbs_.size()};
  }

  /// Truncating conversion to a machine word (low 64 bits).
  [[nodiscard]] Limb to_limb() const { return limbs_.empty() ? 0 : limbs_[0]; }
  /// True iff the value fits in 64 bits.
  [[nodiscard]] bool fits_limb() const { return limbs_.size() <= 1; }

  /// Three-way compare: -1, 0, +1.
  [[nodiscard]] static int cmp(const Nat& a, const Nat& b);

  friend bool operator==(const Nat& a, const Nat& b) { return cmp(a, b) == 0; }
  friend bool operator!=(const Nat& a, const Nat& b) { return cmp(a, b) != 0; }
  friend bool operator<(const Nat& a, const Nat& b) { return cmp(a, b) < 0; }
  friend bool operator<=(const Nat& a, const Nat& b) { return cmp(a, b) <= 0; }
  friend bool operator>(const Nat& a, const Nat& b) { return cmp(a, b) > 0; }
  friend bool operator>=(const Nat& a, const Nat& b) { return cmp(a, b) >= 0; }

  [[nodiscard]] static Nat add(const Nat& a, const Nat& b);
  /// Requires a >= b; throws std::domain_error otherwise.
  [[nodiscard]] static Nat sub(const Nat& a, const Nat& b);
  [[nodiscard]] static Nat mul(const Nat& a, const Nat& b);
  /// Quotient and remainder; throws std::domain_error on division by zero.
  struct DivRem;
  [[nodiscard]] static DivRem divrem(const Nat& a, const Nat& b);

  [[nodiscard]] Nat shl(std::size_t bits) const;
  [[nodiscard]] Nat shr(std::size_t bits) const;

  friend Nat operator+(const Nat& a, const Nat& b) { return add(a, b); }
  friend Nat operator-(const Nat& a, const Nat& b) { return sub(a, b); }
  friend Nat operator*(const Nat& a, const Nat& b) { return mul(a, b); }
  friend Nat operator/(const Nat& a, const Nat& b);
  friend Nat operator%(const Nat& a, const Nat& b);
  friend Nat operator<<(const Nat& a, std::size_t k) { return a.shl(k); }
  friend Nat operator>>(const Nat& a, std::size_t k) { return a.shr(k); }

  Nat& operator+=(const Nat& b) { return *this = add(*this, b); }
  Nat& operator-=(const Nat& b) { return *this = sub(*this, b); }
  Nat& operator*=(const Nat& b) { return *this = mul(*this, b); }
  Nat& operator%=(const Nat& b);

  /// Bitwise ops (logical, on the common width).
  [[nodiscard]] static Nat bit_and(const Nat& a, const Nat& b);
  [[nodiscard]] static Nat bit_or(const Nat& a, const Nat& b);
  [[nodiscard]] static Nat bit_xor(const Nat& a, const Nat& b);

  /// Lowercase hex, no leading zeros ("0" for zero).
  [[nodiscard]] std::string to_hex() const;
  /// Decimal string.
  [[nodiscard]] std::string to_dec() const;
  /// Big-endian bytes, minimal length (empty for zero) unless width is given,
  /// in which case the output is left-padded with zeros to exactly `width`
  /// bytes (throws std::length_error if the value does not fit).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t width = 0) const;

  /// Karatsuba cutover, in limbs. Exposed for the ablation benchmark.
  static constexpr std::size_t kKaratsubaThreshold = 24;

 private:
  void normalize();
  static Nat mul_schoolbook(const Nat& a, const Nat& b);
  static Nat mul_karatsuba(const Nat& a, const Nat& b);

  LimbVec limbs_;
};

struct Nat::DivRem {
  Nat quot;
  Nat rem;
};

inline Nat operator/(const Nat& a, const Nat& b) { return Nat::divrem(a, b).quot; }
inline Nat operator%(const Nat& a, const Nat& b) { return Nat::divrem(a, b).rem; }
inline Nat& Nat::operator%=(const Nat& b) { return *this = divrem(*this, b).rem; }

}  // namespace ppgr::mpz

// Primality testing and prime generation.
//
// Used to generate the field moduli of the secret-sharing substrate, the
// dot-product field, and (in tests) small safe primes for the DL group; the
// production DL groups use the fixed RFC 3526 safe primes in group/.
#pragma once

#include "mpz/nat.h"
#include "mpz/rng.h"

namespace ppgr::mpz {

/// Miller–Rabin probable-prime test with `rounds` random bases.
/// Deterministically correct for n < 3,317,044,064,679,887,385,961,981 when
/// combined with the fixed small-base pass done internally.
[[nodiscard]] bool is_probable_prime(const Nat& n, Rng& rng, int rounds = 32);

/// Uniform random prime with exactly `bits` bits (top bit set).
[[nodiscard]] Nat random_prime(std::size_t bits, Rng& rng);

/// Random safe prime p = 2q + 1 with exactly `bits` bits (slow; intended for
/// tests and small parameters — production sizes use RFC 3526 constants).
[[nodiscard]] Nat random_safe_prime(std::size_t bits, Rng& rng);

}  // namespace ppgr::mpz

#include "mpz/mont.h"

#include <array>
#include <stdexcept>

namespace ppgr::mpz {

namespace {
using U128 = unsigned __int128;

// -x^{-1} mod 2^64 for odd x, by Newton iteration.
Limb neg_inv64(Limb x) {
  Limb inv = x;  // 3-bit correct seed for odd x
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return ~inv + 1;  // negate mod 2^64
}
}  // namespace

MontCtx::MontCtx(Nat modulus) : m_(std::move(modulus)) {
  if (m_.is_even() || m_ <= Nat{1})
    throw std::invalid_argument("MontCtx: modulus must be odd and > 1");
  k_ = m_.limb_count();
  n0inv_ = neg_inv64(m_.limb(0));
  r_mod_m_ = Nat::pow2(64 * k_) % m_;
  rr_ = Nat::pow2(128 * k_) % m_;
}

Nat MontCtx::redc(std::vector<Limb> t) const {
  // t has up to 2k (+1 scratch) limbs; reduce in place.
  t.resize(2 * k_ + 1, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const Limb u = t[i] * n0inv_;
    Limb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const U128 s = static_cast<U128>(u) * m_.limb(j) + t[i + j] + carry;
      t[i + j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    // Propagate carry.
    std::size_t idx = i + k_;
    while (carry != 0) {
      const U128 s = static_cast<U128>(t[idx]) + carry;
      t[idx] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
      ++idx;
    }
  }
  std::vector<Limb> hi(t.begin() + static_cast<std::ptrdiff_t>(k_), t.end());
  Nat out = Nat::from_limbs(std::move(hi));
  if (out >= m_) out = Nat::sub(out, m_);
  return out;
}

Nat MontCtx::to_mont(const Nat& a) const { return mul(a, rr_); }

Nat MontCtx::from_mont(const Nat& a) const {
  std::vector<Limb> t(a.limbs());
  return redc(std::move(t));
}

Nat MontCtx::mul(const Nat& a, const Nat& b) const {
  Nat prod = Nat::mul(a, b);
  std::vector<Limb> t(prod.limbs());
  return redc(std::move(t));
}

Nat MontCtx::add(const Nat& a, const Nat& b) const {
  Nat s = Nat::add(a, b);
  if (s >= m_) s = Nat::sub(s, m_);
  return s;
}

Nat MontCtx::sub(const Nat& a, const Nat& b) const {
  if (a >= b) return Nat::sub(a, b);
  return Nat::sub(Nat::add(a, m_), b);
}

Nat MontCtx::exp(const Nat& base, const Nat& e) const {
  if (e.is_zero()) return r_mod_m_;
  // 4-bit fixed window.
  std::array<Nat, 16> table;
  table[0] = r_mod_m_;
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base);

  const std::size_t nbits = e.bit_length();
  const std::size_t windows = (nbits + 3) / 4;
  Nat acc = r_mod_m_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = sqr(acc);
      acc = sqr(acc);
      acc = sqr(acc);
      acc = sqr(acc);
    }
    std::size_t nib = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t bit_idx = w * 4 + b;
      if (bit_idx < nbits && e.bit(bit_idx)) nib |= (1u << b);
    }
    if (nib != 0) {
      acc = started ? mul(acc, table[nib]) : table[nib];
      started = true;
    } else if (!started) {
      continue;  // skip leading zero windows entirely
    }
  }
  return started ? acc : r_mod_m_;
}

}  // namespace ppgr::mpz

#include "mpz/mont.h"

#include <array>
#include <span>
#include <stdexcept>

namespace ppgr::mpz {

namespace {
using U128 = unsigned __int128;

// -x^{-1} mod 2^64 for odd x, by Newton iteration.
Limb neg_inv64(Limb x) {
  Limb inv = x;  // 3-bit correct seed for odd x
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return ~inv + 1;  // negate mod 2^64
}
}  // namespace

MontCtx::MontCtx(Nat modulus) : m_(std::move(modulus)) {
  if (m_.is_even() || m_ <= Nat{1})
    throw std::invalid_argument("MontCtx: modulus must be odd and > 1");
  k_ = m_.limb_count();
  n0inv_ = neg_inv64(m_.limb(0));
  r_mod_m_ = Nat::pow2(64 * k_) % m_;
  rr_ = Nat::pow2(128 * k_) % m_;
}

Nat MontCtx::redc(std::vector<Limb> t) const {
  // t has up to 2k (+1 scratch) limbs; reduce in place.
  t.resize(2 * k_ + 1, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const Limb u = t[i] * n0inv_;
    Limb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const U128 s = static_cast<U128>(u) * m_.limb(j) + t[i + j] + carry;
      t[i + j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    // Propagate carry.
    std::size_t idx = i + k_;
    while (carry != 0) {
      const U128 s = static_cast<U128>(t[idx]) + carry;
      t[idx] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
      ++idx;
    }
  }
  Nat out = Nat::from_limbs(std::span<const Limb>(t).subspan(k_));
  if (out >= m_) out = Nat::sub(out, m_);
  return out;
}

Nat MontCtx::to_mont(const Nat& a) const { return mul(a, rr_); }

Nat MontCtx::from_mont(const Nat& a) const {
  std::vector<Limb> t(a.limbs().begin(), a.limbs().end());
  return redc(std::move(t));
}

Nat MontCtx::mul(const Nat& a, const Nat& b) const {
  if (k_ <= kCiosMaxLimbs) return mul_cios(a, b);
  const Nat prod = Nat::mul(a, b);
  std::vector<Limb> t(prod.limbs().begin(), prod.limbs().end());
  return redc(std::move(t));
}

namespace {

// Conditional final subtraction shared by the CIOS kernels: r = t mod m,
// where t (k+1 limbs, low k in t[0..k-1], overflow limb `top`) is < 2m.
template <std::size_t Cap>
Nat cios_finish(const Limb (&t)[Cap], Limb top, const Limb* nl,
                std::size_t k) {
  bool ge = top != 0;
  if (!ge) {
    ge = true;  // tentatively t >= m; flip on the first smaller limb
    for (std::size_t j = k; j-- > 0;) {
      if (t[j] != nl[j]) {
        ge = t[j] > nl[j];
        break;
      }
    }
  }
  Limb out[Cap];
  if (ge) {
    Limb borrow = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const Limb d = t[j] - nl[j] - borrow;
      borrow = (t[j] < nl[j] || (borrow != 0 && t[j] == nl[j])) ? 1 : 0;
      out[j] = d;
    }
  } else {
    for (std::size_t j = 0; j < k; ++j) out[j] = t[j];
  }
  return Nat::from_limbs(std::span<const Limb>(out, k));
}

// Coarsely Integrated Operand Scanning (Koç/Acar/Kaliski): one outer pass
// per limb of `a`, interleaving the partial product with the Montgomery
// reduction step, entirely on stack buffers. t has k+2 limbs; after the
// loop t[0..k] holds the (k+1)-limb pre-conditional result < 2m.
//
// Kc is the compile-time limb count (0 = use the runtime k): the protocol
// moduli are tiny (dl-test-256 is 4 limbs, the P-curve fields 3-4), and a
// constant trip count lets the compiler fully unroll the carry chains —
// roughly twice the throughput of the rolled loop at k=4 — while also
// shrinking the zero-initialized scratch from kCiosMaxLimbs to k limbs.
template <std::size_t Kc>
Nat mul_cios_impl(const Nat& a, const Nat& b, const Nat& m, Limb n0inv,
                  std::size_t k_runtime) {
  constexpr std::size_t kCap =
      Kc != 0 ? Kc : MontCtx::kCiosMaxLimbs;
  const std::size_t k = Kc != 0 ? Kc : k_runtime;
  Limb t[kCap + 2] = {};
  Limb al[kCap];
  Limb bl[kCap];
  Limb nl[kCap];
  for (std::size_t j = 0; j < k; ++j) {
    al[j] = a.limb(j);
    bl[j] = b.limb(j);
    nl[j] = m.limb(j);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const Limb ai = al[i];
    // t += ai * b
    U128 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const U128 s = static_cast<U128>(ai) * bl[j] + t[j] + static_cast<Limb>(carry);
      t[j] = static_cast<Limb>(s);
      carry = s >> 64;
    }
    {
      const U128 s = static_cast<U128>(t[k]) + static_cast<Limb>(carry);
      t[k] = static_cast<Limb>(s);
      t[k + 1] = static_cast<Limb>(s >> 64);
    }
    // t += (t[0] * n0inv mod 2^64) * m, then t >>= 64
    const Limb u = t[0] * n0inv;
    carry = (static_cast<U128>(u) * nl[0] + t[0]) >> 64;
    for (std::size_t j = 1; j < k; ++j) {
      const U128 s = static_cast<U128>(u) * nl[j] + t[j] + static_cast<Limb>(carry);
      t[j - 1] = static_cast<Limb>(s);
      carry = s >> 64;
    }
    {
      const U128 s = static_cast<U128>(t[k]) + static_cast<Limb>(carry);
      t[k - 1] = static_cast<Limb>(s);
      t[k] = t[k + 1] + static_cast<Limb>(s >> 64);
      t[k + 1] = 0;
    }
  }
  return cios_finish(t, t[k], nl, k);
}

}  // namespace

Nat MontCtx::mul_cios(const Nat& a, const Nat& b) const {
  switch (k_) {
    case 3: return mul_cios_impl<3>(a, b, m_, n0inv_, k_);
    case 4: return mul_cios_impl<4>(a, b, m_, n0inv_, k_);
    default: return mul_cios_impl<0>(a, b, m_, n0inv_, k_);
  }
}

// Measured on the 4-limb protocol moduli, a dedicated SOS squaring (halved
// off-diagonal products, separate reduction pass) LOSES to the fused CIOS
// multiply: the doubling pass and the extra scratch traffic cost more than
// the k(k-1)/2 saved limb products at these widths. sqr() therefore rides
// the multiply; the entry point stays so callers express intent and wider-
// limb specializations can slot in without touching call sites.
Nat MontCtx::sqr(const Nat& a) const { return mul(a, a); }

Nat MontCtx::add(const Nat& a, const Nat& b) const {
  Nat s = Nat::add(a, b);
  if (s >= m_) s = Nat::sub(s, m_);
  return s;
}

Nat MontCtx::sub(const Nat& a, const Nat& b) const {
  if (a >= b) return Nat::sub(a, b);
  return Nat::sub(Nat::add(a, m_), b);
}

Nat MontCtx::exp(const Nat& base, const Nat& e) const {
  if (e.is_zero()) return r_mod_m_;
  // 4-bit fixed window.
  std::array<Nat, 16> table;
  table[0] = r_mod_m_;
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base);

  const std::size_t nbits = e.bit_length();
  const std::size_t windows = (nbits + 3) / 4;
  Nat acc = r_mod_m_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = sqr(acc);
      acc = sqr(acc);
      acc = sqr(acc);
      acc = sqr(acc);
    }
    std::size_t nib = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t bit_idx = w * 4 + b;
      if (bit_idx < nbits && e.bit(bit_idx)) nib |= (1u << b);
    }
    if (nib != 0) {
      acc = started ? mul(acc, table[nib]) : table[nib];
      started = true;
    } else if (!started) {
      continue;  // skip leading zero windows entirely
    }
  }
  return started ? acc : r_mod_m_;
}

}  // namespace ppgr::mpz

// Small-buffer limb storage for Nat.
//
// Every Montgomery multiplication used to allocate a fresh
// std::vector<Limb> for its (tiny) result; at ~10^8 multiplications per
// protocol run the malloc/free traffic cost as much wall clock as the
// limb arithmetic itself. LimbVec keeps up to kInline limbs (256 bits)
// inline — covering dl-test-256, the P-192/P-256 curve fields and the
// 61-bit mock group — and spills to the heap only for the production
// 1024/2048/3072-bit moduli, where the per-op arithmetic dwarfs the
// allocator anyway.
//
// Deliberately minimal: exactly the vector surface nat.cpp uses
// (size/empty/back/push_back/pop_back/resize/assign/iterators), value
// semantics, no exception guarantees beyond new[] propagation. Iterators
// are raw pointers and invalidate on any size-changing call.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace ppgr::mpz {

class LimbVec {
 public:
  using Limb = std::uint64_t;
  /// Inline capacity, in limbs. 4 limbs = 256 bits.
  static constexpr std::size_t kInline = 4;

  // User-provided (not `= default`) so `const LimbVec v;` is well-formed
  // despite the deliberately uninitialized inline buffer.
  LimbVec() noexcept {}  // NOLINT(modernize-use-equals-default)

  LimbVec(const LimbVec& other) { assign(other.begin(), other.end()); }

  LimbVec(LimbVec&& other) noexcept { steal(other); }

  LimbVec& operator=(const LimbVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  LimbVec& operator=(LimbVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~LimbVec() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] Limb* data() { return ptr_; }
  [[nodiscard]] const Limb* data() const { return ptr_; }

  [[nodiscard]] Limb& operator[](std::size_t i) { return ptr_[i]; }
  [[nodiscard]] const Limb& operator[](std::size_t i) const { return ptr_[i]; }

  [[nodiscard]] Limb& back() { return ptr_[size_ - 1]; }
  [[nodiscard]] const Limb& back() const { return ptr_[size_ - 1]; }

  [[nodiscard]] Limb* begin() { return ptr_; }
  [[nodiscard]] Limb* end() { return ptr_ + size_; }
  [[nodiscard]] const Limb* begin() const { return ptr_; }
  [[nodiscard]] const Limb* end() const { return ptr_ + size_; }

  void push_back(Limb v) {
    if (size_ == cap_) grow(size_ + 1);
    ptr_[size_++] = v;
  }

  void pop_back() { --size_; }

  void clear() { size_ = 0; }

  /// Grows with zero fill or shrinks; never releases capacity.
  void resize(std::size_t n, Limb fill = 0) {
    if (n > cap_) grow(n);
    for (std::size_t i = size_; i < n; ++i) ptr_[i] = fill;
    size_ = n;
  }

  void assign(std::size_t n, Limb fill) {
    if (n > cap_) grow_discard(n);
    for (std::size_t i = 0; i < n; ++i) ptr_[i] = fill;
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(last - first);
    if (n > cap_) grow_discard(n);
    std::copy(first, last, ptr_);
    size_ = n;
  }

  friend bool operator==(const LimbVec& a, const LimbVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  // Reallocates to hold at least `need` limbs, preserving contents.
  void grow(std::size_t need) {
    const std::size_t cap = std::max(need, cap_ * 2);
    Limb* p = new Limb[cap];
    std::copy(ptr_, ptr_ + size_, p);
    release();
    ptr_ = p;
    cap_ = cap;
  }

  // Reallocation variant for assign(): old contents are dead.
  void grow_discard(std::size_t need) {
    const std::size_t cap = std::max(need, cap_ * 2);
    Limb* p = new Limb[cap];
    release();
    ptr_ = p;
    cap_ = cap;
  }

  void release() {
    if (ptr_ != inline_) delete[] ptr_;
    ptr_ = inline_;
    cap_ = kInline;
  }

  // Takes other's storage; leaves other empty (inline). Heap buffers move by
  // pointer; inline buffers copy (at most kInline limbs).
  void steal(LimbVec& other) {
    if (other.ptr_ != other.inline_) {
      ptr_ = std::exchange(other.ptr_, other.inline_);
      cap_ = std::exchange(other.cap_, kInline);
      size_ = std::exchange(other.size_, 0);
    } else {
      std::copy(other.ptr_, other.ptr_ + other.size_, inline_);
      size_ = std::exchange(other.size_, 0);
    }
  }

  Limb* ptr_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInline;
  Limb inline_[kInline];
};

}  // namespace ppgr::mpz

// Cryptographically-strong pseudo random number generation.
//
// ChaCha20 in counter mode, seedable either deterministically (tests,
// reproducible benchmarks) or from the operating system. All randomness in
// the library flows through the Rng interface so protocols can be replayed
// bit-for-bit under test.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "mpz/nat.h"

namespace ppgr::mpz {

/// Abstract source of random bytes. Implementations must be
/// indistinguishable-from-random for the library's security arguments to
/// carry over (Sec. III-B of the paper assumes a computationally bounded
/// adversary).
class Rng {
 public:
  virtual ~Rng() = default;
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();
  /// Uniform in [0, bound) via rejection sampling; bound must be nonzero.
  std::uint64_t below_u64(std::uint64_t bound);
  /// Uniform Nat with exactly `bits` random bits (top bit may be 0).
  Nat bits(std::size_t bits);
  /// Uniform Nat in [0, bound) via rejection sampling; bound must be nonzero.
  Nat below(const Nat& bound);
  /// Uniform Nat in [1, bound).
  Nat nonzero_below(const Nat& bound);
  /// Uniform random bool.
  bool coin() { return next_u64() & 1u; }
};

/// ChaCha20-based deterministic RNG (RFC 8439 block function).
class ChaChaRng final : public Rng {
 public:
  /// Deterministic: expands a 64-bit seed into the 256-bit key.
  explicit ChaChaRng(std::uint64_t seed);
  /// Full 256-bit key (stream 0).
  explicit ChaChaRng(const std::array<std::uint8_t, 32>& key);
  /// Keyed substream: the 64-bit `stream` id becomes the ChaCha20 nonce, so
  /// every id yields an independent keystream under the same key. This is
  /// the counter-mode stream splitting behind StreamFamily.
  ChaChaRng(const std::array<std::uint8_t, 32>& key, std::uint64_t stream);
  /// Seeded from the operating system (/dev/urandom).
  static ChaChaRng from_os();

  void fill(std::span<std::uint8_t> out) override;

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t pos_ = 64;  // exhausted
};

/// Splits one parent Rng into arbitrarily many independent substreams.
///
/// The constructor draws a single 256-bit family key from the parent; after
/// that, `stream(id)` is a pure function of (key, id) — the order in which
/// streams are created or consumed cannot influence their output. This is
/// the determinism anchor of the parallel execution engine: the framework
/// derives one stream per (party, task) so that a run with N threads draws
/// bit-identical randomness to a run with 1 thread (see DESIGN.md,
/// "Threading model & determinism").
class StreamFamily {
 public:
  /// Draws the 32-byte family key from `parent` (exactly one fill call).
  explicit StreamFamily(Rng& parent);

  /// Independent deterministic stream for `id`. Thread-safe (const).
  [[nodiscard]] ChaChaRng stream(std::uint64_t id) const {
    return ChaChaRng{key_, id};
  }

 private:
  std::array<std::uint8_t, 32> key_{};
};

}  // namespace ppgr::mpz

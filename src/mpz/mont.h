// Montgomery modular arithmetic for odd moduli.
//
// All heavy modular work in the library (Schnorr groups, elliptic-curve field
// arithmetic, ElGamal) runs through this context. Values passed to mul/exp
// are in Montgomery form; convert with to_mont/from_mont.
#pragma once

#include <cstdint>
#include <vector>

#include "mpz/nat.h"

namespace ppgr::mpz {

class MontCtx {
 public:
  /// Modulus must be odd and > 1; throws std::invalid_argument otherwise.
  explicit MontCtx(Nat modulus);

  [[nodiscard]] const Nat& modulus() const { return m_; }
  /// Number of limbs of the modulus (the Montgomery "k").
  [[nodiscard]] std::size_t limbs() const { return k_; }

  /// a*R mod m (a must be < m).
  [[nodiscard]] Nat to_mont(const Nat& a) const;
  /// a/R mod m.
  [[nodiscard]] Nat from_mont(const Nat& a) const;
  /// Montgomery product: a*b/R mod m (both in Montgomery form). Moduli up
  /// to kCiosMaxLimbs limbs take a fused CIOS path (multiply and reduce
  /// interleaved on stack buffers — no intermediate 2k-limb product and no
  /// heap traffic beyond the result); wider moduli fall back to the
  /// separate-multiply-then-redc path. Both compute the identical value.
  [[nodiscard]] Nat mul(const Nat& a, const Nat& b) const;
  /// Montgomery square: same value as mul(a, a). A squaring-specific entry
  /// point so call sites express intent; see mont.cpp for why it currently
  /// rides the fused CIOS multiply.
  [[nodiscard]] Nat sqr(const Nat& a) const;
  /// Modular addition of Montgomery-form values.
  [[nodiscard]] Nat add(const Nat& a, const Nat& b) const;
  /// Modular subtraction of Montgomery-form values.
  [[nodiscard]] Nat sub(const Nat& a, const Nat& b) const;
  /// base^e mod m, base in Montgomery form, e a plain Nat; 4-bit window.
  [[nodiscard]] Nat exp(const Nat& base, const Nat& e) const;

  /// 1 in Montgomery form (== R mod m).
  [[nodiscard]] const Nat& one_mont() const { return r_mod_m_; }

  /// Widest modulus (in limbs) served by the fused CIOS multiply: 4096 bits
  /// covers every group this library ships (dl-3072 is 48 limbs).
  static constexpr std::size_t kCiosMaxLimbs = 64;

 private:
  [[nodiscard]] Nat redc(std::vector<Limb> t) const;
  [[nodiscard]] Nat mul_cios(const Nat& a, const Nat& b) const;

  Nat m_;
  std::size_t k_;
  Limb n0inv_;     // -m^{-1} mod 2^64
  Nat rr_;         // R^2 mod m
  Nat r_mod_m_;    // R mod m
};

}  // namespace ppgr::mpz

// Number-theoretic helpers over Nat: gcd, modular inverse, general modular
// exponentiation, Jacobi symbol, modular square roots (Tonelli–Shanks), and a
// Barrett reduction context for repeated reduction by a fixed (possibly even)
// modulus.
#pragma once

#include <optional>

#include "mpz/nat.h"

namespace ppgr::mpz {

/// Greatest common divisor (binary GCD).
[[nodiscard]] Nat gcd(Nat a, Nat b);

/// a^{-1} mod m for gcd(a, m) == 1; std::nullopt otherwise. m > 1.
[[nodiscard]] std::optional<Nat> invmod(const Nat& a, const Nat& m);

/// base^e mod m for arbitrary m > 0 (uses Montgomery when m is odd).
[[nodiscard]] Nat powmod(const Nat& base, const Nat& e, const Nat& m);

/// Jacobi symbol (a/n) for odd n > 0; returns -1, 0 or +1.
[[nodiscard]] int jacobi(Nat a, Nat n);

/// Square root of a modulo an odd prime p, if one exists (Tonelli–Shanks).
[[nodiscard]] std::optional<Nat> sqrtmod(const Nat& a, const Nat& p);

/// Barrett reduction context: amortizes division by a fixed modulus.
class BarrettCtx {
 public:
  explicit BarrettCtx(Nat modulus);

  [[nodiscard]] const Nat& modulus() const { return m_; }
  /// a mod m for a < m^2.
  [[nodiscard]] Nat reduce(const Nat& a) const;

 private:
  Nat m_;
  Nat mu_;          // floor(2^(2*64k) / m)
  std::size_t k_;   // limbs of m
};

}  // namespace ppgr::mpz

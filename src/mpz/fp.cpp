#include "mpz/fp.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "mpz/modarith.h"

namespace ppgr::mpz {

FpCtx::FpCtx(Nat p) : mont_(std::move(p)) {}

Nat FpCtx::to(const Nat& standard) const {
  return mont_.to_mont(standard >= p() ? standard % p() : standard);
}

Nat FpCtx::to_signed(const Int& v) const { return mont_.to_mont(v.mod(p())); }

Int FpCtx::from_centered(const Nat& elem) const {
  const Nat std_rep = from(elem);
  const Nat half = p().shr(1);
  if (std_rep > half) return Int{Nat::sub(p(), std_rep), /*negative=*/true};
  return Int::from_nat(std_rep);
}

Nat FpCtx::neg(const Nat& a) const {
  if (a.is_zero()) return a;
  return Nat::sub(p(), a);
}

Nat FpCtx::inv(const Nat& a) const {
  if (a.is_zero()) throw std::domain_error("FpCtx::inv: zero has no inverse");
  // Fermat: a^(p-2). Keeps everything in Montgomery form (invmod would need
  // two conversions plus a general divrem chain; exp is simpler here).
  return pow(a, Nat::sub(p(), Nat{2}));
}

std::vector<Nat> FpCtx::inv_many(std::span<const Nat> xs) const {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].is_zero())
      throw std::domain_error("FpCtx::inv_many: zero at index " +
                              std::to_string(i) + " has no inverse");
  }
  std::vector<Nat> out(xs.size());
  if (xs.empty()) return out;
  // Prefix products: out[i] = x_0 * ... * x_i.
  out[0] = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) out[i] = mul(out[i - 1], xs[i]);
  // One real inversion of the running product, then back-substitute:
  // inv(x_i) = inv(x_0..x_i) * (x_0..x_{i-1}).
  Nat acc = inv(out.back());
  for (std::size_t i = xs.size(); i-- > 1;) {
    out[i] = mul(acc, out[i - 1]);
    acc = mul(acc, xs[i]);
  }
  out[0] = std::move(acc);
  return out;
}

std::optional<Nat> FpCtx::sqrt(const Nat& a) const {
  const auto root = sqrtmod(from(a), p());
  if (!root) return std::nullopt;
  return to(*root);
}

}  // namespace ppgr::mpz

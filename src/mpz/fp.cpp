#include "mpz/fp.h"

#include <stdexcept>

#include "mpz/modarith.h"

namespace ppgr::mpz {

FpCtx::FpCtx(Nat p) : mont_(std::move(p)) {}

Nat FpCtx::to(const Nat& standard) const {
  return mont_.to_mont(standard >= p() ? standard % p() : standard);
}

Nat FpCtx::to_signed(const Int& v) const { return mont_.to_mont(v.mod(p())); }

Int FpCtx::from_centered(const Nat& elem) const {
  const Nat std_rep = from(elem);
  const Nat half = p().shr(1);
  if (std_rep > half) return Int{Nat::sub(p(), std_rep), /*negative=*/true};
  return Int::from_nat(std_rep);
}

Nat FpCtx::neg(const Nat& a) const {
  if (a.is_zero()) return a;
  return Nat::sub(p(), a);
}

Nat FpCtx::inv(const Nat& a) const {
  if (a.is_zero()) throw std::domain_error("FpCtx::inv: zero has no inverse");
  // Fermat: a^(p-2). Keeps everything in Montgomery form (invmod would need
  // two conversions plus a general divrem chain; exp is simpler here).
  return pow(a, Nat::sub(p(), Nat{2}));
}

std::optional<Nat> FpCtx::sqrt(const Nat& a) const {
  const auto root = sqrtmod(from(a), p());
  if (!root) return std::nullopt;
  return to(*root);
}

}  // namespace ppgr::mpz

#include "mpz/sint.h"

#include <stdexcept>

namespace ppgr::mpz {

Int::Int(std::int64_t v) {
  if (v < 0) {
    neg_ = true;
    // Avoid UB on INT64_MIN.
    mag_ = Nat{static_cast<Limb>(~static_cast<std::uint64_t>(v) + 1)};
  } else {
    mag_ = Nat{static_cast<Limb>(v)};
  }
}

Int::Int(Nat magnitude, bool negative)
    : mag_(std::move(magnitude)), neg_(negative && !mag_.is_zero()) {}

Int Int::from_dec(std::string_view dec) {
  bool neg = false;
  if (!dec.empty() && (dec.front() == '-' || dec.front() == '+')) {
    neg = dec.front() == '-';
    dec.remove_prefix(1);
  }
  return Int{Nat::from_dec(dec), neg};
}

int Int::cmp(const Int& a, const Int& b) {
  if (a.neg_ != b.neg_) return a.neg_ ? -1 : 1;
  const int m = Nat::cmp(a.mag_, b.mag_);
  return a.neg_ ? -m : m;
}

Int operator+(const Int& a, const Int& b) {
  if (a.neg_ == b.neg_) return Int{Nat::add(a.mag_, b.mag_), a.neg_};
  const int m = Nat::cmp(a.mag_, b.mag_);
  if (m == 0) return Int{};
  if (m > 0) return Int{Nat::sub(a.mag_, b.mag_), a.neg_};
  return Int{Nat::sub(b.mag_, a.mag_), b.neg_};
}

Int operator-(const Int& a, const Int& b) { return a + b.negated(); }

Int operator*(const Int& a, const Int& b) {
  return Int{Nat::mul(a.mag_, b.mag_), a.neg_ != b.neg_};
}

Int::DivRem Int::divrem(const Int& a, const Int& b) {
  auto [q, r] = Nat::divrem(a.mag_, b.mag_);
  return {Int{std::move(q), a.neg_ != b.neg_}, Int{std::move(r), a.neg_}};
}

Nat Int::mod(const Nat& modulus) const {
  const Nat r = Nat::divrem(mag_, modulus).rem;
  if (!neg_ || r.is_zero()) return r;
  return Nat::sub(modulus, r);
}

std::string Int::to_dec() const {
  return neg_ ? "-" + mag_.to_dec() : mag_.to_dec();
}

std::int64_t Int::to_i64() const {
  if (mag_.bit_length() > 63) {
    // Allow exactly INT64_MIN.
    if (neg_ && mag_ == Nat::pow2(63)) return INT64_MIN;
    throw std::overflow_error("Int::to_i64: value does not fit");
  }
  const auto v = static_cast<std::int64_t>(mag_.to_limb());
  return neg_ ? -v : v;
}

}  // namespace ppgr::mpz

// Arbitrary-precision signed integers: a sign-and-magnitude wrapper over Nat.
//
// Used wherever protocol values can be negative: partial gains (Def. 1 of the
// paper), the extended Euclidean algorithm, and the signed<->unsigned l-bit
// conversion of Sec. III-A.
#pragma once

#include <cstdint>
#include <string>

#include "mpz/nat.h"

namespace ppgr::mpz {

class Int {
 public:
  Int() = default;
  Int(std::int64_t v);  // NOLINT(google-explicit-constructor)
  /// From a magnitude and a sign (negative=true). Zero is always positive.
  Int(Nat magnitude, bool negative);
  /// Non-negative value from a Nat.
  static Int from_nat(Nat n) { return Int{std::move(n), false}; }
  static Int from_dec(std::string_view dec);

  [[nodiscard]] bool is_zero() const { return mag_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return neg_; }
  [[nodiscard]] const Nat& magnitude() const { return mag_; }

  /// Three-way compare.
  [[nodiscard]] static int cmp(const Int& a, const Int& b);

  friend bool operator==(const Int& a, const Int& b) { return cmp(a, b) == 0; }
  friend bool operator!=(const Int& a, const Int& b) { return cmp(a, b) != 0; }
  friend bool operator<(const Int& a, const Int& b) { return cmp(a, b) < 0; }
  friend bool operator<=(const Int& a, const Int& b) { return cmp(a, b) <= 0; }
  friend bool operator>(const Int& a, const Int& b) { return cmp(a, b) > 0; }
  friend bool operator>=(const Int& a, const Int& b) { return cmp(a, b) >= 0; }

  friend Int operator+(const Int& a, const Int& b);
  friend Int operator-(const Int& a, const Int& b);
  friend Int operator*(const Int& a, const Int& b);
  [[nodiscard]] Int negated() const { return Int{mag_, !neg_}; }
  friend Int operator-(const Int& a) { return a.negated(); }

  Int& operator+=(const Int& b) { return *this = *this + b; }
  Int& operator-=(const Int& b) { return *this = *this - b; }
  Int& operator*=(const Int& b) { return *this = *this * b; }

  /// Truncated division (C semantics): quot rounds toward zero,
  /// rem has the sign of the dividend.
  struct DivRem;
  [[nodiscard]] static DivRem divrem(const Int& a, const Int& b);

  /// Euclidean (always non-negative) remainder mod a positive modulus.
  [[nodiscard]] Nat mod(const Nat& modulus) const;

  /// Signed decimal string.
  [[nodiscard]] std::string to_dec() const;

  /// Truncating conversion to int64 (low bits, sign applied). Throws
  /// std::overflow_error if the value does not fit.
  [[nodiscard]] std::int64_t to_i64() const;

 private:
  Nat mag_;
  bool neg_ = false;  // invariant: !neg_ when mag_ is zero
};

struct Int::DivRem {
  Int quot;
  Int rem;
};

}  // namespace ppgr::mpz

#include "mpz/rng.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ppgr::mpz {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

void chacha20_block(const std::array<std::uint32_t, 16>& in,
                    std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += in[i];
  std::memcpy(out.data(), x.data(), 64);
}

}  // namespace

ChaChaRng::ChaChaRng(std::uint64_t seed) {
  std::array<std::uint8_t, 32> key{};
  std::memcpy(key.data(), &seed, sizeof(seed));
  *this = ChaChaRng(key);
}

ChaChaRng::ChaChaRng(const std::array<std::uint8_t, 32>& key)
    : ChaChaRng(key, 0) {}

ChaChaRng::ChaChaRng(const std::array<std::uint8_t, 32>& key,
                     std::uint64_t stream) {
  static constexpr std::array<std::uint32_t, 4> kSigma = {
      0x61707865u, 0x3320646eu, 0x79622d32u, 0x6b206574u};
  for (int i = 0; i < 4; ++i) state_[i] = kSigma[static_cast<std::size_t>(i)];
  std::memcpy(&state_[4], key.data(), 32);
  state_[12] = 0;  // block counter
  state_[13] = 0;
  state_[14] = static_cast<std::uint32_t>(stream);  // nonce = stream id
  state_[15] = static_cast<std::uint32_t>(stream >> 32);
}

ChaChaRng ChaChaRng::from_os() {
  std::array<std::uint8_t, 32> key{};
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (!urandom ||
      !urandom.read(reinterpret_cast<char*>(key.data()),
                    static_cast<std::streamsize>(key.size()))) {
    throw std::runtime_error("ChaChaRng::from_os: cannot read /dev/urandom");
  }
  return ChaChaRng(key);
}

void ChaChaRng::refill() {
  chacha20_block(state_, buf_);
  if (++state_[12] == 0) ++state_[13];  // 128-bit counter, never wraps
  pos_ = 0;
}

void ChaChaRng::fill(std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (pos_ == 64) refill();
    const std::size_t take = std::min<std::size_t>(64 - pos_, out.size() - done);
    std::memcpy(out.data() + done, buf_.data() + pos_, take);
    pos_ += take;
    done += take;
  }
}

StreamFamily::StreamFamily(Rng& parent) { parent.fill(key_); }

std::uint64_t Rng::next_u64() {
  std::array<std::uint8_t, 8> b{};
  fill(b);
  std::uint64_t v;
  std::memcpy(&v, b.data(), 8);
  return v;
}

std::uint64_t Rng::below_u64(std::uint64_t bound) {
  if (bound == 0) throw std::domain_error("Rng::below_u64: zero bound");
  // Rejection sampling on the top region to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

Nat Rng::bits(std::size_t nbits) {
  if (nbits == 0) return Nat{};
  std::vector<std::uint8_t> buf((nbits + 7) / 8);
  fill(buf);
  // Mask off excess top bits.
  const std::size_t excess = buf.size() * 8 - nbits;
  buf[0] &= static_cast<std::uint8_t>(0xFFu >> excess);
  return Nat::from_bytes_be(buf);
}

Nat Rng::below(const Nat& bound) {
  if (bound.is_zero()) throw std::domain_error("Rng::below: zero bound");
  const std::size_t nbits = bound.bit_length();
  for (;;) {
    Nat candidate = bits(nbits);
    if (candidate < bound) return candidate;
  }
}

Nat Rng::nonzero_below(const Nat& bound) {
  for (;;) {
    Nat candidate = below(bound);
    if (!candidate.is_zero()) return candidate;
  }
}

}  // namespace ppgr::mpz

#include "mpz/prime.h"

#include <array>
#include <stdexcept>

#include "mpz/modarith.h"
#include "mpz/mont.h"

namespace ppgr::mpz {

namespace {

constexpr std::array<Limb, 25> kSmallPrimes = {
    2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41,
    43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97};

// One Miller–Rabin round with the given base over a shared Montgomery ctx.
// n - 1 = d * 2^s, d odd.
bool mr_round(const MontCtx& ctx, const Nat& n, const Nat& d, std::size_t s,
              const Nat& base) {
  const Nat n_minus_1 = Nat::sub(n, Nat{1});
  Nat x = ctx.exp(ctx.to_mont(base % n), d);
  Nat x_std = ctx.from_mont(x);
  if (x_std.is_one() || x_std == n_minus_1) return true;
  for (std::size_t i = 1; i < s; ++i) {
    x = ctx.sqr(x);
    x_std = ctx.from_mont(x);
    if (x_std == n_minus_1) return true;
    if (x_std.is_one()) return false;  // nontrivial sqrt of 1
  }
  return false;
}

}  // namespace

bool is_probable_prime(const Nat& n, Rng& rng, int rounds) {
  if (n < Nat{2}) return false;
  for (const Limb p : kSmallPrimes) {
    if (n == Nat{p}) return true;
    if ((n % Nat{p}).is_zero()) return false;
  }
  // n is odd and > 97 here.
  Nat d = Nat::sub(n, Nat{1});
  std::size_t s = 0;
  while (d.is_even()) {
    d = d.shr(1);
    ++s;
  }
  const MontCtx ctx{n};
  // Fixed small bases first (cheap, removes most composites deterministically).
  for (const Limb b : {Limb{2}, Limb{3}, Limb{5}, Limb{7}, Limb{11}, Limb{13},
                       Limb{17}, Limb{19}, Limb{23}, Limb{29}, Limb{31},
                       Limb{37}}) {
    if (!mr_round(ctx, n, d, s, Nat{b})) return false;
  }
  for (int i = 0; i < rounds; ++i) {
    const Nat base = Nat::add(rng.below(Nat::sub(n, Nat{3})), Nat{2});
    if (!mr_round(ctx, n, d, s, base)) return false;
  }
  return true;
}

Nat random_prime(std::size_t bits, Rng& rng) {
  if (bits < 2) throw std::invalid_argument("random_prime: need >= 2 bits");
  for (;;) {
    Nat candidate = rng.bits(bits);
    candidate.set_bit(bits - 1, true);  // exact width
    candidate.set_bit(0, true);         // odd
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

Nat random_safe_prime(std::size_t bits, Rng& rng) {
  if (bits < 4) throw std::invalid_argument("random_safe_prime: need >= 4 bits");
  for (;;) {
    Nat q = random_prime(bits - 1, rng);
    Nat p = Nat::add(q.shl(1), Nat{1});
    if (p.bit_length() == bits && is_probable_prime(p, rng)) return p;
  }
}

}  // namespace ppgr::mpz

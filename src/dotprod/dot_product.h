// Secure two-party dot product (Ioannidis, Grama, Atallah — ICPP'02), the
// primitive behind the paper's "secure gain computation" phase (Sec. IV-A).
//
// Two parties hold same-dimension vectors: "Bob" holds w, "Alice" holds v.
// At the end Bob learns w·v and Alice learns nothing. Security rests on the
// adversary facing a linear system with more unknowns than equations.
//
// We run the protocol over a prime field Z_p (all values are field elements
// in Montgomery form, see mpz::FpCtx); p is chosen much larger than any
// genuine integer value so field arithmetic is exact integer arithmetic, and
// the division (a + h·R2/R3)/b is a modular inverse. In the framework
// instantiation (Sec. V, steps 2-4), Bob is participant P_j with
// w' = [vg, ve*ve, ve, 1] and Alice is the initiator P_0 with
// v' = [ρ·wg, -ρ·we, 2ρ(we*ve0), ρ_j]; Bob's output is the masked partial
// gain β_j = ρ·p_j + ρ_j.
//
// Message sizes and the matrix dimension s are exposed so the runtime layer
// can account communication exactly.
#pragma once

#include <vector>

#include "mpz/fp.h"
#include "mpz/rng.h"

namespace ppgr::dotprod {

using mpz::FpCtx;
using mpz::Nat;
using mpz::Rng;

/// Field vectors/matrices: elements of FpCtx in Montgomery form.
using FVec = std::vector<Nat>;
using FMat = std::vector<FVec>;  // row-major

/// Bob -> Alice message: the disguised matrix and masking vectors.
struct BobRound1 {
  FMat qx;      // Q·X, s rows × d cols
  FVec cprime;  // c + R1·R2·f, d entries
  FVec gvec;    // R1·R3·f, d entries
};

/// Alice -> Bob message.
struct AliceRound2 {
  Nat a;  // z - c'·v
  Nat h;  // g·v
};

/// Bob's retained secrets between rounds.
class DotProductBob {
 public:
  /// `w` is Bob's input (field elements); `s` is the disguise dimension
  /// (s >= 2; the paper notes s need not be large — default 8).
  DotProductBob(const FpCtx& field, FVec w, std::size_t s, Rng& rng);

  [[nodiscard]] const BobRound1& round1() const { return msg1_; }
  /// Consumes Alice's reply and returns w·v.
  [[nodiscard]] Nat finish(const AliceRound2& reply) const;

 private:
  const FpCtx& field_;
  BobRound1 msg1_;
  Nat b_;          // Σ_i Q_{i,r}
  Nat r2_over_r3_; // R2/R3
};

/// Alice's single step: given Bob's message and her vector v, produce the
/// reply. Stateless.
[[nodiscard]] AliceRound2 dot_product_alice(const FpCtx& field,
                                            const BobRound1& msg,
                                            const FVec& v);

/// Bytes on the wire for each direction (field elements are sent as
/// fixed-width standard representatives). Exact: equal to the size produced
/// by core::write_bob_round1 / write_alice_round2, including the two varint
/// dimension prefixes of Bob's message.
[[nodiscard]] std::size_t bob_message_bytes(const FpCtx& field, std::size_t s,
                                            std::size_t d);
[[nodiscard]] std::size_t alice_message_bytes(const FpCtx& field);

/// Reference (insecure) dot product for tests.
[[nodiscard]] Nat plain_dot(const FpCtx& field, const FVec& a, const FVec& b);

/// Smallest disguise dimension that keeps Alice's system of equations
/// under-determined for a d-dimensional vector: she observes s·d + 2d
/// values over s^2 + s·d + d + 3 unknowns (Q, X, f, R1..R3), so we need
/// s^2 + 3 > d. Protocol users should take max(recommended_s(d), their own
/// floor).
[[nodiscard]] std::size_t recommended_s(std::size_t d);

}  // namespace ppgr::dotprod

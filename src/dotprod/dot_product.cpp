#include "dotprod/dot_product.h"

#include <stdexcept>

#include "runtime/metrics.h"
#include "runtime/wire.h"

namespace ppgr::dotprod {

namespace {

FVec random_fvec(const FpCtx& f, std::size_t d, Rng& rng) {
  FVec v(d);
  for (auto& x : v) x = f.random(rng);
  return v;
}

}  // namespace

Nat plain_dot(const FpCtx& field, const FVec& a, const FVec& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("plain_dot: dimension mismatch");
  Nat acc = field.zero();
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = field.add(acc, field.mul(a[i], b[i]));
  return acc;
}

DotProductBob::DotProductBob(const FpCtx& field, FVec w, std::size_t s,
                             Rng& rng)
    : field_(field) {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kDotprodQuery);
  if (s < 2) throw std::invalid_argument("DotProductBob: s must be >= 2");
  const std::size_t d = w.size();
  if (d == 0) throw std::invalid_argument("DotProductBob: empty vector");

  // Pick Q (s×s random) and the embedding row r, retrying until the column
  // sum b = Σ_i Q_{i,r} is nonzero (needed for the final division).
  const std::size_t r = rng.below_u64(s);
  FMat q;
  for (;;) {
    q.clear();
    for (std::size_t i = 0; i < s; ++i) q.push_back(random_fvec(field, s, rng));
    b_ = field.zero();
    for (std::size_t i = 0; i < s; ++i) b_ = field.add(b_, q[i][r]);
    if (!field.is_zero(b_)) break;
  }

  // X: row r is w, other rows random.
  FMat x(s);
  for (std::size_t i = 0; i < s; ++i)
    x[i] = (i == r) ? std::move(w) : random_fvec(field, d, rng);
  if (x[r].size() != d) throw std::logic_error("DotProductBob: internal");

  // QX.
  msg1_.qx.assign(s, FVec(d, field.zero()));
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t k = 0; k < s; ++k) {
      const Nat& qik = q[i][k];
      if (field.is_zero(qik)) continue;
      for (std::size_t j = 0; j < d; ++j) {
        msg1_.qx[i][j] = field.add(msg1_.qx[i][j], field.mul(qik, x[k][j]));
      }
    }
  }

  // c = Σ_{i != r} (Σ_j Q_{j,i}) x_i   (column sums of Q weight the rows of X).
  FVec colsum(s, field.zero());
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < s; ++i)
      colsum[i] = field.add(colsum[i], q[j][i]);
  FVec c(d, field.zero());
  for (std::size_t i = 0; i < s; ++i) {
    if (i == r) continue;
    for (std::size_t j = 0; j < d; ++j)
      c[j] = field.add(c[j], field.mul(colsum[i], x[i][j]));
  }

  // Masks: c' = c + R1·R2·f, g = R1·R3·f.
  const Nat r1 = field.random_nonzero(rng);
  const Nat r2 = field.random_nonzero(rng);
  const Nat r3 = field.random_nonzero(rng);
  const FVec f = random_fvec(field, d, rng);
  const Nat r1r2 = field.mul(r1, r2);
  const Nat r1r3 = field.mul(r1, r3);
  msg1_.cprime.resize(d);
  msg1_.gvec.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    msg1_.cprime[j] = field.add(c[j], field.mul(r1r2, f[j]));
    msg1_.gvec[j] = field.mul(r1r3, f[j]);
  }
  r2_over_r3_ = field.div(r2, r3);
}

Nat DotProductBob::finish(const AliceRound2& reply) const {
  runtime::count_op(runtime::CryptoOp::kDotprodFinish);
  // β = (a + h·R2/R3) / b  =  w·v.
  const Nat num = field_.add(reply.a, field_.mul(reply.h, r2_over_r3_));
  return field_.div(num, b_);
}

AliceRound2 dot_product_alice(const FpCtx& field, const BobRound1& msg,
                              const FVec& v) {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kDotprodAnswer);
  const std::size_t s = msg.qx.size();
  if (s == 0 || msg.qx[0].size() != v.size() || msg.cprime.size() != v.size() ||
      msg.gvec.size() != v.size())
    throw std::invalid_argument("dot_product_alice: dimension mismatch");
  // z = Σ_i (QX v)_i.
  Nat z = field.zero();
  for (std::size_t i = 0; i < s; ++i)
    z = field.add(z, plain_dot(field, msg.qx[i], v));
  AliceRound2 reply;
  reply.a = field.sub(z, plain_dot(field, msg.cprime, v));
  reply.h = plain_dot(field, msg.gvec, v);
  return reply;
}

std::size_t recommended_s(std::size_t d) {
  std::size_t s = 2;
  while (s * s + 3 <= d) ++s;
  return s;
}

std::size_t bob_message_bytes(const FpCtx& field, std::size_t s,
                              std::size_t d) {
  const std::size_t fe = (field.bits() + 7) / 8;
  // varint(s) + varint(d) + QX + c' + g — exactly write_bob_round1's size.
  return runtime::varint_size(s) + runtime::varint_size(d) +
         fe * (s * d + 2 * d);
}

std::size_t alice_message_bytes(const FpCtx& field) {
  const std::size_t fe = (field.bits() + 7) / 8;
  return 2 * fe;  // a and h
}

}  // namespace ppgr::dotprod

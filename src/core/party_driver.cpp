#include "core/party_driver.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/codec.h"
#include "core/ss_framework.h"
#include "core/streams.h"
#include "crypto/codec.h"
#include "net/channel.h"
#include "runtime/wire.h"
#include "sss/mpc_sort.h"

namespace ppgr::core {

using mpz::ChaChaRng;
using runtime::Phase;

namespace {

using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

Payload seal(runtime::Writer&& w) {
  return std::make_shared<const std::vector<std::uint8_t>>(w.take());
}

}  // namespace

PartyResult run_party(const PartyConfig& cfg, const PartyInput& input,
                      net::Transport& transport, Rng& rng) {
  cfg.fw.validate();
  const std::size_t n = cfg.fw.n;
  const std::size_t l = cfg.fw.spec.beta_bits();
  const std::size_t me = cfg.party;
  if (me > n)
    throw std::invalid_argument("run_party: party id " + std::to_string(me) +
                                " out of range (n = " + std::to_string(n) +
                                ")");
  if (cfg.fw.fault_plan != nullptr)
    throw std::invalid_argument(
        "run_party: fault injection requires the in-process simulator "
        "transport");
  if (!transport.local(me))
    throw std::invalid_argument("run_party: transport does not host party " +
                                std::to_string(me));
  if (cfg.ss && (cfg.ss_threshold < 1 || n < 2 * cfg.ss_threshold + 1))
    throw std::invalid_argument(
        "run_party: SS needs threshold >= 1 and n >= 2t+1");

  PartyResult result;
  if (cfg.fw.metrics) result.comm = std::make_unique<runtime::CommRegistry>();
  net::Router::Config rcfg;
  rcfg.transport = &transport;
  rcfg.progress = cfg.fw.progress;
  rcfg.flight = cfg.fw.flight;
  net::Router router{n + 1, result.trace, result.comm.get(), rcfg};

  const Group& g = *cfg.fw.group;
  // Same counter-addressed substream layout as run_framework: a shared
  // master seed reproduces the in-process run bit for bit (header comment).
  mpz::StreamFamily streams{rng};
  const auto task_stream = [&streams](StreamKind kind, std::size_t party,
                                      std::size_t index) {
    return streams.stream(stream_id(kind, party, index));
  };

  const auto proto_fault = [&](Phase phase, std::size_t party,
                               const std::string& cause) {
    std::string what = "run_party: " + cause + " [phase " +
                       runtime::phase_name(phase) + ", round " +
                       std::to_string(router.round_index());
    if (party != kNoParty) what += ", party P" + std::to_string(party);
    what += "]";
    if (cfg.fw.flight != nullptr)
      cfg.fw.flight->record(
          runtime::FlightEventKind::kFault, phase,
          static_cast<std::uint16_t>(party == kNoParty ? 0 : party + 1), 0, 0,
          router.round_index());
    return ProtocolFault(FaultInfo{phase, router.round_index(), party, cause},
                         router.fault_report(), what);
  };
  // Unlike run_framework (where, without a fault plan, a decode failure is
  // a programming error), bytes from another process are untrusted input:
  // every transport or validation failure is a typed protocol fault.
  const auto rethrow_as_fault = [&](Phase phase) {
    try {
      throw;
    } catch (const ProtocolFault&) {
      throw;
    } catch (const net::ChannelError& e) {
      throw proto_fault(phase, e.src() == me ? e.dst() : e.src(),
                        std::string("channel failure: ") + e.what());
    } catch (const runtime::WireError& e) {
      throw proto_fault(phase, kNoParty,
                        std::string("undecodable message: ") + e.what());
    } catch (const std::exception& e) {
      throw proto_fault(phase, kNoParty,
                        std::string("corrupted protocol state: ") + e.what());
    }
  };
  const auto send_writer = [&](std::size_t dst, runtime::Writer&& w) {
    router.send(me, dst, w.take());
  };
  const auto recv = [&](std::size_t src) { return router.receive(src, me); };

  // ---------------------------------------------------------------------
  // Initiator (party 0): phase-1 gain answers, phase-3 collection. The
  // whole of phase 2 happens among the participants.
  // ---------------------------------------------------------------------
  if (me == 0) {
    ChaChaRng my_rng = task_stream(StreamKind::kInitiatorSetup, 0, 0);
    Initiator initiator{cfg.fw, input.v0, input.w, my_rng};
    router.set_phase(Phase::kPhase1);
    try {
      for (std::size_t j = 1; j <= n; ++j) {
        const Payload rx = recv(j);
        runtime::Reader r{*rx};
        const auto q = read_bob_round1(r, *cfg.fw.dot_field);
        r.finish();
        runtime::Writer w;
        write_alice_round2(w, *cfg.fw.dot_field,
                           initiator.answer_gain_query(j, q));
        send_writer(j, std::move(w));
      }
      router.next_round();
    } catch (...) {
      rethrow_as_fault(Phase::kPhase1);
    }
    router.set_phase(Phase::kPhase3);
    try {
      result.ranks.assign(n, 0);
      for (std::size_t j = 1; j <= n; ++j) {
        const Payload rx = recv(j);
        runtime::Reader r{*rx};
        const std::size_t rank = r.u32();
        const bool has_submission = r.u8() != 0;
        if (rank == 0 || rank > n)
          throw proto_fault(Phase::kPhase3, j,
                            "claimed rank " + std::to_string(rank) +
                                " out of range");
        result.ranks[j - 1] = rank;
        if (has_submission) {
          initiator.receive_submission(read_submission(r, cfg.fw.spec));
          result.submitted_ids.push_back(j);
        }
        r.finish();
      }
      router.next_round();
      const auto bad = initiator.inconsistent_submissions();
      if (!bad.empty())
        throw proto_fault(Phase::kPhase3, bad.front(),
                          "inconsistent submission");
    } catch (...) {
      rethrow_as_fault(Phase::kPhase3);
    }
    result.faults = router.fault_report();
    return result;
  }

  // ---------------------------------------------------------------------
  // Participant me in 1..n.
  // ---------------------------------------------------------------------
  ChaChaRng my_rng = task_stream(StreamKind::kPartySetup, me, 0);
  Participant part{cfg.fw, me, input.info, my_rng};

  // ---- Phase 1: secure gain computation with the initiator ----
  router.set_phase(Phase::kPhase1);
  try {
    {
      ChaChaRng task_rng = task_stream(StreamKind::kPhase1, me, 0);
      const auto& q = part.gain_query(task_rng);
      runtime::Writer w;
      write_bob_round1(w, *cfg.fw.dot_field, q);
      send_writer(0, std::move(w));
    }
    router.next_round();
    {
      const Payload rx = recv(0);
      runtime::Reader r{*rx};
      const auto answer = read_alice_round2(r, *cfg.fw.dot_field);
      r.finish();
      part.receive_gain_answer(answer);
    }
    router.next_round();
  } catch (...) {
    rethrow_as_fault(Phase::kPhase1);
  }
  result.beta = part.beta();

  std::size_t rank = 0;
  router.set_phase(Phase::kPhase2);
  if (!cfg.ss) {
    // ---- Phase 2 (HE): keygen + proofs, bitwise encryption, comparison
    // circuits, decrypt-shuffle chain — the schedule mirrors run_framework
    // step for step, stream for stream. ----
    try {
      std::vector<Elem> pubkeys(n);
      {
        ChaChaRng task_rng = task_stream(StreamKind::kKeygen, me, 0);
        pubkeys[me - 1] = part.public_key(task_rng);
        runtime::Writer w;
        crypto::write_elem(w, g, pubkeys[me - 1]);
        const Payload payload = seal(std::move(w));
        for (std::size_t peer = 1; peer <= n; ++peer)
          if (peer != me) router.send(me, peer, payload);
      }
      {
        ChaChaRng task_rng = task_stream(StreamKind::kProve, me, 0);
        const crypto::SchnorrTranscript t = part.prove_key(n - 1, task_rng);
        // Full transcript on the wire (deviation from the in-process run,
        // which shares challenges out-of-band — see the header).
        runtime::Writer w;
        crypto::write_transcript(w, g, t);
        const Payload payload = seal(std::move(w));
        for (std::size_t peer = 1; peer <= n; ++peer)
          if (peer != me) router.send(me, peer, payload);
      }
      router.next_round();
      // Per-link FIFO: the key share arrives first, then the proof.
      for (std::size_t peer = 1; peer <= n; ++peer) {
        if (peer == me) continue;
        const Payload key_rx = recv(peer);
        const Payload proof_rx = recv(peer);
        runtime::Reader kr{*key_rx};
        const Elem y = crypto::read_elem(kr, g);
        kr.finish();
        runtime::Reader pr{*proof_rx};
        const crypto::SchnorrTranscript t = crypto::read_transcript(pr, g);
        pr.finish();
        if (!part.verify_peer_key(y, t))
          throw proto_fault(Phase::kPhase2, peer,
                            "key proof rejected (verifier P" +
                                std::to_string(me) + ")");
        pubkeys[peer - 1] = y;
      }
      const Elem joint = crypto::joint_public_key(g, pubkeys);
      part.set_joint_key(joint);
      if (cfg.fw.accel) {
        auto kt = std::make_shared<const group::FixedBaseTable>(
            *cfg.fw.group, joint, cfg.fw.group->order().bit_length());
        part.set_accel_context(cfg.fw.group, kt);
      }
      router.next_round();

      // Bitwise β encryption, broadcast. Like run_framework, the own bits
      // are re-decoded from their wire image so every evaluator (self
      // included) compares against the same validated bytes.
      std::vector<std::vector<Ciphertext>> beta_bits(n);
      {
        std::vector<Ciphertext> own(l);
        for (std::size_t b = 0; b < l; ++b) {
          ChaChaRng task_rng = task_stream(StreamKind::kEncryptBit, me, b);
          own[b] = part.encrypt_beta_bit(b, task_rng, nullptr, 0);
        }
        runtime::Writer w;
        crypto::write_ciphertext_seq(w, g, own);
        const Payload payload = seal(std::move(w));
        for (std::size_t peer = 1; peer <= n; ++peer)
          if (peer != me) router.send(me, peer, payload);
        runtime::Reader r{*payload};
        beta_bits[me - 1] = crypto::read_ciphertext_seq(r, g, l);
        r.finish();
      }
      for (std::size_t peer = 1; peer <= n; ++peer) {
        if (peer == me) continue;
        const Payload rx = recv(peer);
        runtime::Reader r{*rx};
        beta_bits[peer - 1] = crypto::read_ciphertext_seq(r, g, l);
        r.finish();
      }
      router.next_round();

      // Comparison circuits: slot order and stream addressing mirror
      // run_framework's flattened (evaluator, slot) fan-out.
      CipherSet my_set((n - 1) * l);
      const std::size_t j0 = me - 1;
      for (std::size_t slot = 0; slot + 1 < n; ++slot) {
        const std::size_t i0 = slot < j0 ? slot : slot + 1;  // skip self
        ChaChaRng task_rng = task_stream(StreamKind::kCompare, me, i0);
        auto tau = part.compare_against(beta_bits[i0], task_rng);
        std::move(tau.begin(), tau.end(), my_set.begin() + slot * l);
      }

      // Flattened sets travel to P1, who opens the decrypt-shuffle chain.
      std::vector<CipherSet> v_sets;
      if (me == 1) {
        v_sets.assign(n, CipherSet());
        v_sets[0] = std::move(my_set);  // own set stays put (no wire image)
        for (std::size_t q = 2; q <= n; ++q) {
          const Payload rx = recv(q);
          runtime::Reader r{*rx};
          v_sets[q - 1] = crypto::read_ciphertext_seq(r, g, (n - 1) * l);
          r.finish();
        }
      } else {
        runtime::Writer w;
        crypto::write_ciphertext_seq(w, g, my_set);
        send_writer(1, std::move(w));
      }
      router.next_round();

      // The chain hop: receive V from the predecessor (P1 already holds
      // it), shuffle every foreign set, forward — and collect the own set
      // back from Pn.
      if (me > 1) {
        const Payload rx = recv(me - 1);
        runtime::Reader r{*rx};
        v_sets.assign(n, CipherSet());
        for (auto& s : v_sets)
          s = crypto::read_ciphertext_seq(r, g, (n - 1) * l);
        r.finish();
      }
      const std::size_t h0 = me - 1;
      for (std::size_t owner0 = 0; owner0 < n; ++owner0) {
        if (owner0 == h0) continue;
        ChaChaRng task_rng = task_stream(StreamKind::kShuffle, me, owner0);
        part.shuffle_hop(v_sets[owner0], task_rng);
      }
      CipherSet own_set;
      if (me < n) {
        runtime::Writer w;
        for (const auto& s : v_sets) crypto::write_ciphertext_seq(w, g, s);
        send_writer(me + 1, std::move(w));
        router.next_round();
        const Payload rx = recv(n);
        runtime::Reader r{*rx};
        own_set = crypto::read_ciphertext_seq(r, g, (n - 1) * l);
        r.finish();
      } else {
        for (std::size_t owner0 = 0; owner0 + 1 < n; ++owner0) {
          runtime::Writer w;
          crypto::write_ciphertext_seq(w, g, v_sets[owner0]);
          send_writer(owner0 + 1, std::move(w));
        }
        router.next_round();
        own_set = std::move(v_sets[n - 1]);  // stays put, like P1's above
      }
      rank = part.compute_rank(own_set);
    } catch (...) {
      rethrow_as_fault(Phase::kPhase2);
    }
  } else {
    // ---- Phase 2 (SS baseline): the sort host (party 1) collects every β,
    // runs the one-process MPC sort engine and returns each party its rank
    // (header comment spells out what is and is not distributed here). ----
    try {
      const FpCtx& field = ss_field_for_beta_bits(l);
      if (me == 1) {
        std::vector<Nat> betas(n);
        betas[0] = part.beta();
        for (std::size_t q = 2; q <= n; ++q) {
          const Payload rx = recv(q);
          runtime::Reader r{*rx};
          betas[q - 1] = read_field_elem(r, field);
          r.finish();
        }
        ChaChaRng sort_rng = task_stream(StreamKind::kSsSort, 1, 0);
        sss::MpcEngine engine{field, n, cfg.ss_threshold, sort_rng,
                              sss::MpcEngine::Mode::kReal};
        const auto sorted = sss::mpc_rank_sort(engine, betas);
        rank = sorted.ranks[0];
        for (std::size_t q = 2; q <= n; ++q) {
          runtime::Writer w;
          w.u32(static_cast<std::uint32_t>(sorted.ranks[q - 1]));
          send_writer(q, std::move(w));
        }
        router.next_round();
      } else {
        runtime::Writer w;
        write_field_elem(w, field, part.beta());
        send_writer(1, std::move(w));
        router.next_round();
        const Payload rx = recv(1);
        runtime::Reader r{*rx};
        rank = r.u32();
        r.finish();
        if (rank == 0 || rank > n)
          throw proto_fault(Phase::kPhase2, 1,
                            "sort host returned rank " +
                                std::to_string(rank) + ", out of range");
      }
    } catch (...) {
      rethrow_as_fault(Phase::kPhase2);
    }
  }

  // ---- Phase 3: every participant reports its rank (and, within top-k,
  // its submission) to the initiator. ----
  router.set_phase(Phase::kPhase3);
  try {
    const auto sub = part.submission(rank);
    runtime::Writer w;
    w.u32(static_cast<std::uint32_t>(rank));
    w.u8(sub ? 1 : 0);
    if (sub) write_submission(w, cfg.fw.spec, *sub);
    send_writer(0, std::move(w));
    router.next_round();
  } catch (...) {
    rethrow_as_fault(Phase::kPhase3);
  }
  result.rank = rank;
  result.faults = router.fault_report();
  return result;
}

}  // namespace ppgr::core

// Wire codecs for the framework's phase-1 and phase-3 message types.
#pragma once

#include "core/framework.h"
#include "crypto/codec.h"
#include "dotprod/dot_product.h"
#include "runtime/wire.h"

namespace ppgr::core {

using runtime::Reader;
using runtime::Writer;

/// Field elements travel as their standard representative in [0, p), fixed
/// width of the field.
void write_field_elem(Writer& w, const FpCtx& f, const Nat& elem);
[[nodiscard]] Nat read_field_elem(Reader& r, const FpCtx& f);

void write_bob_round1(Writer& w, const FpCtx& f, const dotprod::BobRound1& m);
[[nodiscard]] dotprod::BobRound1 read_bob_round1(Reader& r, const FpCtx& f);

void write_alice_round2(Writer& w, const FpCtx& f,
                        const dotprod::AliceRound2& m);
[[nodiscard]] dotprod::AliceRound2 read_alice_round2(Reader& r,
                                                     const FpCtx& f);

/// Fixed-width framing (u32 participant, u32 claimed rank, m attribute
/// values of ceil(d1/8) bytes each): the wire size equals the analytic
/// accounting m*ceil(d1/8) + 8 exactly, independent of the values.
void write_submission(Writer& w, const ProblemSpec& spec,
                      const Initiator::Submission& s);
[[nodiscard]] Initiator::Submission read_submission(Reader& r,
                                                    const ProblemSpec& spec);
/// The exact encoded submission size (the paper's phase-3 message).
[[nodiscard]] std::size_t submission_wire_bytes(const ProblemSpec& spec);

}  // namespace ppgr::core

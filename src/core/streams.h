// Stream-id layout for the deterministic execution engine: every
// randomness-consuming protocol task draws from its own ChaCha substream
// identified by (kind, party, index). Ids are a pure function of the task's
// place in the protocol — never of the schedule — so any thread count, and
// any *process* count (the process-per-party TCP deployment of
// core/party_driver.h), replays the exact same randomness from the same
// master seed (DESIGN.md, "Threading model & determinism").
//
// Shared between run_framework (one process simulates all parties) and
// run_party (one process drives one party): both derive a
// mpz::StreamFamily from the caller's Rng and address substreams through
// these ids, which is what makes a same-seed socket run bit-identical to
// the simulator run.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ppgr::core {

enum class StreamKind : std::uint64_t {
  kInitiatorSetup = 0,  // ρ and the ρ_j masks
  kPartySetup = 1,      // per-party fallback stream (legacy entry points)
  kPhase1 = 2,          // dot-product disguise (per party)
  kKeygen = 3,          // ElGamal key share (per party)
  kProve = 4,           // Schnorr proof nonce (per party)
  kEncryptBit = 5,      // bitwise β encryption (per party, per bit)
  kCompare = 6,         // comparison-circuit re-randomization (per pair)
  kShuffle = 7,         // chain hop (per hop, per owner set)
  kSsSort = 8,          // SS baseline: the sort host's local engine rng
};

[[nodiscard]] constexpr std::uint64_t stream_id(StreamKind kind,
                                                std::size_t party,
                                                std::size_t index) {
  // kind:8 | party:24 | index:32 — n and l are far below these widths.
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(party) << 32) |
         static_cast<std::uint64_t>(index);
}

}  // namespace ppgr::core

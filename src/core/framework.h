// The paper's privacy preserving group ranking framework (Fig. 1):
//
//   Phase 1 — secure gain computation. Each participant P_j runs the secure
//   dot product with the initiator P0 on the expanded vectors of Sec. V and
//   obtains the masked partial gain β_j = ρ·p_j + ρ_j, converted to an l-bit
//   unsigned integer.
//
//   Phase 2 — unlinkable gain comparison. Distributed exponential-ElGamal
//   keygen with multi-verifier Schnorr proofs; bitwise encryption of β_j;
//   homomorphic evaluation of the first-difference comparison circuit
//   against every other participant; decrypt-shuffle chain P1 → ... → Pn in
//   which every hop partially decrypts, exponent-randomizes and permutes
//   every other participant's ciphertext set.
//
//   Phase 3 — ranking submission. Each participant counts zeros in her
//   returned set (rank = zeros + 1) and, if within top-k, submits her
//   information vector; the initiator cross-checks submissions by
//   recomputing gains.
//
// The classes below are the per-party protocol state machines; run_framework
// drives them and routes every inter-party message — serialized for real
// through the wire codecs — over a net::Router, which accounts the exact
// byte counts into a runtime::TraceRecorder (and, with metrics on, a
// runtime::CommRegistry with simulated virtual-time delivery), and accounts
// per-party computation time — producing both the protocol outputs and the
// observability data the benchmarks (Figs. 2 and 3) need.
#pragma once

#include <memory>
#include <optional>

#include "core/spec.h"
#include "crypto/elgamal.h"
#include "crypto/schnorr_proof.h"
#include "dotprod/dot_product.h"
#include "group/fixed_base.h"
#include "group/group.h"
#include "mpz/rng.h"
#include "net/fault.h"
#include "runtime/comm.h"
#include "runtime/flightrec.h"
#include "runtime/metrics.h"
#include "runtime/span.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"

namespace ppgr::runtime {
class ThreadPool;  // runtime/thread_pool.h
}

namespace ppgr::core {

using crypto::Ciphertext;
using group::Elem;
using group::Group;
using mpz::Rng;

/// A participant's flattened comparison set travelling the shuffle chain
/// ((n-1)·l ciphertexts; the paper's script-E_j).
using CipherSet = std::vector<Ciphertext>;

/// Party id for a fault not attributable to one party.
inline constexpr std::size_t kNoParty = static_cast<std::size_t>(-1);

/// Where and why a protocol run failed (DESIGN.md Sec. 7 "Failure model").
/// `party` is a router party id (0 = initiator, 1..n = participants,
/// kNoParty = unattributable); `round` is the transport round index at the
/// failure.
struct FaultInfo {
  runtime::Phase phase = runtime::Phase::kSetup;
  std::size_t round = 0;
  std::size_t party = kNoParty;
  std::string cause;
};

/// Typed protocol failure: every way a run can fail under faults — channel
/// give-up/timeout, peer crash, undecodable (tampered) message, rejected
/// zero-knowledge proof, or too few survivors to degrade onto — surfaces as
/// this exception, never as a hang, an abort or UB. Carries the fault
/// coordinates plus the router's full fault report (counters + injection
/// event log) for observability.
class ProtocolFault : public std::runtime_error {
 public:
  ProtocolFault(FaultInfo info, net::FaultReport report,
                const std::string& what)
      : std::runtime_error(what),
        info_(std::move(info)),
        report_(std::move(report)) {}

  [[nodiscard]] const FaultInfo& info() const { return info_; }
  [[nodiscard]] const net::FaultReport& report() const { return report_; }

 private:
  FaultInfo info_;
  net::FaultReport report_;
};

/// Joint-key-dependent precompute a PrecomputeSource hands a run: a
/// fixed-base table for the joint ElGamal key and a zero-encryption pool
/// sized for the run's n·(n-1)·l comparison re-randomizations. Either field
/// may be null (that component simply isn't accelerated).
struct KeyPrecompute {
  std::shared_ptr<const group::FixedBaseTable> key_table;
  std::shared_ptr<const crypto::ZeroPool> zero_pool;
};

/// Supplier of shared crypto precompute for run_framework (implemented by
/// the session engine's PrecomputeCache; see src/engine/precompute.h).
///
/// Contract: the returned artifacts must be pure functions of their inputs
/// — generator_table of the group, key_material of (group, joint key,
/// pool_size) plus whatever pool key the source fixes per session — so a
/// run's outputs never depend on whether an artifact was freshly built or
/// reused. run_framework mutes the metrics funnel around both calls for the
/// same reason: build cost must not leak into the session's counters.
class PrecomputeSource {
 public:
  virtual ~PrecomputeSource() = default;
  /// Called once at run start with the undecorated FrameworkConfig::group.
  /// May return null (no generator acceleration).
  [[nodiscard]] virtual std::shared_ptr<const group::FixedBaseTable>
  generator_table(const group::Group& base) = 0;
  /// Called once per run, right after the joint public key is assembled.
  /// `pool_size` is the exact number of zero encryptions the comparison
  /// step will consume (n·(n-1)·l).
  [[nodiscard]] virtual KeyPrecompute key_material(const group::Group& base,
                                                   const group::Elem& joint_key,
                                                   std::size_t pool_size) = 0;
};

/// Live conformance-audit hook (implemented by engine::ConformanceAuditor;
/// see src/engine/audit.h). The frameworks call phase_complete(p, ...) at
/// the boundary where phase p's counters are final (the registries are
/// flushed first, so the callback sees complete per-phase totals),
/// run_complete once after phase 3, run_degraded when a dropout degrade
/// replaces the full-set run with a survivor-set rerun, and run_faulted
/// just before a typed ProtocolFault is thrown. Strictly observation-only:
/// implementations read the registries and must not mutate protocol state.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void phase_complete(runtime::Phase phase,
                              const runtime::MetricsRegistry* metrics,
                              const runtime::CommRegistry* comm) = 0;
  virtual void run_complete(const std::vector<std::size_t>& submitted_ids,
                            const runtime::MetricsRegistry* metrics,
                            const runtime::CommRegistry* comm,
                            std::size_t rounds) = 0;
  virtual void run_degraded(const std::vector<std::size_t>& dropped) = 0;
  virtual void run_faulted(runtime::Phase phase) = 0;
};

/// Configuration shared by all parties.
struct FrameworkConfig {
  ProblemSpec spec;
  std::size_t n = 0;  // participants
  std::size_t k = 1;  // top-k
  const Group* group = nullptr;        // DDH group for phase 2
  const FpCtx* dot_field = nullptr;    // prime field for phase 1
  std::size_t dot_s = 8;               // disguise dimension of the dot product
  /// Execution-engine concurrency for run_framework: 1 = serial (default),
  /// 0 = hardware concurrency, N = N-way fork-join. Outputs are
  /// bit-identical for every value (see DESIGN.md, "Threading model &
  /// determinism"). Must be 1 when `group` is not thread-safe (e.g.
  /// group::CountingGroup).
  std::size_t parallelism = 1;
  /// Enables the observability layer (DESIGN.md, "Observability"): the run
  /// wraps `group` in group::MeteredGroup, records hierarchical spans and
  /// per-(phase, party) crypto-op counters, and returns them in
  /// FrameworkResult::metrics / ::spans. Counter totals and span streams are
  /// bit-identical for every `parallelism` value; wall-clock fields are not.
  bool metrics = false;
  /// Execute on an external long-lived pool instead of constructing a
  /// per-run one (the session engine shares one pool across all in-flight
  /// sessions; runtime::ThreadPool supports concurrent parallel_for calls).
  /// Null (the default) preserves the original behavior: a private pool of
  /// `parallelism` threads per run. When set, `parallelism` is ignored.
  runtime::ThreadPool* shared_pool = nullptr;
  /// Shared crypto precompute (generator/joint-key comb tables, a zero
  /// -encryption pool for the comparison step and the bitwise β
  /// encryptions). Null (the default) runs the original non-precomputed
  /// path. Protocol *outputs* are identical either way; with a source
  /// attached, per-op group counts shift from exponentiations to
  /// multiplications (see DESIGN.md §6).
  PrecomputeSource* precompute = nullptr;
  /// Phase-2 multi-exponentiation acceleration (DESIGN.md §5e): the
  /// comparison circuit and the shuffle hops compute through
  /// group::multi_exp fusions and fixed-base windows on the *undecorated*
  /// group, then credit the exact interface-level op counts the naive
  /// evaluation reports — so every output (ranks, β, wire bytes, metrics
  /// minus the accel_* counters) is bit-identical with the flag on or off,
  /// at any parallelism. Turn it off for op-count *measurement through the
  /// group decorator itself* (benchcore's CountingGroup model runs do).
  bool accel = true;
  /// Deterministic fault schedule routed into the run's net::Router; must
  /// outlive the run. Null or disabled: the fault layer is a strict no-op
  /// and every output/export is bit-identical to a build without it.
  const net::FaultPlan* fault_plan = nullptr;
  /// Live round-progress hook (see runtime/telemetry.h): the run's Router
  /// reports (phase, round) at every phase change and round barrier, which
  /// is what the session engine's stall watchdog watches. Must outlive the
  /// run. Null (the default): zero overhead; never affects outputs either
  /// way — progress reporting is observation, not computation.
  runtime::ProgressSink* progress = nullptr;
  /// Dropout policy: when a participant is declared dead *before the
  /// phase-2 commitment* (i.e. during phase 1), rerun the protocol over the
  /// surviving party set instead of aborting — the paper's β_j ordering is
  /// independent per party, so the survivors' ranking is exactly the
  /// ranking of the reduced instance (k is clamped to the survivor count).
  /// Dropouts at or after phase 2 always abort with a ProtocolFault:
  /// comparisons and the shuffle chain bind all parties cryptographically.
  /// Security caveat: degrading reveals *that* the dropped parties are
  /// absent and re-randomizes the survivors' masks — see DESIGN.md Sec. 7.
  bool degrade_on_dropout = false;
  /// Live conformance audit (see AuditSink above). Requires `metrics`; must
  /// outlive the run. Null: no checkpoints fire, zero overhead.
  AuditSink* audit = nullptr;
  /// Forensic flight recorder (runtime/flightrec.h): forwarded to the run's
  /// Router so phase/round/send/fault-ladder events land in the ring, plus
  /// degrade/fault events recorded here. Must outlive the run. Null: one
  /// untaken branch per event site, no output changes either way.
  runtime::FlightRecorder* flight = nullptr;

  void validate() const;
};

/// P0. Holds the criterion/weight vectors, ρ and the per-participant ρ_j.
class Initiator {
 public:
  Initiator(const FrameworkConfig& cfg, AttrVec v0, AttrVec w, Rng& rng);

  /// Phase 1 step 3: answer participant j's dot-product message.
  [[nodiscard]] dotprod::AliceRound2 answer_gain_query(
      std::size_t j, const dotprod::BobRound1& msg);

  /// Phase 3: a top-k submission.
  struct Submission {
    std::size_t participant;  // 1-based id
    std::size_t claimed_rank;
    AttrVec info;
  };
  void receive_submission(Submission s);
  /// Detects over-claimed ranks by recomputing gains of all submissions
  /// (the check described at the end of Sec. V): returns the ids whose
  /// claimed rank order contradicts the recomputed gain order.
  [[nodiscard]] std::vector<std::size_t> inconsistent_submissions() const;
  [[nodiscard]] const std::vector<Submission>& submissions() const {
    return submissions_;
  }

  [[nodiscard]] const Nat& rho() const { return rho_; }

 private:
  const FrameworkConfig& cfg_;
  AttrVec v0_;
  AttrVec w_;
  Rng& rng_;
  Nat rho_;                  // h-bit, shared across participants
  std::vector<Nat> rho_j_;   // per-participant masks, < rho
  std::vector<Submission> submissions_;
};

/// P_j (1-based id). Drives its side of all three phases.
class Participant {
 public:
  Participant(const FrameworkConfig& cfg, std::size_t id, AttrVec info,
              Rng& rng);

  // Every randomness-consuming step has two forms: the original one drawing
  // from the Rng bound at construction (kept for direct/single-threaded
  // use), and an overload taking an explicit Rng — the parallel execution
  // engine passes each task its own counter-seeded stream so results do not
  // depend on scheduling (DESIGN.md, "Threading model & determinism").

  // --- phase 1 ---
  [[nodiscard]] const dotprod::BobRound1& gain_query() {
    return gain_query(rng_);
  }
  [[nodiscard]] const dotprod::BobRound1& gain_query(Rng& rng);
  void receive_gain_answer(const dotprod::AliceRound2& answer);
  /// Unsigned l-bit masked gain (available after phase 1).
  [[nodiscard]] const Nat& beta() const { return beta_; }

  // --- phase 2 ---
  /// Step 5: publish the ElGamal public key share.
  [[nodiscard]] const Elem& public_key() { return public_key(rng_); }
  [[nodiscard]] const Elem& public_key(Rng& rng);
  [[nodiscard]] crypto::SchnorrTranscript prove_key(std::size_t n_verifiers) {
    return prove_key(n_verifiers, rng_);
  }
  [[nodiscard]] crypto::SchnorrTranscript prove_key(std::size_t n_verifiers,
                                                    Rng& rng);
  [[nodiscard]] bool verify_peer_key(const Elem& y,
                                     const crypto::SchnorrTranscript& proof) const;
  /// Called once all shares are collected.
  void set_joint_key(const Elem& y) { joint_key_ = y; }
  /// Step 6: bitwise encryption of β under the joint key (l ciphertexts,
  /// LSB first).
  [[nodiscard]] std::vector<Ciphertext> encrypt_beta_bits() {
    return encrypt_beta_bits(rng_);
  }
  [[nodiscard]] std::vector<Ciphertext> encrypt_beta_bits(Rng& rng);
  /// One ciphertext of step 6: E(bit b of β). The engine fans this out
  /// across the l bits, one Rng stream per bit.
  [[nodiscard]] Ciphertext encrypt_beta_bit(std::size_t b, Rng& rng) const;
  /// Pool-fed form: when `pool` is non-null, bit b rides the precomputed
  /// zero encryption pool->entries[pool_offset + b] (crypto::
  /// encrypt_exp_with) instead of drawing randomness — run_framework hands
  /// each party the l-entry slice after the comparison region of the
  /// widened pool. `rng` is only consumed on the drawing fallback.
  [[nodiscard]] Ciphertext encrypt_beta_bit(std::size_t b, Rng& rng,
                                            const crypto::ZeroPool* pool,
                                            std::size_t pool_offset) const;
  /// Step 7: homomorphic comparison of own (plaintext) bits against another
  /// participant's encrypted bits; returns E(τ^1..τ^l). A zero among the τ
  /// plaintexts means the peer's β is larger.
  [[nodiscard]] std::vector<Ciphertext> compare_against(
      const std::vector<Ciphertext>& peer_bits) const {
    return compare_against(peer_bits, rng_);
  }
  [[nodiscard]] std::vector<Ciphertext> compare_against(
      const std::vector<Ciphertext>& peer_bits, Rng& rng) const {
    return compare_against(peer_bits, rng, nullptr, 0);
  }
  /// Pool-fed form: when `pool` is non-null, the final re-randomization of
  /// τ_b consumes pool->entries[pool_offset + b] instead of drawing from
  /// `rng` — two multiplications instead of two exponentiations. The caller
  /// assigns each evaluation a disjoint l-entry slice (the engine uses
  /// pool_offset = task_index · l), so every entry is used at most once per
  /// run and the slice is a pure function of the task's protocol position.
  [[nodiscard]] std::vector<Ciphertext> compare_against(
      const std::vector<Ciphertext>& peer_bits, Rng& rng,
      const crypto::ZeroPool* pool, std::size_t pool_offset) const;
  /// Step 8: one chain hop over a peer's set — partial decryption with this
  /// party's key share, per-ciphertext exponent randomization, and a uniform
  /// permutation of the set.
  void shuffle_hop(CipherSet& set) { shuffle_hop(set, rng_); }
  void shuffle_hop(CipherSet& set, Rng& rng);
  /// Step 9: final decryption of the own returned set; rank = zeros + 1.
  [[nodiscard]] std::size_t compute_rank(const CipherSet& own_set) const;

  // --- phase 3 ---
  [[nodiscard]] std::optional<Initiator::Submission> submission(
      std::size_t rank) const;

  /// Arms the phase-2 multi-exponentiation fast path (FrameworkConfig::
  /// accel): `fast` is the undecorated group the accelerated
  /// compare_against / shuffle_hop compute through (bypassing any metering
  /// decorator — the fast path credits the naive op counts itself), and
  /// `key_table` is a fixed-base window table for the joint public key used
  /// by the circuit re-randomizations. Both must outlive this party; null
  /// `fast` restores the naive path. Call after set_joint_key.
  void set_accel_context(const Group* fast,
                         std::shared_ptr<const group::FixedBaseTable> key_table);

  [[nodiscard]] std::size_t id() const { return id_; }
  [[nodiscard]] const AttrVec& info() const { return info_; }

 private:
  [[nodiscard]] std::vector<Ciphertext> compare_against_accel(
      const std::vector<Ciphertext>& peer_bits, Rng& rng,
      const crypto::ZeroPool* pool, std::size_t pool_offset) const;
  void shuffle_hop_accel(CipherSet& set, Rng& rng);

  const FrameworkConfig& cfg_;
  std::size_t id_;
  AttrVec info_;
  Rng& rng_;
  std::optional<dotprod::DotProductBob> dot_;
  Nat beta_;  // unsigned l-bit
  crypto::KeyPair key_;
  bool key_generated_ = false;
  Elem joint_key_;
  // Accelerated-path context (set_accel_context); naive when fast_ is null.
  const Group* fast_ = nullptr;
  std::shared_ptr<const group::FixedBaseTable> key_table_;
};

/// Outputs plus observability data.
struct FrameworkResult {
  std::vector<std::size_t> ranks;          // per participant, 1-based
  std::vector<std::size_t> submitted_ids;  // participants with rank <= k
  /// Per-participant masked gains β_j — protocol-internal values exposed for
  /// observability and the determinism tests (this is an in-process
  /// honest-but-curious simulation; nothing leaves the process).
  std::vector<Nat> betas;
  runtime::TraceRecorder trace;
  std::vector<double> compute_seconds;     // index 0 = initiator
  /// Populated iff FrameworkConfig::metrics; null otherwise. Exporters:
  /// metrics->to_json(), spans->chrome_trace_json(),
  /// runtime::phase_report(*metrics, spans.get(), comm.get()).
  std::unique_ptr<runtime::MetricsRegistry> metrics;
  std::unique_ptr<runtime::SpanRecorder> spans;
  /// Measured communication: per-message flows with exact serialized bytes
  /// and virtual-time delivery segments. Exporters: comm->to_json()
  /// ("ppgr.comm.v1"), comm->chrome_trace_json() (flow events). Populated
  /// iff FrameworkConfig::metrics; the TraceRecorder byte accounting is
  /// always on.
  std::unique_ptr<runtime::CommRegistry> comm;
  /// Participants (1-based) that completed the run. All of 1..n normally;
  /// the survivor set after a degrade-on-dropout continuation. For dropped
  /// parties, ranks[j-1] == 0 and betas[j-1] is empty.
  std::vector<std::size_t> active_parties;
  /// Participants (1-based) declared dead and degraded around.
  std::vector<std::size_t> dropped_parties;
  /// Present iff a fault plan was installed: the run's fault report
  /// ("ppgr.fault.v1" via to_json()).
  std::optional<net::FaultReport> faults;
};

/// Runs the whole framework honestly (HBC) with in-process parties.
[[nodiscard]] FrameworkResult run_framework(const FrameworkConfig& cfg,
                                            const AttrVec& v0, const AttrVec& w,
                                            const std::vector<AttrVec>& infos,
                                            Rng& rng);

/// Plain (insecure) reference ranking for tests and examples: ranks by gain,
/// non-increasing; tied gains share a rank.
[[nodiscard]] std::vector<std::size_t> reference_ranks(
    const ProblemSpec& spec, const AttrVec& v0, const AttrVec& w,
    const std::vector<AttrVec>& infos);

/// Default phase-1 field: 2^255 - 19, large enough for every spec this
/// library accepts (beta_bits() <= ~210 at the extreme sweep settings).
[[nodiscard]] const FpCtx& default_dot_field();

}  // namespace ppgr::core

#include "core/codec.h"

namespace ppgr::core {

namespace {
std::size_t field_bytes(const FpCtx& f) { return (f.bits() + 7) / 8; }
}  // namespace

void write_field_elem(Writer& w, const FpCtx& f, const Nat& elem) {
  w.raw(f.from(elem).to_bytes_be(field_bytes(f)));
}

Nat read_field_elem(Reader& r, const FpCtx& f) {
  const Nat v = Nat::from_bytes_be(r.raw(field_bytes(f)));
  if (v >= f.p()) throw runtime::WireError("field element out of range");
  return f.to(v);
}

void write_bob_round1(Writer& w, const FpCtx& f, const dotprod::BobRound1& m) {
  w.varint(m.qx.size());
  w.varint(m.qx.empty() ? 0 : m.qx[0].size());
  for (const auto& row : m.qx)
    for (const auto& x : row) write_field_elem(w, f, x);
  for (const auto& x : m.cprime) write_field_elem(w, f, x);
  for (const auto& x : m.gvec) write_field_elem(w, f, x);
}

dotprod::BobRound1 read_bob_round1(Reader& r, const FpCtx& f) {
  const std::uint64_t s = r.varint();
  const std::uint64_t d = r.varint();
  const std::size_t fe = field_bytes(f);
  if (d == 0 || s == 0 || (s + 2) * d * fe > r.remaining() + fe)
    throw runtime::WireError("bob_round1: bad dimensions");
  dotprod::BobRound1 m;
  m.qx.assign(s, dotprod::FVec(d));
  for (auto& row : m.qx)
    for (auto& x : row) x = read_field_elem(r, f);
  m.cprime.resize(d);
  for (auto& x : m.cprime) x = read_field_elem(r, f);
  m.gvec.resize(d);
  for (auto& x : m.gvec) x = read_field_elem(r, f);
  return m;
}

void write_alice_round2(Writer& w, const FpCtx& f,
                        const dotprod::AliceRound2& m) {
  write_field_elem(w, f, m.a);
  write_field_elem(w, f, m.h);
}

dotprod::AliceRound2 read_alice_round2(Reader& r, const FpCtx& f) {
  dotprod::AliceRound2 m;
  m.a = read_field_elem(r, f);
  m.h = read_field_elem(r, f);
  return m;
}

void write_submission(Writer& w, const Initiator::Submission& s) {
  w.varint(s.participant);
  w.varint(s.claimed_rank);
  w.varint(s.info.size());
  for (const auto v : s.info) w.varint(v);
}

Initiator::Submission read_submission(Reader& r, const ProblemSpec& spec) {
  Initiator::Submission s;
  s.participant = static_cast<std::size_t>(r.varint());
  s.claimed_rank = static_cast<std::size_t>(r.varint());
  const std::uint64_t m = r.varint();
  if (m != spec.m) throw runtime::WireError("submission: wrong dimension");
  s.info.reserve(spec.m);
  for (std::uint64_t i = 0; i < m; ++i) s.info.push_back(r.varint());
  spec.check_attributes(s.info);  // enforces the d1 bound
  return s;
}

}  // namespace ppgr::core

#include "core/codec.h"

namespace ppgr::core {

namespace {
std::size_t field_bytes(const FpCtx& f) { return (f.bits() + 7) / 8; }
}  // namespace

void write_field_elem(Writer& w, const FpCtx& f, const Nat& elem) {
  w.raw(f.from(elem).to_bytes_be(field_bytes(f)));
}

Nat read_field_elem(Reader& r, const FpCtx& f) {
  const Nat v = Nat::from_bytes_be(r.raw(field_bytes(f)));
  if (v >= f.p()) throw runtime::WireError("field element out of range");
  return f.to(v);
}

void write_bob_round1(Writer& w, const FpCtx& f, const dotprod::BobRound1& m) {
  w.varint(m.qx.size());
  w.varint(m.qx.empty() ? 0 : m.qx[0].size());
  for (const auto& row : m.qx)
    for (const auto& x : row) write_field_elem(w, f, x);
  for (const auto& x : m.cprime) write_field_elem(w, f, x);
  for (const auto& x : m.gvec) write_field_elem(w, f, x);
}

dotprod::BobRound1 read_bob_round1(Reader& r, const FpCtx& f) {
  const std::uint64_t s = r.varint();
  const std::uint64_t d = r.varint();
  const std::size_t fe = field_bytes(f);
  if (d == 0 || s == 0 || (s + 2) * d * fe > r.remaining() + fe)
    throw runtime::WireError("bob_round1: bad dimensions");
  dotprod::BobRound1 m;
  m.qx.assign(s, dotprod::FVec(d));
  for (auto& row : m.qx)
    for (auto& x : row) x = read_field_elem(r, f);
  m.cprime.resize(d);
  for (auto& x : m.cprime) x = read_field_elem(r, f);
  m.gvec.resize(d);
  for (auto& x : m.gvec) x = read_field_elem(r, f);
  return m;
}

void write_alice_round2(Writer& w, const FpCtx& f,
                        const dotprod::AliceRound2& m) {
  write_field_elem(w, f, m.a);
  write_field_elem(w, f, m.h);
}

dotprod::AliceRound2 read_alice_round2(Reader& r, const FpCtx& f) {
  dotprod::AliceRound2 m;
  m.a = read_field_elem(r, f);
  m.h = read_field_elem(r, f);
  return m;
}

namespace {
std::size_t attr_bytes(const ProblemSpec& spec) { return (spec.d1 + 7) / 8; }
}  // namespace

void write_submission(Writer& w, const ProblemSpec& spec,
                      const Initiator::Submission& s) {
  // Validate up front: the fixed-width encoding would silently truncate an
  // out-of-range attribute.
  spec.check_attributes(s.info);
  w.u32(static_cast<std::uint32_t>(s.participant));
  w.u32(static_cast<std::uint32_t>(s.claimed_rank));
  const std::size_t ab = attr_bytes(spec);
  for (const auto v : s.info) {
    std::uint8_t be[8];
    for (std::size_t i = 0; i < ab; ++i)
      be[i] = static_cast<std::uint8_t>(v >> (8 * (ab - 1 - i)));
    w.raw(std::span{be, ab});
  }
}

Initiator::Submission read_submission(Reader& r, const ProblemSpec& spec) {
  Initiator::Submission s;
  s.participant = r.u32();
  s.claimed_rank = r.u32();
  const std::size_t ab = attr_bytes(spec);
  s.info.reserve(spec.m);
  for (std::size_t i = 0; i < spec.m; ++i) {
    const auto be = r.raw(ab);
    std::uint64_t v = 0;
    for (const auto byte : be) v = (v << 8) | byte;
    s.info.push_back(v);
  }
  spec.check_attributes(s.info);  // enforces the d1 bound
  return s;
}

std::size_t submission_wire_bytes(const ProblemSpec& spec) {
  return spec.m * attr_bytes(spec) + 8;
}

}  // namespace ppgr::core

// The paper's comparison baseline: the "SS framework" (Sec. VII).
//
// Phase 1 is identical to the main framework (the secure dot product with
// the initiator produces each participant's masked gain β_j); phase 2 is
// replaced by the Jónsson-style secret-sharing sort: β values are shared
// among the n participants and ranked through a Batcher network of
// Nishide–Ohta comparisons. Phase 3 is the same submission step.
//
// Note what this baseline gives up relative to the paper's protocol: the
// complete ranking permutation becomes public (every party sees which party
// holds every rank), and the collusion threshold drops to t < n/2 because
// GRR degree reduction needs 2t+1 honest-behaving parties.
#pragma once

#include "core/framework.h"
#include "sss/mpc_sort.h"

namespace ppgr::core {

struct SsFrameworkResult {
  std::vector<std::size_t> ranks;          // per participant, 1-based
  std::vector<std::size_t> submitted_ids;  // rank <= k
  sss::MpcCosts sort_costs;                // exact metered MPC costs
  std::uint64_t parallel_rounds = 0;       // phase-2 parallel rounds
  std::size_t comparators = 0;
  runtime::TraceRecorder trace;            // phase-1 exact + phase-2 synthetic
  std::vector<double> compute_seconds;     // index 0 = initiator
  /// Populated iff base.metrics (same contract as FrameworkResult). The SS
  /// baseline runs serially, so spans are pushed straight to the recorder.
  std::unique_ptr<runtime::MetricsRegistry> metrics;
  std::unique_ptr<runtime::SpanRecorder> spans;
  /// Measured communication (see FrameworkResult::comm): phase-1 and
  /// phase-3 flows carry real serialized payloads; the phase-2 sort traffic
  /// is transmitted per the engine's exact byte meter.
  std::unique_ptr<runtime::CommRegistry> comm;
  /// Fault-tolerance bookkeeping, mirroring FrameworkResult: the 1-based
  /// ids that finished the run, the ids dropped by degrade-on-dropout
  /// (ranks[j-1] == 0 for those), and the fault report when a plan was
  /// installed.
  std::vector<std::size_t> active_parties;
  std::vector<std::size_t> dropped_parties;
  std::optional<net::FaultReport> faults;
};

struct SsFrameworkConfig {
  FrameworkConfig base;     // group is unused; dot_field/spec/n/k are
  std::size_t threshold;    // SS threshold t (max colluders), n >= 2t+1
  sss::MpcEngine::Mode mode = sss::MpcEngine::Mode::kReal;
};

/// Prime field sized for comparing l-bit β values (p > 2^(l+1), so that the
/// Nishide–Ohta |a-b| < p/2 condition holds). Deterministic per l.
[[nodiscard]] const FpCtx& ss_field_for_beta_bits(std::size_t l);

[[nodiscard]] SsFrameworkResult run_ss_framework(const SsFrameworkConfig& cfg,
                                                 const AttrVec& v0,
                                                 const AttrVec& w,
                                                 const std::vector<AttrVec>& infos,
                                                 Rng& rng);

}  // namespace ppgr::core

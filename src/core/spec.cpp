#include "core/spec.h"

#include <bit>
#include <stdexcept>

namespace ppgr::core {

namespace {

Int u64_int(std::uint64_t v) { return Int{mpz::Nat{v}, false}; }

std::size_t ceil_log2(std::size_t m) {
  return std::bit_width(m - 1);  // m >= 1
}

}  // namespace

void ProblemSpec::validate() const {
  if (m == 0) throw std::invalid_argument("ProblemSpec: m must be >= 1");
  if (t > m) throw std::invalid_argument("ProblemSpec: t must be <= m");
  if (d1 == 0 || d1 > 63 || d2 == 0 || d2 > 63)
    throw std::invalid_argument("ProblemSpec: d1/d2 must be in [1, 63]");
  if (h == 0 || h > 63)
    throw std::invalid_argument("ProblemSpec: h must be in [1, 63]");
}

void ProblemSpec::check_attributes(const AttrVec& v) const {
  if (v.size() != m)
    throw std::invalid_argument("attribute vector has wrong dimension");
  for (const auto x : v) {
    if (d1 < 64 && x >= (std::uint64_t{1} << d1))
      throw std::invalid_argument("attribute value exceeds d1 bits");
  }
}

void ProblemSpec::check_weights(const AttrVec& w) const {
  if (w.size() != m)
    throw std::invalid_argument("weight vector has wrong dimension");
  for (const auto x : w) {
    if (d2 < 64 && x >= (std::uint64_t{1} << d2))
      throw std::invalid_argument("weight value exceeds d2 bits");
  }
}

std::size_t ProblemSpec::beta_bits() const {
  return h + ceil_log2(m) + 2 * d1 + d2 + 3;
}

Int gain(const ProblemSpec& spec, const AttrVec& v0, const AttrVec& w,
         const AttrVec& v) {
  spec.check_attributes(v0);
  spec.check_attributes(v);
  spec.check_weights(w);
  Int g;
  for (std::size_t k = 0; k < spec.m; ++k) {
    const Int diff = u64_int(v[k]) - u64_int(v0[k]);
    if (k < spec.t) {
      g -= u64_int(w[k]) * diff * diff;
    } else {
      g += u64_int(w[k]) * diff;
    }
  }
  return g;
}

Int partial_gain(const ProblemSpec& spec, const AttrVec& v0, const AttrVec& w,
                 const AttrVec& v) {
  spec.check_attributes(v0);
  spec.check_attributes(v);
  spec.check_weights(w);
  Int p;
  for (std::size_t k = 0; k < spec.m; ++k) {
    const Int wk = u64_int(w[k]);
    const Int vk = u64_int(v[k]);
    if (k < spec.t) {
      p -= wk * vk * vk - Int{2} * wk * vk * u64_int(v0[k]);
    } else {
      p += wk * vk;
    }
  }
  return p;
}

Int gain_offset(const ProblemSpec& spec, const AttrVec& v0, const AttrVec& w) {
  // C = Σ_{k>t} w_k v0_k + Σ_{k<=t} w_k v0_k^2, so that g = p - C.
  Int c;
  for (std::size_t k = 0; k < spec.m; ++k) {
    const Int wk = u64_int(w[k]);
    const Int v0k = u64_int(v0[k]);
    c += (k < spec.t) ? wk * v0k * v0k : wk * v0k;
  }
  return c;
}

Nat signed_to_unsigned(const Int& s, std::size_t l) {
  const Int shifted = s + Int{Nat::pow2(l - 1), false};
  if (shifted.is_negative() || shifted.magnitude().bit_length() > l)
    throw std::overflow_error("signed_to_unsigned: value out of l-bit range");
  return shifted.magnitude();
}

Int unsigned_to_signed(const Nat& u, std::size_t l) {
  if (u.bit_length() > l)
    throw std::overflow_error("unsigned_to_signed: value out of range");
  return Int::from_nat(u) - Int{Nat::pow2(l - 1), false};
}

std::vector<Nat> participant_vector(const FpCtx& field,
                                    const ProblemSpec& spec, const AttrVec& v) {
  spec.check_attributes(v);
  std::vector<Nat> out;
  out.reserve(spec.m + spec.t + 1);
  // vg: "greater-than" part.
  for (std::size_t k = spec.t; k < spec.m; ++k)
    out.push_back(field.to(Nat{v[k]}));
  // ve * ve.
  for (std::size_t k = 0; k < spec.t; ++k)
    out.push_back(field.to(Nat::mul(Nat{v[k]}, Nat{v[k]})));
  // ve.
  for (std::size_t k = 0; k < spec.t; ++k) out.push_back(field.to(Nat{v[k]}));
  // trailing 1.
  out.push_back(field.one());
  return out;
}

std::vector<Nat> initiator_vector(const FpCtx& field, const ProblemSpec& spec,
                                  const AttrVec& v0, const AttrVec& w,
                                  const Nat& rho, const Nat& rho_j) {
  spec.check_attributes(v0);
  spec.check_weights(w);
  const Nat rho_f = field.to(rho);
  std::vector<Nat> out;
  out.reserve(spec.m + spec.t + 1);
  // ρ·wg.
  for (std::size_t k = spec.t; k < spec.m; ++k)
    out.push_back(field.mul(rho_f, field.to(Nat{w[k]})));
  // -ρ·we.
  for (std::size_t k = 0; k < spec.t; ++k)
    out.push_back(field.neg(field.mul(rho_f, field.to(Nat{w[k]}))));
  // 2ρ·(we * ve0).
  for (std::size_t k = 0; k < spec.t; ++k) {
    const Nat wv = field.mul(field.to(Nat{w[k]}), field.to(Nat{v0[k]}));
    const Nat rho_wv = field.mul(rho_f, wv);
    out.push_back(field.add(rho_wv, rho_wv));
  }
  // ρ_j.
  out.push_back(field.to(rho_j));
  return out;
}

Int masked_partial_gain(const ProblemSpec& spec, const AttrVec& v0,
                        const AttrVec& w, const AttrVec& v, const Nat& rho,
                        const Nat& rho_j) {
  return Int::from_nat(rho) * partial_gain(spec, v0, w, v) +
         Int::from_nat(rho_j);
}

}  // namespace ppgr::core

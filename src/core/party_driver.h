// One-party protocol driver for real-transport deployments (DESIGN.md §5f).
//
// run_framework() executes all n+1 party state machines in one process and
// moves messages through the Router's mailboxes. run_party() is the other
// half of the transport seam: it drives exactly ONE party's state machine —
// the initiator (party 0) or one participant — and routes every message
// through a net::Transport (in practice net::tcp::TcpTransport, one OS
// process per party). The ppgr_party executable is a thin shell around it.
//
// Determinism contract: run_party draws every random value from the same
// counter-addressed substreams (core/streams.h) run_framework uses, and
// every stream is consumed by exactly one party. Processes launched with a
// shared --seed therefore reproduce a same-seed run_framework run bit for
// bit (β values, ciphertexts, ranks) — the loopback verification harness
// tests exactly that. Without a shared seed each process seeds from OS
// entropy and the run is still a correct protocol execution, just not
// comparable to a reference run. The shared seed is a verification harness,
// NOT part of the security model (a real deployment would never share it).
//
// Wire-protocol deviations from the in-process run (both documented in
// DESIGN.md §5f):
//  - Schnorr proofs travel as full transcripts (commitment + challenges +
//    response) — the in-process run ships commitment/response only and
//    shares challenges out-of-band, which separate processes cannot do.
//  - Phase 3: every participant sends the initiator one message
//    `u32 rank | u8 has-submission | [submission]`, so the initiator can
//    print the complete ranking; in-process, non-submitting parties send
//    nothing (their ranks are visible to the orchestrator anyway).
//
// SS baseline (`ss = true`): phases 1 and 3 are fully distributed as above;
// the phase-2 secret-sharing sort runs on the sort host (party 1), which
// collects every β, runs the existing sss::MpcEngine — itself a one-process
// simulation of all n share-holders — and returns each party its rank. The
// SS ranks still match a same-seed run_ss_framework run whenever gains are
// distinct (β masking is order-preserving), which is what the harness
// asserts.
#pragma once

#include <memory>
#include <vector>

#include "core/framework.h"
#include "net/transport.h"

namespace ppgr::core {

struct PartyConfig {
  /// The public instance agreement every process must share: spec, group,
  /// n, k, dot_field, accel. fault_plan must be null (fault injection is a
  /// simulator construct); parallelism/pool are unused (one party's state
  /// machine runs serially).
  FrameworkConfig fw;
  /// Own party id: 0 = initiator, 1..n = participants.
  std::size_t party = 0;
  /// Run the SS baseline's phase 2 (sort host = party 1) instead of the
  /// HE comparison/shuffle phase.
  bool ss = false;
  /// SS threshold t (max colluders), n >= 2t+1. Ignored unless ss.
  std::size_t ss_threshold = 1;
};

struct PartyInput {
  AttrVec v0;    // initiator only: requester attributes
  AttrVec w;     // initiator only: weights
  AttrVec info;  // participant only: own attribute vector
};

struct PartyResult {
  /// Own rank (participants; 0 for the initiator).
  std::size_t rank = 0;
  /// Own masked gain β (participants).
  Nat beta;
  /// All parties' claimed ranks, index participant-1 (initiator only).
  std::vector<std::size_t> ranks;
  /// 1-based ids whose submissions arrived (initiator only).
  std::vector<std::size_t> submitted_ids;
  /// Exact byte accounting of this process's links (both directions).
  runtime::TraceRecorder trace;
  /// Measured communication with wall-clock round timings; iff fw.metrics.
  std::unique_ptr<runtime::CommRegistry> comm;
  /// Transport frame-level counters in the ppgr.fault.v1 taxonomy.
  net::FaultReport faults;
};

/// Drives party cfg.party of the protocol over `transport`, blocking until
/// the party's run completes. Every failure — socket errors, undecodable or
/// out-of-contract messages, rejected proofs — surfaces as a typed
/// ProtocolFault carrying phase/round/party context and the transport's
/// fault report.
[[nodiscard]] PartyResult run_party(const PartyConfig& cfg,
                                    const PartyInput& input,
                                    net::Transport& transport, Rng& rng);

}  // namespace ppgr::core

#include "core/ss_framework.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "core/codec.h"
#include "mpz/prime.h"
#include "net/channel.h"

namespace ppgr::core {

const FpCtx& ss_field_for_beta_bits(std::size_t l) {
  static std::mutex mu;
  static std::map<std::size_t, std::unique_ptr<FpCtx>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[l];
  if (!slot) {
    // Deterministic seed per l keeps benchmarks reproducible.
    mpz::ChaChaRng rng{0x55AA0000u + l};
    slot = std::make_unique<FpCtx>(mpz::random_prime(l + 2, rng));
  }
  return *slot;
}

SsFrameworkResult run_ss_framework(const SsFrameworkConfig& cfg,
                                   const AttrVec& v0, const AttrVec& w,
                                   const std::vector<AttrVec>& infos,
                                   Rng& rng) {
  const FrameworkConfig& base = cfg.base;
  base.validate();
  if (infos.size() != base.n)
    throw std::invalid_argument("run_ss_framework: infos size != n");
  const std::size_t n = base.n;
  const std::size_t l = base.spec.beta_bits();
  const bool counting = cfg.mode == sss::MpcEngine::Mode::kCountOnly;

  SsFrameworkResult result;
  runtime::PartyTimer timer{n + 1};

  // Serial observability: one metrics buffer installed for the whole run
  // (context re-pointed per step), spans pushed straight to the recorder.
  if (base.metrics) {
    result.metrics = std::make_unique<runtime::MetricsRegistry>();
    result.spans = std::make_unique<runtime::SpanRecorder>();
    result.comm = std::make_unique<runtime::CommRegistry>();
  }
  net::Router::Config router_cfg;
  router_cfg.faults = base.fault_plan;
  router_cfg.progress = base.progress;
  router_cfg.flight = base.flight;
  net::Router router{n + 1, result.trace, result.comm.get(), router_cfg};

  // Fault handling mirrors run_framework: channel-layer failures surface as
  // typed ProtocolFaults naming the phase, round and blamed party.
  const auto proto_fault = [&](runtime::Phase phase, std::size_t party,
                               const std::string& cause) {
    FaultInfo info;
    info.phase = phase;
    info.round = router.round_index();
    info.party = party;
    info.cause = cause;
    std::string what = "run_ss_framework: " + cause + " [phase " +
                       std::string(runtime::phase_name(phase)) + ", round " +
                       std::to_string(info.round);
    if (party != kNoParty) what += ", party P" + std::to_string(party);
    what += "]";
    if (base.flight != nullptr)
      base.flight->record(
          runtime::FlightEventKind::kFault, phase,
          static_cast<std::uint16_t>(party == kNoParty ? 0 : party + 1), 0, 0,
          router.round_index());
    if (base.audit != nullptr) base.audit->run_faulted(phase);
    return ProtocolFault{std::move(info), router.fault_report(), what};
  };
  const auto blame = [&](const net::ChannelError& e) {
    if (router.party_dead(e.src())) return e.src();
    if (router.party_dead(e.dst())) return e.dst();
    return e.src() == 0 ? e.dst() : e.src();
  };
  const auto rethrow_as_fault = [&](runtime::Phase phase) {
    try {
      throw;
    } catch (const ProtocolFault&) {
      throw;
    } catch (const net::ChannelError& e) {
      throw proto_fault(phase, blame(e),
                        std::string("channel failure: ") + e.what());
    } catch (const runtime::WireError& e) {
      if (base.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("undecodable message: ") + e.what());
    } catch (const std::invalid_argument& e) {
      if (base.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("invalid message content: ") + e.what());
    } catch (const std::exception& e) {
      // Tampered payloads carry a valid CRC and decode into garbage that can
      // trip any downstream validation (range checks, share consistency...).
      // Under an installed plan every such failure is a protocol fault, not
      // a crash; without one, rethrow untouched.
      if (base.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("corrupted protocol state: ") + e.what());
    }
  };

  runtime::SpanSink* const span_sink = result.spans.get();
  runtime::MetricsBuffer mbuf;
  const runtime::MetricsScope mscope{base.metrics ? &mbuf : nullptr,
                                     runtime::Phase::kSetup,
                                     runtime::kOrchestratorParty};
  const runtime::SpanScope framework_span{span_sink, "framework",
                                          runtime::Phase::kSetup,
                                          runtime::kOrchestratorParty};
  // Audit checkpoint: phase `completed` is done; drain the staged buffer so
  // the registry holds the phase's final counters, then re-point the
  // staging context (absorb resets it).
  const auto audit_checkpoint = [&](runtime::Phase completed) {
    if (base.audit == nullptr) return;
    if (base.metrics) {
      result.metrics->absorb(mbuf);
      mbuf.set_context(completed, runtime::kOrchestratorParty);
    }
    base.audit->phase_complete(completed, result.metrics.get(),
                               result.comm.get());
  };

  // ---- Phase 1 (identical to the main framework) ----
  Initiator initiator{base, v0, w, rng};
  std::vector<Participant> parts;
  parts.reserve(n);
  for (std::size_t j = 1; j <= n; ++j)
    parts.emplace_back(base, j, infos[j - 1], rng);
  std::vector<Nat> betas(n);
  std::vector<char> dropped(n, 0);
  // A participant lost in phase 1 either aborts the run (typed fault) or —
  // under degrade_on_dropout — is marked and the protocol restarts over the
  // survivors. The initiator is irreplaceable: its loss always aborts.
  const auto mark_dropout = [&](std::size_t j, const net::ChannelError& e) {
    if (router.party_dead(0))
      throw proto_fault(runtime::Phase::kPhase1, 0, "initiator crashed");
    if (!base.degrade_on_dropout)
      throw proto_fault(runtime::Phase::kPhase1, j + 1,
                        std::string("participant lost: ") + e.what());
    dropped[j] = 1;
  };
  router.set_phase(runtime::Phase::kPhase1);
  try {
    const runtime::SpanScope phase_span{span_sink, "phase1.gain_computation",
                                        runtime::Phase::kPhase1,
                                        runtime::kOrchestratorParty};
    // Round 1: every participant's disguised query travels to the
    // initiator; round 2: the answers travel back. Each message is
    // serialized for real and decoded by its receiver — exact wire bytes,
    // same structure as the HE framework's phase 1.
    for (std::size_t j = 0; j < n; ++j) {
      const runtime::SpanScope party_span{span_sink, "task.gain_query",
                                          runtime::Phase::kPhase1,
                                          static_cast<std::int32_t>(j + 1)};
      if (base.metrics)
        mbuf.set_context(runtime::Phase::kPhase1,
                         static_cast<std::int32_t>(j + 1));
      auto scope = timer.time(j + 1);
      const dotprod::BobRound1& q = parts[j].gain_query();
      runtime::Writer w;
      write_bob_round1(w, *base.dot_field, q);
      router.channel(j + 1, 0).send(std::move(w));
    }
    router.next_round();
    for (std::size_t j = 0; j < n; ++j) {
      const runtime::SpanScope party_span{span_sink, "task.gain_answer",
                                          runtime::Phase::kPhase1,
                                          static_cast<std::int32_t>(j + 1)};
      if (base.metrics) mbuf.set_context(runtime::Phase::kPhase1, 0);
      auto scope = timer.time(0);
      std::shared_ptr<const std::vector<std::uint8_t>> payload;
      try {
        payload = router.channel(j + 1, 0).receive();
      } catch (const net::ChannelError& e) {
        mark_dropout(j, e);
        continue;
      }
      runtime::Reader r{*payload};
      const auto q = read_bob_round1(r, *base.dot_field);
      r.finish();
      runtime::Writer w;
      write_alice_round2(w, *base.dot_field,
                         initiator.answer_gain_query(j + 1, q));
      router.channel(0, j + 1).send(std::move(w));
    }
    router.next_round();
    for (std::size_t j = 0; j < n; ++j) {
      if (dropped[j] != 0) continue;
      const runtime::SpanScope party_span{span_sink, "task.gain_finish",
                                          runtime::Phase::kPhase1,
                                          static_cast<std::int32_t>(j + 1)};
      if (base.metrics)
        mbuf.set_context(runtime::Phase::kPhase1,
                         static_cast<std::int32_t>(j + 1));
      auto scope = timer.time(j + 1);
      std::shared_ptr<const std::vector<std::uint8_t>> payload;
      try {
        payload = router.channel(0, j + 1).receive();
      } catch (const net::ChannelError& e) {
        mark_dropout(j, e);
        continue;
      }
      runtime::Reader r{*payload};
      const auto a = read_alice_round2(r, *base.dot_field);
      r.finish();
      parts[j].receive_gain_answer(a);
      betas[j] = parts[j].beta();
    }
  } catch (...) {
    rethrow_as_fault(runtime::Phase::kPhase1);
  }

  // Degrade-on-dropout: restart the whole protocol over the survivors with
  // a fresh, fault-free configuration (see DESIGN.md Sec. 7). The SS sort
  // additionally needs the threshold to stay feasible: n' >= 2t'+1, t' >= 1.
  if (std::any_of(dropped.begin(), dropped.end(),
                  [](char d) { return d != 0; })) {
    std::vector<std::size_t> survivors;
    std::vector<std::size_t> lost;
    for (std::size_t j = 0; j < n; ++j)
      (dropped[j] != 0 ? lost : survivors).push_back(j + 1);
    const std::size_t max_t =
        survivors.size() >= 3 ? (survivors.size() - 1) / 2 : 0;
    if (max_t < 1)
      throw proto_fault(
          runtime::Phase::kPhase1, kNoParty,
          "too few survivors to degrade (" + std::to_string(survivors.size()) +
              " left, SS sort needs n >= 2t+1 with t >= 1)");
    if (base.flight != nullptr)
      base.flight->record(runtime::FlightEventKind::kDegrade,
                          runtime::Phase::kPhase1, 0,
                          static_cast<std::uint32_t>(survivors.size()),
                          static_cast<std::uint32_t>(lost.size()));
    // The survivor rerun is a different instance; the auditor's expectations
    // no longer apply, so it records the degrade and detaches.
    if (base.audit != nullptr) base.audit->run_degraded(lost);
    SsFrameworkConfig sub = cfg;
    sub.base.n = survivors.size();
    sub.base.k = std::min(base.k, sub.base.n);
    sub.base.fault_plan = nullptr;
    sub.base.degrade_on_dropout = false;
    sub.base.audit = nullptr;
    sub.threshold = std::min(cfg.threshold, max_t);
    std::vector<AttrVec> sub_infos;
    sub_infos.reserve(survivors.size());
    for (const std::size_t id : survivors) sub_infos.push_back(infos[id - 1]);
    SsFrameworkResult out = run_ss_framework(sub, v0, w, sub_infos, rng);
    std::vector<std::size_t> ranks(n, 0);
    for (std::size_t s = 0; s < survivors.size(); ++s)
      ranks[survivors[s] - 1] = out.ranks[s];
    out.ranks = std::move(ranks);
    for (std::size_t& sid : out.submitted_ids) sid = survivors[sid - 1];
    out.active_parties = std::move(survivors);
    out.dropped_parties = std::move(lost);
    out.faults = router.fault_report();
    return out;
  }

  // ---- Phase 2: secret-sharing sort of the β values ----
  audit_checkpoint(runtime::Phase::kPhase1);
  router.set_phase(runtime::Phase::kPhase2);
  // From here on every β is committed into the shared sort: a party lost
  // now (crash scheduled at phase 2) is a clean typed abort, never a
  // degrade — the in-process engine cannot re-share without it.
  if (router.fault_active()) {
    for (std::size_t p = 0; p <= n; ++p)
      if (router.party_dead(p))
        throw proto_fault(runtime::Phase::kPhase2, p,
                          p == 0 ? "initiator crashed" : "participant crashed");
  }
  if (base.metrics)
    mbuf.set_context(runtime::Phase::kPhase2, runtime::kOrchestratorParty);
  const FpCtx& field = ss_field_for_beta_bits(l);
  sss::MpcEngine engine{field, n, cfg.threshold, rng, cfg.mode};
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<sss::RankSortResult> sorted_holder;
  {
    const runtime::SpanScope phase_span{span_sink, "phase2.ss_sort",
                                        runtime::Phase::kPhase2,
                                        runtime::kOrchestratorParty};
    sorted_holder.emplace(sss::mpc_rank_sort(engine, betas));
  }
  const auto& sorted = *sorted_holder;
  const double sort_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // The engine simulates all n parties in one process; attribute an equal
  // per-party slice of the measured time.
  for (std::size_t j = 1; j <= n; ++j)
    timer.add(j, sort_seconds / static_cast<double>(n));
  result.sort_costs = sorted.costs;
  result.parallel_rounds = sorted.parallel_rounds;
  result.comparators = sorted.comparators;

  // Synthetic flows for network replay: the sort's exact metered byte total
  // spread evenly over its parallel rounds as all-to-all traffic (every
  // interactive primitive is an all-to-all exchange of field elements).
  // Content stays inside the in-process engine, so the messages are
  // transmit()s — accounting and virtual-time only. The recorded rounds are
  // capped at kMaxTraceRounds — beyond that, consecutive rounds are
  // coalesced into proportionally larger messages so totals stay exact and
  // memory stays bounded (rounds x n^2 records would reach 10^8 at
  // n = 100). Network benches use `parallel_rounds` + `sort_costs.bytes`
  // directly and are unaffected.
  constexpr std::uint64_t kMaxTraceRounds = 512;
  const std::uint64_t rounds = std::max<std::uint64_t>(1, sorted.parallel_rounds);
  const std::uint64_t recorded_rounds = std::min(rounds, kMaxTraceRounds);
  const std::size_t pair_count = n * (n - 1);
  const std::size_t per_msg = std::max<std::size_t>(
      1, sorted.costs.bytes / (recorded_rounds * pair_count));
  for (std::uint64_t r = 0; r < recorded_rounds; ++r) {
    for (std::size_t a = 1; a <= n; ++a)
      for (std::size_t b = 1; b <= n; ++b)
        if (a != b) router.transmit(a, b, per_msg);
    router.next_round();
  }

  // ---- Phase 3 ----
  audit_checkpoint(runtime::Phase::kPhase2);
  if (!counting) try {
    const runtime::SpanScope phase_span{span_sink, "phase3.submission",
                                        runtime::Phase::kPhase3,
                                        runtime::kOrchestratorParty};
    router.set_phase(runtime::Phase::kPhase3);
    if (base.metrics)
      mbuf.set_context(runtime::Phase::kPhase3, runtime::kOrchestratorParty);
    result.ranks = sorted.ranks;
    for (std::size_t j = 0; j < n; ++j) {
      if (result.ranks[j] <= base.k) {
        result.submitted_ids.push_back(j + 1);
        runtime::Writer w;
        write_submission(w, base.spec,
                         Initiator::Submission{.participant = j + 1,
                                               .claimed_rank = result.ranks[j],
                                               .info = infos[j]});
        router.channel(j + 1, 0).send(std::move(w));
      }
    }
    for (const std::size_t id : result.submitted_ids) {
      const auto payload = router.channel(id, 0).receive();
      runtime::Reader r{*payload};
      initiator.receive_submission(read_submission(r, base.spec));
      r.finish();
    }
    router.next_round();
  } catch (...) {
    rethrow_as_fault(runtime::Phase::kPhase3);
  }

  // Nothing counted runs after this point, so draining the buffer while the
  // sink is still installed is safe (absorb clears it).
  if (base.metrics) result.metrics->absorb(mbuf);
  result.active_parties.resize(n);
  for (std::size_t j = 0; j < n; ++j) result.active_parties[j] = j + 1;
  if (base.fault_plan != nullptr) result.faults = router.fault_report();
  result.compute_seconds.resize(n + 1);
  for (std::size_t p = 0; p <= n; ++p)
    result.compute_seconds[p] = timer.seconds(p);

  audit_checkpoint(runtime::Phase::kPhase3);
  if (base.audit != nullptr)
    base.audit->run_complete(result.submitted_ids, result.metrics.get(),
                             result.comm.get(), router.round_index());
  return result;
}

}  // namespace ppgr::core

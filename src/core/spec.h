// Problem-domain algebra of the paper (Sec. III): attribute vectors, gains,
// partial gains, the masked β values and their signed/unsigned encoding.
//
// An instance has m attributes; the first t are "equal-to" attributes (the
// initiator wants values near her criterion; age, blood pressure) and the
// remaining m-t are "greater-than" attributes (the more the better; friend
// count, income). Attribute values are d1-bit unsigned, weights d2-bit
// unsigned.
#pragma once

#include <cstdint>
#include <vector>

#include "mpz/fp.h"
#include "mpz/sint.h"

namespace ppgr::core {

using mpz::FpCtx;
using mpz::Int;
using mpz::Nat;

/// Attribute / weight vectors as plain integers (bounded by the spec).
using AttrVec = std::vector<std::uint64_t>;

struct ProblemSpec {
  std::size_t m = 10;  // attribute count
  std::size_t t = 5;   // first t attributes are "equal-to"
  std::size_t d1 = 15; // bits per attribute value
  std::size_t d2 = 15; // bits per weight
  std::size_t h = 15;  // bits of the masking factor ρ

  /// Throws std::invalid_argument when inconsistent (t > m, zero sizes,
  /// widths that don't fit u64, ...).
  void validate() const;
  /// Validates a vector against d1 (attribute values).
  void check_attributes(const AttrVec& v) const;
  /// Validates a weight vector against d2.
  void check_weights(const AttrVec& w) const;

  /// Bit length l of the unsigned β encoding. The paper states
  /// l = h + ceil(log2 m) + d1 + 2*d2 + 2; the exact worst case of
  /// Def. 1's partial gain is |p| < 2^(ceil(log2 m) + 2*d1 + d2 + 2)
  /// (the squared term carries 2*d1, not 2*d2 — an apparent typo in the
  /// paper), so we use the safe bound
  /// l = h + ceil(log2 m) + 2*d1 + d2 + 3.
  [[nodiscard]] std::size_t beta_bits() const;
};

/// The gain of Def. 1:
///   g = Σ_{k>t} w_k (v_k - v0_k)  -  Σ_{k<=t} w_k (v_k - v0_k)^2.
[[nodiscard]] Int gain(const ProblemSpec& spec, const AttrVec& v0,
                       const AttrVec& w, const AttrVec& v);

/// The partial gain of Sec. III-A:
///   p = Σ_{k>t} w_k v_k - Σ_{k<=t} (w_k v_k^2 - 2 w_k v_k v0_k),
/// which differs from the gain by a constant that depends only on the
/// initiator's inputs — so ranking by p equals ranking by g.
[[nodiscard]] Int partial_gain(const ProblemSpec& spec, const AttrVec& v0,
                               const AttrVec& w, const AttrVec& v);

/// The initiator-only constant C with g = p - C.
[[nodiscard]] Int gain_offset(const ProblemSpec& spec, const AttrVec& v0,
                              const AttrVec& w);

/// l-bit unsigned encoding of a signed value: u = s + 2^(l-1)
/// (order-preserving; Sec. III-A). Throws std::overflow_error if out of
/// range.
[[nodiscard]] Nat signed_to_unsigned(const Int& s, std::size_t l);
[[nodiscard]] Int unsigned_to_signed(const Nat& u, std::size_t l);

/// Participant-side expanded vector for the secure dot product
/// (framework step 2): w' = [vg, ve*ve, ve, 1], dimension m + t + 1,
/// as field elements.
[[nodiscard]] std::vector<Nat> participant_vector(const FpCtx& field,
                                                  const ProblemSpec& spec,
                                                  const AttrVec& v);

/// Initiator-side expanded vector (framework step 3):
/// v' = [ρ·wg, -ρ·we, 2ρ(we*ve0), ρ_j], dimension m + t + 1.
[[nodiscard]] std::vector<Nat> initiator_vector(const FpCtx& field,
                                                const ProblemSpec& spec,
                                                const AttrVec& v0,
                                                const AttrVec& w,
                                                const Nat& rho,
                                                const Nat& rho_j);

/// Reference masked value β = ρ·p + ρ_j (for tests; the protocol computes
/// this obliviously).
[[nodiscard]] Int masked_partial_gain(const ProblemSpec& spec,
                                      const AttrVec& v0, const AttrVec& w,
                                      const AttrVec& v, const Nat& rho,
                                      const Nat& rho_j);

}  // namespace ppgr::core

#include "core/framework.h"

#include <algorithm>
#include <stdexcept>

namespace ppgr::core {

namespace {

using crypto::ct_add;
using crypto::ct_add_plain;
using crypto::ct_scale;
using crypto::encrypt_exp;
using crypto::rerandomize;

std::size_t scalar_bytes(const Group& g) {
  return (g.order().bit_length() + 7) / 8;
}

std::size_t info_bytes(const ProblemSpec& spec) {
  return spec.m * ((spec.d1 + 7) / 8) + 8;  // attributes + rank field
}

}  // namespace

void FrameworkConfig::validate() const {
  spec.validate();
  if (n < 2) throw std::invalid_argument("FrameworkConfig: need n >= 2");
  if (k < 1 || k > n) throw std::invalid_argument("FrameworkConfig: bad k");
  if (group == nullptr || dot_field == nullptr)
    throw std::invalid_argument("FrameworkConfig: group/dot_field not set");
  if (dot_s < 2) throw std::invalid_argument("FrameworkConfig: dot_s >= 2");
  // The dot-product field must exactly represent every β (plus slack for
  // the signed centering).
  if (spec.beta_bits() + 2 > dot_field->bits())
    throw std::invalid_argument(
        "FrameworkConfig: dot-product field too small for beta range");
}

// ---------------- Initiator ----------------

Initiator::Initiator(const FrameworkConfig& cfg, AttrVec v0, AttrVec w,
                     Rng& rng)
    : cfg_(cfg), v0_(std::move(v0)), w_(std::move(w)), rng_(rng) {
  cfg_.validate();
  cfg_.spec.check_attributes(v0_);
  cfg_.spec.check_weights(w_);
  // ρ: h-bit, top bit forced so ρ_j < ρ leaves a full range; ρ >= 1.
  rho_ = rng_.bits(cfg_.spec.h);
  rho_.set_bit(cfg_.spec.h - 1, true);
  rho_j_.resize(cfg_.n);
  for (auto& rj : rho_j_) rj = rng_.below(rho_);  // [0, ρ) — strict order
}

dotprod::AliceRound2 Initiator::answer_gain_query(
    std::size_t j, const dotprod::BobRound1& msg) {
  if (j < 1 || j > cfg_.n)
    throw std::invalid_argument("answer_gain_query: bad participant id");
  const auto v_prime = initiator_vector(*cfg_.dot_field, cfg_.spec, v0_, w_,
                                        rho_, rho_j_[j - 1]);
  return dotprod::dot_product_alice(*cfg_.dot_field, msg, v_prime);
}

void Initiator::receive_submission(Submission s) {
  cfg_.spec.check_attributes(s.info);
  submissions_.push_back(std::move(s));
}

std::vector<std::size_t> Initiator::inconsistent_submissions() const {
  // Recompute gains from the submitted vectors; a submission is flagged when
  // its claimed rank ordering contradicts the recomputed gain ordering
  // against any other submission.
  std::vector<std::size_t> bad;
  for (const auto& a : submissions_) {
    const Int ga = gain(cfg_.spec, v0_, w_, a.info);
    bool flagged = false;
    for (const auto& b : submissions_) {
      if (a.participant == b.participant) continue;
      const Int gb = gain(cfg_.spec, v0_, w_, b.info);
      if ((a.claimed_rank < b.claimed_rank && ga < gb) ||
          (a.claimed_rank > b.claimed_rank && ga > gb)) {
        flagged = true;
        break;
      }
    }
    if (flagged) bad.push_back(a.participant);
  }
  return bad;
}

// ---------------- Participant ----------------

Participant::Participant(const FrameworkConfig& cfg, std::size_t id,
                         AttrVec info, Rng& rng)
    : cfg_(cfg), id_(id), info_(std::move(info)), rng_(rng) {
  cfg_.validate();
  cfg_.spec.check_attributes(info_);
  if (id_ < 1 || id_ > cfg_.n)
    throw std::invalid_argument("Participant: id must be in [1, n]");
}

const dotprod::BobRound1& Participant::gain_query() {
  auto w_prime = participant_vector(*cfg_.dot_field, cfg_.spec, info_);
  // Scale the disguise dimension with the vector so the initiator's linear
  // system stays under-determined (dotprod::recommended_s).
  const std::size_t s =
      std::max(cfg_.dot_s, dotprod::recommended_s(w_prime.size()));
  dot_.emplace(*cfg_.dot_field, std::move(w_prime), s, rng_);
  return dot_->round1();
}

void Participant::receive_gain_answer(const dotprod::AliceRound2& answer) {
  if (!dot_) throw std::logic_error("receive_gain_answer before gain_query");
  const Nat beta_field = dot_->finish(answer);
  dot_.reset();
  const Int beta_signed = cfg_.dot_field->from_centered(beta_field);
  beta_ = signed_to_unsigned(beta_signed, cfg_.spec.beta_bits());
}

const Elem& Participant::public_key() {
  if (!key_generated_) {
    key_ = crypto::keygen(*cfg_.group, rng_);
    key_generated_ = true;
  }
  return key_.y;
}

crypto::SchnorrTranscript Participant::prove_key(std::size_t n_verifiers) {
  (void)public_key();
  return crypto::schnorr_prove(*cfg_.group, key_.x, n_verifiers, rng_);
}

bool Participant::verify_peer_key(const Elem& y,
                                  const crypto::SchnorrTranscript& proof) const {
  return crypto::schnorr_verify(*cfg_.group, y, proof);
}

std::vector<Ciphertext> Participant::encrypt_beta_bits() {
  const std::size_t l = cfg_.spec.beta_bits();
  std::vector<Ciphertext> out;
  out.reserve(l);
  for (std::size_t b = 0; b < l; ++b) {
    out.push_back(encrypt_exp(*cfg_.group, joint_key_,
                              beta_.bit(b) ? Nat{1} : Nat{}, rng_));
  }
  return out;
}

std::vector<Ciphertext> Participant::compare_against(
    const std::vector<Ciphertext>& peer_bits) const {
  const Group& g = *cfg_.group;
  const std::size_t l = cfg_.spec.beta_bits();
  if (peer_bits.size() != l)
    throw std::invalid_argument("compare_against: wrong bit count");
  const Nat& q = g.order();

  // γ_b = own_b XOR peer_b, homomorphically (own bit is plaintext):
  //   own_b = 0:  γ = peer_b            -> copy
  //   own_b = 1:  γ = 1 - peer_b        -> E(peer)^(q-1) ∘ g^1
  std::vector<Ciphertext> gamma;
  gamma.reserve(l);
  for (std::size_t b = 0; b < l; ++b) {
    if (!beta_.bit(b)) {
      gamma.push_back(peer_bits[b]);
    } else {
      gamma.push_back(ct_add_plain(
          g, ct_scale(g, peer_bits[b], Nat::sub(q, Nat{1})), Nat{1}));
    }
  }

  // Suffix sums S_b = Σ_{v>b} γ_v, accumulated from the MSB down. The
  // trivial ciphertext (1, 1) is a valid encryption of zero.
  const Ciphertext zero_ct{.c = g.identity(), .cp = g.identity()};
  std::vector<Ciphertext> tau(l);
  Ciphertext suffix = zero_ct;
  for (std::size_t b = l; b-- > 0;) {
    // ω_b = (l-b)·(1 - γ_b) + S_b  (paper's (l-t+1) with t = b+1);
    // zero iff b is the most significant differing bit.
    const Nat coeff{static_cast<mpz::Limb>(l - b)};
    Ciphertext omega = ct_scale(g, gamma[b], Nat::sub(q, coeff % q));
    omega = ct_add_plain(g, omega, coeff);
    omega = ct_add(g, omega, suffix);
    // τ_b = ω_b + own_b: zero iff peer's bit is 1 at the first difference,
    // i.e. iff peer's β is larger.
    tau[b] = beta_.bit(b) ? ct_add_plain(g, omega, Nat{1}) : omega;
    // Fresh randomness before the set leaves this party: the homomorphic
    // result is otherwise a deterministic function of the published
    // ciphertexts and the own bits, which an adversary could test bit by
    // bit (the paper's Lemma-3 simulator implicitly assumes fresh
    // encryptions here; see DESIGN.md).
    tau[b] = rerandomize(g, joint_key_, tau[b], rng_);
    suffix = ct_add(g, suffix, gamma[b]);
  }
  return tau;
}

void Participant::shuffle_hop(CipherSet& set) {
  const Group& g = *cfg_.group;
  for (Ciphertext& ct : set) {
    ct = crypto::partial_decrypt(g, key_.x, ct);
    ct = crypto::exp_randomize(g, ct, g.random_nonzero_scalar(rng_));
  }
  // Fisher–Yates with the party's private randomness.
  for (std::size_t i = set.size(); i-- > 1;)
    std::swap(set[i], set[rng_.below_u64(i + 1)]);
}

std::size_t Participant::compute_rank(const CipherSet& own_set) const {
  std::size_t zeros = 0;
  for (const Ciphertext& ct : own_set) {
    if (crypto::decrypts_to_zero(*cfg_.group, key_.x, ct)) ++zeros;
  }
  return zeros + 1;
}

std::optional<Initiator::Submission> Participant::submission(
    std::size_t rank) const {
  if (rank > cfg_.k) return std::nullopt;
  return Initiator::Submission{.participant = id_, .claimed_rank = rank,
                               .info = info_};
}

// ---------------- orchestration ----------------

FrameworkResult run_framework(const FrameworkConfig& cfg, const AttrVec& v0,
                              const AttrVec& w,
                              const std::vector<AttrVec>& infos, Rng& rng) {
  cfg.validate();
  if (infos.size() != cfg.n)
    throw std::invalid_argument("run_framework: infos size != n");
  const std::size_t n = cfg.n;
  const std::size_t l = cfg.spec.beta_bits();
  const Group& g = *cfg.group;
  const std::size_t ct_bytes = crypto::ciphertext_bytes(g);

  FrameworkResult result;
  runtime::PartyTimer timer{n + 1};

  Initiator initiator{cfg, v0, w, rng};
  std::vector<Participant> parts;
  parts.reserve(n);
  for (std::size_t j = 1; j <= n; ++j)
    parts.emplace_back(cfg, j, infos[j - 1], rng);

  auto& trace = result.trace;
  const std::size_t d = cfg.spec.m + cfg.spec.t + 1;

  // ---- Phase 1: secure gain computation ----
  std::vector<const dotprod::BobRound1*> queries(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    queries[j] = &parts[j].gain_query();
    const std::size_t eff_s = std::max(cfg.dot_s, dotprod::recommended_s(d));
    trace.record(j + 1, 0, dotprod::bob_message_bytes(*cfg.dot_field, eff_s, d));
  }
  trace.next_round();
  std::vector<dotprod::AliceRound2> answers;
  answers.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(0);
    answers.push_back(initiator.answer_gain_query(j + 1, *queries[j]));
    trace.record(0, j + 1, dotprod::alice_message_bytes(*cfg.dot_field));
  }
  trace.next_round();
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    parts[j].receive_gain_answer(answers[j]);
  }

  // ---- Phase 2: unlinkable gain comparison ----
  // Step 5: keys + zero-knowledge proofs (commit/challenge/response rounds).
  std::vector<Elem> pubkeys(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    pubkeys[j] = parts[j].public_key();
    for (std::size_t peer = 1; peer <= n; ++peer)
      if (peer != j + 1) trace.record(j + 1, peer, g.element_bytes());
  }
  trace.next_round();
  const std::size_t sb = scalar_bytes(g);
  std::vector<crypto::SchnorrTranscript> proofs(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    proofs[j] = parts[j].prove_key(n - 1);
    // Commitment broadcast + response broadcast; challenges flow back.
    for (std::size_t peer = 1; peer <= n; ++peer) {
      if (peer == j + 1) continue;
      trace.record(j + 1, peer, g.element_bytes() + sb);  // h and z
      trace.record(peer, j + 1, sb);                      // challenge c
    }
  }
  trace.next_round();
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    for (std::size_t peer = 0; peer < n; ++peer) {
      if (peer == j) continue;
      if (!parts[j].verify_peer_key(pubkeys[peer], proofs[peer]))
        throw std::runtime_error("run_framework: key proof rejected");
    }
  }
  const Elem joint = crypto::joint_public_key(g, pubkeys);
  for (auto& p : parts) p.set_joint_key(joint);
  trace.next_round();

  // Step 6: bitwise encryptions, broadcast.
  std::vector<std::vector<Ciphertext>> beta_bits(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    beta_bits[j] = parts[j].encrypt_beta_bits();
    for (std::size_t peer = 1; peer <= n; ++peer)
      if (peer != j + 1) trace.record(j + 1, peer, l * ct_bytes);
  }
  trace.next_round();

  // Step 7: comparisons; flattened sets go to P1.
  std::vector<CipherSet> v_sets(n);  // index j-1 = set owned by P_j
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    CipherSet& set = v_sets[j];
    set.reserve((n - 1) * l);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      auto tau = parts[j].compare_against(beta_bits[i]);
      set.insert(set.end(), tau.begin(), tau.end());
    }
    if (j != 0) trace.record(j + 1, 1, set.size() * ct_bytes);
  }
  trace.next_round();

  // Step 8: the decrypt-shuffle chain P1 -> P2 -> ... -> Pn.
  for (std::size_t hop = 0; hop < n; ++hop) {
    {
      auto scope = timer.time(hop + 1);
      for (std::size_t owner = 0; owner < n; ++owner) {
        if (owner == hop) continue;  // never touch the own set
        parts[hop].shuffle_hop(v_sets[owner]);
      }
    }
    if (hop + 1 < n) {
      // Forward the whole vector V to the next participant.
      std::size_t total = 0;
      for (const auto& s : v_sets) total += s.size() * ct_bytes;
      trace.record(hop + 1, hop + 2, total);
      trace.next_round();
    }
  }
  // P_n returns each set to its owner.
  for (std::size_t owner = 0; owner + 1 < n; ++owner)
    trace.record(n, owner + 1, v_sets[owner].size() * ct_bytes);
  trace.next_round();

  // Step 9 / Phase 3: ranks and submissions.
  result.ranks.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto scope = timer.time(j + 1);
    result.ranks[j] = parts[j].compute_rank(v_sets[j]);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto sub = parts[j].submission(result.ranks[j]);
    if (sub) {
      result.submitted_ids.push_back(j + 1);
      trace.record(j + 1, 0, info_bytes(cfg.spec));
      auto scope = timer.time(0);
      initiator.receive_submission(*sub);
    }
  }
  trace.next_round();
  {
    auto scope = timer.time(0);
    const auto bad = initiator.inconsistent_submissions();
    if (!bad.empty())
      throw std::runtime_error("run_framework: inconsistent submission");
  }

  result.compute_seconds.resize(n + 1);
  for (std::size_t p = 0; p <= n; ++p)
    result.compute_seconds[p] = timer.seconds(p);
  return result;
}

const FpCtx& default_dot_field() {
  static const FpCtx field{Nat::from_dec(
      "578960446186580977117854925043439539266349923328202820197287920039565648"
      "19949")};
  return field;
}

std::vector<std::size_t> reference_ranks(const ProblemSpec& spec,
                                         const AttrVec& v0, const AttrVec& w,
                                         const std::vector<AttrVec>& infos) {
  std::vector<Int> gains;
  gains.reserve(infos.size());
  for (const auto& v : infos) gains.push_back(gain(spec, v0, w, v));
  std::vector<std::size_t> ranks(infos.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    std::size_t above = 0;
    for (std::size_t j = 0; j < infos.size(); ++j)
      if (gains[j] > gains[i]) ++above;
    ranks[i] = above + 1;
  }
  return ranks;
}

}  // namespace ppgr::core

#include "core/framework.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <stdexcept>

#include "core/codec.h"
#include "core/streams.h"
#include "crypto/codec.h"
#include "group/accel_group.h"
#include "group/metered_group.h"
#include "group/multi_exp.h"
#include "net/channel.h"
#include "runtime/thread_pool.h"
#include "runtime/wire.h"

namespace ppgr::core {

namespace {

using crypto::ct_add;
using crypto::ct_add_plain;
using crypto::ct_scale;
using crypto::encrypt_exp;
using crypto::rerandomize;
using mpz::ChaChaRng;

using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

Payload seal(runtime::Writer&& w) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(w).take());
}

// Stream-id layout: shared with the process-per-party driver through
// core/streams.h — see that header. Both entry points must address the
// same substreams for the same protocol positions, or the socket
// deployment loses bit-identity with the simulator run.

using runtime::Phase;

// Observability staging for run_framework. Mirrors the TraceBuffer
// discipline: each parallel task gets its own MetricsBuffer + SpanBuffer
// (installed/opened by task()), and after the fork-join barrier collect()
// absorbs them in task-index order — so the span stream and counter slots
// are bit-identical for every parallelism value. Orchestrator-level work
// (e.g. the joint-key product) is counted through a long-lived buffer whose
// (phase, party=-1) context follows set_phase(). When cfg.metrics is off
// every method is a no-op and no sink is ever installed.
class Obs {
 public:
  Obs(bool enabled, runtime::MetricsRegistry* reg, runtime::SpanRecorder* rec)
      : reg_(reg), rec_(rec) {
    if (enabled)
      orch_scope_.emplace(&orch_buf_, Phase::kSetup,
                          runtime::kOrchestratorParty);
  }
  ~Obs() {
    if (!on()) return;
    orch_scope_.reset();  // uninstall before draining the buffer
    reg_->absorb(orch_buf_);
  }
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  [[nodiscard]] bool on() const { return orch_scope_.has_value(); }
  /// Sink for orchestrator-level SpanScopes (framework / phase / step).
  [[nodiscard]] runtime::SpanSink* span_sink() const {
    return on() ? static_cast<runtime::SpanSink*>(rec_) : nullptr;
  }
  [[nodiscard]] Phase phase() const { return phase_; }

  void set_phase(Phase p) {
    phase_ = p;
    if (on()) orch_buf_.set_context(p, runtime::kOrchestratorParty);
  }

  /// Prepares per-task staging buffers for a fork-join of `tasks` tasks.
  void stage(std::size_t tasks) {
    if (!on()) return;
    mbufs_.assign(tasks, {});
    sbufs_.assign(tasks, {});
  }

  /// Per-task RAII guard: routes this thread's metric counts to the task's
  /// buffer and opens the task span. Returns an empty guard when disabled.
  struct TaskGuard {
    std::unique_ptr<runtime::MetricsScope> metrics;
    std::unique_ptr<runtime::SpanScope> span;
  };
  [[nodiscard]] TaskGuard task(std::size_t idx, std::int32_t party,
                               const char* name, std::uint64_t arg = 0) {
    TaskGuard guard;
    if (on()) {
      guard.metrics =
          std::make_unique<runtime::MetricsScope>(&mbufs_[idx], phase_, party);
      guard.span = std::make_unique<runtime::SpanScope>(&sbufs_[idx], name,
                                                        phase_, party, arg);
    }
    return guard;
  }

  /// Absorbs the staged buffers in task-index order. Must run while the
  /// enclosing step span is still open so task spans nest under it.
  void collect() {
    if (!on()) return;
    for (auto& b : sbufs_) rec_->absorb(b);
    for (auto& b : mbufs_) reg_->absorb(b);
    mbufs_.clear();
    sbufs_.clear();
  }

  /// Drains the orchestrator buffer into the registry mid-run, so a reader
  /// at a phase boundary (the audit checkpoints) sees complete totals — the
  /// serial epilogues count serialization through this buffer, which is
  /// otherwise only absorbed at destruction. Re-arms the context after the
  /// absorb clears it.
  void flush_orchestrator() {
    if (!on()) return;
    reg_->absorb(orch_buf_);
    orch_buf_.set_context(phase_, runtime::kOrchestratorParty);
  }

 private:
  runtime::MetricsRegistry* reg_;
  runtime::SpanRecorder* rec_;
  runtime::MetricsBuffer orch_buf_;
  std::optional<runtime::MetricsScope> orch_scope_;
  Phase phase_ = Phase::kSetup;
  std::vector<runtime::MetricsBuffer> mbufs_;
  std::vector<runtime::SpanBuffer> sbufs_;
};

}  // namespace

void FrameworkConfig::validate() const {
  spec.validate();
  if (n < 2) throw std::invalid_argument("FrameworkConfig: need n >= 2");
  if (k < 1 || k > n) throw std::invalid_argument("FrameworkConfig: bad k");
  if (group == nullptr || dot_field == nullptr)
    throw std::invalid_argument("FrameworkConfig: group/dot_field not set");
  if (dot_s < 2) throw std::invalid_argument("FrameworkConfig: dot_s >= 2");
  // The dot-product field must exactly represent every β (plus slack for
  // the signed centering).
  if (spec.beta_bits() + 2 > dot_field->bits())
    throw std::invalid_argument(
        "FrameworkConfig: dot-product field too small for beta range");
}

// ---------------- Initiator ----------------

Initiator::Initiator(const FrameworkConfig& cfg, AttrVec v0, AttrVec w,
                     Rng& rng)
    : cfg_(cfg), v0_(std::move(v0)), w_(std::move(w)), rng_(rng) {
  cfg_.validate();
  cfg_.spec.check_attributes(v0_);
  cfg_.spec.check_weights(w_);
  // ρ: h-bit, top bit forced so ρ_j < ρ leaves a full range; ρ >= 1.
  rho_ = rng_.bits(cfg_.spec.h);
  rho_.set_bit(cfg_.spec.h - 1, true);
  rho_j_.resize(cfg_.n);
  for (auto& rj : rho_j_) rj = rng_.below(rho_);  // [0, ρ) — strict order
}

dotprod::AliceRound2 Initiator::answer_gain_query(
    std::size_t j, const dotprod::BobRound1& msg) {
  if (j < 1 || j > cfg_.n)
    throw std::invalid_argument("answer_gain_query: bad participant id");
  const auto v_prime = initiator_vector(*cfg_.dot_field, cfg_.spec, v0_, w_,
                                        rho_, rho_j_[j - 1]);
  return dotprod::dot_product_alice(*cfg_.dot_field, msg, v_prime);
}

void Initiator::receive_submission(Submission s) {
  cfg_.spec.check_attributes(s.info);
  submissions_.push_back(std::move(s));
}

std::vector<std::size_t> Initiator::inconsistent_submissions() const {
  // Recompute gains from the submitted vectors; a submission is flagged when
  // its claimed rank ordering contradicts the recomputed gain ordering
  // against any other submission.
  std::vector<std::size_t> bad;
  for (const auto& a : submissions_) {
    const Int ga = gain(cfg_.spec, v0_, w_, a.info);
    bool flagged = false;
    for (const auto& b : submissions_) {
      if (a.participant == b.participant) continue;
      const Int gb = gain(cfg_.spec, v0_, w_, b.info);
      if ((a.claimed_rank < b.claimed_rank && ga < gb) ||
          (a.claimed_rank > b.claimed_rank && ga > gb)) {
        flagged = true;
        break;
      }
    }
    if (flagged) bad.push_back(a.participant);
  }
  return bad;
}

// ---------------- Participant ----------------

Participant::Participant(const FrameworkConfig& cfg, std::size_t id,
                         AttrVec info, Rng& rng)
    : cfg_(cfg), id_(id), info_(std::move(info)), rng_(rng) {
  cfg_.validate();
  cfg_.spec.check_attributes(info_);
  if (id_ < 1 || id_ > cfg_.n)
    throw std::invalid_argument("Participant: id must be in [1, n]");
}

const dotprod::BobRound1& Participant::gain_query(Rng& rng) {
  auto w_prime = participant_vector(*cfg_.dot_field, cfg_.spec, info_);
  // Scale the disguise dimension with the vector so the initiator's linear
  // system stays under-determined (dotprod::recommended_s).
  const std::size_t s =
      std::max(cfg_.dot_s, dotprod::recommended_s(w_prime.size()));
  dot_.emplace(*cfg_.dot_field, std::move(w_prime), s, rng);
  return dot_->round1();
}

void Participant::receive_gain_answer(const dotprod::AliceRound2& answer) {
  if (!dot_) throw std::logic_error("receive_gain_answer before gain_query");
  const Nat beta_field = dot_->finish(answer);
  dot_.reset();
  const Int beta_signed = cfg_.dot_field->from_centered(beta_field);
  beta_ = signed_to_unsigned(beta_signed, cfg_.spec.beta_bits());
}

const Elem& Participant::public_key(Rng& rng) {
  if (!key_generated_) {
    key_ = crypto::keygen(*cfg_.group, rng);
    key_generated_ = true;
  }
  return key_.y;
}

crypto::SchnorrTranscript Participant::prove_key(std::size_t n_verifiers,
                                                 Rng& rng) {
  (void)public_key(rng);
  return crypto::schnorr_prove(*cfg_.group, key_.x, n_verifiers, rng);
}

bool Participant::verify_peer_key(const Elem& y,
                                  const crypto::SchnorrTranscript& proof) const {
  return crypto::schnorr_verify(*cfg_.group, y, proof);
}

Ciphertext Participant::encrypt_beta_bit(std::size_t b, Rng& rng) const {
  return encrypt_exp(*cfg_.group, joint_key_,
                     beta_.bit(b) ? Nat{1} : Nat{}, rng);
}

Ciphertext Participant::encrypt_beta_bit(std::size_t b, Rng& rng,
                                         const crypto::ZeroPool* pool,
                                         std::size_t pool_offset) const {
  if (pool != nullptr)
    return crypto::encrypt_exp_with(*cfg_.group,
                                    pool->entries.at(pool_offset + b),
                                    beta_.bit(b) ? Nat{1} : Nat{});
  return encrypt_beta_bit(b, rng);
}

void Participant::set_accel_context(
    const Group* fast, std::shared_ptr<const group::FixedBaseTable> key_table) {
  fast_ = fast;
  key_table_ = std::move(key_table);
}

std::vector<Ciphertext> Participant::encrypt_beta_bits(Rng& rng) {
  const std::size_t l = cfg_.spec.beta_bits();
  std::vector<Ciphertext> out;
  out.reserve(l);
  for (std::size_t b = 0; b < l; ++b) out.push_back(encrypt_beta_bit(b, rng));
  return out;
}

std::vector<Ciphertext> Participant::compare_against(
    const std::vector<Ciphertext>& peer_bits, Rng& rng,
    const crypto::ZeroPool* pool, std::size_t pool_offset) const {
  if (fast_ != nullptr)
    return compare_against_accel(peer_bits, rng, pool, pool_offset);
  const runtime::ScopedOpTimer op_timer(runtime::CryptoOp::kCompareCircuit);
  const Group& g = *cfg_.group;
  const std::size_t l = cfg_.spec.beta_bits();
  if (peer_bits.size() != l)
    throw std::invalid_argument("compare_against: wrong bit count");
  const Nat& q = g.order();

  // γ_b = own_b XOR peer_b, homomorphically (own bit is plaintext):
  //   own_b = 0:  γ = peer_b            -> copy
  //   own_b = 1:  γ = 1 - peer_b        -> E(peer)^(q-1) ∘ g^1
  std::vector<Ciphertext> gamma;
  gamma.reserve(l);
  for (std::size_t b = 0; b < l; ++b) {
    if (!beta_.bit(b)) {
      gamma.push_back(peer_bits[b]);
    } else {
      gamma.push_back(ct_add_plain(
          g, ct_scale(g, peer_bits[b], Nat::sub(q, Nat{1})), Nat{1}));
    }
  }

  // Suffix sums S_b = Σ_{v>b} γ_v, accumulated from the MSB down. The
  // trivial ciphertext (1, 1) is a valid encryption of zero.
  const Ciphertext zero_ct{.c = g.identity(), .cp = g.identity()};
  std::vector<Ciphertext> tau(l);
  Ciphertext suffix = zero_ct;
  for (std::size_t b = l; b-- > 0;) {
    // ω_b = (l-b)·(1 - γ_b) + S_b  (paper's (l-t+1) with t = b+1);
    // zero iff b is the most significant differing bit.
    const Nat coeff{static_cast<mpz::Limb>(l - b)};
    Ciphertext omega = ct_scale(g, gamma[b], Nat::sub(q, coeff % q));
    omega = ct_add_plain(g, omega, coeff);
    omega = ct_add(g, omega, suffix);
    // τ_b = ω_b + own_b: zero iff peer's bit is 1 at the first difference,
    // i.e. iff peer's β is larger.
    tau[b] = beta_.bit(b) ? ct_add_plain(g, omega, Nat{1}) : omega;
    // Fresh randomness before the set leaves this party: the homomorphic
    // result is otherwise a deterministic function of the published
    // ciphertexts and the own bits, which an adversary could test bit by
    // bit (the paper's Lemma-3 simulator implicitly assumes fresh
    // encryptions here; see DESIGN.md).
    tau[b] = pool != nullptr
                 ? crypto::rerandomize_with(g, tau[b],
                                            pool->entries.at(pool_offset + b))
                 : rerandomize(g, joint_key_, tau[b], rng);
    suffix = ct_add(g, suffix, gamma[b]);
  }
  return tau;
}

// Accelerated comparison circuit (FrameworkConfig::accel): same algebra as
// compare_against above, evaluated through group::multi_exp fusions and the
// joint-key window table on the undecorated group `*fast_`. Every output
// ciphertext is value-identical to the naive evaluation (for groups with a
// unique element representation — Schnorr, mock — bit-identical in memory;
// for EC only the Jacobian representative may differ, which serialization
// canonicalizes away), and the same randomness is drawn in the same order.
// Because the metering decorator never sees this path, it ends by crediting
// the exact interface-level op counts the naive evaluation reports:
//
//   naive, per circuit over l bits with pop = popcount(own β bits):
//     kGroupExp   3l + 2·pop   (2l with a pool: the re-randomizations'
//                               y^r exponentiations disappear)
//     kGroupExpG  2l + 2·pop   (l + 2·pop with a pool)
//     kGroupMul   7l + 2·pop
//
// The kCompareCircuit / kElGamalRerandomize timers stay in place, so their
// tallies and histogram sample counts are identical too. Only the accel_*
// counters (bumped by multi_exp and the key-table hits) differ from an
// unaccelerated run.
std::vector<Ciphertext> Participant::compare_against_accel(
    const std::vector<Ciphertext>& peer_bits, Rng& rng,
    const crypto::ZeroPool* pool, std::size_t pool_offset) const {
  const runtime::ScopedOpTimer op_timer(runtime::CryptoOp::kCompareCircuit);
  const Group& f = *fast_;
  const std::size_t l = cfg_.spec.beta_bits();
  if (peer_bits.size() != l)
    throw std::invalid_argument("compare_against: wrong bit count");

  // γ_b = own_b XOR peer_b. The complement's exponent is q-1, and
  // x^(q-1) = x^{-1} (every element's order divides q) — one group
  // inversion instead of a full-width ladder. Value-identical: inverses
  // are unique, and inv() is cheap on every family (EC: negation; Schnorr:
  // egcd field inverse; mock: 61-bit powmod).
  std::vector<Ciphertext> gamma;
  gamma.reserve(l);
  std::size_t pop = 0;
  for (std::size_t b = 0; b < l; ++b) {
    if (!beta_.bit(b)) {
      gamma.push_back(peer_bits[b]);
    } else {
      ++pop;
      gamma.push_back(Ciphertext{.c = f.mul(f.inv(peer_bits[b].c),
                                            f.exp_g(Nat{1})),
                                 .cp = f.inv(peer_bits[b].cp)});
    }
  }

  std::vector<Ciphertext> tau(l);
  Ciphertext suffix{.c = f.identity(), .cp = f.identity()};
  for (std::size_t b = l; b-- > 0;) {
    const Nat coeff{static_cast<mpz::Limb>(l - b)};
    // ω_b's exponent q - coeff collapses the same way: γ^(q-coeff) =
    // inv(γ)^coeff, and coeff = l-b is tiny (< l), so the fused
    // accumulation inv(γ.c)^coeff · g^coeff runs a coeff-width Straus
    // ladder — a handful of squarings — instead of a q-width one.
    const std::array<Elem, 2> cb{f.inv(gamma[b].c), f.generator()};
    const std::array<Nat, 2> ce{coeff, coeff};
    Ciphertext omega{.c = f.mul(group::multi_exp(f, cb, ce), suffix.c),
                     .cp = f.mul(f.exp(f.inv(gamma[b].cp), coeff),
                                 suffix.cp)};
    // τ_b = ω_b (+1 on the payload for an own set bit).
    tau[b] = beta_.bit(b)
                 ? Ciphertext{.c = f.mul(omega.c, f.exp_g(Nat{1})),
                              .cp = omega.cp}
                 : omega;
    if (pool != nullptr) {
      tau[b] = crypto::rerandomize_with(f, tau[b],
                                        pool->entries.at(pool_offset + b));
    } else {
      const runtime::ScopedOpTimer rr(runtime::CryptoOp::kElGamalRerandomize);
      const Nat r = f.random_nonzero_scalar(rng);
      Elem yr;
      if (key_table_ != nullptr) {
        runtime::count_op(runtime::CryptoOp::kAccelFixedBaseExp);
        yr = key_table_->exp(f, r);
      } else {
        yr = f.exp(joint_key_, r);
      }
      tau[b] = Ciphertext{.c = f.mul(tau[b].c, yr),
                          .cp = f.mul(tau[b].cp, f.exp_g(r))};
    }
    suffix = ct_add(f, suffix, gamma[b]);
  }

  // Credit the naive evaluation's interface-level op profile (table above).
  using runtime::CryptoOp;
  runtime::count_op(CryptoOp::kGroupMul, 7 * l + 2 * pop);
  runtime::count_op(CryptoOp::kGroupExp,
                    (pool != nullptr ? 2 : 3) * l + 2 * pop);
  runtime::count_op(CryptoOp::kGroupExpG,
                    (pool != nullptr ? 1 : 2) * l + 2 * pop);
  return tau;
}

void Participant::shuffle_hop(CipherSet& set, Rng& rng) {
  if (fast_ != nullptr) return shuffle_hop_accel(set, rng);
  const runtime::ScopedOpTimer op_timer(runtime::CryptoOp::kShuffleHop);
  const Group& g = *cfg_.group;
  for (Ciphertext& ct : set) {
    ct = crypto::partial_decrypt(g, key_.x, ct);
    ct = crypto::exp_randomize(g, ct, g.random_nonzero_scalar(rng));
  }
  // Fisher–Yates with the party's private randomness.
  for (std::size_t i = set.size(); i-- > 1;)
    std::swap(set[i], set[rng.below_u64(i + 1)]);
}

// Accelerated chain hop: partial decryption and exponent randomization fuse
// into one 2-term multi-exp per ciphertext —
//
//   naive:  c1 = c / cp^x;  out = (c1^r, cp^r)       (3 exps + 1 inv + 1 mul)
//   fused:  out.c = c^r · cp^(q - x·r mod q)          (one multi_exp)
//           out.cp = cp^r                             (one exp)
//
// equal because every element's order divides q, so cp^(q-e) = cp^(-e). For
// the Schnorr groups — whose inv() is itself a full-width exponentiation —
// this roughly halves the hop cost. Randomness: the same one
// random_nonzero_scalar per ciphertext, in the same order, then the same
// Fisher–Yates draws; credits follow the naive profile per ciphertext
// (kElGamalPartialDecrypt, kElGamalExpRandomize, 3 kGroupExp, 1 kGroupInv,
// 1 kGroupMul).
void Participant::shuffle_hop_accel(CipherSet& set, Rng& rng) {
  const runtime::ScopedOpTimer op_timer(runtime::CryptoOp::kShuffleHop);
  const Group& f = *fast_;
  const Nat& q = f.order();
  for (Ciphertext& ct : set) {
    runtime::count_op(runtime::CryptoOp::kElGamalPartialDecrypt);
    const Nat r = f.random_nonzero_scalar(rng);
    runtime::count_op(runtime::CryptoOp::kElGamalExpRandomize);
    const Nat e = Nat::sub(q, Nat::mul(key_.x, r) % q);
    const std::array<Elem, 2> bases{ct.c, ct.cp};
    const std::array<Nat, 2> exps{r, e};
    ct = Ciphertext{.c = group::multi_exp(f, bases, exps),
                    .cp = f.exp(ct.cp, r)};
  }
  for (std::size_t i = set.size(); i-- > 1;)
    std::swap(set[i], set[rng.below_u64(i + 1)]);
  using runtime::CryptoOp;
  runtime::count_op(CryptoOp::kGroupExp, 3 * set.size());
  runtime::count_op(CryptoOp::kGroupInv, set.size());
  runtime::count_op(CryptoOp::kGroupMul, set.size());
}

std::size_t Participant::compute_rank(const CipherSet& own_set) const {
  std::size_t zeros = 0;
  for (const Ciphertext& ct : own_set) {
    if (crypto::decrypts_to_zero(*cfg_.group, key_.x, ct)) ++zeros;
  }
  return zeros + 1;
}

std::optional<Initiator::Submission> Participant::submission(
    std::size_t rank) const {
  if (rank > cfg_.k) return std::nullopt;
  return Initiator::Submission{.participant = id_, .claimed_rank = rank,
                               .info = info_};
}

// ---------------- orchestration ----------------

// The parallel execution engine. Structure of every phase:
//
//   1. fork-join over an index space (parties, (party, bit) pairs,
//      (party, peer) pairs, or set owners) — each task works on its own
//      output slot and draws from its own stream, so the schedule cannot
//      influence any result; messages produced inside tasks are staged in
//      per-task CommBuffers;
//   2. a serial epilogue that routes the phase's messages through the
//      net::Router in fixed (src, dst) order — every message is actually
//      serialized by the wire codecs, accounted at its exact encoded size,
//      and decoded by the receiving side before use.
//
// Consequence: ranks, β values, permutations and the full flow sequence are
// bit-identical for every cfg.parallelism value, including the serial
// engine (parallelism = 1), which runs everything inline on the caller.
FrameworkResult run_framework(const FrameworkConfig& cfg, const AttrVec& v0,
                              const AttrVec& w,
                              const std::vector<AttrVec>& infos, Rng& rng) {
  cfg.validate();
  if (infos.size() != cfg.n)
    throw std::invalid_argument("run_framework: infos size != n");
  const std::size_t n = cfg.n;
  const std::size_t l = cfg.spec.beta_bits();

  FrameworkResult result;
  if (cfg.metrics) {
    result.metrics = std::make_unique<runtime::MetricsRegistry>();
    result.spans = std::make_unique<runtime::SpanRecorder>();
    result.comm = std::make_unique<runtime::CommRegistry>();
  }
  Obs obs{cfg.metrics, result.metrics.get(), result.spans.get()};

  // Decorator stack the parties bind to (inside-out): the optional
  // precompute accelerator routes fixed-base exponentiations through shared
  // comb tables without changing any value, and with metrics on the
  // interface-level MeteredGroup sits outermost — the measured counterpart
  // of the CountingGroup runs that calibrate benchcore's cost model, whose
  // counts are unaffected by what sits below it.
  std::optional<group::AcceleratedGroup> accel;
  const Group* proto_group = cfg.group;
  if (cfg.precompute != nullptr) {
    accel.emplace(*cfg.group);
    {
      // Muted: artifact (re)build cost must not show up in this session's
      // counters — it would make them depend on prior cache state.
      const runtime::MetricsMute mute;
      accel->set_generator_table(cfg.precompute->generator_table(*cfg.group));
    }
    proto_group = &*accel;
  }
  const group::MeteredGroup metered{*proto_group};
  FrameworkConfig ecfg = cfg;  // effective config the parties bind to
  ecfg.group = cfg.metrics ? static_cast<const Group*>(&metered) : proto_group;
  const Group& g = *ecfg.group;

  // Either the caller's long-lived pool (session engine) or a private one.
  std::optional<runtime::ThreadPool> owned_pool;
  if (cfg.shared_pool == nullptr) owned_pool.emplace(cfg.parallelism);
  runtime::ThreadPool& pool =
      cfg.shared_pool != nullptr ? *cfg.shared_pool : *owned_pool;
  mpz::StreamFamily streams{rng};
  const auto task_stream = [&streams](StreamKind kind, std::size_t party,
                                      std::size_t index) {
    return streams.stream(stream_id(kind, party, index));
  };

  runtime::PartyTimer timer{n + 1};

  const runtime::SpanScope framework_span{obs.span_sink(), "framework",
                                          Phase::kSetup,
                                          runtime::kOrchestratorParty};

  // Long-lived per-party streams backing the Rng& each party binds at
  // construction (only the initiator draws from hers at construction time).
  std::vector<ChaChaRng> party_rngs;
  party_rngs.reserve(n + 1);
  party_rngs.push_back(task_stream(StreamKind::kInitiatorSetup, 0, 0));
  for (std::size_t j = 1; j <= n; ++j)
    party_rngs.push_back(task_stream(StreamKind::kPartySetup, j, 0));

  Initiator initiator{ecfg, v0, w, party_rngs[0]};
  std::vector<Participant> parts;
  parts.reserve(n);
  for (std::size_t j = 1; j <= n; ++j)
    parts.emplace_back(ecfg, j, infos[j - 1], party_rngs[j]);

  // The message transport: n participants + the initiator (party 0), on the
  // default complete-graph topology. Byte accounting (trace) is always on;
  // the flow/virtual-time view (comm) rides on cfg.metrics. A fault plan
  // (if any) is consulted inside the router's serial choke point, so the
  // fault schedule is independent of cfg.parallelism.
  net::Router::Config router_cfg;
  router_cfg.faults = cfg.fault_plan;
  router_cfg.progress = cfg.progress;
  router_cfg.flight = cfg.flight;
  net::Router router{n + 1, result.trace, result.comm.get(), router_cfg};

  // Typed failure constructors (DESIGN.md Sec. 7). Channel errors carry the
  // failing link; the blamed party is the dead one if either endpoint
  // crashed, else the participant side of the link.
  const auto proto_fault = [&](Phase phase, std::size_t party,
                               const std::string& cause) {
    std::string what = "run_framework: " + cause + " [phase " +
                       runtime::phase_name(phase) + ", round " +
                       std::to_string(router.round_index());
    if (party != kNoParty) what += ", party P" + std::to_string(party);
    what += "]";
    // The fault is about to unwind past the result's registries: notify the
    // observers now, while the evidence still exists.
    if (cfg.flight != nullptr)
      cfg.flight->record(
          runtime::FlightEventKind::kFault, phase,
          static_cast<std::uint16_t>(party == kNoParty ? 0 : party + 1), 0, 0,
          router.round_index());
    if (cfg.audit != nullptr) cfg.audit->run_faulted(phase);
    return ProtocolFault(
        FaultInfo{phase, router.round_index(), party, cause},
        router.fault_report(), what);
  };
  // Audit checkpoint: phase `completed` is done and its counters are final.
  const auto audit_checkpoint = [&](Phase completed) {
    if (cfg.audit == nullptr) return;
    obs.flush_orchestrator();
    cfg.audit->phase_complete(completed, result.metrics.get(),
                              result.comm.get());
  };
  const auto blame = [&](const net::ChannelError& e) -> std::size_t {
    if (router.party_dead(e.src())) return e.src();
    if (router.party_dead(e.dst())) return e.dst();
    return e.src() == 0 ? e.dst() : e.src();
  };
  // Converts transport/decode failures escaping a phase into ProtocolFault.
  // Decode failures (WireError / invalid_argument from the codecs'
  // validation) are converted only under a fault plan: without one they
  // remain what they always were — programming errors.
  const auto rethrow_as_fault = [&](Phase phase) {
    try {
      throw;
    } catch (const ProtocolFault&) {
      throw;
    } catch (const net::ChannelError& e) {
      throw proto_fault(phase, blame(e),
                        std::string("channel failure: ") + e.what());
    } catch (const runtime::WireError& e) {
      if (cfg.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("undecodable message: ") + e.what());
    } catch (const std::invalid_argument& e) {
      if (cfg.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("invalid message content: ") + e.what());
    } catch (const std::exception& e) {
      // Tampered payloads carry a valid CRC and decode into garbage that can
      // trip any downstream validation (range checks, share consistency...).
      // Under an installed plan every such failure is a protocol fault, not
      // a crash; without one, rethrow untouched.
      if (cfg.fault_plan == nullptr) throw;
      throw proto_fault(phase, kNoParty,
                        std::string("corrupted protocol state: ") + e.what());
    }
  };
  // Per-task staging buffers for messages produced inside parallel regions;
  // absorbed in task-index order after each fork-join barrier.
  std::vector<runtime::CommBuffer> cbufs(std::max(n, std::size_t{1}));
  const auto absorb_comm = [&] {
    for (auto& b : cbufs) router.absorb(b);
  };

  // ---- Phase 1: secure gain computation ----
  // Dropout handling: a participant whose phase-1 channel fails (crash,
  // retries exhausted, deadline) is marked dropped. Without
  // degrade_on_dropout the run aborts right there with a ProtocolFault;
  // with it, phase 1 finishes over the remaining links and the protocol is
  // rerun over the survivor set below (the dropout happened before any
  // phase-2 commitment, so no comparison state binds the dead party). The
  // initiator crashing is always fatal.
  std::vector<char> dropped(n, 0);
  const auto mark_dropout = [&](std::size_t j, const net::ChannelError& e) {
    if (router.party_dead(0))
      throw proto_fault(Phase::kPhase1, 0, "initiator crashed");
    if (!cfg.degrade_on_dropout)
      throw proto_fault(Phase::kPhase1, j + 1,
                        std::string("participant lost: ") + e.what());
    dropped[j] = 1;
  };
  obs.set_phase(Phase::kPhase1);
  router.set_phase(Phase::kPhase1);
  try {
    const runtime::SpanScope phase_span{obs.span_sink(),
                                        "phase1.gain_computation",
                                        Phase::kPhase1,
                                        runtime::kOrchestratorParty};
    {
      const runtime::SpanScope step{obs.span_sink(), "p1.queries",
                                    Phase::kPhase1,
                                    runtime::kOrchestratorParty};
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        auto guard = obs.task(j, static_cast<std::int32_t>(j + 1),
                              "task.gain_query");
        auto scope = timer.time(j + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kPhase1, j + 1, 0);
        const auto& q = parts[j].gain_query(task_rng);
        runtime::Writer w;
        write_bob_round1(w, *cfg.dot_field, q);
        cbufs[j].send(j + 1, 0, seal(std::move(w)));
      });
      obs.collect();
    }
    absorb_comm();
    router.next_round();
    {
      const runtime::SpanScope step{obs.span_sink(), "p1.answers",
                                    Phase::kPhase1,
                                    runtime::kOrchestratorParty};
      std::vector<Payload> rx(n);
      for (std::size_t j = 0; j < n; ++j) {
        try {
          rx[j] = router.receive(j + 1, 0);
        } catch (const net::ChannelError& e) {
          mark_dropout(j, e);
        }
      }
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        if (dropped[j] != 0) return;
        auto guard = obs.task(j, 0, "task.gain_answer", j + 1);
        auto scope = timer.time(0);
        runtime::Reader r{*rx[j]};
        const auto q = read_bob_round1(r, *cfg.dot_field);
        r.finish();
        runtime::Writer w;
        write_alice_round2(w, *cfg.dot_field,
                           initiator.answer_gain_query(j + 1, q));
        cbufs[j].send(0, j + 1, seal(std::move(w)));
      });
      obs.collect();
    }
    absorb_comm();
    router.next_round();
    {
      const runtime::SpanScope step{obs.span_sink(), "p1.finish",
                                    Phase::kPhase1,
                                    runtime::kOrchestratorParty};
      std::vector<Payload> rx(n);
      for (std::size_t j = 0; j < n; ++j) {
        if (dropped[j] != 0) continue;
        try {
          rx[j] = router.receive(0, j + 1);
        } catch (const net::ChannelError& e) {
          mark_dropout(j, e);
        }
      }
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        if (dropped[j] != 0) return;
        auto guard = obs.task(j, static_cast<std::int32_t>(j + 1),
                              "task.gain_finish");
        auto scope = timer.time(j + 1);
        runtime::Reader r{*rx[j]};
        const auto answer = read_alice_round2(r, *cfg.dot_field);
        r.finish();
        parts[j].receive_gain_answer(answer);
      });
      obs.collect();
    }
    result.betas.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
      result.betas.push_back(parts[j].beta());
  } catch (...) {
    rethrow_as_fault(Phase::kPhase1);
  }

  // Degrade-on-dropout: rerun over the survivors (fresh instance, no fault
  // plan — the faults already happened) and remap its outputs to the
  // original party ids. β_j ordering is independent per party, so the
  // survivors' ranking equals the reduced instance's ranking.
  if (std::any_of(dropped.begin(), dropped.end(),
                  [](char d) { return d != 0; })) {
    std::vector<std::size_t> survivors, lost;
    for (std::size_t j = 0; j < n; ++j)
      (dropped[j] != 0 ? lost : survivors).push_back(j + 1);
    if (survivors.size() < 2)
      throw proto_fault(Phase::kPhase1, lost.front(),
                        "too few survivors to degrade (" +
                            std::to_string(survivors.size()) + " left)");
    if (cfg.flight != nullptr)
      cfg.flight->record(runtime::FlightEventKind::kDegrade, Phase::kPhase1,
                         0, static_cast<std::uint32_t>(survivors.size()),
                         static_cast<std::uint32_t>(lost.size()));
    // The survivor-set rerun is a different instance: the auditor's
    // reference no longer applies, so it is told about the degrade (a typed
    // finding naming the dropped parties) and detached from the sub-run.
    if (cfg.audit != nullptr) cfg.audit->run_degraded(lost);
    FrameworkConfig sub = cfg;
    sub.n = survivors.size();
    sub.k = std::min(cfg.k, sub.n);
    sub.fault_plan = nullptr;
    sub.degrade_on_dropout = false;
    sub.audit = nullptr;
    std::vector<AttrVec> sub_infos;
    sub_infos.reserve(survivors.size());
    for (const std::size_t id : survivors) sub_infos.push_back(infos[id - 1]);
    FrameworkResult out = run_framework(sub, v0, w, sub_infos, rng);
    std::vector<std::size_t> ranks(n, 0);
    std::vector<Nat> betas(n);
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      ranks[survivors[i] - 1] = out.ranks[i];
      betas[survivors[i] - 1] = std::move(out.betas[i]);
    }
    out.ranks = std::move(ranks);
    out.betas = std::move(betas);
    for (std::size_t& sid : out.submitted_ids) sid = survivors[sid - 1];
    out.active_parties = std::move(survivors);
    out.dropped_parties = std::move(lost);
    out.faults = router.fault_report();
    return out;
  }

  // ---- Phase 2: unlinkable gain comparison ----
  audit_checkpoint(Phase::kPhase1);
  obs.set_phase(Phase::kPhase2);
  router.set_phase(Phase::kPhase2);
  // From here on every party is cryptographically bound into the joint key,
  // the comparison circuits and the shuffle chain: any dropout or
  // undecodable message is a clean typed abort, never a degrade.
  std::vector<CipherSet> v_sets(n, CipherSet((n - 1) * l));
  try {
    const runtime::SpanScope phase_span{obs.span_sink(),
                                        "phase2.unlinkable_comparison",
                                        Phase::kPhase2,
                                        runtime::kOrchestratorParty};
    // Step 5: keys + zero-knowledge proofs (commit/challenge/response
    // rounds). Each party serializes its broadcast once; the n-1 copies
    // share the payload. Per-task comm buffers absorbed in party order keep
    // the flow sequence schedule-independent.
    std::vector<Elem> pubkeys(n);
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.keygen",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        auto guard =
            obs.task(j, static_cast<std::int32_t>(j + 1), "task.keygen");
        auto scope = timer.time(j + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kKeygen, j + 1, 0);
        pubkeys[j] = parts[j].public_key(task_rng);
        runtime::Writer w;
        crypto::write_elem(w, g, pubkeys[j]);
        const Payload payload = seal(std::move(w));
        for (std::size_t peer = 1; peer <= n; ++peer)
          if (peer != j + 1) cbufs[j].send(j + 1, peer, payload);
      });
      obs.collect();
    }
    absorb_comm();
    router.next_round();
    const std::size_t sb = crypto::scalar_wire_bytes(g);
    std::vector<crypto::SchnorrTranscript> proofs(n);
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.prove",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        auto guard =
            obs.task(j, static_cast<std::int32_t>(j + 1), "task.prove_key");
        auto scope = timer.time(j + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kProve, j + 1, 0);
        proofs[j] = parts[j].prove_key(n - 1, task_rng);
        // Commitment + response broadcast; each verifier's challenge flows
        // back accounting-only — its value is already in the transcript the
        // HBC simulation shares (DESIGN.md Sec. 5d).
        runtime::Writer w;
        crypto::write_elem(w, g, proofs[j].commitment);
        crypto::write_scalar(w, g, proofs[j].response);
        const Payload payload = seal(std::move(w));
        for (std::size_t peer = 1; peer <= n; ++peer) {
          if (peer == j + 1) continue;
          cbufs[j].send(j + 1, peer, payload);  // h and z
          cbufs[j].record(peer, j + 1, sb);     // challenge c
        }
      });
      obs.collect();
    }
    absorb_comm();
    router.next_round();
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.verify",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      // Pop the two broadcast rounds' mailboxes in fixed (receiver, sender)
      // order; each mailbox holds the key share first, then the proof.
      std::vector<Payload> key_rx(n * n), proof_rx(n * n);
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t peer = 0; peer < n; ++peer) {
          if (peer == j) continue;
          key_rx[j * n + peer] = router.receive(peer + 1, j + 1);
          proof_rx[j * n + peer] = router.receive(peer + 1, j + 1);
        }
      }
      // Verification failures are collected per (verifier, prover) pair and
      // surfaced after the barrier as a typed ProtocolFault naming the
      // prover whose proof was rejected — never an in-task abort.
      std::vector<char> proof_bad(n * n, 0);
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        auto guard = obs.task(j, static_cast<std::int32_t>(j + 1),
                              "task.verify_keys");
        auto scope = timer.time(j + 1);
        for (std::size_t peer = 0; peer < n; ++peer) {
          if (peer == j) continue;
          runtime::Reader kr{*key_rx[j * n + peer]};
          const Elem y = crypto::read_elem(kr, g);
          kr.finish();
          runtime::Reader pr{*proof_rx[j * n + peer]};
          crypto::SchnorrTranscript t;
          t.commitment = crypto::read_elem(pr, g);
          t.response = crypto::read_scalar(pr, g);
          pr.finish();
          // Challenge list shared out-of-band (see the prove step above).
          t.challenges = proofs[peer].challenges;
          if (!parts[j].verify_peer_key(y, t)) proof_bad[j * n + peer] = 1;
        }
      });
      obs.collect();
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t peer = 0; peer < n; ++peer)
          if (proof_bad[j * n + peer] != 0)
            throw proto_fault(Phase::kPhase2, peer + 1,
                              "key proof rejected (verifier P" +
                                  std::to_string(j + 1) + ")");
    }
    KeyPrecompute key_mat;
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.joint_key",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      const Elem joint = crypto::joint_public_key(g, pubkeys);
      if (cfg.precompute != nullptr) {
        // The joint key now exists: fetch/build its comb table and the
        // zero-encryption pool, and arm the accelerator. This runs between
        // fork-join barriers, so worker threads of the later steps observe
        // the attached table through the pool's synchronization. The pool is
        // the PR-6 widened layout: n·(n-1)·l comparison entries (slice
        // idx·l for evaluation idx, unchanged), then n·l entries feeding the
        // bitwise β encryptions (slice n·(n-1)·l + j·l for party j+1).
        const runtime::MetricsMute mute;
        key_mat = cfg.precompute->key_material(*cfg.group, joint,
                                               n * (n - 1) * l + n * l);
        accel->set_base_table(key_mat.key_table);
      }
      for (auto& p : parts) p.set_joint_key(joint);
      if (cfg.accel) {
        // Arm the multi-exp fast path: parties compute through the
        // undecorated proto_group and credit logical counts themselves. The
        // joint-key window table comes from the precompute source when one
        // is attached; otherwise it is built here, muted — its cost is
        // O(2^w · bits/w) multiplications once per run, repaid by the
        // n·(n-1)·l re-randomizations.
        std::shared_ptr<const group::FixedBaseTable> kt = key_mat.key_table;
        if (kt == nullptr) {
          const runtime::MetricsMute mute;
          kt = std::make_shared<const group::FixedBaseTable>(
              *cfg.group, joint, cfg.group->order().bit_length());
        }
        for (auto& p : parts) p.set_accel_context(proto_group, kt);
      }
    }
    router.next_round();

    // Step 6: bitwise encryptions, broadcast. Fanned out over all n·l
    // (party, bit) pairs — one encryption, one stream each. With a widened
    // zero pool available the encryptions ride its β region (no randomness
    // drawn — each task's stream exists but goes unused, so the fan-out
    // stays schedule-independent either way); a source supplying a
    // comparison-only pool simply leaves the drawing path in place.
    const std::size_t beta_pool_base = n * (n - 1) * l;
    const crypto::ZeroPool* beta_pool = key_mat.zero_pool.get();
    if (beta_pool != nullptr &&
        beta_pool->entries.size() < beta_pool_base + n * l)
      beta_pool = nullptr;
    std::vector<std::vector<Ciphertext>> beta_bits(
        n, std::vector<Ciphertext>(l));
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.encrypt_bits",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      obs.stage(n * l);
      pool.parallel_for(n * l, [&](std::size_t idx) {
        const std::size_t j = idx / l;
        const std::size_t b = idx % l;
        auto guard = obs.task(idx, static_cast<std::int32_t>(j + 1),
                              "task.encrypt_bit", b);
        auto scope = timer.time(j + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kEncryptBit, j + 1, b);
        beta_bits[j][b] = parts[j].encrypt_beta_bit(
            b, task_rng, beta_pool, beta_pool_base + j * l);
      });
      obs.collect();
    }
    // Broadcast each party's l ciphertexts. The serialized form travels to
    // all n-1 peers (transmit: identical copies, counted per link) and is
    // decoded once — every evaluator compares against the same validated
    // wire image (DESIGN.md Sec. 5d).
    for (std::size_t j = 0; j < n; ++j) {
      runtime::Writer w;
      crypto::write_ciphertext_seq(w, g, beta_bits[j]);
      const std::size_t bytes = w.size();
      for (std::size_t peer = 1; peer <= n; ++peer)
        if (peer != j + 1) router.transmit(j + 1, peer, bytes);
      runtime::Reader r{w.data()};
      beta_bits[j] = crypto::read_ciphertext_seq(r, g, l);
      r.finish();
    }
    router.next_round();

    // Step 7: comparisons; flattened sets go to P1. The n·(n-1) circuit
    // evaluations are the dominant cost — each (evaluator j, peer i) pair is
    // an independent task writing its l ciphertexts into a fixed slot.
    {
      const runtime::SpanScope step{obs.span_sink(), "p2.compare",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty};
      obs.stage(n * (n - 1));
      pool.parallel_for(n * (n - 1), [&](std::size_t idx) {
        const std::size_t j = idx / (n - 1);
        const std::size_t slot = idx % (n - 1);
        const std::size_t i = slot < j ? slot : slot + 1;  // skip i == j
        auto guard = obs.task(idx, static_cast<std::int32_t>(j + 1),
                              "task.compare", i);
        auto scope = timer.time(j + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kCompare, j + 1, i);
        auto tau = parts[j].compare_against(beta_bits[i], task_rng,
                                            key_mat.zero_pool.get(), idx * l);
        std::move(tau.begin(), tau.end(), v_sets[j].begin() + slot * l);
      });
      obs.collect();
    }
    // Flattened comparison sets travel to P1 (P1's own set stays put).
    for (std::size_t j = 1; j < n; ++j) {
      runtime::Writer w;
      crypto::write_ciphertext_seq(w, g, v_sets[j]);
      router.channel(j + 1, 1).send(std::move(w));
    }
    router.next_round();
    for (std::size_t j = 1; j < n; ++j) {
      const auto payload = router.channel(j + 1, 1).receive();
      runtime::Reader r{*payload};
      v_sets[j] = crypto::read_ciphertext_seq(r, g, v_sets[j].size());
      r.finish();
    }

    // Step 8: the decrypt-shuffle chain P1 -> P2 -> ... -> Pn. Hops are
    // inherently sequential, but within a hop the n-1 foreign sets are
    // decrypted/randomized/permuted independently.
    for (std::size_t hop = 0; hop < n; ++hop) {
      const runtime::SpanScope step{obs.span_sink(), "p2.shuffle",
                                    Phase::kPhase2,
                                    runtime::kOrchestratorParty, hop};
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t owner) {
        if (owner == hop) return;  // never touch the own set
        auto guard = obs.task(owner, static_cast<std::int32_t>(hop + 1),
                              "task.shuffle_hop", owner);
        auto scope = timer.time(hop + 1);
        ChaChaRng task_rng = task_stream(StreamKind::kShuffle, hop + 1, owner);
        parts[hop].shuffle_hop(v_sets[owner], task_rng);
      });
      obs.collect();
      if (hop + 1 < n) {
        // Forward the whole vector V to the next participant, who decodes
        // it before its own hop.
        runtime::Writer w;
        for (const auto& s : v_sets) crypto::write_ciphertext_seq(w, g, s);
        router.channel(hop + 1, hop + 2).send(std::move(w));
        router.next_round();
        const auto payload = router.channel(hop + 1, hop + 2).receive();
        runtime::Reader r{*payload};
        for (auto& s : v_sets) s = crypto::read_ciphertext_seq(r, g, s.size());
        r.finish();
      }
    }
    // P_n returns each set to its owner (P_n's own set stays put).
    for (std::size_t owner = 0; owner + 1 < n; ++owner) {
      runtime::Writer w;
      crypto::write_ciphertext_seq(w, g, v_sets[owner]);
      router.channel(n, owner + 1).send(std::move(w));
    }
    router.next_round();
    for (std::size_t owner = 0; owner + 1 < n; ++owner) {
      const auto payload = router.channel(n, owner + 1).receive();
      runtime::Reader r{*payload};
      v_sets[owner] = crypto::read_ciphertext_seq(r, g, v_sets[owner].size());
      r.finish();
    }
  } catch (...) {
    rethrow_as_fault(Phase::kPhase2);
  }

  // Step 9 / Phase 3: ranks and submissions.
  audit_checkpoint(Phase::kPhase2);
  obs.set_phase(Phase::kPhase3);
  router.set_phase(Phase::kPhase3);
  try {
    const runtime::SpanScope phase_span{obs.span_sink(), "phase3.submission",
                                        Phase::kPhase3,
                                        runtime::kOrchestratorParty};
    result.ranks.resize(n);
    {
      const runtime::SpanScope step{obs.span_sink(), "p3.rank",
                                    Phase::kPhase3,
                                    runtime::kOrchestratorParty};
      obs.stage(n);
      pool.parallel_for(n, [&](std::size_t j) {
        auto guard =
            obs.task(j, static_cast<std::int32_t>(j + 1), "task.rank");
        auto scope = timer.time(j + 1);
        result.ranks[j] = parts[j].compute_rank(v_sets[j]);
      });
      obs.collect();
    }
    {
      const runtime::SpanScope step{obs.span_sink(), "p3.submit",
                                    Phase::kPhase3,
                                    runtime::kOrchestratorParty};
      for (std::size_t j = 0; j < n; ++j) {
        const auto sub = parts[j].submission(result.ranks[j]);
        if (sub) {
          result.submitted_ids.push_back(j + 1);
          runtime::Writer w;
          write_submission(w, cfg.spec, *sub);
          router.channel(j + 1, 0).send(std::move(w));
        }
      }
      for (const std::size_t id : result.submitted_ids) {
        auto scope = timer.time(0);
        const auto payload = router.channel(id, 0).receive();
        runtime::Reader r{*payload};
        initiator.receive_submission(read_submission(r, cfg.spec));
        r.finish();
      }
    }
    router.next_round();
    {
      const runtime::SpanScope step{obs.span_sink(), "p3.crosscheck",
                                    Phase::kPhase3,
                                    runtime::kOrchestratorParty};
      auto scope = timer.time(0);
      const auto bad = initiator.inconsistent_submissions();
      if (!bad.empty())
        throw std::runtime_error("run_framework: inconsistent submission");
    }
  } catch (...) {
    rethrow_as_fault(Phase::kPhase3);
  }

  if (router.pending() != 0)
    throw std::logic_error("run_framework: undelivered messages");

  result.active_parties.resize(n);
  for (std::size_t j = 0; j < n; ++j) result.active_parties[j] = j + 1;
  if (cfg.fault_plan != nullptr) result.faults = router.fault_report();

  result.compute_seconds.resize(n + 1);
  for (std::size_t p = 0; p <= n; ++p)
    result.compute_seconds[p] = timer.seconds(p);

  audit_checkpoint(Phase::kPhase3);
  if (cfg.audit != nullptr)
    cfg.audit->run_complete(result.submitted_ids, result.metrics.get(),
                            result.comm.get(), router.round_index());
  return result;
}

const FpCtx& default_dot_field() {
  static const FpCtx field{Nat::from_dec(
      "578960446186580977117854925043439539266349923328202820197287920039565648"
      "19949")};
  return field;
}

std::vector<std::size_t> reference_ranks(const ProblemSpec& spec,
                                         const AttrVec& v0, const AttrVec& w,
                                         const std::vector<AttrVec>& infos) {
  std::vector<Int> gains;
  gains.reserve(infos.size());
  for (const auto& v : infos) gains.push_back(gain(spec, v0, w, v));
  std::vector<std::size_t> ranks(infos.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    std::size_t above = 0;
    for (std::size_t j = 0; j < infos.size(); ++j)
      if (gains[j] > gains[i]) ++above;
    ranks[i] = above + 1;
  }
  return ranks;
}

}  // namespace ppgr::core

// Honest-verifier zero-knowledge proof of knowledge of a discrete logarithm
// (Schnorr identification, Sec. IV-E of the paper), including the paper's
// extension to n verifiers: every verifier contributes a challenge c_j, the
// prover answers z = r + x·Σc_j mod q, and each verifier checks
// g^z == h · y^{Σc_j}.
//
// The transcript type and the knowledge extractor mirror the special-
// soundness argument in the paper (two accepting transcripts on the same
// commitment reveal x); the extractor is exercised both by tests and by the
// security-game harness in core/, which replays the simulator constructions
// of Lemmas 3 and 4.
#pragma once

#include <vector>

#include "group/group.h"

namespace ppgr::crypto {

using group::Elem;
using group::Group;
using mpz::Nat;
using mpz::Rng;

/// One complete run of the (possibly multi-verifier) protocol.
struct SchnorrTranscript {
  Elem commitment;              // h = g^r
  std::vector<Nat> challenges;  // c_j from each verifier
  Nat response;                 // z = r + x·Σc_j mod q
};

/// Prover state between commit and respond.
struct SchnorrProverState {
  Nat r;
  Elem commitment;
};

/// Step 1 (prover): commit to fresh randomness.
[[nodiscard]] SchnorrProverState schnorr_commit(const Group& g, Rng& rng);

/// Step 2 (each verifier): sample a challenge.
[[nodiscard]] Nat schnorr_challenge(const Group& g, Rng& rng);

/// Step 3 (prover): respond to the combined challenges with witness x.
[[nodiscard]] Nat schnorr_respond(const Group& g, const SchnorrProverState& st,
                                  const Nat& x, std::span<const Nat> challenges);

/// Step 4 (each verifier): check g^z == h · y^{Σc_j}.
[[nodiscard]] bool schnorr_verify(const Group& g, const Elem& y,
                                  const SchnorrTranscript& t);

/// Convenience: run the whole protocol locally with `n_verifiers` honest
/// verifiers and return the transcript (used in the HBC simulation, where
/// the interaction is honest by assumption).
[[nodiscard]] SchnorrTranscript schnorr_prove(const Group& g, const Nat& x,
                                              std::size_t n_verifiers,
                                              Rng& rng);

/// Special-soundness knowledge extractor: given two accepting transcripts
/// that share a commitment but differ in total challenge, recovers x with
/// x = (z - z') / (Σc - Σc') mod q. Throws std::invalid_argument if the
/// transcripts do not satisfy those preconditions.
[[nodiscard]] Nat schnorr_extract(const Group& g, const SchnorrTranscript& t1,
                                  const SchnorrTranscript& t2);

/// HVZK simulator: produces a transcript distributed identically to a real
/// one without knowing x (pick z and the challenges, solve for h). Used by
/// tests to check zero-knowledge mechanics.
[[nodiscard]] SchnorrTranscript schnorr_simulate(const Group& g, const Elem& y,
                                                 std::size_t n_verifiers,
                                                 Rng& rng);

}  // namespace ppgr::crypto

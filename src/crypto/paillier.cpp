#include "crypto/paillier.h"

#include <stdexcept>

#include "mpz/modarith.h"
#include "mpz/prime.h"
#include "runtime/metrics.h"

namespace ppgr::crypto {

PaillierPublicKey::PaillierPublicKey(Nat modulus)
    : n_(std::move(modulus)), mont_n2_(Nat::mul(n_, n_)) {
  if (n_ < Nat{4}) throw std::invalid_argument("Paillier: modulus too small");
}

std::size_t PaillierPublicKey::ciphertext_bytes() const {
  return (n_squared().bit_length() + 7) / 8;
}

Nat PaillierPublicKey::encrypt(const Nat& m, Rng& rng) const {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kPaillierEncrypt);
  if (m >= n_) throw std::invalid_argument("Paillier::encrypt: m >= N");
  // (1 + mN) * r^N mod N^2, with r coprime to N (random < N is coprime with
  // overwhelming probability; retry on the negligible failure).
  Nat r;
  do {
    r = rng.nonzero_below(n_);
  } while (!mpz::gcd(r, n_).is_one());
  const Nat one_plus_mn = mont_n2_.to_mont(
      Nat::add(Nat{1}, Nat::mul(m, n_)) % n_squared());
  const Nat r_pow_n = mont_n2_.exp(mont_n2_.to_mont(r), n_);
  return mont_n2_.from_mont(mont_n2_.mul(one_plus_mn, r_pow_n));
}

Nat PaillierPublicKey::add(const Nat& c1, const Nat& c2) const {
  runtime::count_op(runtime::CryptoOp::kPaillierAdd);
  return Nat::mul(c1, c2) % n_squared();
}

Nat PaillierPublicKey::scale(const Nat& c, const Nat& k) const {
  runtime::count_op(runtime::CryptoOp::kPaillierScale);
  return mont_n2_.from_mont(mont_n2_.exp(mont_n2_.to_mont(c), k));
}

Nat PaillierPublicKey::rerandomize(const Nat& c, Rng& rng) const {
  runtime::count_op(runtime::CryptoOp::kPaillierRerandomize);
  return add(c, encrypt(Nat{}, rng));
}

PaillierPrivateKey::PaillierPrivateKey(PaillierPublicKey pub, Nat lambda,
                                       Nat mu)
    : pub_(std::move(pub)), lambda_(std::move(lambda)), mu_(std::move(mu)) {}

PaillierPrivateKey PaillierPrivateKey::generate(std::size_t modulus_bits,
                                                Rng& rng) {
  if (modulus_bits < 16)
    throw std::invalid_argument("Paillier: modulus too small");
  for (;;) {
    const Nat p = mpz::random_prime(modulus_bits / 2, rng);
    const Nat q = mpz::random_prime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    const Nat n = Nat::mul(p, q);
    // λ = lcm(p-1, q-1).
    const Nat p1 = Nat::sub(p, Nat{1}), q1 = Nat::sub(q, Nat{1});
    const Nat lambda = Nat::mul(p1, q1) / mpz::gcd(p1, q1);
    const auto mu = mpz::invmod(lambda, n);
    if (!mu) continue;  // gcd(λ, N) != 1: re-draw primes
    return PaillierPrivateKey{PaillierPublicKey{n}, lambda, *mu};
  }
}

Nat PaillierPrivateKey::decrypt(const Nat& c) const {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kPaillierDecrypt);
  const Nat& n = pub_.n();
  if (c.is_zero() || c >= pub_.n_squared())
    throw std::invalid_argument("Paillier::decrypt: ciphertext out of range");
  // L(c^λ mod N²) · μ mod N, with L(x) = (x - 1) / N.
  const Nat c_lambda = pub_.mont_n2_.from_mont(
      pub_.mont_n2_.exp(pub_.mont_n2_.to_mont(c), lambda_));
  const Nat l = Nat::sub(c_lambda, Nat{1}) / n;
  return Nat::mul(l, mu_) % n;
}

}  // namespace ppgr::crypto

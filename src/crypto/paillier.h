// Paillier cryptosystem (the paper's reference [10]) — the other additively
// homomorphic encryption a group-ranking framework could be built on.
//
// Implemented as an extension to make the paper's design choice concrete
// (see bench/ablation_paillier): Paillier decrypts sums *directly* (no
// discrete-log recovery, unlike exponential ElGamal), and supports the same
// homomorphic toolbox (add = ciphertext product, scale = ciphertext power,
// re-randomize = multiply an encryption of zero). What it cannot give the
// framework is a dealerless *distributed* key: the secret is the
// factorization of N, and generating an RSA modulus jointly among n mutually
// distrusting parties is far heavier than the one-round ElGamal joint key
// y = Π g^{x_j} — which is why the paper (and this library's core) uses
// ElGamal for the unlinkable comparison phase.
//
// Standard simplified variant: g = N + 1, so encryption is
// E(m; r) = (1 + mN) · r^N mod N², and decryption uses
// m = L(c^λ mod N²) · λ^{-1} mod N with L(x) = (x-1)/N.
#pragma once

#include "mpz/mont.h"
#include "mpz/nat.h"
#include "mpz/rng.h"

namespace ppgr::crypto {

using mpz::Nat;
using mpz::Rng;

class PaillierPublicKey {
 public:
  explicit PaillierPublicKey(Nat modulus);

  [[nodiscard]] const Nat& n() const { return n_; }
  [[nodiscard]] const Nat& n_squared() const { return mont_n2_.modulus(); }
  [[nodiscard]] std::size_t modulus_bits() const { return n_.bit_length(); }
  /// Serialized ciphertext size in bytes (one element of Z_{N^2}).
  [[nodiscard]] std::size_t ciphertext_bytes() const;

  /// E(m; fresh r). m must be < N.
  [[nodiscard]] Nat encrypt(const Nat& m, Rng& rng) const;
  /// E(m1) * E(m2) = E(m1 + m2 mod N).
  [[nodiscard]] Nat add(const Nat& c1, const Nat& c2) const;
  /// E(m)^k = E(k·m mod N).
  [[nodiscard]] Nat scale(const Nat& c, const Nat& k) const;
  /// Multiply in a fresh encryption of zero.
  [[nodiscard]] Nat rerandomize(const Nat& c, Rng& rng) const;

 private:
  friend class PaillierPrivateKey;
  Nat n_;
  mpz::MontCtx mont_n2_;
};

class PaillierPrivateKey {
 public:
  /// Generates an RSA modulus of `modulus_bits` (two random primes).
  static PaillierPrivateKey generate(std::size_t modulus_bits, Rng& rng);

  [[nodiscard]] const PaillierPublicKey& public_key() const { return pub_; }
  /// Recovers m < N from a ciphertext.
  [[nodiscard]] Nat decrypt(const Nat& c) const;

 private:
  PaillierPrivateKey(PaillierPublicKey pub, Nat lambda, Nat mu);

  PaillierPublicKey pub_;
  Nat lambda_;  // lcm(p-1, q-1)
  Nat mu_;      // lambda^{-1} mod N
};

}  // namespace ppgr::crypto

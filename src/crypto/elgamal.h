// ElGamal over an abstract prime-order group, in both the standard form
// E(M) = (M·y^r, g^r) and the paper's "modified" exponential form
// E(m) = (g^m·y^r, g^r) (Sec. IV-D), which is additively homomorphic:
//
//     E(m1) ∘ E(m2) = E(m1 + m2)         (component-wise product)
//     E(m)^k        = E(k·m)             (component-wise exponentiation)
//
// Exponential ElGamal cannot be decrypted to m in general (that would be a
// discrete log), but the framework only ever needs the zero test
// g^m == 1 — exactly as the paper notes.
//
// The distributed variant (Sec. IV-D last paragraph) splits the secret key
// additively: each party holds x_j, the joint public key is y = Π g^{x_j},
// and decryption composes per-party partial decryptions c / c'^{x_j}.
#pragma once

#include <array>

#include "group/group.h"

namespace ppgr::crypto {

using group::Elem;
using group::Group;
using mpz::Nat;
using mpz::Rng;

/// (c, cp) = (payload, g^r) following the paper's (c, c') notation.
struct Ciphertext {
  Elem c;
  Elem cp;
};

struct KeyPair {
  Nat x;   // private
  Elem y;  // public, g^x
};

[[nodiscard]] KeyPair keygen(const Group& g, Rng& rng);

/// Joint public key y = Π y_j for distributed ElGamal.
[[nodiscard]] Elem joint_public_key(const Group& g, std::span<const Elem> ys);

// --- standard ElGamal ---
[[nodiscard]] Ciphertext encrypt(const Group& g, const Elem& y, const Elem& m,
                                 Rng& rng);
[[nodiscard]] Elem decrypt(const Group& g, const Nat& x, const Ciphertext& ct);

// --- exponential (additive-homomorphic) ElGamal ---
[[nodiscard]] Ciphertext encrypt_exp(const Group& g, const Elem& y,
                                     const Nat& m, Rng& rng);
/// g^m as recovered by decryption (the "m cannot be extracted" form).
[[nodiscard]] Elem decrypt_exp(const Group& g, const Nat& x,
                               const Ciphertext& ct);
/// True iff the plaintext is zero (g^m == 1) — the only decryption the
/// ranking phase needs.
[[nodiscard]] bool decrypts_to_zero(const Group& g, const Nat& x,
                                    const Ciphertext& ct);

// --- homomorphic operators (exponential form) ---
/// E(m1) ∘ E(m2) = E(m1+m2).
[[nodiscard]] Ciphertext ct_add(const Group& g, const Ciphertext& a,
                                const Ciphertext& b);
/// E(m1) ∘ E(m2)^{-1} = E(m1-m2).
[[nodiscard]] Ciphertext ct_sub(const Group& g, const Ciphertext& a,
                                const Ciphertext& b);
/// E(m)^k = E(k·m).
[[nodiscard]] Ciphertext ct_scale(const Group& g, const Ciphertext& ct,
                                  const Nat& k);
/// Adds a *public* constant without fresh randomness: (c·g^k, c').
[[nodiscard]] Ciphertext ct_add_plain(const Group& g, const Ciphertext& ct,
                                      const Nat& k);
/// Multiplies in a fresh encryption of zero, refreshing the randomness.
[[nodiscard]] Ciphertext rerandomize(const Group& g, const Elem& y,
                                     const Ciphertext& ct, Rng& rng);

/// A precomputed pool of encryptions of zero under one public key — the
/// standard mixnet trick for cheap re-randomization: ct ∘ E_y(0; r_i) costs
/// two group multiplications instead of two exponentiations. Entry i is a
/// pure function of (group, y, key, i): its randomness comes from the
/// counter-seeded substream ChaChaRng(key, i), so a pool can be rebuilt
/// bit-identically from its 256-bit key (the session engine's
/// PrecomputeCache keys pools this way). Each entry must be consumed at
/// most once per protocol run, at a slot index fixed by the task's place in
/// the protocol — never by the schedule.
struct ZeroPool {
  std::vector<Ciphertext> entries;
};
[[nodiscard]] ZeroPool make_zero_pool(const Group& g, const Elem& y,
                                      const std::array<std::uint8_t, 32>& key,
                                      std::size_t count);
/// Re-randomization by a pool entry: ct ∘ zero. Counts/times as a
/// kElGamalRerandomize like the exponentiating form.
[[nodiscard]] Ciphertext rerandomize_with(const Group& g, const Ciphertext& ct,
                                          const Ciphertext& zero);
/// Pool-fed exponential encryption: E(m) = zero ∘ (g^m, 1) — the PR 6
/// "phase-2 capable" pool use, letting the bitwise β encryptions ride the
/// same precomputed randomness as the comparison re-randomizations (one
/// fixed-base exponentiation and one multiplication instead of a full
/// encrypt_exp). Counts/times as a kElGamalEncrypt like the drawing form.
[[nodiscard]] Ciphertext encrypt_exp_with(const Group& g, const Ciphertext& zero,
                                          const Nat& m);

// --- distributed decryption building blocks (framework step 8) ---
/// Removes one key layer: (c / c'^{x_j}, c'). After every holder of a key
/// share has applied this, c holds g^m.
[[nodiscard]] Ciphertext partial_decrypt(const Group& g, const Nat& x_j,
                                         const Ciphertext& ct);
/// Raises both components to r: plaintext m becomes r·m (so zero stays zero
/// and any nonzero value becomes uniformly random — the paper's
/// randomization trick in step 8).
[[nodiscard]] Ciphertext exp_randomize(const Group& g, const Ciphertext& ct,
                                       const Nat& r);

/// Serialized size of a ciphertext (the S_c of Sec. VI-B).
[[nodiscard]] std::size_t ciphertext_bytes(const Group& g);

}  // namespace ppgr::crypto

#include "crypto/elgamal.h"

#include "runtime/metrics.h"

namespace ppgr::crypto {

using runtime::CryptoOp;

KeyPair keygen(const Group& g, Rng& rng) {
  KeyPair kp;
  kp.x = g.random_nonzero_scalar(rng);
  kp.y = g.exp_g(kp.x);
  return kp;
}

Elem joint_public_key(const Group& g, std::span<const Elem> ys) {
  Elem y = g.identity();
  for (const Elem& yi : ys) y = g.mul(y, yi);
  return y;
}

Ciphertext encrypt(const Group& g, const Elem& y, const Elem& m, Rng& rng) {
  const runtime::ScopedOpTimer timer(CryptoOp::kElGamalEncrypt);
  const Nat r = g.random_nonzero_scalar(rng);
  return Ciphertext{.c = g.mul(m, g.exp(y, r)), .cp = g.exp_g(r)};
}

Elem decrypt(const Group& g, const Nat& x, const Ciphertext& ct) {
  const runtime::ScopedOpTimer timer(CryptoOp::kElGamalDecrypt);
  return g.div(ct.c, g.exp(ct.cp, x));
}

Ciphertext encrypt_exp(const Group& g, const Elem& y, const Nat& m, Rng& rng) {
  return encrypt(g, y, g.exp_g(m), rng);
}

Elem decrypt_exp(const Group& g, const Nat& x, const Ciphertext& ct) {
  return decrypt(g, x, ct);
}

bool decrypts_to_zero(const Group& g, const Nat& x, const Ciphertext& ct) {
  return g.is_identity(decrypt(g, x, ct));
}

Ciphertext ct_add(const Group& g, const Ciphertext& a, const Ciphertext& b) {
  return Ciphertext{.c = g.mul(a.c, b.c), .cp = g.mul(a.cp, b.cp)};
}

Ciphertext ct_sub(const Group& g, const Ciphertext& a, const Ciphertext& b) {
  return Ciphertext{.c = g.div(a.c, b.c), .cp = g.div(a.cp, b.cp)};
}

Ciphertext ct_scale(const Group& g, const Ciphertext& ct, const Nat& k) {
  return Ciphertext{.c = g.exp(ct.c, k), .cp = g.exp(ct.cp, k)};
}

Ciphertext ct_add_plain(const Group& g, const Ciphertext& ct, const Nat& k) {
  return Ciphertext{.c = g.mul(ct.c, g.exp_g(k)), .cp = ct.cp};
}

Ciphertext rerandomize(const Group& g, const Elem& y, const Ciphertext& ct,
                       Rng& rng) {
  const runtime::ScopedOpTimer timer(CryptoOp::kElGamalRerandomize);
  const Nat r = g.random_nonzero_scalar(rng);
  return Ciphertext{.c = g.mul(ct.c, g.exp(y, r)),
                    .cp = g.mul(ct.cp, g.exp_g(r))};
}

ZeroPool make_zero_pool(const Group& g, const Elem& y,
                        const std::array<std::uint8_t, 32>& key,
                        std::size_t count) {
  ZeroPool pool;
  pool.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    mpz::ChaChaRng rng{key, static_cast<std::uint64_t>(i)};
    const Nat r = g.random_nonzero_scalar(rng);
    pool.entries.push_back(
        Ciphertext{.c = g.exp(y, r), .cp = g.exp_g(r)});
  }
  return pool;
}

Ciphertext rerandomize_with(const Group& g, const Ciphertext& ct,
                            const Ciphertext& zero) {
  const runtime::ScopedOpTimer timer(CryptoOp::kElGamalRerandomize);
  return ct_add(g, ct, zero);
}

Ciphertext encrypt_exp_with(const Group& g, const Ciphertext& zero,
                            const Nat& m) {
  const runtime::ScopedOpTimer timer(CryptoOp::kElGamalEncrypt);
  return Ciphertext{.c = g.mul(zero.c, g.exp_g(m)), .cp = zero.cp};
}

Ciphertext partial_decrypt(const Group& g, const Nat& x_j,
                           const Ciphertext& ct) {
  runtime::count_op(CryptoOp::kElGamalPartialDecrypt);
  return Ciphertext{.c = g.div(ct.c, g.exp(ct.cp, x_j)), .cp = ct.cp};
}

Ciphertext exp_randomize(const Group& g, const Ciphertext& ct, const Nat& r) {
  runtime::count_op(CryptoOp::kElGamalExpRandomize);
  return Ciphertext{.c = g.exp(ct.c, r), .cp = g.exp(ct.cp, r)};
}

std::size_t ciphertext_bytes(const Group& g) { return 2 * g.element_bytes(); }

}  // namespace ppgr::crypto

#include "crypto/schnorr_proof.h"

#include <stdexcept>

#include "mpz/modarith.h"
#include "runtime/metrics.h"

namespace ppgr::crypto {

namespace {
Nat sum_mod_q(const Group& g, std::span<const Nat> xs) {
  Nat s;
  for (const Nat& x : xs) s = Nat::add(s, x) % g.order();
  return s;
}
}  // namespace

SchnorrProverState schnorr_commit(const Group& g, Rng& rng) {
  SchnorrProverState st;
  st.r = g.random_scalar(rng);
  st.commitment = g.exp_g(st.r);
  return st;
}

Nat schnorr_challenge(const Group& g, Rng& rng) {
  return g.random_scalar(rng);
}

Nat schnorr_respond(const Group& g, const SchnorrProverState& st, const Nat& x,
                    std::span<const Nat> challenges) {
  const Nat csum = sum_mod_q(g, challenges);
  return Nat::add(st.r, Nat::mul(x % g.order(), csum) % g.order()) % g.order();
}

bool schnorr_verify(const Group& g, const Elem& y, const SchnorrTranscript& t) {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kSchnorrVerify);
  const Nat csum = sum_mod_q(g, t.challenges);
  const Elem lhs = g.exp_g(t.response);
  const Elem rhs = g.mul(t.commitment, g.exp(y, csum));
  return g.eq(lhs, rhs);
}

SchnorrTranscript schnorr_prove(const Group& g, const Nat& x,
                                std::size_t n_verifiers, Rng& rng) {
  const runtime::ScopedOpTimer timer(runtime::CryptoOp::kSchnorrProve);
  const SchnorrProverState st = schnorr_commit(g, rng);
  SchnorrTranscript t;
  t.commitment = st.commitment;
  t.challenges.reserve(n_verifiers);
  for (std::size_t i = 0; i < n_verifiers; ++i)
    t.challenges.push_back(schnorr_challenge(g, rng));
  t.response = schnorr_respond(g, st, x, t.challenges);
  return t;
}

Nat schnorr_extract(const Group& g, const SchnorrTranscript& t1,
                    const SchnorrTranscript& t2) {
  if (!g.eq(t1.commitment, t2.commitment))
    throw std::invalid_argument("schnorr_extract: different commitments");
  const Nat& q = g.order();
  const Nat c1 = sum_mod_q(g, t1.challenges);
  const Nat c2 = sum_mod_q(g, t2.challenges);
  if (c1 == c2)
    throw std::invalid_argument("schnorr_extract: equal total challenges");
  // x = (z1 - z2) / (c1 - c2) mod q.
  const Nat dz = Nat::add(t1.response, Nat::sub(q, t2.response % q)) % q;
  const Nat dc = Nat::add(c1, Nat::sub(q, c2)) % q;
  const auto dc_inv = mpz::invmod(dc, q);
  if (!dc_inv)  // q prime, dc != 0, so this cannot happen
    throw std::invalid_argument("schnorr_extract: challenge diff not invertible");
  return Nat::mul(dz, *dc_inv) % q;
}

SchnorrTranscript schnorr_simulate(const Group& g, const Elem& y,
                                   std::size_t n_verifiers, Rng& rng) {
  SchnorrTranscript t;
  t.challenges.reserve(n_verifiers);
  for (std::size_t i = 0; i < n_verifiers; ++i)
    t.challenges.push_back(schnorr_challenge(g, rng));
  t.response = g.random_scalar(rng);
  // h = g^z / y^{Σc} makes the verification equation hold by construction.
  const Nat csum = sum_mod_q(g, t.challenges);
  t.commitment = g.div(g.exp_g(t.response), g.exp(y, csum));
  return t;
}

}  // namespace ppgr::crypto

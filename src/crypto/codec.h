// Wire codecs for the cryptographic message types (see runtime/wire.h).
//
// Group elements use the group's fixed-size canonical encoding; decoding
// validates group membership (the underlying deserialize rejects
// non-residues / off-curve points), so a malformed peer message fails
// loudly at the boundary instead of corrupting protocol state.
#pragma once

#include "crypto/elgamal.h"
#include "crypto/schnorr_proof.h"
#include "runtime/wire.h"

namespace ppgr::crypto {

using runtime::Reader;
using runtime::Writer;

void write_elem(Writer& w, const Group& g, const Elem& e);
[[nodiscard]] Elem read_elem(Reader& r, const Group& g);

void write_ciphertext(Writer& w, const Group& g, const Ciphertext& ct);
[[nodiscard]] Ciphertext read_ciphertext(Reader& r, const Group& g);

void write_ciphertexts(Writer& w, const Group& g,
                       std::span<const Ciphertext> cts);
[[nodiscard]] std::vector<Ciphertext> read_ciphertexts(Reader& r,
                                                       const Group& g);

void write_transcript(Writer& w, const Group& g, const SchnorrTranscript& t);
[[nodiscard]] SchnorrTranscript read_transcript(Reader& r, const Group& g);

/// Encoded sizes (exact): these back the TraceRecorder byte accounting.
[[nodiscard]] std::size_t elem_wire_bytes(const Group& g);
[[nodiscard]] std::size_t ciphertext_wire_bytes(const Group& g);

}  // namespace ppgr::crypto

// Wire codecs for the cryptographic message types (see runtime/wire.h).
//
// Group elements use the group's fixed-size canonical encoding; decoding
// validates group membership (the underlying deserialize rejects
// non-residues / off-curve points), so a malformed peer message fails
// loudly at the boundary instead of corrupting protocol state.
#pragma once

#include "crypto/elgamal.h"
#include "crypto/schnorr_proof.h"
#include "runtime/wire.h"

namespace ppgr::crypto {

using runtime::Reader;
using runtime::Writer;

void write_elem(Writer& w, const Group& g, const Elem& e);
[[nodiscard]] Elem read_elem(Reader& r, const Group& g);

/// Scalars (exponents mod the group order) travel fixed-width big-endian,
/// scalar_wire_bytes(g) long; decoding rejects values >= the order. Used by
/// the Schnorr proof messages, whose sizes must match the analytic
/// accounting exactly.
void write_scalar(Writer& w, const Group& g, const mpz::Nat& s);
[[nodiscard]] mpz::Nat read_scalar(Reader& r, const Group& g);

void write_ciphertext(Writer& w, const Group& g, const Ciphertext& ct);
[[nodiscard]] Ciphertext read_ciphertext(Reader& r, const Group& g);

/// Fixed-count ciphertext sequence: no length prefix — the count is implied
/// by the protocol position (l bits, (n-1)*l comparison outcomes, ...), so
/// the wire size is exactly count * ciphertext_wire_bytes(g). This framing
/// carries the bulk phase-2 traffic.
void write_ciphertext_seq(Writer& w, const Group& g,
                          std::span<const Ciphertext> cts);
[[nodiscard]] std::vector<Ciphertext> read_ciphertext_seq(Reader& r,
                                                          const Group& g,
                                                          std::size_t count);

void write_ciphertexts(Writer& w, const Group& g,
                       std::span<const Ciphertext> cts);
[[nodiscard]] std::vector<Ciphertext> read_ciphertexts(Reader& r,
                                                       const Group& g);

void write_transcript(Writer& w, const Group& g, const SchnorrTranscript& t);
[[nodiscard]] SchnorrTranscript read_transcript(Reader& r, const Group& g);

/// Encoded sizes (exact): these back the TraceRecorder byte accounting.
[[nodiscard]] std::size_t elem_wire_bytes(const Group& g);
[[nodiscard]] std::size_t ciphertext_wire_bytes(const Group& g);
[[nodiscard]] std::size_t scalar_wire_bytes(const Group& g);

}  // namespace ppgr::crypto

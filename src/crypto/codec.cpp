#include "crypto/codec.h"

namespace ppgr::crypto {

void write_elem(Writer& w, const Group& g, const Elem& e) {
  w.raw(g.serialize(e));
}

Elem read_elem(Reader& r, const Group& g) {
  return g.deserialize(r.raw(g.element_bytes()));
}

void write_scalar(Writer& w, const Group& g, const mpz::Nat& s) {
  w.raw(s.to_bytes_be(scalar_wire_bytes(g)));
}

mpz::Nat read_scalar(Reader& r, const Group& g) {
  const mpz::Nat s = mpz::Nat::from_bytes_be(r.raw(scalar_wire_bytes(g)));
  if (s >= g.order())
    throw runtime::WireError("scalar out of range");
  return s;
}

void write_ciphertext(Writer& w, const Group& g, const Ciphertext& ct) {
  write_elem(w, g, ct.c);
  write_elem(w, g, ct.cp);
}

Ciphertext read_ciphertext(Reader& r, const Group& g) {
  Ciphertext ct;
  ct.c = read_elem(r, g);
  ct.cp = read_elem(r, g);
  return ct;
}

void write_ciphertexts(Writer& w, const Group& g,
                       std::span<const Ciphertext> cts) {
  w.varint(cts.size());
  for (const auto& ct : cts) write_ciphertext(w, g, ct);
}

std::vector<Ciphertext> read_ciphertexts(Reader& r, const Group& g) {
  const std::uint64_t count = r.varint();
  // Bound by what the input can actually hold — rejects length bombs.
  if (count > r.remaining() / ciphertext_wire_bytes(g) + 1)
    throw runtime::WireError("ciphertexts: length prefix exceeds input");
  std::vector<Ciphertext> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    out.push_back(read_ciphertext(r, g));
  return out;
}

void write_ciphertext_seq(Writer& w, const Group& g,
                          std::span<const Ciphertext> cts) {
  // Batch the whole set through serialize_many: identical bytes and the
  // same logical serialization count, but elliptic-curve groups normalize
  // all 2·|cts| points to affine with a single batched field inversion.
  std::vector<group::Elem> elems;
  elems.reserve(2 * cts.size());
  for (const auto& ct : cts) {
    elems.push_back(ct.c);
    elems.push_back(ct.cp);
  }
  w.raw(g.serialize_many(elems));
}

std::vector<Ciphertext> read_ciphertext_seq(Reader& r, const Group& g,
                                            std::size_t count) {
  if (count > r.remaining() / ciphertext_wire_bytes(g) + 1)
    throw runtime::WireError("ciphertext_seq: count exceeds input");
  std::vector<Ciphertext> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(read_ciphertext(r, g));
  return out;
}

void write_transcript(Writer& w, const Group& g, const SchnorrTranscript& t) {
  write_elem(w, g, t.commitment);
  w.varint(t.challenges.size());
  for (const auto& c : t.challenges) w.nat(c);
  w.nat(t.response);
}

SchnorrTranscript read_transcript(Reader& r, const Group& g) {
  SchnorrTranscript t;
  t.commitment = read_elem(r, g);
  const std::uint64_t count = r.varint();
  if (count > r.remaining())  // each challenge takes >= 1 byte
    throw runtime::WireError("transcript: length prefix exceeds input");
  t.challenges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    t.challenges.push_back(r.nat());
    if (t.challenges.back() >= g.order())
      throw runtime::WireError("transcript: challenge out of range");
  }
  t.response = r.nat();
  if (t.response >= g.order())
    throw runtime::WireError("transcript: response out of range");
  return t;
}

std::size_t elem_wire_bytes(const Group& g) { return g.element_bytes(); }

std::size_t ciphertext_wire_bytes(const Group& g) {
  return 2 * g.element_bytes();
}

std::size_t scalar_wire_bytes(const Group& g) {
  return (g.order().bit_length() + 7) / 8;
}

}  // namespace ppgr::crypto

#include "benchcore/calibrate.h"

#include <chrono>

namespace ppgr::benchcore {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `body` over enough iterations for a stable estimate.
template <typename F>
double time_per_call(F&& body, int iters) {
  // Warm-up.
  body();
  const double t0 = now_s();
  for (int i = 0; i < iters; ++i) body();
  return (now_s() - t0) / iters;
}

}  // namespace

GroupCosts calibrate_group(const group::Group& g, mpz::Rng& rng) {
  using group::Elem;
  const Elem a = g.exp_g(g.random_nonzero_scalar(rng));
  const Elem b = g.exp_g(g.random_nonzero_scalar(rng));
  const mpz::Nat s = g.random_nonzero_scalar(rng);

  GroupCosts costs;
  Elem sink = a;
  costs.mul_s = time_per_call([&] { sink = g.mul(sink, b); }, 400);
  costs.exp_s = time_per_call([&] { sink = g.exp(a, s); }, 12);
  costs.gexp_s = time_per_call([&] { sink = g.exp_g(s); }, 24);
  costs.inv_s = time_per_call([&] { sink = g.inv(a); }, 12);
  costs.serialize_s = time_per_call([&] { (void)g.serialize(a); }, 50);
  // Keep `sink` alive so the loops aren't optimized away.
  if (g.is_identity(sink) && g.is_identity(a)) costs.mul_s += 0.0;
  return costs;
}

SsCosts calibrate_ss(const mpz::FpCtx& field, std::size_t n, std::size_t t,
                     mpz::Rng& rng) {
  sss::MpcEngine engine{field, n, t, rng};
  const sss::ShareVec a = engine.input(field.to(mpz::Nat{12345}));
  const sss::ShareVec b = engine.input(field.to(mpz::Nat{6789}));

  SsCosts costs;
  const double n_d = static_cast<double>(n);
  // engine.mul performs all n parties' work -> per-party share is 1/n of the
  // measured time. An opening is work every party repeats in full, and a
  // deal is one party's work in full (price_ss_ops spreads deals over n).
  costs.mult_party_s =
      time_per_call([&] { (void)engine.mul(a, b); }, 20) / n_d;
  costs.open_party_s = time_per_call([&] { (void)engine.open(a); }, 40);
  costs.deal_party_s =
      time_per_call([&] { (void)engine.input(field.one()); }, 40);
  const mpz::Nat sq = field.sqr(field.to(mpz::Nat{987654321}));
  costs.sqrt_s = time_per_call([&] { (void)field.sqrt(sq); }, 20);
  return costs;
}

double price_group_ops(const group::OpCounts& per_participant,
                       const GroupCosts& costs) {
  return static_cast<double>(per_participant.muls) * costs.mul_s +
         static_cast<double>(per_participant.exps) * costs.exp_s +
         static_cast<double>(per_participant.gexps) * costs.gexp_s +
         static_cast<double>(per_participant.invs) * costs.inv_s +
         static_cast<double>(per_participant.serializations +
                             per_participant.deserializations) *
             costs.serialize_s;
}

double price_ss_ops(const sss::MpcCosts& totals, const SsCosts& costs,
                    std::size_t n) {
  // Interactive primitives are cooperative: every party does ~1/n of the
  // total work metered by the engine, except the sqrt of each random bit
  // which every party computes locally (same opened square).
  const double n_d = static_cast<double>(n);
  return static_cast<double>(totals.mults) * costs.mult_party_s +
         static_cast<double>(totals.opens) * costs.open_party_s +
         static_cast<double>(totals.deals) * costs.deal_party_s / n_d +
         static_cast<double>(totals.rand_bits) * costs.sqrt_s;
}

}  // namespace ppgr::benchcore

// Shared sweep machinery for the figure-reproduction benchmarks.
//
// A sweep point prices one framework configuration three ways:
//  - HE frameworks (the paper's DL-xxxx and ECC-xxx): exact op counts from a
//    counted MockGroup protocol run, divided per participant, priced with
//    calibrated real-group costs (benchcore/calibrate.h), plus the real
//    measured phase-1 time.
//  - SS framework: exact counts from an MpcEngine::kCountOnly run, priced
//    per participant.
// The same counted runs also produce the communication traces replayed by
// the fig3b network benchmark.
#pragma once

#include <memory>
#include <string>

#include "benchcore/calibrate.h"
#include "core/framework.h"
#include "core/ss_framework.h"
#include "group/counting_group.h"
#include "group/mock_group.h"

namespace ppgr::benchcore {

using core::AttrVec;
using core::ProblemSpec;

/// The paper's default evaluation parameters (Sec. VII): n=25, m=10, d1=15,
/// h=15; the paper does not state t, d2 or k — we use t = m/2, d2 = 15,
/// k = 3 (documented in EXPERIMENTS.md).
[[nodiscard]] ProblemSpec paper_default_spec();

/// Deterministic random instance of a problem (criterion, weights, infos).
struct Instance {
  AttrVec v0;
  AttrVec w;
  std::vector<AttrVec> infos;
};
[[nodiscard]] Instance random_instance(const ProblemSpec& spec, std::size_t n,
                                       std::uint64_t seed);

/// One priced HE data point.
struct HePoint {
  std::string framework;                 // "dl-1024", "ecc-p192", ...
  double participant_seconds = 0;        // modeled phase-2+ compute
  double phase1_seconds = 0;             // measured real phase-1 (per party)
  group::OpCounts per_participant;       // counts after division by n
  runtime::TraceRecorder trace;          // with modeled element sizes
  std::size_t rounds = 0;
  std::size_t total_bytes = 0;
  [[nodiscard]] double total_seconds() const {
    return participant_seconds + phase1_seconds;
  }
};

/// Counted protocol run, reusable across price points: DL and ECC execute
/// the same operation sequence, so one counted run prices both (only the
/// recorded trace depends on the modeled element size).
struct HeCounts {
  group::OpCounts per_participant;
  /// Undivided CountingGroup totals of the counted run — the model-side
  /// numbers bench/validate_model cross-checks against the runtime metrics.
  group::OpCounts totals;
  /// Measured per-phase op tallies from the same run's MetricsRegistry
  /// (the counted run executes with FrameworkConfig::metrics enabled).
  std::array<runtime::OpTally, runtime::kPhaseCount> phase_ops{};
  runtime::TraceRecorder trace;
  std::size_t rounds = 0;
  std::size_t total_bytes = 0;
  double phase1_seconds = 0;
};
[[nodiscard]] HeCounts count_he_framework(const ProblemSpec& spec,
                                          std::size_t n, std::size_t k,
                                          std::size_t modeled_elem_bytes,
                                          std::size_t modeled_field_bits,
                                          std::uint64_t seed);
/// Prices a counted run with a real group's calibrated costs. The trace is
/// copied only if `with_trace`.
[[nodiscard]] HePoint price_he_counts(const HeCounts& counts,
                                      const std::string& name,
                                      const GroupCosts& real_costs,
                                      bool with_trace = false);

/// Convenience: count + price in one call (fresh counted run).
[[nodiscard]] HePoint price_he_framework(const ProblemSpec& spec,
                                         std::size_t n, std::size_t k,
                                         const group::Group& real,
                                         const GroupCosts& real_costs,
                                         std::uint64_t seed);

/// Closed-form communication model of the HE framework: per-(phase,
/// src -> dst) message counts and serialized byte totals computed from the
/// wire codecs' exact size functions — no protocol run. This is the
/// Sec. VI-B communication analysis made byte-exact; `validate_model
/// --check-comm` asserts it matches what CommRegistry measures on the wire
/// for a real run. Phase-3 routing depends on the ranking outcome, so the
/// submitting party ids are an input (everything else is data-independent).
/// Returned links are sorted by (phase, src, dst) with tx_s left at 0 —
/// virtual time belongs to the simulator, not the model.
[[nodiscard]] std::vector<runtime::CommLink> model_he_comm(
    const ProblemSpec& spec, std::size_t n, const group::Group& g,
    const mpz::FpCtx& dot_field, std::size_t dot_s,
    const std::vector<std::size_t>& submitted_ids);

/// One priced SS data point.
struct SsPoint {
  double participant_seconds = 0;
  double phase1_seconds = 0;
  sss::MpcCosts totals;
  std::uint64_t parallel_rounds = 0;
  runtime::TraceRecorder trace;
  [[nodiscard]] double total_seconds() const {
    return participant_seconds + phase1_seconds;
  }
};

[[nodiscard]] SsPoint price_ss_framework(const ProblemSpec& spec,
                                         std::size_t n, std::size_t k,
                                         std::uint64_t seed);

/// Simple aligned table printer shared by the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void row(const std::vector<std::string>& cells);
  static std::string fmt_seconds(double s);
  static std::string fmt_count(std::uint64_t c);

 private:
  std::vector<std::size_t> widths_;
};

}  // namespace ppgr::benchcore

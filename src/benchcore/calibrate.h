// Cost calibration for the benchmark harness.
//
// The paper measures per-participant execution time on its own hardware; we
// reproduce the *shape* of those figures by combining
//   (a) exact per-protocol operation counts (CountingGroup over MockGroup
//       for the HE frameworks; MpcEngine::kCountOnly for the SS baseline)
// with
//   (b) per-operation wall-clock costs of the *real* cryptographic
//       implementations measured on this host at the modeled parameter
//       sizes (this header).
//
// modeled_time = Σ count_op × measured_cost_op. EXPERIMENTS.md validates the
// model against full real executions at small n.
#pragma once

#include "group/counting_group.h"
#include "sss/mpc_engine.h"

namespace ppgr::benchcore {

/// Per-operation costs of a real group, in seconds.
struct GroupCosts {
  double mul_s = 0;        // one group multiplication
  double exp_s = 0;        // one exponentiation with a full-size scalar
  double gexp_s = 0;       // one fixed-base (generator) exponentiation
  double inv_s = 0;        // one inversion
  double serialize_s = 0;  // one element serialization
};

/// Measures a group's operation costs with short timed loops (deterministic
/// inputs; several hundred microseconds per group).
[[nodiscard]] GroupCosts calibrate_group(const group::Group& g,
                                         mpz::Rng& rng);

/// Per-operation costs of the SS substrate at a given (n, t, field): the
/// GRR multiplication and opening cost per *party*, plus the local
/// square-root cost of the random-bit trick.
struct SsCosts {
  double mult_party_s = 0;  // per-party share of one GRR multiplication
  double open_party_s = 0;  // per-party share of one opening
  double deal_party_s = 0;  // per-party share of one dealer sharing
  double sqrt_s = 0;        // one field square root (rand-bit finalization)
};

[[nodiscard]] SsCosts calibrate_ss(const mpz::FpCtx& field, std::size_t n,
                                   std::size_t t, mpz::Rng& rng);

/// Prices HE-framework op counts (already divided per participant).
[[nodiscard]] double price_group_ops(const group::OpCounts& per_participant,
                                     const GroupCosts& costs);

/// Prices SS-framework costs per participant: counts are engine totals; each
/// party bears a 1/n share of every interactive primitive plus its own
/// square roots.
[[nodiscard]] double price_ss_ops(const sss::MpcCosts& totals,
                                  const SsCosts& costs, std::size_t n);

}  // namespace ppgr::benchcore

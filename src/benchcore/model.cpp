#include "benchcore/model.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "core/codec.h"
#include "crypto/codec.h"
#include "dotprod/dot_product.h"

namespace ppgr::benchcore {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProblemSpec paper_default_spec() {
  return ProblemSpec{.m = 10, .t = 5, .d1 = 15, .d2 = 15, .h = 15};
}

Instance random_instance(const ProblemSpec& spec, std::size_t n,
                         std::uint64_t seed) {
  mpz::ChaChaRng rng{seed};
  auto attrs = [&](std::size_t bits) {
    AttrVec v(spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
    return v;
  };
  Instance inst;
  inst.v0 = attrs(spec.d1);
  inst.w = attrs(spec.d2);
  inst.infos.reserve(n);
  for (std::size_t j = 0; j < n; ++j) inst.infos.push_back(attrs(spec.d1));
  return inst;
}

HeCounts count_he_framework(const ProblemSpec& spec, std::size_t n,
                            std::size_t k, std::size_t modeled_elem_bytes,
                            std::size_t modeled_field_bits,
                            std::uint64_t seed) {
  // Counted protocol run over a mock group dressed with the modeled
  // element/scalar sizes.
  const group::MockGroup mock{"mock", modeled_elem_bytes, modeled_field_bits};
  const group::CountingGroup counted{mock};

  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = n;
  cfg.k = k;
  cfg.group = &counted;
  cfg.dot_field = &core::default_dot_field();
  // Record runtime metrics alongside the CountingGroup totals: the two
  // count the same interface-level operations, so bench/validate_model can
  // assert they agree exactly.
  cfg.metrics = true;
  // This is the reference count: run the naive (unaccelerated) protocol so
  // the CountingGroup sees the logical op profile that accelerated runs
  // credit against. With accel on the CountingGroup would instead record
  // the multi-exp call shapes and the cross-check would no longer define
  // the invariant.
  cfg.accel = false;

  const Instance inst = random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 1};
  auto result = core::run_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  HeCounts counts;
  for (std::size_t p = 0; p < runtime::kPhaseCount; ++p)
    counts.phase_ops[p] =
        result.metrics->phase_totals(static_cast<runtime::Phase>(p));
  // The initiator performs no group operations, so the counted totals are
  // all participant work; the per-participant share is totals / n (integer
  // division — comparison-circuit cost varies slightly with each party's
  // own β bit pattern, so the division is a mean, not exact per party).
  const auto& totals = counted.counts();
  counts.totals = totals;
  counts.per_participant.muls = totals.muls / n;
  counts.per_participant.exps = totals.exps / n;
  counts.per_participant.gexps = totals.gexps / n;
  counts.per_participant.invs = totals.invs / n;
  counts.per_participant.serializations = totals.serializations / n;
  counts.per_participant.deserializations = totals.deserializations / n;
  // Phase 1 runs on the real field either way (the mock only replaces the
  // DDH group); measure one real dot-product exchange.
  {
    const double t1 = now_s();
    core::Initiator initiator{cfg, inst.v0, inst.w, rng};
    core::Participant p{cfg, 1, inst.infos[0], rng};
    const auto& q = p.gain_query();
    p.receive_gain_answer(initiator.answer_gain_query(1, q));
    counts.phase1_seconds = now_s() - t1;
  }
  counts.rounds = result.trace.rounds();
  counts.total_bytes = result.trace.total_bytes();
  counts.trace = std::move(result.trace);
  return counts;
}

HePoint price_he_counts(const HeCounts& counts, const std::string& name,
                        const GroupCosts& real_costs, bool with_trace) {
  HePoint point;
  point.framework = name;
  point.per_participant = counts.per_participant;
  point.participant_seconds =
      price_group_ops(counts.per_participant, real_costs);
  point.phase1_seconds = counts.phase1_seconds;
  point.rounds = counts.rounds;
  point.total_bytes = counts.total_bytes;
  if (with_trace) point.trace = counts.trace;
  return point;
}

HePoint price_he_framework(const ProblemSpec& spec, std::size_t n,
                           std::size_t k, const group::Group& real,
                           const GroupCosts& real_costs, std::uint64_t seed) {
  const HeCounts counts = count_he_framework(
      spec, n, k, real.element_bytes(), real.field_bits(), seed);
  HePoint point = price_he_counts(counts, real.name(), real_costs,
                                  /*with_trace=*/true);
  return point;
}

std::vector<runtime::CommLink> model_he_comm(
    const ProblemSpec& spec, std::size_t n, const group::Group& g,
    const mpz::FpCtx& dot_field, std::size_t dot_s,
    const std::vector<std::size_t>& submitted_ids) {
  using runtime::Phase;
  // Aggregation keyed exactly like CommRegistry::links() sorts.
  std::map<std::tuple<Phase, std::size_t, std::size_t>,
           std::pair<std::uint64_t, std::uint64_t>>
      acc;
  const auto add = [&acc](Phase phase, std::size_t src, std::size_t dst,
                          std::uint64_t messages, std::uint64_t bytes) {
    auto& slot = acc[{phase, src, dst}];
    slot.first += messages;
    slot.second += messages * bytes;
  };

  // Phase 1: each participant's disguised query (a d-vector blown up to an
  // s x d matrix plus two masking d-vectors) to the initiator, one (a, h)
  // pair back. Dimensions follow Participant::gain_query.
  const std::size_t d = spec.m + spec.t + 1;
  const std::size_t s = std::max(dot_s, dotprod::recommended_s(d));
  const std::size_t query_b = dotprod::bob_message_bytes(dot_field, s, d);
  const std::size_t answer_b = dotprod::alice_message_bytes(dot_field);
  for (std::size_t j = 1; j <= n; ++j) {
    add(Phase::kPhase1, j, 0, 1, query_b);
    add(Phase::kPhase1, 0, j, 1, answer_b);
  }

  // Phase 2: every ordered participant pair (a, b) carries the key
  // broadcast (one element), the proof broadcast (commitment + response)
  // and the reverse-direction Schnorr challenge (one scalar), then the
  // bitwise-beta broadcast (l ciphertexts).
  const std::size_t eb = crypto::elem_wire_bytes(g);
  const std::size_t sb = crypto::scalar_wire_bytes(g);
  const std::size_t cb = crypto::ciphertext_wire_bytes(g);
  const std::size_t l = spec.beta_bits();
  for (std::size_t a = 1; a <= n; ++a) {
    for (std::size_t b = 1; b <= n; ++b) {
      if (a == b) continue;
      add(Phase::kPhase2, a, b, 1, eb);       // public key y
      add(Phase::kPhase2, a, b, 1, eb + sb);  // proof (h, z)
      add(Phase::kPhase2, a, b, 1, sb);       // challenge c for prover b
      add(Phase::kPhase2, a, b, 1, l * cb);   // encrypted beta bits
    }
  }
  // Comparison sets: each party's flattened (n-1)*l ciphertexts go to P1
  // (P1's own set stays put), the whole n-set vector walks the decrypt-
  // shuffle chain P1 -> ... -> Pn, and Pn returns each set to its owner.
  const std::uint64_t set_b = static_cast<std::uint64_t>(n - 1) * l * cb;
  for (std::size_t j = 2; j <= n; ++j) add(Phase::kPhase2, j, 1, 1, set_b);
  for (std::size_t hop = 1; hop + 1 <= n; ++hop)
    add(Phase::kPhase2, hop, hop + 1, 1, n * set_b);
  for (std::size_t owner = 1; owner + 1 <= n; ++owner)
    add(Phase::kPhase2, n, owner, 1, set_b);

  // Phase 3: one fixed-width submission per top-k party.
  const std::size_t sub_b = core::submission_wire_bytes(spec);
  for (const std::size_t id : submitted_ids)
    add(Phase::kPhase3, id, 0, 1, sub_b);

  std::vector<runtime::CommLink> links;
  links.reserve(acc.size());
  for (const auto& [key, v] : acc) {
    links.push_back(runtime::CommLink{.phase = std::get<0>(key),
                                      .src = std::get<1>(key),
                                      .dst = std::get<2>(key),
                                      .messages = v.first,
                                      .bytes = v.second,
                                      .tx_s = 0.0});
  }
  return links;
}

SsPoint price_ss_framework(const ProblemSpec& spec, std::size_t n,
                           std::size_t k, std::uint64_t seed) {
  const std::size_t l = spec.beta_bits();
  const mpz::FpCtx& field = core::ss_field_for_beta_bits(l);
  const std::size_t t = (n - 1) / 2;  // max tolerable colluders, n >= 2t+1

  // Counted run.
  core::SsFrameworkConfig cfg;
  cfg.base.spec = spec;
  cfg.base.n = n;
  cfg.base.k = k;
  // The SS framework needs no DDH group, but FrameworkConfig validation
  // does; use a mock.
  static const group::MockGroup dummy{"ss-dummy", 32, 61};
  cfg.base.group = &dummy;
  cfg.base.dot_field = &core::default_dot_field();
  cfg.threshold = std::max<std::size_t>(1, t);
  cfg.mode = sss::MpcEngine::Mode::kCountOnly;

  const Instance inst = random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 2};
  auto result = core::run_ss_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  // Calibrate the substrate at this exact (n, t, field).
  mpz::ChaChaRng crng{seed + 3};
  const SsCosts costs = calibrate_ss(field, n, cfg.threshold, crng);

  SsPoint point;
  point.totals = result.sort_costs;
  point.parallel_rounds = result.parallel_rounds;
  point.participant_seconds = price_ss_ops(result.sort_costs, costs, n);
  {
    const double t1 = now_s();
    core::Initiator initiator{cfg.base, inst.v0, inst.w, rng};
    core::Participant p{cfg.base, 1, inst.infos[0], rng};
    const auto& q = p.gain_query();
    p.receive_gain_answer(initiator.answer_gain_query(1, q));
    point.phase1_seconds = now_s() - t1;
  }
  point.trace = std::move(result.trace);
  return point;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  widths_.reserve(headers.size());
  std::string line;
  for (const auto& head : headers) {
    widths_.push_back(std::max<std::size_t>(head.size() + 2, 14));
    line += head;
    line.append(widths_.back() - head.size(), ' ');
  }
  std::cout << line << "\n" << std::string(line.size(), '-') << "\n";
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += cells[i];
    const std::size_t width = i < widths_.size() ? widths_[i] : 14;
    if (cells[i].size() < width) line.append(width - cells[i].size(), ' ');
  }
  std::cout << line << "\n";
}

std::string TablePrinter::fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

std::string TablePrinter::fmt_count(std::uint64_t c) {
  char buf[32];
  if (c >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(c) / 1e6);
  } else if (c >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(c) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(c));
  }
  return buf;
}

}  // namespace ppgr::benchcore

#include "benchcore/model.h"

#include <chrono>
#include <cstdio>
#include <iostream>

namespace ppgr::benchcore {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProblemSpec paper_default_spec() {
  return ProblemSpec{.m = 10, .t = 5, .d1 = 15, .d2 = 15, .h = 15};
}

Instance random_instance(const ProblemSpec& spec, std::size_t n,
                         std::uint64_t seed) {
  mpz::ChaChaRng rng{seed};
  auto attrs = [&](std::size_t bits) {
    AttrVec v(spec.m);
    for (auto& x : v) x = rng.below_u64(std::uint64_t{1} << bits);
    return v;
  };
  Instance inst;
  inst.v0 = attrs(spec.d1);
  inst.w = attrs(spec.d2);
  inst.infos.reserve(n);
  for (std::size_t j = 0; j < n; ++j) inst.infos.push_back(attrs(spec.d1));
  return inst;
}

HeCounts count_he_framework(const ProblemSpec& spec, std::size_t n,
                            std::size_t k, std::size_t modeled_elem_bytes,
                            std::size_t modeled_field_bits,
                            std::uint64_t seed) {
  // Counted protocol run over a mock group dressed with the modeled
  // element/scalar sizes.
  const group::MockGroup mock{"mock", modeled_elem_bytes, modeled_field_bits};
  const group::CountingGroup counted{mock};

  core::FrameworkConfig cfg;
  cfg.spec = spec;
  cfg.n = n;
  cfg.k = k;
  cfg.group = &counted;
  cfg.dot_field = &core::default_dot_field();
  // Record runtime metrics alongside the CountingGroup totals: the two
  // count the same interface-level operations, so bench/validate_model can
  // assert they agree exactly.
  cfg.metrics = true;

  const Instance inst = random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 1};
  auto result = core::run_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  HeCounts counts;
  for (std::size_t p = 0; p < runtime::kPhaseCount; ++p)
    counts.phase_ops[p] =
        result.metrics->phase_totals(static_cast<runtime::Phase>(p));
  // The initiator performs no group operations, so the counted totals are
  // all participant work; the per-participant share is totals / n (integer
  // division — comparison-circuit cost varies slightly with each party's
  // own β bit pattern, so the division is a mean, not exact per party).
  const auto& totals = counted.counts();
  counts.totals = totals;
  counts.per_participant.muls = totals.muls / n;
  counts.per_participant.exps = totals.exps / n;
  counts.per_participant.gexps = totals.gexps / n;
  counts.per_participant.invs = totals.invs / n;
  counts.per_participant.serializations = totals.serializations / n;
  counts.per_participant.deserializations = totals.deserializations / n;
  // Phase 1 runs on the real field either way (the mock only replaces the
  // DDH group); measure one real dot-product exchange.
  {
    const double t1 = now_s();
    core::Initiator initiator{cfg, inst.v0, inst.w, rng};
    core::Participant p{cfg, 1, inst.infos[0], rng};
    const auto& q = p.gain_query();
    p.receive_gain_answer(initiator.answer_gain_query(1, q));
    counts.phase1_seconds = now_s() - t1;
  }
  counts.rounds = result.trace.rounds();
  counts.total_bytes = result.trace.total_bytes();
  counts.trace = std::move(result.trace);
  return counts;
}

HePoint price_he_counts(const HeCounts& counts, const std::string& name,
                        const GroupCosts& real_costs, bool with_trace) {
  HePoint point;
  point.framework = name;
  point.per_participant = counts.per_participant;
  point.participant_seconds =
      price_group_ops(counts.per_participant, real_costs);
  point.phase1_seconds = counts.phase1_seconds;
  point.rounds = counts.rounds;
  point.total_bytes = counts.total_bytes;
  if (with_trace) point.trace = counts.trace;
  return point;
}

HePoint price_he_framework(const ProblemSpec& spec, std::size_t n,
                           std::size_t k, const group::Group& real,
                           const GroupCosts& real_costs, std::uint64_t seed) {
  const HeCounts counts = count_he_framework(
      spec, n, k, real.element_bytes(), real.field_bits(), seed);
  HePoint point = price_he_counts(counts, real.name(), real_costs,
                                  /*with_trace=*/true);
  return point;
}

SsPoint price_ss_framework(const ProblemSpec& spec, std::size_t n,
                           std::size_t k, std::uint64_t seed) {
  const std::size_t l = spec.beta_bits();
  const mpz::FpCtx& field = core::ss_field_for_beta_bits(l);
  const std::size_t t = (n - 1) / 2;  // max tolerable colluders, n >= 2t+1

  // Counted run.
  core::SsFrameworkConfig cfg;
  cfg.base.spec = spec;
  cfg.base.n = n;
  cfg.base.k = k;
  // The SS framework needs no DDH group, but FrameworkConfig validation
  // does; use a mock.
  static const group::MockGroup dummy{"ss-dummy", 32, 61};
  cfg.base.group = &dummy;
  cfg.base.dot_field = &core::default_dot_field();
  cfg.threshold = std::max<std::size_t>(1, t);
  cfg.mode = sss::MpcEngine::Mode::kCountOnly;

  const Instance inst = random_instance(spec, n, seed);
  mpz::ChaChaRng rng{seed + 2};
  auto result = core::run_ss_framework(cfg, inst.v0, inst.w, inst.infos, rng);

  // Calibrate the substrate at this exact (n, t, field).
  mpz::ChaChaRng crng{seed + 3};
  const SsCosts costs = calibrate_ss(field, n, cfg.threshold, crng);

  SsPoint point;
  point.totals = result.sort_costs;
  point.parallel_rounds = result.parallel_rounds;
  point.participant_seconds = price_ss_ops(result.sort_costs, costs, n);
  {
    const double t1 = now_s();
    core::Initiator initiator{cfg.base, inst.v0, inst.w, rng};
    core::Participant p{cfg.base, 1, inst.infos[0], rng};
    const auto& q = p.gain_query();
    p.receive_gain_answer(initiator.answer_gain_query(1, q));
    point.phase1_seconds = now_s() - t1;
  }
  point.trace = std::move(result.trace);
  return point;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  widths_.reserve(headers.size());
  std::string line;
  for (const auto& head : headers) {
    widths_.push_back(std::max<std::size_t>(head.size() + 2, 14));
    line += head;
    line.append(widths_.back() - head.size(), ' ');
  }
  std::cout << line << "\n" << std::string(line.size(), '-') << "\n";
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += cells[i];
    const std::size_t width = i < widths_.size() ? widths_[i] : 14;
    if (cells[i].size() < width) line.append(width - cells[i].size(), ' ');
  }
  std::cout << line << "\n";
}

std::string TablePrinter::fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

std::string TablePrinter::fmt_count(std::uint64_t c) {
  char buf[32];
  if (c >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(c) / 1e6);
  } else if (c >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(c) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(c));
  }
  return buf;
}

}  // namespace ppgr::benchcore

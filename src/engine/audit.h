// Live model-conformance audit (DESIGN.md Sec. 8b "Forensics & conformance
// audit").
//
// The repo carries two independent descriptions of every protocol run: the
// *measured* one (runtime::MetricsRegistry / runtime::CommRegistry, filled
// by the run itself) and the *modeled* one (benchcore's closed-form comm
// model and counted reference executions — the Sec. VI analysis made
// byte-exact). ConformanceAuditor wires the two together while a session
// runs: it is a core::AuditSink the frameworks call at every phase
// boundary, comparing the running counters against what the model says they
// must be and emitting a typed AuditFinding for every divergence.
//
// Expectations per framework:
//  - HE: a differential reference execution at construction time — the same
//    (spec, n, k, inputs) and an identically-seeded rng replayed through
//    run_framework on a cheap 61-bit MockGroup, serial, unaccelerated, with
//    a private precompute source mirroring the engine's. The determinism
//    invariant ("bit-identical at any parallelism / cache state") makes its
//    per-phase op tallies, submitted set and round count exact predictions
//    for the real session. Comm bytes come from benchcore::model_he_comm on
//    the *real* group (element sizes differ on the mock).
//  - SS: no reference run. Phase-1 op counts follow in closed form (n of
//    each dot-product step); comm is the shared phase-1/phase-3 codec model.
//    The in-process sort (phase 2) exports its own cost model and is not
//    re-checked here.
//
// Every audited quantity is a deterministic count, so every check is exact
// — except under an installed fault plan, where frames, retransmits and
// drops legitimately change wire bytes: the byte-exact comm check is then
// skipped and divergence surfaces through op tallies, the submitted set,
// and the run_faulted/run_degraded incompleteness findings instead (that is
// the tamper-detection path the chaos tests pin).
//
// Strictly observation-only: the auditor never mutates protocol state, and
// a session with `audit` off takes no branch through this code.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/spec.h"
#include "group/group.h"
#include "mpz/rng.h"
#include "runtime/comm.h"
#include "runtime/flightrec.h"
#include "runtime/metrics.h"

namespace ppgr::engine {

/// What an AuditFinding is about.
enum class AuditCheckKind : std::uint8_t {
  kPhaseOps = 0,   // per-phase crypto-op tally vs the reference run
  kComm,           // per-(phase, src, dst) messages/bytes vs the comm model
  kRounds,         // transport round count vs the reference run
  kSubmissions,    // submitted top-k set vs the reference run
  kIncomplete,     // the run degraded or faulted: expectations void
};
[[nodiscard]] const char* to_string(AuditCheckKind kind);

/// One confirmed divergence between the measured run and the model.
struct AuditFinding {
  AuditCheckKind kind = AuditCheckKind::kPhaseOps;
  runtime::Phase phase = runtime::Phase::kSetup;
  std::string key;               // op name / "src->dst" link / check label
  std::uint64_t expected = 0;
  std::uint64_t measured = 0;
  bool exact = true;             // every count check is; kept for the schema
  std::string detail;            // human-readable one-liner
};

/// The audit outcome of one session ("ppgr.audit.v1" via to_json()).
/// Deterministic: a pure function of the request and its fault schedule.
struct AuditReport {
  bool ss = false;               // audited framework kind
  std::size_t checkpoints = 0;   // phase_complete + run_complete calls seen
  std::size_t checks = 0;        // individual comparisons evaluated
  bool incomplete = false;       // run_degraded / run_faulted fired
  std::vector<AuditFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  /// "clean" | "drift" | "incomplete" (incompleteness dominates drift).
  [[nodiscard]] const char* verdict() const;
  [[nodiscard]] std::string to_json() const;
};

/// Live auditor for one session; attach via core::FrameworkConfig::audit.
/// Construction is where the HE reference execution runs (cheap: 61-bit
/// mock arithmetic), so build the auditor off the protocol's critical path.
class ConformanceAuditor final : public core::AuditSink {
 public:
  struct Config {
    bool ss = false;             // SS baseline instead of the HE protocol
    core::ProblemSpec spec;
    std::size_t n = 0;
    std::size_t k = 1;
    /// The group the *real* session runs on (sizes the comm model). Must
    /// outlive the auditor.
    const group::Group* group = nullptr;
    const mpz::FpCtx* dot_field = nullptr;
    std::size_t dot_s = 8;
    /// True when the session runs under a fault plan: framing and
    /// retransmits make wire bytes legitimately diverge from the fault-free
    /// model, so the byte-exact comm check is skipped.
    bool fault_plan = false;
    /// Optional: a kAudit breadcrumb (checks, findings) lands in the ring
    /// at every checkpoint. Must outlive the auditor.
    runtime::FlightRecorder* flight = nullptr;
  };

  /// `rng` must be an identically-seeded duplicate of the stream the real
  /// session consumes (the engine draws the session's family stream twice).
  ConformanceAuditor(Config cfg, const core::AttrVec& v0,
                     const core::AttrVec& w,
                     const std::vector<core::AttrVec>& infos,
                     mpz::ChaChaRng rng);

  // core::AuditSink --------------------------------------------------------
  void phase_complete(runtime::Phase phase,
                      const runtime::MetricsRegistry* metrics,
                      const runtime::CommRegistry* comm) override;
  void run_complete(const std::vector<std::size_t>& submitted_ids,
                    const runtime::MetricsRegistry* metrics,
                    const runtime::CommRegistry* comm,
                    std::size_t rounds) override;
  void run_degraded(const std::vector<std::size_t>& dropped) override;
  void run_faulted(runtime::Phase phase) override;

  [[nodiscard]] const AuditReport& report() const { return report_; }
  /// Moves the report out (the auditor is spent afterwards).
  [[nodiscard]] std::shared_ptr<const AuditReport> take_report() {
    return std::make_shared<const AuditReport>(std::move(report_));
  }

 private:
  void check_count(AuditCheckKind kind, runtime::Phase phase,
                   const std::string& key, std::uint64_t expected,
                   std::uint64_t measured, const std::string& what);
  void breadcrumb(runtime::Phase phase);

  Config cfg_;
  AuditReport report_;
  /// Per-phase expected op tallies: the HE reference run's measurements, or
  /// the SS closed form (phase 1 only; other phases stay unchecked there).
  std::array<runtime::OpTally, runtime::kPhaseCount> expected_ops_{};
  std::array<bool, runtime::kPhaseCount> check_ops_{};
  std::vector<std::size_t> expected_submitted_;
  bool check_submitted_ = false;
  std::size_t expected_rounds_ = 0;
  bool check_rounds_ = false;
};

}  // namespace ppgr::engine

// Multi-session ranking engine.
//
// The ROADMAP north-star is a service, not a one-shot binary: many
// independent ranking sessions in flight at once, amortizing crypto setup
// across them. SessionEngine is that service core:
//
//   submit(RankingRequest) --> FIFO admission queue --> max_in_flight
//   driver threads, each executing one session end-to-end over the ONE
//   shared runtime::ThreadPool --> take(session_id) / run_batch()
//
// Determinism under load — the engine extends the repo's determinism
// invariant from "any thread count" to "any concurrent load": a session's
// randomness is derived from (engine seed, session id) via two
// mpz::StreamFamily draws (protocol stream + zero-pool key), every shared
// precompute artifact is a pure function of its cache key, and nothing a
// session computes depends on what else is in flight. A given request
// therefore produces bit-identical ranks, betas, traces and deterministic
// metric exports regardless of max_in_flight, parallelism, or whether the
// PrecomputeCache was cold, warm, shared or disabled.
//
// Cache hit/miss counters flow into the engine's runtime::MetricsRegistry
// (kPrecomputeHit / kPrecomputeMiss) — never into a session's own registry,
// which must not see history-dependent counts.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "core/ss_framework.h"
#include "engine/audit.h"
#include "engine/precompute.h"
#include "runtime/flightrec.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"

namespace ppgr::engine {

struct EngineSnapshot;  // engine/introspect.h

/// Which framework serves the session: the paper's HE protocol or the
/// secret-sharing baseline (Sec. VII).
enum class FrameworkKind : std::uint8_t { kHe = 0, kSs = 1 };
[[nodiscard]] const char* to_string(FrameworkKind kind);

/// One self-contained ranking instance: spec + per-party inputs.
struct RankingRequest {
  std::uint64_t session_id = 0;  // caller-chosen, unique per engine
  FrameworkKind framework = FrameworkKind::kHe;
  group::GroupId group = group::GroupId::kDlTest256;
  core::ProblemSpec spec;
  std::size_t k = 1;                  // top-k
  core::AttrVec v0;                   // initiator criterion
  core::AttrVec w;                    // initiator weights
  std::vector<core::AttrVec> infos;   // one per participant; n = size()
  /// kSs only: collusion threshold t with n >= 2t+1; 0 = largest valid t.
  std::size_t ss_threshold = 0;
  /// Deterministic fault schedule for this session (see net/fault.h);
  /// default-constructed = no faults, zero overhead, byte-identical outputs.
  net::FaultPlanConfig fault_plan{};
  /// Forwarded to FrameworkConfig::degrade_on_dropout.
  bool degrade_on_dropout = false;
};

/// How a session ended: kOk = ranks delivered (possibly over a degraded
/// survivor set); kFault = the run aborted with a typed core::ProtocolFault,
/// recorded in SessionResult::fault. Faulted sessions are normal results —
/// they never tear down the engine or poison other sessions.
enum class SessionOutcome : std::uint8_t { kOk = 0, kFault = 1 };
[[nodiscard]] const char* to_string(SessionOutcome outcome);

/// Typed rejection reasons: invalid sessions must fail cleanly at submit(),
/// never abort a driver thread.
enum class EngineErrorCode : std::uint8_t {
  kInvalidSpec,       // ProblemSpec::validate failed (e.g. t > m), or the
                      // beta range exceeds the phase-1 dot-product field
  kInvalidTopology,   // n < 2, or k outside [1, n]
  kInvalidInput,      // attribute/weight vector of the wrong shape or range
  kInvalidThreshold,  // kSs with t < 1 or n < 2t+1
  kDuplicateSession,  // session id already submitted to this engine
  kUnknownSession,    // take() of an id never submitted
};
[[nodiscard]] const char* to_string(EngineErrorCode code);

class EngineError : public std::runtime_error {
 public:
  EngineError(EngineErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] EngineErrorCode code() const { return code_; }

 private:
  EngineErrorCode code_;
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Per-component cache interaction counts. Engine-wide totals are
/// deterministic (misses == distinct cache keys); per-session attribution
/// of a shared build is schedule-dependent and so never exported.
struct PrecomputeStats {
  CacheCounters generator_table;
  CacheCounters key_table;
  CacheCounters zero_pool;

  [[nodiscard]] CacheCounters total() const {
    return CacheCounters{
        generator_table.hits + key_table.hits + zero_pool.hits,
        generator_table.misses + key_table.misses + zero_pool.misses};
  }
  PrecomputeStats& operator+=(const PrecomputeStats& o) {
    generator_table.hits += o.generator_table.hits;
    generator_table.misses += o.generator_table.misses;
    key_table.hits += o.key_table.hits;
    key_table.misses += o.key_table.misses;
    zero_pool.hits += o.zero_pool.hits;
    zero_pool.misses += o.zero_pool.misses;
    return *this;
  }
};

struct SessionResult {
  std::uint64_t id = 0;
  FrameworkKind framework = FrameworkKind::kHe;
  /// Exactly one of these is populated, per `framework`; both expose the
  /// full observability payload (metrics/spans/comm/trace) of the run.
  core::FrameworkResult he;
  core::SsFrameworkResult ss;

  [[nodiscard]] const std::vector<std::size_t>& ranks() const {
    return framework == FrameworkKind::kHe ? he.ranks : ss.ranks;
  }
  [[nodiscard]] const std::vector<std::size_t>& submitted_ids() const {
    return framework == FrameworkKind::kHe ? he.submitted_ids
                                           : ss.submitted_ids;
  }
  [[nodiscard]] const runtime::TraceRecorder& trace() const {
    return framework == FrameworkKind::kHe ? he.trace : ss.trace;
  }
  [[nodiscard]] const runtime::MetricsRegistry* metrics() const {
    return framework == FrameworkKind::kHe ? he.metrics.get()
                                           : ss.metrics.get();
  }
  [[nodiscard]] const runtime::SpanRecorder* spans() const {
    return framework == FrameworkKind::kHe ? he.spans.get() : ss.spans.get();
  }
  [[nodiscard]] const runtime::CommRegistry* comm() const {
    return framework == FrameworkKind::kHe ? he.comm.get() : ss.comm.get();
  }

  double wall_seconds = 0.0;   // execution start -> completion (noisy)
  double setup_seconds = 0.0;  // time inside precompute fetch/build (noisy)
  PrecomputeStats precompute;  // this session's cache interactions

  /// Present iff EngineConfig::flight_events > 0: the session's forensic
  /// flight recording (phase/round/send/retry/fault-ladder events).
  std::shared_ptr<runtime::FlightRecorder> flight;
  /// Present iff EngineConfig::audit (and metrics): the conformance-audit
  /// report of this session ("ppgr.audit.v1").
  std::shared_ptr<const AuditReport> audit;

  /// kFault: the run aborted with a typed ProtocolFault; `fault` holds its
  /// phase/round/party/cause and `fault_what` the full message ("session
  /// <id>: ..."). he/ss are then empty — the run's registries unwound with
  /// the stack — but `fault_report` preserves the router's fault report
  /// (counters + injection log) for the post-mortem bundle.
  SessionOutcome outcome = SessionOutcome::kOk;
  std::optional<core::FaultInfo> fault;
  std::string fault_what;
  std::optional<net::FaultReport> fault_report;
};

struct EngineConfig {
  std::uint64_t seed = 1;
  /// Admission cap: at most this many sessions execute concurrently;
  /// further submissions queue FIFO. Also the driver thread count.
  std::size_t max_in_flight = 4;
  /// Concurrency of the shared runtime::ThreadPool every session fans its
  /// parallel protocol steps onto (0 = hardware concurrency, 1 = each
  /// driver runs its session inline). Never affects outputs.
  std::size_t parallelism = 1;
  /// Per-session observability (FrameworkConfig::metrics).
  bool metrics = true;
  /// false: each HE session builds identical *private* precompute instead
  /// of consulting the shared cache. Outputs are bit-identical either way —
  /// this flag only moves where setup time is spent (the cache-on/off
  /// bit-identity test and the cold/warm bench lean on this).
  bool share_precompute = true;
  /// Cache to share (when share_precompute); null = the process-wide one.
  PrecomputeCache* cache = nullptr;
  /// Enables the rollup's live-telemetry sections: per-kind queue-wait /
  /// run-duration quantiles and the health summary. Off by default — those
  /// values are wall-clock-derived and so nondeterministic, and the golden
  /// rollup (tests/golden/engine_small.json) pins the off state, which stays
  /// byte-identical to the pre-telemetry schema. Live snapshots
  /// (engine/introspect.h) work regardless of this flag.
  bool telemetry = false;
  /// Live conformance audit (engine/audit.h): every session runs with a
  /// ConformanceAuditor attached (requires `metrics`; ignored without it).
  /// The rollup gains a deterministic per-session "audit" entry, and audit
  /// drift degrades engine health. Off by default: the golden rollup pins
  /// the off state, and sessions take zero audit branches.
  bool audit = false;
  /// Ring capacity of the per-session forensic flight recorder
  /// (runtime/flightrec.h); 0 (default) = no recorder. Observation-only:
  /// every deterministic export is byte-identical at any value.
  std::size_t flight_events = 0;
};

class SessionEngine {
 public:
  explicit SessionEngine(EngineConfig cfg);
  /// Stops accepting work, discards queued-but-unstarted sessions and joins
  /// the drivers (in-flight sessions finish first).
  ~SessionEngine();
  SessionEngine(const SessionEngine&) = delete;
  SessionEngine& operator=(const SessionEngine&) = delete;

  /// Validates and enqueues; returns the session id. Throws EngineError on
  /// an invalid request or duplicate id — nothing is enqueued then.
  std::uint64_t submit(RankingRequest req);
  /// Blocks until the session completes, then removes and returns its
  /// result. Throws EngineError(kUnknownSession) for never-submitted ids;
  /// rethrows the session's exception if execution failed.
  [[nodiscard]] SessionResult take(std::uint64_t session_id);
  /// submit() all, then take() in request order.
  [[nodiscard]] std::vector<SessionResult> run_batch(
      std::vector<RankingRequest> requests);
  /// Blocks until the queue is empty and nothing is executing.
  void drain();

  /// High-water mark of concurrently executing sessions (<= max_in_flight
  /// by construction; the admission-cap test asserts exactly this).
  [[nodiscard]] std::size_t peak_in_flight() const;
  /// Engine-wide cache interaction totals (deterministic).
  [[nodiscard]] PrecomputeStats precompute_stats() const;
  /// Engine-level registry: kPrecomputeHit / kPrecomputeMiss.
  [[nodiscard]] const runtime::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

  /// Rolled-up deterministic export ("ppgr.engine.v1"): per-session ranks,
  /// submissions, trace totals and op counters keyed by session id, plus
  /// the engine's cache counters. A pure function of the completed request
  /// set and the engine seed — bit-identical at any parallelism or load
  /// (the golden tests/golden/engine_small.json pins it).
  [[nodiscard]] std::string rollup_json() const;

 private:
  /// The live-telemetry observer (engine/introspect.h): reads queue / live /
  /// completion state under mu_ and the per-session progress cells lock-free,
  /// and bumps the sticky stall counters of sessions it judges stalled.
  friend EngineSnapshot snapshot(SessionEngine& engine,
                                 double stall_deadline_s);

  struct Summary {
    FrameworkKind framework = FrameworkKind::kHe;
    std::string group_name;
    std::size_t n = 0;
    std::size_t k = 0;
    std::size_t beta_bits = 0;
    std::vector<std::size_t> ranks;
    std::vector<std::size_t> submitted_ids;
    std::size_t trace_messages = 0;
    std::size_t trace_rounds = 0;
    std::uint64_t trace_bytes = 0;
    bool has_ops = false;
    runtime::OpTally ops;
    SessionOutcome outcome = SessionOutcome::kOk;
    std::optional<core::FaultInfo> fault;
    double queue_wait_s = 0.0;   // submit() -> driver claim (noisy)
    double run_s = 0.0;          // driver claim -> completion (noisy)
    std::uint64_t stalls = 0;    // watchdog observations while running
    // Audit outcome (EngineConfig::audit; deterministic counts).
    bool has_audit = false;
    std::size_t audit_checks = 0;
    std::size_t audit_findings = 0;
    std::string audit_verdict;
  };

  /// A submitted-but-unstarted session plus its admission timestamp (the
  /// queue-wait clock starts at submit()).
  struct Queued {
    RankingRequest req;
    double submit_s = 0.0;
  };

  /// Live view of one executing session, shared between the driver thread
  /// that owns it and observer threads (engine/introspect.h). The map entry
  /// exists exactly while the session executes: created under mu_ when a
  /// driver claims the request, erased under mu_ when the result lands. The
  /// progress cell and stall counter are atomics, so observers read them
  /// without ever blocking protocol work.
  struct LiveSession {
    std::uint64_t id = 0;
    FrameworkKind framework = FrameworkKind::kHe;
    std::size_t n = 0;
    std::size_t k = 0;
    double submit_s = 0.0;  // submit() time (steady-clock seconds)
    double start_s = 0.0;   // driver claim time
    runtime::ProgressCell progress;
    std::atomic<std::uint64_t> stalls{0};  // sticky watchdog flag count
  };

  void validate(const RankingRequest& req) const;
  void driver_loop();
  [[nodiscard]] SessionResult execute(const RankingRequest& req,
                                      runtime::ProgressCell* progress);
  [[nodiscard]] const group::Group& group_instance(group::GroupId id);

  EngineConfig cfg_;
  PrecomputeCache* cache_;  // null when share_precompute is off
  mpz::ChaChaRng root_;
  mpz::StreamFamily session_family_;   // per-session protocol randomness
  mpz::StreamFamily pool_key_family_;  // per-session zero-pool keys
  runtime::ThreadPool pool_;
  runtime::MetricsRegistry metrics_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Queued> queue_;
  std::set<std::uint64_t> known_ids_;
  std::map<std::uint64_t, SessionResult> done_;
  std::map<std::uint64_t, std::exception_ptr> failed_;
  std::map<std::uint64_t, Summary> summaries_;
  std::map<std::uint64_t, std::unique_ptr<LiveSession>> live_;
  /// Per-kind (FrameworkKind index) latency histograms over completed
  /// sessions — the live snapshot's queue-wait / run-duration view.
  std::array<runtime::LatencyHistogram, 2> queue_wait_hist_{};
  std::array<runtime::LatencyHistogram, 2> run_hist_{};
  double born_s_ = runtime::metrics_now_seconds();  // engine start (uptime)
  PrecomputeStats totals_;
  std::size_t active_ = 0;
  std::size_t peak_ = 0;
  std::size_t faulted_done_ = 0;      // kFault results + driver exceptions
  std::size_t audit_drift_done_ = 0;  // completed sessions with findings
  std::uint64_t stalls_total_ = 0;    // stall flags of *completed* sessions
  bool stop_ = false;
  /// Latches true once any submitted request carries a fault plan (or
  /// degrade flag); only then does rollup_json() emit the per-outcome counts
  /// and per-session outcome/fault fields — fault-free engines export
  /// byte-identically to the pre-fault-layer golden.
  bool fault_aware_ = false;

  std::mutex group_mu_;
  std::map<group::GroupId, std::unique_ptr<group::Group>> groups_;

  std::vector<std::thread> drivers_;  // last member: joins before teardown
};

}  // namespace ppgr::engine

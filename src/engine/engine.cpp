#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

namespace ppgr::engine {

namespace {

using runtime::CryptoOp;
using runtime::Phase;

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_index_list(std::string& out, const std::vector<std::size_t>& v) {
  out.push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i)
    appendf(out, "%s%zu", i == 0 ? "" : ", ", v[i]);
  out.push_back(']');
}

// Nonzero ops only, like MetricsRegistry::to_json — adding CryptoOp values
// later cannot disturb existing goldens.
void append_ops(std::string& out, const runtime::OpTally& t) {
  out.push_back('{');
  bool first = true;
  for (std::size_t i = 0; i < runtime::kOpCount; ++i) {
    if (t.v[i] == 0) continue;
    appendf(out, "%s\"%s\": %llu", first ? "" : ", ",
            runtime::op_name(static_cast<CryptoOp>(i)),
            static_cast<unsigned long long>(t.v[i]));
    first = false;
  }
  out.push_back('}');
}

void append_counters(std::string& out, const CacheCounters& c) {
  appendf(out, "{\"hits\": %llu, \"misses\": %llu}",
          static_cast<unsigned long long>(c.hits),
          static_cast<unsigned long long>(c.misses));
}

// Nearest-rank quantile over an unsorted sample set (sorts in place; the
// estimator itself is the shared one in runtime/histogram.h).
double quantile(std::vector<double>& v, double q) {
  std::sort(v.begin(), v.end());
  return runtime::sample_quantile_seconds(v, q);
}

// Fault causes embed channel-error text; escape the JSON specials so the
// rollup stays well-formed whatever the message contains.
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      appendf(out, "\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

// Per-session PrecomputeSource: forwards run_framework's two precompute
// requests to the (shared or private) cache, accounting this session's
// hits/misses and the wall time spent fetching/building.
class SessionSource final : public core::PrecomputeSource {
 public:
  SessionSource(PrecomputeCache& cache,
                const std::array<std::uint8_t, 32>& pool_key)
      : cache_(cache), pool_key_(pool_key) {}

  [[nodiscard]] std::shared_ptr<const group::FixedBaseTable> generator_table(
      const group::Group& base) override {
    const double t0 = runtime::metrics_now_seconds();
    auto r = cache_.generator_table(base);
    note(stats_.generator_table, r.built);
    gen_table_ = r.table;
    setup_seconds_ += runtime::metrics_now_seconds() - t0;
    return r.table;
  }

  [[nodiscard]] core::KeyPrecompute key_material(
      const group::Group& base, const group::Elem& joint_key,
      std::size_t pool_size) override {
    const double t0 = runtime::metrics_now_seconds();
    auto kt = cache_.key_table(base, joint_key);
    note(stats_.key_table, kt.built);
    auto zp = cache_.zero_pool(base, joint_key, gen_table_, kt.table,
                               pool_key_, pool_size);
    note(stats_.zero_pool, zp.built);
    setup_seconds_ += runtime::metrics_now_seconds() - t0;
    return core::KeyPrecompute{std::move(kt.table), std::move(zp.pool)};
  }

  [[nodiscard]] const PrecomputeStats& stats() const { return stats_; }
  [[nodiscard]] double setup_seconds() const { return setup_seconds_; }

 private:
  static void note(CacheCounters& c, bool built) {
    if (built)
      ++c.misses;
    else
      ++c.hits;
  }

  PrecomputeCache& cache_;
  std::array<std::uint8_t, 32> pool_key_;
  std::shared_ptr<const group::FixedBaseTable> gen_table_;
  PrecomputeStats stats_;
  double setup_seconds_ = 0.0;
};

}  // namespace

const char* to_string(FrameworkKind kind) {
  return kind == FrameworkKind::kHe ? "he" : "ss";
}

const char* to_string(SessionOutcome outcome) {
  return outcome == SessionOutcome::kOk ? "ok" : "fault";
}

const char* to_string(EngineErrorCode code) {
  switch (code) {
    case EngineErrorCode::kInvalidSpec: return "invalid_spec";
    case EngineErrorCode::kInvalidTopology: return "invalid_topology";
    case EngineErrorCode::kInvalidInput: return "invalid_input";
    case EngineErrorCode::kInvalidThreshold: return "invalid_threshold";
    case EngineErrorCode::kDuplicateSession: return "duplicate_session";
    case EngineErrorCode::kUnknownSession: return "unknown_session";
  }
  return "?";
}

SessionEngine::SessionEngine(EngineConfig cfg)
    : cfg_(cfg),
      cache_(cfg_.share_precompute
                 ? (cfg_.cache != nullptr ? cfg_.cache
                                          : &process_precompute_cache())
                 : nullptr),
      root_(cfg_.seed),
      session_family_(root_),
      pool_key_family_(root_),
      pool_(cfg_.parallelism) {
  if (cfg_.max_in_flight < 1)
    throw std::invalid_argument("SessionEngine: max_in_flight must be >= 1");
  drivers_.reserve(cfg_.max_in_flight);
  for (std::size_t i = 0; i < cfg_.max_in_flight; ++i)
    drivers_.emplace_back([this] { driver_loop(); });
}

SessionEngine::~SessionEngine() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : drivers_) t.join();
}

void SessionEngine::validate(const RankingRequest& req) const {
  // Every rejection names the session so batch callers can attribute it.
  const std::string who = "session " + std::to_string(req.session_id);
  try {
    req.spec.validate();
  } catch (const std::exception& e) {
    throw EngineError(EngineErrorCode::kInvalidSpec, who + ": " + e.what());
  }
  const std::size_t n = req.infos.size();
  if (n < 2)
    throw EngineError(EngineErrorCode::kInvalidTopology,
                      "session " + std::to_string(req.session_id) +
                          ": need n >= 2 participants, got " +
                          std::to_string(n));
  if (req.k < 1 || req.k > n)
    throw EngineError(EngineErrorCode::kInvalidTopology,
                      "session " + std::to_string(req.session_id) + ": k=" +
                          std::to_string(req.k) + " outside [1, n=" +
                          std::to_string(n) + "]");
  try {
    req.spec.check_attributes(req.v0);
    req.spec.check_weights(req.w);
    for (const auto& v : req.infos) req.spec.check_attributes(v);
  } catch (const std::exception& e) {
    throw EngineError(EngineErrorCode::kInvalidInput, who + ": " + e.what());
  }
  if (req.spec.beta_bits() + 2 > core::default_dot_field().bits())
    throw EngineError(
        EngineErrorCode::kInvalidSpec,
        who + ": spec beta range exceeds the phase-1 dot-product field");
  if (req.framework == FrameworkKind::kSs) {
    const std::size_t t =
        req.ss_threshold != 0 ? req.ss_threshold : (n >= 3 ? (n - 1) / 2 : 0);
    if (t < 1 || n < 2 * t + 1)
      throw EngineError(EngineErrorCode::kInvalidThreshold,
                        "session " + std::to_string(req.session_id) +
                            ": SS threshold t=" + std::to_string(t) +
                            " needs n >= 2t+1 (n=" + std::to_string(n) + ")");
  }
}

std::uint64_t SessionEngine::submit(RankingRequest req) {
  validate(req);
  const std::uint64_t sid = req.session_id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_)
      throw std::logic_error("SessionEngine: submit after shutdown");
    if (!known_ids_.insert(sid).second)
      throw EngineError(EngineErrorCode::kDuplicateSession,
                        "session " + std::to_string(sid) +
                            ": duplicate session id");
    if (req.fault_plan.enabled() || req.degrade_on_dropout)
      fault_aware_ = true;
    queue_.push_back(Queued{std::move(req), runtime::metrics_now_seconds()});
  }
  work_cv_.notify_one();
  return sid;
}

void SessionEngine::driver_loop() {
  for (;;) {
    RankingRequest req;
    LiveSession* live = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // queued-but-unstarted work is discarded
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      req = std::move(q.req);
      ++active_;
      peak_ = std::max(peak_, active_);
      auto ls = std::make_unique<LiveSession>();
      ls->id = req.session_id;
      ls->framework = req.framework;
      ls->n = req.infos.size();
      ls->k = req.k;
      ls->submit_s = q.submit_s;
      ls->start_s = runtime::metrics_now_seconds();
      live = ls.get();
      live_.emplace(req.session_id, std::move(ls));
    }
    const double queue_wait_s = live->start_s - live->submit_s;
    SessionResult res;
    std::exception_ptr err;
    try {
      res = execute(req, &live->progress);
    } catch (...) {
      err = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const std::uint64_t stalls =
          live->stalls.load(std::memory_order_relaxed);
      stalls_total_ += stalls;
      live_.erase(req.session_id);
      const auto kind = static_cast<std::size_t>(req.framework);
      queue_wait_hist_[kind].add_seconds(queue_wait_s);
      if (err != nullptr) {
        ++faulted_done_;
        failed_.emplace(req.session_id, err);
      } else {
        run_hist_[kind].add_seconds(res.wall_seconds);
        if (res.outcome == SessionOutcome::kFault) ++faulted_done_;
        Summary s;
        s.framework = res.framework;
        s.group_name = group::to_string(req.group);
        s.n = req.infos.size();
        s.k = req.k;
        s.beta_bits = req.spec.beta_bits();
        s.ranks = res.ranks();
        s.submitted_ids = res.submitted_ids();
        s.trace_messages = res.trace().message_count();
        s.trace_rounds = res.trace().rounds();
        s.trace_bytes = res.trace().total_bytes();
        if (const runtime::MetricsRegistry* m = res.metrics()) {
          s.has_ops = true;
          s.ops = m->totals();
        }
        s.outcome = res.outcome;
        s.fault = res.fault;
        s.queue_wait_s = queue_wait_s;
        s.run_s = res.wall_seconds;
        s.stalls = stalls;
        if (res.audit != nullptr) {
          s.has_audit = true;
          s.audit_checks = res.audit->checks;
          s.audit_findings = res.audit->findings.size();
          s.audit_verdict = res.audit->verdict();
          if (!res.audit->clean()) ++audit_drift_done_;
        }
        summaries_.emplace(req.session_id, std::move(s));
        totals_ += res.precompute;
        const CacheCounters t = res.precompute.total();
        if (t.hits != 0)
          metrics_.add(Phase::kSetup, runtime::kOrchestratorParty,
                       CryptoOp::kPrecomputeHit, t.hits);
        if (t.misses != 0)
          metrics_.add(Phase::kSetup, runtime::kOrchestratorParty,
                       CryptoOp::kPrecomputeMiss, t.misses);
        done_.emplace(req.session_id, std::move(res));
      }
      --active_;
    }
    done_cv_.notify_all();
  }
}

SessionResult SessionEngine::execute(const RankingRequest& req,
                                     runtime::ProgressCell* progress) {
  const double t0 = runtime::metrics_now_seconds();
  SessionResult out;
  out.id = req.session_id;
  out.framework = req.framework;

  // The determinism anchor: everything this session draws comes from
  // (engine seed, session id) — never from engine state that concurrent
  // sessions could perturb.
  mpz::ChaChaRng rng = session_family_.stream(req.session_id);

  core::FrameworkConfig fcfg;
  fcfg.spec = req.spec;
  fcfg.n = req.infos.size();
  fcfg.k = req.k;
  fcfg.group = &group_instance(req.group);
  fcfg.dot_field = &core::default_dot_field();
  fcfg.metrics = cfg_.metrics;
  // Progress reporting is observation only — the cell never feeds back into
  // the protocol, so outputs are identical with or without it.
  fcfg.progress = progress;

  // Fault isolation: a ProtocolFault is a *result* (outcome = kFault), not a
  // driver-thread exception — the session slot frees normally and nothing
  // shared (pool, caches, groups) holds session state that could leak.
  net::FaultPlan plan{req.fault_plan};
  if (plan.enabled()) fcfg.fault_plan = &plan;
  fcfg.degrade_on_dropout = req.degrade_on_dropout;
  const auto note_fault = [&out, &req](const core::ProtocolFault& pf) {
    out.outcome = SessionOutcome::kFault;
    out.fault = pf.info();
    out.fault_what =
        "session " + std::to_string(req.session_id) + ": " + pf.what();
    out.fault_report = pf.report();
  };

  // Forensic flight recorder: always-on ring when configured, dumped only
  // on demand. Observation-only, so outputs are identical either way.
  if (cfg_.flight_events > 0) {
    out.flight = std::make_shared<runtime::FlightRecorder>(cfg_.flight_events);
    fcfg.flight = out.flight.get();
  }
  // Live conformance audit: the auditor replays the session's stream (a
  // second identical family draw) through its reference execution, then
  // rides the run's phase boundaries. Needs the registries, hence metrics.
  std::optional<ConformanceAuditor> auditor;
  if (cfg_.audit && cfg_.metrics) {
    ConformanceAuditor::Config acfg;
    acfg.ss = req.framework == FrameworkKind::kSs;
    acfg.spec = req.spec;
    acfg.n = req.infos.size();
    acfg.k = req.k;
    acfg.group = fcfg.group;
    acfg.dot_field = fcfg.dot_field;
    acfg.dot_s = fcfg.dot_s;
    acfg.fault_plan = plan.enabled();
    acfg.flight = fcfg.flight;
    auditor.emplace(std::move(acfg), req.v0, req.w, req.infos,
                    session_family_.stream(req.session_id));
    fcfg.audit = &*auditor;
  }

  if (req.framework == FrameworkKind::kHe) {
    fcfg.shared_pool = &pool_;
    std::array<std::uint8_t, 32> pool_key{};
    {
      mpz::ChaChaRng key_rng = pool_key_family_.stream(req.session_id);
      key_rng.fill(pool_key);
    }
    // share_precompute off: a private throwaway cache — the session still
    // builds the exact same artifacts (outputs cannot tell), it just never
    // benefits from or contributes to sharing.
    PrecomputeCache private_cache;
    PrecomputeCache* cache = cache_ != nullptr ? cache_ : &private_cache;
    SessionSource source{*cache, pool_key};
    fcfg.precompute = &source;
    try {
      out.he = core::run_framework(fcfg, req.v0, req.w, req.infos, rng);
    } catch (const core::ProtocolFault& pf) {
      note_fault(pf);
    }
    out.setup_seconds = source.setup_seconds();
    out.precompute = source.stats();
  } else {
    core::SsFrameworkConfig scfg;
    scfg.base = fcfg;  // serial baseline: no shared pool, no precompute
    scfg.threshold = req.ss_threshold != 0 ? req.ss_threshold
                                           : (req.infos.size() - 1) / 2;
    try {
      out.ss = core::run_ss_framework(scfg, req.v0, req.w, req.infos, rng);
    } catch (const core::ProtocolFault& pf) {
      note_fault(pf);
    }
  }
  if (auditor.has_value()) out.audit = auditor->take_report();
  out.wall_seconds = runtime::metrics_now_seconds() - t0;
  return out;
}

const group::Group& SessionEngine::group_instance(group::GroupId id) {
  const std::lock_guard<std::mutex> lock(group_mu_);
  auto it = groups_.find(id);
  if (it == groups_.end())
    it = groups_.emplace(id, group::make_group(id)).first;
  return *it->second;
}

SessionResult SessionEngine::take(std::uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (known_ids_.find(session_id) == known_ids_.end())
    throw EngineError(EngineErrorCode::kUnknownSession,
                      "session " + std::to_string(session_id) +
                          " was never submitted");
  done_cv_.wait(lock, [&] {
    return done_.find(session_id) != done_.end() ||
           failed_.find(session_id) != failed_.end();
  });
  if (auto it = failed_.find(session_id); it != failed_.end()) {
    std::exception_ptr err = it->second;
    failed_.erase(it);
    std::rethrow_exception(err);
  }
  auto node = done_.extract(session_id);
  return std::move(node.mapped());
}

std::vector<SessionResult> SessionEngine::run_batch(
    std::vector<RankingRequest> requests) {
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (auto& req : requests) ids.push_back(submit(std::move(req)));
  std::vector<SessionResult> results;
  results.reserve(ids.size());
  for (const std::uint64_t sid : ids) results.push_back(take(sid));
  return results;
}

void SessionEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t SessionEngine::peak_in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

PrecomputeStats SessionEngine::precompute_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::string SessionEngine::rollup_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\n  \"schema\": \"ppgr.engine.v1\",\n";
  appendf(out, "  \"engine_seed\": %llu,\n",
          static_cast<unsigned long long>(cfg_.seed));
  appendf(out, "  \"metrics\": %s,\n", cfg_.metrics ? "true" : "false");
  appendf(out, "  \"share_precompute\": %s,\n",
          cfg_.share_precompute ? "true" : "false");
  appendf(out, "  \"sessions_completed\": %zu,\n", summaries_.size());
  if (fault_aware_) {
    std::size_t ok = 0;
    std::size_t faulted = 0;
    for (const auto& [sid, s] : summaries_)
      ++(s.outcome == SessionOutcome::kOk ? ok : faulted);
    appendf(out, "  \"outcomes\": {\"ok\": %zu, \"fault\": %zu},\n", ok,
            faulted);
  }
  if (cfg_.telemetry) {
    // Live-telemetry sections (EngineConfig::telemetry): wall-clock-derived
    // latency quantiles per session kind and the end-of-run health verdict.
    // Nondeterministic by nature — scripts/bench_compare.py treats the
    // *_seconds keys as noisy, and the golden rollup pins telemetry=false.
    out += "  \"latency\": {";
    bool first_kind = true;
    for (std::size_t kind = 0; kind < 2; ++kind) {
      std::vector<double> waits;
      std::vector<double> runs;
      for (const auto& [sid, s] : summaries_) {
        if (static_cast<std::size_t>(s.framework) != kind) continue;
        waits.push_back(s.queue_wait_s);
        runs.push_back(s.run_s);
      }
      if (waits.empty()) continue;
      appendf(out, "%s\n    \"%s\": {\"sessions\": %zu,\n     ",
              first_kind ? "" : ",", to_string(static_cast<FrameworkKind>(kind)),
              waits.size());
      appendf(out, "\"queue_wait_p50_seconds\": %.9f, ", quantile(waits, 0.50));
      appendf(out, "\"queue_wait_p99_seconds\": %.9f,\n     ",
              quantile(waits, 0.99));
      appendf(out, "\"run_duration_p50_seconds\": %.9f, ",
              quantile(runs, 0.50));
      appendf(out, "\"run_duration_p99_seconds\": %.9f}",
              quantile(runs, 0.99));
      first_kind = false;
    }
    out += "\n  },\n";
    // A drained engine cannot be stalled: health reduces to the outcome
    // counts, which *are* deterministic. The stall tally is the watchdog's
    // observation count and is not. Confirmed model drift (audit findings)
    // degrades health exactly like a faulted session.
    std::size_t faulted = 0;
    for (const auto& [sid, s] : summaries_)
      if (s.outcome == SessionOutcome::kFault) ++faulted;
    appendf(out, "  \"health\": {\"state\": \"%s\", \"stalls\": %llu},\n",
            runtime::to_string(faulted != 0 || audit_drift_done_ != 0
                                   ? runtime::HealthState::kDegraded
                                   : runtime::HealthState::kOk),
            static_cast<unsigned long long>(stalls_total_));
  }
  if (cfg_.audit) {
    // Deterministic audit rollup: counts of comparisons and confirmed
    // divergences (pure functions of the request set + fault schedules).
    std::size_t audited = 0;
    std::size_t checks = 0;
    std::size_t findings = 0;
    for (const auto& [sid, s] : summaries_) {
      if (!s.has_audit) continue;
      ++audited;
      checks += s.audit_checks;
      findings += s.audit_findings;
    }
    appendf(out,
            "  \"audit\": {\"sessions\": %zu, \"checks\": %zu, "
            "\"findings\": %zu, \"drifted\": %zu},\n",
            audited, checks, findings, audit_drift_done_);
  }
  out += "  \"cache\": {\n    \"generator_tables\": ";
  append_counters(out, totals_.generator_table);
  out += ",\n    \"joint_key_tables\": ";
  append_counters(out, totals_.key_table);
  out += ",\n    \"zero_pools\": ";
  append_counters(out, totals_.zero_pool);
  out += "\n  },\n  \"sessions\": [";
  bool first = true;
  for (const auto& [sid, s] : summaries_) {
    appendf(out, "%s\n    {\"id\": %llu, \"framework\": \"%s\", ",
            first ? "" : ",", static_cast<unsigned long long>(sid),
            to_string(s.framework));
    appendf(out, "\"group\": \"%s\", \"n\": %zu, \"k\": %zu, ",
            s.group_name.c_str(), s.n, s.k);
    appendf(out, "\"beta_bits\": %zu,\n     \"ranks\": ", s.beta_bits);
    append_index_list(out, s.ranks);
    out += ", \"submitted_ids\": ";
    append_index_list(out, s.submitted_ids);
    appendf(out,
            ",\n     \"trace\": {\"messages\": %zu, \"bytes\": %llu, "
            "\"rounds\": %zu}",
            s.trace_messages, static_cast<unsigned long long>(s.trace_bytes),
            s.trace_rounds);
    if (s.has_ops) {
      out += ",\n     \"ops\": ";
      append_ops(out, s.ops);
    }
    if (s.has_audit) {
      appendf(out,
              ",\n     \"audit\": {\"checks\": %zu, \"findings\": %zu, "
              "\"verdict\": \"%s\"}",
              s.audit_checks, s.audit_findings, s.audit_verdict.c_str());
    }
    if (fault_aware_) {
      appendf(out, ",\n     \"outcome\": \"%s\"", to_string(s.outcome));
      if (s.fault.has_value()) {
        const core::FaultInfo& f = *s.fault;
        appendf(out, ", \"fault\": {\"phase\": \"%s\", \"round\": %zu, ",
                runtime::phase_name(f.phase), f.round);
        appendf(out, "\"party\": %lld, \"cause\": ",
                f.party == core::kNoParty ? -1LL
                                          : static_cast<long long>(f.party));
        append_json_string(out, f.cause);
        out += "}";
      }
    }
    out += "}";
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace ppgr::engine

#include "engine/session_log.h"

#include <array>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace ppgr::engine {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      appendf(out, "\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

std::uint64_t retry_count(const SessionResult& res) {
  // A completed faulted-plan run mirrors its counters into the comm
  // registry; a run that aborted lost its registries, but the fault report
  // travelled out with the exception.
  if (const runtime::CommRegistry* comm = res.comm();
      comm != nullptr && comm->has_fault_counters())
    return comm->fault_counters().retransmits;
  if (res.fault_report.has_value()) return res.fault_report->stats.retransmits;
  return 0;
}

}  // namespace

std::string session_wide_event_json(const SessionResult& res,
                                    const SessionLogInfo& info) {
  std::string out;
  out += "{\"schema\": \"ppgr.session.v1\"";
  appendf(out, ", \"id\": %llu", static_cast<unsigned long long>(res.id));
  appendf(out, ", \"framework\": \"%s\"", to_string(res.framework));
  out += ", \"group\": ";
  append_escaped(out, info.group_name);
  appendf(out, ", \"n\": %zu, \"k\": %zu", info.n, info.k);
  appendf(out, ", \"outcome\": \"%s\"", to_string(res.outcome));
  appendf(out, ", \"wall_seconds\": %.6f, \"setup_seconds\": %.6f",
          res.wall_seconds, res.setup_seconds);
  // Per-phase breakdown: crypto-op totals from the metrics registry,
  // message/byte totals from the comm links (both absent on faulted runs —
  // the registries unwound with the stack).
  out += ", \"phases\": [";
  const runtime::MetricsRegistry* metrics = res.metrics();
  const runtime::CommRegistry* comm = res.comm();
  std::array<std::uint64_t, runtime::kPhaseCount> msgs{};
  std::array<std::uint64_t, runtime::kPhaseCount> bytes{};
  if (comm != nullptr) {
    for (const runtime::CommLink& l : comm->links()) {
      const auto p = static_cast<std::size_t>(l.phase);
      msgs[p] += l.messages;
      bytes[p] += l.bytes;
    }
  }
  bool first = true;
  for (std::size_t p = 0; p < runtime::kPhaseCount; ++p) {
    std::uint64_t ops = 0;
    if (metrics != nullptr) {
      const runtime::OpTally t =
          metrics->phase_totals(static_cast<runtime::Phase>(p));
      for (const std::uint64_t v : t.v) ops += v;
    }
    if (ops == 0 && msgs[p] == 0 && bytes[p] == 0) continue;
    appendf(out, "%s{\"phase\": \"%s\", \"ops\": %llu, ", first ? "" : ", ",
            runtime::phase_name(static_cast<runtime::Phase>(p)),
            static_cast<unsigned long long>(ops));
    appendf(out, "\"messages\": %llu, \"bytes\": %llu}",
            static_cast<unsigned long long>(msgs[p]),
            static_cast<unsigned long long>(bytes[p]));
    first = false;
  }
  out += "]";
  appendf(out, ", \"rounds\": %zu", res.trace().rounds());
  appendf(out, ", \"retries\": %llu",
          static_cast<unsigned long long>(retry_count(res)));
  const CacheCounters cache = res.precompute.total();
  appendf(out, ", \"cache\": {\"hits\": %llu, \"misses\": %llu}",
          static_cast<unsigned long long>(cache.hits),
          static_cast<unsigned long long>(cache.misses));
  out += ", \"submitted_ids\": [";
  const std::vector<std::size_t>& ids = res.submitted_ids();
  for (std::size_t i = 0; i < ids.size(); ++i)
    appendf(out, "%s%zu", i == 0 ? "" : ", ", ids[i]);
  out += "]";
  if (res.audit != nullptr)
    appendf(out,
            ", \"audit\": {\"checks\": %zu, \"findings\": %zu, "
            "\"verdict\": \"%s\"}",
            res.audit->checks, res.audit->findings.size(),
            res.audit->verdict());
  if (res.flight != nullptr)
    appendf(out, ", \"flight\": {\"recorded\": %llu, \"dropped\": %llu}",
            static_cast<unsigned long long>(res.flight->recorded()),
            static_cast<unsigned long long>(res.flight->dropped()));
  if (res.fault.has_value()) {
    const core::FaultInfo& f = *res.fault;
    appendf(out, ", \"fault\": {\"phase\": \"%s\", \"round\": %zu, ",
            runtime::phase_name(f.phase), f.round);
    appendf(out, "\"party\": %lld, \"cause\": ",
            f.party == core::kNoParty ? -1LL
                                      : static_cast<long long>(f.party));
    append_escaped(out, f.cause);
    out += "}";
  }
  out += "}";
  return out;
}

std::string postmortem_json(const SessionResult& res,
                            const SessionLogInfo& info,
                            const std::string& snapshot_jsonl) {
  std::string out;
  out += "{\n  \"schema\": \"ppgr.postmortem.v1\",\n";
  appendf(out, "  \"id\": %llu,\n", static_cast<unsigned long long>(res.id));
  out += "  \"what\": ";
  append_escaped(out, res.fault_what);
  out += ",\n  \"event\": ";
  out += session_wide_event_json(res, info);
  out += ",\n  \"flight\": ";
  out += res.flight != nullptr ? res.flight->to_json() : std::string("null");
  out += ",\n  \"fault_report\": ";
  out += res.fault_report.has_value() ? res.fault_report->to_json()
                                      : std::string("null");
  out += ",\n  \"snapshot\": ";
  if (snapshot_jsonl.empty())
    out += "null";
  else
    out += snapshot_jsonl;
  out += "\n}\n";
  return out;
}

std::string write_postmortem(const std::string& dir, const SessionResult& res,
                             const SessionLogInfo& info,
                             const std::string& snapshot_jsonl,
                             std::string* err) {
  const std::string path =
      dir + "/session-" + std::to_string(res.id) + ".postmortem.json";
  const std::string tmp = path + ".tmp";
  const std::string doc = postmortem_json(res, info, snapshot_jsonl);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr)
      *err = "cannot open " + tmp + ": " + std::strerror(errno);
    return "";
  }
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err != nullptr) *err = "cannot write " + path;
    std::remove(tmp.c_str());
    return "";
  }
  return path;
}

}  // namespace ppgr::engine

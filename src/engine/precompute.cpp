#include "engine/precompute.h"

#include "group/accel_group.h"

namespace ppgr::engine {

namespace {

// Window width of every comb table this cache builds. Part of each table's
// cache key: two engines (or a future default change) disagreeing on the
// width must never alias to the same artifact, since the tables' contents
// differ even though the exps they answer do not.
constexpr std::size_t kTableWindowBits = 4;

void append_hex(std::string& out, std::span<const std::uint8_t> bytes) {
  static const char* kHex = "0123456789abcdef";
  for (const std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
}

std::string group_key(const group::Group& base) {
  return base.name() + "|w" + std::to_string(kTableWindowBits);
}

std::string elem_key(const group::Group& base, const group::Elem& e) {
  std::string out = group_key(base);
  out.push_back('|');
  append_hex(out, base.serialize(e));
  return out;
}

}  // namespace

PrecomputeCache::TableResult PrecomputeCache::generator_table(
    const group::Group& base) {
  auto [table, built] = generator_tables_.get(group_key(base), [&base] {
    return group::FixedBaseTable{base, base.generator(),
                                 base.order().bit_length(), kTableWindowBits};
  });
  return TableResult{std::move(table), built};
}

PrecomputeCache::TableResult PrecomputeCache::key_table(
    const group::Group& base, const group::Elem& key) {
  auto [table, built] = key_tables_.get(elem_key(base, key), [&base, &key] {
    return group::FixedBaseTable{base, key, base.order().bit_length(),
                                 kTableWindowBits};
  });
  return TableResult{std::move(table), built};
}

PrecomputeCache::PoolResult PrecomputeCache::zero_pool(
    const group::Group& base, const group::Elem& key,
    std::shared_ptr<const group::FixedBaseTable> gen_table,
    std::shared_ptr<const group::FixedBaseTable> key_table,
    const std::array<std::uint8_t, 32>& pool_key, std::size_t count) {
  std::string cache_key = elem_key(base, key);
  cache_key.push_back('|');
  append_hex(cache_key, pool_key);
  cache_key.push_back('|');
  cache_key += std::to_string(count);
  auto [pool, built] = zero_pools_.get(cache_key, [&] {
    // Build through the accelerator so a cold pool costs comb-table
    // multiplications, not generic square-and-multiply — the values are
    // identical either way (see AcceleratedGroup).
    group::AcceleratedGroup accel{base};
    accel.set_generator_table(std::move(gen_table));
    accel.set_base_table(std::move(key_table));
    return crypto::make_zero_pool(accel, key, pool_key, count);
  });
  return PoolResult{std::move(pool), built};
}

std::size_t PrecomputeCache::size() const {
  return generator_tables_.size() + key_tables_.size() + zero_pools_.size();
}

void PrecomputeCache::clear() {
  generator_tables_.clear();
  key_tables_.clear();
  zero_pools_.clear();
}

PrecomputeCache& process_precompute_cache() {
  static PrecomputeCache cache;
  return cache;
}

}  // namespace ppgr::engine

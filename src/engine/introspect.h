// Live engine introspection: snapshots, health, exposition and trace
// stitching for a running SessionEngine.
//
// The deterministic exports (engine rollup, metrics, trace, comm) answer
// "what did this run compute"; this layer answers "what is the service doing
// *right now*". Its outputs are wall-clock observations and therefore
// explicitly nondeterministic — the invariant the tests pin instead is
// non-perturbation: attaching a sampler or taking snapshots concurrently
// with a running engine leaves every deterministic export byte-identical
// (tests/telemetry_test.cpp).
//
// Pieces:
//  - snapshot(engine, stall_deadline_s): one consistent observation.
//    Queue / live / completion state is copied under the engine mutex (which
//    protocol threads do not hold while executing — drivers take it only to
//    claim work and land results, so sampling never blocks crypto); each
//    live session's (phase, round, last-advance) comes from its lock-free
//    runtime::ProgressCell, fed by the session router's round-progress hook.
//    The call is also the stall watchdog: a live session whose progress cell
//    has not advanced within stall_deadline_s is flagged stalled, its sticky
//    stall counter bumped, and the snapshot's health degraded to kStalled.
//  - EngineSnapshot::to_jsonl() / to_openmetrics() / health_json(): the
//    "ppgr.telemetry.v1" JSONL line, the OpenMetrics exposition page
//    (validated by scripts/check_openmetrics.py in CI) and the compact
//    "ppgr.health.v1" document.
//  - EngineSampler: binds a runtime::TelemetrySampler to an engine — a
//    background thread snapshotting every period into a JSONL stream and an
//    atomically-replaced OpenMetrics file.
//  - stitched_trace_json(): merges the per-session span streams of completed
//    results onto ONE wall-clock Chrome-trace timeline (pid = session id,
//    tid = party lane) — all sessions share the steady metrics clock, so
//    cross-session overlap renders faithfully in Perfetto / about:tracing.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "runtime/telemetry.h"

namespace ppgr::engine {

/// Telemetry view of one in-flight session.
struct SessionTelemetry {
  std::uint64_t id = 0;
  FrameworkKind framework = FrameworkKind::kHe;
  std::size_t n = 0;
  std::size_t k = 0;
  runtime::Phase phase = runtime::Phase::kSetup;
  std::size_t round = 0;
  double queued_for_s = 0.0;     // submit() -> driver claim
  double running_for_s = 0.0;    // driver claim -> snapshot
  double since_advance_s = 0.0;  // last phase/round advance -> snapshot
  bool stalled = false;          // since_advance_s >= stall deadline
  std::uint64_t stalls = 0;      // sticky: total times flagged stalled
};

/// Completed-session latency histograms for one FrameworkKind.
struct KindLatency {
  runtime::LatencyHistogram queue_wait;
  runtime::LatencyHistogram run_duration;
};

/// One consistent observation of a SessionEngine in motion.
struct EngineSnapshot {
  double uptime_s = 0.0;          // engine construction -> snapshot
  double stall_deadline_s = 0.0;  // the watchdog deadline this used
  std::size_t queued = 0;         // admitted, not yet claimed by a driver
  std::size_t in_flight = 0;      // executing right now
  std::size_t completed = 0;      // results landed (ok or fault)
  std::size_t faulted = 0;        // kFault results + driver exceptions
  std::size_t audit_drift = 0;    // completed sessions with audit findings
  std::uint64_t cache_hits = 0;   // engine precompute cache, all components
  std::uint64_t cache_misses = 0;
  std::uint64_t stalls_total = 0;  // completed + live sticky stall flags
  runtime::HealthState health = runtime::HealthState::kOk;
  std::array<KindLatency, 2> latency{};  // indexed by FrameworkKind
  std::vector<SessionTelemetry> sessions;  // in-flight only, by id

  /// One "ppgr.telemetry.v1" JSON object, single line, no trailing newline.
  [[nodiscard]] std::string to_jsonl() const;
  /// Full OpenMetrics text exposition page (ends with "# EOF").
  [[nodiscard]] std::string to_openmetrics() const;
  /// Compact "ppgr.health.v1" document (state + counts + stalled ids).
  [[nodiscard]] std::string health_json() const;
};

/// Takes a snapshot; also the stall watchdog (see the header comment).
/// `stall_deadline_s` <= 0 flags every in-flight session — useful in tests
/// that must observe a stall without waiting out a real deadline.
[[nodiscard]] EngineSnapshot snapshot(SessionEngine& engine,
                                      double stall_deadline_s);

/// Engine-wide Chrome trace: every result's span stream on one wall-clock
/// timeline, pid = session id (one process group per session), tid = party
/// (0 = orchestrator, p+1 = party p). Null span recorders (metrics off,
/// faulted runs) are skipped. Timestamps are microseconds relative to the
/// earliest event across all sessions.
[[nodiscard]] std::string stitched_trace_json(
    const std::vector<const SessionResult*>& results);

/// A runtime::TelemetrySampler bound to an engine: snapshots every period
/// (and once on stop), appending JSONL lines and atomically replacing the
/// OpenMetrics exposition file.
class EngineSampler {
 public:
  struct Config {
    double period_s = 0.1;
    double stall_deadline_s = 5.0;
    std::string jsonl_path;        // "" = no JSONL output
    std::string openmetrics_path;  // "" = no exposition file
  };

  /// The engine must outlive the sampler.
  EngineSampler(SessionEngine& engine, Config cfg);

  void start() { sampler_.start(); }
  void stop() { sampler_.stop(); }
  [[nodiscard]] std::uint64_t samples() const { return sampler_.samples(); }

 private:
  runtime::TelemetrySampler sampler_;
};

}  // namespace ppgr::engine

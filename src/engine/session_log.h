// Wide-event session log and post-mortem bundles.
//
// Two export formats close the observability loop at session granularity:
//
//  - "ppgr.session.v1": ONE JSON line per completed session — the wide
//    event. Everything an operator greps for lives on that line: spec
//    shape, outcome, per-phase ops/messages/bytes, retry counters, cache
//    interactions, the audit verdict, flight-ring occupancy and (for
//    faulted sessions) the fault coordinates. Appended to a JSONL stream
//    by examples/ppgr_server --session-log-out.
//
//  - "ppgr.postmortem.v1": the forensic bundle written when a session
//    faults — the wide event, the full flight recording, the router's
//    fault report and (optionally) the last live-telemetry snapshot, in
//    one self-contained document. Written atomically (tmp + rename), so a
//    crash mid-write never leaves a torn bundle.
//
// Both are observation-only renderings of a SessionResult; nothing here
// touches engine state.
#pragma once

#include <string>

#include "engine/engine.h"

namespace ppgr::engine {

/// Request context the result alone does not carry.
struct SessionLogInfo {
  std::string group_name;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// One "ppgr.session.v1" JSON object on a single line, no trailing newline.
[[nodiscard]] std::string session_wide_event_json(const SessionResult& res,
                                                  const SessionLogInfo& info);

/// The "ppgr.postmortem.v1" bundle. `snapshot_jsonl` is an optional
/// "ppgr.telemetry.v1" line to embed (empty = omitted).
[[nodiscard]] std::string postmortem_json(const SessionResult& res,
                                          const SessionLogInfo& info,
                                          const std::string& snapshot_jsonl);

/// Atomically writes the bundle to `dir`/session-<id>.postmortem.json
/// (write to a .tmp sibling, then rename). Returns the final path, or ""
/// with *err set (when non-null) on failure.
[[nodiscard]] std::string write_postmortem(const std::string& dir,
                                           const SessionResult& res,
                                           const SessionLogInfo& info,
                                           const std::string& snapshot_jsonl,
                                           std::string* err);

}  // namespace ppgr::engine

#include "engine/audit.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "benchcore/model.h"
#include "engine/precompute.h"
#include "group/mock_group.h"

namespace ppgr::engine {

namespace {

using runtime::CryptoOp;
using runtime::Phase;

// Session registries never carry the cache counters, and the accel_*
// counters are the one family allowed to differ between the accelerated
// real run and the unaccelerated reference — everything else is audited.
bool audited_op(std::size_t i) {
  switch (static_cast<CryptoOp>(i)) {
    case CryptoOp::kPrecomputeHit:
    case CryptoOp::kPrecomputeMiss:
    case CryptoOp::kAccelMultiExp:
    case CryptoOp::kAccelMultiExpTerm:
    case CryptoOp::kAccelFixedBaseExp:
    case CryptoOp::kAccelBatchInverse:
      return false;
    default:
      return true;
  }
}

// Private precompute for the reference execution. The pool key is fixed
// (all zero): pool *values* differ from the real session's, but op counts
// and protocol outputs are independent of them by the precompute contract.
class RefSource final : public core::PrecomputeSource {
 public:
  [[nodiscard]] std::shared_ptr<const group::FixedBaseTable> generator_table(
      const group::Group& base) override {
    gen_ = cache_.generator_table(base).table;
    return gen_;
  }
  [[nodiscard]] core::KeyPrecompute key_material(const group::Group& base,
                                                 const group::Elem& joint_key,
                                                 std::size_t pool_size) override {
    auto kt = cache_.key_table(base, joint_key);
    auto zp =
        cache_.zero_pool(base, joint_key, gen_, kt.table, pool_key_, pool_size);
    return core::KeyPrecompute{std::move(kt.table), std::move(zp.pool)};
  }

 private:
  PrecomputeCache cache_;
  std::array<std::uint8_t, 32> pool_key_{};
  std::shared_ptr<const group::FixedBaseTable> gen_;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

const char* to_string(AuditCheckKind kind) {
  switch (kind) {
    case AuditCheckKind::kPhaseOps: return "phase_ops";
    case AuditCheckKind::kComm: return "comm";
    case AuditCheckKind::kRounds: return "rounds";
    case AuditCheckKind::kSubmissions: return "submissions";
    case AuditCheckKind::kIncomplete: return "incomplete";
  }
  return "?";
}

const char* AuditReport::verdict() const {
  if (incomplete) return "incomplete";
  return findings.empty() ? "clean" : "drift";
}

std::string AuditReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": \"ppgr.audit.v1\",\n";
  out += "  \"framework\": \"";
  out += ss ? "ss" : "he";
  out += "\",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  \"checkpoints\": %zu,\n  \"checks\": %zu,\n", checkpoints,
                checks);
  out += buf;
  out += "  \"verdict\": \"";
  out += verdict();
  out += "\",\n  \"findings\": [";
  bool first = true;
  for (const AuditFinding& f : findings) {
    out += first ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf), "    {\"kind\": \"%s\", \"phase\": \"%s\", ",
                  to_string(f.kind), runtime::phase_name(f.phase));
    out += buf;
    out += "\"key\": ";
    append_escaped(out, f.key);
    std::snprintf(buf, sizeof(buf),
                  ", \"expected\": %llu, \"measured\": %llu, \"exact\": %s, ",
                  static_cast<unsigned long long>(f.expected),
                  static_cast<unsigned long long>(f.measured),
                  f.exact ? "true" : "false");
    out += buf;
    out += "\"detail\": ";
    append_escaped(out, f.detail);
    out += "}";
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

ConformanceAuditor::ConformanceAuditor(Config cfg, const core::AttrVec& v0,
                                       const core::AttrVec& w,
                                       const std::vector<core::AttrVec>& infos,
                                       mpz::ChaChaRng rng)
    : cfg_(std::move(cfg)) {
  report_.ss = cfg_.ss;
  if (cfg_.ss) {
    // Closed form: phase 1 runs one secure dot product per participant —
    // one query (participant), one answer (initiator), one unmasking
    // (participant). No group ops, nothing else counted.
    runtime::OpTally& t =
        expected_ops_[static_cast<std::size_t>(Phase::kPhase1)];
    t.v[static_cast<std::size_t>(CryptoOp::kDotprodQuery)] = cfg_.n;
    t.v[static_cast<std::size_t>(CryptoOp::kDotprodAnswer)] = cfg_.n;
    t.v[static_cast<std::size_t>(CryptoOp::kDotprodFinish)] = cfg_.n;
    check_ops_[static_cast<std::size_t>(Phase::kPhase1)] = true;
    return;
  }
  // Differential reference execution: the same instance replayed on a cheap
  // mock group, serial and unaccelerated, with mirrored precompute (a
  // source shifts metered exponentiations to multiplications, so the
  // reference must use one too). The determinism invariant makes its
  // deterministic outputs exact predictions for the real session.
  group::MockGroup ref_group{"audit-ref", 32, 61};
  RefSource source;
  core::FrameworkConfig ref;
  ref.spec = cfg_.spec;
  ref.n = cfg_.n;
  ref.k = cfg_.k;
  ref.group = &ref_group;
  ref.dot_field = cfg_.dot_field;
  ref.dot_s = cfg_.dot_s;
  ref.parallelism = 1;
  ref.metrics = true;
  ref.accel = false;
  ref.precompute = &source;
  const core::FrameworkResult r = core::run_framework(ref, v0, w, infos, rng);
  for (std::size_t p = 0; p < runtime::kPhaseCount; ++p) {
    expected_ops_[p] = r.metrics->phase_totals(static_cast<Phase>(p));
    check_ops_[p] = true;
  }
  expected_submitted_ = r.submitted_ids;
  check_submitted_ = true;
  // The measured side reports the router's closed-round counter, which the
  // comm registry mirrors (empty rounds preserved) — trace.rounds() would
  // not: it only counts rounds carrying at least one message.
  expected_rounds_ = r.comm->rounds();
  check_rounds_ = true;
}

void ConformanceAuditor::check_count(AuditCheckKind kind, Phase phase,
                                     const std::string& key,
                                     std::uint64_t expected,
                                     std::uint64_t measured,
                                     const std::string& what) {
  ++report_.checks;
  if (expected == measured) return;
  AuditFinding f;
  f.kind = kind;
  f.phase = phase;
  f.key = key;
  f.expected = expected;
  f.measured = measured;
  f.detail = what;
  report_.findings.push_back(std::move(f));
}

void ConformanceAuditor::breadcrumb(Phase phase) {
  if (cfg_.flight != nullptr)
    cfg_.flight->record(runtime::FlightEventKind::kAudit, phase, 0,
                        static_cast<std::uint32_t>(report_.checks),
                        static_cast<std::uint32_t>(report_.findings.size()));
}

void ConformanceAuditor::phase_complete(Phase phase,
                                        const runtime::MetricsRegistry* metrics,
                                        const runtime::CommRegistry* comm) {
  (void)comm;  // byte-exact comm is a whole-run check (run_complete)
  ++report_.checkpoints;
  const auto pi = static_cast<std::size_t>(phase);
  if (metrics != nullptr && pi < runtime::kPhaseCount && check_ops_[pi]) {
    const runtime::OpTally measured = metrics->phase_totals(phase);
    const runtime::OpTally& want = expected_ops_[pi];
    for (std::size_t i = 0; i < runtime::kOpCount; ++i) {
      if (!audited_op(i)) continue;
      if (want.v[i] == 0 && measured.v[i] == 0) continue;
      check_count(AuditCheckKind::kPhaseOps, phase,
                  runtime::op_name(static_cast<CryptoOp>(i)), want.v[i],
                  measured.v[i],
                  std::string("op tally diverges from the reference run in ") +
                      runtime::phase_name(phase));
    }
  }
  breadcrumb(phase);
}

void ConformanceAuditor::run_complete(
    const std::vector<std::size_t>& submitted_ids,
    const runtime::MetricsRegistry* metrics, const runtime::CommRegistry* comm,
    std::size_t rounds) {
  (void)metrics;  // per-phase tallies were checked at the phase boundaries
  ++report_.checkpoints;
  if (check_submitted_) {
    ++report_.checks;
    if (submitted_ids != expected_submitted_) {
      AuditFinding f;
      f.kind = AuditCheckKind::kSubmissions;
      f.phase = Phase::kPhase3;
      f.key = "submitted_ids";
      f.expected = expected_submitted_.size();
      f.measured = submitted_ids.size();
      f.detail = "submitted top-k set diverges from the reference run";
      report_.findings.push_back(std::move(f));
    }
  }
  if (check_rounds_)
    check_count(AuditCheckKind::kRounds, Phase::kPhase3, "rounds",
                expected_rounds_, rounds,
                "transport round count diverges from the reference run");
  // Byte-exact communication check against the closed-form model on the
  // real group. Skipped under a fault plan: CRC framing, retransmits and
  // drops legitimately change wire bytes there (divergence then surfaces
  // through the op / submission / incompleteness checks instead).
  if (comm != nullptr && !cfg_.fault_plan && cfg_.group != nullptr &&
      cfg_.dot_field != nullptr) {
    const std::vector<runtime::CommLink> expected = benchcore::model_he_comm(
        cfg_.spec, cfg_.n, *cfg_.group, *cfg_.dot_field, cfg_.dot_s,
        submitted_ids);
    const std::vector<runtime::CommLink> measured = comm->links();
    const auto audited_phase = [&](Phase p) {
      // The SS baseline shares the HE wire codecs in phases 1 and 3 only;
      // its phase-2 traffic is the sort's own synthetic model.
      return !cfg_.ss || p == Phase::kPhase1 || p == Phase::kPhase3;
    };
    using Key = std::tuple<std::size_t, std::size_t, std::size_t>;
    std::map<Key, std::pair<std::uint64_t, std::uint64_t>> want;
    std::map<Key, std::pair<std::uint64_t, std::uint64_t>> got;
    for (const runtime::CommLink& l : expected)
      if (audited_phase(l.phase))
        want[{static_cast<std::size_t>(l.phase), l.src, l.dst}] = {l.messages,
                                                                   l.bytes};
    for (const runtime::CommLink& l : measured)
      if (audited_phase(l.phase))
        got[{static_cast<std::size_t>(l.phase), l.src, l.dst}] = {l.messages,
                                                                  l.bytes};
    auto keys = want;
    for (const auto& [k, v] : got) keys.emplace(k, v);  // union of links
    for (const auto& [k, unused] : keys) {
      (void)unused;
      const auto [pi, src, dst] = k;
      const Phase p = static_cast<Phase>(pi);
      char label[64];
      std::snprintf(label, sizeof(label), "P%zu->P%zu", src, dst);
      const auto w_it = want.find(k);
      const auto g_it = got.find(k);
      const std::pair<std::uint64_t, std::uint64_t> w_v =
          w_it != want.end() ? w_it->second : std::pair<std::uint64_t,
                                                        std::uint64_t>{0, 0};
      const std::pair<std::uint64_t, std::uint64_t> g_v =
          g_it != got.end() ? g_it->second : std::pair<std::uint64_t,
                                                       std::uint64_t>{0, 0};
      check_count(AuditCheckKind::kComm, p, std::string(label) + " messages",
                  w_v.first, g_v.first,
                  "per-link message count diverges from the comm model");
      check_count(AuditCheckKind::kComm, p, std::string(label) + " bytes",
                  w_v.second, g_v.second,
                  "per-link byte total diverges from the comm model");
    }
  }
  breadcrumb(Phase::kPhase3);
}

void ConformanceAuditor::run_degraded(const std::vector<std::size_t>& dropped) {
  report_.incomplete = true;
  AuditFinding f;
  f.kind = AuditCheckKind::kIncomplete;
  f.phase = Phase::kPhase1;
  f.key = "degrade";
  f.expected = cfg_.n;
  f.measured = cfg_.n - dropped.size();
  std::string detail = "run degraded onto the survivor set; dropped parties:";
  for (const std::size_t p : dropped) detail += " P" + std::to_string(p);
  f.detail = std::move(detail);
  report_.findings.push_back(std::move(f));
  // The survivor rerun is a different instance — every expectation is void.
  check_ops_.fill(false);
  check_submitted_ = false;
  check_rounds_ = false;
  breadcrumb(Phase::kPhase1);
}

void ConformanceAuditor::run_faulted(Phase phase) {
  report_.incomplete = true;
  AuditFinding f;
  f.kind = AuditCheckKind::kIncomplete;
  f.phase = phase;
  f.key = "fault";
  f.detail = std::string("run aborted by a protocol fault in ") +
             runtime::phase_name(phase);
  report_.findings.push_back(std::move(f));
  breadcrumb(phase);
}

}  // namespace ppgr::engine

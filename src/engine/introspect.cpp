#include "engine/introspect.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace ppgr::engine {

namespace {

using runtime::HealthState;
using runtime::LatencyHistogram;
using runtime::OpenMetricsBuilder;

void appendf(std::string& out, const char* fmt, ...) {
  char buf[320];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// The JSONL latency block for one kind: histogram-derived quantiles (one
// binade of resolution — a live readout, not the deterministic rollup).
void append_kind_latency(std::string& out, const char* kind,
                         const KindLatency& lat, bool first) {
  appendf(out, "%s\"%s\": {\"completed\": %llu, ", first ? "" : ", ", kind,
          static_cast<unsigned long long>(lat.queue_wait.count()));
  appendf(out, "\"queue_wait_p50_seconds\": %.9g, ",
          runtime::latency_quantile_seconds(lat.queue_wait, 0.50));
  appendf(out, "\"queue_wait_p99_seconds\": %.9g, ",
          runtime::latency_quantile_seconds(lat.queue_wait, 0.99));
  appendf(out, "\"run_duration_p50_seconds\": %.9g, ",
          runtime::latency_quantile_seconds(lat.run_duration, 0.50));
  appendf(out, "\"run_duration_p99_seconds\": %.9g}",
          runtime::latency_quantile_seconds(lat.run_duration, 0.99));
}

}  // namespace

EngineSnapshot snapshot(SessionEngine& engine, double stall_deadline_s) {
  EngineSnapshot out;
  const double now = runtime::metrics_now_seconds();
  out.stall_deadline_s = stall_deadline_s;
  {
    const std::lock_guard<std::mutex> lock(engine.mu_);
    out.uptime_s = now - engine.born_s_;
    out.queued = engine.queue_.size();
    out.in_flight = engine.active_;
    out.completed = engine.summaries_.size() + engine.failed_.size();
    out.faulted = engine.faulted_done_;
    out.audit_drift = engine.audit_drift_done_;
    out.stalls_total = engine.stalls_total_;
    for (std::size_t kind = 0; kind < 2; ++kind) {
      out.latency[kind].queue_wait = engine.queue_wait_hist_[kind];
      out.latency[kind].run_duration = engine.run_hist_[kind];
    }
    out.sessions.reserve(engine.live_.size());
    for (const auto& [sid, live] : engine.live_) {
      const runtime::ProgressCell::View v = live->progress.view();
      SessionTelemetry st;
      st.id = sid;
      st.framework = live->framework;
      st.n = live->n;
      st.k = live->k;
      st.phase = v.phase;
      st.round = v.round;
      st.queued_for_s = live->start_s - live->submit_s;
      st.running_for_s = now - live->start_s;
      st.since_advance_s = std::max(0.0, now - v.last_advance_s);
      st.stalled = st.since_advance_s >= stall_deadline_s;
      if (st.stalled) live->stalls.fetch_add(1, std::memory_order_relaxed);
      st.stalls = live->stalls.load(std::memory_order_relaxed);
      out.stalls_total += st.stalls;
      out.sessions.push_back(st);
    }
  }
  // The engine registry has its own lock; reading it outside mu_ keeps the
  // critical section to the copy above.
  const runtime::OpTally t = engine.metrics_.totals();
  out.cache_hits =
      t.v[static_cast<std::size_t>(runtime::CryptoOp::kPrecomputeHit)];
  out.cache_misses =
      t.v[static_cast<std::size_t>(runtime::CryptoOp::kPrecomputeMiss)];

  // Confirmed conformance drift is as alarming as a faulted session: the
  // engine is producing numbers its own model contradicts.
  HealthState health = out.faulted != 0 || out.audit_drift != 0
                           ? HealthState::kDegraded
                           : HealthState::kOk;
  for (const auto& st : out.sessions)
    if (st.stalled) health = runtime::worse(health, HealthState::kStalled);
  out.health = health;
  return out;
}

std::string EngineSnapshot::to_jsonl() const {
  std::string out;
  out += "{\"schema\": \"ppgr.telemetry.v1\"";
  appendf(out, ", \"uptime_seconds\": %.6f", uptime_s);
  appendf(out, ", \"health\": \"%s\"", runtime::to_string(health));
  appendf(out, ", \"queued\": %zu, \"in_flight\": %zu", queued, in_flight);
  appendf(out, ", \"completed\": %zu, \"faulted\": %zu", completed, faulted);
  appendf(out, ", \"stalls\": %llu",
          static_cast<unsigned long long>(stalls_total));
  appendf(out, ", \"cache\": {\"hits\": %llu, \"misses\": %llu}",
          static_cast<unsigned long long>(cache_hits),
          static_cast<unsigned long long>(cache_misses));
  out += ", \"latency\": {";
  bool first = true;
  for (std::size_t kind = 0; kind < 2; ++kind) {
    if (latency[kind].queue_wait.count() == 0) continue;
    append_kind_latency(out, to_string(static_cast<FrameworkKind>(kind)),
                        latency[kind], first);
    first = false;
  }
  out += "}, \"sessions\": [";
  first = true;
  for (const auto& st : sessions) {
    appendf(out, "%s{\"id\": %llu, \"framework\": \"%s\", \"n\": %zu, "
                 "\"k\": %zu",
            first ? "" : ", ", static_cast<unsigned long long>(st.id),
            to_string(st.framework), st.n, st.k);
    appendf(out, ", \"phase\": \"%s\", \"round\": %zu",
            runtime::phase_name(st.phase), st.round);
    appendf(out, ", \"queued_seconds\": %.6f, \"running_seconds\": %.6f",
            st.queued_for_s, st.running_for_s);
    appendf(out, ", \"since_advance_seconds\": %.6f, \"stalled\": %s, "
                 "\"stalls\": %llu}",
            st.since_advance_s, st.stalled ? "true" : "false",
            static_cast<unsigned long long>(st.stalls));
    first = false;
  }
  out += "]}";
  return out;
}

std::string EngineSnapshot::to_openmetrics() const {
  OpenMetricsBuilder om;
  om.family("ppgr_engine_uptime_seconds", "gauge",
            "Seconds since the engine was constructed");
  om.sample("ppgr_engine_uptime_seconds", "", uptime_s);
  om.family("ppgr_engine_health", "gauge",
            "Watchdog verdict: 0=ok 1=degraded 2=stalled");
  om.sample("ppgr_engine_health", "",
            static_cast<std::uint64_t>(static_cast<std::uint8_t>(health)));
  om.family("ppgr_engine_sessions", "gauge",
            "Sessions by lifecycle state");
  om.sample("ppgr_engine_sessions", "state=\"queued\"",
            static_cast<std::uint64_t>(queued));
  om.sample("ppgr_engine_sessions", "state=\"in_flight\"",
            static_cast<std::uint64_t>(in_flight));
  om.family("ppgr_engine_sessions_completed_total", "counter",
            "Completed sessions by outcome");
  om.sample("ppgr_engine_sessions_completed_total", "outcome=\"ok\"",
            static_cast<std::uint64_t>(completed - faulted));
  om.sample("ppgr_engine_sessions_completed_total", "outcome=\"fault\"",
            static_cast<std::uint64_t>(faulted));
  om.family("ppgr_engine_precompute_total", "counter",
            "Shared precompute cache interactions");
  om.sample("ppgr_engine_precompute_total", "result=\"hit\"", cache_hits);
  om.sample("ppgr_engine_precompute_total", "result=\"miss\"", cache_misses);
  om.family("ppgr_engine_stalls_total", "counter",
            "Watchdog stall observations across all sessions");
  om.sample("ppgr_engine_stalls_total", "", stalls_total);
  // OpenMetrics requires every family's samples to be contiguous after its
  // TYPE line — one loop per family, never interleaved.
  const auto kind_label = [](std::size_t kind) {
    return std::string("kind=\"") +
           to_string(static_cast<FrameworkKind>(kind)) + "\"";
  };
  om.family("ppgr_engine_queue_wait_seconds", "histogram",
            "Submit-to-claim wait of completed sessions");
  for (std::size_t kind = 0; kind < 2; ++kind)
    if (latency[kind].queue_wait.count() != 0)
      om.histogram("ppgr_engine_queue_wait_seconds", kind_label(kind),
                   latency[kind].queue_wait);
  om.family("ppgr_engine_run_duration_seconds", "histogram",
            "Claim-to-completion duration of completed sessions");
  for (std::size_t kind = 0; kind < 2; ++kind)
    if (latency[kind].run_duration.count() != 0)
      om.histogram("ppgr_engine_run_duration_seconds", kind_label(kind),
                   latency[kind].run_duration);
  if (!sessions.empty()) {
    const auto session_label = [](const SessionTelemetry& st) {
      return "session=\"" + std::to_string(st.id) + "\",kind=\"" +
             to_string(st.framework) + "\"";
    };
    om.family("ppgr_session_round", "gauge",
              "Closed protocol rounds of an in-flight session");
    for (const auto& st : sessions)
      om.sample("ppgr_session_round",
                session_label(st) + ",phase=\"" +
                    runtime::phase_name(st.phase) + "\"",
                static_cast<std::uint64_t>(st.round));
    om.family("ppgr_session_since_advance_seconds", "gauge",
              "Seconds since an in-flight session last advanced");
    for (const auto& st : sessions)
      om.sample("ppgr_session_since_advance_seconds", session_label(st),
                st.since_advance_s);
    om.family("ppgr_session_stalled", "gauge",
              "1 when the watchdog flags the session as stalled");
    for (const auto& st : sessions)
      om.sample("ppgr_session_stalled", session_label(st),
                static_cast<std::uint64_t>(st.stalled ? 1 : 0));
  }
  return om.render();
}

std::string EngineSnapshot::health_json() const {
  std::string out;
  out += "{\n  \"schema\": \"ppgr.health.v1\",\n";
  appendf(out, "  \"state\": \"%s\",\n", runtime::to_string(health));
  appendf(out, "  \"uptime_seconds\": %.6f,\n", uptime_s);
  appendf(out, "  \"queued\": %zu,\n  \"in_flight\": %zu,\n", queued,
          in_flight);
  appendf(out, "  \"completed\": %zu,\n  \"faulted\": %zu,\n", completed,
          faulted);
  appendf(out, "  \"audit_drift\": %zu,\n", audit_drift);
  appendf(out, "  \"stalls\": %llu,\n",
          static_cast<unsigned long long>(stalls_total));
  out += "  \"stalled_sessions\": [";
  bool first = true;
  for (const auto& st : sessions) {
    if (!st.stalled) continue;
    appendf(out, "%s%llu", first ? "" : ", ",
            static_cast<unsigned long long>(st.id));
    first = false;
  }
  out += "]\n}\n";
  return out;
}

std::string stitched_trace_json(
    const std::vector<const SessionResult*>& results) {
  // All sessions stamp spans with the same steady clock
  // (runtime::metrics_now_seconds), so one shared origin — the earliest
  // event anywhere — aligns the timelines exactly.
  double t0 = std::numeric_limits<double>::infinity();
  for (const SessionResult* r : results) {
    if (r == nullptr) continue;
    const runtime::SpanRecorder* spans = r->spans();
    if (spans == nullptr) continue;
    for (const auto& ev : spans->events()) t0 = std::min(t0, ev.t_wall);
  }

  std::string out = "[\n";
  bool first = true;
  for (const SessionResult* r : results) {
    if (r == nullptr) continue;
    const runtime::SpanRecorder* spans = r->spans();
    if (spans == nullptr || spans->events().empty()) continue;
    const auto pid = static_cast<unsigned long long>(r->id);

    appendf(out,
            "%s  {\"ph\": \"M\", \"pid\": %llu, \"tid\": 0, \"name\": "
            "\"process_name\", \"args\": {\"name\": \"session %llu (%s)\"}}",
            first ? "" : ",\n", pid, pid, to_string(r->framework));
    first = false;

    // One lane per party: tid 0 = orchestrator, tid p+1 = party p.
    std::int32_t max_party = -1;
    for (const auto& ev : spans->events())
      max_party = std::max(max_party, ev.party);
    appendf(out,
            ",\n  {\"ph\": \"M\", \"pid\": %llu, \"tid\": 0, \"name\": "
            "\"thread_name\", \"args\": {\"name\": \"orchestrator\"}}",
            pid);
    for (std::int32_t p = 0; p <= max_party; ++p)
      appendf(out,
              ",\n  {\"ph\": \"M\", \"pid\": %llu, \"tid\": %d, \"name\": "
              "\"thread_name\", \"args\": {\"name\": \"P%d\"}}",
              pid, p + 1, p);

    for (const auto& ev : spans->events()) {
      const int tid = ev.party < 0 ? 0 : ev.party + 1;
      const double ts_us = (ev.t_wall - t0) * 1e6;
      if (ev.begin) {
        appendf(out,
                ",\n  {\"ph\": \"B\", \"pid\": %llu, \"tid\": %d, "
                "\"ts\": %.3f, \"name\": \"%s\", \"args\": {\"phase\": "
                "\"%s\", \"index\": %llu}}",
                pid, tid, ts_us, ev.name, runtime::phase_name(ev.phase),
                static_cast<unsigned long long>(ev.index));
      } else {
        appendf(out,
                ",\n  {\"ph\": \"E\", \"pid\": %llu, \"tid\": %d, "
                "\"ts\": %.3f, \"name\": \"%s\"}",
                pid, tid, ts_us, ev.name);
      }
    }
  }
  out += "\n]\n";
  return out;
}

EngineSampler::EngineSampler(SessionEngine& engine, Config cfg)
    : sampler_(
          runtime::TelemetrySampler::Config{cfg.period_s, cfg.jsonl_path,
                                            cfg.openmetrics_path},
          [&engine, deadline = cfg.stall_deadline_s] {
            const EngineSnapshot s = snapshot(engine, deadline);
            return runtime::TelemetrySample{s.to_jsonl(), s.to_openmetrics()};
          }) {}

}  // namespace ppgr::engine

// Process-wide cache of shared crypto precompute for the session engine.
//
// Three artifact kinds, from cheapest-to-share to most session-specific:
//
//   generator tables — fixed-base comb tables for a group's generator,
//     keyed by group name. Every session over the same group shares one.
//   joint-key tables — comb tables for a session's joint ElGamal public
//     key, keyed by (group, serialized key). The joint key is a function of
//     the session's private randomness, so within one engine every session
//     misses once; an exact replay of the same request under the same
//     engine seed (the warm pass of bench/engine_throughput) hits.
//   zero pools — counter-seeded pools of encryptions of zero under a joint
//     key (crypto::make_zero_pool), keyed by (group, key, pool key, count).
//     Entry i is a pure function of the key material, never of the
//     schedule, which is what keeps session outputs bit-identical whether
//     the pool was built here or fetched.
//
// Sharing model (documented in DESIGN.md §6): generator tables amortize
// across *all* sessions of a group; key tables and zero pools only ever
// coincide between bit-for-bit replays of the same session, because their
// cache keys contain the joint key (and the pool key derived from the
// engine seed + session id). A pool is therefore never shared between two
// protocol runs that an adversary could distinguish — reuse means literal
// replay.
//
// Concurrency: every lookup is build-once — the first thread to miss builds
// outside the lock while later threads for the same key wait, so a key is
// built exactly once no matter how many sessions race for it. That makes
// engine-level hit/miss *totals* deterministic (misses == distinct keys)
// even though which session pays for a shared build is schedule-dependent.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "crypto/elgamal.h"
#include "group/fixed_base.h"

namespace ppgr::engine {

class PrecomputeCache {
 public:
  struct TableResult {
    std::shared_ptr<const group::FixedBaseTable> table;
    bool built = false;  // true = this call built it (a miss)
  };
  struct PoolResult {
    std::shared_ptr<const crypto::ZeroPool> pool;
    bool built = false;
  };

  PrecomputeCache() = default;
  PrecomputeCache(const PrecomputeCache&) = delete;
  PrecomputeCache& operator=(const PrecomputeCache&) = delete;

  /// Comb table for `base`'s generator, sized for scalars < group order.
  [[nodiscard]] TableResult generator_table(const group::Group& base);
  /// Comb table for an arbitrary fixed base (the joint ElGamal key).
  [[nodiscard]] TableResult key_table(const group::Group& base,
                                      const group::Elem& key);
  /// Counter-seeded zero-encryption pool under `key`. The tables (either
  /// may be null) accelerate a cold build; they do not enter the cache key,
  /// because the pool's *values* are independent of how they're computed.
  [[nodiscard]] PoolResult zero_pool(
      const group::Group& base, const group::Elem& key,
      std::shared_ptr<const group::FixedBaseTable> gen_table,
      std::shared_ptr<const group::FixedBaseTable> key_table,
      const std::array<std::uint8_t, 32>& pool_key, std::size_t count);

  /// Resident artifact count (all three kinds).
  [[nodiscard]] std::size_t size() const;
  /// Drops everything. Callers must quiesce engines first; concurrent
  /// lookups during a clear see a coherent (empty-or-rebuilt) cache but a
  /// build may be repeated.
  void clear();

 private:
  // Build-once slot map: get() returns {value, built}; concurrent getters
  // of a missing key block until the single builder publishes (they report
  // as hits — they did not pay for the build).
  template <typename T>
  class Shelf {
   public:
    std::pair<std::shared_ptr<const T>, bool> get(
        const std::string& key, const std::function<T()>& build) {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        auto it = slots_.find(key);
        if (it == slots_.end()) break;  // this thread builds
        if (it->second != nullptr) return {it->second, false};
        cv_.wait(lock);  // builder in flight (or just failed: re-check)
      }
      slots_.emplace(key, nullptr);  // reserve: null marks "building"
      lock.unlock();
      std::shared_ptr<const T> value;
      try {
        value = std::make_shared<const T>(build());
      } catch (...) {
        lock.lock();
        slots_.erase(key);
        cv_.notify_all();
        throw;
      }
      lock.lock();
      slots_[key] = value;
      cv_.notify_all();
      return {value, true};
    }
    [[nodiscard]] std::size_t size() const {
      const std::lock_guard<std::mutex> lock(mu_);
      return slots_.size();
    }
    void clear() {
      const std::lock_guard<std::mutex> lock(mu_);
      // Keep slots still being built; dropping a "building" marker would
      // let a second builder race the first one's publish.
      for (auto it = slots_.begin(); it != slots_.end();)
        it = it->second != nullptr ? slots_.erase(it) : std::next(it);
    }

   private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::string, std::shared_ptr<const T>> slots_;
  };

  Shelf<group::FixedBaseTable> generator_tables_;
  Shelf<group::FixedBaseTable> key_tables_;
  Shelf<crypto::ZeroPool> zero_pools_;
};

/// The process-wide cache the engine defaults to.
[[nodiscard]] PrecomputeCache& process_precompute_cache();

}  // namespace ppgr::engine

#include "net/topology.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ppgr::net {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}

bool Topology::connected(std::size_t n, const std::vector<Edge>& edges,
                         std::size_t skip_edge) {
  if (n == 0) return false;
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i == skip_edge) continue;
    adj[edges[i].a].push_back(edges[i].b);
    adj[edges[i].b].push_back(edges[i].a);
  }
  std::vector<bool> seen(n, false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (const std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == n;
}

Topology::Topology(std::size_t nodes, std::vector<Edge> edges)
    : n_(nodes), edges_(std::move(edges)) {
  for (auto& e : edges_) {
    if (e.a > e.b) std::swap(e.a, e.b);
    if (e.b >= n_ || e.a == e.b)
      throw std::invalid_argument("Topology: bad edge");
  }
  if (!connected(n_, edges_, kNone))
    throw std::invalid_argument("Topology: graph is disconnected");

  // BFS from every node; record predecessor edge, then unwind paths.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    adj[edges_[i].a].emplace_back(edges_[i].b, i);
    adj[edges_[i].b].emplace_back(edges_[i].a, i);
  }
  paths_.assign(n_ * n_, {});
  for (std::size_t src = 0; src < n_; ++src) {
    std::vector<std::size_t> pred_edge(n_, kNone), pred_node(n_, kNone);
    std::vector<bool> seen(n_, false);
    std::queue<std::size_t> frontier;
    frontier.push(src);
    seen[src] = true;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (const auto& [v, eidx] : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          pred_edge[v] = eidx;
          pred_node[v] = u;
          frontier.push(v);
        }
      }
    }
    for (std::size_t dst = 0; dst < n_; ++dst) {
      if (dst == src) continue;
      std::vector<std::size_t>& p = paths_[src * n_ + dst];
      std::size_t cur = dst;
      while (cur != src) {
        p.push_back(pred_edge[cur]);
        cur = pred_node[cur];
      }
      std::reverse(p.begin(), p.end());
    }
  }
}

Topology Topology::random_connected(std::size_t nodes,
                                    std::size_t target_edges, Rng& rng) {
  if (nodes < 2) throw std::invalid_argument("random_connected: need >= 2 nodes");
  const std::size_t complete = nodes * (nodes - 1) / 2;
  if (target_edges < nodes - 1 || target_edges > complete)
    throw std::invalid_argument("random_connected: infeasible edge count");
  std::vector<Edge> edges;
  edges.reserve(complete);
  for (std::size_t a = 0; a < nodes; ++a)
    for (std::size_t b = a + 1; b < nodes; ++b) edges.push_back(Edge{a, b});

  // Delete random edges that do not disconnect the graph (the paper's
  // procedure). A candidate that would disconnect is skipped and retried.
  while (edges.size() > target_edges) {
    const std::size_t candidate = rng.below_u64(edges.size());
    if (connected(nodes, edges, candidate)) {
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(candidate));
    }
  }
  return Topology{nodes, std::move(edges)};
}

const std::vector<std::size_t>& Topology::path(std::size_t a,
                                               std::size_t b) const {
  if (a >= n_ || b >= n_)
    throw std::invalid_argument("Topology::path: bad endpoints");
  return paths_[a * n_ + b];  // a == b: empty path (distance 0)
}

}  // namespace ppgr::net
